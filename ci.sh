#!/usr/bin/env bash
# CI entry point. Stages:
#   ./ci.sh            default build + full ctest, then an ASan+UBSan build
#                      running everything except the perf-labeled timing
#                      gates (sanitizer overhead makes wall-clock assertions
#                      meaningless; all label filtering is ctest -L based —
#                      see tests/CMakeLists.txt for the label scheme),
#                      then the analyze stage below
#   ./ci.sh analyze    cross-TU static analysis: safedm-lint v2 over src/ +
#                      bench/ (driven by the CMake-exported
#                      compile_commands.json — lock-discipline, layering DAG,
#                      snapshot-format drift, stale annotations, and the six
#                      single-file checks), a freshness diff of the checked-in
#                      tools/lint/snapshot_manifest.txt, plus clang-tidy with
#                      the repo .clang-tidy profile when clang-tidy is
#                      installed (skipped with a notice otherwise). Fails on
#                      any finding — see TESTING.md "Static analysis & TSan"
#   ./ci.sh lint       alias for analyze (historical name)
#   ./ci.sh perf       optimized build + the perf-labeled gates only: the
#                      throughput/checkpoint smoke runs plus bench_diff
#                      regression checks against the committed baselines in
#                      bench/baselines/ (machine-independent speedup ratios,
#                      20% tolerance — see EXPERIMENTS.md "Perf trajectory")
#   ./ci.sh fleet      default build + the sharded-campaign fleet gates only:
#                      the kill/resume & merge-determinism ctest battery
#                      (test_fleet) plus the CLI-level fleet_smoke script
#                      (3 shards, SIGKILL one, resume, merge, cmp against
#                      the single-process JSON)
#   ./ci.sh tsan       ThreadSanitizer build (SAFEDM_SANITIZE=thread preset)
#                      running the unit+property labels
#   ./ci.sh coverage   gcov-instrumented build + ctest (perf excluded) +
#                      per-subsystem line-coverage summary, so fuzzer-driven
#                      coverage gains are measurable run over run; also runs
#                      the lint stage so the lint fixtures stay compiled
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

run_default_and_san() {
  echo "==> default build"
  cmake --preset default
  cmake --build --preset default -j "${JOBS}"
  ctest --preset default -j "${JOBS}"

  echo "==> sanitizer build (ASan + UBSan)"
  cmake --preset san
  cmake --build --preset san -j "${JOBS}"
  ctest --preset san -j "${JOBS}"
}

run_analyze() {
  echo "==> analyze (safedm-lint v2: cross-TU checks over compile_commands.json)"
  cmake --preset default
  cmake --build --preset default --target safedm-lint -j "${JOBS}"
  ./build/tools/lint/safedm-lint --root . --compile-commands build/compile_commands.json

  echo "==> snapshot manifest freshness (tools/lint/snapshot_manifest.txt)"
  local tmp_manifest
  tmp_manifest="$(mktemp)"
  ./build/tools/lint/safedm-lint --root . --compile-commands build/compile_commands.json \
    --manifest "${tmp_manifest}" --update-manifest >/dev/null
  if ! diff -u tools/lint/snapshot_manifest.txt "${tmp_manifest}"; then
    rm -f "${tmp_manifest}"
    echo "error: snapshot manifest is stale; regenerate with" >&2
    echo "  build/tools/lint/safedm-lint --root . --compile-commands build/compile_commands.json --update-manifest" >&2
    exit 1
  fi
  rm -f "${tmp_manifest}"

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> clang-tidy (.clang-tidy profile, warnings as errors)"
    # Lint the repo's own sources only; compile_commands also lists
    # fixtures (seeded violations) and third-party-free test/bench code.
    mapfile -t tidy_files < <(
      python3 - <<'EOF' 2>/dev/null || \
        grep -o '"file": "[^"]*"' build/compile_commands.json | cut -d'"' -f4
import json
for e in json.load(open("build/compile_commands.json")):
    print(e["file"])
EOF
    )
    src_files=()
    for f in "${tidy_files[@]}"; do
      case "$f" in
        */src/*|*/bench/*) src_files+=("$f") ;;
      esac
    done
    clang-tidy -p build --quiet "${src_files[@]}"
  else
    echo "==> clang-tidy not installed; skipping (safedm-lint ran; install clang-tidy to enable)"
  fi
}

run_perf() {
  echo "==> perf gates (smoke benches + baseline regression diff)"
  cmake --preset default
  cmake --build --preset default -j "${JOBS}"
  ctest --preset default -L perf
}

run_fleet() {
  echo "==> fleet gates (kill/resume + merge-determinism battery, CLI smoke)"
  cmake --preset default
  cmake --build --preset default -j "${JOBS}"
  ctest --preset default -R '^(ShardMerge|CrashResume)\.|^fleet_smoke$'
}

run_tsan() {
  echo "==> ThreadSanitizer build (unit + property labels)"
  cmake --preset tsan
  cmake --build --preset tsan -j "${JOBS}"
  ctest --preset tsan -j "${JOBS}"
}

run_coverage() {
  echo "==> coverage build (gcov)"
  cmake --preset coverage
  cmake --build --preset coverage -j "${JOBS}"
  ctest --preset coverage -j "${JOBS}"

  echo "==> per-subsystem line coverage (src/*.cpp)"
  local root
  root="$(pwd)/src/"
  (
    cd build-cov
    find . -name '*.gcda' -print0 | xargs -0 gcov -n 2>/dev/null |
      awk -v root="${root}" '
        /^File /   { f = $2; gsub(/\x27/, "", f) }
        /^Lines executed:/ {
          if (index(f, root) == 1 && f ~ /\.cpp$/) {
            rest = substr(f, length(root) + 1)
            split(rest, parts, "/")
            sys = parts[1]
            split($0, a, ":"); split(a[2], b, "% of ")
            n = b[2] + 0
            lines[sys] += n
            hit[sys] += (b[1] + 0) * n / 100
          }
        }
        END {
          n = 0
          for (s in lines) keys[n++] = s
          for (i = 0; i < n; ++i)  # insertion sort: portable across awks
            for (j = i + 1; j < n; ++j)
              if (keys[j] < keys[i]) { t = keys[i]; keys[i] = keys[j]; keys[j] = t }
          printf "%-12s %8s %8s %8s\n", "subsystem", "lines", "covered", "percent"
          total = 0; thit = 0
          for (i = 0; i < n; ++i) {
            s = keys[i]
            printf "%-12s %8d %8d %7.1f%%\n", s, lines[s], hit[s], 100 * hit[s] / lines[s]
            total += lines[s]; thit += hit[s]
          }
          if (total > 0)
            printf "%-12s %8d %8d %7.1f%%\n", "TOTAL", total, thit, 100 * thit / total
        }'
  )
}

case "${STAGE}" in
  all)
    run_default_and_san
    run_analyze
    ;;
  analyze | lint) run_analyze ;;
  perf) run_perf ;;
  fleet) run_fleet ;;
  tsan) run_tsan ;;
  coverage)
    run_coverage
    run_analyze
    ;;
  *)
    echo "unknown stage: ${STAGE} (expected: analyze, perf, fleet, tsan, or coverage)" >&2
    exit 2
    ;;
esac

echo "==> CI OK"
