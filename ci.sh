#!/usr/bin/env bash
# CI entry point: default build + full ctest, then an ASan+UBSan build
# running everything except the perf-labeled timing gates (sanitizer
# overhead makes wall-clock assertions meaningless; the functional smoke
# tests, including faultsim_smoke and the snapshot round-trip suite, run
# in both configurations).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "==> default build"
cmake --preset default
cmake --build --preset default -j "${JOBS}"
ctest --preset default -j "${JOBS}"

echo "==> sanitizer build (ASan + UBSan)"
cmake --preset san
cmake --build --preset san -j "${JOBS}"
ctest --preset san -j "${JOBS}"

echo "==> CI OK"
