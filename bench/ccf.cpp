// E6 — Fault-injection validation of the CCF premise (paper Sections I-III):
// an identical double fault (same register bit flipped in both cores, same
// cycle) at a *no-diversity* cycle tends to produce identical wrong
// results — an undetectable Common Cause Failure — while at a *diverse*
// cycle the same double fault produces differing errors that output
// comparison catches. The residual CCF rate at diverse cycles measures the
// probability that the targeted register happened to hold equal values
// anyway; the gap between the two classes is what SafeDM's verdict buys.
#include <cstdio>

#include "safedm/faultsim/faultsim.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;
using namespace safedm::faultsim;

int main() {
  std::printf("CCF fault-injection campaign: identical double faults, classified by\n"
              "SafeDM's verdict at the injection cycle\n\n");
  std::printf("%-14s | %-9s %8s %8s %8s %8s %8s | %8s\n", "benchmark", "class", "masked",
              "detected", "CCF", "crashed", "hung", "CCF rate");

  u64 nodiv_detected = 0;
  u64 diverse_detected = 0;
  for (const char* name : {"bitcount", "cubic", "md5", "quicksort"}) {
    const assembler::Program program = workloads::build(name, 1);
    CampaignConfig config;
    const CampaignResult result = run_campaign(program, config);
    for (int cls = 1; cls >= 0; --cls) {
      const auto& row = result.counts[cls];
      std::printf("%-14s | %-9s %8llu %8llu %8llu %8llu %8llu | %7.1f%%\n",
                  cls == 1 ? name : "", cls == 1 ? "no-div" : "diverse",
                  static_cast<unsigned long long>(row[0]),
                  static_cast<unsigned long long>(row[1]),
                  static_cast<unsigned long long>(row[2]),
                  static_cast<unsigned long long>(row[3]),
                  static_cast<unsigned long long>(row[4]),
                  100.0 * result.ccf_rate(cls == 1));
    }
    nodiv_detected += result.counts[1][static_cast<int>(Outcome::kDetected)];
    diverse_detected += result.counts[0][static_cast<int>(Outcome::kDetected)];
    std::fflush(stdout);
  }

  std::printf("\nShape check: at no-diversity cycles an identical double fault can NEVER be\n"
              "detected by output comparison (identical state -> identical errors):\n"
              "  detected@no-div = %llu (must be 0), detected@diverse = %llu (> 0)\n",
              static_cast<unsigned long long>(nodiv_detected),
              static_cast<unsigned long long>(diverse_detected));
  std::printf("Lacking diversity is exactly the window in which redundancy stops "
              "protecting — what SafeDM makes observable.\n");
  return nodiv_detected == 0 ? 0 : 1;
}
