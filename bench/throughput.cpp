// S2 — Monitor simulation throughput: simulated cycles/second of the
// per-cycle SafeDM datapath for the legacy (pre-incremental) comparison,
// the current exhaustive path, and the incremental DiversityComparator,
// in both raw and CRC32 compare modes. Emits machine-readable JSON
// (BENCH_throughput.json) so the perf trajectory is tracked PR over PR.
//
// The "legacy" baseline is a faithful replica of the original per-cycle
// code: vector-of-vectors ring buffers indexed with modulo arithmetic, a
// full whole-signature comparison every cycle, and (flat IS mode) a
// heap-allocated flatten per comparison. It exists only here, as the
// fixed reference point the speedup is measured against.
//
// Frames are a deterministic synthetic stream (xoshiro-seeded). The
// headline "matched" scenario feeds both cores identical busy frames —
// the worst case for every comparator (no early exit) and the
// hardware-relevant steady state; the "divergent" scenario adds
// independent per-core holds and value divergence, exercising the
// comparator's realignment fallback.
//
// Usage: bench_throughput [--cycles=N] [--reps=N] [--json=PATH] [--check]
//   --reps: repetitions per mode; the best is reported (noise rejection).
//   --check exits nonzero if the incremental comparator is not faster
//   than the exhaustive path (the perf-smoke CTest gate).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "json_writer.hpp"
#include "safedm/common/rng.hpp"
#include "safedm/safedm/monitor.hpp"

using namespace safedm;

namespace legacy {

// ---- pre-incremental SignatureGenerator + monitor datapath replica ------

// The pre-PR stage slot: `bool valid` plus padding. The padded layout is
// part of the baseline being measured — it forces the element-wise struct
// comparison the packed representation replaced.
struct LegacySlot {
  bool valid = false;
  u32 encoding = 0;

  bool operator==(const LegacySlot&) const = default;
};

struct Signature {
  explicit Signature(const monitor::SafeDmConfig& config) : config_(config) {
    fifos_.resize(config.num_ports);
    for (auto& fifo : fifos_) fifo.entries.assign(config.data_fifo_depth, {});
  }

  void capture(const core::CoreTapFrame& frame) {
    for (unsigned st = 0; st < core::kPipelineStages; ++st)
      for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane)
        stages_[st][lane] = LegacySlot{frame.stage[st][lane].valid != 0,
                                       frame.stage[st][lane].encoding};
    if (frame.hold) return;
    for (unsigned p = 0; p < config_.num_ports; ++p) {
      PortFifo& fifo = fifos_[p];
      fifo.entries[fifo.head] = frame.port[p];
      fifo.head = (fifo.head + 1) % config_.data_fifo_depth;
    }
  }

  static bool data_equal(const Signature& a, const Signature& b) {
    const unsigned n = a.config_.data_fifo_depth;
    for (unsigned p = 0; p < a.config_.num_ports; ++p) {
      const PortFifo& fa = a.fifos_[p];
      const PortFifo& fb = b.fifos_[p];
      for (unsigned i = 0; i < n; ++i) {
        if (!(fa.entries[(fa.head + i) % n] == fb.entries[(fb.head + i) % n])) return false;
      }
    }
    return true;
  }

  static bool instruction_equal(const Signature& a, const Signature& b) {
    if (a.config_.is_mode == monitor::IsMode::kPerStage) return a.stages_ == b.stages_;
    const auto flatten = [](const Signature& s) {
      std::vector<u32> list;  // the per-cycle heap allocation this PR removed
      for (int st = core::kPipelineStages - 1; st >= 0; --st)
        for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane)
          if (s.stages_[st][lane].valid) list.push_back(s.stages_[st][lane].encoding);
      return list;
    };
    return flatten(a) == flatten(b);
  }

  u32 data_crc() const {
    Crc32 crc;
    const unsigned n = config_.data_fifo_depth;
    for (const PortFifo& fifo : fifos_) {
      for (unsigned i = 0; i < n; ++i) {
        const core::PortTap& tap = fifo.entries[(fifo.head + i) % n];
        crc.add_byte(tap.enable ? 1 : 0);
        crc.add(tap.value);
      }
    }
    return crc.value();
  }

  u32 instruction_crc() const {
    Crc32 crc;
    for (const auto& stage : stages_) {
      for (const auto& slot : stage) {
        crc.add_byte(slot.valid ? 1 : 0);
        crc.add(slot.encoding);
      }
    }
    return crc.value();
  }

  struct PortFifo {
    std::vector<core::PortTap> entries;
    unsigned head = 0;
  };
  monitor::SafeDmConfig config_;
  std::vector<PortFifo> fifos_;
  std::array<std::array<LegacySlot, core::kMaxIssueWidth>, core::kPipelineStages> stages_{};
};

// Full pre-PR per-cycle datapath, including the bookkeeping the current
// SafeDm still performs (commit diff, run-length histograms, interrupt
// check) so the measured delta isolates the comparison strategy.
struct Monitor {
  explicit Monitor(const monitor::SafeDmConfig& config)
      : config_(config),
        sig0_(config),
        sig1_(config),
        enabled_(config.start_enabled),
        hist_nodiv_(Histogram::exponential(16)),
        hist_ds_(Histogram::exponential(16)),
        hist_is_(Histogram::exponential(16)) {}

  void on_cycle(u64 /*cycle*/, const core::CoreTapFrame& f0, const core::CoreTapFrame& f1) {
    sig0_.capture(f0);
    sig1_.capture(f1);
    inst_diff_.on_commits(f0.commits, f1.commits);

    seen_commit_[0] = seen_commit_[0] || f0.commits > 0;
    seen_commit_[1] = seen_commit_[1] || f1.commits > 0;
    const bool armed = !config_.arm_on_first_commit || (seen_commit_[0] && seen_commit_[1]);
    const bool both_running = !f0.halted && !f1.halted;
    if (!enabled_ || !both_running || !armed) return;
    ++monitored_;

    bool ds_match, is_match;
    if (config_.compare == monitor::CompareMode::kRaw) {
      ds_match = Signature::data_equal(sig0_, sig1_);
      is_match = Signature::instruction_equal(sig0_, sig1_);
    } else {
      ds_match = sig0_.data_crc() == sig1_.data_crc();
      is_match = sig0_.instruction_crc() == sig1_.instruction_crc();
    }
    const bool nodiv = ds_match && is_match;

    const auto track = [](bool condition, u64& run, u64& counter, Histogram& hist) {
      if (condition) {
        ++counter;
        ++run;
      } else if (run > 0) {
        hist.add(run);
        run = 0;
      }
    };
    track(ds_match, ds_run_, ds_match_, hist_ds_);
    track(is_match, is_run_, is_match_, hist_is_);
    track(nodiv, nodiv_run_, nodiv_, hist_nodiv_);

    if (inst_diff_.armed() && inst_diff_.diff() == 0) ++zero_stag_;

    bool fire = false;
    switch (config_.report) {
      case monitor::ReportMode::kInterruptFirst:
        fire = nodiv_ >= 1;
        break;
      case monitor::ReportMode::kInterruptThreshold:
        fire = nodiv_ >= config_.interrupt_threshold;
        break;
      case monitor::ReportMode::kPollOnly:
        break;
    }
    if (fire && !irq_pending_) irq_pending_ = true;
  }

  monitor::SafeDmConfig config_;
  Signature sig0_;
  Signature sig1_;
  monitor::InstructionDiff inst_diff_;
  bool enabled_;
  bool irq_pending_ = false;
  std::array<bool, 2> seen_commit_{false, false};
  u64 monitored_ = 0;
  u64 zero_stag_ = 0;
  u64 nodiv_ = 0;
  u64 ds_match_ = 0;
  u64 is_match_ = 0;
  u64 nodiv_run_ = 0;
  u64 ds_run_ = 0;
  u64 is_run_ = 0;
  Histogram hist_nodiv_;
  Histogram hist_ds_;
  Histogram hist_is_;
};

}  // namespace legacy

namespace {

struct FramePair {
  core::CoreTapFrame f0;
  core::CoreTapFrame f1;
};

core::CoreTapFrame random_frame(Xoshiro256& rng) {
  core::CoreTapFrame f;
  for (unsigned s = 0; s < core::kPipelineStages; ++s)
    for (unsigned l = 0; l < core::kMaxIssueWidth; ++l)
      f.stage[s][l] = core::StageSlotTap{rng.chance(0.9), static_cast<u32>(rng.next())};
  for (unsigned p = 0; p < core::kMaxPorts; ++p)
    f.port[p] = core::PortTap{rng.chance(0.8), rng.next()};
  f.commits = static_cast<unsigned>(rng.below(3));
  return f;
}

/// `divergent` adds independent per-core holds (realignment pressure) and
/// occasional value divergence; otherwise both cores see identical frames
/// with an occasional common hold.
std::vector<FramePair> make_trace(std::size_t length, bool divergent, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<FramePair> trace(length);
  for (FramePair& pair : trace) {
    pair.f0 = random_frame(rng);
    pair.f0.hold = rng.chance(0.15);
    pair.f1 = pair.f0;
    if (divergent) {
      pair.f1.hold = rng.chance(0.15);  // independent: de-aligns the FIFOs
      if (rng.chance(0.3)) pair.f1 = random_frame(rng);
    }
  }
  return trace;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct ModeResult {
  std::string name;
  double cycles_per_sec = 0;
  u64 nodiv = 0;  // consumed so the compiler cannot elide the work
};

// Repetitions per mode: scheduling noise on a shared host only ever slows
// a run down, so the best of N repetitions approximates the true speed.
// Repetitions are interleaved round-robin across modes (see main) so a
// burst of background load cannot bias one mode's every repetition.
unsigned g_reps = 5;

template <typename PumpFn>
ModeResult measure(const std::string& name, u64 cycles, const std::vector<FramePair>& trace,
                   PumpFn&& pump) {
  const auto start = std::chrono::steady_clock::now();
  const u64 nodiv = pump(cycles, trace);
  const double elapsed = seconds_since(start);
  return ModeResult{name, elapsed > 0 ? static_cast<double>(cycles) / elapsed : 0, nodiv};
}

monitor::SafeDmConfig bench_config(monitor::CompareMode compare) {
  monitor::SafeDmConfig config;
  config.num_ports = 3;
  config.data_fifo_depth = 4;
  config.compare = compare;
  config.start_enabled = true;
  config.arm_on_first_commit = false;
  return config;
}

ModeResult run_safedm(const std::string& name, u64 cycles, const std::vector<FramePair>& trace,
                      monitor::CompareMode compare, bool incremental) {
  return measure(name, cycles, trace, [&](u64 n, const std::vector<FramePair>& t) {
    monitor::SafeDmConfig config = bench_config(compare);
    config.incremental_compare = incremental;
    monitor::SafeDm dm(config);
    const std::size_t len = t.size();
    for (u64 c = 0, i = 0; c < n; ++c) {
      const FramePair& pair = t[i];
      if (++i == len) i = 0;  // no per-cycle modulo: it would dwarf the DUT
      dm.on_cycle(c, pair.f0, pair.f1);
    }
    return dm.counters().nodiv_cycles;
  });
}

ModeResult run_legacy(const std::string& name, u64 cycles, const std::vector<FramePair>& trace,
                      monitor::CompareMode compare) {
  return measure(name, cycles, trace, [&](u64 n, const std::vector<FramePair>& t) {
    legacy::Monitor dm(bench_config(compare));
    const std::size_t len = t.size();
    for (u64 c = 0, i = 0; c < n; ++c) {
      const FramePair& pair = t[i];
      if (++i == len) i = 0;
      dm.on_cycle(c, pair.f0, pair.f1);
    }
    return dm.nodiv_;
  });
}

}  // namespace

int main(int argc, char** argv) {
  u64 cycles = 2'000'000;
  std::string json_path = "BENCH_throughput.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--cycles=", 9) == 0) cycles = std::strtoull(argv[i] + 9, nullptr, 10);
    else if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    else if (std::strncmp(argv[i], "--reps=", 7) == 0)
      g_reps = static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 10));
    else if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  if (cycles == 0) cycles = 1;
  if (g_reps == 0) g_reps = 1;

  // 64 pairs ≈ 27 KB: L1-resident, so trace fetch does not drown the
  // datapath under measurement.
  const std::vector<FramePair> matched = make_trace(64, /*divergent=*/false, 0x5AFE0001);
  const std::vector<FramePair> divergent = make_trace(64, /*divergent=*/true, 0x5AFE0002);

  // Warm-up pass so lazy page faults / frequency scaling don't skew the
  // first measurement.
  run_safedm("warmup", std::min<u64>(cycles / 4 + 1, 200'000), matched,
             monitor::CompareMode::kRaw, true);

  const std::vector<std::function<ModeResult()>> modes = {
      [&] { return run_legacy("raw_legacy", cycles, matched, monitor::CompareMode::kRaw); },
      [&] {
        return run_safedm("raw_exhaustive", cycles, matched, monitor::CompareMode::kRaw, false);
      },
      [&] {
        return run_safedm("raw_incremental", cycles, matched, monitor::CompareMode::kRaw, true);
      },
      [&] { return run_legacy("crc_legacy", cycles, matched, monitor::CompareMode::kCrc32); },
      [&] {
        return run_safedm("crc_exhaustive", cycles, matched, monitor::CompareMode::kCrc32, false);
      },
      [&] {
        return run_safedm("crc_incremental", cycles, matched, monitor::CompareMode::kCrc32, true);
      },
      [&] {
        return run_legacy("raw_legacy_divergent", cycles, divergent, monitor::CompareMode::kRaw);
      },
      [&] {
        return run_safedm("raw_incremental_divergent", cycles, divergent,
                          monitor::CompareMode::kRaw, true);
      },
  };
  std::vector<ModeResult> results(modes.size());
  for (unsigned rep = 0; rep < g_reps; ++rep) {
    for (std::size_t i = 0; i < modes.size(); ++i) {
      ModeResult r = modes[i]();
      if (r.cycles_per_sec > results[i].cycles_per_sec) results[i].cycles_per_sec = r.cycles_per_sec;
      results[i].name = std::move(r.name);
      results[i].nodiv = r.nodiv;
    }
  }

  const auto find = [&](const char* name) -> const ModeResult& {
    for (const ModeResult& r : results)
      if (r.name == name) return r;
    std::fprintf(stderr, "missing mode %s\n", name);
    std::exit(2);
  };
  const double raw_vs_legacy =
      find("raw_incremental").cycles_per_sec / find("raw_legacy").cycles_per_sec;
  const double raw_vs_exhaustive =
      find("raw_incremental").cycles_per_sec / find("raw_exhaustive").cycles_per_sec;
  const double crc_vs_legacy =
      find("crc_incremental").cycles_per_sec / find("crc_legacy").cycles_per_sec;
  const double crc_vs_exhaustive =
      find("crc_incremental").cycles_per_sec / find("crc_exhaustive").cycles_per_sec;

  std::printf("Monitor throughput (simulated cycles/sec, %llu cycles, geometry m=3 n=4)\n\n",
              static_cast<unsigned long long>(cycles));
  std::printf("%-28s %16s %12s\n", "mode", "cycles/sec", "nodiv");
  for (const ModeResult& r : results)
    std::printf("%-28s %16.0f %12llu\n", r.name.c_str(), r.cycles_per_sec,
                static_cast<unsigned long long>(r.nodiv));
  std::printf("\nspeedup raw incremental vs legacy (pre-PR): %.2fx\n", raw_vs_legacy);
  std::printf("speedup raw incremental vs exhaustive:      %.2fx\n", raw_vs_exhaustive);
  std::printf("speedup crc incremental vs legacy (pre-PR): %.2fx\n", crc_vs_legacy);
  std::printf("speedup crc incremental vs exhaustive:      %.2fx\n", crc_vs_exhaustive);

  bench::JsonWriter json;
  json.begin_object();
  json.prop("schema", "safedm.bench.throughput/v1");
  json.key("geometry").begin_object();
  json.prop("num_ports", 3)
      .prop("data_fifo_depth", 4)
      .prop("pipeline_stages", core::kPipelineStages)
      .prop("issue_width", core::kMaxIssueWidth);
  json.end_object();
  json.prop("cycles", cycles);
  json.key("modes").begin_object();
  for (const ModeResult& r : results) {
    json.key(r.name).begin_object();
    json.prop("cycles_per_sec", r.cycles_per_sec, 1).prop("nodiv", r.nodiv);
    json.end_object();
  }
  json.end_object();
  json.key("speedups").begin_object();
  json.prop("raw_incremental_vs_legacy", raw_vs_legacy, 3)
      .prop("raw_incremental_vs_exhaustive", raw_vs_exhaustive, 3)
      .prop("crc_incremental_vs_legacy", crc_vs_legacy, 3)
      .prop("crc_incremental_vs_exhaustive", crc_vs_exhaustive, 3);
  json.end_object();
  json.end_object();
  if (json.write_file(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }

  if (check) {
    if (raw_vs_exhaustive < 1.0) {
      std::fprintf(stderr,
                   "PERF-SMOKE FAIL: incremental comparator slower than exhaustive "
                   "(%.2fx)\n",
                   raw_vs_exhaustive);
      return 1;
    }
    std::printf("perf-smoke OK: incremental %.2fx vs exhaustive, %.2fx vs legacy\n",
                raw_vs_exhaustive, raw_vs_legacy);
  }
  return 0;
}
