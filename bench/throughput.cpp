// S2 — Monitor simulation throughput: simulated cycles/second of the
// per-cycle SafeDM datapath for the legacy (pre-incremental) comparison,
// the current exhaustive path, the incremental DiversityComparator, and
// the batched SIMD fast path (on_cycles), in raw and CRC32 compare modes.
// Emits machine-readable JSON (BENCH_throughput.json) so the perf
// trajectory is tracked PR over PR; bench/baselines/ holds the committed
// reference the perf_regression CTest diffs against.
//
// The "legacy" baseline is a faithful replica of the original per-cycle
// code: vector-of-vectors ring buffers indexed with modulo arithmetic, a
// full whole-signature comparison every cycle, and (flat IS mode) a
// heap-allocated flatten per comparison. It exists only here, as the
// fixed reference point the speedup is measured against.
//
// Frames are a deterministic synthetic stream (xoshiro-seeded). The
// headline "matched" scenario feeds both cores identical busy frames —
// the worst case for every comparator (no early exit) and the
// hardware-relevant steady state; the "divergent" scenario adds
// independent per-core holds and value divergence, exercising the
// comparator's realignment fallback (mid-chunk, for the batched path).
//
// Usage: bench_throughput [--cycles=N] [--reps=N] [--json=PATH] [--check]
//   --reps: repetitions per mode; the best is the headline number and
//   min/median/stddev land in the JSON (hwvar-style noise reporting).
//   --check exits nonzero if the incremental comparator is not faster
//   than the exhaustive path or the batched path loses its edge over the
//   per-cycle incremental one (the perf-smoke CTest gate).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "json_writer.hpp"
#include "safedm/common/rng.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/safedm/simd.hpp"

using namespace safedm;
namespace simd = safedm::monitor::simd;

namespace legacy {

// ---- pre-incremental SignatureGenerator + monitor datapath replica ------

// The pre-PR stage slot: `bool valid` plus padding. The padded layout is
// part of the baseline being measured — it forces the element-wise struct
// comparison the packed representation replaced.
struct LegacySlot {
  bool valid = false;
  u32 encoding = 0;

  bool operator==(const LegacySlot&) const = default;
};

struct Signature {
  explicit Signature(const monitor::SafeDmConfig& config) : config_(config) {
    fifos_.resize(config.num_ports);
    for (auto& fifo : fifos_) fifo.entries.assign(config.data_fifo_depth, {});
  }

  void capture(const core::CoreTapFrame& frame) {
    for (unsigned st = 0; st < core::kPipelineStages; ++st)
      for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane)
        stages_[st][lane] = LegacySlot{frame.stage[st][lane].valid != 0,
                                       frame.stage[st][lane].encoding};
    if (frame.hold) return;
    for (unsigned p = 0; p < config_.num_ports; ++p) {
      PortFifo& fifo = fifos_[p];
      fifo.entries[fifo.head] = frame.port[p];
      fifo.head = (fifo.head + 1) % config_.data_fifo_depth;
    }
  }

  static bool data_equal(const Signature& a, const Signature& b) {
    const unsigned n = a.config_.data_fifo_depth;
    for (unsigned p = 0; p < a.config_.num_ports; ++p) {
      const PortFifo& fa = a.fifos_[p];
      const PortFifo& fb = b.fifos_[p];
      for (unsigned i = 0; i < n; ++i) {
        if (!(fa.entries[(fa.head + i) % n] == fb.entries[(fb.head + i) % n])) return false;
      }
    }
    return true;
  }

  static bool instruction_equal(const Signature& a, const Signature& b) {
    if (a.config_.is_mode == monitor::IsMode::kPerStage) return a.stages_ == b.stages_;
    const auto flatten = [](const Signature& s) {
      std::vector<u32> list;  // the per-cycle heap allocation this PR removed
      for (int st = core::kPipelineStages - 1; st >= 0; --st)
        for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane)
          if (s.stages_[st][lane].valid) list.push_back(s.stages_[st][lane].encoding);
      return list;
    };
    return flatten(a) == flatten(b);
  }

  u32 data_crc() const {
    Crc32 crc;
    const unsigned n = config_.data_fifo_depth;
    for (const PortFifo& fifo : fifos_) {
      for (unsigned i = 0; i < n; ++i) {
        const core::PortTap& tap = fifo.entries[(fifo.head + i) % n];
        crc.add_byte(tap.enable ? 1 : 0);
        crc.add(tap.value);
      }
    }
    return crc.value();
  }

  u32 instruction_crc() const {
    Crc32 crc;
    for (const auto& stage : stages_) {
      for (const auto& slot : stage) {
        crc.add_byte(slot.valid ? 1 : 0);
        crc.add(slot.encoding);
      }
    }
    return crc.value();
  }

  struct PortFifo {
    std::vector<core::PortTap> entries;
    unsigned head = 0;
  };
  monitor::SafeDmConfig config_;
  std::vector<PortFifo> fifos_;
  std::array<std::array<LegacySlot, core::kMaxIssueWidth>, core::kPipelineStages> stages_{};
};

// Full pre-PR per-cycle datapath, including the bookkeeping the current
// SafeDm still performs (commit diff, run-length histograms, interrupt
// check) so the measured delta isolates the comparison strategy.
struct Monitor {
  explicit Monitor(const monitor::SafeDmConfig& config)
      : config_(config),
        sig0_(config),
        sig1_(config),
        enabled_(config.start_enabled),
        hist_nodiv_(Histogram::exponential(16)),
        hist_ds_(Histogram::exponential(16)),
        hist_is_(Histogram::exponential(16)) {}

  void on_cycle(u64 /*cycle*/, const core::CoreTapFrame& f0, const core::CoreTapFrame& f1) {
    sig0_.capture(f0);
    sig1_.capture(f1);
    inst_diff_.on_commits(f0.commits, f1.commits);

    seen_commit_[0] = seen_commit_[0] || f0.commits > 0;
    seen_commit_[1] = seen_commit_[1] || f1.commits > 0;
    const bool armed = !config_.arm_on_first_commit || (seen_commit_[0] && seen_commit_[1]);
    const bool both_running = !f0.halted && !f1.halted;
    if (!enabled_ || !both_running || !armed) return;
    ++monitored_;

    bool ds_match, is_match;
    if (config_.compare == monitor::CompareMode::kRaw) {
      ds_match = Signature::data_equal(sig0_, sig1_);
      is_match = Signature::instruction_equal(sig0_, sig1_);
    } else {
      ds_match = sig0_.data_crc() == sig1_.data_crc();
      is_match = sig0_.instruction_crc() == sig1_.instruction_crc();
    }
    const bool nodiv = ds_match && is_match;

    const auto track = [](bool condition, u64& run, u64& counter, Histogram& hist) {
      if (condition) {
        ++counter;
        ++run;
      } else if (run > 0) {
        hist.add(run);
        run = 0;
      }
    };
    track(ds_match, ds_run_, ds_match_, hist_ds_);
    track(is_match, is_run_, is_match_, hist_is_);
    track(nodiv, nodiv_run_, nodiv_, hist_nodiv_);

    if (inst_diff_.armed() && inst_diff_.diff() == 0) ++zero_stag_;

    bool fire = false;
    switch (config_.report) {
      case monitor::ReportMode::kInterruptFirst:
        fire = nodiv_ >= 1;
        break;
      case monitor::ReportMode::kInterruptThreshold:
        fire = nodiv_ >= config_.interrupt_threshold;
        break;
      case monitor::ReportMode::kPollOnly:
        break;
    }
    if (fire && !irq_pending_) irq_pending_ = true;
  }

  monitor::SafeDmConfig config_;
  Signature sig0_;
  Signature sig1_;
  monitor::InstructionDiff inst_diff_;
  bool enabled_;
  bool irq_pending_ = false;
  std::array<bool, 2> seen_commit_{false, false};
  u64 monitored_ = 0;
  u64 zero_stag_ = 0;
  u64 nodiv_ = 0;
  u64 ds_match_ = 0;
  u64 is_match_ = 0;
  u64 nodiv_run_ = 0;
  u64 ds_run_ = 0;
  u64 is_run_ = 0;
  Histogram hist_nodiv_;
  Histogram hist_ds_;
  Histogram hist_is_;
};

}  // namespace legacy

namespace {

/// Both representations of the same frame stream: interleaved pairs for
/// the per-cycle pumps, and the two contiguous per-core arrays on_cycles
/// consumes (the batched API takes one frame pointer per core).
struct Trace {
  struct FramePair {
    core::CoreTapFrame f0;
    core::CoreTapFrame f1;
  };
  std::vector<FramePair> pairs;
  std::vector<core::CoreTapFrame> f0;
  std::vector<core::CoreTapFrame> f1;

  std::size_t length() const { return pairs.size(); }
};

core::CoreTapFrame random_frame(Xoshiro256& rng) {
  core::CoreTapFrame f;
  for (unsigned s = 0; s < core::kPipelineStages; ++s)
    for (unsigned l = 0; l < core::kMaxIssueWidth; ++l)
      f.stage[s][l] = core::StageSlotTap{rng.chance(0.9), static_cast<u32>(rng.next())};
  for (unsigned p = 0; p < core::kMaxPorts; ++p)
    f.port[p] = core::PortTap{rng.chance(0.8), rng.next()};
  f.commits = static_cast<unsigned>(rng.below(3));
  return f;
}

/// `divergent` adds independent per-core holds (realignment pressure) and
/// occasional value divergence; otherwise both cores see identical frames
/// with an occasional common hold.
Trace make_trace(std::size_t length, bool divergent, u64 seed) {
  Xoshiro256 rng(seed);
  Trace trace;
  trace.pairs.resize(length);
  for (Trace::FramePair& pair : trace.pairs) {
    pair.f0 = random_frame(rng);
    pair.f0.hold = rng.chance(0.15);
    pair.f1 = pair.f0;
    if (divergent) {
      pair.f1.hold = rng.chance(0.15);  // independent: de-aligns the FIFOs
      if (rng.chance(0.3)) pair.f1 = random_frame(rng);
    }
    trace.f0.push_back(pair.f0);
    trace.f1.push_back(pair.f1);
  }
  return trace;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct ModeResult {
  std::string name;
  double cycles_per_sec = 0;
  u64 nodiv = 0;  // consumed so the compiler cannot elide the work
};

/// Per-mode repetition statistics; the headline number is the best rep.
struct ModeStats {
  std::string name;
  bench::Measurement meas;
  u64 nodiv = 0;
};

unsigned g_reps = 5;

template <typename PumpFn>
ModeResult measure(const std::string& name, u64 cycles, PumpFn&& pump) {
  const auto start = std::chrono::steady_clock::now();
  const u64 nodiv = pump(cycles);
  const double elapsed = seconds_since(start);
  return ModeResult{name, elapsed > 0 ? static_cast<double>(cycles) / elapsed : 0, nodiv};
}

monitor::SafeDmConfig bench_config(monitor::CompareMode compare) {
  monitor::SafeDmConfig config;
  config.num_ports = 3;
  config.data_fifo_depth = 4;
  config.compare = compare;
  config.start_enabled = true;
  config.arm_on_first_commit = false;
  return config;
}

ModeResult run_safedm(const std::string& name, u64 cycles, const Trace& trace,
                      monitor::CompareMode compare, bool incremental) {
  return measure(name, cycles, [&](u64 n) {
    monitor::SafeDmConfig config = bench_config(compare);
    config.incremental_compare = incremental;
    monitor::SafeDm dm(config);
    const std::size_t len = trace.length();
    for (u64 c = 0, i = 0; c < n; ++c) {
      const Trace::FramePair& pair = trace.pairs[i];
      if (++i == len) i = 0;  // no per-cycle modulo: it would dwarf the DUT
      dm.on_cycle(c, pair.f0, pair.f1);
    }
    return dm.counters().nodiv_cycles;
  });
}

/// Batched pump: the whole trace in one on_cycles call per lap, the way
/// MpSoc's observer batching (or a bench rig) hands frames over. The
/// monitor chunks internally at 64 cycles.
ModeResult run_safedm_batched(const std::string& name, u64 cycles, const Trace& trace,
                              simd::Kernel kernel) {
  return measure(name, cycles, [&](u64 n) {
    const simd::Kernel previous = simd::force_kernel(kernel);
    monitor::SafeDmConfig config = bench_config(monitor::CompareMode::kRaw);
    config.incremental_compare = true;
    monitor::SafeDm dm(config);
    const u64 len = trace.length();
    for (u64 c = 0; c < n;) {
      const unsigned m = static_cast<unsigned>(len < n - c ? len : n - c);
      dm.on_cycles(c, trace.f0.data(), trace.f1.data(), m);
      c += m;
    }
    simd::force_kernel(previous);
    return dm.counters().nodiv_cycles;
  });
}

ModeResult run_legacy(const std::string& name, u64 cycles, const Trace& trace,
                      monitor::CompareMode compare) {
  return measure(name, cycles, [&](u64 n) {
    legacy::Monitor dm(bench_config(compare));
    const std::size_t len = trace.length();
    for (u64 c = 0, i = 0; c < n; ++c) {
      const Trace::FramePair& pair = trace.pairs[i];
      if (++i == len) i = 0;
      dm.on_cycle(c, pair.f0, pair.f1);
    }
    return dm.nodiv_;
  });
}

}  // namespace

int main(int argc, char** argv) {
  constexpr char kUsage[] =
      "usage: bench_throughput [--cycles=N] [--reps=N] [--json=PATH] [--check]\n";
  u64 cycles = 2'000'000;
  std::string json_path = "BENCH_throughput.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--cycles=", 9) == 0)
      cycles = bench::parse_u64("--cycles", argv[i] + 9, kUsage, 1);
    else if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    else if (std::strncmp(argv[i], "--reps=", 7) == 0)
      g_reps = bench::parse_u32("--reps", argv[i] + 7, kUsage, 1, 1000);
    else if (std::strcmp(argv[i], "--check") == 0) check = true;
    else {
      std::fprintf(stderr, "unknown option: %s\n%s", argv[i], kUsage);
      return 2;
    }
  }

  // 64 pairs ≈ 27 KB: L1-resident, so trace fetch does not drown the
  // datapath under measurement.
  const Trace matched = make_trace(64, /*divergent=*/false, 0x5AFE0001);
  const Trace divergent = make_trace(64, /*divergent=*/true, 0x5AFE0002);

  const simd::Kernel kernel = simd::active_kernel();

  // Warm-up pass so lazy page faults / frequency scaling don't skew the
  // first measurement.
  run_safedm_batched("warmup", std::min<u64>(cycles / 4 + 1, 200'000), matched, kernel);

  const std::vector<std::function<ModeResult()>> modes = {
      [&] { return run_legacy("raw_legacy", cycles, matched, monitor::CompareMode::kRaw); },
      [&] {
        return run_safedm("raw_exhaustive", cycles, matched, monitor::CompareMode::kRaw, false);
      },
      [&] {
        return run_safedm("raw_incremental", cycles, matched, monitor::CompareMode::kRaw, true);
      },
      [&] { return run_safedm_batched("raw_batched", cycles, matched, kernel); },
      [&] {
        return run_safedm_batched("raw_batched_portable", cycles, matched,
                                  simd::Kernel::kPortable);
      },
      [&] { return run_legacy("crc_legacy", cycles, matched, monitor::CompareMode::kCrc32); },
      [&] {
        return run_safedm("crc_exhaustive", cycles, matched, monitor::CompareMode::kCrc32, false);
      },
      [&] {
        return run_safedm("crc_incremental", cycles, matched, monitor::CompareMode::kCrc32, true);
      },
      [&] {
        return run_legacy("raw_legacy_divergent", cycles, divergent, monitor::CompareMode::kRaw);
      },
      [&] {
        return run_safedm("raw_incremental_divergent", cycles, divergent,
                          monitor::CompareMode::kRaw, true);
      },
      [&] { return run_safedm_batched("raw_batched_divergent", cycles, divergent, kernel); },
  };
  // Repetitions are interleaved round-robin across modes so a burst of
  // background load cannot bias one mode's every repetition.
  std::vector<ModeStats> results(modes.size());
  for (unsigned rep = 0; rep < g_reps; ++rep) {
    for (std::size_t i = 0; i < modes.size(); ++i) {
      ModeResult r = modes[i]();
      results[i].meas.add(r.cycles_per_sec);
      results[i].name = std::move(r.name);
      results[i].nodiv = r.nodiv;
    }
  }

  const auto find = [&](const char* name) -> const ModeStats& {
    for (const ModeStats& r : results)
      if (r.name == name) return r;
    std::fprintf(stderr, "missing mode %s\n", name);
    std::exit(2);
  };
  const auto best = [&](const char* name) { return find(name).meas.best(); };
  const double raw_vs_legacy = best("raw_incremental") / best("raw_legacy");
  const double raw_vs_exhaustive = best("raw_incremental") / best("raw_exhaustive");
  const double crc_vs_legacy = best("crc_incremental") / best("crc_legacy");
  const double crc_vs_exhaustive = best("crc_incremental") / best("crc_exhaustive");
  const double batched_vs_incremental = best("raw_batched") / best("raw_incremental");
  const double batched_portable_vs_incremental =
      best("raw_batched_portable") / best("raw_incremental");
  const double batched_vs_legacy = best("raw_batched") / best("raw_legacy");
  const double batched_portable_vs_legacy = best("raw_batched_portable") / best("raw_legacy");
  const double batched_divergent_vs_incremental =
      best("raw_batched_divergent") / best("raw_incremental_divergent");

  std::printf(
      "Monitor throughput (simulated cycles/sec, %llu cycles x %u reps, geometry m=3 n=4, "
      "kernel %s)\n\n",
      static_cast<unsigned long long>(cycles), g_reps, simd::kernel_name(kernel));
  std::printf("%-28s %16s %16s %12s %12s\n", "mode", "best c/s", "median c/s", "stddev",
              "nodiv");
  for (const ModeStats& r : results)
    std::printf("%-28s %16.0f %16.0f %12.0f %12llu\n", r.name.c_str(), r.meas.best(),
                r.meas.median(), r.meas.stddev(), static_cast<unsigned long long>(r.nodiv));
  std::printf("\nspeedup raw incremental vs legacy (pre-PR):  %.2fx\n", raw_vs_legacy);
  std::printf("speedup raw incremental vs exhaustive:       %.2fx\n", raw_vs_exhaustive);
  std::printf("speedup raw batched vs incremental:          %.2fx\n", batched_vs_incremental);
  std::printf("speedup raw batched (portable) vs increm.:   %.2fx\n",
              batched_portable_vs_incremental);
  std::printf("speedup raw batched vs legacy:               %.2fx\n", batched_vs_legacy);
  std::printf("speedup raw batched (portable) vs legacy:    %.2fx\n",
              batched_portable_vs_legacy);
  std::printf("speedup raw batched divergent vs increm.:    %.2fx\n",
              batched_divergent_vs_incremental);
  std::printf("speedup crc incremental vs legacy (pre-PR):  %.2fx\n", crc_vs_legacy);
  std::printf("speedup crc incremental vs exhaustive:       %.2fx\n", crc_vs_exhaustive);

  bench::JsonWriter json;
  json.begin_object();
  json.prop("schema", "safedm.bench.throughput/v2");
  json.prop("simd_kernel", simd::kernel_name(kernel));
  json.key("geometry").begin_object();
  json.prop("num_ports", 3)
      .prop("data_fifo_depth", 4)
      .prop("pipeline_stages", core::kPipelineStages)
      .prop("issue_width", core::kMaxIssueWidth);
  json.end_object();
  json.prop("cycles", cycles);
  json.prop("reps", g_reps);
  json.key("modes").begin_object();
  for (const ModeStats& r : results) {
    json.key(r.name).begin_object();
    json.prop("cycles_per_sec", r.meas.best(), 1)
        .prop("min", r.meas.min(), 1)
        .prop("median", r.meas.median(), 1)
        .prop("stddev", r.meas.stddev(), 1)
        .prop("nodiv", r.nodiv);
    json.end_object();
  }
  json.end_object();
  json.key("speedups").begin_object();
  json.prop("raw_incremental_vs_legacy", raw_vs_legacy, 3)
      .prop("raw_incremental_vs_exhaustive", raw_vs_exhaustive, 3)
      .prop("raw_batched_vs_incremental", batched_vs_incremental, 3)
      .prop("raw_batched_portable_vs_incremental", batched_portable_vs_incremental, 3)
      .prop("raw_batched_vs_legacy", batched_vs_legacy, 3)
      .prop("raw_batched_portable_vs_legacy", batched_portable_vs_legacy, 3)
      .prop("raw_batched_divergent_vs_incremental", batched_divergent_vs_incremental, 3)
      .prop("crc_incremental_vs_legacy", crc_vs_legacy, 3)
      .prop("crc_incremental_vs_exhaustive", crc_vs_exhaustive, 3);
  json.end_object();
  json.end_object();
  if (json.write_file(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }

  if (check) {
    if (raw_vs_exhaustive < 1.0) {
      std::fprintf(stderr,
                   "PERF-SMOKE FAIL: incremental comparator slower than exhaustive "
                   "(%.2fx)\n",
                   raw_vs_exhaustive);
      return 1;
    }
    if (batched_vs_incremental < 1.5) {
      std::fprintf(stderr,
                   "PERF-SMOKE FAIL: batched path lost its edge over per-cycle "
                   "incremental (%.2fx, want >= 1.5x)\n",
                   batched_vs_incremental);
      return 1;
    }
    // The PR-level acceptance bars: the delivered hot path (SIMD + batched)
    // must be >= 3x the pre-PR incremental path (the legacy replica), and
    // the portable-u64 kernel alone >= 1.5x that same baseline.
    if (batched_vs_legacy < 3.0) {
      std::fprintf(stderr,
                   "PERF-SMOKE FAIL: batched path below 3x the pre-PR incremental "
                   "baseline (%.2fx)\n",
                   batched_vs_legacy);
      return 1;
    }
    if (batched_portable_vs_legacy < 1.5) {
      std::fprintf(stderr,
                   "PERF-SMOKE FAIL: portable batched path below 1.5x the pre-PR "
                   "incremental baseline (%.2fx)\n",
                   batched_portable_vs_legacy);
      return 1;
    }
    std::printf(
        "perf-smoke OK: incremental %.2fx vs exhaustive, batched %.2fx vs incremental, "
        "batched %.2fx (portable %.2fx) vs pre-PR baseline\n",
        raw_vs_exhaustive, batched_vs_incremental, batched_vs_legacy,
        batched_portable_vs_legacy);
  }
  return 0;
}
