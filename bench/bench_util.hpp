// Shared experiment harness for the bench binaries: builds the MPSoC +
// SafeDM rig, runs a workload redundantly, and returns the monitor's
// counters. Mirrors the paper's methodology (Section V-B): synchronized
// start, optional nop prelude on one core, monitor armed once both cores
// execute the program, max over repeated runs.
#pragma once

#include <string>
#include <vector>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::bench {

struct RunOutcome {
  u64 cycles = 0;            // SoC cycles until both cores halted
  u64 monitored_cycles = 0;
  u64 zero_stag = 0;         // cycles with instruction diff == 0
  u64 nodiv = 0;             // cycles with neither data nor instr diversity
  u64 ds_match = 0;
  u64 is_match = 0;
  u64 committed0 = 0;
  u64 committed1 = 0;
  bool completed = false;
};

struct RunSpec {
  unsigned scale = 1;
  unsigned stagger_nops = 0;
  unsigned delayed_core = 1;
  unsigned arbiter_bias = 0;
  u64 max_cycles = 20'000'000;
  monitor::SafeDmConfig dm{};
  soc::SocConfig soc{};
};

inline RunOutcome run_redundant(const assembler::Program& program, const RunSpec& spec) {
  soc::SocConfig soc_config = spec.soc;
  soc_config.arbiter_bias = spec.arbiter_bias;
  soc::MpSoc soc(soc_config);

  monitor::SafeDmConfig dm_config = spec.dm;
  dm_config.start_enabled = true;
  monitor::SafeDm dm(dm_config);
  soc.add_observer(&dm);

  soc.load_redundant(program, spec.stagger_nops, spec.delayed_core);
  dm.set_prelude_ignore(0, soc.prelude_commits(0));
  dm.set_prelude_ignore(1, soc.prelude_commits(1));

  const u64 cycles = soc.run(spec.max_cycles);
  dm.finalize();

  RunOutcome out;
  out.cycles = cycles;
  out.completed = soc.all_halted();
  const auto& c = dm.counters();
  out.monitored_cycles = c.monitored_cycles;
  out.zero_stag = c.zero_stag_cycles;
  out.nodiv = c.nodiv_cycles;
  out.ds_match = c.ds_match_cycles;
  out.is_match = c.is_match_cycles;
  out.committed0 = soc.core(0).stats().committed;
  out.committed1 = soc.core(1).stats().committed;
  return out;
}

/// The paper reports the max over repeated runs ("we selected the highest
/// values found"). Runs vary who starts first and the arbiter phase.
inline RunOutcome max_over_runs(const assembler::Program& program, RunSpec spec) {
  std::vector<RunSpec> specs;
  if (spec.stagger_nops == 0) {
    for (unsigned bias = 0; bias < 2; ++bias) {
      RunSpec s = spec;
      s.arbiter_bias = bias;
      specs.push_back(s);
    }
  } else {
    for (unsigned delayed = 0; delayed < 2; ++delayed) {
      RunSpec s = spec;
      s.delayed_core = delayed;
      specs.push_back(s);
    }
  }
  RunOutcome best;
  for (const RunSpec& s : specs) {
    const RunOutcome out = run_redundant(program, s);
    best.cycles = std::max(best.cycles, out.cycles);
    best.monitored_cycles = std::max(best.monitored_cycles, out.monitored_cycles);
    best.zero_stag = std::max(best.zero_stag, out.zero_stag);
    best.nodiv = std::max(best.nodiv, out.nodiv);
    best.ds_match = std::max(best.ds_match, out.ds_match);
    best.is_match = std::max(best.is_match, out.is_match);
    best.committed0 = std::max(best.committed0, out.committed0);
    best.committed1 = std::max(best.committed1, out.committed1);
    best.completed = best.completed || out.completed;
  }
  return best;
}

}  // namespace safedm::bench
