// Shared pieces of the bench executables:
//
//   - the redundant-run experiment harness itself now lives in
//     src/scenario (safedm/scenario/redundant.hpp) so the JSON scenario
//     runner and the bench drivers execute the same code path; this
//     header re-exports it under the historical safedm::bench names,
//   - hwvar-style repetition statistics (Measurement),
//   - checked CLI numeric parsing: every bench flag goes through
//     parse_u64/parse_u32/parse_double, which reject non-numeric,
//     negative, and out-of-range input with a clear error plus the
//     driver's usage line — the bare-atoi era of `--threads=abc`
//     silently meaning 0 is over.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string_view>
#include <vector>

#include "safedm/scenario/redundant.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::bench {

using scenario::RunOutcome;
using scenario::RunSpec;
using scenario::max_over_runs;
using scenario::run_redundant;

/// Process-wide bench pool (sized by SAFEDM_BENCH_THREADS / hardware).
inline ThreadPool& bench_pool() { return scenario::shared_pool(); }

/// Repetition statistics for timed measurements (hwvar-style): collect one
/// sample per repetition, report best alongside min/median/stddev so the
/// JSON carries the host's noise level instead of silently folding it
/// away. For throughput-style metrics (higher is better) `best` is the
/// max; scheduling noise on a shared host only ever slows a run down, so
/// the best of K repetitions approximates the true speed while the
/// median/stddev expose how trustworthy that approximation was.
struct Measurement {
  std::vector<double> samples;

  void add(double sample) { samples.push_back(sample); }
  bool empty() const { return samples.empty(); }

  double best() const {
    return samples.empty() ? 0.0 : *std::max_element(samples.begin(), samples.end());
  }
  double min() const {
    return samples.empty() ? 0.0 : *std::min_element(samples.begin(), samples.end());
  }
  double median() const {
    if (samples.empty()) return 0.0;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t mid = sorted.size() / 2;
    return sorted.size() % 2 ? sorted[mid] : (sorted[mid - 1] + sorted[mid]) / 2.0;
  }
  double stddev() const {
    if (samples.size() < 2) return 0.0;
    double mean = 0;
    for (double s : samples) mean += s;
    mean /= static_cast<double>(samples.size());
    double var = 0;
    for (double s : samples) var += (s - mean) * (s - mean);
    return std::sqrt(var / static_cast<double>(samples.size() - 1));
  }
};

// ---- checked CLI parsing ---------------------------------------------------

/// Strict decimal u64: every character must be a digit, the value must
/// fit u64 and land in [lo, hi]. No sign, no whitespace, no prefixes —
/// `-1`, `0x10`, `12abc`, and `""` are all rejected (std::nullopt), where
/// atoi/strtoul would have silently produced 0 or a wrapped value.
inline std::optional<u64> try_parse_u64(std::string_view text, u64 lo = 0, u64 hi = ~u64{0}) {
  if (text.empty()) return std::nullopt;
  u64 value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const u64 digit = static_cast<u64>(c - '0');
    if (value > (~u64{0} - digit) / 10) return std::nullopt;  // would overflow
    value = value * 10 + digit;
  }
  if (value < lo || value > hi) return std::nullopt;
  return value;
}

/// Strict finite double (strtod grammar, fully consumed, finite result).
inline std::optional<double> try_parse_double(std::string_view text) {
  if (text.empty() || text.size() > 63) return std::nullopt;
  char buf[64];
  text.copy(buf, text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + text.size() || !std::isfinite(value)) return std::nullopt;
  return value;
}

[[noreturn]] inline void cli_fail(const char* flag, std::string_view value,
                                  const char* expected, const char* usage) {
  std::fprintf(stderr, "error: %s expects %s, got \"%.*s\"\n%s", flag, expected,
               static_cast<int>(value.size()), value.data(), usage);
  std::exit(2);
}

/// Parse-or-die helpers for bench main()s: on bad input, print a
/// diagnostic naming the flag and the accepted range plus the driver's
/// usage text, and exit 2 before any simulation state is built.
inline u64 parse_u64(const char* flag, std::string_view value, const char* usage, u64 lo = 0,
                     u64 hi = ~u64{0}) {
  if (const std::optional<u64> parsed = try_parse_u64(value, lo, hi)) return *parsed;
  char expected[96];
  std::snprintf(expected, sizeof expected, "an integer in [%llu, %llu]",
                static_cast<unsigned long long>(lo), static_cast<unsigned long long>(hi));
  cli_fail(flag, value, expected, usage);
}

inline u32 parse_u32(const char* flag, std::string_view value, const char* usage, u32 lo = 0,
                     u32 hi = ~u32{0}) {
  return static_cast<u32>(parse_u64(flag, value, usage, lo, hi));
}

inline double parse_double(const char* flag, std::string_view value, const char* usage) {
  if (const std::optional<double> parsed = try_parse_double(value)) return *parsed;
  cli_fail(flag, value, "a finite number", usage);
}

}  // namespace safedm::bench
