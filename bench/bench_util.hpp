// Shared experiment harness for the bench binaries: builds the MPSoC +
// SafeDM rig, runs a workload redundantly, and returns the monitor's
// counters. Mirrors the paper's methodology (Section V-B): synchronized
// start, optional nop prelude on one core, monitor armed once both cores
// execute the program, max over repeated runs.
//
// Every MpSoc run is fully independent, so the repeated-run and sweep
// layers fan out over a process-wide ThreadPool. SAFEDM_BENCH_THREADS
// overrides the worker count (default: hardware concurrency; 1 restores
// the historical serial behavior for debugging).
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "safedm/common/thread_pool.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::bench {

/// Repetition statistics for timed measurements (hwvar-style): collect one
/// sample per repetition, report best alongside min/median/stddev so the
/// JSON carries the host's noise level instead of silently folding it
/// away. For throughput-style metrics (higher is better) `best` is the
/// max; scheduling noise on a shared host only ever slows a run down, so
/// the best of K repetitions approximates the true speed while the
/// median/stddev expose how trustworthy that approximation was.
struct Measurement {
  std::vector<double> samples;

  void add(double sample) { samples.push_back(sample); }
  bool empty() const { return samples.empty(); }

  double best() const {
    return samples.empty() ? 0.0 : *std::max_element(samples.begin(), samples.end());
  }
  double min() const {
    return samples.empty() ? 0.0 : *std::min_element(samples.begin(), samples.end());
  }
  double median() const {
    if (samples.empty()) return 0.0;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t mid = sorted.size() / 2;
    return sorted.size() % 2 ? sorted[mid] : (sorted[mid - 1] + sorted[mid]) / 2.0;
  }
  double stddev() const {
    if (samples.size() < 2) return 0.0;
    double mean = 0;
    for (double s : samples) mean += s;
    mean /= static_cast<double>(samples.size());
    double var = 0;
    for (double s : samples) var += (s - mean) * (s - mean);
    return std::sqrt(var / static_cast<double>(samples.size() - 1));
  }
};

struct RunOutcome {
  u64 cycles = 0;            // SoC cycles until both cores halted
  u64 monitored_cycles = 0;
  u64 zero_stag = 0;         // cycles with instruction diff == 0
  u64 nodiv = 0;             // cycles with neither data nor instr diversity
  u64 ds_match = 0;
  u64 is_match = 0;
  u64 committed0 = 0;
  u64 committed1 = 0;
  bool completed = false;

  /// Field-wise max aggregation (the paper reports the highest values
  /// found over repeated runs).
  RunOutcome& max_with(const RunOutcome& other) {
    cycles = std::max(cycles, other.cycles);
    monitored_cycles = std::max(monitored_cycles, other.monitored_cycles);
    zero_stag = std::max(zero_stag, other.zero_stag);
    nodiv = std::max(nodiv, other.nodiv);
    ds_match = std::max(ds_match, other.ds_match);
    is_match = std::max(is_match, other.is_match);
    committed0 = std::max(committed0, other.committed0);
    committed1 = std::max(committed1, other.committed1);
    completed = completed || other.completed;
    return *this;
  }
};

struct RunSpec {
  unsigned scale = 1;
  unsigned stagger_nops = 0;
  unsigned delayed_core = 1;
  unsigned arbiter_bias = 0;
  u64 max_cycles = 20'000'000;
  monitor::SafeDmConfig dm{};
  soc::SocConfig soc{};
};

/// Process-wide bench pool (sized by SAFEDM_BENCH_THREADS / hardware).
inline ThreadPool& bench_pool() {
  static ThreadPool pool(bench_thread_count());
  return pool;
}

inline RunOutcome run_redundant(const assembler::Program& program, const RunSpec& spec) {
  soc::SocConfig soc_config = spec.soc;
  soc_config.arbiter_bias = spec.arbiter_bias;
  // SafeDM is the only observer this rig attaches and it is a pure sink,
  // so batched delivery is safe and amortizes per-cycle dispatch. A spec
  // that explicitly set another batch size wins.
  if (soc_config.observer_batch == 1) soc_config.observer_batch = 32;
  soc::MpSoc soc(soc_config);

  monitor::SafeDmConfig dm_config = spec.dm;
  dm_config.start_enabled = true;
  monitor::SafeDm dm(dm_config);
  soc.add_observer(&dm);

  soc.load_redundant(program, spec.stagger_nops, spec.delayed_core);
  dm.set_prelude_ignore(0, soc.prelude_commits(0));
  dm.set_prelude_ignore(1, soc.prelude_commits(1));

  const u64 cycles = soc.run(spec.max_cycles);
  dm.finalize();

  RunOutcome out;
  out.cycles = cycles;
  out.completed = soc.all_halted();
  const auto& c = dm.counters();
  out.monitored_cycles = c.monitored_cycles;
  out.zero_stag = c.zero_stag_cycles;
  out.nodiv = c.nodiv_cycles;
  out.ds_match = c.ds_match_cycles;
  out.is_match = c.is_match_cycles;
  out.committed0 = soc.core(0).stats().committed;
  out.committed1 = soc.core(1).stats().committed;
  return out;
}

/// The paper reports the max over repeated runs ("we selected the highest
/// values found"). Runs vary who starts first and the arbiter phase; the
/// variants are independent simulations and execute on the bench pool.
inline RunOutcome max_over_runs(const assembler::Program& program, RunSpec spec) {
  std::vector<RunSpec> specs;
  if (spec.stagger_nops == 0) {
    for (unsigned bias = 0; bias < 2; ++bias) {
      RunSpec s = spec;
      s.arbiter_bias = bias;
      specs.push_back(s);
    }
  } else {
    for (unsigned delayed = 0; delayed < 2; ++delayed) {
      RunSpec s = spec;
      s.delayed_core = delayed;
      specs.push_back(s);
    }
  }
  std::vector<RunOutcome> outcomes(specs.size());
  bench_pool().parallel_for(specs.size(), [&](std::size_t i) {
    outcomes[i] = run_redundant(program, specs[i]);
  });
  RunOutcome best;
  for (const RunOutcome& out : outcomes) best.max_with(out);
  return best;
}

}  // namespace safedm::bench
