// N1 — N-replica redundancy groups: the pairwise diversity matrix, the
// verdict-policy detection trade-off, and the group datapath's batched
// delivery speedup. Companion to the group topology introduced with the
// redundancy-group refactor (DESIGN.md "Redundancy groups").
//
// Three sections, all landing in BENCH_nreplica.json:
//
//   matrix    Real MPSoC runs of one workload on N=3 homogeneous vs N=3
//             heterogeneous + decorrelated groups (plus an N=4 spot
//             check): per-pair nodiv/DS/IS/zero-stagger counters and
//             distance statistics — the full C(n,2) diversity matrix the
//             monitor maintains. The heterogeneous group's *minimum*
//             pairwise distance (the weakest link) is the headline: DME-
//             style decorrelation must lift it above the homogeneous
//             control's.
//
//   policies  The same heterogeneous run under any_pair / quorum(k) /
//             all_pairs verdict policies: group nodiv cycles per policy,
//             i.e. how much detection coverage each policy trades away.
//             quorum(1) must equal any_pair and quorum(C(n,2)) must equal
//             all_pairs exactly (the lowering is a shared threshold).
//
//   perf      Synthetic-trace throughput of the group datapath, batched
//             (on_group_cycles) vs per-cycle (on_group_cycle) delivery
//             for n in {2, 3, 4}. The machine-independent ratios live
//             under "speedups" and are gated against
//             bench/baselines/BENCH_nreplica.json by tools/bench_diff.
//
// Usage: bench_nreplica [--cycles=N] [--reps=N] [--scale=N] [--json=PATH]
//                       [--check]
//   --check exits nonzero if a policy-equivalence identity breaks, the
//   batched group path diverges from the per-cycle path, the batched path
//   loses to per-cycle delivery, or heterogeneity fails to lift the
//   minimum pairwise distance (the nreplica-smoke CTest gate).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "json_writer.hpp"
#include "safedm/common/rng.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;

namespace {

// ---- section 1+2: diversity matrix on real MPSoC runs ----------------------

struct PairCell {
  unsigned a = 0, b = 0;
  monitor::PairCounters counters;
};

struct MatrixRun {
  std::string name;
  unsigned replicas = 0;
  u64 cycles = 0;
  bool completed = false;
  monitor::SafeDmCounters group;
  std::vector<PairCell> pairs;

  /// The weakest link of the matrix: the smallest per-pair minimum
  /// distance (equals group.distance_min by construction; recomputed from
  /// the cells so the bench cross-checks the matrix against the group
  /// aggregate).
  u64 min_pair_distance() const {
    u64 min = ~u64{0};
    for (const PairCell& p : pairs)
      if (p.counters.distance_min < min) min = p.counters.distance_min;
    return min;
  }
};

/// One redundant run of `program` on a single group with the given
/// topology and verdict policy, mirroring scenario::run_redundant but
/// keeping the SafeDm instance so the pairwise matrix can be read out.
MatrixRun run_group(const std::string& name, const soc::GroupSpec& group,
                    const assembler::Program& program, monitor::VerdictPolicy policy,
                    unsigned quorum_k, u64 max_cycles) {
  const unsigned n = group.size();
  soc::SocConfig soc_config;
  soc_config.groups = {group};
  soc_config.observer_batch = 32;  // SafeDM is a pure sink: batching is safe
  soc::MpSoc soc(soc_config);

  monitor::SafeDmConfig dm_config;
  dm_config.num_replicas = n;
  dm_config.policy = policy;
  dm_config.quorum_k = quorum_k;
  dm_config.start_enabled = true;
  dm_config.track_distance = true;
  monitor::SafeDm dm(dm_config);
  soc.add_observer(&dm);

  soc.load_redundant(program);
  for (unsigned r = 0; r < n; ++r) dm.set_prelude_ignore(r, soc.prelude_commits(r));

  MatrixRun run;
  run.name = name;
  run.replicas = n;
  run.cycles = soc.run(max_cycles);
  dm.finalize();
  run.completed = soc.all_halted();
  run.group = dm.counters();
  for (unsigned p = 0; p < dm.num_pairs(); ++p) {
    const auto [a, b] = dm.pair_replicas(p);
    run.pairs.push_back(PairCell{a, b, dm.pair_counters(p)});
  }
  return run;
}

/// The heterogeneous + decorrelated group: every replica beyond the first
/// gets DME-style decorrelation (text/data/stack offsets plus a register-
/// allocation shuffle) and a structural difference (store-buffer depth,
/// cache geometry, or EX latency) — the knobs the scenario DSL's
/// "group.replica" section exposes.
soc::GroupSpec heterogeneous_group(unsigned n) {
  soc::GroupSpec group = soc::GroupSpec::homogeneous(n);
  const core::CoreConfig base{};
  for (unsigned r = 1; r < n; ++r) {
    soc::ReplicaSpec& rep = group.replicas[r];
    rep.text_offset = 0x400ull * r;
    rep.data_offset = 0x100ull * r;
    rep.stack_offset = 0x40ull * r;
    rep.reg_shuffle_seed = 0x5AFEu + r;
    core::CoreConfig cc = base;
    switch (r % 3) {
      case 1: cc.store_buffer.entries = 4; cc.mul_latency = 5; break;
      case 2: cc.l1d.size_bytes = 8 * 1024; cc.div_latency = 20; break;
      case 0: cc.predictor.bht_entries = 16; break;
    }
    rep.core = cc;
  }
  return group;
}

// ---- section 3: group datapath throughput ----------------------------------

core::CoreTapFrame random_frame(Xoshiro256& rng) {
  core::CoreTapFrame f;
  for (unsigned s = 0; s < core::kPipelineStages; ++s)
    for (unsigned l = 0; l < core::kMaxIssueWidth; ++l)
      f.stage[s][l] = core::StageSlotTap{rng.chance(0.9), static_cast<u32>(rng.next())};
  for (unsigned p = 0; p < core::kMaxPorts; ++p)
    f.port[p] = core::PortTap{rng.chance(0.8), rng.next()};
  f.commits = static_cast<unsigned>(rng.below(3));
  return f;
}

/// Matched synthetic stream for an N-replica group: every replica sees the
/// same frame each cycle (the no-early-exit worst case for all C(n,2)
/// comparators), stored as N contiguous per-replica arrays the way MpSoc's
/// group ring buffers hand them to on_group_cycles.
struct GroupTrace {
  std::vector<std::vector<core::CoreTapFrame>> replica;  // [r][cycle]

  std::size_t length() const { return replica.empty() ? 0 : replica[0].size(); }
};

GroupTrace make_group_trace(unsigned n, std::size_t length, u64 seed) {
  Xoshiro256 rng(seed);
  GroupTrace trace;
  trace.replica.resize(n);
  for (auto& lane : trace.replica) lane.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    core::CoreTapFrame f = random_frame(rng);
    f.hold = rng.chance(0.15);
    for (auto& lane : trace.replica) lane.push_back(f);
  }
  return trace;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

monitor::SafeDmConfig perf_config(unsigned n) {
  monitor::SafeDmConfig config;
  config.num_replicas = n;
  config.num_ports = 3;
  config.data_fifo_depth = 4;
  config.start_enabled = true;
  config.arm_on_first_commit = false;
  return config;
}

struct PerfResult {
  double cycles_per_sec = 0;
  u64 nodiv = 0;  // consumed so the compiler cannot elide the work
};

PerfResult pump_percycle(unsigned n, u64 cycles, const GroupTrace& trace) {
  const auto start = std::chrono::steady_clock::now();
  monitor::SafeDm dm(perf_config(n));
  const std::size_t len = trace.length();
  const core::CoreTapFrame* frames[soc::kMaxGroupReplicas];
  for (u64 c = 0, i = 0; c < cycles; ++c) {
    for (unsigned r = 0; r < n; ++r) frames[r] = &trace.replica[r][i];
    if (++i == len) i = 0;
    dm.on_group_cycle(c, frames, n);
  }
  const double elapsed = seconds_since(start);
  return PerfResult{elapsed > 0 ? static_cast<double>(cycles) / elapsed : 0,
                    dm.counters().nodiv_cycles};
}

PerfResult pump_batched(unsigned n, u64 cycles, const GroupTrace& trace) {
  const auto start = std::chrono::steady_clock::now();
  monitor::SafeDm dm(perf_config(n));
  const u64 len = trace.length();
  const core::CoreTapFrame* frames[soc::kMaxGroupReplicas];
  for (unsigned r = 0; r < n; ++r) frames[r] = trace.replica[r].data();
  for (u64 c = 0; c < cycles;) {
    const unsigned m = static_cast<unsigned>(len < cycles - c ? len : cycles - c);
    dm.on_group_cycles(c, frames, n, m);
    c += m;
  }
  const double elapsed = seconds_since(start);
  return PerfResult{elapsed > 0 ? static_cast<double>(cycles) / elapsed : 0,
                    dm.counters().nodiv_cycles};
}

struct PerfMode {
  unsigned n = 0;
  bench::Measurement percycle;
  bench::Measurement batched;
  u64 nodiv_percycle = 0;
  u64 nodiv_batched = 0;

  double speedup() const {
    const double base = percycle.best();
    return base > 0 ? batched.best() / base : 0;
  }
};

void emit_matrix(bench::JsonWriter& json, const MatrixRun& run) {
  json.key(run.name).begin_object();
  json.prop("replicas", run.replicas);
  json.prop("cycles", run.cycles);
  json.prop("completed", run.completed);
  json.key("group").begin_object();
  json.prop("monitored", run.group.monitored_cycles)
      .prop("nodiv", run.group.nodiv_cycles)
      .prop("ds_match", run.group.ds_match_cycles)
      .prop("is_match", run.group.is_match_cycles)
      .prop("zero_stag", run.group.zero_stag_cycles)
      .prop("distance_min", run.group.distance_min)
      .prop("distance_max", run.group.distance_max)
      .prop("mean_distance", run.group.mean_distance(), 2);
  json.end_object();
  json.key("pairs").begin_array();
  for (const PairCell& p : run.pairs) {
    json.begin_object();
    json.prop("a", p.a)
        .prop("b", p.b)
        .prop("nodiv", p.counters.nodiv_cycles)
        .prop("ds_match", p.counters.ds_match_cycles)
        .prop("is_match", p.counters.is_match_cycles)
        .prop("zero_stag", p.counters.zero_stag_cycles)
        .prop("distance_min", p.counters.distance_min)
        .prop("distance_max", p.counters.distance_max);
    json.end_object();
  }
  json.end_array();
  json.prop("min_pair_distance", run.min_pair_distance());
  json.end_object();
}

void print_matrix(const MatrixRun& run) {
  std::printf("%s (N=%u, %llu cycles, monitored %llu)\n", run.name.c_str(), run.replicas,
              static_cast<unsigned long long>(run.cycles),
              static_cast<unsigned long long>(run.group.monitored_cycles));
  std::printf("  %-8s %12s %12s %12s %12s %10s %10s\n", "pair", "nodiv", "ds_match",
              "is_match", "zero_stag", "dist_min", "dist_max");
  for (const PairCell& p : run.pairs)
    std::printf("  (%u,%u)    %12llu %12llu %12llu %12llu %10llu %10llu\n", p.a, p.b,
                static_cast<unsigned long long>(p.counters.nodiv_cycles),
                static_cast<unsigned long long>(p.counters.ds_match_cycles),
                static_cast<unsigned long long>(p.counters.is_match_cycles),
                static_cast<unsigned long long>(p.counters.zero_stag_cycles),
                static_cast<unsigned long long>(p.counters.distance_min),
                static_cast<unsigned long long>(p.counters.distance_max));
  std::printf("  group: nodiv %llu, zero_stag %llu, distance min %llu / mean %.1f\n\n",
              static_cast<unsigned long long>(run.group.nodiv_cycles),
              static_cast<unsigned long long>(run.group.zero_stag_cycles),
              static_cast<unsigned long long>(run.group.distance_min),
              run.group.mean_distance());
}

}  // namespace

int main(int argc, char** argv) {
  constexpr char kUsage[] =
      "usage: bench_nreplica [--cycles=N] [--reps=N] [--scale=N] [--json=PATH] [--check]\n";
  u64 cycles = 1'000'000;
  unsigned reps = 5;
  unsigned scale = 1;
  std::string json_path = "BENCH_nreplica.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--cycles=", 9) == 0)
      cycles = bench::parse_u64("--cycles", argv[i] + 9, kUsage, 1);
    else if (std::strncmp(argv[i], "--reps=", 7) == 0)
      reps = bench::parse_u32("--reps", argv[i] + 7, kUsage, 1, 1000);
    else if (std::strncmp(argv[i], "--scale=", 8) == 0)
      scale = bench::parse_u32("--scale", argv[i] + 8, kUsage, 1, 1024);
    else if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    else if (std::strcmp(argv[i], "--check") == 0) check = true;
    else {
      std::fprintf(stderr, "unknown option: %s\n%s", argv[i], kUsage);
      return 2;
    }
  }

  const char* workload = "bitcount";
  const assembler::Program program = workloads::build(workload, scale);
  constexpr u64 kMaxCycles = 20'000'000;
  const unsigned n3_pairs = 3;  // C(3,2)

  // ---- matrix: homogeneous control vs heterogeneous + decorrelated --------
  std::printf("N-replica diversity matrix (workload %s, scale %u)\n\n", workload, scale);
  const MatrixRun homo = run_group("n3_homogeneous", soc::GroupSpec::homogeneous(3), program,
                                   monitor::VerdictPolicy::kAnyPair, 1, kMaxCycles);
  const MatrixRun hetero = run_group("n3_heterogeneous", heterogeneous_group(3), program,
                                     monitor::VerdictPolicy::kAnyPair, 1, kMaxCycles);
  const MatrixRun hetero4 = run_group("n4_heterogeneous", heterogeneous_group(4), program,
                                      monitor::VerdictPolicy::kAnyPair, 1, kMaxCycles);
  print_matrix(homo);
  print_matrix(hetero);
  print_matrix(hetero4);

  // ---- policies: detection coverage per verdict policy ---------------------
  // On the homogeneous group: its matrix is non-degenerate (some pairs
  // match while others do not), so the policies actually separate. The
  // fully decorrelated group reports 0 nodiv under every policy.
  const soc::GroupSpec policy_group = soc::GroupSpec::homogeneous(3);
  const MatrixRun quorum1 = run_group("quorum1", policy_group, program,
                                      monitor::VerdictPolicy::kQuorum, 1, kMaxCycles);
  const MatrixRun quorum2 = run_group("quorum2", policy_group, program,
                                      monitor::VerdictPolicy::kQuorum, 2, kMaxCycles);
  const MatrixRun quorum3 = run_group("quorum3", policy_group, program,
                                      monitor::VerdictPolicy::kQuorum, n3_pairs, kMaxCycles);
  const MatrixRun all3 = run_group("all_pairs", policy_group, program,
                                   monitor::VerdictPolicy::kAllPairs, 1, kMaxCycles);
  std::printf("verdict policies (N=3 homogeneous): group nodiv per policy\n");
  std::printf("  any_pair %llu | quorum(1) %llu | quorum(2) %llu | quorum(3) %llu | "
              "all_pairs %llu\n\n",
              static_cast<unsigned long long>(homo.group.nodiv_cycles),
              static_cast<unsigned long long>(quorum1.group.nodiv_cycles),
              static_cast<unsigned long long>(quorum2.group.nodiv_cycles),
              static_cast<unsigned long long>(quorum3.group.nodiv_cycles),
              static_cast<unsigned long long>(all3.group.nodiv_cycles));

  // ---- perf: batched vs per-cycle group delivery ---------------------------
  std::vector<PerfMode> perf;
  for (const unsigned n : {2u, 3u, 4u}) {
    PerfMode mode;
    mode.n = n;
    perf.push_back(std::move(mode));
  }
  // Warm-up so lazy page faults / frequency scaling don't skew rep 0.
  {
    const GroupTrace warm = make_group_trace(2, 64, 0x5AFE1000);
    pump_batched(2, std::min<u64>(cycles / 4 + 1, 200'000), warm);
  }
  for (unsigned rep = 0; rep < reps; ++rep) {
    for (PerfMode& mode : perf) {
      const GroupTrace trace = make_group_trace(mode.n, 64, 0x5AFE1000 + mode.n);
      const PerfResult pc = pump_percycle(mode.n, cycles, trace);
      const PerfResult ba = pump_batched(mode.n, cycles, trace);
      mode.percycle.add(pc.cycles_per_sec);
      mode.batched.add(ba.cycles_per_sec);
      mode.nodiv_percycle = pc.nodiv;
      mode.nodiv_batched = ba.nodiv;
    }
  }
  std::printf("group datapath throughput (%llu cycles x %u reps, m=3 n=4, matched frames)\n",
              static_cast<unsigned long long>(cycles), reps);
  std::printf("  %-4s %16s %16s %10s\n", "n", "per-cycle c/s", "batched c/s", "speedup");
  for (const PerfMode& mode : perf)
    std::printf("  %-4u %16.0f %16.0f %9.2fx\n", mode.n, mode.percycle.best(),
                mode.batched.best(), mode.speedup());

  // ---- JSON ----------------------------------------------------------------
  bench::JsonWriter json;
  json.begin_object();
  json.prop("schema", "safedm.bench.nreplica/v1");
  json.prop("workload", workload);
  json.prop("scale", scale);
  json.key("matrix").begin_object();
  emit_matrix(json, homo);
  emit_matrix(json, hetero);
  emit_matrix(json, hetero4);
  json.end_object();
  json.key("policies").begin_object();
  json.prop("any_pair", homo.group.nodiv_cycles)
      .prop("quorum_1", quorum1.group.nodiv_cycles)
      .prop("quorum_2", quorum2.group.nodiv_cycles)
      .prop("quorum_3", quorum3.group.nodiv_cycles)
      .prop("all_pairs", all3.group.nodiv_cycles);
  json.end_object();
  json.prop("cycles", cycles);
  json.prop("reps", reps);
  json.key("perf").begin_object();
  for (const PerfMode& mode : perf) {
    json.key("n" + std::to_string(mode.n)).begin_object();
    json.prop("percycle_cycles_per_sec", mode.percycle.best(), 1)
        .prop("percycle_median", mode.percycle.median(), 1)
        .prop("percycle_stddev", mode.percycle.stddev(), 1)
        .prop("batched_cycles_per_sec", mode.batched.best(), 1)
        .prop("batched_median", mode.batched.median(), 1)
        .prop("batched_stddev", mode.batched.stddev(), 1)
        .prop("nodiv", mode.nodiv_batched);
    json.end_object();
  }
  json.end_object();
  json.key("speedups").begin_object();
  for (const PerfMode& mode : perf)
    json.prop("group_batched_vs_percycle_n" + std::to_string(mode.n), mode.speedup(), 3);
  json.end_object();
  json.end_object();
  if (json.write_file(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }

  if (check) {
    // Policy lowering identities: quorum(1) == any_pair, quorum(C(n,2)) ==
    // all_pairs — bit-exact, not approximate (same threshold by
    // construction, same simulation otherwise).
    if (quorum1.group.nodiv_cycles != homo.group.nodiv_cycles ||
        quorum1.group.zero_stag_cycles != homo.group.zero_stag_cycles) {
      std::fprintf(stderr, "NREPLICA-SMOKE FAIL: quorum(1) != any_pair\n");
      return 1;
    }
    if (quorum3.group.nodiv_cycles != all3.group.nodiv_cycles ||
        quorum3.group.zero_stag_cycles != all3.group.zero_stag_cycles) {
      std::fprintf(stderr, "NREPLICA-SMOKE FAIL: quorum(C(n,2)) != all_pairs\n");
      return 1;
    }
    // The matrix must agree with the group aggregate on the weakest link.
    for (const MatrixRun* run : {&homo, &hetero, &hetero4}) {
      if (run->min_pair_distance() != run->group.distance_min) {
        std::fprintf(stderr, "NREPLICA-SMOKE FAIL: %s pair matrix min distance %llu != "
                             "group distance_min %llu\n",
                     run->name.c_str(),
                     static_cast<unsigned long long>(run->min_pair_distance()),
                     static_cast<unsigned long long>(run->group.distance_min));
        return 1;
      }
    }
    // Heterogeneity + decorrelation must lift the weakest link strictly
    // above the homogeneous control (the PR's acceptance shape).
    if (hetero.min_pair_distance() <= homo.min_pair_distance()) {
      std::fprintf(stderr, "NREPLICA-SMOKE FAIL: heterogeneous min pair distance %llu not "
                           "above homogeneous control %llu\n",
                   static_cast<unsigned long long>(hetero.min_pair_distance()),
                   static_cast<unsigned long long>(homo.min_pair_distance()));
      return 1;
    }
    // Batched delivery must be verdict-exact vs per-cycle and keep an
    // edge (>= 1.0 leaves slack for host noise; the trajectory is gated
    // by tools/bench_diff against the committed baseline).
    for (const PerfMode& mode : perf) {
      if (mode.nodiv_batched != mode.nodiv_percycle) {
        std::fprintf(stderr, "NREPLICA-SMOKE FAIL: n=%u batched nodiv %llu != per-cycle %llu\n",
                     mode.n, static_cast<unsigned long long>(mode.nodiv_batched),
                     static_cast<unsigned long long>(mode.nodiv_percycle));
        return 1;
      }
      if (mode.speedup() < 1.0) {
        std::fprintf(stderr, "NREPLICA-SMOKE FAIL: n=%u batched path slower than per-cycle "
                             "(%.2fx)\n",
                     mode.n, mode.speedup());
        return 1;
      }
    }
    std::printf("nreplica-smoke OK: policy identities exact, batched path verdict-exact "
                "(n2 %.2fx, n3 %.2fx, n4 %.2fx), hetero min distance %llu > homo %llu\n",
                perf[0].speedup(), perf[1].speedup(), perf[2].speedup(),
                static_cast<unsigned long long>(hetero.min_pair_distance()),
                static_cast<unsigned long long>(homo.min_pair_distance()));
  }
  return 0;
}
