// A1 — Instruction-signature construction ablation (paper Section III-B2):
// per-stage slots vs the flat fetched-but-not-retired list. The per-stage
// variant also sees *pipeline phase* (same instructions, different
// stages), so its instruction-match count can only be <= the flat one.
#include <cstdio>

#include "bench_util.hpp"

using namespace safedm;
using namespace safedm::bench;

int main() {
  std::printf("IS mode ablation: per-stage (NOEL-V group advance) vs flat in-flight list\n");
  std::printf("%-16s %14s %14s %14s %14s\n", "benchmark", "IS-match/stage", "IS-match/flat",
              "nodiv/stage", "nodiv/flat");
  bool shape_ok = true;
  for (const char* name : {"bitcount", "cubic", "quicksort", "fft", "pm", "iir"}) {
    const assembler::Program program = workloads::build(name, 1);
    RunSpec per_stage;
    per_stage.dm.is_mode = monitor::IsMode::kPerStage;
    RunSpec flat;
    flat.dm.is_mode = monitor::IsMode::kFlatList;
    const RunOutcome a = run_redundant(program, per_stage);
    const RunOutcome b = run_redundant(program, flat);
    std::printf("%-16s %14llu %14llu %14llu %14llu\n", name,
                static_cast<unsigned long long>(a.is_match),
                static_cast<unsigned long long>(b.is_match),
                static_cast<unsigned long long>(a.nodiv),
                static_cast<unsigned long long>(b.nodiv));
    if (a.is_match > b.is_match) shape_ok = false;
    std::fflush(stdout);
  }
  std::printf("\nShape check: per-stage IS matches <= flat IS matches on every row: %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
