// E10 — Safety-concept policy sweep (paper Section III-A made executable):
// relaunch policies after a diversity-loss drop, under different fault
// patterns, measured in job drops / FTTI survival / staggering overhead.
#include <cstdio>

#include "safedm/rtos/executive.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;
using namespace safedm::rtos;

namespace {

const char* policy_name(RelaunchPolicy policy) {
  switch (policy) {
    case RelaunchPolicy::kNone:
      return "none";
    case RelaunchPolicy::kStaggerNextJob:
      return "stagger-next";
    case RelaunchPolicy::kStaggerForever:
      return "stagger-forever";
  }
  return "?";
}

struct FaultPattern {
  const char* name;
  RedundantTaskExecutive::SocConfigurator configurator;
};

}  // namespace

int main() {
  std::printf("Redundant-task executive: relaunch policy x fault pattern (12 jobs, FTTI=2)\n\n");
  std::printf("%-16s %-16s %6s %10s %10s %12s\n", "fault pattern", "policy", "drops",
              "max consec", "safe state", "total cycles");

  const FaultPattern patterns[] = {
      {"healthy", [](unsigned) { return soc::SocConfig{}; }},
      {"one bad launch",
       [](unsigned job) {
         soc::SocConfig config;
         config.shared_data = job == 3;
         return config;
       }},
      {"persistent fault",
       [](unsigned) {
         soc::SocConfig config;
         config.shared_data = true;
         return config;
       }},
  };
  const RelaunchPolicy policies[] = {RelaunchPolicy::kNone, RelaunchPolicy::kStaggerNextJob,
                                     RelaunchPolicy::kStaggerForever};

  for (const FaultPattern& pattern : patterns) {
    for (RelaunchPolicy policy : policies) {
      TaskConfig task;
      task.name = "braking";
      task.jobs = 12;
      task.ftti_jobs = 2;
      task.relaunch = policy;
      task.diversity_loss_threshold = 32;
      RedundantTaskExecutive executive(task, workloads::build("iir", 1));
      executive.set_soc_configurator(pattern.configurator);
      const RunSummary summary = executive.run();
      std::printf("%-16s %-16s %6u %10u %10s %12llu\n", pattern.name, policy_name(policy),
                  summary.drops, summary.max_consecutive_drops,
                  summary.safe_state_entered ? "ENTERED" : "no",
                  static_cast<unsigned long long>(summary.total_cycles));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Shape check: with no corrective action a persistent fault exhausts the\n"
              "FTTI; staggering policies keep the task alive at a small cycle cost —\n"
              "the safety concept the paper builds on SafeDM's verdicts.\n");
  return 0;
}
