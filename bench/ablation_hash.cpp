// A2 — Signature compression ablation: raw concatenated-FIFO comparison
// (the paper's design) vs CRC32-compressed signatures. Compression shrinks
// the comparator but introduces a collision probability — a potential
// *false negative*, which the raw design excludes by construction. This
// bench measures verdict disagreement empirically and reports the
// hardware saving from the cost model.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "safedm/hwcost/hwcost.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;

namespace {

/// Observer running raw and CRC monitors side by side on the same frames.
struct DualMonitor : soc::CycleObserver {
  explicit DualMonitor(const monitor::SafeDmConfig& base)
      : raw([&] {
          monitor::SafeDmConfig c = base;
          c.compare = monitor::CompareMode::kRaw;
          c.start_enabled = true;
          return c;
        }()),
        crc([&] {
          monitor::SafeDmConfig c = base;
          c.compare = monitor::CompareMode::kCrc32;
          c.start_enabled = true;
          return c;
        }()) {}

  void on_cycle(u64 cycle, const core::CoreTapFrame& f0,
                const core::CoreTapFrame& f1) override {
    raw.on_cycle(cycle, f0, f1);
    crc.on_cycle(cycle, f0, f1);
    if (raw.lacking_diversity_now() != crc.lacking_diversity_now()) {
      // CRC collision: raw sees diversity the compressed compare missed.
      if (!raw.lacking_diversity_now()) ++false_negatives;
    }
  }

  monitor::SafeDm raw;
  monitor::SafeDm crc;
  u64 false_negatives = 0;
};

}  // namespace

int main() {
  std::printf("Compression ablation: raw vs CRC32 signatures (threads=%u)\n\n",
              bench::bench_pool().size());
  std::printf("%-16s %14s %14s %16s\n", "benchmark", "nodiv(raw)", "nodiv(crc)",
              "crc collisions");
  const char* names[] = {"bitcount", "cubic", "quicksort", "md5", "fft"};
  constexpr std::size_t kNumNames = 5;
  struct Row {
    u64 nodiv_raw = 0;
    u64 nodiv_crc = 0;
    u64 collisions = 0;
  };
  std::vector<Row> rows(kNumNames);
  // Each workload is an independent MpSoc + dual-monitor rig.
  bench::bench_pool().parallel_for(kNumNames, [&](std::size_t i) {
    soc::MpSoc soc{soc::SocConfig{}};
    DualMonitor dual{monitor::SafeDmConfig{}};
    soc.add_observer(&dual);
    soc.load_redundant(workloads::build(names[i], 1));
    soc.run(20'000'000);
    dual.raw.finalize();
    dual.crc.finalize();
    rows[i] = Row{dual.raw.counters().nodiv_cycles, dual.crc.counters().nodiv_cycles,
                  dual.false_negatives};
  });
  u64 total_collisions = 0;
  for (std::size_t i = 0; i < kNumNames; ++i) {
    std::printf("%-16s %14llu %14llu %16llu\n", names[i],
                static_cast<unsigned long long>(rows[i].nodiv_raw),
                static_cast<unsigned long long>(rows[i].nodiv_crc),
                static_cast<unsigned long long>(rows[i].collisions));
    total_collisions += rows[i].collisions;
  }

  monitor::SafeDmConfig paper;
  paper.data_fifo_depth = 8;
  paper.num_ports = 4;
  monitor::SafeDmConfig crc_cfg = paper;
  crc_cfg.compare = monitor::CompareMode::kCrc32;
  const auto raw_cost = hwcost::estimate(paper);
  const auto crc_cost = hwcost::estimate(crc_cfg);
  std::printf("\nHardware cost: raw %llu LUTs vs CRC %llu LUTs (%.1f%% saving)\n",
              static_cast<unsigned long long>(raw_cost.luts_total),
              static_cast<unsigned long long>(crc_cost.luts_total),
              100.0 * (1.0 - static_cast<double>(crc_cost.luts_total) / raw_cost.luts_total));
  std::printf("Observed CRC verdict collisions (potential false negatives): %llu\n",
              static_cast<unsigned long long>(total_collisions));
  std::printf("Trade-off: the paper's raw compare is false-negative-free by construction;\n"
              "compression buys area at a (rare but nonzero in principle) collision risk.\n");
  return 0;
}
