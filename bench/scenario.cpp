// E11 — JSON scenario runner: execute `safedm.scenario/v1` files (ROADMAP
// item 1) through the shared redundant-run harness, the fault-injection
// campaign engine, and the differential fuzz oracle, and gate on their
// `expect` assertions. The checked-in corpus lives in scenarios/ and runs
// in CI as the `scenario_smoke` test.
//
// Usage: bench_scenario [options] <path>...
//   <path>             a scenario .json file, or a directory executed as a
//                      corpus (every *.json inside, sorted, recursively)
//   --check-only       parse + validate only; skip the simulations
//   --json=PATH        report path (default BENCH_scenario.json)
//   --export-fuzz=DIR  wrap every .fuzz input under DIR into a replayable
//                      scenario file (see TESTING.md "Scenario corpus")
//   --out=DIR          destination for --export-fuzz (default scenarios/fuzz)
//   --selftest DIR EXPECTED
//                      validator golden test (mirrors safedm-lint): run the
//                      schema over every fixture under DIR and diff the
//                      diagnostics against EXPECTED line-for-line
//   --update-golden    with --selftest: rewrite EXPECTED from the current
//                      diagnostics instead of diffing (review the diff!)
//
// Exit status: 0 all scenarios pass, 1 any assertion or validation
// failure, 2 usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "json_writer.hpp"
#include "safedm/fuzz/oracle.hpp"
#include "safedm/scenario/runner.hpp"

using namespace safedm;
namespace fs = std::filesystem;

namespace {

constexpr char kUsage[] =
    "usage: bench_scenario [--check-only] [--json=PATH] <path>...\n"
    "       bench_scenario --export-fuzz=DIR [--out=DIR]\n"
    "       bench_scenario --selftest DIR EXPECTED [--update-golden]\n";

/// Every *.json under `path` (itself, if it is a file), sorted so corpus
/// order — and therefore report order — is deterministic.
std::vector<fs::path> collect_scenarios(const fs::path& path) {
  std::vector<fs::path> files;
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::recursive_directory_iterator(path))
      if (entry.is_regular_file() && entry.path().extension() == ".json")
        files.push_back(entry.path());
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(path);
  }
  return files;
}

/// The message part of a ScenarioError (what() minus its "file:line: "
/// prefix), for diagnostics that should carry a different path prefix.
std::string error_message(const scenario::ScenarioError& error) {
  const std::string what = error.what();
  const std::size_t prefix =
      error.file().size() + 1 + std::to_string(error.line()).size() + 2;
  return prefix <= what.size() ? what.substr(prefix) : what;
}

// ---- --selftest: validator golden diff (lint-style) ------------------------

/// Validate every fixture under `dir` and compare the emitted diagnostics
/// against the golden file: one `relpath:line: message` line per invalid
/// fixture, one `relpath: OK` line per valid one. Both directions of the
/// diff are errors, so a schema change that silences a diagnostic fails as
/// loudly as a new false positive. Golden lines starting with '#' are
/// comments.
int run_selftest(const fs::path& dir, const fs::path& expected_path, bool update_golden) {
  std::vector<std::string> produced;
  for (const fs::path& file : collect_scenarios(dir)) {
    const std::string rel = fs::relative(file, dir).generic_string();
    try {
      (void)scenario::load_scenario_file(file.string());
      produced.push_back(rel + ": OK");
    } catch (const scenario::ScenarioError& error) {
      produced.push_back(rel + ":" + std::to_string(error.line()) + ": " +
                         error_message(error));
    }
  }

  if (update_golden) {
    std::ofstream out(expected_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", expected_path.string().c_str());
      return 2;
    }
    out << "# Golden diagnostics for `bench_scenario --selftest` (the scenario_selftest\n"
           "# ctest). One line per fixture: `file:line: message` for an invalid\n"
           "# scenario, `file: OK` for a valid one. The diff runs in both directions —\n"
           "# a schema change that silences a diagnostic fails the same as a new false\n"
           "# positive. Regenerate with:\n"
           "#   build/bench/bench_scenario --selftest tests/scenario/fixtures \\\n"
           "#     tests/scenario/fixtures/expected.txt --update-golden\n";
    for (const std::string& line : produced) out << line << "\n";
    if (!out.flush()) {
      std::fprintf(stderr, "cannot write %s\n", expected_path.string().c_str());
      return 2;
    }
    std::printf("scenario selftest: golden updated (%zu lines)\n", produced.size());
    return 0;
  }

  std::ifstream golden(expected_path);
  if (!golden) {
    std::fprintf(stderr, "cannot open %s\n", expected_path.string().c_str());
    return 2;
  }
  std::set<std::string> expected;
  for (std::string line; std::getline(golden, line);) {
    if (line.empty() || line[0] == '#') continue;
    expected.insert(line);
  }

  int failures = 0;
  for (const std::string& line : produced) {
    if (expected.erase(line) == 0) {
      std::printf("UNEXPECTED: %s\n", line.c_str());
      ++failures;
    }
  }
  for (const std::string& line : expected) {
    std::printf("MISSING: %s\n", line.c_str());
    ++failures;
  }
  if (failures == 0)
    std::printf("scenario selftest OK: %zu fixtures matched\n", produced.size());
  return failures == 0 ? 0 : 1;
}

// ---- --export-fuzz: corpus entry -> scenario file --------------------------

/// Wrap one serialized safedm-fuzz/v1 program into a scenario document.
/// The exported file is immediately re-validated through the normal
/// loader, so an export that would not replay fails here, not in CI.
int export_one(const fs::path& fuzz_file, const fs::path& out_dir) {
  std::ifstream in(fuzz_file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", fuzz_file.string().c_str());
    return 1;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  while (!lines.empty() && lines.back().empty()) lines.pop_back();

  const std::string stem = fuzz_file.stem().string();
  bench::JsonWriter json;
  json.begin_object();
  json.prop("schema", scenario::kSchemaId);
  json.prop("name", "fuzz-" + stem);
  json.prop("description",
            "auto-exported fuzz repro: replays " + fuzz_file.filename().string() +
                " through the differential oracle stack");
  json.key("fuzz").begin_object();
  json.key("program").begin_array();
  for (const std::string& line : lines) json.value(line);
  json.end_array();
  json.end_object();
  json.end_object();

  const fs::path out_path = out_dir / ("fuzz_" + stem + ".json");
  if (!json.write_file(out_path.string())) {
    std::fprintf(stderr, "cannot write %s\n", out_path.string().c_str());
    return 1;
  }
  try {
    (void)scenario::load_scenario_file(out_path.string());
  } catch (const scenario::ScenarioError& error) {
    std::fprintf(stderr, "exported scenario does not validate: %s\n", error.what());
    return 1;
  }
  std::printf("exported %s\n", out_path.string().c_str());
  return 0;
}

int run_export(const fs::path& corpus_dir, const fs::path& out_dir) {
  std::vector<fs::path> inputs;
  if (!fs::is_directory(corpus_dir)) {
    std::fprintf(stderr, "--export-fuzz: %s is not a directory\n",
                 corpus_dir.string().c_str());
    return 2;
  }
  for (const auto& entry : fs::directory_iterator(corpus_dir))
    if (entry.is_regular_file() && entry.path().extension() == ".fuzz")
      inputs.push_back(entry.path());
  std::sort(inputs.begin(), inputs.end());
  if (inputs.empty()) {
    std::fprintf(stderr, "--export-fuzz: no .fuzz inputs under %s\n",
                 corpus_dir.string().c_str());
    return 2;
  }
  fs::create_directories(out_dir);
  int failures = 0;
  for (const fs::path& input : inputs) failures += export_one(input, out_dir);
  return failures == 0 ? 0 : 1;
}

// ---- scenario execution ----------------------------------------------------

void emit_result(bench::JsonWriter& json, const scenario::ScenarioResult& result) {
  json.begin_object();
  json.prop("name", result.name);
  json.prop("file", result.file);
  json.prop("passed", result.passed());
  if (result.ran_redundant) {
    const scenario::RunOutcome& out = result.outcome;
    json.key("run").begin_object();
    json.prop("completed", out.completed);
    json.prop("cycles", out.cycles);
    json.prop("monitored_cycles", out.monitored_cycles);
    json.prop("zero_stag", out.zero_stag);
    json.prop("nodiv", out.nodiv);
    json.prop("ds_match", out.ds_match);
    json.prop("is_match", out.is_match);
    json.prop("committed0", out.committed0);
    json.prop("committed1", out.committed1);
    json.end_object();
  }
  if (result.ran_faults) {
    json.key("faults").begin_object();
    json.prop("injections", result.fault_report.injections);
    json.end_object();
  }
  if (result.ran_fuzz) {
    json.key("fuzz").begin_object();
    json.prop("verdict", fuzz::verdict_name(result.fuzz_verdict));
    if (!result.fuzz_detail.empty()) json.prop("detail", result.fuzz_detail);
    json.end_object();
  }
  json.key("checks").begin_array();
  for (const scenario::CheckResult& check : result.checks) {
    json.begin_object();
    json.prop("name", check.name);
    json.prop("pass", check.pass);
    if (!check.detail.empty()) json.prop("detail", check.detail);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_scenario.json";
  std::string export_dir, out_dir = "scenarios/fuzz";
  std::string selftest_dir, selftest_golden;
  bool check_only = false;
  bool selftest = false;
  bool update_golden = false;
  std::vector<fs::path> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check-only") == 0) {
      check_only = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--export-fuzz=", 14) == 0) {
      export_dir = arg + 14;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_dir = arg + 6;
    } else if (std::strcmp(arg, "--update-golden") == 0) {
      update_golden = true;
    } else if (std::strcmp(arg, "--selftest") == 0) {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "--selftest needs a fixtures dir and a golden file\n%s", kUsage);
        return 2;
      }
      selftest = true;
      selftest_dir = argv[++i];
      selftest_golden = argv[++i];
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n%s", arg, kUsage);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }

  if (selftest) return run_selftest(selftest_dir, selftest_golden, update_golden);
  if (!export_dir.empty()) return run_export(export_dir, out_dir);
  if (paths.empty()) {
    std::fprintf(stderr, "no scenario paths given\n%s", kUsage);
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& path : paths) {
    if (!fs::exists(path)) {
      std::fprintf(stderr, "no such file or directory: %s\n", path.string().c_str());
      return 2;
    }
    for (fs::path& file : collect_scenarios(path)) files.push_back(std::move(file));
  }
  if (files.empty()) {
    std::fprintf(stderr, "no *.json scenarios found\n");
    return 2;
  }

  unsigned failed = 0;
  std::vector<scenario::ScenarioResult> results;
  for (const fs::path& file : files) {
    scenario::Scenario scn;
    try {
      scn = scenario::load_scenario_file(file.string());
    } catch (const scenario::ScenarioError& error) {
      std::fprintf(stderr, "%s\n", error.what());
      ++failed;
      continue;
    }
    if (check_only) {
      std::printf("OK %s (%s)\n", scn.name.c_str(), file.string().c_str());
      continue;
    }
    std::printf("SCENARIO %s (%s)\n", scn.name.c_str(), file.string().c_str());
    std::fflush(stdout);
    const scenario::ScenarioResult result = scenario::run_scenario(scn);
    for (const scenario::CheckResult& check : result.checks)
      std::printf("  %s %s%s%s\n", check.pass ? "PASS" : "FAIL", check.name.c_str(),
                  check.detail.empty() ? "" : ": ", check.detail.c_str());
    if (!result.passed()) ++failed;
    results.push_back(result);
    std::fflush(stdout);
  }

  if (!check_only) {
    bench::JsonWriter json;
    json.begin_object();
    json.prop("schema", "safedm.bench.scenario/v1");
    json.prop("total", results.size());
    json.prop("failed", failed);
    json.key("scenarios").begin_array();
    for (const scenario::ScenarioResult& result : results) emit_result(json, result);
    json.end_array();
    json.end_object();
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (failed != 0) {
    std::fprintf(stderr, "%u of %zu scenarios failed\n", failed, files.size());
    return 1;
  }
  std::printf("all %zu scenarios passed\n", files.size());
  return 0;
}
