// E4 — Quantifies Table II's qualitative comparison: diversity *monitoring*
// (SafeDM) is non-intrusive, diversity *enforcement* (SafeDE-style
// staggering) costs execution time that grows with the enforced threshold.
#include <cstdio>

#include "bench_util.hpp"
#include "safedm/safede/safede.hpp"

using namespace safedm;
using namespace safedm::bench;

namespace {

u64 run_bare(const assembler::Program& program) {
  soc::MpSoc soc{soc::SocConfig{}};
  soc.load_redundant(program);
  return soc.run(50'000'000);
}

u64 run_with_safedm(const assembler::Program& program) {
  RunSpec spec;
  return run_redundant(program, spec).cycles;
}

struct EnforcedResult {
  u64 cycles = 0;
  u64 stall_cycles = 0;
  i64 min_diff = 0;
};

EnforcedResult run_with_safede(const assembler::Program& program, i64 threshold) {
  soc::MpSoc soc{soc::SocConfig{}};
  safede::SafeDe enforcement(safede::SafeDeConfig{.head_core = 0, .min_staggering = threshold},
                             soc);
  soc.add_observer(&enforcement);
  soc.load_redundant(program);
  EnforcedResult result;
  result.cycles = soc.run(50'000'000);
  result.stall_cycles = enforcement.stats().stall_cycles;
  result.min_diff = enforcement.stats().min_observed_diff;
  return result;
}

}  // namespace

int main() {
  std::printf("Intrusiveness: SafeDM (monitored) vs SafeDE-style (enforced) — Table II\n\n");
  std::printf("%-16s %10s %10s | %-12s %10s %9s %9s\n", "benchmark", "bare", "SafeDM",
              "SafeDE thr", "cycles", "slowdown", "stalls");

  const char* names[] = {"bitcount", "quicksort", "md5", "fft", "pm", "matrix1"};
  const i64 thresholds[] = {50, 200, 1000};
  double worst_monitor_overhead = 0.0;
  for (const char* name : names) {
    const assembler::Program program = workloads::build(name, 1);
    const u64 bare = run_bare(program);
    const u64 monitored = run_with_safedm(program);
    worst_monitor_overhead =
        std::max(worst_monitor_overhead,
                 static_cast<double>(monitored) / static_cast<double>(bare) - 1.0);
    bool first = true;
    for (i64 thr : thresholds) {
      const EnforcedResult enforced = run_with_safede(program, thr);
      if (first) {
        std::printf("%-16s %10llu %10llu | thr=%-8lld %10llu %8.2f%% %9llu\n", name,
                    static_cast<unsigned long long>(bare),
                    static_cast<unsigned long long>(monitored), static_cast<long long>(thr),
                    static_cast<unsigned long long>(enforced.cycles),
                    100.0 * (static_cast<double>(enforced.cycles) / bare - 1.0),
                    static_cast<unsigned long long>(enforced.stall_cycles));
        first = false;
      } else {
        std::printf("%-16s %10s %10s | thr=%-8lld %10llu %8.2f%% %9llu\n", "", "", "",
                    static_cast<long long>(thr),
                    static_cast<unsigned long long>(enforced.cycles),
                    100.0 * (static_cast<double>(enforced.cycles) / bare - 1.0),
                    static_cast<unsigned long long>(enforced.stall_cycles));
      }
    }
    std::fflush(stdout);
  }
  std::printf("\nSafeDM execution-time overhead across all benchmarks: %.4f%% (must be 0)\n",
              100.0 * worst_monitor_overhead);
  std::printf("Shape check: SafeDE slowdown grows with threshold; SafeDM overhead is zero.\n");
  return worst_monitor_overhead == 0.0 ? 0 : 1;
}
