// E1 — Reproduces the paper's Table I: for every TACLe benchmark and
// initial staggering of {0, 100, 1000, 10000} nops, the number of cycles
// with zero staggering ("Zero stag") and the number of cycles SafeDM
// reports no diversity ("No div"), max over repeated runs.
//
// Expected shape (paper Section V-C): zero-staggering is infrequent, lack
// of diversity rarer still; both shrink toward zero as initial staggering
// grows; isolated benchmarks can re-synchronize (the pm timing anomaly).
//
// Every (benchmark, staggering) cell is an independent pair of MpSoc runs,
// so the whole table fans out over the bench thread pool and is printed in
// row order afterwards.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.hpp"

using namespace safedm;
using namespace safedm::bench;

namespace {
constexpr char kUsage[] = "usage: bench_table1 [--scale=N]\n";
}

int main(int argc, char** argv) {
  unsigned scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = parse_u32("--scale", argv[i] + 8, kUsage, 1, 1024);
    } else {
      std::fprintf(stderr, "unknown option: %s\n%s", argv[i], kUsage);
      return 2;
    }
  }

  const unsigned staggers[] = {0, 100, 1000, 10000};
  std::printf("Table I: Taclebench results with different initial staggering (scale=%u, "
              "threads=%u)\n",
              scale, bench_pool().size());
  std::printf("%-16s", "Staggering");
  for (unsigned s : staggers) std::printf("| %5u nops      ", s);
  std::printf("\n%-16s", "Benchmark");
  for (unsigned i = 0; i < 4; ++i) std::printf("| ZeroStag  NoDiv ");
  std::printf("\n");
  for (int i = 0; i < 16 + 4 * 18; ++i) std::printf("-");
  std::printf("\n");

  const auto& registry = workloads::registry();
  std::vector<assembler::Program> programs(registry.size());
  bench_pool().parallel_for(registry.size(),
                            [&](std::size_t w) { programs[w] = registry[w].build(scale); });

  // One cell per (benchmark, staggering); all independent.
  std::vector<RunOutcome> cells(registry.size() * 4);
  bench_pool().parallel_for(cells.size(), [&](std::size_t i) {
    const std::size_t w = i / 4;
    const unsigned col = static_cast<unsigned>(i % 4);
    RunSpec spec;
    spec.scale = scale;
    spec.stagger_nops = staggers[col];
    cells[i] = max_over_runs(programs[w], spec);
  });

  u64 total_zero[4] = {}, total_nodiv[4] = {}, total_instr = 0;
  for (std::size_t w = 0; w < registry.size(); ++w) {
    std::printf("%-16s", registry[w].name.c_str());
    for (unsigned col = 0; col < 4; ++col) {
      const RunOutcome& out = cells[w * 4 + col];
      std::printf("| %8llu %6llu ", static_cast<unsigned long long>(out.zero_stag),
                  static_cast<unsigned long long>(out.nodiv));
      total_zero[col] += out.zero_stag;
      total_nodiv[col] += out.nodiv;
      if (col == 0) total_instr += out.committed0;
      if (!out.completed) std::printf("(TIMEOUT)");
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  for (int i = 0; i < 16 + 4 * 18; ++i) std::printf("-");
  const double n = static_cast<double>(registry.size());
  std::printf("\n%-16s", "average");
  for (unsigned col = 0; col < 4; ++col)
    std::printf("| %8.0f %6.0f ", total_zero[col] / n, total_nodiv[col] / n);
  std::printf("\n\nAvg committed instructions per core (0-nop config): %.0f\n",
              total_instr / n);
  std::printf("Shape checks: avg zero-stag >= avg no-div per column; both -> 0 with "
              "increasing staggering.\n");
  return 0;
}
