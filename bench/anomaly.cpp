// E2 — The `pm` timing anomaly (paper Section V-C): with some initial
// staggerings, the delayed core's store misses pile up in its store buffer
// while the bus is busy, coalesce per cache line, and drain in fewer
// transactions — the delayed program runs *faster* and the cores can
// re-synchronize (zero staggering) while still being diverse (distinct
// addresses, different pipeline phases).
#include <cstdio>

#include "bench_util.hpp"

using namespace safedm;
using namespace safedm::bench;

int main() {
  const assembler::Program pm = workloads::build("pm", 1);

  std::printf("pm timing anomaly: staggering sweep (store-buffer coalescing ON)\n");
  std::printf("%-12s %12s %12s %12s %12s\n", "nops", "cycles", "zero-stag", "no-div",
              "nodiv/monitored");
  // Note on scale: the paper's runs are >56M instructions, ours ~25k, so
  // the staggering at which the delayed core manages to catch back up
  // shrinks proportionally (paper: 1,000 nops; here: ~20).
  for (unsigned nops : {0u, 10u, 20u, 30u, 50u, 100u, 1000u, 10000u}) {
    RunSpec spec;
    spec.stagger_nops = nops;
    const RunOutcome out = max_over_runs(pm, spec);
    std::printf("%-12u %12llu %12llu %12llu %11.6f%%\n", nops,
                static_cast<unsigned long long>(out.cycles),
                static_cast<unsigned long long>(out.zero_stag),
                static_cast<unsigned long long>(out.nodiv),
                out.monitored_cycles
                    ? 100.0 * static_cast<double>(out.nodiv) / out.monitored_cycles
                    : 0.0);
  }

  std::printf("\nMechanism ablation: coalescing OFF removes the anomaly's cause\n");
  std::printf("%-12s %14s %14s\n", "nops", "coalesce=on", "coalesce=off");
  for (unsigned nops : {0u, 1000u}) {
    RunSpec on;
    on.stagger_nops = nops;
    RunSpec off = on;
    off.soc.core.store_buffer.coalesce = false;
    const RunOutcome out_on = run_redundant(pm, on);
    const RunOutcome out_off = run_redundant(pm, off);
    std::printf("%-12u %14llu %14llu   (cycles)\n", nops,
                static_cast<unsigned long long>(out_on.cycles),
                static_cast<unsigned long long>(out_off.cycles));
  }
  std::printf("\nShape check: zero-stag can be nonzero at some staggered starts while\n"
              "no-div stays ~0 — diversity despite null staggering (the paper's pm row).\n");
  return 0;
}
