// E6b — parallel fault-injection campaign engine (paper Sections I–III).
//
// Fans the full injection space (workload × cycle × register × bit, for
// the identical-CCF and single-fault models) over a thread pool with
// deterministic per-site seeding: the BENCH_faultsim.json report is
// bit-identical for any --threads value at a fixed --seed.
//
// Usage: bench_faultsim_campaign [options]
//   --workloads=a,b,c  comma-separated registry names, or "paper4" (default:
//                      bitcount,cubic,md5,quicksort), or "all" (Table I set)
//   --samples=N        injection cycles sampled per verdict class (default 12)
//   --registers=a,b    integer registers to flip (default 6,9,18)
//   --bits=a,b         bit positions to flip (default 2,17,40)
//   --scale=N          workload input scale (default 1)
//   --seed=N           campaign seed (default 1)
//   --threads=N        worker count; 0 = auto (default SAFEDM_BENCH_THREADS)
//   --engine=NAME      replay | checkpoint (default checkpoint); a pure
//                      performance knob — the report is bit-identical
//   --checkpoint-interval=N  cycles between checkpoints; 0 = auto
//   --json=PATH        report path (default BENCH_faultsim.json)
//   --no-single        skip the single-fault control model
//   --smoke            exit non-zero unless the campaign invariants hold:
//                      (a) single-fault injections never classify as CCF,
//                      (b) per workload, no-div-class CCF rate >= diverse
//
// Fleet mode (sharded multi-process campaigns, merged by safedm-merge):
//   --shard=i/N        run only shard i of N (0-based), streaming durable
//                      partial aggregates to the shard log instead of JSON
//   --log=PATH         shard log path (default shard-<i>-of-<N>.shardlog)
//   --resume           continue an interrupted shard from its log's last
//                      durable record (also starts fresh if no log exists)
//   --flush-interval=K sites folded per durable log record (default 16)
//   --ref-cache=DIR    share reference-run warmup across shards via
//                      mmap-published trace snapshots in DIR
//   --write-manifest=PATH  write the fleet manifest for --shard-count
//                      shards (no injections are run) and exit
//   --shard-count=N    fleet size for --write-manifest (defaults to the
//                      N of --shard when given)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "safedm/common/check.hpp"
#include "safedm/common/log.hpp"
#include "safedm/common/thread_pool.hpp"
#include "safedm/faultsim/campaign.hpp"
#include "safedm/faultsim/shard.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;
using namespace safedm::faultsim;

namespace {

constexpr char kUsage[] =
    "usage: bench_faultsim_campaign [--workloads=a,b|paper4|all] [--samples=N]\n"
    "                               [--registers=a,b] [--bits=a,b] [--scale=N] [--seed=N]\n"
    "                               [--threads=N] [--engine=replay|checkpoint]\n"
    "                               [--checkpoint-interval=N] [--json=PATH] [--no-single]\n"
    "                               [--smoke]\n"
    "                               [--shard=i/N] [--log=PATH] [--resume]\n"
    "                               [--flush-interval=K] [--ref-cache=DIR]\n"
    "                               [--write-manifest=PATH] [--shard-count=N]\n";

std::vector<std::string> split_csv(const char* arg) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = arg; *p; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*p);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

void print_class(const char* workload, const char* label, const ClassAggregate& agg) {
  const Interval ci = agg.ccf_interval();
  const double mean_latency =
      agg.latency.total_samples()
          ? static_cast<double>(agg.latency.sample_sum()) / agg.latency.total_samples()
          : 0.0;
  std::printf("%-14s | %-11s %7llu %8llu %8llu %8llu %8llu | %6.1f%% [%5.1f,%5.1f] %9.0f\n",
              workload, label, static_cast<unsigned long long>(agg.count(Outcome::kMasked)),
              static_cast<unsigned long long>(agg.count(Outcome::kDetected)),
              static_cast<unsigned long long>(agg.count(Outcome::kCcf)),
              static_cast<unsigned long long>(agg.count(Outcome::kCrashed)),
              static_cast<unsigned long long>(agg.count(Outcome::kHung)),
              100.0 * agg.ccf_rate(), 100.0 * ci.lo, 100.0 * ci.hi, mean_latency);
}

}  // namespace

int main(int argc, char** argv) {
  EngineConfig config;
  config.threads = bench_thread_count();
  std::string json_path = "BENCH_faultsim.json";
  bool smoke = false;
  bool have_shard = false;
  ShardRunConfig shard_run;
  std::string manifest_path;
  u32 manifest_shards = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--workloads=", 12) == 0) {
      const char* value = arg + 12;
      if (std::strcmp(value, "all") == 0) {
        config.workloads.clear();
        for (const auto& info : workloads::registry()) config.workloads.push_back(info.name);
      } else if (std::strcmp(value, "paper4") != 0) {
        config.workloads = split_csv(value);
      }
    } else if (std::strncmp(arg, "--samples=", 10) == 0) {
      config.samples_per_class = bench::parse_u32("--samples", arg + 10, kUsage, 1, 100'000);
    } else if (std::strncmp(arg, "--registers=", 12) == 0) {
      // x0 is hardwired zero and x-numbers stop at 31; an out-of-range
      // register must be a hard error, not a silent u8 wrap (the old atoi
      // path turned --registers=256 into injections against x0, i.e. a
      // campaign that faults nothing).
      config.registers.clear();
      for (const std::string& r : split_csv(arg + 12))
        config.registers.push_back(static_cast<u8>(bench::parse_u64("--registers", r, kUsage, 1, 31)));
      if (config.registers.empty())
        bench::cli_fail("--registers", arg + 12, "a non-empty list of registers in [1, 31]", kUsage);
    } else if (std::strncmp(arg, "--bits=", 7) == 0) {
      config.bits.clear();
      for (const std::string& b : split_csv(arg + 7))
        config.bits.push_back(static_cast<unsigned>(bench::parse_u64("--bits", b, kUsage, 0, 63)));
      if (config.bits.empty())
        bench::cli_fail("--bits", arg + 7, "a non-empty list of bit positions in [0, 63]", kUsage);
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      config.scale = bench::parse_u32("--scale", arg + 8, kUsage, 1, 1024);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = bench::parse_u64("--seed", arg + 7, kUsage);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      config.threads = bench::parse_u32("--threads", arg + 10, kUsage, 0, 4096);
    } else if (std::strncmp(arg, "--engine=", 9) == 0) {
      const char* value = arg + 9;
      if (std::strcmp(value, "replay") == 0) {
        config.engine = InjectionEngine::kReplay;
      } else if (std::strcmp(value, "checkpoint") == 0) {
        config.engine = InjectionEngine::kCheckpoint;
      } else {
        std::fprintf(stderr, "unknown engine: %s (replay|checkpoint)\n%s", value, kUsage);
        return 2;
      }
    } else if (std::strncmp(arg, "--checkpoint-interval=", 22) == 0) {
      config.checkpoint_interval = bench::parse_u64("--checkpoint-interval", arg + 22, kUsage);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strcmp(arg, "--no-single") == 0) {
      config.single_fault = false;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(arg, "--shard=", 8) == 0) {
      const std::string value = arg + 8;
      const std::size_t slash = value.find('/');
      if (slash == std::string::npos)
        bench::cli_fail("--shard", value, "a fraction i/N with 0 <= i < N", kUsage);
      config.shard.count =
          bench::parse_u32("--shard", value.substr(slash + 1), kUsage, 1, kMaxShards);
      config.shard.index =
          bench::parse_u32("--shard", value.substr(0, slash), kUsage, 0, kMaxShards - 1);
      if (config.shard.index >= config.shard.count)
        bench::cli_fail("--shard", value, "a fraction i/N with 0 <= i < N", kUsage);
      have_shard = true;
    } else if (std::strncmp(arg, "--log=", 6) == 0) {
      shard_run.log_path = arg + 6;
    } else if (std::strcmp(arg, "--resume") == 0) {
      shard_run.resume = true;
    } else if (std::strncmp(arg, "--flush-interval=", 17) == 0) {
      shard_run.flush_interval =
          bench::parse_u64("--flush-interval", arg + 17, kUsage, 1, 1'000'000);
    } else if (std::strncmp(arg, "--ref-cache=", 12) == 0) {
      shard_run.ref_cache_dir = arg + 12;
    } else if (std::strncmp(arg, "--write-manifest=", 17) == 0) {
      manifest_path = arg + 17;
    } else if (std::strncmp(arg, "--shard-count=", 14) == 0) {
      manifest_shards = bench::parse_u32("--shard-count", arg + 14, kUsage, 1, kMaxShards);
    } else {
      std::fprintf(stderr, "unknown option: %s\n%s", arg, kUsage);
      return 2;
    }
  }

  Logger::instance().set_level(LogLevel::kInfo);  // per-workload progress lines

  if (smoke && (have_shard || !manifest_path.empty())) {
    std::fprintf(stderr, "--smoke needs the single-process campaign (no --shard / "
                         "--write-manifest)\n%s", kUsage);
    return 2;
  }

  if (!manifest_path.empty()) {
    const u32 shards = manifest_shards != 0 ? manifest_shards
                       : have_shard         ? config.shard.count
                                            : 0;
    if (shards == 0) {
      std::fprintf(stderr, "--write-manifest needs --shard-count=N (or --shard=i/N)\n%s",
                   kUsage);
      return 2;
    }
    try {
      const ShardManifest manifest =
          build_manifest(config, shards, shard_run.ref_cache_dir);
      write_manifest_file(manifest_path, manifest);
      std::printf("wrote manifest %s: %u shards, %llu sites\n", manifest_path.c_str(), shards,
                  static_cast<unsigned long long>(manifest.total_sites));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    return 0;
  }

  if (have_shard) {
    if (shard_run.log_path.empty()) {
      shard_run.log_path = "shard-" + std::to_string(config.shard.index) + "-of-" +
                           std::to_string(config.shard.count) + ".shardlog";
    }
    shard_run.engine = config;
    try {
      const ShardRunResult result = run_shard(shard_run);
      std::printf("shard %u/%u: %llu/%llu sites durable (%llu run now%s) -> %s\n",
                  config.shard.index, config.shard.count,
                  static_cast<unsigned long long>(result.resumed_at + result.executed),
                  static_cast<unsigned long long>(result.shard_sites),
                  static_cast<unsigned long long>(result.executed),
                  result.complete ? ", complete" : "", shard_run.log_path.c_str());
      return result.complete ? 0 : 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  const EngineReport report = run_engine(config);

  std::printf("\nfault-injection campaign: seed %llu, %llu injections\n",
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(report.injections));
  std::printf("%-14s | %-11s %7s %8s %8s %8s %8s | %s\n", "benchmark", "class", "masked",
              "detected", "CCF", "crashed", "hung", "CCF% [95% CI]  latency");
  for (const WorkloadReport& wr : report.workloads) {
    print_class(wr.name.c_str(), "no-div", wr.identical[1]);
    print_class("", "diverse", wr.identical[0]);
    if (config.single_fault) print_class("", "single", wr.single);
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 2;
  }
  write_report_json(report, json);
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!smoke) return 0;

  // Smoke gate. (a) is the structural redundancy guarantee: one faulted
  // core can never make both results agree on a wrong value. (b) is the
  // paper's Section III-B claim: SafeDM's no-diversity verdict marks the
  // cycles where an identical double fault is most likely to escape as a
  // CCF, so the no-div-class rate must dominate the diverse-class rate.
  int failures = 0;
  for (const WorkloadReport& wr : report.workloads) {
    if (wr.nodiv_pool == 0) {
      // A workload with no no-diversity cycles cannot exercise claim (b);
      // requiring a nonempty pool keeps the gate from passing vacuously.
      std::fprintf(stderr, "SMOKE FAIL %s: no no-diversity cycles to sample "
                           "(pick a workload with a nonzero no-div pool)\n",
                   wr.name.c_str());
      ++failures;
      continue;
    }
    if (config.single_fault && wr.single.count(Outcome::kCcf) != 0) {
      std::fprintf(stderr, "SMOKE FAIL %s: %llu single-fault injections classified as CCF\n",
                   wr.name.c_str(),
                   static_cast<unsigned long long>(wr.single.count(Outcome::kCcf)));
      ++failures;
    }
    if (wr.identical[1].ccf_rate() < wr.identical[0].ccf_rate()) {
      std::fprintf(stderr, "SMOKE FAIL %s: no-div CCF rate %.3f < diverse CCF rate %.3f\n",
                   wr.name.c_str(), wr.identical[1].ccf_rate(), wr.identical[0].ccf_rate());
      ++failures;
    }
  }
  if (failures == 0) std::printf("smoke invariants hold on all %zu workloads\n",
                                 report.workloads.size());
  return failures == 0 ? 0 : 1;
}
