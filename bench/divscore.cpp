// E8 — Diversity magnitude (extension): the paper's comparator answers
// equal / not-equal; the same taps also support *quantifying* diversity as
// the Hamming distance between the two cores' signatures. The margin
// matters for a safety argument: a pair hovering a few bits from equality
// is closer to a CCF window than one hundreds of bits apart.
#include <cstdio>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;

namespace {

monitor::SafeDmCounters measure(const char* name, unsigned stagger) {
  soc::MpSoc soc{soc::SocConfig{}};
  monitor::SafeDmConfig config;
  config.start_enabled = true;
  config.track_distance = true;
  monitor::SafeDm dm(config);
  soc.add_observer(&dm);
  soc.load_redundant(workloads::build(name, 1), stagger, 1);
  dm.set_prelude_ignore(0, soc.prelude_commits(0));
  dm.set_prelude_ignore(1, soc.prelude_commits(1));
  soc.run(50'000'000);
  dm.finalize();
  return dm.counters();
}

}  // namespace

int main() {
  std::printf("Diversity magnitude: per-cycle signature Hamming distance (bits)\n\n");
  std::printf("%-14s %8s | %10s %10s %10s | %10s\n", "benchmark", "stagger", "min", "mean",
              "max", "no-div");
  for (const char* name : {"bitcount", "cubic", "quicksort", "md5", "fft", "st"}) {
    for (unsigned stagger : {0u, 1000u}) {
      const auto c = measure(name, stagger);
      std::printf("%-14s %8u | %10llu %10.1f %10llu | %10llu\n", name, stagger,
                  static_cast<unsigned long long>(
                      c.distance_min == ~u64{0} ? 0 : c.distance_min),
                  c.mean_distance(), static_cast<unsigned long long>(c.distance_max),
                  static_cast<unsigned long long>(c.nodiv_cycles));
      std::fflush(stdout);
    }
  }
  std::printf("\nShape checks: min distance is 0 exactly when no-div cycles exist;\n"
              "staggering lifts the minimum well above 0 (a quantified safety margin).\n");
  return 0;
}
