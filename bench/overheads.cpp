// E3 — Reproduces Section V-D (SafeDM overheads): LUT count, area fraction
// of the MPSoC, and power, from the analytic hardware-cost model calibrated
// at the paper's design point; plus sweeps over the signature geometry.
#include <cstdio>

#include "safedm/hwcost/hwcost.hpp"

using namespace safedm;

namespace {

void print_row(const char* label, const hwcost::CostEstimate& est) {
  std::printf("%-28s %8llu %8llu %8llu %8llu %7.2f%% %8.4f W %6.2f%%\n", label,
              static_cast<unsigned long long>(est.storage_bits),
              static_cast<unsigned long long>(est.luts_storage + est.luts_compare),
              static_cast<unsigned long long>(est.luts_control),
              static_cast<unsigned long long>(est.luts_total), est.area_fraction * 100.0,
              est.power_watts, est.power_fraction * 100.0);
}

}  // namespace

int main() {
  std::printf("SafeDM hardware overheads (Section V-D reproduction)\n");
  std::printf("Paper reports: ~4,000 LUTs (3.4%% of the dual-core MPSoC), 0.019 W (<1%%)\n\n");
  std::printf("%-28s %8s %8s %8s %8s %8s %10s %7s\n", "configuration", "bits", "datapath",
              "control", "LUTs", "area", "power", "power%");

  monitor::SafeDmConfig paper;
  paper.data_fifo_depth = 8;
  paper.num_ports = 4;
  print_row("paper point (n=8, m=4, raw)", hwcost::estimate(paper));

  std::printf("\nFIFO depth sweep (m=4, raw compare):\n");
  for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
    monitor::SafeDmConfig c = paper;
    c.data_fifo_depth = n;
    char label[64];
    std::snprintf(label, sizeof label, "  n=%u", n);
    print_row(label, hwcost::estimate(c));
  }

  std::printf("\nPort count sweep (n=8, raw compare):\n");
  for (unsigned m : {2u, 4u, 6u}) {
    monitor::SafeDmConfig c = paper;
    c.num_ports = m;
    char label[64];
    std::snprintf(label, sizeof label, "  m=%u", m);
    print_row(label, hwcost::estimate(c));
  }

  std::printf("\nComparator compression (n=8, m=4):\n");
  {
    monitor::SafeDmConfig crc = paper;
    crc.compare = monitor::CompareMode::kCrc32;
    print_row("  raw concatenation", hwcost::estimate(paper));
    print_row("  CRC32-compressed", hwcost::estimate(crc));
  }

  const auto est = hwcost::estimate(paper);
  const bool area_ok = est.luts_total > 3500 && est.luts_total < 4500 &&
                       est.area_fraction > 0.029 && est.area_fraction < 0.039;
  const bool power_ok = est.power_watts > 0.014 && est.power_watts < 0.024 &&
                        est.power_fraction < 0.01;
  std::printf("\nShape check vs paper: area %s, power %s\n", area_ok ? "OK" : "MISMATCH",
              power_ok ? "OK" : "MISMATCH");
  return area_ok && power_ok ? 0 : 1;
}
