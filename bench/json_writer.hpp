// Minimal JSON emitter shared by the bench executables that write
// BENCH_*.json reports: string escaping, container nesting with the
// comma/indent bookkeeping, and fixed-precision float formatting, so the
// benches don't each hand-roll (and subtly diverge on) the same fprintf
// sequences.
//
// Usage is a fluent builder over an in-memory string:
//
//   JsonWriter json;
//   json.begin_object();
//   json.prop("schema", "safedm.bench.example/v1");
//   json.key("modes").begin_array();
//   json.value(1.25, 3);
//   json.end_array();
//   json.end_object();
//   json.write_file("BENCH_example.json");
//
// The writer pretty-prints with two-space indentation. It trusts the
// caller to emit a well-formed sequence (key before value inside objects,
// balanced begin/end); it is a formatter, not a validator.
#pragma once

#include <cmath>
#include <concepts>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace safedm::bench {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{', '}'); }
  JsonWriter& end_object() { return close(); }
  JsonWriter& begin_array() { return open('[', ']'); }
  JsonWriter& end_array() { return close(); }

  JsonWriter& key(std::string_view name) {
    separate();
    append_escaped(name);
    out_ += ": ";
    key_pending_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view text) {
    separate();
    append_escaped(text);
    return *this;
  }
  // Distinct overload: without it a string literal would convert to bool
  // (standard conversion) before string_view (user-defined conversion).
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }

  JsonWriter& value(bool v) {
    separate();
    out_ += v ? "true" : "false";
    return *this;
  }

  template <typename T>
    requires std::integral<T> && (!std::same_as<T, bool>)
  JsonWriter& value(T v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }

  JsonWriter& value(double v, int precision = 6) {
    separate();
    if (!std::isfinite(v)) {
      out_ += "null";  // JSON has no NaN/Inf
      return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    out_ += buf;
    return *this;
  }

  JsonWriter& null() {
    separate();
    out_ += "null";
    return *this;
  }

  /// key + value in one call.
  template <typename T>
  JsonWriter& prop(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }
  JsonWriter& prop(std::string_view name, double v, int precision) {
    key(name);
    return value(v, precision);
  }

  const std::string& str() const { return out_; }

  /// Write the document plus a trailing newline; false on I/O failure.
  bool write_file(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const bool wrote = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size() &&
                       std::fputc('\n', f) != EOF;
    return (std::fclose(f) == 0) && wrote;
  }

 private:
  struct Frame {
    char closer;
    unsigned items = 0;
  };

  JsonWriter& open(char opener, char closer) {
    separate();
    out_ += opener;
    stack_.push_back(Frame{closer, 0});
    return *this;
  }

  JsonWriter& close() {
    const Frame frame = stack_.back();
    stack_.pop_back();
    if (frame.items > 0) newline_indent();
    out_ += frame.closer;
    return *this;
  }

  /// Comma/indent before the next element. A value directly after its key
  /// stays on the key's line; everything else starts a fresh indented line
  /// (with a comma when it is not the container's first element).
  void separate() {
    if (key_pending_) {
      key_pending_ = false;
      return;
    }
    if (stack_.empty()) return;  // top-level document
    if (stack_.back().items++ > 0) out_ += ',';
    newline_indent();
  }

  void newline_indent() {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }

  void append_escaped(std::string_view text) {
    out_ += '"';
    for (const char c : text) {
      const auto ch = static_cast<unsigned char>(c);
      switch (ch) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (ch < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", ch);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

}  // namespace safedm::bench
