// F1 — coverage-guided differential fuzzing campaign driver.
//
// Fans fuzz inputs over the thread pool with deterministic per-input
// seeding: BENCH_fuzz.json is bit-identical for any --threads value at a
// fixed --seed (same discipline as the fault-injection campaign).
//
// Usage: bench_fuzz_campaign [options]
//   --rounds=N         campaign rounds (default 4)
//   --inputs=N         inputs per round (default 32)
//   --seed=N           campaign seed (default 1)
//   --threads=N        worker count; 0 = auto (default SAFEDM_BENCH_THREADS)
//   --max-cycles=N     per-input SoC cycle budget (default 2000000)
//   --corpus=DIR       seed the campaign from an existing corpus directory
//   --save-corpus=DIR  write the final corpus (.fuzz + .s per entry)
//   --repro-dir=DIR    write minimized failure repros (.fuzz + .s)
//   --json=PATH        report path (default BENCH_fuzz.json)
//   --replay=DIR       replay a corpus through the oracle stack and exit
//                      (the CI corpus gate); exit 1 on any failure
//   --smoke            exit non-zero unless the campaign invariants hold:
//                      (a) cumulative coverage is monotonically
//                      non-decreasing across rounds, (b) every kept input
//                      lit a new feature, (c) zero oracle failures
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "safedm/common/thread_pool.hpp"
#include "safedm/fuzz/campaign.hpp"

using namespace safedm;
using namespace safedm::fuzz;

int main(int argc, char** argv) {
  constexpr char kUsage[] =
      "usage: bench_fuzz_campaign [--rounds=N] [--inputs=N] [--seed=N] [--threads=N]\n"
      "                           [--max-cycles=N] [--corpus=DIR] [--save-corpus=DIR]\n"
      "                           [--repro-dir=DIR] [--json=PATH] [--replay=DIR] [--smoke]\n";
  CampaignConfig config;
  config.threads = bench_thread_count();
  std::string json_path = "BENCH_fuzz.json";
  std::string corpus_dir, save_corpus_dir, repro_dir, replay_dir;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--rounds=", 9) == 0) {
      config.rounds = bench::parse_u32("--rounds", arg + 9, kUsage, 1, 100'000);
    } else if (std::strncmp(arg, "--inputs=", 9) == 0) {
      config.inputs_per_round = bench::parse_u32("--inputs", arg + 9, kUsage, 1, 1'000'000);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = bench::parse_u64("--seed", arg + 7, kUsage);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      config.threads = bench::parse_u32("--threads", arg + 10, kUsage, 0, 4096);
    } else if (std::strncmp(arg, "--max-cycles=", 13) == 0) {
      config.oracle.max_cycles = bench::parse_u64("--max-cycles", arg + 13, kUsage, 1);
    } else if (std::strncmp(arg, "--corpus=", 9) == 0) {
      corpus_dir = arg + 9;
    } else if (std::strncmp(arg, "--save-corpus=", 14) == 0) {
      save_corpus_dir = arg + 14;
    } else if (std::strncmp(arg, "--repro-dir=", 12) == 0) {
      repro_dir = arg + 12;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--replay=", 9) == 0) {
      replay_dir = arg + 9;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n%s", arg, kUsage);
      return 2;
    }
  }

  // ---- corpus gate: replay every checked-in input and exit -----------------
  if (!replay_dir.empty()) {
    Corpus corpus;
    corpus.load_dir(replay_dir);
    const auto outcomes = replay_corpus(corpus, config.oracle);
    unsigned failed = 0;
    for (const ReplayOutcome& o : outcomes) {
      if (o.verdict == OracleVerdict::kPass) {
        std::printf("REPLAY PASS %s\n", o.name.c_str());
      } else {
        std::printf("REPLAY FAIL %s: %s (%s)\n", o.name.c_str(), verdict_name(o.verdict),
                    o.detail.c_str());
        ++failed;
      }
    }
    std::printf("corpus replay: %zu inputs, %u failures\n", outcomes.size(), failed);
    return failed == 0 ? 0 : 1;
  }

  Corpus corpus;
  if (!corpus_dir.empty()) corpus.load_dir(corpus_dir);

  const CampaignReport report = run_campaign(corpus, config);

  std::printf("fuzz campaign: seed %llu, %u rounds x %u inputs, corpus %zu -> %zu\n",
              static_cast<unsigned long long>(report.seed), report.rounds,
              report.inputs_per_round, report.initial_corpus, report.final_corpus);
  std::printf("%5s %7s %5s %13s %9s %7s %13s %12s\n", "round", "inputs", "kept", "new_features",
              "failures", "corpus", "features_hit", "total_hits");
  for (std::size_t r = 0; r < report.round_stats.size(); ++r) {
    const RoundStats& rs = report.round_stats[r];
    std::printf("%5zu %7u %5u %13u %9u %7zu %13zu %12llu\n", r, rs.inputs, rs.kept,
                rs.new_features, rs.failures, rs.corpus_size, rs.features_hit,
                static_cast<unsigned long long>(rs.total_hits));
  }
  const CoverageMap::Breakdown b = report.coverage.hit_breakdown();
  std::printf("coverage: %zu features (%zu opcodes, %zu formats, %zu events, %zu verdict edges)\n",
              report.coverage.features_hit(), b.opcodes, b.formats, b.events, b.verdict_edges);
  for (const FailureRecord& fr : report.failures)
    std::printf("FAILURE r%u i%u seed %llu: %s, %zu -> %zu ops (%s)\n", fr.round, fr.index,
                static_cast<unsigned long long>(fr.seed), verdict_name(fr.verdict),
                fr.original_ops, fr.minimized_ops, fr.detail.c_str());

  if (!save_corpus_dir.empty()) {
    corpus.save_dir(save_corpus_dir);
    std::printf("saved %zu corpus entries to %s\n", corpus.size(), save_corpus_dir.c_str());
  }
  if (!repro_dir.empty() && !report.failures.empty()) {
    Corpus repros;
    for (const FailureRecord& fr : report.failures) {
      char name[64];
      std::snprintf(name, sizeof name, "repro-r%02u-i%03u-%s", fr.round, fr.index,
                    verdict_name(fr.verdict));
      repros.add(name, fr.repro);
    }
    repros.save_dir(repro_dir);
    std::printf("saved %zu repros to %s\n", repros.size(), repro_dir.c_str());
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 2;
  }
  write_report_json(report, json);
  std::printf("wrote %s\n", json_path.c_str());

  if (!smoke) return 0;

  // Smoke gate: the corpus-keeping policy makes cumulative coverage
  // monotone by construction; re-derive it from the report so a future
  // regression in the merge logic trips CI. Oracle failures mean a real
  // model divergence — always fatal here.
  int failures = 0;
  std::size_t prev_features = 0;
  u64 prev_hits = 0;
  for (std::size_t r = 0; r < report.round_stats.size(); ++r) {
    const RoundStats& rs = report.round_stats[r];
    if (rs.features_hit < prev_features || rs.total_hits < prev_hits) {
      std::fprintf(stderr, "SMOKE FAIL round %zu: coverage regressed (%zu < %zu or %llu < %llu)\n",
                   r, rs.features_hit, prev_features,
                   static_cast<unsigned long long>(rs.total_hits),
                   static_cast<unsigned long long>(prev_hits));
      ++failures;
    }
    prev_features = rs.features_hit;
    prev_hits = rs.total_hits;
  }
  if (!report.failures.empty()) {
    std::fprintf(stderr, "SMOKE FAIL: %zu oracle failures\n", report.failures.size());
    ++failures;
  }
  if (failures == 0)
    std::printf("smoke invariants hold over %zu rounds\n", report.round_stats.size());
  return failures == 0 ? 0 : 1;
}
