// E5 — Signature design sensitivity (paper Section III-B): how the data
// FIFO depth n and the monitored port count m affect the no-diversity
// count. Deeper windows and more ports can only reduce reported
// no-diversity (more monitored state = more chances to see a difference);
// shallow windows inflate it (more false positives).
//
// Every (benchmark, geometry) cell is an independent MpSoc run; the whole
// sweep fans out over the bench thread pool.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace safedm;
using namespace safedm::bench;

int main() {
  const char* names[] = {"bitcount", "cubic", "quicksort", "md5"};
  constexpr unsigned kNumNames = 4;
  const unsigned depths[] = {1, 2, 4, 8, 16};
  constexpr unsigned kNumDepths = 5;
  const unsigned port_counts[] = {2, 4, 6};
  constexpr unsigned kNumPorts = 3;

  std::vector<assembler::Program> programs(kNumNames);
  bench_pool().parallel_for(kNumNames,
                            [&](std::size_t w) { programs[w] = workloads::build(names[w], 1); });

  std::vector<RunOutcome> depth_cells(kNumNames * kNumDepths);
  std::vector<RunOutcome> port_cells(kNumNames * kNumPorts);
  bench_pool().parallel_for(depth_cells.size() + port_cells.size(), [&](std::size_t i) {
    if (i < depth_cells.size()) {
      RunSpec spec;
      spec.dm.data_fifo_depth = depths[i % kNumDepths];
      depth_cells[i] = run_redundant(programs[i / kNumDepths], spec);
    } else {
      const std::size_t j = i - depth_cells.size();
      RunSpec spec;
      spec.dm.num_ports = port_counts[j % kNumPorts];
      port_cells[j] = run_redundant(programs[j / kNumPorts], spec);
    }
  });

  std::printf("Data-FIFO depth (n) sensitivity, m=4 ports, 0-nop start (threads=%u)\n",
              bench_pool().size());
  std::printf("%-14s", "benchmark");
  for (unsigned n : depths) std::printf(" %9s%-2u", "n=", n);
  std::printf("\n");
  for (unsigned w = 0; w < kNumNames; ++w) {
    std::printf("%-14s", names[w]);
    u64 prev = ~u64{0};
    bool monotone = true;
    for (unsigned d = 0; d < kNumDepths; ++d) {
      const RunOutcome& out = depth_cells[w * kNumDepths + d];
      std::printf(" %11llu", static_cast<unsigned long long>(out.nodiv));
      if (out.nodiv > prev) monotone = false;
      prev = out.nodiv;
    }
    std::printf("  %s\n", monotone ? "(monotone non-increasing)" : "(non-monotone)");
  }

  std::printf("\nMonitored-port count (m) sensitivity, n=8, 0-nop start\n");
  std::printf("%-14s %12s %12s %12s\n", "benchmark", "m=2", "m=4 (paper)", "m=6 (full)");
  for (unsigned w = 0; w < kNumNames; ++w) {
    std::printf("%-14s", names[w]);
    for (unsigned m = 0; m < kNumPorts; ++m)
      std::printf(" %12llu",
                  static_cast<unsigned long long>(port_cells[w * kNumPorts + m].nodiv));
    std::printf("\n");
  }
  std::printf("\nShape check: no-div counts shrink (or hold) as n and m grow — SafeDM can\n"
              "only raise false positives, never false negatives (Section III-A).\n");
  return 0;
}
