// E5 — Signature design sensitivity (paper Section III-B): how the data
// FIFO depth n and the monitored port count m affect the no-diversity
// count. Deeper windows and more ports can only reduce reported
// no-diversity (more monitored state = more chances to see a difference);
// shallow windows inflate it (more false positives).
#include <cstdio>

#include "bench_util.hpp"

using namespace safedm;
using namespace safedm::bench;

int main() {
  const char* names[] = {"bitcount", "cubic", "quicksort", "md5"};

  std::printf("Data-FIFO depth (n) sensitivity, m=4 ports, 0-nop start\n");
  std::printf("%-14s", "benchmark");
  const unsigned depths[] = {1, 2, 4, 8, 16};
  for (unsigned n : depths) std::printf(" %9s%-2u", "n=", n);
  std::printf("\n");
  for (const char* name : names) {
    const assembler::Program program = workloads::build(name, 1);
    std::printf("%-14s", name);
    u64 prev = ~u64{0};
    bool monotone = true;
    for (unsigned n : depths) {
      RunSpec spec;
      spec.dm.data_fifo_depth = n;
      const RunOutcome out = run_redundant(program, spec);
      std::printf(" %11llu", static_cast<unsigned long long>(out.nodiv));
      if (out.nodiv > prev) monotone = false;
      prev = out.nodiv;
    }
    std::printf("  %s\n", monotone ? "(monotone non-increasing)" : "(non-monotone)");
    std::fflush(stdout);
  }

  std::printf("\nMonitored-port count (m) sensitivity, n=8, 0-nop start\n");
  std::printf("%-14s %12s %12s %12s\n", "benchmark", "m=2", "m=4 (paper)", "m=6 (full)");
  for (const char* name : names) {
    const assembler::Program program = workloads::build(name, 1);
    std::printf("%-14s", name);
    for (unsigned m : {2u, 4u, 6u}) {
      RunSpec spec;
      spec.dm.num_ports = m;
      const RunOutcome out = run_redundant(program, spec);
      std::printf(" %12llu", static_cast<unsigned long long>(out.nodiv));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nShape check: no-div counts shrink (or hold) as n and m grow — SafeDM can\n"
              "only raise false positives, never false negatives (Section III-A).\n");
  return 0;
}
