// S1 — google-benchmark microbenchmarks of the monitor datapath itself:
// per-cycle capture and comparison cost as a function of signature
// geometry (bounds the simulation-side cost of attaching SafeDM).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "safedm/common/thread_pool.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/safedm/signature.hpp"
#include "safedm/safedm/simd.hpp"

using namespace safedm;

namespace {

core::CoreTapFrame busy_frame(u64 salt) {
  core::CoreTapFrame f;
  for (unsigned s = 0; s < core::kPipelineStages; ++s)
    for (unsigned l = 0; l < core::kMaxIssueWidth; ++l)
      f.stage[s][l] = core::StageSlotTap{true, static_cast<u32>(0x13 + s * 64 + l + salt)};
  for (unsigned p = 0; p < core::kMaxPorts; ++p)
    f.port[p] = core::PortTap{true, 0x1234'5678'9ABCull + p * 977 + salt};
  f.commits = 2;
  return f;
}

void BM_SignatureCapture(benchmark::State& state) {
  monitor::SafeDmConfig config;
  config.data_fifo_depth = static_cast<unsigned>(state.range(0));
  monitor::SignatureGenerator sig(config);
  const core::CoreTapFrame frame = busy_frame(0);
  for (auto _ : state) {
    sig.capture(frame);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SignatureCapture)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_RawCompareEqual(benchmark::State& state) {
  monitor::SafeDmConfig config;
  config.data_fifo_depth = static_cast<unsigned>(state.range(0));
  monitor::SignatureGenerator a(config), b(config);
  const core::CoreTapFrame frame = busy_frame(0);
  for (int i = 0; i < 64; ++i) {
    a.capture(frame);
    b.capture(frame);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor::SignatureGenerator::data_equal(a, b));
    benchmark::DoNotOptimize(monitor::SignatureGenerator::instruction_equal(a, b));
  }
}
BENCHMARK(BM_RawCompareEqual)->Arg(4)->Arg(8)->Arg(32);

void BM_RawCompareDivergent(benchmark::State& state) {
  // Early-exit path: the common case during real execution.
  monitor::SafeDmConfig config;
  config.data_fifo_depth = static_cast<unsigned>(state.range(0));
  monitor::SignatureGenerator a(config), b(config);
  for (int i = 0; i < 64; ++i) {
    a.capture(busy_frame(0));
    b.capture(busy_frame(1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor::SignatureGenerator::data_equal(a, b));
  }
}
BENCHMARK(BM_RawCompareDivergent)->Arg(8)->Arg(32);

void BM_CrcCompare(benchmark::State& state) {
  monitor::SafeDmConfig config;
  config.data_fifo_depth = static_cast<unsigned>(state.range(0));
  monitor::SignatureGenerator a(config);
  for (int i = 0; i < 64; ++i) a.capture(busy_frame(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.data_crc());
    benchmark::DoNotOptimize(a.instruction_crc());
  }
}
BENCHMARK(BM_CrcCompare)->Arg(8)->Arg(32);

void BM_MonitorFullCycle(benchmark::State& state) {
  // range(0): 1 = incremental DiversityComparator, 0 = exhaustive re-scan.
  monitor::SafeDmConfig config;
  config.start_enabled = true;
  config.incremental_compare = state.range(0) != 0;
  monitor::SafeDm dm(config);
  const core::CoreTapFrame f0 = busy_frame(0);
  const core::CoreTapFrame f1 = busy_frame(1);
  u64 cycle = 0;
  for (auto _ : state) {
    dm.on_cycle(++cycle, f0, f1);
  }
}
BENCHMARK(BM_MonitorFullCycle)->Arg(1)->Arg(0);

void BM_MonitorFullCycleMatched(benchmark::State& state) {
  // Identical frames on both cores: the exhaustive compare cannot
  // early-exit, the incremental path's worst case for correctness and the
  // hardware-relevant steady state.
  monitor::SafeDmConfig config;
  config.start_enabled = true;
  config.incremental_compare = state.range(0) != 0;
  monitor::SafeDm dm(config);
  const core::CoreTapFrame f = busy_frame(0);
  u64 cycle = 0;
  for (auto _ : state) {
    dm.on_cycle(++cycle, f, f);
  }
}
BENCHMARK(BM_MonitorFullCycleMatched)->Arg(1)->Arg(0);

void BM_SimdStageCompare(benchmark::State& state) {
  // The IS hot compare: one packed pipeline snapshot (kStageSlots words)
  // per cycle. range(0) selects the kernel; unsupported kernels clamp to
  // the best the host has, so cross-host numbers stay comparable by name.
  namespace simd = monitor::simd;
  const auto kernel = static_cast<simd::Kernel>(state.range(0));
  if (!simd::kernel_supported(kernel)) {
    state.SkipWithError("kernel not supported on this host");
    return;
  }
  const simd::WordsEqualFixedFn fn =
      simd::words_equal_fixed_fn<monitor::SignatureGenerator::kStageSlots>(kernel);
  const core::CoreTapFrame a = busy_frame(0);
  const core::CoreTapFrame b = busy_frame(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn(&a.stage, &b.stage));
  }
  state.SetLabel(simd::kernel_name(kernel));
}
BENCHMARK(BM_SimdStageCompare)->Arg(0)->Arg(1)->Arg(2);

void BM_SimdMismatchBits(benchmark::State& state) {
  // The realign scan primitive: bit-sliced window compare over the SoA
  // value/enable planes, range(0) = window depth, range(1) = kernel.
  namespace simd = monitor::simd;
  const auto n = static_cast<unsigned>(state.range(0));
  const auto kernel = static_cast<simd::Kernel>(state.range(1));
  if (!simd::kernel_supported(kernel)) {
    state.SkipWithError("kernel not supported on this host");
    return;
  }
  const simd::MismatchBitsFn fn = simd::mismatch_bits_fn(kernel);
  std::vector<u64> av(n), bv(n);
  std::vector<u8> ae(n, 1), be(n, 1);
  for (unsigned i = 0; i < n; ++i) av[i] = bv[i] = 0x9E37'79B9 + i;
  bv[n / 2] ^= 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn(av.data(), bv.data(), ae.data(), be.data(), n));
  }
  state.SetLabel(simd::kernel_name(kernel));
}
BENCHMARK(BM_SimdMismatchBits)->Args({4, 2})->Args({64, 0})->Args({64, 1})->Args({64, 2});

void BM_MonitorBatchedCycles(benchmark::State& state) {
  // The chunked delivery path (on_cycles) against the same matched steady
  // state as BM_MonitorFullCycleMatched: range(0) = batch size, so the
  // amortization curve from per-cycle (1) to full chunks (64) is visible.
  const auto batch = static_cast<unsigned>(state.range(0));
  monitor::SafeDmConfig config;
  config.start_enabled = true;
  monitor::SafeDm dm(config);
  const core::CoreTapFrame f = busy_frame(0);
  std::vector<core::CoreTapFrame> frames(batch, f);
  u64 cycle = 0;
  for (auto _ : state) {
    dm.on_cycles(cycle + 1, frames.data(), frames.data(), batch);
    cycle += batch;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * batch);
}
BENCHMARK(BM_MonitorBatchedCycles)->Arg(1)->Arg(8)->Arg(64);

void BM_MonitorFleetParallel(benchmark::State& state) {
  // range(0) independent monitors pumped concurrently over the bench
  // ThreadPool (SAFEDM_BENCH_THREADS-sized), modelling the per-pair
  // SafeDM instances of a many-core deployment.
  const unsigned fleet = static_cast<unsigned>(state.range(0));
  constexpr u64 kCyclesPerIteration = 1024;
  ThreadPool pool(bench_thread_count());
  monitor::SafeDmConfig config;
  config.start_enabled = true;
  std::vector<std::unique_ptr<monitor::SafeDm>> monitors;
  for (unsigned i = 0; i < fleet; ++i)
    monitors.push_back(std::make_unique<monitor::SafeDm>(config));
  const core::CoreTapFrame f0 = busy_frame(0);
  const core::CoreTapFrame f1 = busy_frame(1);
  u64 cycle = 0;
  for (auto _ : state) {
    const u64 base = cycle;
    pool.parallel_for(fleet, [&](std::size_t m) {
      for (u64 c = 0; c < kCyclesPerIteration; ++c)
        monitors[m]->on_cycle(base + c, f0, f1);
    });
    cycle += kCyclesPerIteration;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * fleet *
                          kCyclesPerIteration);
}
BENCHMARK(BM_MonitorFleetParallel)->Arg(1)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
