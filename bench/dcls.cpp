// E9 — DCLS lockstep baseline vs SafeDM (paper Fig. 1 / Section II / Table
// II): what each approach catches, what it costs.
//
//   - A single-core fault: both approaches catch it (DCLS by comparator
//     mismatch; in the SafeDM concept, by the output cross-check).
//   - An identical double fault while the cores' state is identical: the
//     DCLS comparator is blind (commit streams stay equal) — the CCF
//     escape that motivates diverse redundancy. SafeDM cannot *prevent* it
//     either, but it flags every cycle in which the system was exposed.
//   - Cost: DCLS permanently consumes the shadow core (50% of the compute)
//     and demands identical instruction streams; SafeDM costs ~3.4% area,
//     zero cycles, and puts no constraint on the software.
#include <cstdio>

#include "safedm/dcls/dcls.hpp"
#include "safedm/hwcost/hwcost.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;

namespace {

struct Scenario {
  bool fault_core0 = false;
  bool fault_core1 = false;
};

struct Verdicts {
  bool dcls_detected = false;
  u64 safedm_nodiv = 0;
  bool results_agree = false;
};

Verdicts run_scenario(const char* workload, const Scenario& scenario, u64 fault_cycle) {
  soc::SocConfig soc_config;
  soc_config.shared_data = true;  // DCLS input replication model
  soc::MpSoc soc(soc_config);
  dcls::DclsChecker checker{dcls::DclsConfig{}};
  soc.add_observer(&checker);
  monitor::SafeDmConfig dm_config;
  dm_config.start_enabled = true;
  monitor::SafeDm dm(dm_config);
  soc.add_observer(&dm);

  soc.load_redundant(workloads::build(workload, 1));
  while (soc.cycle() < fault_cycle && !soc.all_halted()) soc.step();
  if (scenario.fault_core0) soc.core(0).flip_architectural_bit(9, 5);
  if (scenario.fault_core1) soc.core(1).flip_architectural_bit(9, 5);
  soc.run(30'000'000);
  dm.finalize();

  Verdicts verdicts;
  verdicts.dcls_detected = checker.error_detected();
  verdicts.safedm_nodiv = dm.counters().nodiv_cycles;
  verdicts.results_agree = soc.memory().load(soc.data_base(0), 8) ==
                           soc.memory().load(soc.data_base(1), 8);
  return verdicts;
}

}  // namespace

int main() {
  std::printf("DCLS comparator vs CCF (workload: bitcount, shared-input lockstep model)\n\n");
  std::printf("%-26s %14s %14s %14s\n", "scenario", "DCLS verdict", "results", "exposure");

  const Verdicts clean = run_scenario("bitcount", Scenario{}, 2000);
  std::printf("%-26s %14s %14s %10llu cyc\n", "no fault",
              clean.dcls_detected ? "MISMATCH" : "quiet",
              clean.results_agree ? "agree" : "differ",
              static_cast<unsigned long long>(clean.safedm_nodiv));

  const Verdicts single = run_scenario("bitcount", Scenario{.fault_core1 = true}, 2000);
  std::printf("%-26s %14s %14s %10llu cyc\n", "single fault (core 1)",
              single.dcls_detected ? "MISMATCH" : "quiet",
              single.results_agree ? "agree" : "differ",
              static_cast<unsigned long long>(single.safedm_nodiv));

  const Verdicts ccf =
      run_scenario("bitcount", Scenario{.fault_core0 = true, .fault_core1 = true}, 2000);
  std::printf("%-26s %14s %14s %10llu cyc\n", "identical double fault",
              ccf.dcls_detected ? "MISMATCH" : "quiet (ESCAPE)",
              ccf.results_agree ? "agree(wrong)" : "differ",
              static_cast<unsigned long long>(ccf.safedm_nodiv));

  // Cost comparison.
  monitor::SafeDmConfig paper;
  paper.data_fifo_depth = 8;
  paper.num_ports = 4;
  const auto cost = hwcost::estimate(paper);
  std::printf("\nCost of protection:\n");
  std::printf("  DCLS   : 100%% of a core reserved (shadow not user-visible), identical\n"
              "           instruction streams required\n");
  std::printf("  SafeDM : %llu LUTs (%.1f%% area), 0 execution cycles, no software\n"
              "           constraints — but needs the diversity it monitors\n",
              static_cast<unsigned long long>(cost.luts_total), cost.area_fraction * 100.0);

  const bool shape_ok = !clean.dcls_detected && single.dcls_detected && !ccf.dcls_detected;
  std::printf("\nShape check (quiet / mismatch / escape): %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
