// A3 — Natural-diversity source ablation (paper Section V-C): "redundant
// threads are created by software, and hence have different address
// spaces. Therefore, whenever an address is read and/or operated ... the
// actual address differs, hence bringing some diversity."
// Shared vs distinct data segments quantifies exactly that source.
#include <cstdio>

#include "bench_util.hpp"

using namespace safedm;
using namespace safedm::bench;

int main() {
  std::printf("Address-space ablation: distinct vs shared data segments, 0-nop start\n\n");
  std::printf("%-16s %16s %16s %14s\n", "benchmark", "nodiv(distinct)", "nodiv(shared)",
              "ds-match ratio");
  bool shape_ok = true;
  for (const char* name : {"bitcount", "binarysearch", "matrix1", "cubic", "quicksort", "iir"}) {
    const assembler::Program program = workloads::build(name, 1);
    RunSpec distinct;
    RunSpec shared;
    shared.soc.shared_data = true;
    const RunOutcome a = run_redundant(program, distinct);
    const RunOutcome b = run_redundant(program, shared);
    const double ratio = a.ds_match ? static_cast<double>(b.ds_match) / a.ds_match : 0.0;
    std::printf("%-16s %16llu %16llu %13.1fx\n", name,
                static_cast<unsigned long long>(a.nodiv),
                static_cast<unsigned long long>(b.nodiv), ratio);
    if (b.nodiv < a.nodiv) shape_ok = false;
    std::fflush(stdout);
  }
  std::printf("\nShape check: shared address space gives >= no-diversity cycles on every "
              "row: %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
