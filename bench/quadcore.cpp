// E7 — Four-core deployment (paper Section I: "We integrate SafeDM in a
// 4-core multicore by Cobham Gaisler"): two redundant pairs share the bus
// and L2, each pair watched by its own SafeDM.
//
// Measured finding: cross-pair contention acts as a *synchronizer* — both
// cores of a pair queue at the same arbiter, so their relative progress
// equalizes and zero-staggering GROWS under load. Lack of diversity grows
// with it in absolute terms (stalled-together cycles keep comparing the
// same frozen state) but stays a small fraction of monitored cycles. The
// practical conclusion is the paper's: timing alone ("some staggering
// exists") is not evidence of diversity — monitoring the actual state is
// needed precisely because congested systems re-synchronize.
#include <cstdio>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;

namespace {

struct PairCounters {
  u64 zero_stag = 0;
  u64 nodiv = 0;
  u64 cycles = 0;
};

PairCounters run_solo(const char* name) {
  soc::MpSoc soc{soc::SocConfig{}};
  monitor::SafeDmConfig config;
  config.start_enabled = true;
  monitor::SafeDm dm(config);
  soc.add_observer(&dm);
  soc.load_redundant(workloads::build(name, 1));
  const u64 cycles = soc.run(50'000'000);
  dm.finalize();
  return PairCounters{dm.counters().zero_stag_cycles, dm.counters().nodiv_cycles, cycles};
}

void run_quad(const char* name0, const char* name1, PairCounters& pair0, PairCounters& pair1) {
  soc::SocConfig soc_config;
  soc_config.num_cores = 4;
  soc::MpSoc soc(soc_config);
  monitor::SafeDmConfig config;
  config.start_enabled = true;
  monitor::SafeDm dm0(config), dm1(config);
  soc.add_observer(&dm0, 0);
  soc.add_observer(&dm1, 1);
  soc.load_redundant_pair(0, workloads::build(name0, 1));
  soc.load_redundant_pair(1, workloads::build(name1, 1));
  const u64 cycles = soc.run(100'000'000);
  dm0.finalize();
  dm1.finalize();
  pair0 = PairCounters{dm0.counters().zero_stag_cycles, dm0.counters().nodiv_cycles, cycles};
  pair1 = PairCounters{dm1.counters().zero_stag_cycles, dm1.counters().nodiv_cycles, cycles};
}

}  // namespace

int main() {
  std::printf("Quad-core deployment: two redundant pairs, per-pair SafeDM\n\n");
  std::printf("%-14s %-14s | %10s %10s | %10s %10s | %10s\n", "pair0", "pair1", "p0 zstag",
              "p0 nodiv", "p1 zstag", "p1 nodiv", "cycles");

  struct Combo {
    const char* a;
    const char* b;
  };
  const Combo combos[] = {{"bitcount", "md5"}, {"cubic", "matrix1"}, {"quicksort", "fft"}};
  for (const Combo& combo : combos) {
    PairCounters p0, p1;
    run_quad(combo.a, combo.b, p0, p1);
    std::printf("%-14s %-14s | %10llu %10llu | %10llu %10llu | %10llu\n", combo.a, combo.b,
                static_cast<unsigned long long>(p0.zero_stag),
                static_cast<unsigned long long>(p0.nodiv),
                static_cast<unsigned long long>(p1.zero_stag),
                static_cast<unsigned long long>(p1.nodiv),
                static_cast<unsigned long long>(p0.cycles));
    std::fflush(stdout);
  }

  std::printf("\nSolo vs contended (pair 0 workload alone vs sharing the SoC):\n");
  std::printf("%-14s %14s %14s %14s %14s\n", "benchmark", "solo zstag", "quad zstag",
              "solo nodiv", "quad nodiv");
  for (const Combo& combo : combos) {
    const PairCounters solo = run_solo(combo.a);
    PairCounters quad, other;
    run_quad(combo.a, combo.b, quad, other);
    std::printf("%-14s %14llu %14llu %14llu %14llu\n", combo.a,
                static_cast<unsigned long long>(solo.zero_stag),
                static_cast<unsigned long long>(quad.zero_stag),
                static_cast<unsigned long long>(solo.nodiv),
                static_cast<unsigned long long>(quad.nodiv));
    std::fflush(stdout);
  }
  std::printf("\nShape check: contention synchronizes the pairs (zero-stag grows under\n"
              "load) while no-div remains a tiny fraction of monitored cycles — staggering\n"
              "cannot be assumed, which is exactly why a diversity *monitor* is needed.\n");
  return 0;
}
