// E7 — Four-core deployment (paper Section I: "We integrate SafeDM in a
// 4-core multicore by Cobham Gaisler"): two redundancy groups share the
// bus and L2, each group watched by its own SafeDM.
//
// Built on the redundancy-group topology: the SoC is declared as explicit
// GroupSpecs (not the legacy even-core pairing), each monitor is sized
// from its group, and a final section runs a mixed 2+3 topology — a pair
// and a triple sharing the SoC — to show per-group monitors of different
// replica counts coexisting on one bus.
//
// Measured finding: cross-group contention acts as a *synchronizer* —
// replicas of a group queue at the same arbiter, so their relative
// progress equalizes and zero-staggering GROWS under load. Lack of
// diversity grows with it in absolute terms (stalled-together cycles keep
// comparing the same frozen state) but stays a small fraction of
// monitored cycles. The practical conclusion is the paper's: timing alone
// ("some staggering exists") is not evidence of diversity — monitoring
// the actual state is needed precisely because congested systems
// re-synchronize.
#include <cstdio>
#include <memory>
#include <vector>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;

namespace {

struct GroupResult {
  u64 zero_stag = 0;
  u64 nodiv = 0;
  u64 cycles = 0;
};

monitor::SafeDmConfig monitor_config(unsigned replicas) {
  monitor::SafeDmConfig config;
  config.num_replicas = replicas;
  config.start_enabled = true;
  return config;
}

GroupResult run_solo(const char* name) {
  soc::SocConfig soc_config;
  soc_config.groups = {soc::GroupSpec::homogeneous(2)};
  soc::MpSoc soc(soc_config);
  monitor::SafeDm dm(monitor_config(soc.group_size(0)));
  soc.add_observer(&dm);
  soc.load_redundant(workloads::build(name, 1));
  const u64 cycles = soc.run(50'000'000);
  dm.finalize();
  return GroupResult{dm.counters().zero_stag_cycles, dm.counters().nodiv_cycles, cycles};
}

/// Run one workload per group on a multi-group SoC, one SafeDM per group
/// sized from the topology; returns one result row per group.
std::vector<GroupResult> run_groups(const std::vector<soc::GroupSpec>& groups,
                                    const std::vector<const char*>& names) {
  soc::SocConfig soc_config;
  soc_config.groups = groups;
  soc::MpSoc soc(soc_config);

  std::vector<std::unique_ptr<monitor::SafeDm>> dms;
  for (unsigned g = 0; g < soc.num_groups(); ++g) {
    dms.push_back(std::make_unique<monitor::SafeDm>(monitor_config(soc.group_size(g))));
    soc.add_observer(dms[g].get(), g);
    soc.load_redundant_group(g, workloads::build(names[g], 1));
  }
  const u64 cycles = soc.run(100'000'000);

  std::vector<GroupResult> results;
  for (auto& dm : dms) {
    dm->finalize();
    results.push_back(GroupResult{dm->counters().zero_stag_cycles,
                                  dm->counters().nodiv_cycles, cycles});
  }
  return results;
}

const std::vector<soc::GroupSpec> kTwoPairs = {soc::GroupSpec::homogeneous(2),
                                               soc::GroupSpec::homogeneous(2)};

}  // namespace

int main() {
  std::printf("Quad-core deployment: two redundancy groups, per-group SafeDM\n\n");
  std::printf("%-14s %-14s | %10s %10s | %10s %10s | %10s\n", "group0", "group1", "g0 zstag",
              "g0 nodiv", "g1 zstag", "g1 nodiv", "cycles");

  struct Combo {
    const char* a;
    const char* b;
  };
  const Combo combos[] = {{"bitcount", "md5"}, {"cubic", "matrix1"}, {"quicksort", "fft"}};
  for (const Combo& combo : combos) {
    const std::vector<GroupResult> r = run_groups(kTwoPairs, {combo.a, combo.b});
    std::printf("%-14s %-14s | %10llu %10llu | %10llu %10llu | %10llu\n", combo.a, combo.b,
                static_cast<unsigned long long>(r[0].zero_stag),
                static_cast<unsigned long long>(r[0].nodiv),
                static_cast<unsigned long long>(r[1].zero_stag),
                static_cast<unsigned long long>(r[1].nodiv),
                static_cast<unsigned long long>(r[0].cycles));
    std::fflush(stdout);
  }

  std::printf("\nSolo vs contended (group 0 workload alone vs sharing the SoC):\n");
  std::printf("%-14s %14s %14s %14s %14s\n", "benchmark", "solo zstag", "quad zstag",
              "solo nodiv", "quad nodiv");
  for (const Combo& combo : combos) {
    const GroupResult solo = run_solo(combo.a);
    const std::vector<GroupResult> r = run_groups(kTwoPairs, {combo.a, combo.b});
    std::printf("%-14s %14llu %14llu %14llu %14llu\n", combo.a,
                static_cast<unsigned long long>(solo.zero_stag),
                static_cast<unsigned long long>(r[0].zero_stag),
                static_cast<unsigned long long>(solo.nodiv),
                static_cast<unsigned long long>(r[0].nodiv));
    std::fflush(stdout);
  }

  // Mixed topology: a 2-replica pair and a 3-replica triple (5 cores)
  // share the bus; the triple's monitor maintains a C(3,2) matrix while
  // the pair's runs the classic pairwise datapath — same SoC, same cycle.
  std::printf("\nMixed topology: pair + triple (5 cores) on one bus:\n");
  std::printf("%-14s %-14s | %10s %10s | %10s %10s\n", "pair", "triple", "pr zstag",
              "pr nodiv", "tr zstag", "tr nodiv");
  const std::vector<soc::GroupSpec> mixed = {soc::GroupSpec::homogeneous(2),
                                             soc::GroupSpec::homogeneous(3)};
  for (const Combo& combo : combos) {
    const std::vector<GroupResult> r = run_groups(mixed, {combo.a, combo.b});
    std::printf("%-14s %-14s | %10llu %10llu | %10llu %10llu\n", combo.a, combo.b,
                static_cast<unsigned long long>(r[0].zero_stag),
                static_cast<unsigned long long>(r[0].nodiv),
                static_cast<unsigned long long>(r[1].zero_stag),
                static_cast<unsigned long long>(r[1].nodiv));
    std::fflush(stdout);
  }

  std::printf("\nShape check: contention synchronizes the groups (zero-stag grows under\n"
              "load) while no-div remains a tiny fraction of monitored cycles — staggering\n"
              "cannot be assumed, which is exactly why a diversity *monitor* is needed.\n");
  return 0;
}
