// Checkpoint-forked vs replay-from-zero injection engine: equivalence and
// speedup smoke.
//
// Runs the same small set of injection sites through both engines on one
// workload. Sites sit at realistic mid-to-late injection depths (60/80/95%
// of the reference run), where forking from a checkpoint skips most of the
// prefix; the replay engine pays O(prefix + tail) per site, the
// checkpointed engine O(tail). The timed cost of each engine includes its
// own reference run (the checkpointed one pays the snapshot overhead
// there), so the reported speedup is the honest per-campaign number.
//
// Usage: bench_checkpoint_speedup [options]
//   --workload=NAME  registry workload (default quicksort — hang-free under
//                    the default register/bit grid, so no site burns the
//                    4x watchdog budget in both engines)
//   --scale=N        workload input scale (default 1)
//   --interval=N     checkpoint interval in cycles; 0 = auto (default 0)
//   --reps=N         timing repetitions; best-of-N per engine (default 1)
//   --min-speedup=X  gate threshold for --check (default 1.2; the target
//                    at these depths is >= 3x, the gate is kept loose so
//                    a noisy shared host cannot flake the build)
//   --json=PATH      report path (default BENCH_checkpoint_speedup.json)
//   --check          exit non-zero if any site's outcome or latency
//                    differs between engines, or the measured speedup is
//                    below the gate
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "json_writer.hpp"
#include "safedm/faultsim/faultsim.hpp"
#include "safedm/workloads/workloads.hpp"

using namespace safedm;
using namespace safedm::faultsim;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct EngineRun {
  ReferenceTrace trace;
  std::vector<InjectionResult> results;
  double seconds = 0;
};

/// Reference run + every site, serially (clean timing), on one engine.
/// `policy` null = replay engine (no checkpoints recorded or used).
EngineRun run_engine_once(const assembler::Program& program, const std::vector<Injection>& sites,
                          const CheckpointPolicy* policy) {
  const auto start = std::chrono::steady_clock::now();
  EngineRun run;
  run.trace = policy != nullptr ? record_reference(program, monitor::SafeDmConfig{}, *policy)
                                : record_reference(program, monitor::SafeDmConfig{});
  const u64 budget = run.trace.cycles * 4 + 100'000;
  const ReferenceTrace* fork = policy != nullptr ? &run.trace : nullptr;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    // Alternate identical-CCF and single-fault sites so both injection
    // paths are covered by the equivalence check.
    run.results.push_back(
        i % 2 == 0 ? inject_identical_fault_timed(program, sites[i], run.trace.golden_checksum,
                                                  budget, fork)
                   : inject_single_fault_timed(program, sites[i], /*target_core=*/i % 4 == 1,
                                               run.trace.golden_checksum, budget, fork));
  }
  run.seconds = seconds_since(start);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr char kUsage[] =
      "usage: bench_checkpoint_speedup [--workload=NAME] [--scale=N] [--interval=N]\n"
      "                                [--reps=N] [--min-speedup=X] [--json=PATH] [--check]\n";
  std::string workload = "quicksort";
  unsigned scale = 2;
  u64 interval = 0;
  unsigned reps = 1;
  double min_speedup = 1.2;
  std::string json_path = "BENCH_checkpoint_speedup.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--workload=", 11) == 0) workload = arg + 11;
    else if (std::strncmp(arg, "--scale=", 8) == 0)
      scale = bench::parse_u32("--scale", arg + 8, kUsage, 1, 1024);
    else if (std::strncmp(arg, "--interval=", 11) == 0)
      interval = bench::parse_u64("--interval", arg + 11, kUsage);
    else if (std::strncmp(arg, "--reps=", 7) == 0)
      reps = bench::parse_u32("--reps", arg + 7, kUsage, 1, 1000);
    else if (std::strncmp(arg, "--min-speedup=", 14) == 0)
      min_speedup = bench::parse_double("--min-speedup", arg + 14, kUsage);
    else if (std::strncmp(arg, "--json=", 7) == 0) json_path = arg + 7;
    else if (std::strcmp(arg, "--check") == 0) check = true;
    else {
      std::fprintf(stderr, "unknown option: %s\n%s", arg, kUsage);
      return 2;
    }
  }

  const assembler::Program program = workloads::build(workload, scale);

  // Probe run: the site depths are fractions of the reference length.
  const ReferenceTrace probe = record_reference(program);
  // Campaign-default register/bit grid at three mid-to-late depths: 27
  // sites, enough for the one-time reference-run cost to amortize the way
  // it does in a real campaign.
  const double depths[] = {0.6, 0.8, 0.95};
  const u8 registers[] = {6, 9, 18};
  const unsigned bits[] = {2, 17, 40};
  std::vector<Injection> sites;
  for (const double depth : depths)
    for (const u8 reg : registers)
      for (const unsigned bit : bits)
        sites.push_back(Injection{static_cast<u64>(depth * static_cast<double>(probe.cycles)),
                                  reg, bit});

  CheckpointPolicy policy;
  policy.interval = interval;

  EngineRun replay;
  EngineRun forked;
  for (unsigned rep = 0; rep < reps; ++rep) {
    EngineRun r = run_engine_once(program, sites, nullptr);
    EngineRun f = run_engine_once(program, sites, &policy);
    if (rep == 0 || r.seconds < replay.seconds) replay = std::move(r);
    if (rep == 0 || f.seconds < forked.seconds) forked = std::move(f);
  }

  unsigned mismatches = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const InjectionResult& a = replay.results[i];
    const InjectionResult& b = forked.results[i];
    if (a.outcome == b.outcome && a.detection_latency == b.detection_latency) continue;
    ++mismatches;
    std::fprintf(stderr,
                 "MISMATCH site %zu (cycle %llu, x%u bit %u): replay %s/%llu vs checkpoint "
                 "%s/%llu\n",
                 i, static_cast<unsigned long long>(sites[i].cycle), unsigned(sites[i].reg),
                 sites[i].bit, outcome_name(a.outcome),
                 static_cast<unsigned long long>(a.detection_latency), outcome_name(b.outcome),
                 static_cast<unsigned long long>(b.detection_latency));
  }

  const double speedup = forked.seconds > 0 ? replay.seconds / forked.seconds : 0.0;
  std::printf("checkpoint-speedup: %s (%llu reference cycles), %zu sites at 60/80/95%% depth\n",
              workload.c_str(), static_cast<unsigned long long>(probe.cycles), sites.size());
  std::printf("  replay engine:      %8.3f s\n", replay.seconds);
  std::printf("  checkpoint engine:  %8.3f s  (%zu checkpoints, final interval %llu)\n",
              forked.seconds, forked.trace.checkpoints.size(),
              static_cast<unsigned long long>(forked.trace.checkpoint_interval));
  std::printf("  speedup:            %8.2fx\n", speedup);
  std::printf("  outcome mismatches: %u\n", mismatches);

  bench::JsonWriter json;
  json.begin_object();
  json.prop("schema", "safedm.bench.checkpoint_speedup/v1");
  json.prop("workload", workload).prop("scale", scale);
  json.prop("reference_cycles", probe.cycles);
  json.prop("sites", sites.size());
  json.prop("checkpoints", forked.trace.checkpoints.size());
  json.prop("checkpoint_interval", forked.trace.checkpoint_interval);
  json.prop("replay_seconds", replay.seconds, 3);
  json.prop("checkpoint_seconds", forked.seconds, 3);
  json.prop("speedup", speedup, 3);
  json.prop("mismatches", mismatches);
  json.end_object();
  if (!json.write_file(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (!check) return 0;
  if (mismatches != 0) {
    std::fprintf(stderr, "SMOKE FAIL: %u sites differ between engines\n", mismatches);
    return 1;
  }
  if (speedup < min_speedup) {
    std::fprintf(stderr, "SMOKE FAIL: checkpoint engine speedup %.2fx < gate %.2fx\n", speedup,
                 min_speedup);
    return 1;
  }
  std::printf("smoke OK: engines agree on all %zu sites, %.2fx speedup\n", sites.size(),
              speedup);
  return 0;
}
