#include "safedm/safede/safede.hpp"

#include <gtest/gtest.h>

#include "safedm/isa/encode.hpp"

namespace safedm::safede {
namespace {

using namespace assembler;
namespace e = isa::enc;

Program loop_program(unsigned iterations) {
  Assembler a;
  Label loop = a.new_label(), done = a.new_label();
  a.li(T0, static_cast<i64>(iterations));
  a.bind(loop);
  a.beqz(T0, done);
  a(e::addi(T0, T0, -1));
  a(e::xor_(T1, T1, T0));
  a.j(loop);
  a.bind(done);
  a(e::ecall());
  return a.assemble("loop");
}

TEST(SafeDe, EnforcesMinimumStaggering) {
  soc::MpSoc soc{soc::SocConfig{}};
  SafeDe safede(SafeDeConfig{.head_core = 0, .min_staggering = 100}, soc);
  soc.add_observer(&safede);
  soc.load_redundant(loop_program(2000));
  soc.run(4'000'000);
  ASSERT_TRUE(soc.all_halted());
  EXPECT_GT(safede.stats().stall_cycles, 0u);
  EXPECT_GT(safede.stats().interventions, 0u);
}

TEST(SafeDe, IsIntrusive) {
  // The enforced run must take longer than the unconstrained run — the
  // intrusiveness SafeDM avoids (Table II).
  soc::MpSoc bare{soc::SocConfig{}};
  bare.load_redundant(loop_program(2000));
  const u64 bare_cycles = bare.run(4'000'000);

  soc::MpSoc soc{soc::SocConfig{}};
  SafeDe safede(SafeDeConfig{.head_core = 0, .min_staggering = 200}, soc);
  soc.add_observer(&safede);
  soc.load_redundant(loop_program(2000));
  const u64 enforced_cycles = soc.run(4'000'000);
  ASSERT_TRUE(soc.all_halted());
  EXPECT_GT(enforced_cycles, bare_cycles);
}

TEST(SafeDe, TrailReleasedAfterThresholdReached) {
  soc::MpSoc soc{soc::SocConfig{}};
  SafeDe safede(SafeDeConfig{.head_core = 0, .min_staggering = 50}, soc);
  soc.add_observer(&safede);
  soc.load_redundant(loop_program(3000));
  soc.run(4'000'000);
  ASSERT_TRUE(soc.all_halted());
  // The trail core finished, so it cannot have been stalled forever.
  EXPECT_TRUE(soc.core(1).halted());
  EXPECT_GE(safede.staggering(), 0);
}

TEST(SafeDe, DisabledDoesNothing) {
  soc::MpSoc soc{soc::SocConfig{}};
  SafeDe safede(SafeDeConfig{.head_core = 0, .min_staggering = 100, .enabled = false}, soc);
  soc.add_observer(&safede);
  soc.load_redundant(loop_program(1000));
  soc.run(4'000'000);
  EXPECT_EQ(safede.stats().stall_cycles, 0u);
}

TEST(SafeDe, HeadCompletionReleasesTrail) {
  // Even with an absurd threshold, the run must terminate: the trail core
  // is released once the head halts.
  soc::MpSoc soc{soc::SocConfig{}};
  SafeDe safede(SafeDeConfig{.head_core = 0, .min_staggering = 1'000'000}, soc);
  soc.add_observer(&safede);
  soc.load_redundant(loop_program(500));
  soc.run(8'000'000);
  EXPECT_TRUE(soc.all_halted());
}

}  // namespace
}  // namespace safedm::safede
