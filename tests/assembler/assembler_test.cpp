#include "safedm/assembler/assembler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <limits>

#include "safedm/isa/iss.hpp"
#include "safedm/mem/phys_mem.hpp"

namespace safedm::assembler {
namespace {

namespace e = isa::enc;

constexpr u64 kTextBase = 0x10000;
constexpr u64 kDataBase = 0x40000;
constexpr u64 kStackTop = 0xF0000;

/// Load a Program the same way the SoC does and run it on the ISS.
isa::ArchState run_program(const Program& program, u64 max_inst = 1'000'000) {
  mem::PhysMem mem(0, 1 << 20);
  for (std::size_t i = 0; i < program.text.size(); ++i)
    mem.store(kTextBase + i * 4, program.text[i], 4);
  mem.write_block(kDataBase, program.data);
  isa::Iss iss(mem, kTextBase);
  iss.state().set_x(A0, kDataBase);
  iss.state().set_x(SP, kStackTop);
  iss.run(max_inst);
  return iss.state();
}

TEST(Assembler, ForwardAndBackwardBranches) {
  Assembler a;
  Label loop = a.new_label();
  Label done = a.new_label();
  a.li(T0, 5);
  a.li(T1, 0);
  a.bind(loop);
  a.beqz(T0, done);                 // forward branch
  a(e::add(T1, T1, T0));
  a(e::addi(T0, T0, -1));
  a.j(loop);                        // backward jump
  a.bind(done);
  a(e::ecall());
  const auto s = run_program(a.assemble("sum"));
  EXPECT_EQ(s.halt, isa::HaltReason::kEcall);
  EXPECT_EQ(s.x[T1], 15u);
}

TEST(Assembler, CallAndReturn) {
  Assembler a;
  Label func = a.new_label();
  Label main = a.new_label();
  a.j(main);
  a.bind(func);                     // t2 = t0 + t1
  a(e::add(T2, T0, T1));
  a.ret();
  a.bind(main);
  a.li(T0, 40);
  a.li(T1, 2);
  a.call(func);
  a(e::ecall());
  const auto s = run_program(a.assemble("call"));
  EXPECT_EQ(s.x[T2], 42u);
}

TEST(Assembler, LiCoversFullRange) {
  const std::array<i64, 12> values = {
      0,    1,     -1,        2047, -2048,        2048,
      -2049, 0x7FFFFFFF, i64{-2147483648}, 0x123456789ABCDEFLL,
      std::numeric_limits<i64>::min(), -559038737,
  };
  for (std::size_t i = 0; i < values.size(); ++i) {
    Assembler a;
    a.li(T0, values[i]);
    a(e::ecall());
    const auto s = run_program(a.assemble("li"));
    EXPECT_EQ(static_cast<i64>(s.x[T0]), values[i]) << "li value index " << i;
  }
}

TEST(Assembler, AddImmLargeOffsets) {
  Assembler a;
  a.add_imm(T0, A0, 4096);      // beyond addi range
  a.add_imm(T1, A0, -4097);
  a.add_imm(T2, A0, 12);        // small path
  a(e::ecall());
  const auto s = run_program(a.assemble("add_imm"));
  EXPECT_EQ(s.x[T0], kDataBase + 4096);
  EXPECT_EQ(s.x[T1], kDataBase - 4097);
  EXPECT_EQ(s.x[T2], kDataBase + 12);
}

TEST(Assembler, DataSegmentAccessViaA0) {
  Assembler a;
  DataBuilder d;
  const std::array<u32, 4> input = {10, 20, 30, 40};
  const u64 arr = d.add_u32_array(input);
  const u64 out = d.add_u64(0);
  // Sum the array into `out`.
  a.lea_data(S0, arr);
  a.li(T0, 4);
  a.li(T1, 0);
  Label loop = a.new_label(), done = a.new_label();
  a.bind(loop);
  a.beqz(T0, done);
  a(e::lwu(T2, S0, 0));
  a(e::add(T1, T1, T2));
  a(e::addi(S0, S0, 4));
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(done);
  a.lea_data(S1, out);
  a(e::sd(T1, S1, 0));
  a(e::ecall());

  mem::PhysMem mem(0, 1 << 20);
  const Program program = a.assemble("sumarray", std::move(d));
  for (std::size_t i = 0; i < program.text.size(); ++i)
    mem.store(kTextBase + i * 4, program.text[i], 4);
  mem.write_block(kDataBase, program.data);
  isa::Iss iss(mem, kTextBase);
  iss.state().set_x(A0, kDataBase);
  iss.run(1000);
  EXPECT_EQ(mem.load(kDataBase + out, 8), 100u);
}

TEST(Assembler, PseudoInstructions) {
  Assembler a;
  a.li(T0, -7);
  a.neg(T1, T0);         // 7
  a.not_(T2, T0);        // 6
  a.seqz(S0, ZERO);      // 1
  a.snez(S1, T0);        // 1
  a.mv(S2, T1);          // 7
  a(e::ecall());
  const auto s = run_program(a.assemble("pseudo"));
  EXPECT_EQ(s.x[T1], 7u);
  EXPECT_EQ(s.x[T2], 6u);
  EXPECT_EQ(s.x[S0], 1u);
  EXPECT_EQ(s.x[S1], 1u);
  EXPECT_EQ(s.x[S2], 7u);
}

TEST(Assembler, NopsEmitCanonicalNop) {
  Assembler a;
  a.nops(3);
  a(e::ecall());
  const Program p = a.assemble("nops");
  ASSERT_EQ(p.text.size(), 4u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(p.text[i], isa::kNopEncoding);
}

TEST(Assembler, UnboundLabelThrows) {
  Assembler a;
  Label l = a.new_label();
  a.j(l);
  EXPECT_THROW(a.assemble("bad"), CheckError);
}

TEST(Assembler, DoubleBindThrows) {
  Assembler a;
  Label l = a.new_label();
  a.bind(l);
  EXPECT_THROW(a.bind(l), CheckError);
}

TEST(DataBuilder, AlignmentAndOffsets) {
  DataBuilder d;
  const u64 byte_off = d.add_u8(0xAA);
  const u64 word_off = d.add_u64(0x1122334455667788ull);
  EXPECT_EQ(byte_off, 0u);
  EXPECT_EQ(word_off, 8u);  // aligned up
  const u64 reserved = d.reserve(16);
  EXPECT_EQ(reserved, 16u);
  EXPECT_EQ(d.size(), 32u);
}

TEST(DataBuilder, F64ArrayBitExact) {
  DataBuilder d;
  const std::array<double, 2> values = {1.5, -2.25};
  const u64 off = d.add_f64_array(values);
  auto bytes = d.take();
  double read = 0;
  __builtin_memcpy(&read, bytes.data() + off + 8, 8);
  EXPECT_EQ(read, -2.25);
}

}  // namespace
}  // namespace safedm::assembler
