// Register-allocation shuffle (DME-style decorrelation transform):
// determinism contract (TESTING.md), identity seed, protected-register
// set, bijectivity, operand-flag gating, and semantic equivalence of a
// shuffled program on the ISS.
#include "safedm/assembler/transform.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "safedm/assembler/assembler.hpp"
#include "safedm/isa/encode.hpp"
#include "safedm/isa/iss.hpp"
#include "safedm/mem/phys_mem.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::assembler {
namespace {

namespace e = isa::enc;

constexpr u64 kTextBase = 0x10000;
constexpr u64 kDataBase = 0x40000;
constexpr u64 kStackTop = 0xF0000;

isa::ArchState run_program(const Program& program, mem::PhysMem& mem,
                           u64 max_inst = 1'000'000) {
  for (std::size_t i = 0; i < program.text.size(); ++i)
    mem.store(kTextBase + i * 4, program.text[i], 4);
  mem.write_block(kDataBase, program.data);
  isa::Iss iss(mem, kTextBase);
  iss.state().set_x(A0, kDataBase);
  iss.state().set_x(SP, kStackTop);
  iss.run(max_inst);
  return iss.state();
}

TEST(RegisterShuffle, SeedZeroIsIdentity) {
  const RegisterShuffle shuffle = make_register_shuffle(0);
  EXPECT_TRUE(shuffle.identity());
  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(shuffle.int_map[r], r);
    EXPECT_EQ(shuffle.fp_map[r], r);
  }
  const Program program = workloads::build("bitcount", 1);
  const Program copy = shuffle_registers(program, 0);
  EXPECT_EQ(program.text, copy.text);
  EXPECT_EQ(program.data, copy.data);
}

TEST(RegisterShuffle, PureFunctionOfSeed) {
  const Program program = workloads::build("cubic", 1);
  for (const u32 seed : {1u, 42u, 0xDEADBEEFu}) {
    const RegisterShuffle a = make_register_shuffle(seed);
    const RegisterShuffle b = make_register_shuffle(seed);
    EXPECT_EQ(a.int_map, b.int_map) << "seed " << seed;
    EXPECT_EQ(a.fp_map, b.fp_map) << "seed " << seed;
    const Program p1 = shuffle_registers(program, seed);
    const Program p2 = shuffle_registers(program, seed);
    EXPECT_EQ(p1.text, p2.text) << "seed " << seed;
  }
  // Distinct seeds must produce distinct permutations in practice (not a
  // hard guarantee per pair, but across three seeds a collision would
  // mean the seed barely feeds the permutation).
  const RegisterShuffle s1 = make_register_shuffle(1);
  const RegisterShuffle s2 = make_register_shuffle(2);
  const RegisterShuffle s3 = make_register_shuffle(3);
  EXPECT_TRUE(s1.int_map != s2.int_map || s2.int_map != s3.int_map);
}

TEST(RegisterShuffle, NeverRemapsProtectedRegisters) {
  // x0 (zero), ra/sp/gp/tp (x1..x4), and a0 (x10) carry the entry/ABI
  // convention and must stay fixed under every seed.
  for (u32 seed = 0; seed < 64; ++seed) {
    const RegisterShuffle shuffle = make_register_shuffle(seed);
    for (const unsigned fixed : {0u, 1u, 2u, 3u, 4u, 10u})
      EXPECT_EQ(shuffle.int_map[fixed], fixed) << "seed " << seed << " x" << fixed;
  }
}

TEST(RegisterShuffle, BijectiveForManySeeds) {
  for (u32 seed = 0; seed < 64; ++seed) {
    const RegisterShuffle shuffle = make_register_shuffle(seed);
    std::set<u8> ints(shuffle.int_map.begin(), shuffle.int_map.end());
    std::set<u8> fps(shuffle.fp_map.begin(), shuffle.fp_map.end());
    EXPECT_EQ(ints.size(), 32u) << "seed " << seed;
    EXPECT_EQ(fps.size(), 32u) << "seed " << seed;
  }
  // A nonzero seed must actually move something (the shuffled class has
  // 26 members; a fixed-point-only permutation would defeat the point).
  bool any_moved = false;
  for (u32 seed = 1; seed < 8 && !any_moved; ++seed)
    any_moved = !make_register_shuffle(seed).identity();
  EXPECT_TRUE(any_moved);
}

TEST(RegisterShuffle, RemapIsGatedByOperandFlags) {
  // Find a seed that moves x6 (T1): the S-type [11:7] field of a store is
  // an *immediate* slice that happens to alias rd's position — it must
  // not be rewritten even when its value names a shuffled register.
  u32 seed = 0;
  for (u32 candidate = 1; candidate < 256; ++candidate) {
    if (make_register_shuffle(candidate).int_map[6] != 6) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed in 1..255 moves x6";
  const RegisterShuffle shuffle = make_register_shuffle(seed);

  // sw t0, 6(a0): immediate bits [11:7] == 6 == x6's index.
  const u32 sw = e::sw(T0, A0, 6);
  const u32 remapped = remap_instruction(sw, shuffle);
  EXPECT_EQ((remapped >> 7) & 0x1F, 6u) << "store immediate field was rewritten";
  EXPECT_EQ((remapped >> 15) & 0x1F, 10u) << "a0 base must stay fixed";
  EXPECT_EQ((remapped >> 20) & 0x1F, shuffle.int_map[T0]) << "rs2 must follow the map";

  // Same for the B-type immediate slice.
  const u32 beq = e::beq(A0, T0, 12);
  const u32 beq_remapped = remap_instruction(beq, shuffle);
  EXPECT_EQ(beq_remapped & 0xFE007FFFu, beq & 0xFE007FFFu)
      << "branch opcode/immediate bits changed";

  // An R-type instruction moves all three register fields together.
  const u32 add = e::add(T1, T1, T2);
  const u32 add_remapped = remap_instruction(add, shuffle);
  EXPECT_EQ((add_remapped >> 7) & 0x1F, shuffle.int_map[6]);
  EXPECT_EQ((add_remapped >> 15) & 0x1F, shuffle.int_map[6]);
  EXPECT_EQ((add_remapped >> 20) & 0x1F, shuffle.int_map[7]);

  // Invalid encodings pass through untouched.
  EXPECT_EQ(remap_instruction(0xFFFFFFFFu, shuffle), 0xFFFFFFFFu);
}

TEST(RegisterShuffle, ShuffledProgramIsSemanticallyEquivalent) {
  // Renaming is purely syntactic: same halt, same retired-instruction
  // count, same memory image — only the (renamed) register file differs.
  Assembler a;
  Label loop = a.new_label();
  Label done = a.new_label();
  a.li(T0, 10);
  a.li(T1, 0);
  a.bind(loop);
  a.beqz(T0, done);
  a(e::add(T1, T1, T0));
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(done);
  a(e::sw(T1, A0, 0));
  a(e::ecall());
  const Program program = a.assemble("sum10");

  for (const u32 seed : {7u, 0x5AFEu}) {
    const Program shuffled = shuffle_registers(program, seed);
    ASSERT_EQ(program.text.size(), shuffled.text.size());

    mem::PhysMem mem_ref(0, 1 << 20), mem_shuf(0, 1 << 20);
    const isa::ArchState ref = run_program(program, mem_ref);
    const isa::ArchState shuf = run_program(shuffled, mem_shuf);
    EXPECT_EQ(ref.halt, shuf.halt) << "seed " << seed;
    EXPECT_EQ(ref.instret, shuf.instret) << "seed " << seed;
    EXPECT_EQ(mem_ref.load(kDataBase, 4), mem_shuf.load(kDataBase, 4)) << "seed " << seed;
    EXPECT_EQ(mem_ref.load(kDataBase, 4), 55u);
  }
}

}  // namespace
}  // namespace safedm::assembler
