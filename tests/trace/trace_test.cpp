#include <gtest/gtest.h>

#include <sstream>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/trace/pipeline_tracer.hpp"
#include "safedm/trace/vcd_writer.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::trace {
namespace {

struct Rig {
  Rig() : soc(soc::SocConfig{}) {
    monitor::SafeDmConfig config;
    config.start_enabled = true;
    dm = std::make_unique<monitor::SafeDm>(config);
    soc.add_observer(dm.get());
  }
  soc::MpSoc soc;
  std::unique_ptr<monitor::SafeDm> dm;
};

TEST(PipelineTracer, RendersStagesAndInstructions) {
  Rig rig;
  std::ostringstream out;
  TracerConfig config;
  config.start_cycle = 30;
  config.end_cycle = 60;
  PipelineTracer tracer(out, config, rig.dm.get());
  rig.soc.add_observer(&tracer);
  rig.soc.load_redundant(workloads::build("fac", 1));
  rig.soc.run(100);
  const std::string text = out.str();
  EXPECT_EQ(tracer.traced_cycles(), 31u);
  EXPECT_NE(text.find("cycle 30"), std::string::npos);
  EXPECT_NE(text.find("core0:"), std::string::npos);
  EXPECT_NE(text.find("core1:"), std::string::npos);
  EXPECT_NE(text.find("WB:"), std::string::npos);
  // By cycle 60 real instructions are in flight and disassembled.
  EXPECT_NE(text.find('['), std::string::npos);
  EXPECT_NE(text.find("diff="), std::string::npos);
}

TEST(PipelineTracer, CycleWindowRespected) {
  Rig rig;
  std::ostringstream out;
  TracerConfig config;
  config.start_cycle = 10;
  config.end_cycle = 12;
  PipelineTracer tracer(out, config);
  rig.soc.add_observer(&tracer);
  rig.soc.load_redundant(workloads::build("fac", 1));
  rig.soc.run(50);
  EXPECT_EQ(tracer.traced_cycles(), 3u);
  EXPECT_EQ(out.str().find("cycle 9"), std::string::npos);
  EXPECT_EQ(out.str().find("cycle 13"), std::string::npos);
}

TEST(PipelineTracer, OnlyNoDivFilter) {
  Rig rig;
  std::ostringstream out;
  TracerConfig config;
  config.only_when_lacking_diversity = true;
  PipelineTracer tracer(out, config, rig.dm.get());
  rig.soc.add_observer(&tracer);
  rig.soc.load_redundant(workloads::build("cubic", 1));
  rig.soc.run(20'000'000);
  rig.dm->finalize();
  // Exactly the flagged cycles get traced.
  EXPECT_EQ(tracer.traced_cycles(), rig.dm->counters().nodiv_cycles);
}

TEST(VcdWriter, HeaderAndChangesWellFormed) {
  Rig rig;
  std::ostringstream out;
  VcdWriter vcd(out, rig.dm.get());
  rig.soc.add_observer(&vcd);
  rig.soc.load_redundant(workloads::build("fac", 1));
  rig.soc.run(200);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("$timescale", 0), 0u);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(text.find("core0.EX_l0_inst"), std::string::npos);
  EXPECT_NE(text.find("core1.port0_val"), std::string::npos);
  EXPECT_NE(text.find("safedm.lack_of_diversity"), std::string::npos);
  EXPECT_NE(text.find("#1\n"), std::string::npos);
  EXPECT_NE(text.find("#200"), std::string::npos);
  EXPECT_GT(vcd.changes_written(), 100u);
}

TEST(VcdWriter, OnlyChangesAreDumped) {
  // A frozen pair (parked cores) should settle: change volume per cycle
  // drops to ~zero after the first dump.
  Rig rig;
  std::ostringstream out;
  VcdWriter vcd(out);
  rig.soc.add_observer(&vcd);
  rig.soc.load_redundant(workloads::build("fac", 1));
  rig.soc.run(20'000'000);  // run to completion; both cores halted
  rig.soc.step();           // one settling step (commits/hold lines drop)
  const u64 after_halt = vcd.changes_written();
  for (int i = 0; i < 50; ++i) rig.soc.step();
  EXPECT_EQ(vcd.changes_written(), after_halt);
}

}  // namespace
}  // namespace safedm::trace
