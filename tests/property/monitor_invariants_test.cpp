// Property fuzzing at the monitor level: run the full workload suite
// redundantly under many configurations and assert SafeDM's structural
// invariants on every run.
#include <gtest/gtest.h>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::monitor {
namespace {

struct Config {
  std::string workload;
  unsigned stagger;
  unsigned depth;
  IsMode is_mode;
};

void PrintTo(const Config& c, std::ostream* os) {
  *os << c.workload << "_s" << c.stagger << "_n" << c.depth << "_m"
      << static_cast<int>(c.is_mode);
}

std::vector<Config> make_configs() {
  std::vector<Config> configs;
  const char* names[] = {"bitcount", "quicksort", "cubic", "md5", "pm", "fft"};
  for (const char* name : names)
    for (unsigned stagger : {0u, 100u})
      for (unsigned depth : {2u, 8u})
        configs.push_back(Config{name, stagger, depth, IsMode::kPerStage});
  configs.push_back(Config{"iir", 0, 8, IsMode::kFlatList});
  configs.push_back(Config{"sha", 0, 8, IsMode::kFlatList});
  return configs;
}

class MonitorInvariants : public ::testing::TestWithParam<Config> {};

TEST_P(MonitorInvariants, HoldOnEveryRun) {
  const Config& config = GetParam();
  soc::MpSoc soc{soc::SocConfig{}};
  SafeDmConfig dm_config;
  dm_config.data_fifo_depth = config.depth;
  dm_config.is_mode = config.is_mode;
  dm_config.start_enabled = true;
  SafeDm dm(dm_config);
  soc.add_observer(&dm);

  // Per-cycle cross-check: SafeDM's "no diversity" verdict must imply the
  // current monitored frames are identical (no false negatives).
  struct Checker : soc::CycleObserver {
    SafeDm* dm = nullptr;
    u64 violations = 0;
    u64 nodiv_seen = 0;
    void on_cycle(u64, const core::CoreTapFrame& f0, const core::CoreTapFrame& f1) override {
      if (!dm->lacking_diversity_now()) return;
      ++nodiv_seen;
      if (!(f0.stage == f1.stage)) ++violations;
      if (f0.hold != f1.hold) {
        // A hold mismatch means one FIFO shifted and the other did not;
        // with equal signatures that is only possible when the shifted-in
        // sample equals the shifted-out one — legal but worth counting.
      }
      for (unsigned p = 0; p < dm->config().num_ports; ++p)
        if (!f0.hold && !f1.hold && !(f0.port[p] == f1.port[p])) ++violations;
    }
  } checker;
  checker.dm = &dm;
  soc.add_observer(&checker);

  const assembler::Program program = workloads::build(config.workload, 1);
  soc.load_redundant(program, config.stagger, 1);
  dm.set_prelude_ignore(0, soc.prelude_commits(0));
  dm.set_prelude_ignore(1, soc.prelude_commits(1));
  soc.run(30'000'000);
  dm.finalize();

  ASSERT_TRUE(soc.all_halted());

  // Invariant 1: no false negatives.
  EXPECT_EQ(checker.violations, 0u);
  EXPECT_EQ(checker.nodiv_seen, dm.counters().nodiv_cycles);

  // Invariant 2: counter algebra. No-diversity requires both matches.
  const auto& c = dm.counters();
  EXPECT_LE(c.nodiv_cycles, c.ds_match_cycles);
  EXPECT_LE(c.nodiv_cycles, c.is_match_cycles);
  EXPECT_LE(c.ds_match_cycles, c.monitored_cycles);
  EXPECT_LE(c.is_match_cycles, c.monitored_cycles);
  EXPECT_LE(c.zero_stag_cycles, c.monitored_cycles);

  // Invariant 3: histogram episode mass equals the counted cycles.
  EXPECT_EQ(dm.nodiv_history().sample_sum(), c.nodiv_cycles);
  EXPECT_EQ(dm.ds_history().sample_sum(), c.ds_match_cycles);
  EXPECT_EQ(dm.is_history().sample_sum(), c.is_match_cycles);

  // Invariant 4: redundant results agree (functional redundancy intact).
  EXPECT_EQ(soc.memory().load(soc.config().data_base0, 8),
            soc.memory().load(soc.config().data_base1, 8))
      << config.workload;

  // Invariant 5: instruction diff ends at zero — both cores committed the
  // same program (preludes discounted).
  EXPECT_EQ(dm.instruction_diff(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MonitorInvariants, ::testing::ValuesIn(make_configs()),
                         [](const ::testing::TestParamInfo<Config>& info) {
                           std::string name = info.param.workload + "_s" +
                                              std::to_string(info.param.stagger) + "_n" +
                                              std::to_string(info.param.depth) +
                                              (info.param.is_mode == IsMode::kFlatList ? "_flat"
                                                                                       : "");
                           return name;
                         });

}  // namespace
}  // namespace safedm::monitor
