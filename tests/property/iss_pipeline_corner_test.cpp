// Targeted ISS-vs-pipeline corner cases found missing while wiring the
// differential oracles: FP NaN propagation and divide-by-zero results,
// illegal-instruction halt propagation, and x0-write semantics. Each
// program runs through the full oracle stack (which asserts bitwise
// ISS/pipeline agreement) and then the golden-model results are pinned
// against the architecturally required values.
#include <gtest/gtest.h>

#include "safedm/assembler/assembler.hpp"
#include "safedm/fuzz/oracle.hpp"

namespace safedm {
namespace {

using namespace assembler;
namespace e = isa::enc;

fuzz::OracleResult run_image(const Program& image) {
  const fuzz::OracleResult res = fuzz::run_differential(image);
  EXPECT_TRUE(res.ok() || res.verdict == fuzz::OracleVerdict::kPass)
      << fuzz::verdict_name(res.verdict) << " — " << res.detail;
  return res;
}

TEST(IssPipelineCorner, NanBitPatternsSurviveMovesAndSignOps) {
  // A qNaN with a distinctive payload must round-trip bit-exact through
  // fmv.d.x / fsgnj.d / fmv.x.d in both models (no host-FPU canonicalization
  // on pure bit-manipulation ops).
  constexpr u64 kNan = 0x7FF8'0000'DEAD'BEEFull;
  Assembler a;
  a.li(T0, static_cast<i64>(kNan));
  a(e::fmv_d_x(FT0, T0));
  a(e::fsgnj_d(FT1, FT0, FT0));   // copy, sign from itself
  a(e::fsgnjn_d(FT2, FT0, FT0));  // sign flipped
  a(e::fsgnjx_d(FT3, FT2, FT2));  // sign xor: negative^negative = positive
  a(e::fmv_x_d(T1, FT1));
  a(e::fmv_x_d(T2, FT2));
  a(e::fmv_x_d(T3, FT3));
  a(e::ecall());

  const fuzz::OracleResult res = run_image(a.assemble("nan_moves"));
  ASSERT_EQ(res.iss_state.halt, isa::HaltReason::kEcall);
  EXPECT_EQ(res.iss_state.x[T1], kNan);
  EXPECT_EQ(res.iss_state.x[T2], kNan | 0x8000'0000'0000'0000ull);
  EXPECT_EQ(res.iss_state.x[T3], kNan);
}

TEST(IssPipelineCorner, FpDivideByZeroAndNan) {
  constexpr u64 kOne = 0x3FF0'0000'0000'0000ull;   // 1.0
  constexpr u64 kNegOne = 0xBFF0'0000'0000'0000ull;
  constexpr u64 kPosInf = 0x7FF0'0000'0000'0000ull;
  constexpr u64 kNegInf = 0xFFF0'0000'0000'0000ull;
  Assembler a;
  a.li(T0, static_cast<i64>(kOne));
  a.li(T1, static_cast<i64>(kNegOne));
  a(e::fmv_d_x(FT0, T0));
  a(e::fmv_d_x(FT1, T1));
  a(e::fmv_d_x(FT2, ZERO));       // +0.0
  a(e::fdiv_d(FT3, FT0, FT2));    // 1/0  -> +inf
  a(e::fdiv_d(FT4, FT1, FT2));    // -1/0 -> -inf
  a(e::fdiv_d(FT5, FT2, FT2));    // 0/0  -> NaN
  a(e::fmv_x_d(T2, FT3));
  a(e::fmv_x_d(T3, FT4));
  a(e::fmv_x_d(T4, FT5));
  a(e::ecall());

  const fuzz::OracleResult res = run_image(a.assemble("fp_div_zero"));
  ASSERT_EQ(res.iss_state.halt, isa::HaltReason::kEcall);
  EXPECT_EQ(res.iss_state.x[T2], kPosInf);
  EXPECT_EQ(res.iss_state.x[T3], kNegInf);
  // 0/0 must be *a* NaN (exponent all ones, nonzero mantissa); the exact
  // payload is host-FPU specific, but the oracle already proved the
  // pipeline produced the identical bit pattern.
  const u64 nan = res.iss_state.x[T4];
  EXPECT_EQ(nan & kPosInf, kPosInf);
  EXPECT_NE(nan & 0x000F'FFFF'FFFF'FFFFull, 0u);
}

TEST(IssPipelineCorner, IntegerDivideByZeroSemantics) {
  Assembler a;
  a.li(A1, 7);
  a.li(A2, 0);
  a(e::div(A3, A1, A2));    // q = -1
  a(e::rem(A4, A1, A2));    // r = dividend
  a(e::divu(A5, A1, A2));   // q = 2^64 - 1
  a(e::remu(T0, A1, A2));   // r = dividend
  a.li(S1, static_cast<i64>(0x8000'0000'0000'0000ull));  // INT64_MIN
  a.li(S2, -1);
  a(e::div(S3, S1, S2));    // overflow: q = INT64_MIN
  a(e::rem(S4, S1, S2));    // overflow: r = 0
  a(e::ecall());

  const fuzz::OracleResult res = run_image(a.assemble("int_div_zero"));
  ASSERT_EQ(res.iss_state.halt, isa::HaltReason::kEcall);
  EXPECT_EQ(res.iss_state.x[A3], ~u64{0});
  EXPECT_EQ(res.iss_state.x[A4], 7u);
  EXPECT_EQ(res.iss_state.x[A5], ~u64{0});
  EXPECT_EQ(res.iss_state.x[T0], 7u);
  EXPECT_EQ(res.iss_state.x[S3], 0x8000'0000'0000'0000ull);
  EXPECT_EQ(res.iss_state.x[S4], 0u);
}

TEST(IssPipelineCorner, IllegalInstructionHaltPropagates) {
  // Both models must stop at the undecodable word with the same halt
  // reason and the same retired-instruction count (the instructions before
  // the illegal word commit; the illegal word itself does not).
  Assembler a;
  a.li(T0, 5);
  a(e::addi(T1, T0, 1));
  a(0x0000'0000u);  // all-zero word: not a valid RV64IMD encoding
  a(e::addi(T2, T0, 2));  // must never execute
  a(e::ecall());

  const fuzz::OracleResult res = run_image(a.assemble("illegal_halt"));
  EXPECT_EQ(res.iss_state.halt, isa::HaltReason::kIllegalInst);
  EXPECT_EQ(res.pipe_state.halt, isa::HaltReason::kIllegalInst);
  EXPECT_EQ(res.iss_state.x[T2], 0u);
  EXPECT_GT(res.coverage.count(isa::kMnemonicCount + fuzz::CoverageMap::kFormatCount +
                               static_cast<std::size_t>(fuzz::Event::kIllegalHalt)),
            0u);
}

TEST(IssPipelineCorner, WritesToX0AreDiscarded) {
  Assembler a;
  DataBuilder d;
  d.add_u64(0x1234'5678'9ABC'DEF0ull);
  a.li(A1, 41);
  a(e::addi(ZERO, A1, 1));      // ALU write to x0
  a(e::add(ZERO, A1, A1));      // R-type write to x0
  a(e::ld(ZERO, A0, 0));        // load into x0 (memory access still happens)
  a(e::sltiu(ZERO, A1, 100));   // comparison write to x0
  a(e::add(A2, ZERO, A1));      // x0 must still read as zero afterwards
  a(e::ecall());

  const fuzz::OracleResult res = run_image(a.assemble("x0_writes", std::move(d)));
  ASSERT_EQ(res.iss_state.halt, isa::HaltReason::kEcall);
  EXPECT_EQ(res.iss_state.x[0], 0u);
  EXPECT_EQ(res.pipe_state.x[0], 0u);
  EXPECT_EQ(res.iss_state.x[A2], 41u);
  // All five instructions plus the prologue retired (discarded writes
  // still count as executed instructions).
  EXPECT_EQ(res.iss_state.instret, res.pipe_state.instret);
}

}  // namespace
}  // namespace safedm
