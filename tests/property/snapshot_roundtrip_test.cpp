// Snapshot round-trip property: run a program to a random cycle, snapshot
// the SoC + monitor, and let a restored copy continue in parallel with the
// original. The restored instance must be *forward bit-identical* — every
// tap frame of every remaining cycle, every SafeDM verdict and counter,
// and the final result checksums must match the uninterrupted run (the
// restored-forward equivalence invariant of DESIGN.md §5b, which the
// checkpoint-forked fault campaign stands on).
//
// Also covers the rejection paths at the snapshot level: truncated
// streams, corrupted section versions, and restoring into an SoC built
// from a different configuration must all throw StateError.
#include <gtest/gtest.h>

#include "safedm/assembler/assembler.hpp"
#include "safedm/common/rng.hpp"
#include "safedm/common/state.hpp"
#include "safedm/isa/inst.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm {
namespace {

using assembler::Program;

constexpr u64 kBudget = 2'000'000;

/// SoC + attached SafeDM, the pairing every campaign rig uses. The monitor
/// is an observer (a binding, not SoC state), so it serializes alongside
/// the SoC in one stream.
struct Rig {
  Rig() : soc(soc::SocConfig{}), dm([] {
    monitor::SafeDmConfig config;
    config.start_enabled = true;
    return config;
  }()) {
    soc.add_observer(&dm);
  }

  void load(const Program& program) {
    soc.load_redundant(program);
    dm.set_prelude_ignore(0, 0);
    dm.set_prelude_ignore(1, 0);
  }

  std::vector<u8> save() const {
    StateWriter w;
    soc.save_state(w);
    dm.save_state(w);
    return w.take();
  }

  void restore(std::span<const u8> bytes) {
    StateReader r(bytes);
    soc.restore_state(r);
    dm.restore_state(r);
  }

  u64 result(unsigned core_index) {
    const u64 base = core_index == 0 ? soc.config().data_base0 : soc.config().data_base1;
    return soc.memory().load(base + workloads::kResultOffset, 8);
  }

  soc::MpSoc soc;
  monitor::SafeDm dm;
};

void expect_counters_equal(const monitor::SafeDmCounters& a, const monitor::SafeDmCounters& b) {
  EXPECT_EQ(a.monitored_cycles, b.monitored_cycles);
  EXPECT_EQ(a.nodiv_cycles, b.nodiv_cycles);
  EXPECT_EQ(a.ds_match_cycles, b.ds_match_cycles);
  EXPECT_EQ(a.is_match_cycles, b.is_match_cycles);
  EXPECT_EQ(a.zero_stag_cycles, b.zero_stag_cycles);
  EXPECT_EQ(a.interrupts, b.interrupts);
  EXPECT_EQ(a.distance_sum, b.distance_sum);
}

/// The property itself: original runs 0..end; the copy is restored from a
/// snapshot at `split` and both step in lockstep from there. Observable
/// streams are compared cycle by cycle, not just at the end, so a
/// transient divergence that later re-converges still fails.
void check_roundtrip(const Program& program, u64 split) {
  Rig original;
  original.load(program);
  while (!original.soc.all_halted() && original.soc.cycle() < split) original.soc.step();
  const std::vector<u8> bytes = original.save();

  Rig restored;  // fresh instance: nothing loaded, everything from the stream
  restored.restore(bytes);
  ASSERT_EQ(restored.soc.cycle(), original.soc.cycle());

  while (!original.soc.all_halted() && original.soc.cycle() < kBudget) {
    original.soc.step();
    restored.soc.step();
    ASSERT_EQ(original.soc.cycle(), restored.soc.cycle());
    for (unsigned c = 0; c < original.soc.num_cores(); ++c)
      ASSERT_EQ(original.soc.frame(c), restored.soc.frame(c))
          << "core " << c << " tap frame diverged at cycle " << original.soc.cycle();
    ASSERT_EQ(original.dm.lacking_diversity_now(), restored.dm.lacking_diversity_now())
        << "SafeDM verdict diverged at cycle " << original.soc.cycle();
  }

  EXPECT_TRUE(original.soc.all_halted());
  EXPECT_TRUE(restored.soc.all_halted());
  EXPECT_EQ(original.soc.cycle(), restored.soc.cycle());
  for (unsigned c = 0; c < original.soc.num_cores(); ++c) {
    EXPECT_EQ(original.soc.core(c).halt_reason(), restored.soc.core(c).halt_reason());
    EXPECT_EQ(original.soc.core(c).stats().committed, restored.soc.core(c).stats().committed);
    EXPECT_EQ(original.result(c), restored.result(c)) << "core " << c << " result checksum";
  }
  expect_counters_equal(original.dm.counters(), restored.dm.counters());
  EXPECT_EQ(original.dm.instruction_diff(), restored.dm.instruction_diff());
  EXPECT_EQ(original.dm.interrupt_pending(), restored.dm.interrupt_pending());
}

TEST(SnapshotRoundtrip, WorkloadsAreForwardBitIdenticalFromRandomCycles) {
  Xoshiro256 rng(2024);
  for (const char* name : {"bitcount", "quicksort", "md5"}) {
    const Program program = workloads::build(name, 1);
    // One early, one mid-run split per workload.
    check_roundtrip(program, rng.range(1, 400));
    check_roundtrip(program, rng.range(5'000, 40'000));
  }
}

// ---- random-program corner of the property ---------------------------------

namespace e = isa::enc;
using namespace assembler;

/// Straight-line generator following the workload conventions (a0 = data
/// base, checksum published at kResultOffset, clean ecall) — same shape as
/// the faultsim property generator, reused here to hit register/memory
/// mixes the curated workloads don't.
Program random_program(u64 seed) {
  Xoshiro256 rng(seed);
  Assembler a;
  DataBuilder d;
  std::vector<u64> blob(64);
  for (auto& w : blob) w = rng.next();
  d.add_u64_array(blob);

  constexpr Reg kPool[] = {T0, T1, T2, S1, S2, S3, A1, A2};
  constexpr unsigned kPoolSize = sizeof(kPool) / sizeof(kPool[0]);
  const auto pick = [&] { return kPool[rng.below(kPoolSize)]; };
  for (Reg r : kPool) a.li(r, static_cast<i64>(rng.next() & 0xFFFF));

  const unsigned ops = 40 + static_cast<unsigned>(rng.below(60));
  for (unsigned i = 0; i < ops; ++i) {
    const Reg rd = pick(), rs1 = pick(), rs2 = pick();
    switch (rng.below(8)) {
      case 0: a(e::add(rd, rs1, rs2)); break;
      case 1: a(e::sub(rd, rs1, rs2)); break;
      case 2: a(e::xor_(rd, rs1, rs2)); break;
      case 3: a(e::or_(rd, rs1, rs2)); break;
      case 4: a(e::and_(rd, rs1, rs2)); break;
      case 5: a(e::mul(rd, rs1, rs2)); break;
      case 6: a(e::ld(rd, A0, static_cast<i64>(rng.below(64) * 8))); break;
      default: a(e::sltu(rd, rs1, rs2)); break;
    }
  }
  a.mv(T6, ZERO);
  for (Reg r : kPool) a(e::xor_(T6, T6, r));
  a(e::sd(T6, A0, workloads::kResultOffset));
  a(e::ecall());
  return a.assemble("random", std::move(d));
}

TEST(SnapshotRoundtrip, RandomProgramsAreForwardBitIdentical) {
  Xoshiro256 rng(7);
  for (u64 p = 0; p < 5; ++p) {
    const Program program = random_program(4000 + p);
    // Probe the run length so splits land strictly inside it.
    Rig probe;
    probe.load(program);
    while (!probe.soc.all_halted() && probe.soc.cycle() < kBudget) probe.soc.step();
    ASSERT_TRUE(probe.soc.all_halted());
    check_roundtrip(program, rng.range(1, probe.soc.cycle() - 1));
  }
}

// ---- snapshot-level rejection paths -----------------------------------------

TEST(SnapshotRoundtrip, TruncatedStreamIsRejected) {
  Rig rig;
  rig.load(workloads::build("bitcount", 1));
  for (int i = 0; i < 500; ++i) rig.soc.step();
  const std::vector<u8> bytes = rig.save();

  for (const std::size_t keep : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<u8> cut(bytes.begin(), bytes.begin() + static_cast<long>(keep));
    Rig victim;
    EXPECT_THROW(victim.restore(cut), StateError) << "kept " << keep << " bytes";
  }
}

TEST(SnapshotRoundtrip, CorruptedSectionVersionIsRejected) {
  Rig rig;
  rig.load(workloads::build("bitcount", 1));
  for (int i = 0; i < 500; ++i) rig.soc.step();
  std::vector<u8> bytes = rig.save();
  // Byte 12 is the first byte of the outermost section's u32 version
  // (after the 8-byte magic and 4-byte tag).
  bytes[12] ^= 0x55;
  Rig victim;
  EXPECT_THROW(victim.restore(bytes), StateError);
}

TEST(SnapshotRoundtrip, ConfigFingerprintMismatchIsRejected) {
  soc::MpSoc small(soc::SocConfig{});
  small.load_redundant(workloads::build("bitcount", 1));
  for (int i = 0; i < 500; ++i) small.step();
  const Snapshot snap = small.snapshot();

  soc::SocConfig quad;
  quad.num_cores = 4;
  soc::MpSoc other(quad);
  EXPECT_THROW(other.restore(snap), StateError);
}

TEST(SnapshotRoundtrip, SnapshotRestoreRewindsTheSameInstance) {
  const Program program = workloads::build("bitcount", 1);
  Rig rig;
  rig.load(program);
  for (int i = 0; i < 2'000; ++i) rig.soc.step();
  const Snapshot snap = rig.soc.snapshot();
  const std::vector<u8> monitor_bytes = [&] {
    StateWriter w;
    rig.dm.save_state(w);
    return w.take();
  }();

  // Run to completion once, remember the observables...
  while (!rig.soc.all_halted() && rig.soc.cycle() < kBudget) rig.soc.step();
  const u64 end_cycle = rig.soc.cycle();
  const u64 result0 = rig.result(0);
  const u64 nodiv = rig.dm.counters().nodiv_cycles;

  // ...rewind the same instance, run again, and expect the same end state.
  rig.soc.restore(snap);
  {
    StateReader r(monitor_bytes);
    rig.dm.restore_state(r);
  }
  EXPECT_EQ(rig.soc.cycle(), 2'000u);
  while (!rig.soc.all_halted() && rig.soc.cycle() < kBudget) rig.soc.step();
  EXPECT_EQ(rig.soc.cycle(), end_cycle);
  EXPECT_EQ(rig.result(0), result0);
  EXPECT_EQ(rig.dm.counters().nodiv_cycles, nodiv);
}

}  // namespace
}  // namespace safedm
