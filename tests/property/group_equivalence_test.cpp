// Property tests for the N-replica group monitor:
//
//   1. A 2-replica monitor driven through the *group* hooks
//      (on_group_cycle / on_group_cycles) is bit-identical to the legacy
//      pairwise delivery across the full batched-equivalence sweep (48
//      scenarios: depths x ports x compare x IS modes) — verdict trail,
//      counters, and serialized state bytes.
//
//   2. For N > 2, batched group delivery (on_group_cycles, chunked at
//      random boundaries) matches per-cycle on_group_cycle delivery
//      exactly: group counters, every pairwise matrix cell, per-pair
//      staggering, and snapshot bytes — including a monitor restored from
//      a mid-stream snapshot finishing the stream identically.
//
//   3. Verdict-policy lowering identities: quorum(1) == any_pair and
//      quorum(C(n,2)) == all_pairs produce byte-identical monitors, and
//      group nodiv is monotonically non-increasing in the quorum k.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "safedm/common/check.hpp"
#include "safedm/common/rng.hpp"
#include "safedm/common/state.hpp"
#include "safedm/safedm/monitor.hpp"

namespace safedm::monitor {
namespace {

struct Scenario {
  unsigned depth;
  unsigned ports;
  CompareMode compare;
  IsMode is_mode;
  u64 seed;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  return "n" + std::to_string(s.depth) + "_m" + std::to_string(s.ports) +
         (s.compare == CompareMode::kCrc32 ? "_crc" : "_raw") +
         (s.is_mode == IsMode::kFlatList ? "_flat" : "_perstage") + "_s" +
         std::to_string(s.seed);
}

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> scenarios;
  u64 seed = 1;
  for (unsigned depth : {4u, 8u, 64u, 128u})
    for (unsigned ports : {1u, 2u, 3u})
      for (CompareMode compare : {CompareMode::kRaw, CompareMode::kCrc32})
        for (IsMode is_mode : {IsMode::kPerStage, IsMode::kFlatList})
          scenarios.push_back(Scenario{depth, ports, compare, is_mode, seed++});
  return scenarios;
}

core::CoreTapFrame small_frame(Xoshiro256& rng) {
  core::CoreTapFrame f;
  for (unsigned s = 0; s < core::kPipelineStages; ++s)
    for (unsigned l = 0; l < core::kMaxIssueWidth; ++l)
      f.stage[s][l] = core::StageSlotTap{rng.chance(0.7), static_cast<u32>(rng.below(3))};
  for (unsigned p = 0; p < core::kMaxPorts; ++p)
    f.port[p] = core::PortTap{rng.chance(0.5), rng.below(2)};
  f.commits = static_cast<unsigned>(rng.below(3));
  return f;
}

/// Per-replica frame streams with a phase schedule that covers lockstep,
/// single-replica value divergence, and independent holds (mid-chunk
/// realignment on every pair).
struct GroupStreams {
  std::vector<std::vector<core::CoreTapFrame>> replica;  // [r][cycle]

  std::vector<const core::CoreTapFrame*> bases() const {
    std::vector<const core::CoreTapFrame*> p;
    for (const auto& lane : replica) p.push_back(lane.data());
    return p;
  }
};

GroupStreams scripted_group_streams(unsigned n, u64 seed, unsigned cycles) {
  Xoshiro256 rng(seed);
  GroupStreams s;
  s.replica.resize(n);
  for (auto& lane : s.replica) lane.reserve(cycles);
  for (unsigned cycle = 0; cycle < cycles; ++cycle) {
    const unsigned phase = (cycle / 400) % 4;
    const core::CoreTapFrame base = small_frame(rng);
    for (unsigned r = 0; r < n; ++r) {
      core::CoreTapFrame f = base;
      switch (phase) {
        case 0:
        case 3:
          f.hold = (cycle % 97) < 5;  // deterministic common hold
          break;
        case 1:
          f.hold = (cycle % 53) < 4;
          if (r != 0 && rng.chance(0.4)) f = small_frame(rng);  // diverge tail
          break;
        case 2:
          f.hold = rng.chance(0.3);  // independent: de-aligns every pair
          if (rng.chance(0.2)) f = small_frame(rng);
          break;
      }
      s.replica[r].push_back(f);
    }
  }
  return s;
}

std::vector<u8> monitor_bytes(const SafeDm& dm) {
  StateWriter w;
  dm.save_state(w);
  return std::move(w).take();
}

SafeDmConfig group_config(unsigned n) {
  SafeDmConfig config;
  config.num_replicas = n;
  config.data_fifo_depth = 4;
  config.num_ports = 3;
  config.start_enabled = true;
  return config;
}

void expect_same_matrix(const SafeDm& a, const SafeDm& b) {
  ASSERT_EQ(a.num_pairs(), b.num_pairs());
  for (unsigned p = 0; p < a.num_pairs(); ++p) {
    const PairCounters pa = a.pair_counters(p);
    const PairCounters pb = b.pair_counters(p);
    EXPECT_EQ(pa.nodiv_cycles, pb.nodiv_cycles) << "pair " << p;
    EXPECT_EQ(pa.ds_match_cycles, pb.ds_match_cycles) << "pair " << p;
    EXPECT_EQ(pa.is_match_cycles, pb.is_match_cycles) << "pair " << p;
    EXPECT_EQ(pa.zero_stag_cycles, pb.zero_stag_cycles) << "pair " << p;
    EXPECT_EQ(pa.distance_min, pb.distance_min) << "pair " << p;
    EXPECT_EQ(pa.distance_max, pb.distance_max) << "pair " << p;
  }
}

// ---- 1. N=2 group hooks == legacy pairwise delivery ------------------------

class GroupPairEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(GroupPairEquivalence, GroupHooksMatchLegacyPairwiseDelivery) {
  const Scenario& scenario = GetParam();
  SafeDmConfig config;
  config.num_replicas = 2;
  config.data_fifo_depth = scenario.depth;
  config.num_ports = scenario.ports;
  config.compare = scenario.compare;
  config.is_mode = scenario.is_mode;
  config.start_enabled = true;

  constexpr unsigned kCycles = 2000;
  const GroupStreams s =
      scripted_group_streams(2, scenario.seed * 0x9E3779B97F4A7C15ULL + 7, kCycles);

  SafeDm ref(config);  // legacy pairwise delivery
  SafeDm grp(config);  // group hooks, random chunk sizes
  std::vector<bool> ref_trail, grp_trail;
  ref.set_verdict_trail(&ref_trail);
  grp.set_verdict_trail(&grp_trail);
  for (unsigned c = 0; c < kCycles; ++c) ref.on_cycle(c, s.replica[0][c], s.replica[1][c]);

  Xoshiro256 chunk_rng(scenario.seed ^ 0x6B0);
  const std::vector<const core::CoreTapFrame*> bases = s.bases();
  unsigned delivered = 0;
  while (delivered < kCycles) {
    const unsigned n =
        std::min(static_cast<unsigned>(chunk_rng.range(1, 80)), kCycles - delivered);
    if (n == 1 && chunk_rng.chance(0.5)) {
      const core::CoreTapFrame* frames[2] = {&s.replica[0][delivered],
                                             &s.replica[1][delivered]};
      grp.on_group_cycle(delivered, frames, 2);
    } else {
      const core::CoreTapFrame* frames[2] = {bases[0] + delivered, bases[1] + delivered};
      grp.on_group_cycles(delivered, frames, 2, n);
    }
    delivered += n;
  }
  ref.set_verdict_trail(nullptr);
  grp.set_verdict_trail(nullptr);

  EXPECT_EQ(ref_trail, grp_trail);
  EXPECT_EQ(ref.counters().nodiv_cycles, grp.counters().nodiv_cycles);
  EXPECT_EQ(ref.counters().zero_stag_cycles, grp.counters().zero_stag_cycles);
  EXPECT_EQ(ref.instruction_diff(), grp.instruction_diff());
  EXPECT_EQ(monitor_bytes(ref), monitor_bytes(grp));

  // The single pair *is* the group: its synthesized matrix cell must equal
  // the group counters.
  const PairCounters pc = grp.pair_counters(0);
  EXPECT_EQ(pc.nodiv_cycles, grp.counters().nodiv_cycles);
  EXPECT_EQ(pc.ds_match_cycles, grp.counters().ds_match_cycles);
  EXPECT_EQ(pc.is_match_cycles, grp.counters().is_match_cycles);
  EXPECT_EQ(pc.zero_stag_cycles, grp.counters().zero_stag_cycles);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupPairEquivalence, ::testing::ValuesIn(make_scenarios()),
                         scenario_name);

// ---- 2. N>2: batched group delivery == per-cycle group delivery ------------

struct GroupCase {
  unsigned replicas;
  CompareMode compare;
  bool track_distance;
  u64 seed;
};

std::string group_case_name(const ::testing::TestParamInfo<GroupCase>& info) {
  const GroupCase& c = info.param;
  return "r" + std::to_string(c.replicas) +
         (c.compare == CompareMode::kCrc32 ? "_crc" : "_raw") +
         (c.track_distance ? "_dist" : "") + "_s" + std::to_string(c.seed);
}

std::vector<GroupCase> make_group_cases() {
  std::vector<GroupCase> cases;
  u64 seed = 11;
  for (unsigned replicas : {3u, 4u, 5u})
    for (CompareMode compare : {CompareMode::kRaw, CompareMode::kCrc32})
      for (bool track : {false, true})
        cases.push_back(GroupCase{replicas, compare, track, seed++});
  return cases;
}

class GroupBatchedEquivalence : public ::testing::TestWithParam<GroupCase> {};

TEST_P(GroupBatchedEquivalence, MatrixCountersAndStateMatchPerCycleDelivery) {
  const GroupCase& gcase = GetParam();
  SafeDmConfig config = group_config(gcase.replicas);
  config.compare = gcase.compare;
  config.track_distance = gcase.track_distance;

  const unsigned n = gcase.replicas;
  constexpr unsigned kCycles = 2000;
  constexpr unsigned kSnapshotCycle = 900;
  const GroupStreams s = scripted_group_streams(n, gcase.seed * 0xD1B54A32D192ED03ULL, kCycles);
  const std::vector<const core::CoreTapFrame*> bases = s.bases();

  SafeDm ref(config);  // per-cycle group delivery
  SafeDm bat(config);  // batched, random chunk sizes
  std::vector<bool> ref_trail, bat_trail;
  ref.set_verdict_trail(&ref_trail);
  bat.set_verdict_trail(&bat_trail);
  for (unsigned c = 0; c < kCycles; ++c) {
    std::vector<const core::CoreTapFrame*> frames;
    for (unsigned r = 0; r < n; ++r) frames.push_back(&s.replica[r][c]);
    ref.on_group_cycle(c, frames.data(), n);
  }

  SafeDm restored(config);  // picks up from bat's mid-stream snapshot
  bool restored_active = false;
  Xoshiro256 chunk_rng(gcase.seed ^ 0x9A0B);
  unsigned delivered = 0;
  std::vector<const core::CoreTapFrame*> frames(n);
  while (delivered < kCycles) {
    unsigned m = static_cast<unsigned>(
        chunk_rng.chance(0.1) ? chunk_rng.range(65, 100) : chunk_rng.range(1, 32));
    if (delivered < kSnapshotCycle) m = std::min(m, kSnapshotCycle - delivered);
    m = std::min(m, kCycles - delivered);
    for (unsigned r = 0; r < n; ++r) frames[r] = bases[r] + delivered;
    bat.on_group_cycles(delivered, frames.data(), n, m);
    if (restored_active) restored.on_group_cycles(delivered, frames.data(), n, m);
    delivered += m;

    if (delivered == kSnapshotCycle && !restored_active) {
      const std::vector<u8> mid = monitor_bytes(bat);
      StateReader r(mid);
      restored.restore_state(r);
      restored_active = true;
    }
  }
  ref.set_verdict_trail(nullptr);
  bat.set_verdict_trail(nullptr);

  ASSERT_EQ(ref_trail.size(), bat_trail.size());
  for (std::size_t i = 0; i < ref_trail.size(); ++i)
    ASSERT_EQ(ref_trail[i], bat_trail[i]) << "cycle " << i;

  const auto& cr = ref.counters();
  const auto& cb = bat.counters();
  EXPECT_EQ(cr.monitored_cycles, cb.monitored_cycles);
  EXPECT_EQ(cr.nodiv_cycles, cb.nodiv_cycles);
  EXPECT_EQ(cr.ds_match_cycles, cb.ds_match_cycles);
  EXPECT_EQ(cr.is_match_cycles, cb.is_match_cycles);
  EXPECT_EQ(cr.zero_stag_cycles, cb.zero_stag_cycles);
  EXPECT_EQ(cr.distance_min, cb.distance_min);
  EXPECT_EQ(cr.distance_max, cb.distance_max);
  expect_same_matrix(ref, bat);
  EXPECT_EQ(ref.instruction_diff(), bat.instruction_diff());

  const std::vector<u8> want = monitor_bytes(ref);
  EXPECT_EQ(want, monitor_bytes(bat));
  EXPECT_EQ(want, monitor_bytes(restored));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupBatchedEquivalence,
                         ::testing::ValuesIn(make_group_cases()), group_case_name);

// ---- 3. verdict-policy lowering identities ---------------------------------

void pump_group(SafeDm& dm, const GroupStreams& s, unsigned n, unsigned cycles) {
  const std::vector<const core::CoreTapFrame*> bases = s.bases();
  std::vector<const core::CoreTapFrame*> frames(n);
  for (unsigned at = 0; at < cycles; at += 37) {
    const unsigned m = std::min(37u, cycles - at);
    for (unsigned r = 0; r < n; ++r) frames[r] = bases[r] + at;
    dm.on_group_cycles(at, frames.data(), n, m);
  }
}

TEST(GroupVerdictPolicy, QuorumOneEqualsAnyPairExactly) {
  for (const unsigned n : {3u, 4u, 8u}) {
    constexpr unsigned kCycles = 1500;
    const GroupStreams s = scripted_group_streams(n, 0xA11 + n, kCycles);

    SafeDmConfig any = group_config(n);
    any.policy = VerdictPolicy::kAnyPair;
    SafeDmConfig quorum = group_config(n);
    quorum.policy = VerdictPolicy::kQuorum;
    quorum.quorum_k = 1;

    SafeDm dm_any(any), dm_quorum(quorum);
    pump_group(dm_any, s, n, kCycles);
    pump_group(dm_quorum, s, n, kCycles);
    EXPECT_EQ(dm_any.verdict_threshold(), dm_quorum.verdict_threshold()) << "n=" << n;
    EXPECT_EQ(monitor_bytes(dm_any), monitor_bytes(dm_quorum)) << "n=" << n;
  }
}

TEST(GroupVerdictPolicy, QuorumAllPairsEqualsAllPairsExactly) {
  for (const unsigned n : {3u, 4u, 8u}) {
    const unsigned n_pairs = n * (n - 1) / 2;
    constexpr unsigned kCycles = 1500;
    const GroupStreams s = scripted_group_streams(n, 0xA22 + n, kCycles);

    SafeDmConfig all = group_config(n);
    all.policy = VerdictPolicy::kAllPairs;
    SafeDmConfig quorum = group_config(n);
    quorum.policy = VerdictPolicy::kQuorum;
    quorum.quorum_k = n_pairs;

    SafeDm dm_all(all), dm_quorum(quorum);
    pump_group(dm_all, s, n, kCycles);
    pump_group(dm_quorum, s, n, kCycles);
    EXPECT_EQ(dm_all.verdict_threshold(), n_pairs) << "n=" << n;
    EXPECT_EQ(monitor_bytes(dm_all), monitor_bytes(dm_quorum)) << "n=" << n;
  }
}

TEST(GroupVerdictPolicy, GroupNodivMonotonicallyNonIncreasingInQuorumK) {
  const unsigned n = 4;
  const unsigned n_pairs = n * (n - 1) / 2;
  constexpr unsigned kCycles = 1500;
  const GroupStreams s = scripted_group_streams(n, 0xA33, kCycles);

  u64 previous = ~u64{0};
  for (unsigned k = 1; k <= n_pairs; ++k) {
    SafeDmConfig config = group_config(n);
    config.policy = VerdictPolicy::kQuorum;
    config.quorum_k = k;
    SafeDm dm(config);
    pump_group(dm, s, n, kCycles);
    EXPECT_LE(dm.counters().nodiv_cycles, previous) << "k=" << k;
    previous = dm.counters().nodiv_cycles;
  }
}

// Constructor contract: replica counts and quorum bounds are validated.
TEST(GroupVerdictPolicy, RejectsInvalidShapes) {
  SafeDmConfig config = group_config(1);
  EXPECT_THROW(SafeDm{config}, CheckError);
  config = group_config(9);
  EXPECT_THROW(SafeDm{config}, CheckError);
  config = group_config(3);
  config.policy = VerdictPolicy::kQuorum;
  config.quorum_k = 0;
  EXPECT_THROW(SafeDm{config}, CheckError);
  config.quorum_k = 4;  // C(3,2) == 3
  EXPECT_THROW(SafeDm{config}, CheckError);
  config.quorum_k = 3;
  EXPECT_NO_THROW(SafeDm{config});
}

}  // namespace
}  // namespace safedm::monitor
