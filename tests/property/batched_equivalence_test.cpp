// Property test: SafeDm::on_cycles (the chunked batched fast path) is
// bit-identical to per-cycle on_cycle delivery — same verdict trail, same
// counters, same IRQ timing, and byte-identical serialized state — no
// matter where the batch boundaries fall, which compare kernel runs, or
// whether a snapshot/restore lands mid-stream. Scenarios sweep compare
// modes, IS modes, port counts 1-3, and depths {4, 8, 64, 128}; depths
// beyond 64 and CRC/flat-list modes exercise on_cycles' per-cycle
// fallback, which must be just as boundary-independent as the fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "safedm/common/rng.hpp"
#include "safedm/common/state.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/safedm/simd.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::monitor {
namespace {

struct Scenario {
  unsigned depth;
  unsigned ports;
  CompareMode compare;
  IsMode is_mode;
  u64 seed;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  return "n" + std::to_string(s.depth) + "_m" + std::to_string(s.ports) +
         (s.compare == CompareMode::kCrc32 ? "_crc" : "_raw") +
         (s.is_mode == IsMode::kFlatList ? "_flat" : "_perstage") + "_s" +
         std::to_string(s.seed);
}

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> scenarios;
  u64 seed = 1;
  for (unsigned depth : {4u, 8u, 64u, 128u})
    for (unsigned ports : {1u, 2u, 3u})
      for (CompareMode compare : {CompareMode::kRaw, CompareMode::kCrc32})
        for (IsMode is_mode : {IsMode::kPerStage, IsMode::kFlatList})
          scenarios.push_back(Scenario{depth, ports, compare, is_mode, seed++});
  return scenarios;
}

SafeDmConfig scenario_config(const Scenario& s) {
  SafeDmConfig config;
  config.data_fifo_depth = s.depth;
  config.num_ports = s.ports;
  config.compare = s.compare;
  config.is_mode = s.is_mode;
  config.start_enabled = true;
  config.arm_on_first_commit = true;
  return config;
}

core::CoreTapFrame small_frame(Xoshiro256& rng) {
  core::CoreTapFrame f;
  for (unsigned s = 0; s < core::kPipelineStages; ++s)
    for (unsigned l = 0; l < core::kMaxIssueWidth; ++l)
      f.stage[s][l] = core::StageSlotTap{rng.chance(0.7), static_cast<u32>(rng.below(3))};
  for (unsigned p = 0; p < core::kMaxPorts; ++p)
    f.port[p] = core::PortTap{rng.chance(0.5), rng.below(2)};
  f.commits = static_cast<unsigned>(rng.below(3));
  return f;
}

/// The comparator-equivalence phase schedule: lockstep, value-divergent,
/// independently held (realignment mid-chunk), lockstep again.
std::pair<core::CoreTapFrame, core::CoreTapFrame> scripted_pair(Xoshiro256& rng,
                                                               unsigned cycle) {
  const unsigned phase = (cycle / 500) % 4;
  core::CoreTapFrame f0 = small_frame(rng);
  core::CoreTapFrame f1 = f0;
  switch (phase) {
    case 0:
    case 3:
      f0.hold = f1.hold = rng.chance(0.2);
      break;
    case 1:
      f0.hold = f1.hold = rng.chance(0.2);
      if (rng.chance(0.5)) f1 = small_frame(rng);
      break;
    case 2:
      f0.hold = rng.chance(0.3);
      f1.hold = rng.chance(0.3);  // independent: forces mid-chunk realigns
      if (rng.chance(0.2)) f1 = small_frame(rng);
      break;
  }
  return {f0, f1};
}

/// Frame streams for both cores, pre-generated so batched and per-cycle
/// monitors consume the exact same cycles.
struct Streams {
  std::vector<core::CoreTapFrame> f0;
  std::vector<core::CoreTapFrame> f1;
};

Streams scripted_streams(u64 seed, unsigned cycles) {
  Xoshiro256 rng(seed);
  Streams s;
  s.f0.reserve(cycles);
  s.f1.reserve(cycles);
  for (unsigned cycle = 0; cycle < cycles; ++cycle) {
    auto [f0, f1] = scripted_pair(rng, cycle);
    s.f0.push_back(f0);
    s.f1.push_back(f1);
  }
  return s;
}

std::vector<u8> monitor_bytes(const SafeDm& dm) {
  StateWriter w;
  dm.save_state(w);
  return std::move(w).take();
}

class BatchedEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(BatchedEquivalence, TrailCountersAndStateMatchPerCycleDelivery) {
  const Scenario& scenario = GetParam();
  const SafeDmConfig config = scenario_config(scenario);

  constexpr unsigned kCycles = 3000;
  constexpr unsigned kSnapshotCycle = 1500;
  const Streams s = scripted_streams(scenario.seed * 0x9E3779B97F4A7C15ULL + 99, kCycles);

  SafeDm ref(config);  // per-cycle reference
  SafeDm bat(config);  // batched, random chunk sizes
  std::vector<bool> ref_trail, bat_trail;
  ref.set_verdict_trail(&ref_trail);
  bat.set_verdict_trail(&bat_trail);
  for (unsigned cycle = 0; cycle < kCycles; ++cycle)
    ref.on_cycle(cycle, s.f0[cycle], s.f1[cycle]);

  // Deliver the identical stream to `bat` in randomly sized batches
  // (occasionally longer than the 64-cycle internal chunk), checking the
  // trail after every delivery. Chunk edges align with kSnapshotCycle once
  // so both monitors can be serialized at the same mid-stream point.
  SafeDm restored(config);  // picks up from bat's mid-stream snapshot
  bool restored_active = false;
  Xoshiro256 chunk_rng(scenario.seed ^ 0xBA7C4);
  unsigned delivered = 0;
  while (delivered < kCycles) {
    unsigned n = static_cast<unsigned>(
        chunk_rng.chance(0.1) ? chunk_rng.range(65, 100) : chunk_rng.range(1, 32));
    if (delivered < kSnapshotCycle) n = std::min(n, kSnapshotCycle - delivered);
    n = std::min(n, kCycles - delivered);
    bat.on_cycles(delivered, &s.f0[delivered], &s.f1[delivered], n);
    if (restored_active) restored.on_cycles(delivered, &s.f0[delivered], &s.f1[delivered], n);
    delivered += n;

    ASSERT_EQ(bat_trail.size(), delivered);
    for (std::size_t i = delivered - n; i < delivered; ++i)
      ASSERT_EQ(bat_trail[i], ref_trail[i]) << "cycle " << i;

    if (delivered == kSnapshotCycle && !restored_active) {
      // Mid-stream snapshot: the batched monitor's bytes must already be
      // indistinguishable from per-cycle delivery, and a monitor restored
      // from them must finish the stream identically.
      const std::vector<u8> mid = monitor_bytes(bat);
      SafeDm mid_ref(config);
      for (unsigned c = 0; c < kSnapshotCycle; ++c)
        mid_ref.on_cycle(c, s.f0[c], s.f1[c]);
      ASSERT_EQ(mid, monitor_bytes(mid_ref));
      StateReader r(mid);
      restored.restore_state(r);
      restored_active = true;
    }
  }

  ref.set_verdict_trail(nullptr);
  bat.set_verdict_trail(nullptr);

  const auto& cr = ref.counters();
  const auto& cb = bat.counters();
  EXPECT_EQ(cr.monitored_cycles, cb.monitored_cycles);
  EXPECT_EQ(cr.nodiv_cycles, cb.nodiv_cycles);
  EXPECT_EQ(cr.ds_match_cycles, cb.ds_match_cycles);
  EXPECT_EQ(cr.is_match_cycles, cb.is_match_cycles);
  EXPECT_EQ(cr.zero_stag_cycles, cb.zero_stag_cycles);
  EXPECT_EQ(ref.instruction_diff(), bat.instruction_diff());

  const std::vector<u8> want = monitor_bytes(ref);
  EXPECT_EQ(want, monitor_bytes(bat));
  EXPECT_EQ(want, monitor_bytes(restored));

  // The eligible configurations must actually have taken the chunked fast
  // path (fast-path steps dominate once armed), not fallen back silently.
  if (config.compare == CompareMode::kRaw && config.is_mode == IsMode::kPerStage &&
      config.data_fifo_depth <= 64) {
    EXPECT_GT(bat.comparator_stats().fast_updates, 1000u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchedEquivalence, ::testing::ValuesIn(make_scenarios()),
                         scenario_name);

// Every compare kernel the host supports must produce byte-identical
// monitor state, batched and per-cycle alike.
TEST(BatchedKernelSweep, AllSupportedKernelsProduceIdenticalState) {
  SafeDmConfig config;
  config.data_fifo_depth = 4;
  config.num_ports = 3;
  config.start_enabled = true;

  constexpr unsigned kCycles = 2000;
  const Streams s = scripted_streams(0x5EED'00C0, kCycles);

  const simd::Kernel previous = simd::active_kernel();
  std::vector<u8> want;
  for (simd::Kernel kernel :
       {simd::Kernel::kPortable, simd::Kernel::kSse2, simd::Kernel::kAvx2}) {
    if (!simd::kernel_supported(kernel)) continue;
    ASSERT_EQ(simd::force_kernel(kernel), kernel);

    SafeDm ref(config);
    SafeDm bat(config);
    for (unsigned c = 0; c < kCycles; ++c) ref.on_cycle(c, s.f0[c], s.f1[c]);
    for (unsigned at = 0; at < kCycles; at += 17)
      bat.on_cycles(at, &s.f0[at], &s.f1[at], std::min(17u, kCycles - at));

    const std::vector<u8> ref_bytes = monitor_bytes(ref);
    EXPECT_EQ(ref_bytes, monitor_bytes(bat)) << simd::kernel_name(kernel);
    if (want.empty()) want = ref_bytes;
    EXPECT_EQ(want, ref_bytes) << simd::kernel_name(kernel) << " vs first kernel";
  }
  simd::force_kernel(previous);
}

// IRQ timing: interrupts must fire at the exact same cycles (observed
// through the handler) under batched delivery, in both interrupt report
// modes. Both monitors advance in lockstep chunk-by-chunk; a pending IRQ
// is cleared on both at the chunk boundary so several interrupts fire.
TEST(BatchedIrqTiming, HandlerSeesIdenticalCycles) {
  for (const ReportMode report : {ReportMode::kInterruptFirst, ReportMode::kInterruptThreshold}) {
    SafeDmConfig config;
    config.data_fifo_depth = 4;
    config.num_ports = 3;
    config.start_enabled = true;
    config.report = report;
    config.interrupt_threshold = 50;

    constexpr unsigned kCycles = 3000;
    const Streams s = scripted_streams(0x12C0 + static_cast<u64>(report), kCycles);

    SafeDm ref(config);
    SafeDm bat(config);
    std::vector<u64> ref_irqs, bat_irqs;
    ref.set_interrupt_handler([&](u64 cycle) { ref_irqs.push_back(cycle); });
    bat.set_interrupt_handler([&](u64 cycle) { bat_irqs.push_back(cycle); });

    Xoshiro256 chunk_rng(0xC41C);
    unsigned delivered = 0;
    while (delivered < kCycles) {
      const unsigned n =
          std::min(static_cast<unsigned>(chunk_rng.range(1, 32)), kCycles - delivered);
      for (unsigned c = delivered; c < delivered + n; ++c) ref.on_cycle(c, s.f0[c], s.f1[c]);
      bat.on_cycles(delivered, &s.f0[delivered], &s.f1[delivered], n);
      delivered += n;

      ASSERT_EQ(ref.interrupt_pending(), bat.interrupt_pending()) << "at cycle " << delivered;
      if (ref.interrupt_pending()) {
        ref.clear_interrupt();
        bat.clear_interrupt();
      }
    }
    EXPECT_EQ(ref_irqs, bat_irqs) << "report mode " << static_cast<int>(report);
    EXPECT_GT(ref_irqs.size(), 1u) << "schedule should re-fire after clears";
    EXPECT_EQ(ref.counters().interrupts, bat.counters().interrupts);
    EXPECT_EQ(monitor_bytes(ref), monitor_bytes(bat));
  }
}

// SoC-level equivalence on a real workload: observer_batch 8 must leave
// the monitor and the SoC snapshot bytes identical to per-cycle delivery,
// including a snapshot taken mid-batch (auto-flush) and a third rig
// restored from it.
TEST(SocObserverBatch, SnapshotAndFinalStateMatchPerCycleDelivery) {
  soc::SocConfig cfg1;
  soc::SocConfig cfg8;
  cfg8.observer_batch = 8;
  SafeDmConfig dmc;
  dmc.start_enabled = true;

  soc::MpSoc soc1{cfg1};
  soc::MpSoc soc8{cfg8};
  SafeDm dm1(dmc);
  SafeDm dm8(dmc);
  soc1.add_observer(&dm1);
  soc8.add_observer(&dm8);

  const assembler::Program program = workloads::build("bitcount", 1);
  soc1.load_redundant(program);
  soc8.load_redundant(program);

  // 1003 steps: soc8 has pending undelivered cycles (1003 % 8 != 0), so
  // this snapshot exercises the mid-batch auto-flush.
  for (int i = 0; i < 1003; ++i) {
    soc1.step();
    soc8.step();
  }
  StateWriter w1;
  soc1.save_state(w1);
  dm1.save_state(w1);
  const std::vector<u8> mid = std::move(w1).take();
  StateWriter w8;
  soc8.save_state(w8);
  dm8.save_state(w8);
  ASSERT_EQ(mid, std::move(w8).take());

  // Restore a fresh batched rig from the per-cycle rig's mid-run bytes.
  soc::MpSoc socr{cfg8};
  SafeDm dmr(dmc);
  socr.add_observer(&dmr);
  socr.load_redundant(program);
  {
    StateReader r(mid);
    socr.restore_state(r);
    dmr.restore_state(r);
  }

  soc1.run(30'000'000);
  soc8.run(30'000'000);
  socr.run(30'000'000);
  ASSERT_TRUE(soc1.all_halted());
  ASSERT_TRUE(soc8.all_halted());
  ASSERT_TRUE(socr.all_halted());
  ASSERT_EQ(soc1.cycle(), soc8.cycle());
  ASSERT_EQ(soc1.cycle(), socr.cycle());

  EXPECT_EQ(dm1.counters().monitored_cycles, dm8.counters().monitored_cycles);
  EXPECT_EQ(dm1.counters().nodiv_cycles, dm8.counters().nodiv_cycles);

  const auto rig_bytes = [](const soc::MpSoc& soc, const SafeDm& dm) {
    StateWriter w;
    soc.save_state(w);
    dm.save_state(w);
    return std::move(w).take();
  };
  const std::vector<u8> want = rig_bytes(soc1, dm1);
  EXPECT_EQ(want, rig_bytes(soc8, dm8));
  EXPECT_EQ(want, rig_bytes(socr, dmr));
}

}  // namespace
}  // namespace safedm::monitor
