// Property fuzzing: pipeline-vs-ISS architectural equivalence over
// randomized programs.
//
// A generator builds random but well-formed RV64IMD programs (bounded
// loops, in-segment memory accesses, recursion-free control flow) and both
// executors must agree on every architectural register, the data segment,
// and the retired-instruction count. This is the strongest guard against
// pipeline-model bugs (hazards, flushes, store buffering) silently
// corrupting the experiments.
#include <gtest/gtest.h>

#include "safedm/assembler/assembler.hpp"
#include "safedm/bus/ahb.hpp"
#include "safedm/bus/l2_frontend.hpp"
#include "safedm/common/rng.hpp"
#include "safedm/core/core.hpp"
#include "safedm/isa/iss.hpp"
#include "safedm/mem/phys_mem.hpp"

namespace safedm {
namespace {

using namespace assembler;
namespace e = isa::enc;

constexpr u64 kTextBase = 0x10000;
constexpr u64 kDataBase = 0x100000;
constexpr u64 kDataBytes = 0x1000;  // all generated accesses stay inside

/// Registers the generator may freely clobber (avoids x0, sp, a0, scratch).
constexpr Reg kPool[] = {T0, T1, T2, S1, S2, S3, S4, S5, A1, A2, A3, T3, T4, T5};
constexpr unsigned kPoolSize = sizeof(kPool) / sizeof(kPool[0]);

class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(u64 seed) : rng_(seed) {}

  Program generate() {
    Assembler a;
    DataBuilder d;
    // Pre-seeded data segment the program can load from.
    std::vector<u64> blob(kDataBytes / 8);
    for (auto& w : blob) w = rng_.next();
    d.add_u64_array(blob);

    // Base pointer for memory ops; kept in S0 (never clobbered below).
    a.mv(S0, A0);
    // Give the register pool defined values.
    for (Reg r : kPool) a.li(r, static_cast<i64>(rng_.next() & 0xFFFF));

    const unsigned blocks = 3 + static_cast<unsigned>(rng_.below(5));
    for (unsigned b = 0; b < blocks; ++b) emit_block(a);
    a(e::ecall());
    return a.assemble("fuzz", std::move(d));
  }

 private:
  Reg pick() { return kPool[rng_.below(kPoolSize)]; }

  i64 mem_offset(unsigned size) {
    // Aligned, in-bounds and within the 12-bit immediate range.
    return static_cast<i64>(align_down(rng_.below(2040), size));
  }

  void emit_random_op(Assembler& a) {
    const Reg rd = pick(), rs1 = pick(), rs2 = pick();
    switch (rng_.below(24)) {
      case 0: a(e::add(rd, rs1, rs2)); break;
      case 1: a(e::sub(rd, rs1, rs2)); break;
      case 2: a(e::xor_(rd, rs1, rs2)); break;
      case 3: a(e::or_(rd, rs1, rs2)); break;
      case 4: a(e::and_(rd, rs1, rs2)); break;
      case 5: a(e::sll(rd, rs1, rs2)); break;
      case 6: a(e::srl(rd, rs1, rs2)); break;
      case 7: a(e::sra(rd, rs1, rs2)); break;
      case 8: a(e::slt(rd, rs1, rs2)); break;
      case 9: a(e::sltu(rd, rs1, rs2)); break;
      case 10: a(e::mul(rd, rs1, rs2)); break;
      case 11: a(e::mulh(rd, rs1, rs2)); break;
      case 12: a(e::div(rd, rs1, rs2)); break;
      case 13: a(e::rem(rd, rs1, rs2)); break;
      case 14: a(e::addw(rd, rs1, rs2)); break;
      case 15: a(e::subw(rd, rs1, rs2)); break;
      case 16: a(e::addi(rd, rs1, static_cast<i64>(rng_.below(4096)) - 2048)); break;
      case 17: a(e::slli(rd, rs1, static_cast<unsigned>(rng_.below(64)))); break;
      case 18: a(e::srai(rd, rs1, static_cast<unsigned>(rng_.below(64)))); break;
      case 19: {  // load (width varies)
        const unsigned size = 1u << rng_.below(4);
        const i64 off = mem_offset(size);
        switch (size) {
          case 1: a(e::lbu(rd, S0, off)); break;
          case 2: a(e::lh(rd, S0, off)); break;
          case 4: a(e::lw(rd, S0, off)); break;
          default: a(e::ld(rd, S0, off)); break;
        }
        break;
      }
      case 20: {  // store
        const unsigned size = 1u << rng_.below(4);
        const i64 off = mem_offset(size);
        switch (size) {
          case 1: a(e::sb(rs1, S0, off)); break;
          case 2: a(e::sh(rs1, S0, off)); break;
          case 4: a(e::sw(rs1, S0, off)); break;
          default: a(e::sd(rs1, S0, off)); break;
        }
        break;
      }
      case 21: a(e::mulw(rd, rs1, rs2)); break;
      case 22: a(e::divu(rd, rs1, rs2)); break;
      default: a(e::sltiu(rd, rs1, static_cast<i64>(rng_.below(2048)))); break;
    }
  }

  /// A straight-line run of ops followed by a bounded counted loop.
  void emit_block(Assembler& a) {
    const unsigned straight = 2 + static_cast<unsigned>(rng_.below(12));
    for (unsigned i = 0; i < straight; ++i) emit_random_op(a);

    // Bounded loop: a dedicated counter register (S6) so the generator's
    // random ops (which never touch S6) cannot make it diverge.
    const unsigned iterations = 1 + static_cast<unsigned>(rng_.below(9));
    const unsigned body = 1 + static_cast<unsigned>(rng_.below(6));
    a.li(S6, static_cast<i64>(iterations));
    Label head = a.new_label(), exit = a.new_label();
    a.bind(head);
    a.beqz(S6, exit);
    for (unsigned i = 0; i < body; ++i) emit_random_op(a);
    // Optional data-dependent (but convergent) skip inside the loop.
    if (rng_.chance(0.5)) {
      Label skip = a.new_label();
      a(e::andi(T6, pick(), 1));
      a.beqz(T6, skip);
      emit_random_op(a);
      a.bind(skip);
    }
    a(e::addi(S6, S6, -1));
    a.j(head);
    a.bind(exit);
  }

  Xoshiro256 rng_;
};

struct DualRun {
  isa::ArchState iss_state;
  isa::ArchState pipe_state;
  std::vector<u8> iss_data;
  std::vector<u8> pipe_data;
  u64 pipe_commits = 0;
};

DualRun run_both(const Program& program) {
  DualRun out;
  {
    mem::PhysMem mem(0, 4 << 20);
    for (std::size_t i = 0; i < program.text.size(); ++i)
      mem.store(kTextBase + i * 4, program.text[i], 4);
    mem.write_block(kDataBase, program.data);
    isa::Iss iss(mem, kTextBase);
    iss.state().set_x(A0, kDataBase);
    iss.state().set_x(SP, kDataBase + 0x80000);
    iss.run(3'000'000);
    out.iss_state = iss.state();
    out.iss_data.resize(kDataBytes);
    mem.read_block(kDataBase, out.iss_data);
  }
  {
    mem::PhysMem mem(0, 4 << 20);
    for (std::size_t i = 0; i < program.text.size(); ++i)
      mem.store(kTextBase + i * 4, program.text[i], 4);
    mem.write_block(kDataBase, program.data);
    bus::L2Frontend l2(mem::CacheConfig{}, bus::L2Timing{});
    bus::AhbBus bus(l2);
    core::Core core(core::CoreConfig{}, mem, bus, "fuzz");
    core.reset(kTextBase, kDataBase, kDataBase + 0x80000);
    core::CoreTapFrame frame;
    for (u64 c = 0; c < 20'000'000 && !core.halted(); ++c) {
      core.step(frame);
      bus.step();
    }
    out.pipe_state = core.arch();
    out.pipe_commits = core.stats().committed;
    out.pipe_data.resize(kDataBytes);
    mem.read_block(kDataBase, out.pipe_data);
  }
  return out;
}

class RandomProgramEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(RandomProgramEquivalence, PipelineMatchesIss) {
  ProgramFuzzer fuzzer(GetParam());
  const Program program = fuzzer.generate();
  const DualRun result = run_both(program);

  ASSERT_EQ(result.iss_state.halt, isa::HaltReason::kEcall) << "seed " << GetParam();
  ASSERT_EQ(result.pipe_state.halt, isa::HaltReason::kEcall) << "seed " << GetParam();
  EXPECT_EQ(result.pipe_state.instret, result.iss_state.instret) << "seed " << GetParam();
  EXPECT_EQ(result.pipe_commits, result.iss_state.instret) << "seed " << GetParam();
  for (unsigned r = 0; r < 32; ++r)
    EXPECT_EQ(result.pipe_state.x[r], result.iss_state.x[r])
        << "seed " << GetParam() << " register x" << r;
  EXPECT_EQ(result.pipe_data, result.iss_data) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEquivalence,
                         ::testing::Range<u64>(1, 41));  // 40 random programs

}  // namespace
}  // namespace safedm
