// Property fuzzing: differential-oracle equivalence over randomized
// programs from the shared src/fuzz generator.
//
// Each seed's program runs through the full oracle stack (fuzz/oracle.hpp):
// pipeline-vs-ISS architectural state and data segment, incremental-vs-
// exhaustive comparator verdict per cycle, and (for a subset of seeds) the
// mid-run snapshot/restore/re-execute equivalence layer. This is the
// strongest guard against pipeline-model bugs (hazards, flushes, store
// buffering) silently corrupting the experiments.
#include <gtest/gtest.h>

#include "safedm/fuzz/generator.hpp"
#include "safedm/fuzz/oracle.hpp"

namespace safedm {
namespace {

class RandomProgramEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(RandomProgramEquivalence, OracleStackPasses) {
  fuzz::ProgramFuzzer fuzzer(GetParam());
  const fuzz::FuzzProgram program = fuzzer.next();

  fuzz::OracleConfig cfg;
  // Engage the snapshot layer on a quarter of the seeds (cheap seeds stay
  // fast; the layer itself has a dedicated round-trip suite).
  if (GetParam() % 4 == 0) cfg.snapshot_cycle = 64 + GetParam() % 256;

  const fuzz::OracleResult res = fuzz::run_differential(program, cfg);
  EXPECT_TRUE(res.ok()) << "seed " << GetParam() << ": " << fuzz::verdict_name(res.verdict)
                        << " — " << res.detail;
  EXPECT_EQ(res.iss_state.halt, isa::HaltReason::kEcall) << "seed " << GetParam();
  EXPECT_GT(res.instret, 0u);
  // The run must have produced coverage (the campaign's keep signal).
  EXPECT_GT(res.coverage.features_hit(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEquivalence,
                         ::testing::Range<u64>(1, 41));  // 40 random programs

// Mutated programs must stay well-formed: every mutant still lowers to a
// halting program that passes the whole oracle stack.
TEST(MutatedProgramEquivalence, MutantsStayWellFormed) {
  fuzz::ProgramFuzzer fuzzer(0xACE);
  Xoshiro256 rng(0xACE);
  fuzz::FuzzProgram program = fuzzer.next();
  const fuzz::FuzzProgram donor = fuzzer.next();
  for (int round = 0; round < 12; ++round) {
    fuzz::mutate(program, &donor, rng, fuzzer.config());
    const fuzz::OracleResult res = fuzz::run_differential(program);
    ASSERT_TRUE(res.ok()) << "mutation round " << round << ": "
                          << fuzz::verdict_name(res.verdict) << " — " << res.detail;
    ASSERT_EQ(res.iss_state.halt, isa::HaltReason::kEcall) << "mutation round " << round;
  }
}

}  // namespace
}  // namespace safedm
