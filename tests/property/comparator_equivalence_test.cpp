// Property test: the incremental DiversityComparator's per-cycle verdicts
// (DS match, IS match, nodiv) are bit-identical to the exhaustive
// data_equal / instruction_equal oracle on randomized workloads with
// independent per-core hold and stagger sequences, across raw and CRC
// compare modes and both IS modes.
//
// The frame streams are scripted through phases that exercise every
// comparator path: lockstep-identical frames (all-match fast path),
// value-divergent frames, independently held pipelines (window
// de-alignment -> realignment scans), and re-convergence (identical
// samples refill both windows at different ring phases). Values are drawn
// from a tiny alphabet so coincidental matches are frequent.
#include <gtest/gtest.h>

#include "safedm/common/rng.hpp"
#include "safedm/safedm/comparator.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/safedm/signature.hpp"

namespace safedm::monitor {
namespace {

struct Scenario {
  unsigned depth;
  unsigned ports;
  CompareMode compare;
  IsMode is_mode;
  u64 seed;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  return "n" + std::to_string(s.depth) + "_m" + std::to_string(s.ports) +
         (s.compare == CompareMode::kCrc32 ? "_crc" : "_raw") +
         (s.is_mode == IsMode::kFlatList ? "_flat" : "_perstage") + "_s" +
         std::to_string(s.seed);
}

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> scenarios;
  u64 seed = 1;
  // 64 and 128 cover the single-word mask boundary and the multi-word
  // widening beyond it.
  for (unsigned depth : {1u, 2u, 3u, 4u, 8u, 16u, 64u, 128u})
    for (CompareMode compare : {CompareMode::kRaw, CompareMode::kCrc32})
      for (IsMode is_mode : {IsMode::kPerStage, IsMode::kFlatList})
        scenarios.push_back(Scenario{depth, depth % 2 ? 3u : 4u, compare, is_mode, seed++});
  return scenarios;
}

class ComparatorEquivalence : public ::testing::TestWithParam<Scenario> {};

// Frames with values from a tiny alphabet: coincidental cross-core matches
// and partial-window matches happen constantly.
core::CoreTapFrame small_frame(Xoshiro256& rng) {
  core::CoreTapFrame f;
  for (unsigned s = 0; s < core::kPipelineStages; ++s)
    for (unsigned l = 0; l < core::kMaxIssueWidth; ++l)
      f.stage[s][l] = core::StageSlotTap{rng.chance(0.7), static_cast<u32>(rng.below(3))};
  for (unsigned p = 0; p < core::kMaxPorts; ++p)
    f.port[p] = core::PortTap{rng.chance(0.5), rng.below(2)};
  f.commits = static_cast<unsigned>(rng.below(3));
  return f;
}

TEST_P(ComparatorEquivalence, VerdictMatchesOracleEveryCycle) {
  const Scenario& scenario = GetParam();
  SafeDmConfig config;
  config.data_fifo_depth = scenario.depth;
  config.num_ports = scenario.ports;
  config.compare = scenario.compare;
  config.is_mode = scenario.is_mode;

  SignatureGenerator a(config), b(config);
  DiversityComparator comparator(a, b);
  Xoshiro256 rng(scenario.seed * 0x9E3779B97F4A7C15ULL + 7);

  constexpr int kCycles = 4000;
  // Phase schedule, one per 500 cycles: 0=lockstep 1=divergent values
  // 2=divergent holds 3=lockstep again (re-convergence), repeating.
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const int phase = (cycle / 500) % 4;
    core::CoreTapFrame f0 = small_frame(rng);
    core::CoreTapFrame f1 = f0;
    switch (phase) {
      case 0:
      case 3:
        f0.hold = f1.hold = rng.chance(0.2);
        break;
      case 1:
        f0.hold = f1.hold = rng.chance(0.2);
        if (rng.chance(0.5)) f1 = small_frame(rng);
        break;
      case 2:
        f0.hold = rng.chance(0.3);
        f1.hold = rng.chance(0.3);  // independent: de-aligns FIFO phases
        if (rng.chance(0.2)) f1 = small_frame(rng);
        break;
    }
    a.capture(f0);
    b.capture(f1);
    comparator.update();

    // Oracle: exhaustive whole-signature comparison. In CRC mode the
    // comparator compares compressed signatures; with 32-bit CRCs a
    // verdict disagreement requires a hash collision, which these
    // deterministic streams do not contain.
    const bool oracle_ds = SignatureGenerator::data_equal(a, b);
    const bool oracle_is = SignatureGenerator::instruction_equal(a, b);
    ASSERT_EQ(comparator.ds_match(), oracle_ds)
        << "cycle " << cycle << " phase " << phase << " " << scenario_name({GetParam(), 0});
    ASSERT_EQ(comparator.is_match(), oracle_is)
        << "cycle " << cycle << " phase " << phase;
  }

  // The schedule must actually have exercised both the fast path and the
  // realignment fallback (and, when depth > 1, reused held cycles).
  const auto& stats = comparator.stats();
  EXPECT_GT(stats.fast_updates, 0u);
  EXPECT_GT(stats.realign_scans, 0u);
  EXPECT_GT(stats.hold_reuses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ComparatorEquivalence, ::testing::ValuesIn(make_scenarios()),
                         scenario_name);

// Regression: data_fifo_depth > 64 used to silently fall off the
// incremental fast path (the mismatch mask was a single u64, so every
// aligned cycle degraded to an exhaustive compare). With multi-word masks
// every aligned shift must count as a fast update and none as a realign.
TEST(ComparatorDeepFifo, Depth128StaysOnTheIncrementalFastPath) {
  SafeDmConfig config;
  config.data_fifo_depth = 128;
  config.num_ports = 3;
  config.compare = CompareMode::kRaw;
  config.is_mode = IsMode::kPerStage;

  SignatureGenerator a(config), b(config);
  DiversityComparator comparator(a, b);
  Xoshiro256 rng(0xD128'F1F0);

  constexpr u64 kCycles = 2000;
  for (u64 cycle = 0; cycle < kCycles; ++cycle) {
    core::CoreTapFrame f0 = small_frame(rng);
    core::CoreTapFrame f1 = rng.chance(0.5) ? f0 : small_frame(rng);
    f0.hold = f1.hold = false;  // aligned: every cycle is fast-path eligible
    a.capture(f0);
    b.capture(f1);
    comparator.update();
    ASSERT_EQ(comparator.ds_match(), SignatureGenerator::data_equal(a, b)) << "cycle " << cycle;
  }
  const auto& stats = comparator.stats();
  EXPECT_EQ(stats.fast_updates, kCycles);
  EXPECT_EQ(stats.realign_scans, 0u);
}

// Monitor-level equivalence: a SafeDm on the incremental comparator and a
// SafeDm on the exhaustive path, fed the same random stream (including
// enable toggles and mid-stream resets), must agree on every per-cycle
// flag and every counter.
TEST(SafeDmIncrementalEquivalence, CountersMatchExhaustivePath) {
  for (const CompareMode compare : {CompareMode::kRaw, CompareMode::kCrc32}) {
    for (const IsMode is_mode : {IsMode::kPerStage, IsMode::kFlatList}) {
      SafeDmConfig config;
      config.data_fifo_depth = 4;
      config.num_ports = 3;
      config.compare = compare;
      config.is_mode = is_mode;
      config.start_enabled = true;
      config.arm_on_first_commit = true;
      SafeDmConfig exhaustive_config = config;
      exhaustive_config.incremental_compare = false;

      SafeDm incremental(config);
      SafeDm exhaustive(exhaustive_config);
      Xoshiro256 rng(0xC0FFEE + static_cast<u64>(compare) * 2 + static_cast<u64>(is_mode));

      for (u64 cycle = 0; cycle < 3000; ++cycle) {
        core::CoreTapFrame f0 = small_frame(rng);
        core::CoreTapFrame f1 = rng.chance(0.6) ? f0 : small_frame(rng);
        f0.hold = rng.chance(0.2);
        f1.hold = rng.chance(0.25);
        incremental.on_cycle(cycle, f0, f1);
        exhaustive.on_cycle(cycle, f0, f1);
        ASSERT_EQ(incremental.lacking_diversity_now(), exhaustive.lacking_diversity_now())
            << "cycle " << cycle;
        ASSERT_EQ(incremental.ds_matched_now(), exhaustive.ds_matched_now())
            << "cycle " << cycle;
        ASSERT_EQ(incremental.is_matched_now(), exhaustive.is_matched_now())
            << "cycle " << cycle;
        if (cycle == 1500) {  // mid-stream reset must resync the comparator
          incremental.reset();
          exhaustive.reset();
        }
      }
      incremental.finalize();
      exhaustive.finalize();
      const auto& ci = incremental.counters();
      const auto& ce = exhaustive.counters();
      EXPECT_EQ(ci.monitored_cycles, ce.monitored_cycles);
      EXPECT_EQ(ci.nodiv_cycles, ce.nodiv_cycles);
      EXPECT_EQ(ci.ds_match_cycles, ce.ds_match_cycles);
      EXPECT_EQ(ci.is_match_cycles, ce.is_match_cycles);
      EXPECT_EQ(ci.zero_stag_cycles, ce.zero_stag_cycles);
    }
  }
}

}  // namespace
}  // namespace safedm::monitor
