// safedm.scenario/v1 schema validation: the negative paths each raise
// exactly one ScenarioError whose what() is a single `file:line: message`
// diagnostic pointing at the offending value, and the positive path
// lowers every section onto the right engine configs.
#include <gtest/gtest.h>

#include <string>

#include "safedm/scenario/scenario.hpp"

namespace safedm::scenario {
namespace {

Scenario parse(const std::string& text) {
  return parse_scenario(parse_json(text), "test.json");
}

/// The negative-path contract: one ScenarioError, whose message is one
/// line, prefixed `test.json:<line>:`, containing `needle`.
void expect_diag(const std::string& text, unsigned line, const std::string& needle) {
  try {
    (void)parse(text);
    FAIL() << "accepted: " << text;
  } catch (const ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_EQ(e.line(), line) << what;
    EXPECT_EQ(what.rfind("test.json:" + std::to_string(line) + ": ", 0), 0u) << what;
    EXPECT_EQ(what.find('\n'), std::string::npos) << "multi-line diagnostic: " << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

constexpr char kMinimal[] = R"({
  "schema": "safedm.scenario/v1",
  "name": "minimal",
  "run": { "workload": "bitcount" }
})";

TEST(Schema, AcceptsMinimalScenario) {
  const Scenario s = parse(kMinimal);
  EXPECT_EQ(s.name, "minimal");
  ASSERT_TRUE(s.run.has_value());
  EXPECT_EQ(s.run->workload, "bitcount");
  EXPECT_TRUE(s.run->sweep);
  EXPECT_FALSE(s.faults);
  EXPECT_FALSE(s.fuzz);
}

TEST(Schema, LowersMonitorSpec) {
  const Scenario s = parse(R"({
    "schema": "safedm.scenario/v1",
    "name": "mon",
    "monitor": { "ports": 2, "depth": 32, "is_mode": "flat", "compare": "crc32",
                 "report": "interrupt_threshold", "interrupt_threshold": 5,
                 "track_distance": true },
    "run": { "workload": "cubic", "scale": 2, "stagger_nops": 100 }
  })");
  const monitor::SafeDmConfig dm = s.monitor.to_config();
  EXPECT_EQ(dm.num_ports, 2u);
  EXPECT_EQ(dm.data_fifo_depth, 32u);
  EXPECT_EQ(dm.is_mode, monitor::IsMode::kFlatList);
  EXPECT_EQ(dm.compare, monitor::CompareMode::kCrc32);
  EXPECT_EQ(dm.report, monitor::ReportMode::kInterruptThreshold);
  EXPECT_EQ(dm.interrupt_threshold, 5u);
  EXPECT_TRUE(dm.track_distance);
}

TEST(Schema, LowersSafeDeSpec) {
  const Scenario s = parse(R"({
    "schema": "safedm.scenario/v1",
    "name": "de",
    "run": { "workload": "bitcount",
             "safede": { "head_core": 1, "min_staggering": 250 } }
  })");
  ASSERT_TRUE(s.run->safede.has_value());
  const safede::SafeDeConfig de = s.run->safede->to_config();
  EXPECT_EQ(de.head_core, 1u);
  EXPECT_EQ(de.min_staggering, 250);
  EXPECT_TRUE(de.enabled);
}

TEST(Schema, BareNumberBoundMeansExactlyEqual) {
  const Scenario s = parse(R"({
    "schema": "safedm.scenario/v1",
    "name": "b",
    "run": { "workload": "bitcount" },
    "expect": { "counters": { "zero_stag": 110, "nodiv": { "min": 1, "max": 20 } } }
  })");
  EXPECT_EQ(s.expect.zero_stag.min, 110u);
  EXPECT_EQ(s.expect.zero_stag.max, 110u);
  EXPECT_EQ(s.expect.nodiv.min, 1u);
  EXPECT_EQ(s.expect.nodiv.max, 20u);
}

// ---- negative paths --------------------------------------------------------

TEST(Schema, RejectsUnknownTopLevelKey) {
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "workload": "bitcount" },
  "runs": 3
})", 5, "unknown key \"runs\"");
}

TEST(Schema, RejectsUnknownKeyInSection) {
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "workload": "bitcount",
           "stagger": 100 }
})", 5, "unknown key \"stagger\" in \"run\"");
}

TEST(Schema, RejectsWrongType) {
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "workload": "bitcount", "scale": "big" }
})", 4, "\"run.scale\" must be an integer, got string");
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "workload": 7 }
})", 4, "\"run.workload\" must be a string, got number");
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": "bitcount"
})", 4, "\"run\" must be an object, got string");
}

TEST(Schema, RejectsNonIntegerNumbers) {
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "workload": "bitcount", "scale": 1.5 }
})", 4, "non-negative integer");
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "workload": "bitcount", "max_cycles": 1e6 }
})", 4, "non-negative integer");
}

TEST(Schema, RejectsOutOfRangePortsAndDepth) {
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "monitor": { "ports": 7 },
  "run": { "workload": "bitcount" }
})", 4, "\"monitor.ports\" must be in [1, 6], got 7");
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "monitor": { "depth": 0 },
  "run": { "workload": "bitcount" }
})", 4, "\"monitor.depth\" must be in [1, 1024], got 0");
}

TEST(Schema, RejectsMissingWorkload) {
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "scale": 2 }
})", 4, "missing required key \"workload\"");
}

TEST(Schema, RejectsUnknownWorkload) {
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "workload": "doom" }
})", 4, "\"doom\" is not a registry benchmark");
}

TEST(Schema, RejectsOutOfRangeFaultRegisters) {
  // The same x0/wrap hazard the CLI fix covers: register 32+ and bit 64+
  // must die in validation, never wrap into a campaign config.
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "workload": "bitcount" },
  "faults": { "registers": [6, 256] }
})", 5, "\"faults.registers\" entry must be in [1, 31], got 256");
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "workload": "bitcount" },
  "faults": { "bits": [64] }
})", 5, "\"faults.bits\" entry must be in [0, 63], got 64");
}

TEST(Schema, RejectsFaultsWithoutRun) {
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "fuzz": { "program": ["safedm-fuzz/v1", "gen_seed 1", "data_seed 1",
                        "data_words 16", "block 1 0 0"] },
  "faults": { "seed": 1 }
})", 6, "\"faults\" requires a \"run\" section");
}

TEST(Schema, RejectsBadSchemaIdAndName) {
  expect_diag(R"({
  "schema": "safedm.scenario/v2",
  "name": "x",
  "run": { "workload": "bitcount" }
})", 2, "unsupported schema");
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "bad name!",
  "run": { "workload": "bitcount" }
})", 3, "\"name\" must be 1-128 chars");
}

TEST(Schema, RejectsEmptyAndInvertedBounds) {
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "workload": "bitcount" },
  "expect": { "counters": { "nodiv": {} } }
})", 5, "empty bound");
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "run": { "workload": "bitcount" },
  "expect": { "counters": { "nodiv": { "min": 5, "max": 1 } } }
})", 5, "min exceeds max");
}

TEST(Schema, RejectsInvalidFuzzProgram) {
  expect_diag(R"({
  "schema": "safedm.scenario/v1",
  "name": "x",
  "fuzz": { "program": ["not-a-fuzz-program"] }
})", 4, "not a valid safedm-fuzz/v1 program");
}

TEST(Schema, ReportsJsonSyntaxErrorsThroughSameChannel) {
  try {
    (void)load_scenario_file("/nonexistent/scenario.json");
    FAIL();
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot read file"), std::string::npos);
  }
}

}  // namespace
}  // namespace safedm::scenario
