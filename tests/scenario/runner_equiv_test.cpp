// The tentpole equivalence claim: replaying a checked-in Table-1 scenario
// through run_scenario() produces the same per-workload counters as
// driving the shared redundant-run harness with the equivalent bench/table1
// configuration. The harness itself is shared by construction (bench_util
// re-exports src/scenario's run_redundant/max_over_runs); this test pins
// the lowering — scenario defaults must keep matching the bench defaults.
#include <gtest/gtest.h>

#include <string>

#include "safedm/scenario/runner.hpp"
#include "safedm/workloads/workloads.hpp"

#ifndef SAFEDM_SCENARIO_DIR
#error "SAFEDM_SCENARIO_DIR must point at the checked-in scenarios/ corpus"
#endif

namespace safedm::scenario {
namespace {

TEST(RunnerEquiv, Table1ScenarioMatchesBenchHarness) {
  const std::string path = std::string(SAFEDM_SCENARIO_DIR) + "/table1_bitcount_stag0.json";
  const Scenario scenario = load_scenario_file(path);
  ASSERT_TRUE(scenario.run.has_value());
  EXPECT_EQ(scenario.run->workload, "bitcount");

  // The bench/table1 side of the cell: default RunSpec, stagger from the
  // column, max over platform variants.
  const assembler::Program program =
      workloads::build(scenario.run->workload, scenario.run->scale);
  RunSpec bench_spec;
  bench_spec.scale = scenario.run->scale;
  bench_spec.stagger_nops = scenario.run->stagger_nops;
  const RunOutcome bench_outcome = max_over_runs(program, bench_spec);

  // The scenario side: the runner must derive the identical spec...
  const RunSpec lowered = build_run_spec(scenario);
  EXPECT_EQ(lowered.scale, bench_spec.scale);
  EXPECT_EQ(lowered.stagger_nops, bench_spec.stagger_nops);
  EXPECT_EQ(lowered.delayed_core, bench_spec.delayed_core);
  EXPECT_EQ(lowered.max_cycles, bench_spec.max_cycles);
  EXPECT_EQ(lowered.dm.num_ports, bench_spec.dm.num_ports);
  EXPECT_EQ(lowered.dm.data_fifo_depth, bench_spec.dm.data_fifo_depth);
  EXPECT_EQ(lowered.dm.is_mode, bench_spec.dm.is_mode);
  EXPECT_EQ(lowered.dm.compare, bench_spec.dm.compare);
  EXPECT_FALSE(lowered.safede.has_value());

  // ...and executing the scenario end-to-end must reproduce the cell's
  // counters exactly.
  const ScenarioResult result = run_scenario(scenario);
  ASSERT_TRUE(result.ran_redundant);
  EXPECT_TRUE(result.outcome.completed);
  EXPECT_EQ(result.outcome.zero_stag, bench_outcome.zero_stag);
  EXPECT_EQ(result.outcome.nodiv, bench_outcome.nodiv);
  EXPECT_EQ(result.outcome.ds_match, bench_outcome.ds_match);
  EXPECT_EQ(result.outcome.is_match, bench_outcome.is_match);
  EXPECT_EQ(result.outcome.monitored_cycles, bench_outcome.monitored_cycles);
  EXPECT_EQ(result.outcome.cycles, bench_outcome.cycles);
  EXPECT_TRUE(result.passed()) << "checked-in expectations drifted from the harness";
}

TEST(RunnerEquiv, SweepFalseMatchesSingleRun) {
  const Scenario scenario = parse_scenario(parse_json(R"({
    "schema": "safedm.scenario/v1",
    "name": "single",
    "run": { "workload": "bitcount", "stagger_nops": 100, "sweep": false }
  })"), "inline");
  const assembler::Program program = workloads::build("bitcount", 1);
  const RunOutcome direct = run_redundant(program, build_run_spec(scenario));
  const ScenarioResult result = run_scenario(scenario);
  EXPECT_EQ(result.outcome.zero_stag, direct.zero_stag);
  EXPECT_EQ(result.outcome.nodiv, direct.nodiv);
  EXPECT_EQ(result.outcome.cycles, direct.cycles);
}

TEST(RunnerEquiv, FailedBoundReportsDetail) {
  const Scenario scenario = parse_scenario(parse_json(R"({
    "schema": "safedm.scenario/v1",
    "name": "fails",
    "run": { "workload": "bitcount", "stagger_nops": 10000, "sweep": false },
    "expect": { "counters": { "zero_stag": { "min": 1 } } }
  })"), "inline");
  const ScenarioResult result = run_scenario(scenario);
  EXPECT_FALSE(result.passed());
  bool found = false;
  for (const CheckResult& check : result.checks) {
    if (check.name != "expect.counters.zero_stag") continue;
    found = true;
    EXPECT_FALSE(check.pass);
    EXPECT_NE(check.detail.find("observed 0"), std::string::npos) << check.detail;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace safedm::scenario
