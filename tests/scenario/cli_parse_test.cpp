// The shared checked CLI parsing in bench/bench_util.hpp — regression
// cover for the bare-atoi era: `--threads=abc` silently meant 0, and
// `--registers=256` wrapped through a u8 cast into x0 (a campaign that
// faults the hardwired-zero register, i.e. faults nothing).
#include <gtest/gtest.h>

#include "bench_util.hpp"

namespace safedm::bench {
namespace {

TEST(CliParse, AcceptsPlainDecimal) {
  EXPECT_EQ(try_parse_u64("0"), 0u);
  EXPECT_EQ(try_parse_u64("42"), 42u);
  EXPECT_EQ(try_parse_u64("18446744073709551615"), ~u64{0});
}

TEST(CliParse, RejectsNonNumeric) {
  EXPECT_FALSE(try_parse_u64("abc").has_value());
  EXPECT_FALSE(try_parse_u64("12abc").has_value());
  EXPECT_FALSE(try_parse_u64("").has_value());
  EXPECT_FALSE(try_parse_u64(" 1").has_value());
  EXPECT_FALSE(try_parse_u64("0x10").has_value());
}

TEST(CliParse, RejectsNegative) {
  EXPECT_FALSE(try_parse_u64("-1").has_value());
  EXPECT_FALSE(try_parse_u64("+1").has_value());
}

TEST(CliParse, RejectsOverflow) {
  EXPECT_FALSE(try_parse_u64("18446744073709551616").has_value());
  EXPECT_FALSE(try_parse_u64("99999999999999999999999").has_value());
}

TEST(CliParse, EnforcesRange) {
  // The faultsim register bounds: 256 used to wrap to x0 through the u8
  // cast; now it is out of range before any cast happens.
  EXPECT_EQ(try_parse_u64("31", 1, 31), 31u);
  EXPECT_FALSE(try_parse_u64("0", 1, 31).has_value());
  EXPECT_FALSE(try_parse_u64("32", 1, 31).has_value());
  EXPECT_FALSE(try_parse_u64("256", 1, 31).has_value());
}

TEST(CliParse, ParsesFiniteDoubles) {
  EXPECT_DOUBLE_EQ(*try_parse_double("1.25"), 1.25);
  EXPECT_DOUBLE_EQ(*try_parse_double("-3e2"), -300.0);
  EXPECT_FALSE(try_parse_double("abc").has_value());
  EXPECT_FALSE(try_parse_double("1.2.3").has_value());
  EXPECT_FALSE(try_parse_double("inf").has_value());
  EXPECT_FALSE(try_parse_double("nan").has_value());
  EXPECT_FALSE(try_parse_double("").has_value());
}

}  // namespace
}  // namespace safedm::bench
