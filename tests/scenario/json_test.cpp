// The strict JSON parser under src/scenario: RFC 8259 positive cases,
// the rejections that make it strict (trailing commas, comments,
// duplicate keys, raw control characters, leading zeros), and the
// round-trip contract with the bench JsonWriter — everything the writer
// can emit, including control-character escapes, must parse back to the
// original text.
#include <gtest/gtest.h>

#include <string>

#include "json_writer.hpp"
#include "safedm/scenario/json.hpp"

namespace safedm::scenario {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_EQ(parse_json("null").kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_DOUBLE_EQ(parse_json("-12.5e2").number, -1250.0);
  EXPECT_EQ(parse_json("\"hi\"").text, "hi");
}

TEST(Json, KeepsRawNumberLiteral) {
  // Exact u64 round-trip relies on the untouched literal text: the double
  // payload of 18446744073709551615 is lossy, the text is not.
  const JsonValue v = parse_json("18446744073709551615");
  EXPECT_EQ(v.text, "18446744073709551615");
}

TEST(Json, ParsesNestedContainers) {
  const JsonValue v = parse_json(R"({"a": [1, {"b": true}], "c": {}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 2u);
  EXPECT_TRUE(a->items[1].find("b")->boolean);
  EXPECT_TRUE(v.find("c")->members.empty());
}

TEST(Json, TracksLineNumbers) {
  const JsonValue v = parse_json("{\n  \"a\": 1,\n  \"b\": 2\n}");
  EXPECT_EQ(v.line, 1u);
  EXPECT_EQ(v.find("a")->line, 2u);
  EXPECT_EQ(v.find("b")->line, 3u);
}

TEST(Json, DecodesEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd\te")").text, "a\"b\\c\nd\te");
  EXPECT_EQ(parse_json(R"("\u0041\u00e9")").text, "A\xc3\xa9");
  // Surrogate pair: U+1F600 as UTF-8.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").text, "\xf0\x9f\x98\x80");
}

void expect_error(const std::string& text, unsigned line) {
  try {
    (void)parse_json(text);
    FAIL() << "accepted: " << text;
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line, line) << text << ": " << e.message;
  }
}

TEST(Json, RejectsNonJson) {
  expect_error("", 1);
  expect_error("{", 1);
  expect_error("[1,]", 1);            // trailing comma
  expect_error("{\"a\": 1,}", 1);     // trailing comma
  expect_error("// comment\n1", 1);   // comments are not JSON
  expect_error("{\"a\":1 \"b\":2}", 1);  // missing comma
  expect_error("1 2", 1);             // trailing content
  expect_error("01", 1);              // leading zero
  expect_error("+1", 1);              // explicit plus
  expect_error("\"\t\"", 1);          // raw control char in string
  expect_error("\"\n\"", 2);          // ...a raw newline reports past itself
  expect_error("{\"a\":1,\n\"a\":2}", 2);  // duplicate key
  expect_error("nul", 1);
  expect_error("\"\\q\"", 1);         // unknown escape
  expect_error("\"\\ud800\"", 1);     // lone surrogate
}

TEST(Json, RejectsRunawayNesting) {
  std::string deep(100, '[');
  expect_error(deep, 1);
}

// The satellite's round-trip contract: JsonWriter escapes everything the
// strict parser requires escaped (quotes, backslashes, and all control
// characters), so a string containing the worst of them survives
// writer -> parser unchanged.
TEST(Json, WriterRoundTripsControlCharacters) {
  std::string nasty = "quote\" backslash\\ newline\n cr\r tab\t";
  nasty += '\x01';
  nasty += '\x1f';
  nasty += " unicode\xc3\xa9";
  bench::JsonWriter writer;
  writer.begin_object();
  writer.prop("payload", std::string_view(nasty));
  writer.end_object();

  const JsonValue parsed = parse_json(writer.str());
  const JsonValue* payload = parsed.find("payload");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->text, nasty);
}

TEST(Json, WriterRoundTripsNestedReport) {
  bench::JsonWriter writer;
  writer.begin_object();
  writer.prop("schema", "safedm.bench.scenario/v1");
  writer.key("checks").begin_array();
  writer.begin_object();
  writer.prop("name", "expect.counters.nodiv");
  writer.prop("pass", false);
  writer.prop("detail", "observed 3,\nexpected [0, 0]");
  writer.end_object();
  writer.end_array();
  writer.prop("total", 14);
  writer.end_object();

  const JsonValue parsed = parse_json(writer.str());
  EXPECT_EQ(parsed.find("schema")->text, "safedm.bench.scenario/v1");
  EXPECT_EQ(parsed.find("total")->text, "14");
  const JsonValue& check = parsed.find("checks")->items.at(0);
  EXPECT_FALSE(check.find("pass")->boolean);
  EXPECT_EQ(check.find("detail")->text, "observed 3,\nexpected [0, 0]");
}

}  // namespace
}  // namespace safedm::scenario
