// Unit tests for the safedm-lint include-graph builder (tools/lint/graph.*)
// on synthetic file trees: diamond includes, cycle detection, system-header
// exclusion, and `#pragma once` vs #ifndef/#define guard-pair equivalence.
//
// Files are written flat into a temp directory; their *report* paths carry
// the synthetic tree shape, which is all the graph builder looks at (nodes
// and include resolution work on report paths, not on-disk layout).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph.hpp"
#include "lint.hpp"

namespace fs = std::filesystem;
using safedm::lint::build_include_graph;
using safedm::lint::extract_includes;
using safedm::lint::find_file_cycle;
using safedm::lint::header_is_guarded;
using safedm::lint::IncludeGraph;
using safedm::lint::layer_of;
using safedm::lint::SourceFile;
using safedm::lint::subsystem_of;

namespace {

class IncludeGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("safedm_lint_graph_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Write `text` to a flat temp file and load it under the synthetic
  /// report path `report` (which is what the graph builder resolves).
  SourceFile load(const std::string& report, const std::string& text) {
    const fs::path p = dir_ / (std::to_string(counter_++) + ".src");
    std::ofstream(p) << text;
    SourceFile f;
    EXPECT_TRUE(safedm::lint::load_source(p.string(), report, /*determinism=*/false, f))
        << report;
    return f;
  }

  fs::path dir_;
  int counter_ = 0;
};

TEST_F(IncludeGraphTest, DiamondResolvesEachEdgeOnceAndStaysAcyclic) {
  // main.cpp -> a.hpp -> {b.hpp, c.hpp} -> d.hpp (shared base of the diamond).
  std::vector<SourceFile> files;
  files.push_back(load("src/x/include/safedm/x/d.hpp", "#pragma once\nint d();\n"));
  files.push_back(load("src/x/include/safedm/x/b.hpp",
                       "#pragma once\n#include \"safedm/x/d.hpp\"\nint b();\n"));
  files.push_back(load("src/x/include/safedm/x/c.hpp",
                       "#pragma once\n#include \"safedm/x/d.hpp\"\nint c();\n"));
  files.push_back(load("src/x/include/safedm/x/a.hpp",
                       "#pragma once\n#include \"safedm/x/b.hpp\"\n"
                       "#include \"safedm/x/c.hpp\"\nint a();\n"));
  files.push_back(load("src/x/main.cpp", "#include \"safedm/x/a.hpp\"\nint main() {}\n"));

  const IncludeGraph g = build_include_graph(files, {});
  EXPECT_EQ(g.nodes.size(), 5u);
  ASSERT_EQ(g.edges.at("src/x/include/safedm/x/a.hpp").size(), 2u);
  // b and c both reach d, but d is one node with no duplicate edge entries.
  EXPECT_EQ(g.edges.at("src/x/include/safedm/x/b.hpp").size(), 1u);
  EXPECT_EQ(g.edges.at("src/x/include/safedm/x/c.hpp").size(), 1u);
  EXPECT_EQ(g.edges.at("src/x/include/safedm/x/b.hpp")[0].first,
            "src/x/include/safedm/x/d.hpp");
  EXPECT_EQ(g.edges.at("src/x/include/safedm/x/c.hpp")[0].first,
            "src/x/include/safedm/x/d.hpp");
  EXPECT_TRUE(find_file_cycle(g).empty());
}

TEST_F(IncludeGraphTest, MutualIncludesAreReportedAsACycle) {
  std::vector<SourceFile> files;
  files.push_back(load("src/x/include/safedm/x/p.hpp",
                       "#pragma once\n#include \"safedm/x/q.hpp\"\n"));
  files.push_back(load("src/x/include/safedm/x/q.hpp",
                       "#pragma once\n#include \"safedm/x/p.hpp\"\n"));

  const std::vector<std::string> cyc = find_file_cycle(build_include_graph(files, {}));
  ASSERT_GE(cyc.size(), 3u);  // a -> b -> a
  EXPECT_EQ(cyc.front(), cyc.back());
  EXPECT_NE(std::find(cyc.begin(), cyc.end(), "src/x/include/safedm/x/p.hpp"), cyc.end());
  EXPECT_NE(std::find(cyc.begin(), cyc.end(), "src/x/include/safedm/x/q.hpp"), cyc.end());
}

TEST_F(IncludeGraphTest, SystemHeadersAndCommentedIncludesAreExcluded) {
  std::vector<SourceFile> files;
  files.push_back(load("src/x/include/safedm/x/leaf.hpp", "#pragma once\nint leaf();\n"));
  files.push_back(load("src/x/user.cpp",
                       "#include <vector>\n"
                       "#include <safedm/x/nonexistent_outside_set.hpp>\n"
                       "// #include \"safedm/x/commented_out.hpp\"\n"
                       "#include \"safedm/x/leaf.hpp\"\nint u();\n"));

  // extract_includes keeps the real directives (angled or not) but drops the
  // commented-out one; the graph then keeps only edges that resolve in-set.
  ASSERT_EQ(extract_includes(files[1]).size(), 3u);
  const IncludeGraph g = build_include_graph(files, {});
  ASSERT_EQ(g.edges.count("src/x/user.cpp"), 1u);
  ASSERT_EQ(g.edges.at("src/x/user.cpp").size(), 1u);
  EXPECT_EQ(g.edges.at("src/x/user.cpp")[0].first, "src/x/include/safedm/x/leaf.hpp");
  EXPECT_EQ(g.nodes.count("vector"), 0u);
}

TEST_F(IncludeGraphTest, PragmaOnceAndGuardPairAreEquivalentlyGuarded) {
  const SourceFile pragma_once = load("src/x/include/safedm/x/po.hpp",
                                      "// banner comment\n#pragma once\nint po();\n");
  const SourceFile guard_pair =
      load("src/x/include/safedm/x/gp.hpp",
           "#ifndef SAFEDM_X_GP_HPP\n#define SAFEDM_X_GP_HPP\nint gp();\n#endif\n");
  const SourceFile unguarded = load("src/x/include/safedm/x/raw.hpp", "int raw();\n");
  EXPECT_TRUE(header_is_guarded(pragma_once.raw_lines));
  EXPECT_TRUE(header_is_guarded(guard_pair.raw_lines));
  EXPECT_FALSE(header_is_guarded(unguarded.raw_lines));

  // Both guard styles produce identical graphs over an otherwise-equal tree.
  std::vector<SourceFile> tree_a, tree_b;
  tree_a.push_back(pragma_once);
  tree_a.push_back(load("src/x/u1.cpp", "#include \"safedm/x/po.hpp\"\n"));
  tree_b.push_back(guard_pair);
  tree_b.push_back(load("src/x/u1.cpp", "#include \"safedm/x/gp.hpp\"\n"));
  const IncludeGraph ga = build_include_graph(tree_a, {});
  const IncludeGraph gb = build_include_graph(tree_b, {});
  EXPECT_EQ(ga.nodes.size(), gb.nodes.size());
  EXPECT_EQ(ga.edges.at("src/x/u1.cpp").size(), 1u);
  EXPECT_EQ(gb.edges.at("src/x/u1.cpp").size(), 1u);
}

TEST_F(IncludeGraphTest, SubsystemAndLayerLookup) {
  EXPECT_EQ(subsystem_of("src/soc/soc.cpp"), "soc");
  EXPECT_EQ(subsystem_of("src/common/include/safedm/common/bits.hpp"), "common");
  EXPECT_EQ(subsystem_of("bench/micro.cpp"), "bench");
  EXPECT_EQ(subsystem_of("tools/lint/lint.cpp"), "tools");
  EXPECT_LT(layer_of("common"), layer_of("isa"));
  EXPECT_LT(layer_of("mem"), layer_of("core"));
  EXPECT_LT(layer_of("trace"), layer_of("soc"));
  EXPECT_LT(layer_of("safedm"), layer_of("faultsim"));
  EXPECT_LT(layer_of("scenario"), layer_of("bench"));
  EXPECT_EQ(layer_of("no_such_subsystem"), -1);
}

}  // namespace
