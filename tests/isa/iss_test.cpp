#include "safedm/isa/iss.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <vector>

#include "safedm/isa/encode.hpp"
#include "safedm/mem/phys_mem.hpp"

namespace safedm::isa {
namespace {

namespace e = enc;

constexpr u64 kTextBase = 0x10000;
constexpr u64 kDataBase = 0x20000;

class IssTest : public ::testing::Test {
 protected:
  IssTest() : mem_(0, 1 << 20) {}

  Iss make(const std::vector<u32>& words) {
    for (std::size_t i = 0; i < words.size(); ++i)
      mem_.store(kTextBase + i * 4, words[i], 4);
    return Iss(mem_, kTextBase);
  }

  mem::PhysMem mem_;
};

TEST_F(IssTest, ArithmeticSequence) {
  Iss iss = make({
      e::addi(5, 0, 100),    // t0 = 100
      e::addi(6, 0, -30),    // t1 = -30
      e::add(7, 5, 6),       // t2 = 70
      e::sub(28, 5, 6),      // t3 = 130
      e::mul(29, 5, 6),      // t4 = -3000
      e::ecall(),
  });
  iss.run(100);
  EXPECT_EQ(iss.state().halt, HaltReason::kEcall);
  EXPECT_EQ(iss.state().x[7], 70u);
  EXPECT_EQ(iss.state().x[28], 130u);
  EXPECT_EQ(static_cast<i64>(iss.state().x[29]), -3000);
  EXPECT_EQ(iss.state().instret, 6u);
}

TEST_F(IssTest, X0IsHardwiredZero) {
  Iss iss = make({e::addi(0, 0, 123), e::ecall()});
  iss.run(10);
  EXPECT_EQ(iss.state().x[0], 0u);
  EXPECT_EQ(iss.state().xr(0), 0u);
}

TEST_F(IssTest, LoadStoreAllWidths) {
  Iss iss = make({
      e::addi(10, 0, 0), e::lui(10, kDataBase >> 12),  // a0 = data base
      e::addi(5, 0, -2),                               // t0 = 0xFFFF...FE
      e::sd(5, 10, 0),
      e::lb(6, 10, 0),   // -2 sign-extended
      e::lbu(7, 10, 0),  // 0xFE
      e::lh(28, 10, 0),  // -2
      e::lhu(29, 10, 0), // 0xFFFE
      e::lw(30, 10, 0),  // -2
      e::lwu(31, 10, 0), // 0xFFFFFFFE
      e::ld(9, 10, 0),
      e::ecall(),
  });
  iss.run(100);
  EXPECT_EQ(static_cast<i64>(iss.state().x[6]), -2);
  EXPECT_EQ(iss.state().x[7], 0xFEu);
  EXPECT_EQ(static_cast<i64>(iss.state().x[28]), -2);
  EXPECT_EQ(iss.state().x[29], 0xFFFEu);
  EXPECT_EQ(static_cast<i64>(iss.state().x[30]), -2);
  EXPECT_EQ(iss.state().x[31], 0xFFFFFFFEu);
  EXPECT_EQ(iss.state().x[9], ~u64{1});
}

TEST_F(IssTest, BranchesAndLoop) {
  // Sum 1..10 with a loop.
  Iss iss = make({
      e::addi(5, 0, 10),   // t0 = 10 (counter)
      e::addi(6, 0, 0),    // t1 = 0  (sum)
      e::add(6, 6, 5),     // loop: sum += counter
      e::addi(5, 5, -1),
      e::bne(5, 0, -8),    // back to loop
      e::ecall(),
  });
  iss.run(1000);
  EXPECT_EQ(iss.state().x[6], 55u);
}

TEST_F(IssTest, JalAndJalrLinkCorrectly) {
  Iss iss = make({
      e::jal(1, 8),        // skip next instruction; ra = pc+4
      e::addi(5, 0, 99),   // skipped
      e::addi(6, 0, 1),
      e::jalr(7, 1, 8),    // jump to ra+8 = instruction 3 (addi t1) + 8 = idx4
      e::ecall(),
  });
  iss.run(10);
  EXPECT_EQ(iss.state().x[5], 0u);
  EXPECT_EQ(iss.state().x[6], 1u);
  EXPECT_EQ(iss.state().x[1], kTextBase + 4);
  EXPECT_EQ(iss.state().x[7], kTextBase + 16);
}

TEST_F(IssTest, DivisionByZeroAndOverflow) {
  Iss iss = make({
      e::addi(5, 0, 7),
      e::addi(6, 0, 0),
      e::div(7, 5, 6),
      e::rem(28, 5, 6),
      e::divu(29, 5, 6),
      e::addi(6, 0, -1),
      e::lui(5, 0x80000),       // t0 = INT32_MIN sign-extended
      e::divw(30, 5, 6),        // INT32_MIN / -1 -> INT32_MIN
      e::remw(31, 5, 6),        // -> 0
      e::ecall(),
  });
  iss.run(100);
  EXPECT_EQ(static_cast<i64>(iss.state().x[7]), -1);
  EXPECT_EQ(iss.state().x[28], 7u);
  EXPECT_EQ(iss.state().x[29], ~u64{0});
  EXPECT_EQ(static_cast<i64>(iss.state().x[30]), i64{-2147483648});
  EXPECT_EQ(iss.state().x[31], 0u);
}

TEST_F(IssTest, Word32OpsSignExtend) {
  Iss iss = make({
      e::lui(5, 0x7FFFF),      // t0 = 0x7FFFF000
      e::addiw(5, 5, 0x7FF),   // near INT32_MAX
      e::addiw(6, 5, 1),       // overflow wraps to negative
      e::ecall(),
  });
  iss.run(10);
  EXPECT_EQ(iss.state().x[5], 0x7FFFF7FFu);
  EXPECT_EQ(static_cast<i64>(iss.state().x[6]), i64{0x7FFFF800});
}

TEST_F(IssTest, ShiftsNarrowAndWide) {
  Iss iss = make({
      e::addi(5, 0, 1),
      e::slli(5, 5, 40),       // 1 << 40
      e::srli(6, 5, 8),        // logical
      e::addi(7, 0, -8),
      e::srai(7, 7, 1),        // arithmetic: -4
      e::addi(28, 0, -8),
      e::sraiw(28, 28, 1),     // -4 (32-bit)
      e::ecall(),
  });
  iss.run(10);
  EXPECT_EQ(iss.state().x[5], u64{1} << 40);
  EXPECT_EQ(iss.state().x[6], u64{1} << 32);
  EXPECT_EQ(static_cast<i64>(iss.state().x[7]), -4);
  EXPECT_EQ(static_cast<i64>(iss.state().x[28]), -4);
}

TEST_F(IssTest, MulhVariants) {
  Iss iss = make({
      e::addi(5, 0, -1),        // t0 = all ones
      e::addi(6, 0, -1),
      e::mulh(7, 5, 6),         // (-1 * -1) >> 64 = 0
      e::mulhu(28, 5, 6),       // (2^64-1)^2 >> 64 = 2^64 - 2
      e::mulhsu(29, 5, 6),      // (-1 * (2^64-1)) >> 64 = -1
      e::ecall(),
  });
  iss.run(10);
  EXPECT_EQ(iss.state().x[7], 0u);
  EXPECT_EQ(iss.state().x[28], ~u64{1});
  EXPECT_EQ(iss.state().x[29], ~u64{0});
}

TEST_F(IssTest, FpArithmetic) {
  Iss iss = make({
      e::addi(5, 0, 3),
      e::fcvt_d_l(1, 5),        // f1 = 3.0
      e::addi(5, 0, 4),
      e::fcvt_d_l(2, 5),        // f2 = 4.0
      e::fmul_d(3, 1, 2),       // 12.0
      e::fadd_d(4, 3, 2),       // 16.0
      e::fsqrt_d(5, 4),         // 4.0
      e::fmadd_d(6, 1, 2, 4),   // 3*4+16 = 28
      e::fdiv_d(7, 6, 2),       // 7.0
      e::fcvt_l_d(6, 7),        // x6 = 7
      e::feq_d(7, 5, 2),        // 4.0 == 4.0 -> 1
      e::ecall(),
  });
  iss.run(20);
  EXPECT_EQ(std::bit_cast<double>(iss.state().f[4]), 16.0);
  EXPECT_EQ(std::bit_cast<double>(iss.state().f[5]), 4.0);
  EXPECT_EQ(iss.state().x[6], 7u);
  EXPECT_EQ(iss.state().x[7], 1u);
}

TEST_F(IssTest, FpLoadStoreAndSignInjection) {
  const double value = -123.456;
  mem_.store(kDataBase, std::bit_cast<u64>(value), 8);
  Iss iss = make({
      e::lui(10, kDataBase >> 12),
      e::fld(1, 10, 0),
      e::fsgnjx_d(2, 1, 1),  // fabs
      e::fsd(2, 10, 8),
      e::ecall(),
  });
  iss.run(10);
  EXPECT_EQ(std::bit_cast<double>(mem_.load(kDataBase + 8, 8)), 123.456);
}

TEST_F(IssTest, IllegalInstructionHalts) {
  Iss iss = make({0xFFFFFFFFu});
  iss.run(10);
  EXPECT_EQ(iss.state().halt, HaltReason::kIllegalInst);
}

TEST_F(IssTest, EbreakHalts) {
  Iss iss = make({e::ebreak()});
  iss.run(10);
  EXPECT_EQ(iss.state().halt, HaltReason::kEbreak);
}

TEST_F(IssTest, RunHonoursInstructionBudget) {
  // Infinite loop: jal x0, 0 (jump to self).
  Iss iss = make({e::jal(0, 0)});
  EXPECT_EQ(iss.run(50), 50u);
  EXPECT_FALSE(iss.state().halted());
}

}  // namespace
}  // namespace safedm::isa
