// ISS semantic edge cases: the interpreter is the single source of truth
// for instruction semantics (the pipeline executes through it), so the
// corners of the ISA spec get dedicated coverage.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "safedm/isa/encode.hpp"
#include "safedm/isa/iss.hpp"
#include "safedm/mem/phys_mem.hpp"

namespace safedm::isa {
namespace {

namespace e = enc;

constexpr u64 kTextBase = 0x10000;
constexpr u64 kDataBase = 0x20000;

class IssEdgeTest : public ::testing::Test {
 protected:
  IssEdgeTest() : mem_(0, 1 << 20) {}

  isa::ArchState run(const std::vector<u32>& words, u64 budget = 1000) {
    for (std::size_t i = 0; i < words.size(); ++i)
      mem_.store(kTextBase + i * 4, words[i], 4);
    Iss iss(mem_, kTextBase);
    iss.run(budget);
    return iss.state();
  }

  mem::PhysMem mem_;
};

TEST_F(IssEdgeTest, SltiuTreatsImmediateAsUnsignedAfterSext) {
  // sltiu rd, rs, -1 compares against 0xFFFF...FFFF: true for everything
  // except all-ones.
  const auto s = run({e::addi(5, 0, 7), e::sltiu(6, 5, -1), e::addi(7, 0, -1),
                      e::sltiu(28, 7, -1), e::ecall()});
  EXPECT_EQ(s.x[6], 1u);
  EXPECT_EQ(s.x[28], 0u);
}

TEST_F(IssEdgeTest, JalrClearsLsbOfTarget) {
  // jalr to an odd address must land on target & ~1.
  const auto s = run({
      e::lui(5, kTextBase >> 12),
      e::addi(5, 5, 0x11),  // odd target: text + 16 | 1
      e::jalr(1, 5, 0),     // lands at index 4
      e::addi(6, 0, 99),    // skipped
      e::addi(7, 0, 1),
      e::ecall(),
  });
  EXPECT_EQ(s.x[6], 0u);
  EXPECT_EQ(s.x[7], 1u);
}

TEST_F(IssEdgeTest, AuipcAddsShiftedImmediateToPc) {
  const auto s = run({e::auipc(5, 1), e::ecall()});
  EXPECT_EQ(s.x[5], kTextBase + 0x1000);
}

TEST_F(IssEdgeTest, ShiftAmountsAreMasked) {
  // Register shift amounts use the low 6 bits (64-bit) / 5 bits (32-bit).
  const auto s = run({
      e::addi(5, 0, 1),
      e::addi(6, 0, 65),   // 65 & 63 == 1
      e::sll(7, 5, 6),     // 1 << 1
      e::addi(6, 0, 33),   // 33 & 31 == 1
      e::sllw(28, 5, 6),   // 1 << 1 (32-bit)
      e::ecall(),
  });
  EXPECT_EQ(s.x[7], 2u);
  EXPECT_EQ(s.x[28], 2u);
}

TEST_F(IssEdgeTest, SrawOnNegativeValue) {
  const auto s = run({
      e::lui(5, 0x80000),  // t0 = 0xFFFFFFFF80000000
      e::addi(6, 0, 4),
      e::sraw(7, 5, 6),    // arithmetic 32-bit: 0xF8000000 sext
      e::srlw(28, 5, 6),   // logical 32-bit:    0x08000000
      e::ecall(),
  });
  EXPECT_EQ(s.x[7], 0xFFFFFFFFF8000000ull);
  EXPECT_EQ(s.x[28], 0x08000000u);
}

TEST_F(IssEdgeTest, MulWrapsModulo64) {
  const auto s = run({
      e::addi(5, 0, -1),
      e::addi(6, 0, 2),
      e::mul(7, 5, 6),  // -2
      e::ecall(),
  });
  EXPECT_EQ(static_cast<i64>(s.x[7]), -2);
}

TEST_F(IssEdgeTest, BranchEqualOperandEdges) {
  const auto s = run({
      e::addi(5, 0, 3),
      e::addi(6, 0, 3),
      e::blt(5, 6, 8),    // not taken (equal)
      e::addi(7, 0, 1),   // executed
      e::bge(5, 6, 8),    // taken (equal)
      e::addi(28, 0, 1),  // skipped
      e::ecall(),
  });
  EXPECT_EQ(s.x[7], 1u);
  EXPECT_EQ(s.x[28], 0u);
}

TEST_F(IssEdgeTest, ByteAndHalfSignEdges) {
  mem_.store(kDataBase, 0x80, 1);
  mem_.store(kDataBase + 2, 0x8000, 2);
  const auto s = run({
      e::lui(10, kDataBase >> 12),
      e::lb(5, 10, 0),   // -128
      e::lbu(6, 10, 0),  // 128
      e::lh(7, 10, 2),   // -32768
      e::lhu(28, 10, 2), // 32768
      e::ecall(),
  });
  EXPECT_EQ(static_cast<i64>(s.x[5]), -128);
  EXPECT_EQ(s.x[6], 128u);
  EXPECT_EQ(static_cast<i64>(s.x[7]), -32768);
  EXPECT_EQ(s.x[28], 32768u);
}

TEST_F(IssEdgeTest, StoreTruncatesToAccessWidth) {
  const auto s = run({
      e::lui(10, kDataBase >> 12),
      e::addi(5, 0, -1),        // all ones
      e::sd(5, 10, 0),
      e::addi(6, 0, 0x12),
      e::sb(6, 10, 0),          // only low byte replaced
      e::ld(7, 10, 0),
      e::ecall(),
  });
  EXPECT_EQ(s.x[7], 0xFFFFFFFFFFFFFF12ull);
}

TEST_F(IssEdgeTest, FcvtSaturatesAndHandlesNan) {
  const double huge = 1e300;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  mem_.store(kDataBase, std::bit_cast<u64>(huge), 8);
  mem_.store(kDataBase + 8, std::bit_cast<u64>(-huge), 8);
  mem_.store(kDataBase + 16, std::bit_cast<u64>(nan), 8);
  const auto s = run({
      e::lui(10, kDataBase >> 12),
      e::fld(1, 10, 0),
      e::fld(2, 10, 8),
      e::fld(3, 10, 16),
      e::fcvt_w_d(5, 1),   // INT32_MAX
      e::fcvt_w_d(6, 2),   // INT32_MIN
      e::fcvt_w_d(7, 3),   // NaN -> INT32_MAX
      e::fcvt_l_d(28, 1),  // INT64_MAX
      e::fcvt_l_d(29, 2),  // INT64_MIN
      e::ecall(),
  });
  EXPECT_EQ(static_cast<i64>(s.x[5]), std::numeric_limits<i32>::max());
  EXPECT_EQ(static_cast<i64>(s.x[6]), std::numeric_limits<i32>::min());
  EXPECT_EQ(static_cast<i64>(s.x[7]), std::numeric_limits<i32>::max());
  EXPECT_EQ(static_cast<i64>(s.x[28]), std::numeric_limits<i64>::max());
  EXPECT_EQ(static_cast<i64>(s.x[29]), std::numeric_limits<i64>::min());
}

TEST_F(IssEdgeTest, FsgnjManipulatesRawSignBits) {
  const double neg = -2.5;
  mem_.store(kDataBase, std::bit_cast<u64>(neg), 8);
  const auto s = run({
      e::lui(10, kDataBase >> 12),
      e::fld(1, 10, 0),
      e::fsgnjx_d(2, 1, 1),  // fabs via xor of equal signs
      e::fsgnjn_d(3, 2, 2),  // negate
      e::fsd(2, 10, 8),
      e::fsd(3, 10, 16),
      e::ecall(),
  });
  EXPECT_EQ(std::bit_cast<double>(mem_.load(kDataBase + 8, 8)), 2.5);
  EXPECT_EQ(std::bit_cast<double>(mem_.load(kDataBase + 16, 8)), -2.5);
}

TEST_F(IssEdgeTest, FminFmaxBasic) {
  mem_.store(kDataBase, std::bit_cast<u64>(1.0), 8);
  mem_.store(kDataBase + 8, std::bit_cast<u64>(-3.0), 8);
  const auto s = run({
      e::lui(10, kDataBase >> 12),
      e::fld(1, 10, 0),
      e::fld(2, 10, 8),
      e::fmin_d(3, 1, 2),
      e::fmax_d(4, 1, 2),
      e::fsd(3, 10, 16),
      e::fsd(4, 10, 24),
      e::ecall(),
  });
  (void)s;
  EXPECT_EQ(std::bit_cast<double>(mem_.load(kDataBase + 16, 8)), -3.0);
  EXPECT_EQ(std::bit_cast<double>(mem_.load(kDataBase + 24, 8)), 1.0);
}

TEST_F(IssEdgeTest, FmvMovesRawBits) {
  // Bit round-trip through the FP file must preserve NaN payloads exactly.
  const u64 pattern = 0x7FF8DEADBEEF0001ull;
  mem_.store(kDataBase, pattern, 8);
  const auto s = run({
      e::lui(10, kDataBase >> 12),
      e::ld(5, 10, 0),
      e::fmv_d_x(1, 5),
      e::fmv_x_d(6, 1),
      e::ecall(),
  });
  EXPECT_EQ(s.x[6], pattern);
}

TEST_F(IssEdgeTest, FenceIsANoOpForSingleHart) {
  const auto s = run({e::addi(5, 0, 1), e::fence(), e::addi(5, 5, 1), e::ecall()});
  EXPECT_EQ(s.x[5], 2u);
  EXPECT_EQ(s.instret, 4u);
}

TEST_F(IssEdgeTest, FmaddIsFused) {
  // fma(a, b, c) with values where fused and unfused differ: a*a has a
  // 2^-60 tail that the separate multiply rounds away but the fused form
  // keeps (2^-29 * (1 + 2^-31) is exactly representable).
  const double a = 1.0 + 0x1.0p-30;
  mem_.store(kDataBase, std::bit_cast<u64>(a), 8);
  mem_.store(kDataBase + 8, std::bit_cast<u64>(a), 8);
  mem_.store(kDataBase + 16, std::bit_cast<u64>(-1.0), 8);
  const auto s = run({
      e::lui(10, kDataBase >> 12),
      e::fld(1, 10, 0),
      e::fld(2, 10, 8),
      e::fld(3, 10, 16),
      e::fmadd_d(4, 1, 2, 3),  // a*a - 1, fused
      e::fmul_d(5, 1, 2),
      e::fadd_d(5, 5, 3),      // a*a - 1, unfused
      e::fsd(4, 10, 24),
      e::fsd(5, 10, 32),
      e::ecall(),
  });
  (void)s;
  const double fused = std::bit_cast<double>(mem_.load(kDataBase + 24, 8));
  const double unfused = std::bit_cast<double>(mem_.load(kDataBase + 32, 8));
  EXPECT_EQ(fused, std::fma(a, a, -1.0));
  EXPECT_NE(fused, unfused);  // the fused form keeps the low bits
}

}  // namespace
}  // namespace safedm::isa
