#include <gtest/gtest.h>

#include "safedm/isa/disasm.hpp"
#include "safedm/isa/encode.hpp"

namespace safedm::isa {
namespace {

namespace e = enc;

TEST(Disasm, RendersCommonForms) {
  EXPECT_EQ(disassemble(e::addi(5, 6, -1)), "addi x5, x6, -1");
  EXPECT_EQ(disassemble(e::add(1, 2, 3)), "add x1, x2, x3");
  EXPECT_EQ(disassemble(e::ld(11, 10, 8)), "ld x11, 8(x10)");
  EXPECT_EQ(disassemble(e::sd(11, 10, -16)), "sd x11, -16(x10)");
  EXPECT_EQ(disassemble(e::beq(1, 2, 64)), "beq x1, x2, 64");
  EXPECT_EQ(disassemble(e::jal(1, -4)), "jal x1, -4");
  EXPECT_EQ(disassemble(e::lui(7, 0x12345)), "lui x7, 0x12345");
  EXPECT_EQ(disassemble(e::ecall()), "ecall");
  EXPECT_EQ(disassemble(e::fmadd_d(1, 2, 3, 4)), "fmadd.d f1, f2, f3, f4");
  EXPECT_EQ(disassemble(e::fld(1, 10, 16)), "fld f1, 16(x10)");
  EXPECT_EQ(disassemble(e::fsd(1, 10, 16)), "fsd f1, 16(x10)");
  EXPECT_EQ(disassemble(e::fsqrt_d(1, 2)), "fsqrt.d f1, f2");
}

TEST(Disasm, InvalidRendersAsWord) {
  EXPECT_EQ(disassemble(u32{0}), ".word 0x0");
}

TEST(Disasm, EveryTableEntryRendersItsMnemonic) {
  for (const InstInfo& ii : inst_table()) {
    DecodedInst inst;
    inst.mnemonic = ii.mnemonic;
    inst.raw = ii.match;
    const std::string text = disassemble(inst);
    EXPECT_EQ(text.rfind(std::string(ii.name), 0), 0u)
        << "disasm of " << ii.name << " -> " << text;
  }
}

}  // namespace
}  // namespace safedm::isa
