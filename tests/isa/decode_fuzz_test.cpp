// Decoder robustness fuzzing: any 32-bit word must decode without crashing,
// the decode must be consistent with the matched table entry, and the
// disassembler must render every outcome.
#include <gtest/gtest.h>

#include "safedm/fuzz/generator.hpp"
#include "safedm/isa/decode.hpp"
#include "safedm/isa/disasm.hpp"

namespace safedm::isa {
namespace {

TEST(DecodeFuzz, RandomWordsDecodeConsistently) {
  fuzz::InstWordFuzzer words(0xF00DF00D);
  for (int i = 0; i < 200'000; ++i) {
    const u32 raw = words.raw_word();
    const DecodedInst inst = decode(raw);
    if (!inst.valid()) continue;
    const InstInfo& ii = inst.info();
    // The matched entry's mask/match must hold for the raw word.
    EXPECT_EQ(raw & ii.mask, ii.match) << std::hex << raw;
    // Register fields must agree with the bit positions.
    EXPECT_EQ(inst.rd, (raw >> 7) & 0x1F);
    EXPECT_EQ(inst.rs1, (raw >> 15) & 0x1F);
    EXPECT_EQ(inst.rs2, (raw >> 20) & 0x1F);
  }
}

TEST(DecodeFuzz, BiasedWordsAlwaysDecodeValid) {
  // Valid-by-construction words (random table entry, random free bits)
  // exercise every operand/immediate extraction path without the ~99%
  // invalid-word rejection of uniform fuzzing.
  fuzz::InstWordFuzzer words(0xB1A5ED);
  for (int i = 0; i < 100'000; ++i) {
    const u32 raw = words.biased_word();
    const DecodedInst inst = decode(raw);
    ASSERT_TRUE(inst.valid()) << std::hex << raw;
    const InstInfo& ii = inst.info();
    EXPECT_EQ(raw & ii.mask, ii.match) << std::hex << raw;
    EXPECT_FALSE(disassemble(inst).empty());
  }
}

TEST(DecodeFuzz, DisassemblerNeverCrashes) {
  fuzz::InstWordFuzzer words(0xDECAFBAD);
  for (int i = 0; i < 50'000; ++i) {
    const std::string text = disassemble(words.raw_word());
    EXPECT_FALSE(text.empty());
  }
}

TEST(DecodeFuzz, ImmediateSignBitsRoundTrip) {
  // For every I/S/B/U/J entry, the decoded immediate of the all-ones
  // immediate-field pattern must be negative (sign extension applied).
  for (const InstInfo& ii : inst_table()) {
    u32 raw = ii.match;
    switch (ii.format) {
      case Format::kI:
        if (ii.mask == 0xFFFFFFFFu) continue;  // ecall/ebreak
        raw |= 0xFFF00000u & ~ii.mask;
        break;
      case Format::kS:
        raw |= (0xFE000000u | 0x00000F80u) & ~ii.mask;
        break;
      case Format::kB:
      case Format::kJ:
      case Format::kU:
        raw |= 0x80000000u;
        break;
      default:
        continue;
    }
    const DecodedInst inst = decode(raw);
    if (inst.mnemonic != ii.mnemonic) continue;  // pattern hit another entry
    EXPECT_LT(inst.imm, 0) << ii.name;
  }
}

TEST(DecodeFuzz, CanonicalEncodingsOfAllEntriesAreValid) {
  for (const InstInfo& ii : inst_table()) {
    const DecodedInst inst = decode(ii.match);
    EXPECT_EQ(inst.mnemonic, ii.mnemonic) << ii.name;
    EXPECT_FALSE(disassemble(inst).empty());
  }
}

}  // namespace
}  // namespace safedm::isa
