// Decoder robustness fuzzing: any 32-bit word must decode without crashing,
// the decode must be consistent with the matched table entry, and the
// disassembler must render every outcome.
#include <gtest/gtest.h>

#include "safedm/common/rng.hpp"
#include "safedm/isa/decode.hpp"
#include "safedm/isa/disasm.hpp"

namespace safedm::isa {
namespace {

TEST(DecodeFuzz, RandomWordsDecodeConsistently) {
  Xoshiro256 rng(0xF00DF00D);
  for (int i = 0; i < 200'000; ++i) {
    const u32 raw = static_cast<u32>(rng.next());
    const DecodedInst inst = decode(raw);
    if (!inst.valid()) continue;
    const InstInfo& ii = inst.info();
    // The matched entry's mask/match must hold for the raw word.
    EXPECT_EQ(raw & ii.mask, ii.match) << std::hex << raw;
    // Register fields must agree with the bit positions.
    EXPECT_EQ(inst.rd, (raw >> 7) & 0x1F);
    EXPECT_EQ(inst.rs1, (raw >> 15) & 0x1F);
    EXPECT_EQ(inst.rs2, (raw >> 20) & 0x1F);
  }
}

TEST(DecodeFuzz, DisassemblerNeverCrashes) {
  Xoshiro256 rng(0xDECAFBAD);
  for (int i = 0; i < 50'000; ++i) {
    const u32 raw = static_cast<u32>(rng.next());
    const std::string text = disassemble(raw);
    EXPECT_FALSE(text.empty());
  }
}

TEST(DecodeFuzz, ImmediateSignBitsRoundTrip) {
  // For every I/S/B/U/J entry, the decoded immediate of the all-ones
  // immediate-field pattern must be negative (sign extension applied).
  for (const InstInfo& ii : inst_table()) {
    u32 raw = ii.match;
    switch (ii.format) {
      case Format::kI:
        if (ii.mask == 0xFFFFFFFFu) continue;  // ecall/ebreak
        raw |= 0xFFF00000u & ~ii.mask;
        break;
      case Format::kS:
        raw |= (0xFE000000u | 0x00000F80u) & ~ii.mask;
        break;
      case Format::kB:
      case Format::kJ:
      case Format::kU:
        raw |= 0x80000000u;
        break;
      default:
        continue;
    }
    const DecodedInst inst = decode(raw);
    if (inst.mnemonic != ii.mnemonic) continue;  // pattern hit another entry
    EXPECT_LT(inst.imm, 0) << ii.name;
  }
}

TEST(DecodeFuzz, CanonicalEncodingsOfAllEntriesAreValid) {
  for (const InstInfo& ii : inst_table()) {
    const DecodedInst inst = decode(ii.match);
    EXPECT_EQ(inst.mnemonic, ii.mnemonic) << ii.name;
    EXPECT_FALSE(disassemble(inst).empty());
  }
}

}  // namespace
}  // namespace safedm::isa
