#include <gtest/gtest.h>

#include "safedm/isa/decode.hpp"
#include "safedm/isa/encode.hpp"

namespace safedm::isa {
namespace {

namespace e = enc;

TEST(Encode, MatchesKnownWords) {
  // Cross-checked against riscv64 binutils output.
  EXPECT_EQ(e::addi(0, 0, 0), 0x00000013u);            // nop
  EXPECT_EQ(e::addi(10, 10, 1), 0x00150513u);          // addi a0, a0, 1
  EXPECT_EQ(e::add(5, 6, 7), 0x007302B3u);             // add t0, t1, t2
  EXPECT_EQ(e::sub(5, 6, 7), 0x407302B3u);             // sub t0, t1, t2
  EXPECT_EQ(e::lui(10, 0x12345), 0x12345537u);         // lui a0, 0x12345
  EXPECT_EQ(e::jal(1, 2048), 0x001000EFu);             // jal ra, .+2048 (imm[11] -> bit 20)
  EXPECT_EQ(e::jal(1, 16), 0x010000EFu);               // jal ra, .+16
  EXPECT_EQ(e::ld(11, 10, 8), 0x00853583u);            // ld a1, 8(a0)
  EXPECT_EQ(e::sd(11, 10, 8), 0x00B53423u);            // sd a1, 8(a0)
  EXPECT_EQ(e::beq(10, 11, -4), 0xFEB50EE3u);          // beq a0, a1, .-4
  EXPECT_EQ(e::ecall(), 0x00000073u);
  EXPECT_EQ(e::mul(5, 6, 7), 0x027302B3u);
  EXPECT_EQ(e::fadd_d(1, 2, 3), 0x023100D3u);          // fadd.d f1, f2, f3
}

TEST(Decode, RoundTripsEveryTableEntryWithRandomOperands) {
  // For every instruction in the table, build a representative encoding via
  // the table's match plus operand fields and verify decode returns the
  // same mnemonic and fields.
  for (const InstInfo& ii : inst_table()) {
    const u8 rd = 5, rs1 = 6, rs2 = 7, rs3 = 8;
    u32 raw = ii.match;
    if (ii.mask != 0xFFFFFFFFu) {
      raw |= (u32{rd} << 7) & ~ii.mask & 0x00000F80u;
      raw |= (u32{rs1} << 15) & ~ii.mask & 0x000F8000u;
      raw |= (u32{rs2} << 20) & ~ii.mask & 0x01F00000u;
      raw |= (u32{rs3} << 27) & ~ii.mask & 0xF8000000u;
    }
    const DecodedInst inst = decode(raw);
    EXPECT_EQ(inst.mnemonic, ii.mnemonic) << ii.name << " raw=0x" << std::hex << raw
                                          << " decoded as " << inst.info().name;
  }
}

TEST(Decode, ImmediateFormats) {
  EXPECT_EQ(decode(enc::addi(1, 2, -5)).imm, -5);
  EXPECT_EQ(decode(enc::addi(1, 2, 2047)).imm, 2047);
  EXPECT_EQ(decode(enc::sd(3, 4, -16)).imm, -16);
  EXPECT_EQ(decode(enc::beq(1, 2, -4096)).imm, -4096);
  EXPECT_EQ(decode(enc::beq(1, 2, 4094)).imm, 4094);
  EXPECT_EQ(decode(enc::jal(0, -1048576)).imm, -1048576);
  EXPECT_EQ(decode(enc::jal(0, 1048574)).imm, 1048574);
  EXPECT_EQ(decode(enc::lui(1, 0x80000)).imm, i64{-2147483648});  // sign-extended upper
  EXPECT_EQ(decode(enc::lui(1, 1)).imm, 4096);
  EXPECT_EQ(decode(enc::slli(1, 2, 63)).imm, 63);
  EXPECT_EQ(decode(enc::sraiw(1, 2, 31)).imm, 31);
}

TEST(Decode, RegistersExtracted) {
  const DecodedInst inst = decode(enc::add(1, 2, 3));
  EXPECT_EQ(inst.rd, 1);
  EXPECT_EQ(inst.rs1, 2);
  EXPECT_EQ(inst.rs2, 3);
  const DecodedInst fma = decode(enc::fmadd_d(4, 5, 6, 7));
  EXPECT_EQ(fma.rd, 4);
  EXPECT_EQ(fma.rs1, 5);
  EXPECT_EQ(fma.rs2, 6);
  EXPECT_EQ(fma.rs3, 7);
}

TEST(Decode, UnknownEncodingIsInvalid) {
  EXPECT_FALSE(decode(0x00000000u).valid());
  EXPECT_FALSE(decode(0xFFFFFFFFu).valid());
  EXPECT_TRUE(decode(kNopEncoding).valid());
}

TEST(Encode, RangeChecksThrow) {
  EXPECT_THROW(e::addi(1, 2, 4096), CheckError);
  EXPECT_THROW(e::addi(1, 2, -2049), CheckError);
  EXPECT_THROW(e::beq(1, 2, 3), CheckError);      // odd offset
  EXPECT_THROW(e::beq(1, 2, 4096), CheckError);   // too far
  EXPECT_THROW(e::slli(1, 2, 64), CheckError);
  EXPECT_THROW(e::add(32, 0, 0), CheckError);     // bad register
}

TEST(InstInfo, OperandFlagsConsistentWithClasses) {
  for (const InstInfo& ii : inst_table()) {
    if (ii.is_store()) {
      EXPECT_TRUE(ii.reads_rs1() && ii.reads_rs2()) << ii.name;
      EXPECT_FALSE(ii.writes_rd()) << ii.name;
    }
    if (ii.is_load()) {
      EXPECT_TRUE(ii.reads_rs1() && ii.writes_rd()) << ii.name;
      EXPECT_FALSE(ii.rs1_fp()) << ii.name;  // base address is integer
    }
    if (ii.is_branch()) {
      EXPECT_FALSE(ii.writes_rd()) << ii.name;
    }
  }
}

TEST(InstInfo, MatchMaskConsistent) {
  for (const InstInfo& ii : inst_table()) {
    EXPECT_EQ(ii.match & ~ii.mask, 0u) << ii.name << ": match has bits outside mask";
  }
}

TEST(InstInfo, NoAmbiguousDecodes) {
  // No two table entries may both match the same canonical encoding.
  for (const InstInfo& a : inst_table()) {
    for (const InstInfo& b : inst_table()) {
      if (a.mnemonic == b.mnemonic) continue;
      if ((a.match & b.mask) == b.match && (b.match & a.mask) == a.match)
        FAIL() << a.name << " and " << b.name << " are mutually ambiguous";
    }
  }
}

}  // namespace
}  // namespace safedm::isa
