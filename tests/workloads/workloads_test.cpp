// Workload validation: every benchmark must (a) terminate cleanly on the
// golden ISS, (b) produce a non-trivial result checksum, (c) execute the
// same on the pipelined core (same checksum, same instruction count), and
// (d) be deterministic across builds. Parameterized over the registry.
#include <gtest/gtest.h>

#include "safedm/bus/ahb.hpp"
#include "safedm/bus/l2_frontend.hpp"
#include "safedm/core/core.hpp"
#include "safedm/isa/iss.hpp"
#include "safedm/mem/phys_mem.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::workloads {
namespace {

constexpr u64 kTextBase = 0x10000;
constexpr u64 kDataBase = 0x200000;
constexpr u64 kMemSize = 16 << 20;

struct RunResult {
  isa::HaltReason halt = isa::HaltReason::kRunning;
  u64 checksum = 0;
  u64 instret = 0;
  u64 cycles = 0;
};

void load(mem::PhysMem& mem, const assembler::Program& program) {
  for (std::size_t i = 0; i < program.text.size(); ++i)
    mem.store(kTextBase + i * 4, program.text[i], 4);
  mem.write_block(kDataBase, program.data);
}

RunResult run_iss(const assembler::Program& program) {
  mem::PhysMem mem(0, kMemSize);
  load(mem, program);
  isa::Iss iss(mem, kTextBase);
  iss.state().set_x(assembler::A0, kDataBase);
  iss.state().set_x(assembler::SP, kDataBase + 0x100000);
  iss.run(100'000'000);
  return RunResult{iss.state().halt, mem.load(kDataBase + kResultOffset, 8),
                   iss.state().instret, 0};
}

RunResult run_pipeline(const assembler::Program& program) {
  mem::PhysMem mem(0, kMemSize);
  load(mem, program);
  bus::L2Frontend l2(mem::CacheConfig{.size_bytes = 128 * 1024, .ways = 8, .line_bytes = 32},
                     bus::L2Timing{});
  bus::AhbBus bus(l2);
  core::Core core(core::CoreConfig{}, mem, bus, "core0");
  core.reset(kTextBase, kDataBase, kDataBase + 0x100000);
  core::CoreTapFrame frame;
  u64 cycles = 0;
  while (!core.halted() && cycles < 50'000'000) {
    core.step(frame);
    bus.step();
    ++cycles;
  }
  return RunResult{core.halt_reason(), mem.load(kDataBase + kResultOffset, 8),
                   core.arch().instret, cycles};
}

class WorkloadTest : public ::testing::TestWithParam<WorkloadInfo> {};

TEST_P(WorkloadTest, TerminatesCleanlyOnIss) {
  const RunResult result = run_iss(GetParam().build(1));
  EXPECT_EQ(result.halt, isa::HaltReason::kEcall) << GetParam().name;
  EXPECT_GT(result.instret, 500u) << GetParam().name << " is trivially short";
}

TEST_P(WorkloadTest, ChecksumIsNontrivial) {
  const RunResult result = run_iss(GetParam().build(1));
  EXPECT_NE(result.checksum, 0u) << GetParam().name;
}

TEST_P(WorkloadTest, DeterministicAcrossBuilds) {
  const RunResult a = run_iss(GetParam().build(1));
  const RunResult b = run_iss(GetParam().build(1));
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.instret, b.instret);
}

TEST_P(WorkloadTest, PipelineMatchesIssArchitecturally) {
  const assembler::Program program = GetParam().build(1);
  const RunResult golden = run_iss(program);
  const RunResult piped = run_pipeline(program);
  EXPECT_EQ(piped.halt, isa::HaltReason::kEcall) << GetParam().name;
  EXPECT_EQ(piped.checksum, golden.checksum) << GetParam().name;
  EXPECT_EQ(piped.instret, golden.instret) << GetParam().name;
}

TEST_P(WorkloadTest, ScaleGrowsWork) {
  const RunResult small = run_iss(GetParam().build(1));
  const RunResult big = run_iss(GetParam().build(2));
  EXPECT_GT(big.instret, small.instret) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadTest, ::testing::ValuesIn(registry()),
                         [](const ::testing::TestParamInfo<WorkloadInfo>& info) {
                           return info.param.name;
                         });

INSTANTIATE_TEST_SUITE_P(ExtendedBenchmarks, WorkloadTest,
                         ::testing::ValuesIn(registry_extended()),
                         [](const ::testing::TestParamInfo<WorkloadInfo>& info) {
                           return info.param.name;
                         });

TEST(WorkloadRegistry, ExtendedSetPresentAndDisjoint) {
  EXPECT_EQ(registry_extended().size(), 8u);
  for (const auto& extended : registry_extended())
    for (const auto& base : registry()) EXPECT_NE(extended.name, base.name);
}

TEST(WorkloadRegistry, HasAllTwentyNinePaperBenchmarks) {
  EXPECT_EQ(registry().size(), 29u);
}

TEST(WorkloadRegistry, BuildByNameMatchesRegistry) {
  const assembler::Program p = build("bitcount", 1);
  EXPECT_EQ(p.name, "bitcount");
  EXPECT_THROW(build("nonexistent"), CheckError);
}

TEST(WorkloadRegistry, NamesAreUniqueAndSorted) {
  const auto& reg = registry();
  for (std::size_t i = 1; i < reg.size(); ++i)
    EXPECT_LT(reg[i - 1].name, reg[i].name) << "registry must stay in Table I order";
}

}  // namespace
}  // namespace safedm::workloads
