#include "safedm/hwcost/hwcost.hpp"

#include <gtest/gtest.h>

namespace safedm::hwcost {
namespace {

monitor::SafeDmConfig paper_point() {
  monitor::SafeDmConfig c;
  c.data_fifo_depth = 8;
  c.num_ports = 4;
  c.compare = monitor::CompareMode::kRaw;
  return c;
}

TEST(HwCost, PaperDesignPointReproducesSectionVD) {
  const CostEstimate est = estimate(paper_point());
  // Paper: ~4,000 LUTs, 3.4% of the MPSoC, 0.019 W (<1%) extra power.
  EXPECT_NEAR(static_cast<double>(est.luts_total), 4000.0, 400.0);
  EXPECT_NEAR(est.area_fraction, 0.034, 0.005);
  EXPECT_NEAR(est.power_watts, 0.019, 0.004);
  EXPECT_LT(est.power_fraction, 0.01);
}

TEST(HwCost, StorageBitsArithmetic) {
  const CostEstimate est = estimate(paper_point());
  EXPECT_EQ(est.ds_bits, 2u * 4u * 8u * 65u);
  EXPECT_EQ(est.is_bits, 2u * 7u * 2u * 33u);
  EXPECT_EQ(est.storage_bits, est.ds_bits + est.is_bits);
}

TEST(HwCost, CostGrowsWithFifoDepth) {
  monitor::SafeDmConfig small = paper_point();
  small.data_fifo_depth = 4;
  monitor::SafeDmConfig big = paper_point();
  big.data_fifo_depth = 16;
  EXPECT_LT(estimate(small).luts_total, estimate(big).luts_total);
  EXPECT_LT(estimate(small).power_watts, estimate(big).power_watts);
}

TEST(HwCost, CostGrowsWithPortCount) {
  monitor::SafeDmConfig few = paper_point();
  few.num_ports = 2;
  monitor::SafeDmConfig many = paper_point();
  many.num_ports = 6;
  EXPECT_LT(estimate(few).luts_total, estimate(many).luts_total);
}

TEST(HwCost, CrcCompressionShrinksComparatorNotStorage) {
  monitor::SafeDmConfig raw = paper_point();
  monitor::SafeDmConfig crc = paper_point();
  crc.compare = monitor::CompareMode::kCrc32;
  const CostEstimate raw_est = estimate(raw);
  const CostEstimate crc_est = estimate(crc);
  EXPECT_EQ(raw_est.storage_bits, crc_est.storage_bits);
  EXPECT_LT(crc_est.compare_bits, raw_est.compare_bits);
  EXPECT_LT(crc_est.luts_compare, raw_est.luts_compare);
}

TEST(HwCost, LutBreakdownSumsToTotal) {
  const CostEstimate est = estimate(paper_point());
  EXPECT_EQ(est.luts_total, est.luts_storage + est.luts_compare + est.luts_control);
}

TEST(HwCost, CalibrationOverride) {
  Calibration cal;
  cal.baseline_mpsoc_luts = 1'000'000;  // big SoC: relative cost shrinks
  const CostEstimate est = estimate(paper_point(), cal);
  EXPECT_LT(est.area_fraction, 0.01);
}

}  // namespace
}  // namespace safedm::hwcost
