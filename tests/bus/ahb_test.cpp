#include "safedm/bus/ahb.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "safedm/bus/l2_frontend.hpp"
#include "safedm/common/check.hpp"

namespace safedm::bus {
namespace {

/// Slave with a fixed per-transaction latency.
class FixedSlave : public AhbSlave {
 public:
  explicit FixedSlave(unsigned latency) : latency_(latency) {}
  unsigned serve(const BusTxn&) override { return latency_; }

 private:
  unsigned latency_;
};

/// Master recording completion order.
class RecordingMaster : public AhbCompletion {
 public:
  void bus_complete(const BusTxn& txn) override { completed.push_back(txn.tag); }
  std::vector<u32> completed;
};

TEST(AhbBus, SingleTransactionLatency) {
  FixedSlave slave(5);
  AhbBus bus(slave);
  RecordingMaster m;
  const int id = bus.attach(&m, "m0");
  bus.request(id, BusTxn{BusTxn::Kind::kReadLine, 0x1000, 1});
  unsigned cycles = 0;
  while (m.completed.empty()) {
    bus.step();
    ++cycles;
    ASSERT_LT(cycles, 100u);
  }
  // 1 cycle grant + 5 cycles occupancy.
  EXPECT_EQ(cycles, 6u);
  EXPECT_EQ(m.completed[0], 1u);
}

TEST(AhbBus, SerializesSimultaneousRequests) {
  FixedSlave slave(4);
  AhbBus bus(slave);
  RecordingMaster m0, m1;
  const int id0 = bus.attach(&m0, "core0");
  const int id1 = bus.attach(&m1, "core1");
  bus.request(id0, BusTxn{BusTxn::Kind::kReadLine, 0x1000, 10});
  bus.request(id1, BusTxn{BusTxn::Kind::kReadLine, 0x2000, 20});
  for (int i = 0; i < 30 && (m0.completed.empty() || m1.completed.empty()); ++i) bus.step();
  ASSERT_EQ(m0.completed.size(), 1u);
  ASSERT_EQ(m1.completed.size(), 1u);
  // Master 0 wins the first arbitration (rr starts at 0); master 1 waited.
  EXPECT_GT(bus.stats().wait_cycles[1], bus.stats().wait_cycles[0]);
}

TEST(AhbBus, FirstGrantBiasFlipsWinner) {
  FixedSlave slave(4);
  AhbBus bus(slave, /*first_grant_bias=*/1);
  RecordingMaster m0, m1;
  const int id0 = bus.attach(&m0, "core0");
  const int id1 = bus.attach(&m1, "core1");
  bus.request(id0, BusTxn{BusTxn::Kind::kReadLine, 0x1000, 10});
  bus.request(id1, BusTxn{BusTxn::Kind::kReadLine, 0x2000, 20});
  while (m1.completed.empty()) bus.step();
  EXPECT_TRUE(m0.completed.empty());  // master 1 granted first
}

TEST(AhbBus, RoundRobinAlternatesUnderContention) {
  FixedSlave slave(2);
  AhbBus bus(slave);
  RecordingMaster m0, m1;
  const int id0 = bus.attach(&m0, "core0");
  const int id1 = bus.attach(&m1, "core1");
  // Keep both masters saturated; completions must alternate.
  std::vector<u32> order;
  u32 next_tag0 = 100, next_tag1 = 200;
  bus.request(id0, BusTxn{BusTxn::Kind::kReadLine, 0, next_tag0});
  bus.request(id1, BusTxn{BusTxn::Kind::kReadLine, 0, next_tag1});
  for (int cycle = 0; cycle < 60; ++cycle) {
    bus.step();
    if (!m0.completed.empty()) {
      order.push_back(0);
      m0.completed.clear();
      bus.request(id0, BusTxn{BusTxn::Kind::kReadLine, 0, ++next_tag0});
    }
    if (!m1.completed.empty()) {
      order.push_back(1);
      m1.completed.clear();
      bus.request(id1, BusTxn{BusTxn::Kind::kReadLine, 0, ++next_tag1});
    }
  }
  ASSERT_GE(order.size(), 6u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_NE(order[i], order[i - 1]) << "round robin must alternate at index " << i;
}

TEST(AhbBus, DoublePendingRequestThrows) {
  FixedSlave slave(3);
  AhbBus bus(slave);
  RecordingMaster m;
  const int id = bus.attach(&m, "m");
  bus.request(id, BusTxn{});
  EXPECT_THROW(bus.request(id, BusTxn{}), CheckError);
}

TEST(AhbBus, HasPendingTracksLifecycle) {
  FixedSlave slave(3);
  AhbBus bus(slave);
  RecordingMaster m;
  const int id = bus.attach(&m, "m");
  EXPECT_FALSE(bus.has_pending(id));
  bus.request(id, BusTxn{BusTxn::Kind::kReadLine, 0, 1});
  EXPECT_TRUE(bus.has_pending(id));
  while (m.completed.empty()) bus.step();
  EXPECT_FALSE(bus.has_pending(id));
}

TEST(L2Frontend, MissThenHitLatency) {
  L2Frontend l2(mem::CacheConfig{.size_bytes = 1024, .ways = 2, .line_bytes = 32},
                L2Timing{.hit_cycles = 8, .miss_cycles = 30, .writeback_cycles = 6});
  EXPECT_EQ(l2.serve(BusTxn{BusTxn::Kind::kReadLine, 0x1000, 0}), 30u);
  EXPECT_EQ(l2.serve(BusTxn{BusTxn::Kind::kReadLine, 0x1000, 0}), 8u);
}

TEST(L2Frontend, WriteAllocatesDirtyAndEvictionCostsExtra) {
  L2Frontend l2(mem::CacheConfig{.size_bytes = 64, .ways = 1, .line_bytes = 32},
                L2Timing{.hit_cycles = 8, .miss_cycles = 30, .writeback_cycles = 6});
  // Write-miss allocates dirty.
  EXPECT_EQ(l2.serve(BusTxn{BusTxn::Kind::kWriteLine, 0x0000, 0}), 30u);
  // Read of a conflicting line evicts the dirty victim: 30 + 6.
  EXPECT_EQ(l2.serve(BusTxn{BusTxn::Kind::kReadLine, 0x0040, 0}), 36u);
}

TEST(L2Frontend, WriteHitMarksDirty) {
  L2Frontend l2(mem::CacheConfig{.size_bytes = 64, .ways = 1, .line_bytes = 32}, L2Timing{});
  l2.serve(BusTxn{BusTxn::Kind::kReadLine, 0x0000, 0});   // clean fill
  l2.serve(BusTxn{BusTxn::Kind::kWriteLine, 0x0000, 0});  // hit, marks dirty
  const unsigned lat = l2.serve(BusTxn{BusTxn::Kind::kReadLine, 0x0040, 0});
  EXPECT_EQ(lat, L2Timing{}.miss_cycles + L2Timing{}.writeback_cycles);
}

}  // namespace
}  // namespace safedm::bus
