#include "safedm/bus/apb.hpp"

#include <gtest/gtest.h>

#include <map>

#include "safedm/common/check.hpp"

namespace safedm::bus {
namespace {

class ScratchDevice : public ApbDevice {
 public:
  u32 apb_read(u32 offset) override { return regs_[offset]; }
  void apb_write(u32 offset, u32 value) override { regs_[offset] = value; }

 private:
  std::map<u32, u32> regs_;
};

TEST(ApbBus, RoutesByAddress) {
  ApbBus bus;
  ScratchDevice d0, d1;
  bus.map(0x8000, 0x100, &d0, "dev0");
  bus.map(0x9000, 0x100, &d1, "dev1");
  bus.write(0x8004, 11);
  bus.write(0x9004, 22);
  EXPECT_EQ(bus.read(0x8004), 11u);
  EXPECT_EQ(bus.read(0x9004), 22u);
}

TEST(ApbBus, OffsetsAreBaseRelative) {
  ApbBus bus;
  ScratchDevice dev;
  bus.map(0x8000, 0x100, &dev, "dev");
  bus.write(0x8000, 7);
  EXPECT_EQ(dev.apb_read(0), 7u);
}

TEST(ApbBus, UnmappedAccessThrows) {
  ApbBus bus;
  ScratchDevice dev;
  bus.map(0x8000, 0x100, &dev, "dev");
  EXPECT_THROW(bus.read(0x7FFC), CheckError);
  EXPECT_THROW(bus.write(0x8100, 0), CheckError);
  EXPECT_TRUE(bus.decodes(0x80FC));
  EXPECT_FALSE(bus.decodes(0x8100));
}

TEST(ApbBus, OverlappingMapThrows) {
  ApbBus bus;
  ScratchDevice d0, d1;
  bus.map(0x8000, 0x100, &d0, "dev0");
  EXPECT_THROW(bus.map(0x80F0, 0x20, &d1, "dev1"), CheckError);
}

TEST(ApbBus, UnalignedAccessThrows) {
  ApbBus bus;
  ScratchDevice dev;
  bus.map(0x8000, 0x100, &dev, "dev");
  EXPECT_THROW(bus.read(0x8002), CheckError);
  EXPECT_THROW(bus.map(0x8102, 0x10, &dev, "dev2"), CheckError);
}

}  // namespace
}  // namespace safedm::bus
