#include "safedm/dcls/dcls.hpp"

#include <gtest/gtest.h>

#include "safedm/workloads/workloads.hpp"

namespace safedm::dcls {
namespace {

struct Rig {
  explicit Rig(bool shared_data = true) : soc([&] {
    soc::SocConfig config;
    // DCLS replicates inputs: model with a shared data image so both
    // cores' architectural streams are value-identical.
    config.shared_data = shared_data;
    return config;
  }()),
        checker(DclsConfig{}) {
    soc.add_observer(&checker);
  }
  soc::MpSoc soc;
  DclsChecker checker;
};

TEST(Dcls, CleanRedundantRunHasNoMismatches) {
  // The shared-data lockstep model is valid for tasks that do not mutate
  // their input (true DCLS never lets the shadow core drive the bus, so a
  // live shared array would be a modelling artifact): bitcount only reads
  // its input and writes one result word.
  Rig rig;
  rig.soc.load_redundant(workloads::build("bitcount", 1));
  rig.soc.run(30'000'000);
  ASSERT_TRUE(rig.soc.all_halted());
  EXPECT_FALSE(rig.checker.error_detected());
  EXPECT_GT(rig.checker.stats().compared_commits, 1000u);
}

TEST(Dcls, StaggeredStartStillComparesInOrder) {
  // The commit-stream comparator tolerates timing skew (here: a 100-nop
  // prelude); the nops themselves differ from program instructions, so a
  // naive stream compare would mismatch — the checker is fed the prelude
  // too, and the mismatch on the prelude region is expected. This test
  // documents that DCLS requires *identical instruction streams* (the
  // constraint SafeDM removes, paper III-B4).
  Rig rig;
  rig.soc.load_redundant(workloads::build("bsort", 1), /*stagger_nops=*/100);
  rig.soc.run(30'000'000);
  ASSERT_TRUE(rig.soc.all_halted());
  EXPECT_TRUE(rig.checker.error_detected());  // nop prelude != program stream
}

TEST(Dcls, SingleFaultIsDetected) {
  Rig rig;
  rig.soc.load_redundant(workloads::build("isqrt", 1));
  // Run a while, flip a bit in ONE core, keep running.
  for (int i = 0; i < 2000; ++i) rig.soc.step();
  rig.soc.core(1).flip_architectural_bit(9, 7);
  rig.soc.run(30'000'000);
  ASSERT_TRUE(rig.soc.all_halted() || rig.checker.error_detected());
  EXPECT_TRUE(rig.checker.error_detected());
}

TEST(Dcls, IdenticalCcfFaultEscapesTheComparator) {
  // The motivating failure: flip the SAME bit in BOTH cores while their
  // state is identical. The commit streams stay equal, DCLS sees nothing,
  // and the (shared-value) result is silently wrong.
  Rig rig;
  rig.soc.load_redundant(workloads::build("bitcount", 1));
  for (int i = 0; i < 2000; ++i) rig.soc.step();
  rig.soc.core(0).flip_architectural_bit(9, 3);
  rig.soc.core(1).flip_architectural_bit(9, 3);
  rig.soc.run(30'000'000);
  ASSERT_TRUE(rig.soc.all_halted());
  EXPECT_FALSE(rig.checker.error_detected());  // the escape
  // And the results agree with each other (both wrong the same way).
  EXPECT_EQ(rig.soc.memory().load(rig.soc.data_base(0), 8),
            rig.soc.memory().load(rig.soc.data_base(1), 8));
}

TEST(Dcls, SkewIsBounded) {
  Rig rig;
  rig.soc.load_redundant(workloads::build("fft", 1));
  rig.soc.run(30'000'000);
  ASSERT_TRUE(rig.soc.all_halted());
  EXPECT_FALSE(rig.checker.stats().desynchronized);
  EXPECT_LT(rig.checker.stats().max_skew, 512u);
}

}  // namespace
}  // namespace safedm::dcls
