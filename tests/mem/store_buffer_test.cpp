#include "safedm/mem/store_buffer.hpp"

#include <gtest/gtest.h>

namespace safedm::mem {
namespace {

StoreBufferConfig cfg(unsigned entries = 4, bool coalesce = true) {
  return StoreBufferConfig{.entries = entries, .line_bytes = 32, .coalesce = coalesce};
}

TEST(StoreBuffer, FifoOrder) {
  StoreBuffer sb(cfg());
  EXPECT_TRUE(sb.push(0x100));
  EXPECT_TRUE(sb.push(0x200));
  EXPECT_EQ(sb.head_line(), 0x100u);
  sb.pop_head();
  EXPECT_EQ(sb.head_line(), 0x200u);
  sb.pop_head();
  EXPECT_TRUE(sb.empty());
  EXPECT_EQ(sb.stats().drained, 2u);
}

TEST(StoreBuffer, CoalescesSameLine) {
  StoreBuffer sb(cfg());
  EXPECT_TRUE(sb.push(0x100));
  EXPECT_TRUE(sb.push(0x108));  // same 32B line
  EXPECT_TRUE(sb.push(0x11F));
  EXPECT_EQ(sb.size(), 1u);
  EXPECT_EQ(sb.stats().coalesced, 2u);
  EXPECT_EQ(sb.stats().pushed, 3u);
}

TEST(StoreBuffer, CoalescingDisabled) {
  StoreBuffer sb(cfg(4, /*coalesce=*/false));
  EXPECT_TRUE(sb.push(0x100));
  EXPECT_TRUE(sb.push(0x108));
  EXPECT_EQ(sb.size(), 2u);
  EXPECT_EQ(sb.stats().coalesced, 0u);
}

TEST(StoreBuffer, FullRejectsAndCountsStall) {
  StoreBuffer sb(cfg(2));
  EXPECT_TRUE(sb.push(0x000));
  EXPECT_TRUE(sb.push(0x020));
  EXPECT_TRUE(sb.full());
  EXPECT_FALSE(sb.push(0x040));
  EXPECT_EQ(sb.stats().full_stalls, 1u);
  // But a coalescing store still succeeds when full.
  EXPECT_TRUE(sb.push(0x010));
  EXPECT_EQ(sb.stats().coalesced, 1u);
}

TEST(StoreBuffer, HoldsLine) {
  StoreBuffer sb(cfg());
  sb.push(0x100);
  EXPECT_TRUE(sb.holds_line(0x11C));
  EXPECT_FALSE(sb.holds_line(0x120));
}

}  // namespace
}  // namespace safedm::mem
