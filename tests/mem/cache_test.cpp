#include "safedm/mem/cache.hpp"

#include <gtest/gtest.h>

#include "safedm/common/check.hpp"

namespace safedm::mem {
namespace {

CacheConfig small_cache() {
  // 4 sets x 2 ways x 32B lines = 256 B.
  return CacheConfig{.size_bytes = 256, .ways = 2, .line_bytes = 32};
}

TEST(CacheTags, MissThenHitAfterFill) {
  CacheTags cache(small_cache());
  EXPECT_FALSE(cache.access(0x1000));
  cache.fill(0x1000);
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x101F));  // same line
  EXPECT_FALSE(cache.access(0x1020)); // next line
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CacheTags, LruEviction) {
  CacheTags cache(small_cache());
  // Three lines mapping to the same set (stride = sets * line = 128).
  cache.fill(0x0000);
  cache.fill(0x0080);
  EXPECT_TRUE(cache.access(0x0000));  // make 0x0000 MRU
  const auto fill = cache.fill(0x0100, false);
  EXPECT_TRUE(fill.evicted);
  EXPECT_EQ(fill.victim_line_addr, 0x0080u);  // LRU way evicted
  EXPECT_TRUE(cache.access(0x0000));
  EXPECT_FALSE(cache.access(0x0080));
}

TEST(CacheTags, DirtyVictimReported) {
  CacheTags cache(small_cache());
  cache.fill(0x0000, /*dirty=*/true);
  cache.fill(0x0080);
  const auto fill = cache.fill(0x0100);
  EXPECT_TRUE(fill.evicted);
  EXPECT_EQ(fill.victim_line_addr, 0x0000u);
  EXPECT_TRUE(fill.victim_dirty);
  EXPECT_EQ(cache.stats().writeback_evictions, 1u);
}

TEST(CacheTags, MarkDirty) {
  CacheTags cache(small_cache());
  EXPECT_FALSE(cache.mark_dirty(0x40));
  cache.fill(0x40);
  EXPECT_TRUE(cache.mark_dirty(0x40));
}

TEST(CacheTags, FillOfPresentLineThrows) {
  CacheTags cache(small_cache());
  cache.fill(0x40);
  EXPECT_THROW(cache.fill(0x40), CheckError);
  EXPECT_THROW(cache.fill(0x44), CheckError);  // same line
}

TEST(CacheTags, InvalidateAll) {
  CacheTags cache(small_cache());
  cache.fill(0x0);
  cache.invalidate_all();
  EXPECT_FALSE(cache.present(0x0));
}

TEST(CacheTags, PresentDoesNotTouchStats) {
  CacheTags cache(small_cache());
  cache.fill(0x0);
  (void)cache.present(0x0);
  (void)cache.present(0x1000);
  EXPECT_EQ(cache.stats().accesses(), 0u);
}

TEST(CacheTags, GeometryValidation) {
  EXPECT_THROW(CacheTags(CacheConfig{.size_bytes = 100, .ways = 2, .line_bytes = 32}, "bad"),
               CheckError);
  EXPECT_THROW(CacheTags(CacheConfig{.size_bytes = 256, .ways = 3, .line_bytes = 32}, "bad"),
               CheckError);
}

TEST(CacheTags, VictimAddressReconstruction) {
  // Distinct sets must reconstruct distinct victim addresses.
  CacheTags cache(small_cache());
  cache.fill(0x0020);  // set 1
  cache.fill(0x00A0);  // set 1, way 2
  const auto fill = cache.fill(0x0120);
  EXPECT_TRUE(fill.evicted);
  EXPECT_EQ(fill.victim_line_addr, 0x0020u);
}

}  // namespace
}  // namespace safedm::mem
