#include "safedm/mem/phys_mem.hpp"

#include <gtest/gtest.h>

#include <array>

#include "safedm/common/check.hpp"

namespace safedm::mem {
namespace {

TEST(PhysMem, LoadStoreAllSizesLittleEndian) {
  PhysMem mem(0x1000, 0x1000);
  mem.store(0x1000, 0x1122334455667788ull, 8);
  EXPECT_EQ(mem.load(0x1000, 8), 0x1122334455667788ull);
  EXPECT_EQ(mem.load(0x1000, 4), 0x55667788u);
  EXPECT_EQ(mem.load(0x1004, 4), 0x11223344u);
  EXPECT_EQ(mem.load(0x1000, 2), 0x7788u);
  EXPECT_EQ(mem.load(0x1000, 1), 0x88u);
  mem.store(0x1007, 0xAB, 1);
  EXPECT_EQ(mem.load(0x1000, 8) >> 56, 0xABu);
}

TEST(PhysMem, OutOfRangeThrows) {
  PhysMem mem(0x1000, 0x100);
  EXPECT_THROW(mem.load(0xFFF, 1), CheckError);
  EXPECT_THROW(mem.load(0x10FD, 8), CheckError);  // straddles the end
  EXPECT_THROW(mem.store(0x1100, 0, 1), CheckError);
  EXPECT_NO_THROW(mem.load(0x10F8, 8));
}

TEST(PhysMem, RejectsWeirdSizes) {
  PhysMem mem(0, 0x100);
  EXPECT_THROW(mem.load(0, 3), CheckError);
  EXPECT_THROW(mem.store(0, 0, 16), CheckError);
}

TEST(PhysMem, BlockAccess) {
  PhysMem mem(0, 0x100);
  const std::array<u8, 4> in = {1, 2, 3, 4};
  mem.write_block(0x10, in);
  std::array<u8, 4> out{};
  mem.read_block(0x10, out);
  EXPECT_EQ(out, in);
  mem.fill(0x10, 2, 0xFF);
  EXPECT_EQ(mem.load(0x10, 2), 0xFFFFu);
  EXPECT_EQ(mem.load(0x12, 2), 0x0403u);
}

TEST(PhysMem, ZeroInitialized) {
  PhysMem mem(0, 0x40);
  for (u64 a = 0; a < 0x40; a += 8) EXPECT_EQ(mem.load(a, 8), 0u);
}

}  // namespace
}  // namespace safedm::mem
