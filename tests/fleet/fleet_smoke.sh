#!/usr/bin/env bash
# fleet_smoke: end-to-end sharded-campaign gate through the real CLIs.
#
# Runs a 3-shard fleet of a bounded campaign, SIGKILLs one shard
# mid-campaign, resumes it from its shard log, merges the logs with
# safedm-merge (validated against the fleet manifest), and requires the
# merged BENCH_faultsim.json to be byte-identical (cmp) to an
# uninterrupted single-process run. Registered as the `fleet_smoke`
# ctest in bench/CMakeLists.txt; args: $1 = bench_faultsim_campaign,
# $2 = safedm-merge.
set -euo pipefail

BENCH="$1"
MERGE="$2"
WORK="fleet_smoke_work"
rm -rf "${WORK}"
mkdir -p "${WORK}/refcache"

# 3 cycles x 2 classes x 1 register x 2 bits x 2 fault models = 24 sites.
ARGS=(--workloads=bitcount --scale=1 --samples=3 --registers=6 --bits=3,40
      --seed=5 --threads=2)

echo "== single-process baseline"
"${BENCH}" "${ARGS[@]}" --json="${WORK}/baseline.json" >/dev/null

echo "== fleet manifest"
"${BENCH}" "${ARGS[@]}" --write-manifest="${WORK}/fleet.manifest" --shard-count=3 \
    --ref-cache="${WORK}/refcache"

run_shard() {
  "${BENCH}" "${ARGS[@]}" --shard="$1/3" --log="${WORK}/shard-$1.shardlog" \
      --resume --flush-interval=1 --ref-cache="${WORK}/refcache" >/dev/null
}

echo "== shard 1/3: SIGKILL mid-campaign, then resume"
log="${WORK}/shard-1.shardlog"
"${BENCH}" "${ARGS[@]}" --shard=1/3 --log="${log}" --resume --flush-interval=1 \
    --ref-cache="${WORK}/refcache" >/dev/null &
pid=$!
# Kill once the log holds the header plus a couple of durable partials.
# If the shard outruns the poll and finishes first, the kill is a no-op
# and the resume below degenerates to "already complete" — still a valid
# (if weaker) run; the ctest battery covers the guaranteed-kill case.
for _ in $(seq 1 3000); do
  size=$(stat -c%s "${log}" 2>/dev/null || echo 0)
  [ "${size}" -ge 500 ] && break
  kill -0 "${pid}" 2>/dev/null || break
  sleep 0.01
done
kill -9 "${pid}" 2>/dev/null || true
wait "${pid}" 2>/dev/null || true
run_shard 1

echo "== shards 0/3 and 2/3"
run_shard 0
run_shard 2

echo "== merge must reproduce the baseline byte-for-byte"
"${MERGE}" --manifest="${WORK}/fleet.manifest" --out="${WORK}/merged.json" \
    "${WORK}/shard-0.shardlog" "${WORK}/shard-1.shardlog" "${WORK}/shard-2.shardlog"
cmp "${WORK}/baseline.json" "${WORK}/merged.json"

echo "fleet smoke OK: merged report is byte-identical to the single-process run"
