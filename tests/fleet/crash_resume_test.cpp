// Crash/resume integration test for the sharded campaign fleet: launch
// real shard processes (the bench_faultsim_campaign binary), SIGKILL one
// mid-campaign at randomized points, resume it, and assert the merged
// report is byte-identical to an uninterrupted single-process run. This
// is the end-to-end proof of the shard-log durability contract — every
// in-process test in shard_merge_test.cpp only simulates interruption.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "safedm/common/rng.hpp"
#include "safedm/faultsim/shard.hpp"

#ifndef SAFEDM_FAULTSIM_BIN
#error "build must define SAFEDM_FAULTSIM_BIN (path to bench_faultsim_campaign)"
#endif

namespace safedm::faultsim {
namespace {

namespace fs = std::filesystem;

// Bounded campaign shared by child processes and the in-process baseline:
// 4 cycles x 2 classes x 2 registers x 2 bits x 2 fault models = 64
// sites over one workload (16 per shard in the 4-way fleet).
EngineConfig fleet_config() {
  EngineConfig config;
  config.workloads = {"bitcount"};
  config.scale = 1;
  config.samples_per_class = 4;
  config.registers = {6, 9};
  config.bits = {3, 40};
  config.seed = 11;
  config.threads = 2;
  return config;
}

std::vector<std::string> shard_args(const fs::path& dir, u32 index, u32 count,
                                    const std::string& log) {
  return {SAFEDM_FAULTSIM_BIN,
          "--workloads=bitcount",
          "--scale=1",
          "--samples=4",
          "--registers=6,9",
          "--bits=3,40",
          "--seed=11",
          "--threads=2",
          "--flush-interval=1",
          "--shard=" + std::to_string(index) + "/" + std::to_string(count),
          "--log=" + log,
          "--resume",
          "--ref-cache=" + (dir / "refcache").string()};
}

pid_t spawn(const std::vector<std::string>& args) {
  const pid_t pid = fork();
  if (pid == 0) {
    // Keep stderr (diagnostics) but drop the per-wave progress chatter.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

void sleep_ms(long ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1'000'000L};
  ::nanosleep(&ts, nullptr);
}

u64 file_size_or_zero(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<u64>(st.st_size) : 0;
}

int wait_exit(pid_t pid, bool* signaled = nullptr) {
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  if (signaled) *signaled = WIFSIGNALED(status);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// Run the shard child until its log grows past `kill_after` bytes beyond
// its current size, then SIGKILL it. Returns true if the kill landed
// while the campaign was still running (false: the shard finished first).
bool run_and_kill(const std::vector<std::string>& args, const std::string& log,
                  u64 kill_after) {
  const u64 base = file_size_or_zero(log);
  const pid_t pid = spawn(args);
  // Generous deadline: a stuck child fails the test via the EXPECT below
  // rather than hanging ctest.
  for (int tick = 0; tick < 60'000; ++tick) {
    if (file_size_or_zero(log) >= base + kill_after) {
      ::kill(pid, SIGKILL);
      bool signaled = false;
      wait_exit(pid, &signaled);
      return signaled;
    }
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
      return false;  // finished before the kill threshold
    }
    sleep_ms(1);
  }
  ::kill(pid, SIGKILL);
  wait_exit(pid);
  ADD_FAILURE() << "shard made no progress: " << log;
  return false;
}

TEST(CrashResume, KilledShardResumesToByteIdenticalMergedReport) {
  const fs::path dir = fs::temp_directory_path() / "safedm_fleet_crash";
  fs::remove_all(dir);
  fs::create_directories(dir / "refcache");

  const EngineConfig config = fleet_config();
  const std::string baseline = report_to_json(run_engine(config));

  constexpr u32 kShards = 4;
  constexpr u32 kVictim = 1;
  std::vector<std::string> logs;
  for (u32 i = 0; i < kShards; ++i)
    logs.push_back((dir / ("shard-" + std::to_string(i) + ".shardlog")).string());

  // The victim shard: kill it at randomized log-growth points (seeded,
  // so failures replay), resuming in between. Each record lands with one
  // flush, so any byte threshold falls mid-record somewhere eventually.
  Xoshiro256 rng(2026);
  bool interrupted = false;
  const std::vector<std::string> victim_args =
      shard_args(dir, kVictim, kShards, logs[kVictim]);
  for (int attempt = 0; attempt < 6; ++attempt) {
    const u64 kill_after = rng.range(64, 2048);
    if (run_and_kill(victim_args, logs[kVictim], kill_after))
      interrupted = true;
    else
      break;  // shard completed under the threshold — done early
  }
  EXPECT_TRUE(interrupted) << "no attempt killed the shard mid-campaign";

  // Final resume must run to completion (exit 0) whatever the tail looks
  // like after the last SIGKILL.
  const pid_t pid = spawn(victim_args);
  EXPECT_EQ(wait_exit(pid), 0);
  {
    const ShardLogContents log = read_shard_log(logs[kVictim]);
    ASSERT_TRUE(log.last.has_value());
    EXPECT_TRUE(log.last->complete);
  }

  // The other shards run uninterrupted (still through the real CLI).
  for (u32 i = 0; i < kShards; ++i) {
    if (i == kVictim) continue;
    const pid_t shard_pid = spawn(shard_args(dir, i, kShards, logs[i]));
    EXPECT_EQ(wait_exit(shard_pid), 0) << "shard " << i;
  }

  EXPECT_EQ(report_to_json(merge_shard_logs(logs)), baseline);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace safedm::faultsim
