// Merge-determinism property suite for the sharded campaign fleet
// (ROADMAP item 3): merging shard logs must reproduce the single-process
// BENCH_faultsim.json byte-for-byte for any shard count, any per-shard
// thread count, any merge order, and across interrupt/resume — and must
// fail loudly (one-line `path:record:` diagnostic) on anything short of a
// complete, consistent fleet.
#include "safedm/faultsim/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "safedm/common/check.hpp"

namespace safedm::faultsim {
namespace {

namespace fs = std::filesystem;

// Small but non-trivial campaign: 2 verdict classes x 3 cycles x 1
// register x 2 bits x 2 fault models = 24 sites over one workload.
EngineConfig small_config() {
  EngineConfig config;
  config.workloads = {"bitcount"};
  config.scale = 1;
  config.samples_per_class = 3;
  config.registers = {6};
  config.bits = {2, 40};
  config.seed = 7;
  config.threads = 2;
  return config;
}

// Fresh per-test scratch directory (deterministic name; no clock/rand).
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("safedm_fleet_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string log_path(const fs::path& dir, u32 index, u32 count) {
  return (dir / ("shard-" + std::to_string(index) + "-of-" + std::to_string(count) +
                 ".shardlog"))
      .string();
}

// Run every shard of an N-way fleet; returns the log paths in index order.
std::vector<std::string> run_fleet(const EngineConfig& base, u32 count, const fs::path& dir,
                                   const std::string& ref_cache = "") {
  fs::create_directories(dir);
  std::vector<std::string> logs;
  for (u32 i = 0; i < count; ++i) {
    ShardRunConfig rc;
    rc.engine = base;
    rc.engine.shard = {i, count};
    // Mixed per-shard thread counts: the merged bytes must not care.
    rc.engine.threads = 1 + i % 3;
    rc.log_path = log_path(dir, i, count);
    rc.ref_cache_dir = ref_cache;
    const ShardRunResult result = run_shard(rc);
    EXPECT_TRUE(result.complete);
    logs.push_back(rc.log_path);
  }
  return logs;
}

std::string merged_json(const std::vector<std::string>& logs,
                        const std::string& manifest = "") {
  return report_to_json(merge_shard_logs(logs, manifest));
}

TEST(ShardMerge, MatchesSingleProcessBytesForAnyShardCount) {
  const EngineConfig config = small_config();
  const std::string baseline = report_to_json(run_engine(config));
  for (u32 count : {1u, 2u, 3u, 8u}) {
    const fs::path dir = scratch_dir("count" + std::to_string(count));
    const std::vector<std::string> logs = run_fleet(config, count, dir);
    EXPECT_EQ(merged_json(logs), baseline) << count << " shards";
    fs::remove_all(dir);
  }
}

TEST(ShardMerge, MergeOrderDoesNotMatter) {
  const EngineConfig config = small_config();
  const std::string baseline = report_to_json(run_engine(config));
  const fs::path dir = scratch_dir("order");
  std::vector<std::string> logs = run_fleet(config, 3, dir);
  std::vector<std::vector<std::string>> orders = {
      {logs[0], logs[1], logs[2]}, {logs[2], logs[0], logs[1]}, {logs[1], logs[2], logs[0]}};
  for (const auto& order : orders) EXPECT_EQ(merged_json(order), baseline);
  fs::remove_all(dir);
}

TEST(ShardMerge, ShardAssignmentPartitionsTheSiteSpace) {
  const EngineConfig config = small_config();
  const fs::path dir = scratch_dir("partition");
  const std::vector<std::string> logs = run_fleet(config, 3, dir);
  u64 total = 0;
  u64 expected_total = 0;
  for (const std::string& path : logs) {
    const ShardLogContents log = read_shard_log(path);
    total += log.header.shard_sites;
    expected_total = log.header.total_sites;
    EXPECT_FALSE(log.torn_tail);
    ASSERT_TRUE(log.last.has_value());
    EXPECT_TRUE(log.last->complete);
  }
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(expected_total, 24u);
  fs::remove_all(dir);
}

TEST(ShardMerge, InterruptedShardResumesToIdenticalBytes) {
  const EngineConfig config = small_config();
  const std::string baseline = report_to_json(run_engine(config));
  const fs::path dir = scratch_dir("resume");

  ShardRunConfig rc;
  rc.engine = config;
  rc.engine.shard = {0, 2};
  rc.log_path = log_path(dir, 0, 2);
  rc.flush_interval = 2;
  rc.max_sites = 5;  // simulate an interruption after 5 sites
  const ShardRunResult partial = run_shard(rc);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.executed, 5u);

  // Merging an unfinished shard must fail, not silently under-count.
  ShardRunConfig other = rc;
  other.engine.shard = {1, 2};
  other.log_path = log_path(dir, 1, 2);
  other.max_sites = 0;
  EXPECT_TRUE(run_shard(other).complete);
  try {
    merge_shard_logs({rc.log_path, other.log_path});
    FAIL() << "merge accepted an incomplete shard";
  } catch (const MergeError& e) {
    EXPECT_NE(std::string(e.what()).find("incomplete"), std::string::npos) << e.what();
  }

  rc.max_sites = 0;
  rc.resume = true;
  const ShardRunResult resumed = run_shard(rc);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_at, 5u);
  EXPECT_EQ(merged_json({other.log_path, rc.log_path}), baseline);
  fs::remove_all(dir);
}

TEST(ShardMerge, TornTailIsDroppedAndReRunOnResume) {
  const EngineConfig config = small_config();
  const std::string baseline = report_to_json(run_engine(config));
  const fs::path dir = scratch_dir("torn");
  std::vector<std::string> logs = run_fleet(config, 2, dir);

  // Chop the final record mid-payload: a SIGKILL between fwrite and a
  // completed fflush leaves exactly this shape.
  const auto full_size = fs::file_size(logs[0]);
  fs::resize_file(logs[0], full_size - 7);
  const ShardLogContents torn = read_shard_log(logs[0]);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_LT(torn.durable_bytes, full_size - 7);

  ShardRunConfig rc;
  rc.engine = config;
  rc.engine.shard = {0, 2};
  rc.log_path = logs[0];
  rc.resume = true;
  const ShardRunResult resumed = run_shard(rc);
  EXPECT_TRUE(resumed.complete);
  EXPECT_GT(resumed.executed, 0u);  // the sites the torn record covered re-ran
  EXPECT_EQ(merged_json(logs), baseline);
  fs::remove_all(dir);
}

TEST(ShardMerge, ResumeStartsFreshWhenNoLogExists) {
  const EngineConfig config = small_config();
  const fs::path dir = scratch_dir("fresh");
  ShardRunConfig rc;
  rc.engine = config;
  rc.engine.shard = {0, 1};
  rc.log_path = log_path(dir, 0, 1);
  rc.resume = true;
  const ShardRunResult result = run_shard(rc);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.resumed_at, 0u);
  EXPECT_EQ(result.executed, result.shard_sites);
  fs::remove_all(dir);
}

TEST(ShardMerge, ResumeRejectsForeignLog) {
  const EngineConfig config = small_config();
  const fs::path dir = scratch_dir("foreign");
  const std::vector<std::string> logs = run_fleet(config, 2, dir);
  ShardRunConfig rc;
  rc.engine = config;
  rc.engine.seed = config.seed + 1;  // a different campaign
  rc.engine.shard = {0, 2};
  rc.log_path = logs[0];
  rc.resume = true;
  EXPECT_THROW(run_shard(rc), CheckError);
  // Same campaign, wrong shard slot.
  rc.engine.seed = config.seed;
  rc.engine.shard = {1, 2};
  EXPECT_THROW(run_shard(rc), CheckError);
  fs::remove_all(dir);
}

TEST(ShardMerge, RejectsMissingAndDuplicateShards) {
  const EngineConfig config = small_config();
  const fs::path dir = scratch_dir("setflaws");
  const std::vector<std::string> logs = run_fleet(config, 3, dir);
  try {
    merge_shard_logs({logs[0], logs[2]});
    FAIL() << "merge accepted an incomplete fleet";
  } catch (const MergeError& e) {
    EXPECT_NE(std::string(e.what()).find("missing shard 1/3"), std::string::npos) << e.what();
  }
  try {
    merge_shard_logs({logs[0], logs[1], logs[1]});
    FAIL() << "merge accepted a duplicate shard";
  } catch (const MergeError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate shard 1/3"), std::string::npos) << e.what();
  }
  fs::remove_all(dir);
}

TEST(ShardMerge, RejectsMixedCampaigns) {
  const EngineConfig config = small_config();
  const fs::path dir = scratch_dir("mixed");
  const std::vector<std::string> a = run_fleet(config, 2, dir / "a");
  EngineConfig other = config;
  other.seed = 99;
  std::vector<std::string> b;
  {
    fs::create_directories(dir / "b");
    ShardRunConfig rc;
    rc.engine = other;
    rc.engine.shard = {1, 2};
    rc.log_path = log_path(dir / "b", 1, 2);
    run_shard(rc);
    b.push_back(rc.log_path);
  }
  try {
    merge_shard_logs({a[0], b[0]});
    FAIL() << "merge accepted logs from different campaigns";
  } catch (const MergeError& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"), std::string::npos)
        << e.what();
  }
  fs::remove_all(dir);
}

// Byte-patch helpers for the corruption negatives.
void patch_byte(const std::string& path, std::size_t offset, char value) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(value);
}

TEST(ShardMerge, RejectsVersionMismatchWithOneLineDiagnostic) {
  const EngineConfig config = small_config();
  const fs::path dir = scratch_dir("version");
  const std::vector<std::string> logs = run_fleet(config, 1, dir);
  // Record framing: 4-byte length, then the state stream (8-byte magic,
  // 4-byte tag, u32 LE version). The header record's version byte lives
  // at file offset 4 + 8 + 4 = 16.
  patch_byte(logs[0], 16, 99);
  try {
    merge_shard_logs(logs);
    FAIL() << "merge accepted an unknown log version";
  } catch (const MergeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(logs[0] + ":1:"), std::string::npos) << what;
    EXPECT_NE(what.find("unsupported shard log version 99"), std::string::npos) << what;
    EXPECT_EQ(what.find('\n'), std::string::npos) << "diagnostic must be one line: " << what;
  }
  fs::remove_all(dir);
}

TEST(ShardMerge, RejectsBadMagic) {
  const EngineConfig config = small_config();
  const fs::path dir = scratch_dir("magic");
  const std::vector<std::string> logs = run_fleet(config, 1, dir);
  patch_byte(logs[0], 4, 'X');  // first magic byte of record 1
  try {
    merge_shard_logs(logs);
    FAIL() << "merge accepted a non-log file";
  } catch (const MergeError& e) {
    EXPECT_NE(std::string(e.what()).find("bad record magic"), std::string::npos) << e.what();
  }
  fs::remove_all(dir);
}

TEST(ShardMerge, ManifestValidatesTheFleet) {
  const EngineConfig config = small_config();
  const std::string baseline = report_to_json(run_engine(config));
  const fs::path dir = scratch_dir("manifest");
  const std::vector<std::string> logs = run_fleet(config, 3, dir);

  const ShardManifest manifest = build_manifest(config, 3);
  EXPECT_EQ(manifest.total_sites, 24u);
  u64 sum = 0;
  for (u64 s : manifest.shard_sites) sum += s;
  EXPECT_EQ(sum, manifest.total_sites);
  const std::string manifest_path = (dir / "fleet.manifest").string();
  write_manifest_file(manifest_path, manifest);
  const ShardManifest round = read_manifest_file(manifest_path);
  EXPECT_EQ(round.fingerprint, manifest.fingerprint);
  EXPECT_EQ(round.shard_sites, manifest.shard_sites);

  EXPECT_EQ(merged_json(logs, manifest_path), baseline);

  // A manifest for a different fleet shape must be rejected.
  const ShardManifest wrong = build_manifest(config, 4);
  const std::string wrong_path = (dir / "wrong.manifest").string();
  write_manifest_file(wrong_path, wrong);
  EXPECT_THROW(merge_shard_logs(logs, wrong_path), MergeError);
  fs::remove_all(dir);
}

TEST(ShardMerge, ReferenceCacheKeepsBytesIdentical) {
  const EngineConfig config = small_config();
  const std::string baseline = report_to_json(run_engine(config));
  const fs::path dir = scratch_dir("refcache");
  const fs::path cache = dir / "cache";
  fs::create_directories(cache);

  // Cold cache: the first fleet publishes the reference snapshots.
  const std::vector<std::string> cold = run_fleet(config, 2, dir / "cold", cache.string());
  EXPECT_EQ(merged_json(cold), baseline);
  bool have_snapshot = false;
  for (const auto& entry : fs::directory_iterator(cache))
    have_snapshot |= entry.path().extension() == ".state";
  EXPECT_TRUE(have_snapshot) << "no reference snapshot was published";

  // Warm cache: every shard deserializes the mmap'd snapshot instead of
  // re-simulating; the bytes still cannot change.
  const std::vector<std::string> warm = run_fleet(config, 2, dir / "warm", cache.string());
  EXPECT_EQ(merged_json(warm), baseline);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace safedm::faultsim
