#include "safedm/rtos/executive.hpp"

#include <gtest/gtest.h>

#include "safedm/common/state.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::rtos {
namespace {

TaskConfig braking_task() {
  TaskConfig task;
  task.name = "braking";
  task.jobs = 6;
  task.ftti_jobs = 2;
  task.diversity_loss_threshold = 32;
  return task;
}

TEST(Executive, HealthyTaskNeverDrops) {
  RedundantTaskExecutive executive(braking_task(), workloads::build("iir", 1));
  const RunSummary summary = executive.run();
  EXPECT_EQ(summary.drops, 0u);
  EXPECT_FALSE(summary.safe_state_entered);
  EXPECT_EQ(summary.jobs.size(), 6u);
  for (const JobRecord& job : summary.jobs) {
    EXPECT_TRUE(job.outputs_matched) << "job " << job.index;
    EXPECT_EQ(job.stagger_used, 0u);
  }
}

TEST(Executive, MisconfiguredJobIsDroppedAndNextIsStaggered) {
  RedundantTaskExecutive executive(braking_task(), workloads::build("iir", 1));
  executive.set_soc_configurator([](unsigned job) {
    soc::SocConfig config;
    config.shared_data = job == 2;  // one bad launch
    return config;
  });
  const RunSummary summary = executive.run();
  ASSERT_EQ(summary.jobs.size(), 6u);
  EXPECT_TRUE(summary.jobs[2].dropped);
  EXPECT_EQ(summary.drops, 1u);
  EXPECT_FALSE(summary.safe_state_entered);
  // kStaggerNextJob: job 3 launched with the corrective staggering.
  EXPECT_EQ(summary.jobs[3].stagger_used, braking_task().stagger_nops);
  EXPECT_FALSE(summary.jobs[3].dropped);
  // And job 4 is back to normal.
  EXPECT_EQ(summary.jobs[4].stagger_used, 0u);
}

TEST(Executive, FttiExhaustionEntersSafeState) {
  TaskConfig task = braking_task();
  task.relaunch = RelaunchPolicy::kNone;  // no corrective action
  RedundantTaskExecutive executive(task, workloads::build("iir", 1));
  executive.set_soc_configurator([](unsigned) {
    soc::SocConfig config;
    config.shared_data = true;  // persistently broken launches
    return config;
  });
  const RunSummary summary = executive.run();
  EXPECT_TRUE(summary.safe_state_entered);
  EXPECT_EQ(summary.max_consecutive_drops, 2u);
  EXPECT_LT(summary.jobs.size(), 6u);  // stopped early
}

TEST(Executive, StaggerForeverSurvivesPersistentFault) {
  TaskConfig task = braking_task();
  task.relaunch = RelaunchPolicy::kStaggerForever;
  RedundantTaskExecutive executive(task, workloads::build("iir", 1));
  executive.set_soc_configurator([](unsigned) {
    soc::SocConfig config;
    config.shared_data = true;  // every launch shares the address space
    return config;
  });
  const RunSummary summary = executive.run();
  // First job drops (no staggering, shared space => no diversity); once
  // staggering latches, the pipeline-phase difference restores diversity
  // and the task keeps running.
  EXPECT_TRUE(summary.jobs[0].dropped);
  EXPECT_FALSE(summary.safe_state_entered);
  EXPECT_EQ(summary.max_consecutive_drops, 1u);
  for (std::size_t i = 1; i < summary.jobs.size(); ++i) {
    EXPECT_EQ(summary.jobs[i].stagger_used, task.stagger_nops);
    EXPECT_FALSE(summary.jobs[i].dropped) << "job " << i;
  }
}

TEST(Executive, SteppedRunEqualsUninterruptedRun) {
  const auto configurator = [](unsigned job) {
    soc::SocConfig config;
    config.shared_data = job == 2;
    return config;
  };
  RedundantTaskExecutive whole(braking_task(), workloads::build("iir", 1));
  whole.set_soc_configurator(configurator);
  const RunSummary expect = whole.run();

  RedundantTaskExecutive stepped(braking_task(), workloads::build("iir", 1));
  stepped.set_soc_configurator(configurator);
  unsigned steps = 0;
  while (!stepped.finished()) {
    stepped.step_job();  // returns whether more remains, not whether a job ran
    ++steps;
  }
  EXPECT_EQ(steps, expect.jobs.size());
  EXPECT_TRUE(stepped.finished());
  const RunSummary& got = stepped.state().summary;
  ASSERT_EQ(got.jobs.size(), expect.jobs.size());
  EXPECT_EQ(got.drops, expect.drops);
  EXPECT_EQ(got.total_cycles, expect.total_cycles);
  for (std::size_t i = 0; i < got.jobs.size(); ++i) {
    EXPECT_EQ(got.jobs[i].dropped, expect.jobs[i].dropped) << "job " << i;
    EXPECT_EQ(got.jobs[i].cycles, expect.jobs[i].cycles) << "job " << i;
  }
}

TEST(Executive, CheckpointBetweenJobsResumesIdentically) {
  // Inter-job state (next job, drop streak, relaunch latches) moves
  // through save_state/restore_state into a *fresh* executive, which must
  // finish the run exactly as the uninterrupted one — including the
  // stagger-next-job decision pending from the drop at job 2.
  const auto configurator = [](unsigned job) {
    soc::SocConfig config;
    config.shared_data = job == 2;
    return config;
  };
  RedundantTaskExecutive whole(braking_task(), workloads::build("iir", 1));
  whole.set_soc_configurator(configurator);
  const RunSummary expect = whole.run();

  RedundantTaskExecutive first(braking_task(), workloads::build("iir", 1));
  first.set_soc_configurator(configurator);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(first.step_job());  // through the drop

  StateWriter w;
  first.save_state(w);
  const std::vector<u8> bytes = w.take();

  RedundantTaskExecutive second(braking_task(), workloads::build("iir", 1));
  second.set_soc_configurator(configurator);
  StateReader r(bytes);
  second.restore_state(r);
  const RunSummary got = second.resume();

  ASSERT_EQ(got.jobs.size(), expect.jobs.size());
  EXPECT_EQ(got.drops, expect.drops);
  EXPECT_EQ(got.safe_state_entered, expect.safe_state_entered);
  EXPECT_EQ(got.total_cycles, expect.total_cycles);
  for (std::size_t i = 0; i < got.jobs.size(); ++i) {
    EXPECT_EQ(got.jobs[i].dropped, expect.jobs[i].dropped) << "job " << i;
    EXPECT_EQ(got.jobs[i].stagger_used, expect.jobs[i].stagger_used) << "job " << i;
    EXPECT_EQ(got.jobs[i].nodiv_cycles, expect.jobs[i].nodiv_cycles) << "job " << i;
  }
}

TEST(Executive, PollOnlyModeAppliesThresholdItself) {
  TaskConfig task = braking_task();
  task.report = monitor::ReportMode::kPollOnly;
  RedundantTaskExecutive executive(task, workloads::build("iir", 1));
  executive.set_soc_configurator([](unsigned job) {
    soc::SocConfig config;
    config.shared_data = job == 1;
    return config;
  });
  const RunSummary summary = executive.run();
  EXPECT_TRUE(summary.jobs[1].dropped);
  EXPECT_EQ(summary.drops, 1u);
}

}  // namespace
}  // namespace safedm::rtos
