#include "safedm/safedm/monitor.hpp"

#include <gtest/gtest.h>

namespace safedm::monitor {
namespace {

SafeDmConfig cfg() {
  SafeDmConfig c;
  c.data_fifo_depth = 4;
  c.num_ports = 4;
  c.start_enabled = true;
  return c;
}

core::CoreTapFrame idle_frame(unsigned commits = 0) {
  core::CoreTapFrame f;
  f.commits = commits;
  return f;
}

core::CoreTapFrame active_frame(u64 port0_value, u32 ex_encoding, unsigned commits = 1) {
  core::CoreTapFrame f;
  f.port[0] = core::PortTap{true, port0_value};
  f.stage[4][0] = core::StageSlotTap{true, ex_encoding};
  f.commits = commits;
  return f;
}

TEST(SafeDm, IdenticalFramesLackDiversity) {
  SafeDm dm(cfg());
  for (int i = 0; i < 10; ++i)
    dm.on_cycle(i, active_frame(42, 0x13), active_frame(42, 0x13));
  EXPECT_EQ(dm.counters().nodiv_cycles, 10u);
  EXPECT_EQ(dm.counters().monitored_cycles, 10u);
  EXPECT_TRUE(dm.lacking_diversity_now());
}

TEST(SafeDm, DataDifferenceIsDiversity) {
  SafeDm dm(cfg());
  for (int i = 0; i < 10; ++i)
    dm.on_cycle(i, active_frame(1, 0x13), active_frame(2, 0x13));
  EXPECT_EQ(dm.counters().nodiv_cycles, 0u);
  EXPECT_EQ(dm.counters().is_match_cycles, 10u);
  EXPECT_EQ(dm.counters().ds_match_cycles, 0u);
}

TEST(SafeDm, InstructionDifferenceIsDiversity) {
  SafeDm dm(cfg());
  for (int i = 0; i < 10; ++i)
    dm.on_cycle(i, active_frame(5, 0x13), active_frame(5, 0x33));
  EXPECT_EQ(dm.counters().nodiv_cycles, 0u);
  EXPECT_EQ(dm.counters().ds_match_cycles, 10u);
  EXPECT_EQ(dm.counters().is_match_cycles, 0u);
}

TEST(SafeDm, DataWindowRemembersPastDifference) {
  // One divergent sample keeps DS different for the next n-1 cycles even if
  // the cores re-align afterwards.
  SafeDm dm(cfg());  // depth 4
  dm.on_cycle(0, active_frame(1, 0x13), active_frame(99, 0x13));  // diverge
  for (int i = 1; i <= 2; ++i)
    dm.on_cycle(i, active_frame(7, 0x13), active_frame(7, 0x13));
  EXPECT_EQ(dm.counters().nodiv_cycles, 0u);  // still in window
  for (int i = 3; i <= 6; ++i)
    dm.on_cycle(i, active_frame(7, 0x13), active_frame(7, 0x13));
  EXPECT_GT(dm.counters().nodiv_cycles, 0u);  // aged out, re-converged
}

TEST(SafeDm, DisabledDoesNotCount) {
  SafeDmConfig c = cfg();
  c.start_enabled = false;
  SafeDm dm(c);
  dm.on_cycle(0, active_frame(1, 0x13), active_frame(1, 0x13));
  EXPECT_EQ(dm.counters().monitored_cycles, 0u);
  dm.enable(true);
  dm.on_cycle(1, active_frame(1, 0x13), active_frame(1, 0x13));
  EXPECT_EQ(dm.counters().monitored_cycles, 1u);
}

TEST(SafeDm, HaltedCoreStopsMonitoring) {
  SafeDm dm(cfg());
  auto halted = active_frame(1, 0x13);
  halted.halted = true;
  dm.on_cycle(0, active_frame(1, 0x13), halted);
  EXPECT_EQ(dm.counters().monitored_cycles, 0u);
  EXPECT_FALSE(dm.lacking_diversity_now());
}

TEST(SafeDm, InterruptOnFirstOccurrence) {
  SafeDmConfig c = cfg();
  c.report = ReportMode::kInterruptFirst;
  SafeDm dm(c);
  u64 fired_at = 0;
  dm.set_interrupt_handler([&](u64 cycle) { fired_at = cycle; });
  dm.on_cycle(1, active_frame(1, 0x13), active_frame(2, 0x13));  // diverse
  EXPECT_FALSE(dm.interrupt_pending());
  dm.on_cycle(2, active_frame(3, 0x13), active_frame(3, 0x13));  // DS still differs (window)
  dm.on_cycle(3, active_frame(3, 0x13), active_frame(3, 0x13));
  dm.on_cycle(4, active_frame(3, 0x13), active_frame(3, 0x13));
  dm.on_cycle(5, active_frame(3, 0x13), active_frame(3, 0x13));
  dm.on_cycle(6, active_frame(3, 0x13), active_frame(3, 0x13));  // now matches
  EXPECT_TRUE(dm.interrupt_pending());
  EXPECT_GT(fired_at, 0u);
  EXPECT_EQ(dm.counters().interrupts, 1u);
}

TEST(SafeDm, InterruptThresholdMode) {
  SafeDmConfig c = cfg();
  c.report = ReportMode::kInterruptThreshold;
  c.interrupt_threshold = 5;
  SafeDm dm(c);
  for (int i = 0; i < 4; ++i) dm.on_cycle(i, active_frame(1, 0x13), active_frame(1, 0x13));
  EXPECT_FALSE(dm.interrupt_pending());
  dm.on_cycle(4, active_frame(1, 0x13), active_frame(1, 0x13));
  EXPECT_TRUE(dm.interrupt_pending());
}

TEST(SafeDm, PollOnlyNeverInterrupts) {
  SafeDm dm(cfg());  // default kPollOnly
  for (int i = 0; i < 100; ++i) dm.on_cycle(i, active_frame(1, 0x13), active_frame(1, 0x13));
  EXPECT_FALSE(dm.interrupt_pending());
  EXPECT_EQ(dm.counters().nodiv_cycles, 100u);
}

TEST(SafeDm, ClearInterrupt) {
  SafeDmConfig c = cfg();
  c.report = ReportMode::kInterruptFirst;
  SafeDm dm(c);
  dm.on_cycle(0, active_frame(1, 0x13), active_frame(1, 0x13));
  EXPECT_TRUE(dm.interrupt_pending());
  dm.clear_interrupt();
  EXPECT_FALSE(dm.interrupt_pending());
}

TEST(SafeDm, InstructionDiffTracksCommitImbalance) {
  SafeDm dm(cfg());
  dm.on_cycle(0, idle_frame(2), idle_frame(0));
  dm.on_cycle(1, idle_frame(2), idle_frame(1));
  EXPECT_EQ(dm.instruction_diff(), 3);
  dm.on_cycle(2, idle_frame(0), idle_frame(2));
  EXPECT_EQ(dm.instruction_diff(), 1);
}

TEST(SafeDm, PreludeIgnoreSuppressesNopCommits) {
  SafeDm dm(cfg());
  dm.set_prelude_ignore(1, 4);
  // Core 1 commits 4 nops (ignored), then program commits align.
  dm.on_cycle(0, idle_frame(0), idle_frame(2));
  dm.on_cycle(1, idle_frame(0), idle_frame(2));
  EXPECT_EQ(dm.instruction_diff(), 0);
  dm.on_cycle(2, idle_frame(1), idle_frame(1));
  EXPECT_EQ(dm.instruction_diff(), 0);
}

TEST(SafeDm, ZeroStagCountsOnlyWhenArmed) {
  SafeDm dm(cfg());
  dm.set_prelude_ignore(1, 2);
  dm.on_cycle(0, idle_frame(1), idle_frame(1));  // core1 still in prelude: not armed
  EXPECT_EQ(dm.counters().zero_stag_cycles, 0u);
  dm.on_cycle(1, idle_frame(0), idle_frame(2));  // prelude consumed: armed, diff 0
  dm.on_cycle(2, idle_frame(1), idle_frame(1));  // diff stays 0
  EXPECT_EQ(dm.counters().zero_stag_cycles, 2u);
}

TEST(SafeDm, HistoryRecordsEpisodeLengths) {
  SafeDm dm(cfg());
  // 3-cycle no-div episode, then diversity, then 1-cycle episode.
  for (int i = 0; i < 3; ++i) dm.on_cycle(i, active_frame(1, 0x13), active_frame(1, 0x13));
  dm.on_cycle(3, active_frame(1, 0x13), active_frame(9, 0x13));  // break
  for (int i = 4; i < 8; ++i) dm.on_cycle(i, active_frame(4, 0x13), active_frame(4, 0x13));
  dm.finalize();
  EXPECT_EQ(dm.nodiv_history().total_samples(), 2u);
  EXPECT_EQ(dm.nodiv_history().max_sample(), 3u);
}

TEST(SafeDm, ApbRegisterFile) {
  SafeDm dm(cfg());
  for (int i = 0; i < 7; ++i) dm.on_cycle(i, active_frame(1, 0x13), active_frame(1, 0x13));
  EXPECT_EQ(dm.apb_read(reg::kNodivLo), 7u);
  EXPECT_EQ(dm.apb_read(reg::kNodivHi), 0u);
  EXPECT_EQ(dm.apb_read(reg::kMonitoredLo), 7u);
  EXPECT_EQ(dm.apb_read(reg::kStatus) & 1u, 1u);  // lacking diversity now
  // Geometry register encodes n, m, o, p.
  const u32 geometry = dm.apb_read(reg::kGeometry);
  EXPECT_EQ(geometry & 0xFF, 4u);          // n
  EXPECT_EQ((geometry >> 8) & 0xFF, 4u);   // m
  EXPECT_EQ((geometry >> 16) & 0xFF, 7u);  // o
  EXPECT_EQ((geometry >> 24) & 0xFF, 2u);  // p
}

TEST(SafeDm, ApbControlWrites) {
  SafeDmConfig c = cfg();
  c.start_enabled = false;
  SafeDm dm(c);
  dm.apb_write(reg::kCtrl, 1u | (static_cast<u32>(ReportMode::kInterruptThreshold) << 1));
  EXPECT_TRUE(dm.enabled());
  dm.apb_write(reg::kThreshold, 3);
  for (int i = 0; i < 3; ++i) dm.on_cycle(i, active_frame(1, 0x13), active_frame(1, 0x13));
  EXPECT_TRUE(dm.interrupt_pending());
  dm.apb_write(reg::kCtrl, 1u | (1u << 4));  // clear irq, stay enabled
  EXPECT_FALSE(dm.interrupt_pending());
  dm.apb_write(reg::kCtrl, 1u | (1u << 3));  // reset counters
  EXPECT_EQ(dm.apb_read(reg::kNodivLo), 0u);
}

TEST(SafeDm, ApbHistogramReadout) {
  SafeDm dm(cfg());
  for (int i = 0; i < 2; ++i) dm.on_cycle(i, active_frame(1, 0x13), active_frame(1, 0x13));
  dm.on_cycle(2, active_frame(1, 0x13), active_frame(5, 0x13));
  dm.finalize();
  // Episode of length 2 lands in the (1,2] bin (index 1) of histogram 0.
  dm.apb_write(reg::kHistSelect, 1u);
  EXPECT_EQ(dm.apb_read(reg::kHistData), 1u);
  // Out-of-range bin reads as zero.
  dm.apb_write(reg::kHistSelect, 0xFFu);
  EXPECT_EQ(dm.apb_read(reg::kHistData), 0u);
}

TEST(SafeDm, HistDataReadSaturatesAtU32Max) {
  // kHistData is documented as a saturating u32 readout of a 64-bit bin
  // count; a count above 2^32 must clamp to 0xFFFFFFFF, never truncate.
  SafeDm dm(cfg());
  // Drive the bin count past 2^32 directly (2^32 monitored episodes are
  // not reachable in a test); the accessor's constness only reflects the
  // observation API, the histogram object itself is mutable state.
  const u64 huge = (u64{1} << 32) + 5;
  const_cast<Histogram&>(dm.nodiv_history()).add(2, huge);
  dm.apb_write(reg::kHistSelect, 1u);  // episode length 2 -> (1,2] bin
  EXPECT_EQ(dm.apb_read(reg::kHistData), 0xFFFFFFFFu);
  // A truncating read would have produced this instead:
  EXPECT_NE(dm.apb_read(reg::kHistData), static_cast<u32>(huge));
}

TEST(SafeDm, CrcCompareModeDetectsSameCases) {
  SafeDmConfig c = cfg();
  c.compare = CompareMode::kCrc32;
  SafeDm dm(c);
  dm.on_cycle(0, active_frame(1, 0x13), active_frame(1, 0x13));
  EXPECT_EQ(dm.counters().nodiv_cycles, 1u);
  dm.on_cycle(1, active_frame(2, 0x13), active_frame(3, 0x13));
  EXPECT_EQ(dm.counters().nodiv_cycles, 1u);
}

TEST(SafeDm, ResetClearsEverything) {
  SafeDm dm(cfg());
  for (int i = 0; i < 5; ++i) dm.on_cycle(i, active_frame(1, 0x13), idle_frame(1));
  dm.reset();
  EXPECT_EQ(dm.counters().nodiv_cycles, 0u);
  EXPECT_EQ(dm.counters().monitored_cycles, 0u);
  EXPECT_EQ(dm.instruction_diff(), 0);
}

TEST(SafeDm, StorageBitsMatchGeometry) {
  SafeDm dm(cfg());
  EXPECT_EQ(dm.storage_bits(), 2u * (4u * 4u * 65u + 7u * 2u * 33u));
}

}  // namespace
}  // namespace safedm::monitor
