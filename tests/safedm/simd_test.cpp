// Unit tests for the runtime-dispatched compare kernels (simd.hpp): every
// kernel the host can execute must agree bit-for-bit with the portable u64
// oracle on randomized inputs, including the unaligned tails the vector
// loops hand to their scalar epilogues, and the dispatch plumbing must
// clamp overrides to hardware capability.
#include <gtest/gtest.h>

#include <vector>

#include "safedm/common/rng.hpp"
#include "safedm/safedm/simd.hpp"

namespace safedm::monitor::simd {
namespace {

std::vector<Kernel> supported_kernels() {
  std::vector<Kernel> kernels;
  for (Kernel k : {Kernel::kPortable, Kernel::kSse2, Kernel::kAvx2})
    if (kernel_supported(k)) kernels.push_back(k);
  return kernels;
}

/// Pin the active kernel for a scope, restoring the previous one on exit
/// (other tests in the binary rely on the detected default).
class ScopedKernel {
 public:
  explicit ScopedKernel(Kernel kernel) : previous_(active_kernel()) { force_kernel(kernel); }
  ~ScopedKernel() { force_kernel(previous_); }

 private:
  Kernel previous_;
};

TEST(SimdDispatch, PortableIsAlwaysSupported) {
  EXPECT_TRUE(kernel_supported(Kernel::kPortable));
  EXPECT_TRUE(kernel_supported(hardware_kernel()));
}

TEST(SimdDispatch, ForceKernelClampsToHardwareAndReturnsTheInstalledOne) {
  const Kernel previous = active_kernel();
  for (Kernel want : {Kernel::kPortable, Kernel::kSse2, Kernel::kAvx2}) {
    const Kernel got = force_kernel(want);
    EXPECT_EQ(got, active_kernel());
    EXPECT_TRUE(kernel_supported(got));
    if (kernel_supported(want)) EXPECT_EQ(got, want);
    else EXPECT_EQ(got, hardware_kernel());  // clamped down, never up
  }
  force_kernel(previous);
}

TEST(SimdDispatch, KernelNamesAreStable) {
  EXPECT_STREQ(kernel_name(Kernel::kPortable), "portable");
  EXPECT_STREQ(kernel_name(Kernel::kSse2), "sse2");
  EXPECT_STREQ(kernel_name(Kernel::kAvx2), "avx2");
}

TEST(SimdWordsEqual, AllKernelsAgreeWithThePortableOracle) {
  Xoshiro256 rng(0x51D0'0001);
  for (Kernel kernel : supported_kernels()) {
    const WordsEqualFn fn = words_equal_fn(kernel);
    // Sizes straddle the SSE2 (2-word) and AVX2 (4-word) strides so both
    // the vector body and the scalar tail are exercised.
    for (unsigned n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 14u, 64u}) {
      for (int trial = 0; trial < 200; ++trial) {
        std::vector<u64> a(n), b(n);
        for (unsigned i = 0; i < n; ++i) a[i] = rng.below(4);  // frequent equality
        b = a;
        if (n != 0 && rng.chance(0.5)) b[rng.below(n)] ^= u64{1} << rng.below(64);
        EXPECT_EQ(fn(a.data(), b.data(), n), words_equal_portable(a.data(), b.data(), n))
            << kernel_name(kernel) << " n=" << n << " trial=" << trial;
      }
    }
  }
}

TEST(SimdWordsEqualFixed, AllKernelsAgreeWithTheVariableCountOracle) {
  // The fixed-count kernels are what the chunked monitor loop actually
  // dispatches to (kStageSlots baked in); instantiate the counts the
  // vector bodies treat differently (multiple-of-4, +2 tail, odd tail)
  // and check them against the variable-count portable oracle.
  Xoshiro256 rng(0x51D0'0003);
  struct Fixed {
    unsigned n;
    WordsEqualFixedFn fn;
  };
  for (Kernel kernel : supported_kernels()) {
    const Fixed fns[] = {
        {1, words_equal_fixed_fn<1>(kernel)},   {2, words_equal_fixed_fn<2>(kernel)},
        {3, words_equal_fixed_fn<3>(kernel)},   {4, words_equal_fixed_fn<4>(kernel)},
        {5, words_equal_fixed_fn<5>(kernel)},   {7, words_equal_fixed_fn<7>(kernel)},
        {8, words_equal_fixed_fn<8>(kernel)},   {13, words_equal_fixed_fn<13>(kernel)},
        {14, words_equal_fixed_fn<14>(kernel)}, {16, words_equal_fixed_fn<16>(kernel)},
    };
    for (const Fixed& fixed : fns) {
      for (int trial = 0; trial < 200; ++trial) {
        std::vector<u64> a(fixed.n), b(fixed.n);
        for (unsigned i = 0; i < fixed.n; ++i) a[i] = rng.below(4);
        b = a;
        if (rng.chance(0.5)) b[rng.below(fixed.n)] ^= u64{1} << rng.below(64);
        EXPECT_EQ(fixed.fn(a.data(), b.data()),
                  words_equal_portable(a.data(), b.data(), fixed.n))
            << kernel_name(kernel) << " n=" << fixed.n << " trial=" << trial;
      }
    }
  }
}

TEST(SimdMismatchBits, AllKernelsAgreeWithThePortableOracle) {
  Xoshiro256 rng(0x51D0'0002);
  for (Kernel kernel : supported_kernels()) {
    const MismatchBitsFn fn = mismatch_bits_fn(kernel);
    for (unsigned n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 33u, 63u, 64u}) {
      for (int trial = 0; trial < 200; ++trial) {
        std::vector<u64> av(n), bv(n);
        std::vector<u8> ae(n), be(n);
        for (unsigned i = 0; i < n; ++i) {
          av[i] = rng.below(3);
          bv[i] = rng.chance(0.5) ? av[i] : rng.below(3);
          ae[i] = static_cast<u8>(rng.below(2));  // enables are strictly 0/1
          be[i] = rng.chance(0.5) ? ae[i] : static_cast<u8>(rng.below(2));
        }
        EXPECT_EQ(fn(av.data(), bv.data(), ae.data(), be.data(), n),
                  mismatch_bits_portable(av.data(), bv.data(), ae.data(), be.data(), n))
            << kernel_name(kernel) << " n=" << n << " trial=" << trial;
      }
    }
  }
}

TEST(SimdMismatchBits, ValuesDifferingOnlyInHighLanesAreCaught) {
  // The SSE2 kernel compares 32-bit lanes and the AVX2 kernel 64-bit
  // lanes; a difference confined to the upper half of one u64 must still
  // set exactly that slot's bit in every kernel.
  for (Kernel kernel : supported_kernels()) {
    const MismatchBitsFn fn = mismatch_bits_fn(kernel);
    for (unsigned n : {4u, 8u}) {
      for (unsigned slot = 0; slot < n; ++slot) {
        std::vector<u64> av(n, 0x0123'4567'89AB'CDEFULL), bv = av;
        std::vector<u8> ae(n, 1), be(n, 1);
        bv[slot] ^= u64{1} << 63;
        EXPECT_EQ(fn(av.data(), bv.data(), ae.data(), be.data(), n), u64{1} << slot)
            << kernel_name(kernel) << " n=" << n << " slot=" << slot;
      }
    }
  }
}

TEST(SimdConvenienceForms, DispatchThroughTheActiveKernel) {
  const u64 a[4] = {1, 2, 3, 4};
  const u64 b[4] = {1, 2, 3, 5};
  const u8 on[4] = {1, 1, 1, 1};
  for (Kernel kernel : supported_kernels()) {
    ScopedKernel pin(kernel);
    EXPECT_TRUE(words_equal(a, a, 4));
    EXPECT_FALSE(words_equal(a, b, 4));
    EXPECT_EQ(mismatch_bits(a, b, on, on, 4), u64{8});
  }
}

}  // namespace
}  // namespace safedm::monitor::simd
