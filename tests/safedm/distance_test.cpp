#include <gtest/gtest.h>

#include "safedm/safedm/monitor.hpp"
#include "safedm/safedm/signature.hpp"

namespace safedm::monitor {
namespace {

SafeDmConfig cfg() {
  SafeDmConfig c;
  c.data_fifo_depth = 4;
  c.num_ports = 4;
  c.track_distance = true;
  c.start_enabled = true;
  return c;
}

core::CoreTapFrame frame_with_port(unsigned port, u64 value) {
  core::CoreTapFrame f;
  f.port[port] = core::PortTap{true, value};
  f.commits = 1;
  return f;
}

TEST(Distance, ZeroForIdenticalState) {
  SignatureGenerator a(cfg()), b(cfg());
  a.capture(frame_with_port(0, 42));
  b.capture(frame_with_port(0, 42));
  EXPECT_EQ(SignatureGenerator::data_distance(a, b), 0u);
  EXPECT_EQ(SignatureGenerator::instruction_distance(a, b), 0u);
}

TEST(Distance, CountsExactBitFlips) {
  SignatureGenerator a(cfg()), b(cfg());
  a.capture(frame_with_port(1, 0b1011));
  b.capture(frame_with_port(1, 0b0010));  // differs in 2 bits
  EXPECT_EQ(SignatureGenerator::data_distance(a, b), 2u);
}

TEST(Distance, EnableBitCountsAsOne) {
  SignatureGenerator a(cfg()), b(cfg());
  core::CoreTapFrame fa, fb;
  fa.port[0] = core::PortTap{true, 0};
  fb.port[0] = core::PortTap{false, 0};
  a.capture(fa);
  b.capture(fb);
  EXPECT_EQ(SignatureGenerator::data_distance(a, b), 1u);
}

TEST(Distance, InstructionDistanceSeesEncodingAndValidBits) {
  SignatureGenerator a(cfg()), b(cfg());
  core::CoreTapFrame fa, fb;
  fa.stage[3][0] = core::StageSlotTap{true, 0x0000000F};
  fb.stage[3][0] = core::StageSlotTap{true, 0x00000000};
  a.capture(fa);
  b.capture(fb);
  EXPECT_EQ(SignatureGenerator::instruction_distance(a, b), 4u);

  fb.stage[3][0] = core::StageSlotTap{false, 0x0000000F};
  b.capture(fb);
  EXPECT_EQ(SignatureGenerator::instruction_distance(a, b), 1u);
}

TEST(Distance, ZeroDistanceIffEqualSignatures) {
  // Distance and equality must agree across a sweep of random-ish states.
  SignatureGenerator a(cfg()), b(cfg());
  u64 salt = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 200; ++i) {
    salt = salt * 6364136223846793005ull + 1442695040888963407ull;
    a.capture(frame_with_port(salt % 4, salt >> 8));
    b.capture(frame_with_port((salt >> 4) % 4, salt >> 12));
    const bool equal = SignatureGenerator::data_equal(a, b);
    const u64 distance = SignatureGenerator::data_distance(a, b);
    EXPECT_EQ(equal, distance == 0) << "iteration " << i;
  }
}

TEST(Distance, MonitorAggregatesMinMeanMax) {
  SafeDm dm(cfg());
  // cycle 1: identical; cycle 2: one bit apart on port 0.
  dm.on_cycle(1, frame_with_port(0, 8), frame_with_port(0, 8));
  dm.on_cycle(2, frame_with_port(0, 8), frame_with_port(0, 9));
  const auto& c = dm.counters();
  EXPECT_EQ(c.distance_min, 0u);
  EXPECT_GE(c.distance_max, 1u);
  EXPECT_EQ(dm.distance_history().total_samples(), 2u);
}

TEST(Distance, DisabledTrackingCostsNothing) {
  SafeDmConfig c = cfg();
  c.track_distance = false;
  SafeDm dm(c);
  dm.on_cycle(1, frame_with_port(0, 1), frame_with_port(0, 2));
  EXPECT_EQ(dm.counters().distance_sum, 0u);
  EXPECT_EQ(dm.distance_history().total_samples(), 0u);
}

}  // namespace
}  // namespace safedm::monitor
