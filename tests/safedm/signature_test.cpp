#include "safedm/safedm/signature.hpp"

#include <gtest/gtest.h>

#include "safedm/common/check.hpp"

namespace safedm::monitor {
namespace {

SafeDmConfig cfg(unsigned depth = 4, unsigned ports = 4) {
  SafeDmConfig c;
  c.data_fifo_depth = depth;
  c.num_ports = ports;
  return c;
}

core::CoreTapFrame frame_with_port(unsigned port, u64 value, bool enable = true) {
  core::CoreTapFrame f;
  f.port[port] = core::PortTap{enable, value};
  return f;
}

core::CoreTapFrame frame_with_stage(unsigned stage, unsigned lane, u32 encoding) {
  core::CoreTapFrame f;
  f.stage[stage][lane] = core::StageSlotTap{true, encoding};
  return f;
}

TEST(SignatureGenerator, FreshGeneratorsAreEqual) {
  SignatureGenerator a(cfg()), b(cfg());
  EXPECT_TRUE(SignatureGenerator::data_equal(a, b));
  EXPECT_TRUE(SignatureGenerator::instruction_equal(a, b));
}

TEST(SignatureGenerator, PortValueDifferenceBreaksDataEquality) {
  SignatureGenerator a(cfg()), b(cfg());
  a.capture(frame_with_port(0, 0x1234));
  b.capture(frame_with_port(0, 0x1235));
  EXPECT_FALSE(SignatureGenerator::data_equal(a, b));
}

TEST(SignatureGenerator, EnableBitAloneBreaksDataEquality) {
  SignatureGenerator a(cfg()), b(cfg());
  a.capture(frame_with_port(0, 0, true));
  b.capture(frame_with_port(0, 0, false));
  EXPECT_FALSE(SignatureGenerator::data_equal(a, b));
}

TEST(SignatureGenerator, SameHistorySameSignature) {
  SignatureGenerator a(cfg()), b(cfg());
  for (u64 v : {1, 2, 3}) {
    a.capture(frame_with_port(1, v));
    b.capture(frame_with_port(1, v));
  }
  EXPECT_TRUE(SignatureGenerator::data_equal(a, b));
}

TEST(SignatureGenerator, TimingOfPortActivityMatters) {
  // Same values read, but at different cycles (one core idles a cycle):
  // the paper's rationale for recording every cycle rather than only on
  // accesses (Section III-B1).
  SignatureGenerator a(cfg()), b(cfg());
  a.capture(frame_with_port(0, 7));
  a.capture(core::CoreTapFrame{});  // idle cycle after
  b.capture(core::CoreTapFrame{});  // idle cycle before
  b.capture(frame_with_port(0, 7));
  EXPECT_FALSE(SignatureGenerator::data_equal(a, b));
}

TEST(SignatureGenerator, OldSamplesAgeOutOfTheWindow) {
  SignatureGenerator a(cfg(2)), b(cfg(2));
  a.capture(frame_with_port(0, 111));  // will age out
  // Two more captures push the difference out of the depth-2 window.
  for (int i = 0; i < 2; ++i) {
    a.capture(frame_with_port(0, 9));
    b.capture(frame_with_port(0, 9));
  }
  EXPECT_TRUE(SignatureGenerator::data_equal(a, b));
}

TEST(SignatureGenerator, HoldFreezesDataFifos) {
  SignatureGenerator a(cfg()), b(cfg());
  a.capture(frame_with_port(0, 5));
  b.capture(frame_with_port(0, 5));
  // Core A stalls for 3 cycles; its FIFO must not shift.
  for (int i = 0; i < 3; ++i) {
    core::CoreTapFrame held = frame_with_port(0, 0xDEAD);
    held.hold = true;
    a.capture(held);
  }
  EXPECT_TRUE(SignatureGenerator::data_equal(a, b));
}

TEST(SignatureGenerator, RingPhaseDoesNotAffectEquality) {
  // Generator a has shifted depth+1 times, b only once, with identical
  // trailing history: signatures must compare equal (FIFO content, not
  // internal head position, is the signature).
  SignatureGenerator a(cfg(3)), b(cfg(3));
  a.capture(frame_with_port(0, 42));  // extra old sample
  for (u64 v : {1, 2, 3}) a.capture(frame_with_port(0, v));
  // b gets zero-fill (reset state) then the same 3 samples... but its
  // oldest entry is the reset entry, not 42's successor; replicate by
  // pushing a zero frame first.
  b.capture(core::CoreTapFrame{});
  for (u64 v : {1, 2, 3}) b.capture(frame_with_port(0, v));
  EXPECT_TRUE(SignatureGenerator::data_equal(a, b));
}

TEST(SignatureGenerator, StageEncodingDifferenceBreaksInstructionEquality) {
  SignatureGenerator a(cfg()), b(cfg());
  a.capture(frame_with_stage(2, 0, 0x00100093));
  b.capture(frame_with_stage(2, 0, 0x00200093));
  EXPECT_FALSE(SignatureGenerator::instruction_equal(a, b));
}

TEST(SignatureGenerator, PerStageModeDetectsPipelinePhaseDifference) {
  // Same instruction, different stage: per-stage IS sees diversity
  // (paper III-B2); the flat list does not (ablation A1).
  const u32 encoding = 0x00100093;
  SafeDmConfig per_stage = cfg();
  SignatureGenerator a(per_stage), b(per_stage);
  a.capture(frame_with_stage(2, 0, encoding));
  b.capture(frame_with_stage(3, 0, encoding));
  EXPECT_FALSE(SignatureGenerator::instruction_equal(a, b));

  SafeDmConfig flat = cfg();
  flat.is_mode = IsMode::kFlatList;
  SignatureGenerator c(flat), d(flat);
  c.capture(frame_with_stage(2, 0, encoding));
  d.capture(frame_with_stage(3, 0, encoding));
  EXPECT_TRUE(SignatureGenerator::instruction_equal(c, d));
}

TEST(SignatureGenerator, FlatModeStillSeesDifferentInstructions) {
  SafeDmConfig flat = cfg();
  flat.is_mode = IsMode::kFlatList;
  SignatureGenerator a(flat), b(flat);
  a.capture(frame_with_stage(2, 0, 0x00100093));
  b.capture(frame_with_stage(2, 0, 0x00200093));
  EXPECT_FALSE(SignatureGenerator::instruction_equal(a, b));
}

TEST(SignatureGenerator, CrcMatchesRawVerdictOnSimpleCases) {
  SignatureGenerator a(cfg()), b(cfg());
  a.capture(frame_with_port(0, 1));
  b.capture(frame_with_port(0, 1));
  EXPECT_EQ(a.data_crc(), b.data_crc());
  b.capture(frame_with_port(0, 2));
  a.capture(frame_with_port(0, 3));
  EXPECT_NE(a.data_crc(), b.data_crc());
}

TEST(SignatureGenerator, SignatureBitCounts) {
  SignatureGenerator s(cfg(8, 4));
  EXPECT_EQ(s.data_signature_bits(), 8u * 4u * 65u);
  EXPECT_EQ(s.instruction_signature_bits(), 7u * 2u * 33u);
}

TEST(SignatureGenerator, ResetRestoresInitialState) {
  SignatureGenerator a(cfg()), b(cfg());
  a.capture(frame_with_port(0, 77));
  a.capture(frame_with_stage(1, 0, 0x13));
  a.reset();
  EXPECT_TRUE(SignatureGenerator::data_equal(a, b));
  EXPECT_TRUE(SignatureGenerator::instruction_equal(a, b));
}

TEST(SignatureGenerator, NewestSampleAccessor) {
  SignatureGenerator s(cfg());
  s.capture(frame_with_port(2, 0xABCD));
  EXPECT_EQ(s.newest_sample(2).value, 0xABCDu);
  EXPECT_TRUE(s.newest_sample(2).enable);
  EXPECT_FALSE(s.newest_sample(0).enable);
}

TEST(SignatureGenerator, GeometryMismatchThrows) {
  SignatureGenerator a(cfg(4)), b(cfg(8));
  EXPECT_THROW(SignatureGenerator::data_equal(a, b), safedm::CheckError);
}

}  // namespace
}  // namespace safedm::monitor
