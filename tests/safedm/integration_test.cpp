// End-to-end SafeDM-on-MPSoC tests reproducing the paper's core claims:
//  - redundant execution on distinct address spaces is naturally diverse,
//  - no false negatives: every no-diversity cycle really has identical
//    monitored state,
//  - staggering removes both zero-staggering and no-diversity cycles,
//  - SafeDM is non-intrusive (cycle counts are unchanged by monitoring).
#include <gtest/gtest.h>

#include "safedm/isa/encode.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"

namespace safedm::monitor {
namespace {

using namespace assembler;
namespace e = isa::enc;

/// A small compute+memory benchmark: checksum over an array, several passes.
Program workload(unsigned passes = 4) {
  Assembler a;
  DataBuilder d;
  std::vector<u32> input;
  for (u32 i = 0; i < 64; ++i) input.push_back(i * 2654435761u);
  const u64 arr = d.add_u32_array(input);
  const u64 out = d.add_u64(0);
  Label pass = a.new_label(), loop = a.new_label(), inner_done = a.new_label();
  a.li(S1, static_cast<i64>(passes));
  a.li(S2, 0);
  a.bind(pass);
  a.lea_data(S0, arr);
  a.li(T0, 64);
  a.bind(loop);
  a.beqz(T0, inner_done);
  a(e::lwu(T1, S0, 0));
  a(e::add(S2, S2, T1));
  a(e::slli(T2, S2, 1));
  a(e::xor_(S2, S2, T2));
  a(e::addi(S0, S0, 4));
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(inner_done);
  a(e::addi(S1, S1, -1));
  a.bnez(S1, pass);
  a.lea_data(S0, out);
  a(e::sd(S2, S0, 0));
  a(e::ecall());
  return a.assemble("checksum", std::move(d));
}

struct Rig {
  explicit Rig(SafeDmConfig dm_config = {}, soc::SocConfig soc_config = {})
      : soc(soc_config), dm([&] {
          dm_config.start_enabled = true;
          return dm_config;
        }()) {
    soc.add_observer(&dm);
    soc.apb().map(0x80000000, 0x100, &dm, "safedm");
  }

  u64 run_redundant(const Program& program, unsigned nops = 0, unsigned delayed = 1,
                    u64 max_cycles = 4'000'000) {
    soc.load_redundant(program, nops, delayed);
    dm.reset();
    dm.set_prelude_ignore(0, soc.prelude_commits(0));
    dm.set_prelude_ignore(1, soc.prelude_commits(1));
    const u64 cycles = soc.run(max_cycles);
    dm.finalize();
    return cycles;
  }

  soc::MpSoc soc;
  SafeDm dm;
};

TEST(SafeDmIntegration, RedundantRunIsMostlyDiverse) {
  Rig rig;
  rig.run_redundant(workload());
  ASSERT_TRUE(rig.soc.all_halted());
  const auto& c = rig.dm.counters();
  EXPECT_GT(c.monitored_cycles, 1000u);
  // Natural diversity: no-diversity cycles are a tiny fraction.
  EXPECT_LT(c.nodiv_cycles * 10, c.monitored_cycles);
  // Zero staggering is at least as frequent as no diversity (diversity can
  // exist at zero staggering, not vice versa in expectation).
  EXPECT_GE(c.zero_stag_cycles + c.nodiv_cycles, c.nodiv_cycles);
}

TEST(SafeDmIntegration, StaggeringRemovesZeroStagAndNoDiv) {
  Rig rig0;
  rig0.run_redundant(workload());
  Rig rig10k;
  rig10k.run_redundant(workload(), /*nops=*/10'000);
  EXPECT_LE(rig10k.dm.counters().zero_stag_cycles, rig0.dm.counters().zero_stag_cycles);
  EXPECT_EQ(rig10k.dm.counters().nodiv_cycles, 0u);
  EXPECT_EQ(rig10k.dm.counters().zero_stag_cycles, 0u);
}

TEST(SafeDmIntegration, MonitoringIsNonIntrusive) {
  // Run the same program with and without SafeDM attached: cycle counts
  // must be identical (the monitor only observes).
  soc::MpSoc bare{soc::SocConfig{}};
  bare.load_redundant(workload());
  const u64 bare_cycles = bare.run(4'000'000);

  Rig rig;
  const u64 monitored_cycles = rig.run_redundant(workload());
  EXPECT_EQ(bare_cycles, monitored_cycles);
}

TEST(SafeDmIntegration, NoFalseNegativesProperty) {
  // Independently recompute diversity from the raw tap frames each cycle:
  // whenever SafeDM reports no diversity, the monitored state (stage slots
  // + port FIFO windows) must be bit-identical. We verify the weaker but
  // direct form: any per-cycle difference in stage slots or port samples
  // implies SafeDM reports diversity for at least the window length.
  struct Checker : soc::CycleObserver {
    SafeDm* dm = nullptr;
    u64 violations = 0;
    void on_cycle(u64, const core::CoreTapFrame& f0, const core::CoreTapFrame& f1) override {
      if (!dm->lacking_diversity_now()) return;
      // SafeDM said "no diversity" this cycle: the *current* frames'
      // monitored fields must agree (a current difference would make DS or
      // IS differ, a contradiction).
      if (!(f0.stage == f1.stage)) ++violations;
      for (unsigned p = 0; p < dm->config().num_ports; ++p)
        if (!f0.hold && !f1.hold && !(f0.port[p] == f1.port[p])) ++violations;
    }
  } checker;

  Rig rig;
  checker.dm = &rig.dm;
  rig.soc.add_observer(&checker);  // runs after the monitor each cycle
  rig.run_redundant(workload());
  EXPECT_EQ(checker.violations, 0u);
}

TEST(SafeDmIntegration, DistinctAddressSpacesAreTheDiversitySource) {
  // Ablation A3: with a shared data segment the cores' pointer values are
  // identical, so no-diversity cycles can only grow.
  soc::SocConfig shared;
  shared.shared_data = true;
  Rig rig_shared{SafeDmConfig{}, shared};
  rig_shared.run_redundant(workload());

  Rig rig_distinct;
  rig_distinct.run_redundant(workload());

  EXPECT_GE(rig_shared.dm.counters().nodiv_cycles,
            rig_distinct.dm.counters().nodiv_cycles);
}

TEST(SafeDmIntegration, ApbAccessOverSocBus) {
  Rig rig;
  rig.run_redundant(workload());
  const u64 nodiv = rig.dm.counters().nodiv_cycles;
  const u32 lo = rig.soc.apb().read(0x80000000 + reg::kNodivLo);
  const u32 hi = rig.soc.apb().read(0x80000000 + reg::kNodivHi);
  EXPECT_EQ((static_cast<u64>(hi) << 32) | lo, nodiv);
}

TEST(SafeDmIntegration, DiverseSoftwareAlsoMonitorable) {
  // SafeDM puts no constraints on the software (paper III-B4): monitoring
  // two *different* programs works and trivially shows diversity.
  Rig rig;
  rig.soc.load_distinct(workload(2), workload(5));
  rig.dm.reset();
  rig.soc.run(4'000'000);
  rig.dm.finalize();
  ASSERT_TRUE(rig.soc.all_halted());
  EXPECT_EQ(rig.dm.counters().nodiv_cycles, 0u);
}

TEST(SafeDmIntegration, IdenticalCcfWindowEqualsNoDivWindow) {
  // Failure-injection sanity: the risk window for a common-cause fault is
  // exactly the set of cycles SafeDM flags. Inject an "identical fault" at
  // a flagged cycle and at a diverse cycle, and check distinguishability:
  // at a diverse cycle the two cores' monitored state differs, so the same
  // physical fault cannot produce identical errors.
  Rig rig;
  struct Recorder : soc::CycleObserver {
    SafeDm* dm = nullptr;
    std::vector<bool> flagged;
    std::vector<bool> frames_equal;
    void on_cycle(u64, const core::CoreTapFrame& f0, const core::CoreTapFrame& f1) override {
      flagged.push_back(dm->lacking_diversity_now());
      frames_equal.push_back(f0.stage == f1.stage);
    }
  } recorder;
  recorder.dm = &rig.dm;
  rig.soc.add_observer(&recorder);
  rig.run_redundant(workload());
  for (std::size_t i = 0; i < recorder.flagged.size(); ++i) {
    if (recorder.flagged[i]) {
      EXPECT_TRUE(recorder.frames_equal[i]) << "flagged cycle " << i << " had diverse pipelines";
    }
  }
}

}  // namespace
}  // namespace safedm::monitor
