#include "safedm/soc/soc.hpp"

#include <gtest/gtest.h>

#include "safedm/isa/encode.hpp"

namespace safedm::soc {
namespace {

using assembler::Assembler;
using assembler::DataBuilder;
using assembler::Label;
using assembler::Program;
using namespace assembler;  // register aliases
namespace e = isa::enc;

Program counting_program(unsigned iterations) {
  Assembler a;
  DataBuilder d;
  const u64 out = d.add_u64(0);
  Label loop = a.new_label(), done = a.new_label();
  a.li(T0, static_cast<i64>(iterations));
  a.li(T1, 0);
  a.bind(loop);
  a.beqz(T0, done);
  a(e::add(T1, T1, T0));
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(done);
  a.lea_data(S0, out);
  a(e::sd(T1, S0, 0));
  a(e::ecall());
  return a.assemble("count", std::move(d));
}

TEST(MpSoc, RedundantProgramsBothComplete) {
  MpSoc soc{SocConfig{}};
  soc.load_redundant(counting_program(100));
  const u64 cycles = soc.run(1'000'000);
  EXPECT_TRUE(soc.all_halted());
  EXPECT_GT(cycles, 100u);
  // Both cores computed the same result into their own data segments.
  EXPECT_EQ(soc.memory().load(soc.config().data_base0, 8), 5050u);
  EXPECT_EQ(soc.memory().load(soc.config().data_base1, 8), 5050u);
}

TEST(MpSoc, DistinctDataSegmentsGiveDistinctPointers) {
  MpSoc soc{SocConfig{}};
  soc.load_redundant(counting_program(10));
  EXPECT_EQ(soc.core(0).arch().x[A0], soc.config().data_base0);
  EXPECT_EQ(soc.core(1).arch().x[A0], soc.config().data_base1);
}

TEST(MpSoc, SharedDataModeUsesOneSegment) {
  SocConfig config;
  config.shared_data = true;
  MpSoc soc{config};
  soc.load_redundant(counting_program(10));
  EXPECT_EQ(soc.core(0).arch().x[A0], soc.core(1).arch().x[A0]);
  soc.run(1'000'000);
  EXPECT_TRUE(soc.all_halted());
  EXPECT_EQ(soc.memory().load(soc.config().data_base0, 8), 55u);
}

TEST(MpSoc, StaggeredCoreCommitsPreludeNops) {
  MpSoc soc{SocConfig{}};
  soc.load_redundant(counting_program(50), /*stagger_nops=*/100, /*delayed_core=*/1);
  EXPECT_EQ(soc.prelude_commits(0), 0u);
  EXPECT_EQ(soc.prelude_commits(1), 100u);
  soc.run(1'000'000);
  EXPECT_TRUE(soc.all_halted());
  // Delayed core committed the same program instructions plus the nops.
  EXPECT_EQ(soc.core(1).stats().committed, soc.core(0).stats().committed + 100);
  // Both computed the right answer.
  EXPECT_EQ(soc.memory().load(soc.config().data_base1, 8), 1275u);
}

TEST(MpSoc, DelayedCoreFinishesLater) {
  MpSoc soc{SocConfig{}};
  soc.load_redundant(counting_program(200), /*stagger_nops=*/1000, /*delayed_core=*/1);
  u64 halt0 = 0, halt1 = 0;
  while (!soc.all_halted() && soc.cycle() < 1'000'000) {
    soc.step();
    if (halt0 == 0 && soc.core(0).halted()) halt0 = soc.cycle();
    if (halt1 == 0 && soc.core(1).halted()) halt1 = soc.cycle();
  }
  EXPECT_TRUE(soc.all_halted());
  EXPECT_GT(halt1, halt0 + 100);
}

TEST(MpSoc, BusSerializesColdMisses) {
  MpSoc soc{SocConfig{}};
  soc.load_redundant(counting_program(100));
  soc.run(1'000'000);
  const auto& stats = soc.ahb().stats();
  EXPECT_GT(stats.grants, 2u);
  // Both cores generated traffic and somebody had to wait at least once.
  EXPECT_GT(stats.master_grants[0], 0u);
  EXPECT_GT(stats.master_grants[1], 0u);
  EXPECT_GT(stats.wait_cycles[0] + stats.wait_cycles[1], 0u);
}

TEST(MpSoc, ArbiterBiasChangesWhoWins) {
  // With bias 0 core0's first request wins; with bias 1 core1's does. The
  // cores' finishing order (or at least cycle counts) must differ.
  u64 cycles_by_bias[2] = {0, 0};
  for (unsigned bias = 0; bias < 2; ++bias) {
    SocConfig config;
    config.arbiter_bias = bias;
    MpSoc soc{config};
    soc.load_redundant(counting_program(100));
    soc.run(1'000'000);
    cycles_by_bias[bias] = soc.core(0).stats().cycles - soc.core(1).stats().cycles == 0
                               ? soc.cycle()
                               : soc.cycle() + 1;
    EXPECT_TRUE(soc.all_halted());
  }
  SUCCEED();  // deterministic completion under both biases is the property
}

TEST(MpSoc, ObserverSeesEveryCycle) {
  struct Counter : CycleObserver {
    u64 calls = 0;
    void on_cycle(u64, const core::CoreTapFrame&, const core::CoreTapFrame&) override {
      ++calls;
    }
  } counter;
  MpSoc soc{SocConfig{}};
  soc.load_redundant(counting_program(10));
  soc.add_observer(&counter);
  const u64 cycles = soc.run(100'000);
  EXPECT_EQ(counter.calls, cycles);
}

TEST(MpSoc, LoadDistinctRunsDifferentPrograms) {
  MpSoc soc{SocConfig{}};
  soc.load_distinct(counting_program(10), counting_program(20));
  soc.run(1'000'000);
  EXPECT_TRUE(soc.all_halted());
  EXPECT_EQ(soc.memory().load(soc.config().data_base0, 8), 55u);
  EXPECT_EQ(soc.memory().load(soc.config().data_base1, 8), 210u);
}

TEST(MpSoc, IdenticalConfigsRunDeterministically) {
  u64 cycles[2];
  for (int i = 0; i < 2; ++i) {
    MpSoc soc{SocConfig{}};
    soc.load_redundant(counting_program(500));
    cycles[i] = soc.run(2'000'000);
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

}  // namespace
}  // namespace safedm::soc
