// Redundancy-group topology: construction contract (num_cores "even,
// 2..8"; explicit groups cover 2..8 replicas each, at most 8 cores
// total; decorrelation offsets validated against the platform strides)
// plus the per-replica decorrelation transforms observable through the
// loaded SoC — distinct text bases, data bases, stack tops, and
// shuffled-but-equivalent replica images.
#include <gtest/gtest.h>

#include "safedm/common/check.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::soc {
namespace {

TEST(GroupTopology, LegacyNumCoresContract) {
  for (const unsigned good : {2u, 4u, 6u, 8u}) {
    SocConfig config;
    config.num_cores = good;
    MpSoc soc(config);
    EXPECT_EQ(soc.num_cores(), good);
    EXPECT_EQ(soc.num_groups(), good / 2);
    for (unsigned g = 0; g < soc.num_groups(); ++g) {
      EXPECT_EQ(soc.group_size(g), 2u);
      EXPECT_EQ(soc.group_core(g, 0), 2 * g);
      EXPECT_EQ(soc.group_core(g, 1), 2 * g + 1);
    }
  }
  for (const unsigned bad : {0u, 1u, 3u, 5u, 7u, 9u, 10u, 16u}) {
    SocConfig config;
    config.num_cores = bad;
    EXPECT_THROW(MpSoc{config}, CheckError) << "num_cores " << bad;
  }
}

TEST(GroupTopology, ExplicitGroupShapeContract) {
  // Replica counts outside [2, 8] are rejected.
  for (const unsigned bad : {0u, 1u, 9u}) {
    SocConfig config;
    config.groups = {GroupSpec::homogeneous(bad == 0 ? 2 : bad)};
    if (bad == 0) config.groups[0].replicas.clear();
    EXPECT_THROW(MpSoc{config}, CheckError) << "group size " << bad;
  }
  // The topology may cover at most 8 cores in total.
  {
    SocConfig config;
    config.groups = {GroupSpec::homogeneous(5), GroupSpec::homogeneous(4)};
    EXPECT_THROW(MpSoc{config}, CheckError);
  }
  // 3 + 5 = 8 is fine, and num_cores is derived (the legacy field is
  // ignored when groups are explicit).
  {
    SocConfig config;
    config.num_cores = 2;
    config.groups = {GroupSpec::homogeneous(3), GroupSpec::homogeneous(5)};
    MpSoc soc(config);
    EXPECT_EQ(soc.num_cores(), 8u);
    EXPECT_EQ(soc.num_groups(), 2u);
    EXPECT_EQ(soc.group_size(0), 3u);
    EXPECT_EQ(soc.group_size(1), 5u);
    EXPECT_EQ(soc.group_core(1, 0), 3u);
    EXPECT_EQ(soc.group_core(1, 4), 7u);
  }
}

TEST(GroupTopology, DecorrelationOffsetsValidatedAtConstruction) {
  const SocConfig defaults;
  // Misaligned text offset.
  {
    SocConfig config;
    config.groups = {GroupSpec::homogeneous(2)};
    config.groups[0].replicas[1].text_offset = 2;
    EXPECT_THROW(MpSoc{config}, CheckError);
  }
  // Text offset overflowing the per-replica text stride.
  {
    SocConfig config;
    config.groups = {GroupSpec::homogeneous(2)};
    config.groups[0].replicas[1].text_offset = defaults.text_stride;
    EXPECT_THROW(MpSoc{config}, CheckError);
  }
  // Misaligned data / stack offsets.
  {
    SocConfig config;
    config.groups = {GroupSpec::homogeneous(2)};
    config.groups[0].replicas[1].data_offset = 8;
    EXPECT_THROW(MpSoc{config}, CheckError);
  }
  {
    SocConfig config;
    config.groups = {GroupSpec::homogeneous(2)};
    config.groups[0].replicas[1].stack_offset = 4;
    EXPECT_THROW(MpSoc{config}, CheckError);
  }
  // Two replicas sharing a text window slot (same text_offset) must share
  // one image, hence one shuffle seed.
  {
    SocConfig config;
    config.groups = {GroupSpec::homogeneous(3)};
    config.groups[0].replicas[1].reg_shuffle_seed = 7;  // same text_offset as replica 0
    EXPECT_THROW(MpSoc{config}, CheckError);
  }
  // The same seed difference is fine once the replicas occupy distinct
  // text slots.
  {
    SocConfig config;
    config.groups = {GroupSpec::homogeneous(3)};
    config.groups[0].replicas[1].text_offset = 0x400;
    config.groups[0].replicas[1].reg_shuffle_seed = 7;
    EXPECT_NO_THROW(MpSoc{config});
  }
}

TEST(GroupTopology, DecorrelatedTripleRunsToCompletion) {
  SocConfig config;
  GroupSpec group = GroupSpec::homogeneous(3);
  group.replicas[1].text_offset = 0x400;
  group.replicas[1].data_offset = 0x100;
  group.replicas[1].stack_offset = 0x40;
  group.replicas[1].reg_shuffle_seed = 0x5AFE;
  group.replicas[2].text_offset = 0x800;
  group.replicas[2].reg_shuffle_seed = 0xBEEF;
  config.groups = {group};
  MpSoc soc(config);

  monitor::SafeDmConfig dm_config;
  dm_config.num_replicas = 3;
  dm_config.start_enabled = true;
  monitor::SafeDm dm(dm_config);
  soc.add_observer(&dm);

  soc.load_redundant(workloads::build("bitcount", 1));
  soc.run(20'000'000);
  dm.finalize();
  ASSERT_TRUE(soc.all_halted());

  // The register shuffle is purely syntactic: every replica commits the
  // same instruction count (minus any nop prelude, zero here).
  const u64 committed0 = soc.core(0).stats().committed;
  EXPECT_EQ(committed0, soc.core(1).stats().committed);
  EXPECT_EQ(committed0, soc.core(2).stats().committed);
  EXPECT_GT(committed0, 0u);
  EXPECT_GT(dm.counters().monitored_cycles, 0u);

  // Decorrelated replicas land on distinct data bases.
  EXPECT_NE(soc.data_base(0), soc.data_base(1));
}

}  // namespace
}  // namespace safedm::soc
