// Four-core MPSoC tests: two redundant pairs sharing the bus and L2, each
// monitored by its own SafeDM instance (the paper's integration target is
// a 4-core Gaisler multicore).
#include <gtest/gtest.h>

#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::soc {
namespace {

SocConfig quad() {
  SocConfig config;
  config.num_cores = 4;
  return config;
}

TEST(QuadCore, TwoPairsRunToCompletion) {
  MpSoc soc{quad()};
  soc.load_redundant_pair(0, workloads::build("bsort", 1));
  soc.load_redundant_pair(1, workloads::build("isqrt", 1));
  soc.run(50'000'000);
  ASSERT_TRUE(soc.all_halted());
  // Pair 0 cores agree, pair 1 cores agree, the pairs differ.
  const u64 r0 = soc.memory().load(soc.data_base(0), 8);
  const u64 r1 = soc.memory().load(soc.data_base(1), 8);
  const u64 r2 = soc.memory().load(soc.data_base(2), 8);
  const u64 r3 = soc.memory().load(soc.data_base(3), 8);
  EXPECT_EQ(r0, r1);
  EXPECT_EQ(r2, r3);
  EXPECT_NE(r0, r2);
}

TEST(QuadCore, PerPairMonitorsSeeOnlyTheirPair) {
  MpSoc soc{quad()};
  monitor::SafeDmConfig dm_config;
  dm_config.start_enabled = true;
  monitor::SafeDm dm0(dm_config), dm1(dm_config);
  soc.add_observer(&dm0, 0);
  soc.add_observer(&dm1, 1);
  soc.load_redundant_pair(0, workloads::build("bitcount", 1));
  soc.load_redundant_pair(1, workloads::build("md5", 1));
  soc.run(50'000'000);
  dm0.finalize();
  dm1.finalize();
  ASSERT_TRUE(soc.all_halted());
  EXPECT_GT(dm0.counters().monitored_cycles, 1000u);
  EXPECT_GT(dm1.counters().monitored_cycles, 1000u);
  // Each pair's diff returns to zero independently.
  EXPECT_EQ(dm0.instruction_diff(), 0);
  EXPECT_EQ(dm1.instruction_diff(), 0);
}

TEST(QuadCore, UnloadedPairStaysParked) {
  MpSoc soc{quad()};
  soc.load_redundant_pair(0, workloads::build("fac", 1));
  soc.run(50'000'000);
  ASSERT_TRUE(soc.all_halted());
  // Parked cores halted immediately with ~1 committed instruction.
  EXPECT_LE(soc.core(2).stats().committed, 1u);
  EXPECT_LE(soc.core(3).stats().committed, 1u);
  EXPECT_EQ(soc.memory().load(soc.data_base(0), 8), soc.memory().load(soc.data_base(1), 8));
}

TEST(QuadCore, CrossPairInterferencePerturbsTiming) {
  // The same pair-0 workload must take longer (or equal) wall-clock when a
  // second pair competes for the bus and L2.
  u64 solo_cycles = 0, contended_cycles = 0;
  {
    MpSoc soc{SocConfig{}};
    soc.load_redundant(workloads::build("matrix1", 1));
    soc.run(50'000'000);
    solo_cycles = soc.core(0).stats().cycles;
  }
  {
    MpSoc soc{quad()};
    soc.load_redundant_pair(0, workloads::build("matrix1", 1));
    soc.load_redundant_pair(1, workloads::build("fft", 1));
    u64 halt0 = 0;
    while (!soc.all_halted() && soc.cycle() < 50'000'000) {
      soc.step();
      if (halt0 == 0 && soc.core(0).halted() && soc.core(1).halted()) halt0 = soc.cycle();
    }
    ASSERT_TRUE(soc.all_halted());
    contended_cycles = halt0;
  }
  EXPECT_GE(contended_cycles, solo_cycles);
}

TEST(QuadCore, RejectsOddCoreCounts) {
  SocConfig config;
  config.num_cores = 3;
  EXPECT_THROW(MpSoc{config}, CheckError);
  config.num_cores = 10;
  EXPECT_THROW(MpSoc{config}, CheckError);
}

TEST(QuadCore, DataBasesAreDisjointPerCore) {
  MpSoc soc{quad()};
  for (unsigned i = 0; i < 4; ++i)
    for (unsigned j = i + 1; j < 4; ++j) EXPECT_NE(soc.data_base(i), soc.data_base(j));
}

}  // namespace
}  // namespace safedm::soc
