// Guest-visible MMIO: programs running on the cores can poll SafeDM
// through ordinary loads/stores to the APB window (uncached accesses that
// bypass L1 and the store buffer).
#include <gtest/gtest.h>

#include "safedm/isa/encode.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"

namespace safedm::soc {
namespace {

using namespace assembler;
namespace e = isa::enc;

constexpr u64 kSafeDmBase = 0x8000'0000;

/// A program that reads SafeDM's MONITORED counter and GEOMETRY register
/// via MMIO and stores both into its data segment.
Program poller_program(unsigned spin_iterations) {
  Assembler a;
  DataBuilder d;
  const u64 out_monitored = d.add_u64(0);
  const u64 out_geometry = d.add_u64(0);
  // Busy work first so the counter is nonzero.
  Label loop = a.new_label(), done = a.new_label();
  a.li(T0, static_cast<i64>(spin_iterations));
  a.bind(loop);
  a.beqz(T0, done);
  a(e::xor_(T1, T1, T0));
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(done);
  a.li(S0, static_cast<i64>(kSafeDmBase));
  a(e::lwu(T2, S0, static_cast<i64>(monitor::reg::kMonitoredLo)));
  a(e::lwu(T3, S0, static_cast<i64>(monitor::reg::kGeometry)));
  a.lea_data(S1, out_monitored);
  a(e::sd(T2, S1, 0));
  a.lea_data(S1, out_geometry);
  a(e::sd(T3, S1, 0));
  a(e::ecall());
  return a.assemble("poller", std::move(d));
}

struct Rig {
  Rig() : soc(SocConfig{}) {
    monitor::SafeDmConfig config;
    config.start_enabled = true;
    dm = std::make_unique<monitor::SafeDm>(config);
    soc.add_observer(dm.get());
    soc.apb().map(kSafeDmBase, 0x100, dm.get(), "safedm");
  }
  MpSoc soc;
  std::unique_ptr<monitor::SafeDm> dm;
};

TEST(Mmio, GuestReadsLiveSafeDmCounters) {
  Rig rig;
  rig.soc.load_redundant(poller_program(200));
  rig.soc.run(1'000'000);
  ASSERT_TRUE(rig.soc.all_halted());
  const u64 monitored0 = rig.soc.memory().load(rig.soc.data_base(0), 8);
  const u64 monitored1 = rig.soc.memory().load(rig.soc.data_base(1), 8);
  // The snapshot was taken mid-run: nonzero and no larger than the final
  // count.
  EXPECT_GT(monitored0, 0u);
  EXPECT_LE(monitored0, rig.dm->counters().monitored_cycles);
  EXPECT_GT(monitored1, 0u);
  // The two cores read at different times (bus serialization), another
  // natural diversity source; both values are valid snapshots.
  EXPECT_LE(monitored1, rig.dm->counters().monitored_cycles);
  // Geometry register decodes identically for both.
  const u64 geometry0 = rig.soc.memory().load(rig.soc.data_base(0) + 8, 8);
  const u64 geometry1 = rig.soc.memory().load(rig.soc.data_base(1) + 8, 8);
  EXPECT_EQ(geometry0, geometry1);
  EXPECT_EQ(geometry0 & 0xFF, 8u);  // n = 8
}

TEST(Mmio, GuestWritesProgramTheMonitor) {
  Rig rig;
  // A one-core action: core 0's program writes the interrupt threshold.
  Assembler a;
  DataBuilder d;
  d.add_u64(0);
  a.li(S0, static_cast<i64>(kSafeDmBase));
  a.li(T0, 1234);
  a(e::sw(T0, S0, static_cast<i64>(monitor::reg::kThreshold)));
  a(e::ecall());
  rig.soc.load_redundant(a.assemble("writer", std::move(d)));
  rig.soc.run(1'000'000);
  ASSERT_TRUE(rig.soc.all_halted());
  EXPECT_EQ(rig.dm->apb_read(monitor::reg::kThreshold), 1234u);
}

TEST(Mmio, UncachedAccessBypassesCaches) {
  Rig rig;
  rig.soc.load_redundant(poller_program(50));
  rig.soc.run(1'000'000);
  ASSERT_TRUE(rig.soc.all_halted());
  // The poller's only D-cache traffic is its two bookkeeping `sd` stores;
  // the two MMIO loads must not have touched the cache at all.
  EXPECT_EQ(rig.soc.core(0).l1d_stats().accesses(), 2u);
}

TEST(Mmio, MisalignedOrWideApbAccessTraps) {
  Rig rig;
  Assembler a;
  DataBuilder d;
  d.add_u64(0);
  a.li(S0, static_cast<i64>(kSafeDmBase));
  a(e::ld(T0, S0, 0));  // 64-bit APB access: a bus error
  a(e::ecall());
  rig.soc.load_redundant(a.assemble("bad", std::move(d)));
  EXPECT_THROW(rig.soc.run(1'000'000), CheckError);
}

}  // namespace
}  // namespace safedm::soc
