// Campaign-engine tests: thread-count determinism, injection validation,
// latency accounting, Wilson intervals, and the single-fault-never-CCF
// invariant as a property over random programs.
#include "safedm/faultsim/campaign.hpp"

#include <gtest/gtest.h>

#include "safedm/assembler/assembler.hpp"
#include "safedm/common/check.hpp"
#include "safedm/common/rng.hpp"
#include "safedm/isa/inst.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::faultsim {
namespace {

EngineConfig small_config() {
  EngineConfig config;
  config.workloads = {"bitcount"};
  config.samples_per_class = 2;
  config.registers = {6, 9};
  config.bits = {3, 40};
  config.seed = 7;
  return config;
}

TEST(Campaign, ReportIsBitIdenticalAcrossThreadCounts) {
  EngineConfig config = small_config();
  config.threads = 1;
  const std::string serial = report_to_json(run_engine(config));
  config.threads = 4;
  const std::string parallel = report_to_json(run_engine(config));
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"schema\": \"safedm.bench.faultsim/v1\""), std::string::npos);
}

TEST(Campaign, ReportIsBitIdenticalAcrossEnginesAndIntervals) {
  // The injection engine is a pure performance knob, like `threads`: the
  // replay engine and the checkpoint-forked engine must emit byte-equal
  // reports at any checkpoint interval (0 = adaptive), in any combination
  // with the thread count.
  EngineConfig config = small_config();
  config.engine = InjectionEngine::kReplay;
  config.threads = 1;
  const std::string replay = report_to_json(run_engine(config));
  config.engine = InjectionEngine::kCheckpoint;
  for (const u64 interval : {u64{0}, u64{64}, u64{1000}}) {
    config.checkpoint_interval = interval;
    config.threads = interval == 64 ? 4 : 1;
    EXPECT_EQ(report_to_json(run_engine(config)), replay) << "interval " << interval;
  }
}

TEST(Campaign, SeedChangesTheSampledSites) {
  EngineConfig config = small_config();
  config.single_fault = false;
  const EngineReport a = run_engine(config);
  config.seed = 8;
  const EngineReport b = run_engine(config);
  // Same site count (the space is enumerated, only the cycles are
  // sampled), same pools; the seed only moves the sampled cycles.
  EXPECT_EQ(a.injections, b.injections);
  EXPECT_EQ(a.workloads[0].nodiv_pool, b.workloads[0].nodiv_pool);
}

TEST(Campaign, InjectionSeedIsPerSiteStable) {
  const u64 s = injection_seed(1, "bitcount", 500, 6, 3, false);
  EXPECT_EQ(s, injection_seed(1, "bitcount", 500, 6, 3, false));
  EXPECT_NE(s, injection_seed(2, "bitcount", 500, 6, 3, false));
  EXPECT_NE(s, injection_seed(1, "cubic", 500, 6, 3, false));
  EXPECT_NE(s, injection_seed(1, "bitcount", 501, 6, 3, false));
  EXPECT_NE(s, injection_seed(1, "bitcount", 500, 9, 3, false));
  EXPECT_NE(s, injection_seed(1, "bitcount", 500, 6, 4, false));
  EXPECT_NE(s, injection_seed(1, "bitcount", 500, 6, 3, true));
}

TEST(Campaign, RejectsX0AndOutOfRangeRegisters) {
  // Regression: flipping x0 is a no-op the old campaign silently counted
  // as kMasked, deflating CCF rates.
  const assembler::Program program = workloads::build("bitcount", 1);
  const ReferenceTrace trace = record_reference(program);
  const u64 budget = trace.cycles * 4 + 100'000;
  EXPECT_THROW(inject_identical_fault(program, Injection{500, 0, 3}, trace.golden_checksum,
                                      budget),
               CheckError);
  EXPECT_THROW(inject_identical_fault(program, Injection{500, 32, 3}, trace.golden_checksum,
                                      budget),
               CheckError);
  EXPECT_THROW(inject_single_fault(program, Injection{500, 0, 3}, 0, trace.golden_checksum,
                                   budget),
               CheckError);
  EXPECT_THROW(inject_identical_fault(program, Injection{500, 6, 64}, trace.golden_checksum,
                                      budget),
               CheckError);
}

TEST(Campaign, ConfigSanitizerDropsInvalidTargets) {
  std::vector<u8> regs{0, 6, 32, 255, 9};
  std::vector<unsigned> bits{3, 64, 40, 1000};
  sanitize_targets(regs, bits);
  EXPECT_EQ(regs, (std::vector<u8>{6, 9}));
  EXPECT_EQ(bits, (std::vector<unsigned>{3, 40}));
}

TEST(Campaign, EngineFiltersX0FromConfig) {
  EngineConfig config = small_config();
  config.registers = {0, 6};  // x0 must be dropped, not silently injected
  config.bits = {3};
  config.single_fault = false;
  const EngineReport report = run_engine(config);
  // 2 classes x <=2 cycles x 1 reg x 1 bit.
  EXPECT_LE(report.injections, 4u);
  EXPECT_EQ(report.config.registers, (std::vector<u8>{6}));
}

TEST(Campaign, LatencyHistogramCoversExactlyDetectableOutcomes) {
  EngineConfig config = small_config();
  const EngineReport report = run_engine(config);
  for (const WorkloadReport& wr : report.workloads) {
    for (const ClassAggregate* agg :
         {&wr.identical[0], &wr.identical[1], &wr.single}) {
      const u64 detectable = agg->count(Outcome::kDetected) + agg->count(Outcome::kCrashed) +
                             agg->count(Outcome::kHung);
      EXPECT_EQ(agg->latency.total_samples(), detectable);
    }
  }
}

TEST(Campaign, WilsonIntervalBracketsTheRate) {
  const Interval ci = wilson_interval(3, 10);
  EXPECT_GT(ci.lo, 0.0);
  EXPECT_LT(ci.lo, 0.3);
  EXPECT_GT(ci.hi, 0.3);
  EXPECT_LT(ci.hi, 1.0);
  const Interval zero = wilson_interval(0, 0);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_EQ(zero.hi, 0.0);
  const Interval all = wilson_interval(10, 10);
  EXPECT_GT(all.hi, 0.95);
  EXPECT_LE(all.hi, 1.0);
  EXPECT_GT(all.lo, 0.7);
}

// ---- single-fault-never-CCF property over random programs ------------------

namespace e = isa::enc;
using namespace assembler;

/// Small straight-line generator following the workload conventions
/// (a0 = data base, result checksum stored at offset 0, clean ecall): a
/// single-core fault can corrupt one result, but two results can never
/// agree on a wrong value.
Program random_program(u64 seed) {
  Xoshiro256 rng(seed);
  Assembler a;
  DataBuilder d;
  std::vector<u64> blob(64);
  for (auto& w : blob) w = rng.next();
  d.add_u64_array(blob);

  constexpr Reg kPool[] = {T0, T1, T2, S1, S2, S3, A1, A2};
  constexpr unsigned kPoolSize = sizeof(kPool) / sizeof(kPool[0]);
  const auto pick = [&] { return kPool[rng.below(kPoolSize)]; };
  for (Reg r : kPool) a.li(r, static_cast<i64>(rng.next() & 0xFFFF));

  const unsigned ops = 40 + static_cast<unsigned>(rng.below(60));
  for (unsigned i = 0; i < ops; ++i) {
    const Reg rd = pick(), rs1 = pick(), rs2 = pick();
    switch (rng.below(8)) {
      case 0: a(e::add(rd, rs1, rs2)); break;
      case 1: a(e::sub(rd, rs1, rs2)); break;
      case 2: a(e::xor_(rd, rs1, rs2)); break;
      case 3: a(e::or_(rd, rs1, rs2)); break;
      case 4: a(e::and_(rd, rs1, rs2)); break;
      case 5: a(e::mul(rd, rs1, rs2)); break;
      case 6: a(e::ld(rd, A0, static_cast<i64>(rng.below(64) * 8))); break;
      default: a(e::sltu(rd, rs1, rs2)); break;
    }
  }
  // Fold the pool into a checksum and publish it.
  a.mv(T6, ZERO);
  for (Reg r : kPool) a(e::xor_(T6, T6, r));
  a(e::sd(T6, A0, workloads::kResultOffset));
  a(e::ecall());
  return a.assemble("random", std::move(d));
}

TEST(Campaign, SingleFaultNeverCcfOnRandomPrograms) {
  Xoshiro256 rng(99);
  for (u64 p = 0; p < 6; ++p) {
    const Program program = random_program(1000 + p);
    const ReferenceTrace trace = record_reference(program);
    const u64 budget = trace.cycles * 4 + 100'000;
    for (int i = 0; i < 6; ++i) {
      const Injection injection{rng.range(50, trace.cycles - 1),
                                static_cast<u8>(rng.range(1, 31)),
                                static_cast<unsigned>(rng.below(64))};
      const unsigned core = static_cast<unsigned>(rng.below(2));
      const InjectionResult result =
          inject_single_fault_timed(program, injection, core, trace.golden_checksum, budget);
      EXPECT_NE(result.outcome, Outcome::kCcf)
          << "program " << p << " cycle " << injection.cycle << " reg "
          << int(injection.reg) << " bit " << injection.bit << " core " << core;
      if (result.outcome == Outcome::kMasked)
        EXPECT_EQ(result.detection_latency, 0u);
    }
  }
}

}  // namespace
}  // namespace safedm::faultsim
