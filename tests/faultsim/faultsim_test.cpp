#include "safedm/faultsim/faultsim.hpp"

#include <gtest/gtest.h>

#include "safedm/workloads/workloads.hpp"

namespace safedm::faultsim {
namespace {

TEST(FaultSim, ReferenceRunIsCleanAndDeterministic) {
  const assembler::Program program = workloads::build("bitcount", 1);
  const ReferenceTrace a = record_reference(program);
  const ReferenceTrace b = record_reference(program);
  EXPECT_EQ(a.golden_checksum, b.golden_checksum);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.nodiv.size(), a.cycles);
}

TEST(FaultSim, SingleFaultNeverCausesSilentAgreementOnWrongResult) {
  // The classic redundancy guarantee: a fault in ONE core can be masked or
  // detected, but the two results can never agree on a wrong value.
  const assembler::Program program = workloads::build("isqrt", 1);
  const ReferenceTrace trace = record_reference(program);
  const u64 budget = trace.cycles * 4 + 100'000;
  for (u64 cycle : {u64{200}, trace.cycles / 2, trace.cycles - 200}) {
    for (u8 reg : {u8{6}, u8{18}}) {
      const Outcome outcome = inject_single_fault(program, Injection{cycle, reg, 13}, 0,
                                                  trace.golden_checksum, budget);
      EXPECT_NE(outcome, Outcome::kCcf)
          << "single fault at cycle " << cycle << " reg " << int(reg);
    }
  }
}

TEST(FaultSim, IdenticalFaultInLockstepStateIsACcf) {
  // Force a no-diversity scenario: shared data segment (identical pointers)
  // so the cores genuinely run in identical state; flip the same live bit
  // in both. Either the fault is masked (bit not consumed) or the two
  // cores err identically (CCF) — they can never disagree.
  const assembler::Program program = workloads::build("bitcount", 1);
  const ReferenceTrace trace = record_reference(program);
  const u64 budget = trace.cycles * 4 + 100'000;
  bool saw_ccf = false;
  for (u64 cycle : {u64{500}, u64{2000}, trace.cycles / 2}) {
    for (unsigned bit : {1u, 9u, 33u}) {
      const Outcome outcome = inject_identical_fault(program, Injection{cycle, 9, bit},
                                                     trace.golden_checksum, budget);
      // reg s1 (x9) holds the element count in bitcount on both cores:
      // identical value in both => identical behaviour after the flip.
      EXPECT_NE(outcome, Outcome::kDetected) << "cycle " << cycle << " bit " << bit;
      saw_ccf = saw_ccf || outcome == Outcome::kCcf || outcome == Outcome::kHung ||
                outcome == Outcome::kCrashed;
    }
  }
  EXPECT_TRUE(saw_ccf) << "no injection perturbed the run at all";
}

TEST(FaultSim, NoDivInjectionsAreNeverDetected) {
  // The paper's core claim, as an invariant: at a cycle SafeDM flags as
  // lacking diversity, an identical double fault lands on identical state
  // and therefore can never produce *differing* results ("detected").
  // (Unmonitored-state false positives could in principle break this; the
  // deterministic campaign below shows they do not here.)
  const assembler::Program program = workloads::build("cubic", 1);
  CampaignConfig config;
  config.samples_per_class = 4;
  config.registers = {6, 9};
  config.bits = {3, 40};
  const CampaignResult result = run_campaign(program, config);
  ASSERT_GT(result.total(true), 0u) << "cubic must have no-div cycles to sample";
  EXPECT_EQ(result.counts[1][static_cast<int>(Outcome::kDetected)], 0u);
}

TEST(FaultSim, CampaignAggregatesConsistently) {
  const assembler::Program program = workloads::build("bitcount", 1);
  CampaignConfig config;
  config.samples_per_class = 2;
  config.registers = {6};
  config.bits = {3};
  const CampaignResult result = run_campaign(program, config);
  EXPECT_EQ(result.injections, result.total(false) + result.total(true));
  EXPECT_GT(result.injections, 0u);
}

TEST(FaultSim, CheckpointTrainIsAscendingAndBounded) {
  const assembler::Program program = workloads::build("bitcount", 1);
  const CheckpointPolicy policy;  // interval 0 = adaptive
  const ReferenceTrace trace = record_reference(program, monitor::SafeDmConfig{}, policy);
  ASSERT_FALSE(trace.checkpoints.empty());
  EXPECT_LE(trace.checkpoints.size(), policy.max_checkpoints);
  EXPECT_GT(trace.checkpoint_interval, 0u);
  for (std::size_t i = 1; i < trace.checkpoints.size(); ++i)
    EXPECT_LT(trace.checkpoints[i - 1].cycle, trace.checkpoints[i].cycle);
  // The checkpoint train must not perturb the trace itself.
  const ReferenceTrace plain = record_reference(program);
  EXPECT_EQ(trace.golden_checksum, plain.golden_checksum);
  EXPECT_EQ(trace.cycles, plain.cycles);
  EXPECT_EQ(trace.nodiv, plain.nodiv);
}

TEST(FaultSim, FixedCheckpointIntervalIsNeverThinned) {
  const assembler::Program program = workloads::build("bitcount", 1);
  CheckpointPolicy policy;
  policy.interval = 512;
  const ReferenceTrace trace = record_reference(program, monitor::SafeDmConfig{}, policy);
  EXPECT_EQ(trace.checkpoint_interval, 512u);
  // One checkpoint per full interval strictly inside the run (none is
  // taken on the halt cycle itself).
  EXPECT_EQ(trace.checkpoints.size(), (trace.cycles - 1) / 512);
  for (const Checkpoint& cp : trace.checkpoints) EXPECT_EQ(cp.cycle % 512, 0u);
}

TEST(FaultSim, ForkedInjectionMatchesReplayAtEveryDepth) {
  // The tentpole invariant at the injection level: restoring the nearest
  // checkpoint <= the injection cycle and running only the tail must give
  // the same outcome and latency as replaying from cycle zero. Cover the
  // degenerate positions: before the first checkpoint (fork falls back to
  // a full replay), exactly on a checkpoint, between two, and late.
  const assembler::Program program = workloads::build("bitcount", 1);
  CheckpointPolicy policy;
  policy.interval = 1000;
  const ReferenceTrace trace = record_reference(program, monitor::SafeDmConfig{}, policy);
  const u64 budget = trace.cycles * 4 + 100'000;
  for (const u64 cycle : {u64{400}, u64{1000}, u64{1537}, trace.cycles - 50}) {
    const Injection injection{cycle, 9, 7};
    const InjectionResult replay_ccf =
        inject_identical_fault_timed(program, injection, trace.golden_checksum, budget);
    const InjectionResult forked_ccf = inject_identical_fault_timed(
        program, injection, trace.golden_checksum, budget, &trace);
    EXPECT_EQ(replay_ccf.outcome, forked_ccf.outcome) << "cycle " << cycle;
    EXPECT_EQ(replay_ccf.detection_latency, forked_ccf.detection_latency) << "cycle " << cycle;

    const InjectionResult replay_single = inject_single_fault_timed(
        program, injection, /*target_core=*/1, trace.golden_checksum, budget);
    const InjectionResult forked_single = inject_single_fault_timed(
        program, injection, /*target_core=*/1, trace.golden_checksum, budget, &trace);
    EXPECT_EQ(replay_single.outcome, forked_single.outcome) << "cycle " << cycle;
    EXPECT_EQ(replay_single.detection_latency, forked_single.detection_latency)
        << "cycle " << cycle;
  }
}

TEST(FaultSim, OutcomeNamesCoverAllValues) {
  EXPECT_STREQ(outcome_name(Outcome::kMasked), "masked");
  EXPECT_STREQ(outcome_name(Outcome::kDetected), "detected");
  EXPECT_STREQ(outcome_name(Outcome::kCcf), "CCF");
  EXPECT_STREQ(outcome_name(Outcome::kCrashed), "crashed");
  EXPECT_STREQ(outcome_name(Outcome::kHung), "hung");
}

}  // namespace
}  // namespace safedm::faultsim
