// Pipeline model unit tests: architectural correctness of executed
// programs, timing sanity (stalls, dual issue, misprediction), and tap
// frame contents.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "safedm/assembler/assembler.hpp"
#include "safedm/bus/ahb.hpp"
#include "safedm/bus/l2_frontend.hpp"
#include "safedm/core/core.hpp"
#include "safedm/isa/iss.hpp"
#include "safedm/mem/phys_mem.hpp"

namespace safedm::core {
namespace {

using assembler::A0;
using assembler::Assembler;
using assembler::DataBuilder;
using assembler::Label;
using assembler::Program;
using assembler::S0;
using assembler::S1;
using assembler::SP;
using assembler::T0;
using assembler::T1;
using assembler::T2;
using assembler::ZERO;
namespace e = isa::enc;

constexpr u64 kTextBase = 0x10000;
constexpr u64 kDataBase = 0x100000;

struct Rig {
  Rig()
      : mem(0, 8 << 20),
        l2(mem::CacheConfig{.size_bytes = 64 * 1024, .ways = 4, .line_bytes = 32},
           bus::L2Timing{}),
        bus(l2),
        core(CoreConfig{}, mem, bus, "core0") {}

  void load(const Program& program) {
    for (std::size_t i = 0; i < program.text.size(); ++i)
      mem.store(kTextBase + i * 4, program.text[i], 4);
    mem.write_block(kDataBase, program.data);
    core.reset(kTextBase, kDataBase, kDataBase + 0x40000);
  }

  /// Run until the core halts; returns elapsed cycles.
  u64 run(u64 max_cycles = 2'000'000) {
    u64 cycles = 0;
    while (!core.halted() && cycles < max_cycles) {
      core.step(frame);
      bus.step();
      ++cycles;
    }
    return cycles;
  }

  mem::PhysMem mem;
  bus::L2Frontend l2;
  bus::AhbBus bus;
  Core core;
  CoreTapFrame frame;
};

/// Reference: run the same image on the golden ISS.
isa::ArchState iss_reference(const Program& program, u64 max_inst = 5'000'000) {
  mem::PhysMem mem(0, 8 << 20);
  for (std::size_t i = 0; i < program.text.size(); ++i)
    mem.store(kTextBase + i * 4, program.text[i], 4);
  mem.write_block(kDataBase, program.data);
  isa::Iss iss(mem, kTextBase);
  iss.state().set_x(A0, kDataBase);
  iss.state().set_x(SP, kDataBase + 0x40000);
  iss.run(max_inst);
  return iss.state();
}

TEST(Pipeline, StraightLineArithmetic) {
  Assembler a;
  a.li(T0, 7);
  a.li(T1, 9);
  a(e::add(T2, T0, T1));
  a(e::mul(S0, T0, T1));
  a(e::ecall());
  Rig rig;
  rig.load(a.assemble("straight"));
  rig.run();
  EXPECT_EQ(rig.core.halt_reason(), isa::HaltReason::kEcall);
  EXPECT_EQ(rig.core.arch().x[T2], 16u);
  EXPECT_EQ(rig.core.arch().x[S0], 63u);
}

TEST(Pipeline, LoopMatchesIss) {
  Assembler a;
  Label loop = a.new_label(), done = a.new_label();
  a.li(T0, 100);
  a.li(T1, 0);
  a.bind(loop);
  a.beqz(T0, done);
  a(e::add(T1, T1, T0));
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(done);
  a(e::ecall());
  const Program program = a.assemble("loop");

  const auto golden = iss_reference(program);
  Rig rig;
  rig.load(program);
  rig.run();
  EXPECT_EQ(rig.core.arch().x[T1], golden.x[T1]);
  EXPECT_EQ(rig.core.arch().x[T1], 5050u);
  EXPECT_EQ(rig.core.arch().instret, golden.instret);
}

TEST(Pipeline, MemoryResultsMatchIss) {
  Assembler a;
  DataBuilder d;
  const std::array<u32, 8> input = {5, 3, 8, 1, 9, 2, 7, 4};
  const u64 arr = d.add_u32_array(input);
  const u64 out = d.add_u64(0);
  a.lea_data(S0, arr);
  a.li(T0, 8);
  a.li(T1, 0);
  Label loop = a.new_label(), done = a.new_label();
  a.bind(loop);
  a.beqz(T0, done);
  a(e::lwu(T2, S0, 0));
  a(e::add(T1, T1, T2));
  a(e::addi(S0, S0, 4));
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(done);
  a.lea_data(S1, out);
  a(e::sd(T1, S1, 0));
  a(e::ecall());
  const Program program = a.assemble("sum", std::move(d));

  Rig rig;
  rig.load(program);
  rig.run();
  EXPECT_EQ(rig.mem.load(kDataBase + out, 8), 39u);
}

TEST(Pipeline, CommitCountMatchesIssInstret) {
  // A branchy program with loads/stores; commits must equal ISS instret.
  Assembler a;
  DataBuilder d;
  const u64 buf = d.reserve(64);
  a.lea_data(S0, buf);
  a.li(T0, 16);
  Label loop = a.new_label(), skip = a.new_label(), done = a.new_label();
  a.bind(loop);
  a.beqz(T0, done);
  a(e::andi(T1, T0, 1));
  a.beqz(T1, skip);
  a(e::sw(T0, S0, 0));
  a.bind(skip);
  a(e::addi(S0, S0, 4));
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(done);
  a(e::ecall());
  const Program program = a.assemble("branchy", std::move(d));

  const auto golden = iss_reference(program);
  Rig rig;
  rig.load(program);
  rig.run();
  EXPECT_EQ(rig.core.stats().committed, golden.instret);
  EXPECT_EQ(rig.core.arch().instret, golden.instret);
}

TEST(Pipeline, DualIssueHappensForIndependentOps) {
  Assembler a;
  // Pairs of independent ALU ops.
  for (int i = 0; i < 64; ++i) {
    a(e::addi(T0, T0, 1));
    a(e::addi(T1, T1, 1));
  }
  a(e::ecall());
  Rig rig;
  rig.load(a.assemble("dual"));
  rig.run();
  EXPECT_GT(rig.core.stats().dual_issue_commits, 32u);
  EXPECT_EQ(rig.core.arch().x[T0], 64u);
  EXPECT_EQ(rig.core.arch().x[T1], 64u);
}

TEST(Pipeline, DependentOpsDoNotDualIssue) {
  Assembler a;
  for (int i = 0; i < 32; ++i) a(e::addi(T0, T0, 1));  // chain
  a(e::ecall());
  Rig rig;
  rig.load(a.assemble("chain"));
  rig.run();
  EXPECT_EQ(rig.core.stats().dual_issue_commits, 0u);
  EXPECT_EQ(rig.core.arch().x[T0], 32u);
}

TEST(Pipeline, DivSlowerThanAdd) {
  const auto measure = [](u32 word) {
    Assembler a;
    a.li(T0, 1000);
    a.li(T1, 7);
    for (int i = 0; i < 32; ++i) a(word);
    a(e::ecall());
    Rig rig;
    rig.load(a.assemble("lat"));
    return rig.run();
  };
  const u64 add_cycles = measure(e::add(T2, T0, T1));
  const u64 div_cycles = measure(e::div(T2, T0, T1));
  EXPECT_GT(div_cycles, add_cycles + 32 * 20);
}

TEST(Pipeline, ColdMissesStallAndWarmRunsFaster) {
  Assembler a;
  DataBuilder d;
  const u64 buf = d.reserve(1024);
  Label pass = a.new_label(), loop = a.new_label(), inner_done = a.new_label();
  a.li(S1, 2);  // two passes over the buffer
  a.bind(pass);
  a.lea_data(S0, buf);
  a.li(T0, 128);
  a.bind(loop);
  a.beqz(T0, inner_done);
  a(e::ld(T1, S0, 0));
  a(e::addi(S0, S0, 8));
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(inner_done);
  a(e::addi(S1, S1, -1));
  a.bnez(S1, pass);
  a(e::ecall());
  Rig rig;
  rig.load(a.assemble("misses", std::move(d)));
  rig.run();
  EXPECT_GT(rig.core.l1d_stats().misses, 20u);   // cold misses
  EXPECT_GT(rig.core.l1d_stats().hits, 100u);    // warm pass hits
  EXPECT_GT(rig.core.stats().l1d_miss_stall_cycles, 100u);
}

TEST(Pipeline, StoresDrainThroughStoreBuffer) {
  Assembler a;
  DataBuilder d;
  const u64 buf = d.reserve(512);
  a.lea_data(S0, buf);
  a.li(T0, 64);
  Label loop = a.new_label(), done = a.new_label();
  a.bind(loop);
  a.beqz(T0, done);
  a(e::sd(T0, S0, 0));
  a(e::addi(S0, S0, 8));
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(done);
  a(e::ecall());
  Rig rig;
  rig.load(a.assemble("stores", std::move(d)));
  rig.run();
  EXPECT_GT(rig.core.sb_stats().pushed, 60u);
  EXPECT_GT(rig.core.sb_stats().coalesced, 30u);  // 4 stores per 32B line
  EXPECT_EQ(rig.core.sb_stats().drained + rig.core.sb_stats().coalesced +
                (rig.core.sb_stats().pushed - rig.core.sb_stats().drained -
                 rig.core.sb_stats().coalesced),
            rig.core.sb_stats().pushed);
  // Functional result: last store value 1 at buf + 63*8.
  EXPECT_EQ(rig.mem.load(kDataBase + buf + 63 * 8, 8), 1u);
}

TEST(Pipeline, BranchPredictorReducesMispredicts) {
  // A tight loop: after warmup the backward branch should predict well.
  Assembler a;
  Label loop = a.new_label(), done = a.new_label();
  a.li(T0, 500);
  a.bind(loop);
  a.beqz(T0, done);
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(done);
  a(e::ecall());
  Rig rig;
  rig.load(a.assemble("predict"));
  rig.run();
  // ~500 taken branches + 500 jumps; mispredicts should be far fewer.
  EXPECT_LT(rig.core.stats().mispredicts, 50u);
}

TEST(Pipeline, TapFrameShowsInstructionsInStages) {
  Assembler a;
  for (int i = 0; i < 20; ++i) a(e::addi(T0, T0, 1));
  a(e::ecall());
  Rig rig;
  rig.load(a.assemble("tap"));
  // After a few cycles the pipe should contain valid slots with the addi
  // encoding.
  // The first fetch takes a cold L1I miss (~30 cycles of L2/memory latency)
  // before instructions appear in the pipe.
  bool saw_addi = false;
  for (int c = 0; c < 60; ++c) {
    rig.core.step(rig.frame);
    rig.bus.step();
    for (unsigned s = 0; s < kPipelineStages; ++s)
      if (rig.frame.stage[s][0].valid && rig.frame.stage[s][0].encoding == e::addi(T0, T0, 1))
        saw_addi = true;
  }
  EXPECT_TRUE(saw_addi);
}

TEST(Pipeline, TapWritePortsCarryResults) {
  Assembler a;
  a.li(T0, 41);
  a(e::addi(T0, T0, 1));
  a(e::ecall());
  Rig rig;
  rig.load(a.assemble("ports"));
  bool saw_42 = false;
  for (int c = 0; c < 40 && !rig.core.halted(); ++c) {
    rig.core.step(rig.frame);
    rig.bus.step();
    if (rig.frame.at(Port::kLane0Wr).enable && rig.frame.at(Port::kLane0Wr).value == 42)
      saw_42 = true;
  }
  EXPECT_TRUE(saw_42);
}

TEST(Pipeline, TapReadPortsCarryOperands) {
  Assembler a;
  a.li(T0, 123);
  a.li(T1, 456);
  a(e::add(T2, T0, T1));
  a(e::ecall());
  Rig rig;
  rig.load(a.assemble("readports"));
  bool saw_operands = false;
  for (int c = 0; c < 40 && !rig.core.halted(); ++c) {
    rig.core.step(rig.frame);
    rig.bus.step();
    if (rig.frame.at(Port::kLane0Rs1).enable && rig.frame.at(Port::kLane0Rs1).value == 123 &&
        rig.frame.at(Port::kLane0Rs2).enable && rig.frame.at(Port::kLane0Rs2).value == 456)
      saw_operands = true;
  }
  EXPECT_TRUE(saw_operands);
}

TEST(Pipeline, ExternalStallFreezesProgress) {
  Assembler a;
  for (int i = 0; i < 50; ++i) a(e::addi(T0, T0, 1));
  a(e::ecall());
  Rig rig;
  rig.load(a.assemble("freeze"));
  for (int c = 0; c < 10; ++c) {
    rig.core.step(rig.frame);
    rig.bus.step();
  }
  const u64 committed = rig.core.stats().committed;
  rig.core.set_external_stall(true);
  for (int c = 0; c < 20; ++c) {
    rig.core.step(rig.frame);
    rig.bus.step();
    EXPECT_TRUE(rig.frame.hold);
  }
  EXPECT_EQ(rig.core.stats().committed, committed);
  EXPECT_EQ(rig.core.stats().external_stall_cycles, 20u);
  rig.core.set_external_stall(false);
  rig.run();
  EXPECT_EQ(rig.core.arch().x[T0], 50u);
}

TEST(Pipeline, RecursionViaStackMatchesIss) {
  // Recursive fibonacci(12) using the stack.
  Assembler a;
  Label fib = a.new_label(), base = a.new_label(), after = a.new_label(), main = a.new_label();
  a.j(main);
  a.bind(fib);  // arg in a1(x11), result in a2(x12)
  a(e::addi(SP, SP, -24));
  a(e::sd(assembler::RA, SP, 0));
  a(e::sd(assembler::A1, SP, 8));
  a.li(T0, 2);
  a.blt(assembler::A1, T0, base);
  a(e::addi(assembler::A1, assembler::A1, -1));
  a.call(fib);
  a(e::sd(assembler::A2, SP, 16));
  a(e::ld(assembler::A1, SP, 8));
  a(e::addi(assembler::A1, assembler::A1, -2));
  a.call(fib);
  a(e::ld(T0, SP, 16));
  a(e::add(assembler::A2, assembler::A2, T0));
  a.j(after);
  a.bind(base);
  a(e::ld(assembler::A2, SP, 8));  // fib(0)=0, fib(1)=1
  a.bind(after);
  a(e::ld(assembler::RA, SP, 0));
  a(e::addi(SP, SP, 24));
  a.ret();
  a.bind(main);
  a.li(assembler::A1, 12);
  a.call(fib);
  a(e::ecall());
  const Program program = a.assemble("fib");

  const auto golden = iss_reference(program);
  Rig rig;
  rig.load(program);
  rig.run();
  EXPECT_EQ(golden.x[assembler::A2], 144u);
  EXPECT_EQ(rig.core.arch().x[assembler::A2], 144u);
  EXPECT_EQ(rig.core.arch().instret, golden.instret);
}

TEST(Pipeline, FpPipelineMatchesIss) {
  Assembler a;
  DataBuilder d;
  const std::array<double, 4> values = {1.5, 2.5, -3.0, 8.0};
  const u64 arr = d.add_f64_array(values);
  const u64 out = d.add_f64(0.0);
  a.lea_data(S0, arr);
  a(e::fld(1, S0, 0));
  a(e::fld(2, S0, 8));
  a(e::fld(3, S0, 16));
  a(e::fld(4, S0, 24));
  a(e::fmadd_d(5, 1, 2, 3));   // 1.5*2.5 - 3.0 = 0.75
  a(e::fsqrt_d(6, 4));         // sqrt(8)
  a(e::fmul_d(7, 5, 6));       // 0.75*sqrt(8)
  a.lea_data(S1, out);
  a(e::fsd(7, S1, 0));
  a(e::ecall());
  const Program program = a.assemble("fp", std::move(d));

  const auto golden = iss_reference(program);
  Rig rig;
  rig.load(program);
  rig.run();
  EXPECT_EQ(rig.core.arch().f[7], golden.f[7]);
  const double result = std::bit_cast<double>(rig.mem.load(kDataBase + out, 8));
  EXPECT_NEAR(result, 0.75 * std::sqrt(8.0), 1e-12);
}

TEST(Pipeline, HoldAssertedWhileRefillOutstanding) {
  Assembler a;
  DataBuilder d;
  const u64 buf = d.reserve(64);
  a.lea_data(S0, buf);
  a(e::ld(T0, S0, 0));  // cold miss
  a(e::add(T1, T0, T0));
  a(e::ecall());
  Rig rig;
  rig.load(a.assemble("hold", std::move(d)));
  unsigned hold_cycles = 0;
  while (!rig.core.halted()) {
    rig.core.step(rig.frame);
    rig.bus.step();
    if (rig.frame.hold) ++hold_cycles;
  }
  EXPECT_GT(hold_cycles, 5u);  // L2-miss latency stalls the whole pipe
}

}  // namespace
}  // namespace safedm::core
