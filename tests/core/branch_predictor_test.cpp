#include "safedm/core/branch_predictor.hpp"

#include <gtest/gtest.h>

namespace safedm::core {
namespace {

BranchPredictorConfig cfg() { return BranchPredictorConfig{.bht_entries = 16, .btb_entries = 8}; }

TEST(BranchPredictor, ColdPredictsNotTaken) {
  BranchPredictor bp(cfg());
  const auto p = bp.predict_branch(0x1000);
  EXPECT_FALSE(p.taken);
}

TEST(BranchPredictor, LearnsTakenBranchWithTarget) {
  BranchPredictor bp(cfg());
  bp.train(0x1000, true, 0x2000);
  bp.train(0x1000, true, 0x2000);
  const auto p = bp.predict_branch(0x1000);
  EXPECT_TRUE(p.taken);
  EXPECT_TRUE(p.has_target);
  EXPECT_EQ(p.target, 0x2000u);
}

TEST(BranchPredictor, CounterHysteresis) {
  BranchPredictor bp(cfg());
  bp.train(0x1000, true, 0x2000);
  bp.train(0x1000, true, 0x2000);  // strongly taken
  bp.train(0x1000, false, 0);      // one not-taken
  EXPECT_TRUE(bp.predict_branch(0x1000).taken);  // still weakly taken
  bp.train(0x1000, false, 0);
  EXPECT_FALSE(bp.predict_branch(0x1000).taken);
}

TEST(BranchPredictor, IndirectUsesBtb) {
  BranchPredictor bp(cfg());
  EXPECT_FALSE(bp.predict_indirect(0x3000).taken);
  bp.train(0x3000, true, 0x4444);
  const auto p = bp.predict_indirect(0x3000);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, 0x4444u);
}

TEST(BranchPredictor, BtbTagPreventsAliasedTargets) {
  BranchPredictor bp(cfg());
  bp.train(0x1000, true, 0x2000);
  // 0x1000 + 8*4 = 0x1020 maps to the same BTB set but has a different tag.
  const auto p = bp.predict_branch(0x1020);
  EXPECT_FALSE(p.has_target);
}

TEST(BranchPredictor, DisabledAlwaysFallsThrough) {
  BranchPredictor bp(BranchPredictorConfig{.bht_entries = 16, .btb_entries = 8, .enabled = false});
  bp.train(0x1000, true, 0x2000);
  EXPECT_FALSE(bp.predict_branch(0x1000).taken);
  EXPECT_FALSE(bp.predict_indirect(0x1000).taken);
}

TEST(BranchPredictor, ResetClearsLearnedState) {
  BranchPredictor bp(cfg());
  bp.train(0x1000, true, 0x2000);
  bp.train(0x1000, true, 0x2000);
  bp.reset();
  EXPECT_FALSE(bp.predict_branch(0x1000).taken);
}

TEST(BranchPredictor, StatsCount) {
  BranchPredictor bp(cfg());
  bp.predict_branch(0x1000);
  bp.train(0x1000, true, 0x2000);
  bp.note_mispredict();
  EXPECT_EQ(bp.stats().lookups, 1u);
  EXPECT_EQ(bp.stats().trains, 1u);
  EXPECT_EQ(bp.stats().mispredicts, 1u);
}

}  // namespace
}  // namespace safedm::core
