// Campaign engine: schedule determinism (thread-count independence of the
// report, byte for byte), monotone coverage growth, corpus keep policy,
// and failure recording with automatic shrinking.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "safedm/common/check.hpp"
#include "safedm/fuzz/campaign.hpp"
#include "safedm/isa/decode.hpp"

namespace safedm::fuzz {
namespace {

CampaignConfig small_config(unsigned threads) {
  CampaignConfig cfg;
  cfg.seed = 77;
  cfg.rounds = 3;
  cfg.inputs_per_round = 6;
  cfg.threads = threads;
  return cfg;
}

TEST(Campaign, InputSeedsArePositionDerivedAndDistinct) {
  // Same position, same seed — regardless of when or where it is computed.
  EXPECT_EQ(input_seed(1, 0, 0), input_seed(1, 0, 0));
  std::set<u64> seen;
  for (unsigned r = 0; r < 8; ++r)
    for (unsigned i = 0; i < 64; ++i) seen.insert(input_seed(42, r, i));
  EXPECT_EQ(seen.size(), 8u * 64u);
  EXPECT_NE(input_seed(1, 0, 0), input_seed(2, 0, 0));
}

TEST(Campaign, ReportIsByteIdenticalAcrossThreadCounts) {
  Corpus c1, c4;
  const std::string json1 = report_to_json(run_campaign(c1, small_config(1)));
  const std::string json4 = report_to_json(run_campaign(c4, small_config(4)));
  EXPECT_EQ(json1, json4);

  // The grown corpora match too — same entries, same order, same programs.
  ASSERT_EQ(c1.size(), c4.size());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1.entries[i].name, c4.entries[i].name);
    EXPECT_EQ(c1.entries[i].program, c4.entries[i].program);
  }
}

TEST(Campaign, CoverageIsMonotoneAndKeepPolicyHolds) {
  Corpus corpus;
  const CampaignReport report = run_campaign(corpus, small_config(2));
  ASSERT_EQ(report.round_stats.size(), 3u);

  std::size_t prev_features = 0;
  u64 prev_hits = 0;
  std::size_t prev_corpus = 0;
  for (const RoundStats& rs : report.round_stats) {
    EXPECT_EQ(rs.inputs, 6u);
    EXPECT_GE(rs.features_hit, prev_features);
    EXPECT_GE(rs.total_hits, prev_hits);
    // An input is kept exactly when it lit a new feature, so kept > 0
    // implies new features this round, and the corpus grows by `kept`.
    if (rs.kept > 0) {
      EXPECT_GT(rs.new_features, 0u);
    }
    EXPECT_EQ(rs.corpus_size, prev_corpus + rs.kept);
    prev_features = rs.features_hit;
    prev_hits = rs.total_hits;
    prev_corpus = rs.corpus_size;
  }
  EXPECT_EQ(report.final_corpus, corpus.size());
  EXPECT_EQ(report.coverage.features_hit(), prev_features);
  EXPECT_TRUE(report.failures.empty());
}

TEST(Campaign, ReportJsonCarriesTheSchemaAndStats) {
  Corpus corpus;
  const CampaignReport report = run_campaign(corpus, small_config(1));
  const std::string json = report_to_json(report);
  EXPECT_NE(json.find("\"schema\": \"safedm.bench.fuzz/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"features_hit\""), std::string::npos);
  EXPECT_EQ(json.find("thread"), std::string::npos) << "thread count must never reach the report";
}

TEST(Campaign, InjectedBugIsCaughtRecordedAndShrunk) {
  CampaignConfig cfg = small_config(2);
  cfg.rounds = 2;
  cfg.inputs_per_round = 8;
  // Test-only comparator bug: misreport the DS verdict whenever a divide
  // occupies an EX slot on core 0 — generated programs hit divs often.
  cfg.oracle.verdict_bug = [](const core::CoreTapFrame& f0, const core::CoreTapFrame&) {
    for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane) {
      const auto& slot = f0.slot(core::Stage::kEX, lane);
      if (!slot.valid) continue;
      const isa::DecodedInst di = isa::decode(slot.encoding);
      if (di.valid() && di.info().exec_class == isa::ExecClass::kDiv) return true;
    }
    return false;
  };
  cfg.shrink_max_oracle_runs = 200;

  Corpus corpus;
  const CampaignReport report = run_campaign(corpus, cfg);
  ASSERT_FALSE(report.failures.empty()) << "no generated input executed a div";
  for (const FailureRecord& fr : report.failures) {
    EXPECT_EQ(fr.verdict, OracleVerdict::kVerdictMismatch);
    EXPECT_LE(fr.minimized_ops, fr.original_ops);
    EXPECT_GT(fr.shrink_oracle_runs, 0u);
    // The minimized repro still fails under the bug and passes without it.
    OracleConfig buggy;
    buggy.verdict_bug = cfg.oracle.verdict_bug;
    EXPECT_EQ(run_differential(fr.repro, buggy).verdict, OracleVerdict::kVerdictMismatch);
    EXPECT_TRUE(run_differential(fr.repro).ok());
  }
}

TEST(Campaign, CorpusPersistsAndSeedsTheNextCampaign) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "safedm_campaign_corpus").string();
  std::filesystem::remove_all(dir);

  Corpus corpus;
  run_campaign(corpus, small_config(1));
  ASSERT_GT(corpus.size(), 0u);
  corpus.save_dir(dir);

  Corpus reloaded;
  reloaded.load_dir(dir);
  ASSERT_EQ(reloaded.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i)
    EXPECT_EQ(reloaded.entries[i].program, corpus.entries[i].program);

  // The reloaded corpus replays green (the CI corpus gate)...
  for (const ReplayOutcome& out : replay_corpus(reloaded, OracleConfig{}))
    EXPECT_EQ(out.verdict, OracleVerdict::kPass) << out.name << ": " << out.detail;

  // ...and seeding a second campaign with it is reflected in the report.
  CampaignConfig next = small_config(1);
  next.seed = 78;
  next.rounds = 1;
  const CampaignReport report = run_campaign(reloaded, next);
  EXPECT_EQ(report.initial_corpus, corpus.size());

  std::filesystem::remove_all(dir);
}

TEST(Campaign, LoadDirRejectsMissingDirectory) {
  Corpus corpus;
  EXPECT_THROW(corpus.load_dir("/nonexistent/safedm-no-such-corpus"), CheckError);
}

}  // namespace
}  // namespace safedm::fuzz
