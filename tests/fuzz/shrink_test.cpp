// Shrinker acceptance: with a test-only comparator bug injected through the
// oracle's verdict hook (trip whenever a div occupies an EX slot), a
// multi-block failing program must minimize to a handful of instructions,
// and the minimized repro must replay red with the hook and green without.
#include <gtest/gtest.h>

#include <filesystem>

#include "safedm/fuzz/campaign.hpp"
#include "safedm/fuzz/shrink.hpp"
#include "safedm/isa/decode.hpp"

namespace safedm::fuzz {
namespace {

// Test-only "comparator bug": misreport the DS verdict on any cycle where
// core 0 has a divide in an EX slot.
bool div_in_ex(const core::CoreTapFrame& f0, const core::CoreTapFrame&) {
  for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane) {
    const auto& slot = f0.slot(core::Stage::kEX, lane);
    if (!slot.valid) continue;
    const isa::DecodedInst di = isa::decode(slot.encoding);
    if (di.valid() && di.info().exec_class == isa::ExecClass::kDiv) return true;
  }
  return false;
}

// A deliberately bloated program: several blocks of arithmetic noise with
// exactly one div hidden in the middle. Everything but the div (and the
// scaffolding it needs) is shrinkable.
FuzzProgram bloated_program_with_one_div() {
  FuzzProgram p;
  p.gen_seed = 0xD1Dull;
  p.data_seed = 0xDA7Aull;
  p.data_words = 512;

  for (int blk = 0; blk < 5; ++blk) {
    FuzzBlock b;
    for (int i = 0; i < 8; ++i)
      b.straight.push_back(
          // Noise kinds stay in kAdd..kSltu: plain ALU ops that can never
          // trip the div-keyed hook, so the planted div is the only trigger.
          FuzzOp{static_cast<OpKind>((blk * 8 + i) % 10),
                 static_cast<u8>(i % 14), static_cast<u8>((i + 3) % 14),
                 static_cast<u8>((i + 7) % 14), 100 + blk * 16 + i, 0});
    b.loop_iters = 3;
    b.body.push_back(FuzzOp{OpKind::kAddi, 2, 2, 0, 1, 0});
    b.body.push_back(FuzzOp{OpKind::kXor, 4, 4, 2, 0, 0});
    b.cond_skip = true;
    b.skip_test = static_cast<u8>(blk % 14);
    b.skip.push_back(FuzzOp{OpKind::kOr, 5, 5, 0, blk, 0});
    if (blk == 2) b.straight.push_back(FuzzOp{OpKind::kDiv, 1, 2, 3, 0, 0});
    p.blocks.push_back(b);
  }
  return p;
}

TEST(Shrink, PassingInputIsReportedNotShrunk) {
  const FuzzProgram p = ProgramFuzzer(21).next();
  ShrinkConfig cfg;
  const ShrinkResult res = shrink(p, cfg);
  EXPECT_FALSE(res.reproduced);
  EXPECT_EQ(res.verdict, OracleVerdict::kPass);
  EXPECT_EQ(res.program, p);
}

TEST(Shrink, MinimizesInjectedComparatorBugToAFewInstructions) {
  const FuzzProgram original = bloated_program_with_one_div();
  ASSERT_GT(original.op_count(), 40u) << "fixture should start genuinely bloated";

  ShrinkConfig cfg;
  cfg.oracle.verdict_bug = div_in_ex;
  const ShrinkResult res = shrink(original, cfg);

  ASSERT_TRUE(res.reproduced);
  EXPECT_EQ(res.verdict, OracleVerdict::kVerdictMismatch);
  EXPECT_LE(res.oracle_runs, cfg.max_oracle_runs);

  // Acceptance: down to at most 12 instructions. In practice the pipeline
  // reaches a single div op; with init scaffolding the whole .text stays
  // within the same bound.
  EXPECT_LE(res.op_count, 12u);
  EXPECT_LE(materialize(res.program).text.size(), 12u);

  // The div survived — it is the failure trigger.
  bool has_div = false;
  for (const FuzzBlock& b : res.program.blocks)
    for (const FuzzOp& op : b.straight) has_div |= (op.kind == OpKind::kDiv);
  EXPECT_TRUE(has_div);
}

TEST(Shrink, MinimizedReproReplaysRedThenGreen) {
  ShrinkConfig cfg;
  cfg.oracle.verdict_bug = div_in_ex;
  const ShrinkResult res = shrink(bloated_program_with_one_div(), cfg);
  ASSERT_TRUE(res.reproduced);

  // Red: with the injected bug still present, the minimized repro fails
  // with the same verdict category.
  OracleConfig buggy;
  buggy.verdict_bug = div_in_ex;
  EXPECT_EQ(run_differential(res.program, buggy).verdict, OracleVerdict::kVerdictMismatch);

  // Green: with the bug fixed (hook removed), the repro passes cleanly —
  // exactly what the checked-in corpus gate replays in CI.
  EXPECT_TRUE(run_differential(res.program).ok());
}

TEST(Shrink, MinimizedReproRoundTripsThroughCorpusFiles) {
  ShrinkConfig cfg;
  cfg.oracle.verdict_bug = div_in_ex;
  const ShrinkResult res = shrink(bloated_program_with_one_div(), cfg);
  ASSERT_TRUE(res.reproduced);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "safedm_shrink_corpus").string();
  std::filesystem::remove_all(dir);

  Corpus corpus;
  corpus.add("repro-div-verdict", res.program);
  corpus.save_dir(dir);
  EXPECT_TRUE(std::filesystem::exists(dir + "/repro-div-verdict.fuzz"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/repro-div-verdict.s"));

  Corpus reloaded;
  reloaded.load_dir(dir);
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.entries[0].program, res.program);

  const auto outcomes = replay_corpus(reloaded, OracleConfig{});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].verdict, OracleVerdict::kPass) << outcomes[0].detail;

  std::filesystem::remove_all(dir);
}

TEST(Shrink, RespectsOracleRunBudget) {
  ShrinkConfig cfg;
  cfg.oracle.verdict_bug = div_in_ex;
  cfg.max_oracle_runs = 5;  // starved: must still return a valid failing repro
  const ShrinkResult res = shrink(bloated_program_with_one_div(), cfg);
  ASSERT_TRUE(res.reproduced);
  EXPECT_EQ(res.verdict, OracleVerdict::kVerdictMismatch);
  EXPECT_LE(res.oracle_runs, 5u + 1u);  // +1 for the initial reproduction run
}

}  // namespace
}  // namespace safedm::fuzz
