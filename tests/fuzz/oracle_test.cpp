// Differential oracle stack: clean programs pass every layer, each layer
// catches its class of divergence, and coverage reflects the run.
#include <gtest/gtest.h>

#include "safedm/fuzz/oracle.hpp"
#include "safedm/isa/decode.hpp"

namespace safedm::fuzz {
namespace {

TEST(Oracle, CleanProgramPassesAllLayers) {
  const FuzzProgram p = ProgramFuzzer(11).next();
  const OracleResult res = run_differential(p);
  EXPECT_TRUE(res.ok()) << verdict_name(res.verdict) << " — " << res.detail;
  EXPECT_EQ(res.iss_state.halt, isa::HaltReason::kEcall);
  EXPECT_EQ(res.pipe_state.halt, isa::HaltReason::kEcall);
  EXPECT_EQ(res.iss_state.instret, res.pipe_state.instret);
  EXPECT_GT(res.cycles, 0u);
  EXPECT_GT(res.coverage.features_hit(), 0u);
  EXPECT_GT(res.coverage.hit_breakdown().opcodes, 0u);
}

TEST(Oracle, ResultIsDeterministic) {
  const FuzzProgram p = ProgramFuzzer(12).next();
  const OracleResult a = run_differential(p);
  const OracleResult b = run_differential(p);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instret, b.instret);
  EXPECT_EQ(a.coverage, b.coverage);
}

TEST(Oracle, SnapshotLayerPassesAndLightsItsFeature) {
  const FuzzProgram p = ProgramFuzzer(13).next();
  OracleConfig cfg;
  cfg.snapshot_cycle = 100;
  const OracleResult res = run_differential(p, cfg);
  EXPECT_TRUE(res.ok()) << verdict_name(res.verdict) << " — " << res.detail;
  ASSERT_GT(res.cycles, cfg.snapshot_cycle) << "program too short to exercise the layer";
  const std::size_t feature = isa::kMnemonicCount + CoverageMap::kFormatCount +
                              static_cast<std::size_t>(Event::kSnapshotTaken);
  EXPECT_EQ(res.coverage.count(feature), 1u);
}

TEST(Oracle, VerdictBugHookTripsTheVerdictLayer) {
  const FuzzProgram p = ProgramFuzzer(14).next();
  OracleConfig cfg;
  cfg.verdict_bug = [](const core::CoreTapFrame&, const core::CoreTapFrame&) { return true; };
  const OracleResult res = run_differential(p, cfg);
  EXPECT_EQ(res.verdict, OracleVerdict::kVerdictMismatch) << res.detail;
  EXPECT_FALSE(res.detail.empty());
}

TEST(Oracle, SelectiveBugHookOnlyFiresOnItsTrigger) {
  // A hook keyed on div in EX misfires never on a div-free program...
  FuzzProgram no_div;
  no_div.data_seed = 3;
  FuzzBlock b;
  b.straight.push_back(FuzzOp{OpKind::kAdd, 0, 1, 2, 0, 0});
  b.straight.push_back(FuzzOp{OpKind::kXor, 3, 4, 5, 0, 0});
  no_div.blocks.push_back(b);

  OracleConfig cfg;
  cfg.verdict_bug = [](const core::CoreTapFrame& f0, const core::CoreTapFrame&) {
    for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane) {
      const auto& slot = f0.slot(core::Stage::kEX, lane);
      if (!slot.valid) continue;
      const isa::DecodedInst di = isa::decode(slot.encoding);
      if (di.valid() && di.info().exec_class == isa::ExecClass::kDiv) return true;
    }
    return false;
  };
  EXPECT_TRUE(run_differential(no_div, cfg).ok());

  // ...and always on one that executes a div.
  FuzzProgram with_div = no_div;
  with_div.blocks[0].straight.push_back(FuzzOp{OpKind::kDiv, 0, 1, 2, 0, 0});
  const OracleResult res = run_differential(with_div, cfg);
  EXPECT_EQ(res.verdict, OracleVerdict::kVerdictMismatch) << res.detail;
}

TEST(Oracle, TinyCycleBudgetReportsTimeout) {
  const FuzzProgram p = ProgramFuzzer(15).next();
  OracleConfig cfg;
  cfg.max_cycles = 10;
  const OracleResult res = run_differential(p, cfg);
  EXPECT_EQ(res.verdict, OracleVerdict::kTimeout);
}

TEST(Oracle, IllegalProgramsAgreeOnTheHalt) {
  assembler::Assembler a;
  a.li(assembler::T0, 9);
  a(0xFFFF'FFFFu);  // undecodable
  const OracleResult res = run_differential(a.assemble("illegal"));
  EXPECT_TRUE(res.ok()) << verdict_name(res.verdict) << " — " << res.detail;
  EXPECT_EQ(res.iss_state.halt, isa::HaltReason::kIllegalInst);
  EXPECT_EQ(res.pipe_state.halt, isa::HaltReason::kIllegalInst);
}

}  // namespace
}  // namespace safedm::fuzz
