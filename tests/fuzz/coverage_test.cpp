// CoverageMap: feature-space layout, merge/new-feature accounting,
// saturation, and the breakdown used by the campaign report.
#include <gtest/gtest.h>

#include "safedm/common/rng.hpp"
#include "safedm/fuzz/coverage.hpp"

namespace safedm::fuzz {
namespace {

TEST(Coverage, StartsEmpty) {
  CoverageMap map;
  EXPECT_EQ(map.features_hit(), 0u);
  EXPECT_EQ(map.total_hits(), 0u);
  const auto b = map.hit_breakdown();
  EXPECT_EQ(b.opcodes + b.formats + b.events + b.verdict_edges, 0u);
}

TEST(Coverage, NotesLandInTheirSegments) {
  CoverageMap map;
  map.note_mnemonic(static_cast<isa::Mnemonic>(1));
  map.note_format(isa::Format::kR);
  map.note_event(Event::kMispredict, 3);
  map.note_verdict_edge(0, 3);
  EXPECT_EQ(map.features_hit(), 4u);
  EXPECT_EQ(map.total_hits(), 6u);
  const auto b = map.hit_breakdown();
  EXPECT_EQ(b.opcodes, 1u);
  EXPECT_EQ(b.formats, 1u);
  EXPECT_EQ(b.events, 1u);
  EXPECT_EQ(b.verdict_edges, 1u);
}

TEST(Coverage, InvalidMnemonicAndZeroEventsAreIgnored) {
  CoverageMap map;
  map.note_mnemonic(isa::Mnemonic::kInvalid);
  map.note_event(Event::kNodiv, 0);
  EXPECT_EQ(map.features_hit(), 0u);
}

TEST(Coverage, VerdictEdgesAreDistinctFeatures) {
  CoverageMap map;
  for (unsigned from = 0; from < CoverageMap::kVerdictStates; ++from)
    for (unsigned to = 0; to < CoverageMap::kVerdictStates; ++to) map.note_verdict_edge(from, to);
  EXPECT_EQ(map.hit_breakdown().verdict_edges, CoverageMap::kVerdictEdgeCount);
}

TEST(Coverage, MergeCountsOnlyFreshFeatures) {
  CoverageMap base, run;
  run.note_event(Event::kDualIssue, 5);
  run.note_event(Event::kSbDrain, 2);
  EXPECT_EQ(base.merge_count_new(run), 2u);
  EXPECT_EQ(base.total_hits(), 7u);

  CoverageMap run2;
  run2.note_event(Event::kDualIssue, 1);  // already lit
  run2.note_event(Event::kStagger, 1);    // fresh
  EXPECT_EQ(base.merge_count_new(run2), 1u);
  EXPECT_EQ(base.features_hit(), 3u);
  EXPECT_EQ(base.total_hits(), 9u);

  // Merging the same run again can never report new features.
  EXPECT_EQ(base.merge_count_new(run2), 0u);
}

TEST(Coverage, MergeIsMonotoneInFeaturesAndHits) {
  CoverageMap cumulative;
  Xoshiro256 rng(9);
  std::size_t prev_features = 0;
  u64 prev_hits = 0;
  for (int round = 0; round < 50; ++round) {
    CoverageMap run;
    for (int k = 0; k < 5; ++k)
      run.note_event(static_cast<Event>(rng.below(kEventCount)), 1 + rng.below(10));
    cumulative.merge_count_new(run);
    EXPECT_GE(cumulative.features_hit(), prev_features);
    EXPECT_GE(cumulative.total_hits(), prev_hits);
    prev_features = cumulative.features_hit();
    prev_hits = cumulative.total_hits();
  }
}

TEST(Coverage, CountersSaturateInsteadOfWrapping) {
  CoverageMap map;
  map.note_event(Event::kNodiv, ~u64{0});
  map.note_event(Event::kNodiv, ~u64{0});
  const std::size_t feature =
      isa::kMnemonicCount + CoverageMap::kFormatCount + static_cast<std::size_t>(Event::kNodiv);
  EXPECT_EQ(map.count(feature), ~u64{0});
  EXPECT_EQ(map.total_hits(), ~u64{0});
}

TEST(Coverage, EventNamesAreStable) {
  for (std::size_t i = 0; i < kEventCount; ++i)
    EXPECT_STRNE(event_name(static_cast<Event>(i)), "?");
}

}  // namespace
}  // namespace safedm::fuzz
