// Shared program generator: determinism, serialization round-trips,
// sanitized lowering of arbitrary (mutated) IR, and mutation caps.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "safedm/common/check.hpp"
#include "safedm/fuzz/generator.hpp"
#include "safedm/fuzz/oracle.hpp"

namespace safedm::fuzz {
namespace {

TEST(Generator, SeedDeterministic) {
  ProgramFuzzer a(123), b(123);
  const FuzzProgram pa = a.next(), pb = b.next();
  EXPECT_EQ(pa, pb);
  const assembler::Program ia = materialize(pa), ib = materialize(pb);
  EXPECT_EQ(ia.text, ib.text);
  EXPECT_EQ(ia.data, ib.data);
  // Successive draws and different seeds both give different programs.
  EXPECT_NE(a.next(), pa);
  ProgramFuzzer c(124);
  EXPECT_NE(c.next(), pa);
}

TEST(Generator, ProgramsAreStructurallyBounded) {
  GeneratorConfig cfg;
  ProgramFuzzer fuzzer(7, cfg);
  for (int i = 0; i < 20; ++i) {
    const FuzzProgram p = fuzzer.next();
    EXPECT_GE(p.blocks.size(), cfg.min_blocks);
    EXPECT_LE(p.blocks.size(), cfg.max_blocks);
    for (const FuzzBlock& b : p.blocks) {
      EXPECT_GE(b.straight.size(), 2u);
      EXPECT_LE(b.straight.size(), cfg.max_straight);
      EXPECT_GE(b.loop_iters, 1u);
      EXPECT_LE(b.loop_iters, cfg.max_loop_iters);
      EXPECT_LE(b.body.size(), cfg.max_body);
    }
  }
}

TEST(Generator, OpKindNamesRoundTrip) {
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    const OpKind kind = static_cast<OpKind>(i);
    EXPECT_EQ(op_kind_from_name(op_kind_name(kind)), kind);
  }
  EXPECT_THROW(op_kind_from_name("no_such_op"), CheckError);
}

TEST(Generator, SerializationRoundTrips) {
  ProgramFuzzer fuzzer(99);
  for (int i = 0; i < 10; ++i) {
    const FuzzProgram p = fuzzer.next();
    const FuzzProgram q = deserialize(serialize(p));
    EXPECT_EQ(p, q) << "draw " << i;
  }
}

TEST(Generator, SaveLoadRoundTripsThroughDisk) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "safedm_gen_roundtrip.fuzz").string();
  const FuzzProgram p = ProgramFuzzer(4242).next();
  save_program(path, p);
  EXPECT_EQ(load_program(path), p);
  std::filesystem::remove(path);
}

TEST(Generator, MalformedCorpusFilesThrow) {
  EXPECT_THROW(deserialize(""), CheckError);
  EXPECT_THROW(deserialize("not-the-header\n"), CheckError);
  EXPECT_THROW(deserialize("safedm-fuzz/v1\ngen_seed\n"), CheckError);
  EXPECT_THROW(deserialize("safedm-fuzz/v1\ns add 1 2 3 0 0\n"), CheckError);  // op before block
  EXPECT_THROW(deserialize("safedm-fuzz/v1\nblock 1 0 0\ns nope 1 2 3 0 0\n"), CheckError);
  EXPECT_THROW(deserialize("safedm-fuzz/v1\nwhat 1\n"), CheckError);
}

TEST(Generator, HostileIrLowersToWellFormedPrograms) {
  // Extreme field values (as a mutator or hand-edited corpus file could
  // produce) must still lower to a halting program both executors agree on:
  // operands are sanitized at lowering, not at construction.
  FuzzProgram p;
  p.gen_seed = 1;
  p.data_seed = 2;
  p.data_words = 7;  // below the floor; clamped at lowering
  FuzzBlock b;
  for (std::size_t k = 0; k < kOpKindCount; ++k)
    b.straight.push_back(FuzzOp{static_cast<OpKind>(k), 255, 254, 253, -2147483647, 7});
  b.loop_iters = 255;
  b.body.push_back(FuzzOp{OpKind::kStore, 0, 0, 0, 2039, 3});
  b.cond_skip = true;
  b.skip_test = 200;
  b.skip.push_back(FuzzOp{OpKind::kDiv, 1, 2, 3, 0, 0});
  p.blocks.push_back(b);

  const OracleResult res = run_differential(p);
  EXPECT_TRUE(res.ok()) << verdict_name(res.verdict) << " — " << res.detail;
  EXPECT_EQ(res.iss_state.halt, isa::HaltReason::kEcall);
}

TEST(Generator, MutationRespectsStructuralCaps) {
  GeneratorConfig cfg;
  ProgramFuzzer fuzzer(31337, cfg);
  Xoshiro256 rng(31337);
  FuzzProgram p = fuzzer.next();
  const FuzzProgram donor = fuzzer.next();
  for (int round = 0; round < 300; ++round) {
    mutate(p, &donor, rng, cfg);
    ASSERT_LE(p.blocks.size(), kMaxBlocks);
    std::size_t ops = 0;
    for (const FuzzBlock& b : p.blocks) {
      ASSERT_LE(b.straight.size(), kMaxOpsPerList);
      ASSERT_LE(b.body.size(), kMaxOpsPerList);
      ASSERT_LE(b.skip.size(), kMaxOpsPerList);
      ops += b.straight.size() + b.body.size() + b.skip.size();
    }
    ASSERT_GE(ops, 1u);  // delete never removes the last op
  }
}

TEST(Generator, ToAssemblyAnnotatesTheRepro) {
  const FuzzProgram p = ProgramFuzzer(5).next();
  const std::string text = to_assembly(p);
  EXPECT_NE(text.find("safedm-fuzz repro"), std::string::npos);
  EXPECT_NE(text.find("gen_seed="), std::string::npos);
  EXPECT_NE(text.find("ecall"), std::string::npos);
}

TEST(InstWords, BiasedWordsMatchTheirTableEntry) {
  InstWordFuzzer words(77);
  for (int i = 0; i < 10'000; ++i) {
    const u32 raw = words.biased_word();
    bool matched = false;
    for (const isa::InstInfo& ii : isa::inst_table())
      matched |= (raw & ii.mask) == ii.match;
    ASSERT_TRUE(matched) << std::hex << raw;
  }
}

}  // namespace
}  // namespace safedm::fuzz
