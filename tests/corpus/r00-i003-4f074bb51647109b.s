# safedm-fuzz repro  gen_seed=15073602981692533902 data_seed=17858856471502575305 ops=84 text_words=144
# regenerate/replay: bench_fuzz_campaign --replay=<dir with the matching .fuzz>
     0:  addi x8, x10, 0
     4:  lui x5, 0xd
     8:  addiw x5, x5, 1992
     c:  lui x6, 0xc
    10:  addiw x6, x6, 1673
    14:  lui x7, 0x7
    18:  addiw x7, x7, -1014
    1c:  lui x9, 0xb
    20:  addiw x9, x9, 1579
    24:  lui x18, 0xa
    28:  addiw x18, x18, 1260
    2c:  lui x19, 0x5
    30:  addiw x19, x19, -1427
    34:  lui x20, 0x4
    38:  addiw x20, x20, -1746
    3c:  lui x21, 0xe
    40:  addiw x21, x21, -337
    44:  lui x11, 0x3
    48:  addiw x11, x11, -1184
    4c:  lui x12, 0xd
    50:  addiw x12, x12, 225
    54:  lui x13, 0xc
    58:  addiw x13, x13, -94
    5c:  lui x28, 0x6
    60:  addiw x28, x28, 1315
    64:  lui x29, 0x5
    68:  addiw x29, x29, 996
    6c:  lui x30, 0x10
    70:  addiw x30, x30, -1691
    74:  slli x28, x7, 6
    78:  lbu x29, 1575(x8)
    7c:  sltiu x30, x7, 952
    80:  fdiv.d f4, f4, f2
    84:  add x13, x28, x30
    88:  fdiv.d f4, f0, f5
    8c:  sll x6, x18, x29
    90:  sll x20, x29, x30
    94:  sub x30, x28, x28
    98:  mul x20, x18, x18
    9c:  xor x18, x29, x7
    a0:  sub x19, x12, x5
    a4:  addi x22, x0, 9
    a8:  beq x22, x0, 32
    ac:  fdiv.d f4, f0, f9
    b0:  fmul.d f0, f0, f3
    b4:  rem x21, x13, x13
    b8:  srai x9, x28, 54
    bc:  sltu x21, x11, x12
    c0:  addi x22, x22, -1
    c4:  jal x0, -28
    c8:  sltiu x19, x20, 709
    cc:  ld x29, 1544(x8)
    d0:  xor x30, x19, x9
    d4:  fmv.d.x f0, x29
    d8:  fmv.d.x f2, x29
    dc:  div x18, x6, x18
    e0:  ld x30, 120(x8)
    e4:  addw x19, x29, x5
    e8:  fmv.d.x f2, x20
    ec:  xor x21, x13, x11
    f0:  mul x29, x19, x5
    f4:  slli x19, x7, 61
    f8:  fsd f2, 1216(x8)
    fc:  addi x22, x0, 1
   100:  beq x22, x0, 28
   104:  srl x13, x30, x13
   108:  slt x6, x13, x20
   10c:  add x18, x6, x5
   110:  slt x28, x7, x6
   114:  addi x22, x22, -1
   118:  jal x0, -24
   11c:  addw x29, x6, x7
   120:  sltu x7, x20, x9
   124:  mulw x11, x9, x21
   128:  slt x9, x11, x5
   12c:  addi x22, x0, 7
   130:  beq x22, x0, 20
   134:  div x13, x19, x28
   138:  mul x19, x5, x28
   13c:  addi x22, x22, -1
   140:  jal x0, -16
   144:  addi x5, x11, -443
   148:  slt x20, x20, x28
   14c:  mulw x18, x12, x30
   150:  lw x29, 1452(x8)
   154:  fmul.d f9, f2, f4
   158:  and x18, x28, x9
   15c:  lw x12, 1940(x8)
   160:  divu x30, x19, x21
   164:  srl x28, x7, x20
   168:  addw x20, x28, x18
   16c:  addi x5, x28, -1166
   170:  addi x22, x0, 2
   174:  beq x22, x0, 44
   178:  fmv.x.d x11, f8
   17c:  xor x6, x29, x5
   180:  mulw x5, x20, x13
   184:  srai x6, x21, 44
   188:  addw x11, x21, x28
   18c:  andi x31, x29, 1
   190:  beq x31, x0, 8
   194:  fsd f2, 744(x8)
   198:  addi x22, x22, -1
   19c:  jal x0, -40
   1a0:  sd x13, 1936(x8)
   1a4:  mulh x21, x7, x21
   1a8:  or x30, x11, x20
   1ac:  fadd.d f5, f8, f5
   1b0:  fmv.x.d x6, f5
   1b4:  addi x22, x0, 3
   1b8:  beq x22, x0, 44
   1bc:  srai x29, x6, 32
   1c0:  srl x21, x28, x19
   1c4:  and x28, x21, x12
   1c8:  srl x20, x28, x13
   1cc:  rem x18, x28, x11
   1d0:  andi x31, x11, 1
   1d4:  beq x31, x0, 8
   1d8:  slli x7, x18, 63
   1dc:  addi x22, x22, -1
   1e0:  jal x0, -40
   1e4:  xor x21, x28, x20
   1e8:  mulw x18, x11, x5
   1ec:  divu x20, x19, x12
   1f0:  mulw x19, x9, x29
   1f4:  mul x6, x21, x19
   1f8:  fmv.x.d x30, f5
   1fc:  fsd f3, 1192(x8)
   200:  add x29, x29, x28
   204:  div x6, x18, x5
   208:  addi x22, x0, 1
   20c:  beq x22, x0, 48
   210:  divu x20, x21, x21
   214:  mulh x28, x13, x19
   218:  fld f0, 880(x8)
   21c:  addw x18, x29, x21
   220:  div x11, x30, x9
   224:  div x5, x9, x5
   228:  andi x31, x29, 1
   22c:  beq x31, x0, 8
   230:  sltu x12, x7, x9
   234:  addi x22, x22, -1
   238:  jal x0, -44
   23c:  ecall
