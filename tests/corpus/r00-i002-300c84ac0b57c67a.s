# safedm-fuzz repro  gen_seed=12554906654809635439 data_seed=270753259412741524 ops=88 text_words=156
# regenerate/replay: bench_fuzz_campaign --replay=<dir with the matching .fuzz>
     0:  addi x8, x10, 0
     4:  lui x5, 0xc
     8:  addiw x5, x5, 1769
     c:  lui x6, 0xe
    10:  addiw x6, x6, -2008
    14:  lui x7, 0xb
    18:  addiw x7, x7, 1675
    1c:  lui x9, 0x7
    20:  addiw x9, x9, -918
    24:  lui x18, 0x5
    28:  addiw x18, x18, -1331
    2c:  lui x19, 0xa
    30:  addiw x19, x19, 1356
    34:  lui x20, 0xe
    38:  addiw x20, x20, -241
    3c:  lui x21, 0x4
    40:  addiw x21, x21, -1650
    44:  lui x11, 0xd
    48:  addiw x11, x11, 321
    4c:  lui x12, 0x3
    50:  addiw x12, x12, -1088
    54:  lui x13, 0x6
    58:  addiw x13, x13, 1411
    5c:  lui x28, 0xc
    60:  addiw x28, x28, 2
    64:  lui x29, 0x10
    68:  addiw x29, x29, -1595
    6c:  lui x30, 0x5
    70:  addiw x30, x30, 1092
    74:  mul x5, x28, x21
    78:  srai x13, x5, 39
    7c:  divu x20, x6, x21
    80:  divu x20, x9, x11
    84:  or x29, x9, x19
    88:  addi x22, x0, 2
    8c:  beq x22, x0, 48
    90:  addw x9, x13, x30
    94:  slt x13, x28, x30
    98:  srl x19, x13, x5
    9c:  mulh x13, x11, x29
    a0:  addi x21, x12, 767
    a4:  sub x20, x5, x5
    a8:  andi x31, x13, 1
    ac:  beq x31, x0, 8
    b0:  div x28, x30, x18
    b4:  addi x22, x22, -1
    b8:  jal x0, -44
    bc:  fsd f0, 1568(x8)
    c0:  subw x21, x30, x19
    c4:  addi x18, x11, 1127
    c8:  or x12, x30, x19
    cc:  xor x12, x29, x12
    d0:  fmul.d f1, f4, f1
    d4:  fsd f8, 136(x8)
    d8:  div x13, x30, x30
    dc:  srl x18, x28, x30
    e0:  xor x7, x7, x30
    e4:  sw x11, 1440(x8)
    e8:  addi x22, x0, 2
    ec:  beq x22, x0, 36
    f0:  srai x13, x30, 50
    f4:  mulh x21, x18, x9
    f8:  rem x6, x13, x11
    fc:  andi x31, x11, 1
   100:  beq x31, x0, 8
   104:  xor x20, x21, x5
   108:  addi x22, x22, -1
   10c:  jal x0, -32
   110:  sub x11, x21, x28
   114:  add x19, x30, x19
   118:  mul x12, x30, x12
   11c:  sll x13, x6, x20
   120:  fadd.d f0, f2, f1
   124:  ld x20, 1128(x8)
   128:  sltiu x20, x13, 97
   12c:  sltu x19, x21, x18
   130:  or x7, x9, x19
   134:  addi x22, x0, 6
   138:  beq x22, x0, 28
   13c:  fmv.d.x f2, x9
   140:  andi x31, x30, 1
   144:  beq x31, x0, 8
   148:  mulw x12, x5, x19
   14c:  addi x22, x22, -1
   150:  jal x0, -24
   154:  sra x21, x30, x20
   158:  slli x20, x13, 29
   15c:  divu x9, x7, x30
   160:  sltiu x29, x12, 1097
   164:  slli x19, x19, 44
   168:  fld f3, 1632(x8)
   16c:  fld f3, 144(x8)
   170:  fsd f2, 1512(x8)
   174:  sub x19, x21, x9
   178:  addi x22, x0, 8
   17c:  beq x22, x0, 48
   180:  fdiv.d f9, f5, f5
   184:  lh x18, 2012(x8)
   188:  or x30, x21, x21
   18c:  xor x13, x21, x29
   190:  fld f4, 1800(x8)
   194:  fmul.d f3, f3, f5
   198:  andi x31, x6, 1
   19c:  beq x31, x0, 8
   1a0:  addw x21, x19, x30
   1a4:  addi x22, x22, -1
   1a8:  jal x0, -44
   1ac:  add x13, x11, x6
   1b0:  fmv.d.x f4, x28
   1b4:  lbu x29, 553(x8)
   1b8:  addw x18, x19, x21
   1bc:  mulh x13, x19, x7
   1c0:  slli x30, x21, 22
   1c4:  or x9, x9, x21
   1c8:  addi x29, x9, 1310
   1cc:  subw x5, x11, x20
   1d0:  lbu x6, 400(x8)
   1d4:  rem x28, x11, x7
   1d8:  fadd.d f3, f9, f1
   1dc:  div x11, x20, x19
   1e0:  addi x22, x0, 4
   1e4:  beq x22, x0, 44
   1e8:  sltiu x21, x29, 1786
   1ec:  addw x20, x12, x6
   1f0:  srl x12, x18, x18
   1f4:  fdiv.d f4, f0, f1
   1f8:  sub x12, x29, x21
   1fc:  andi x31, x19, 1
   200:  beq x31, x0, 8
   204:  sltu x13, x21, x11
   208:  addi x22, x22, -1
   20c:  jal x0, -40
   210:  srl x18, x21, x20
   214:  or x6, x19, x20
   218:  slli x19, x5, 33
   21c:  srl x6, x19, x6
   220:  addi x22, x0, 1
   224:  beq x22, x0, 28
   228:  divu x5, x18, x11
   22c:  mul x6, x7, x13
   230:  addw x18, x19, x5
   234:  or x9, x28, x5
   238:  addi x22, x22, -1
   23c:  jal x0, -24
   240:  srai x20, x7, 47
   244:  mul x19, x13, x20
   248:  ld x21, 1560(x8)
   24c:  addi x22, x0, 1
   250:  beq x22, x0, 28
   254:  div x7, x12, x7
   258:  and x19, x20, x6
   25c:  rem x13, x29, x20
   260:  xor x7, x5, x11
   264:  addi x22, x22, -1
   268:  jal x0, -24
   26c:  ecall
