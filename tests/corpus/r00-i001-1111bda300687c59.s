# safedm-fuzz repro  gen_seed=10315147614619828300 data_seed=12828959900507386036 ops=35 text_words=77
# regenerate/replay: bench_fuzz_campaign --replay=<dir with the matching .fuzz>
     0:  addi x8, x10, 0
     4:  lui x5, 0x2
     8:  addiw x5, x5, -1488
     c:  lui x6, 0x1
    10:  addiw x6, x6, -1807
    14:  lui x7, 0xb
    18:  addiw x7, x7, -398
    1c:  lui x9, 0xa
    20:  addiw x9, x9, -717
    24:  lui x18, 0x4
    28:  addiw x18, x18, 692
    2c:  lui x19, 0x3
    30:  addiw x19, x19, 373
    34:  lui x20, 0x8
    38:  addiw x20, x20, -1130
    3c:  lui x21, 0x2
    40:  addiw x21, x21, 279
    44:  lui x11, 0x1
    48:  addiw x11, x11, -40
    4c:  lui x12, 0xb
    50:  addiw x12, x12, 1369
    54:  lui x13, 0xa
    58:  addiw x13, x13, 1050
    5c:  lui x28, 0xf
    60:  addiw x28, x28, -453
    64:  lui x29, 0x9
    68:  addiw x29, x29, 956
    6c:  lui x30, 0x8
    70:  addiw x30, x30, 637
    74:  sltu x9, x13, x28
    78:  fld f0, 1520(x8)
    7c:  sltiu x13, x18, 2042
    80:  mulw x20, x19, x29
    84:  sra x18, x12, x7
    88:  divu x18, x18, x6
    8c:  mulh x19, x6, x6
    90:  rem x21, x30, x30
    94:  fdiv.d f4, f0, f5
    98:  mul x11, x30, x6
    9c:  subw x6, x11, x29
    a0:  and x19, x13, x20
    a4:  srl x30, x13, x11
    a8:  addi x22, x0, 1
    ac:  beq x22, x0, 24
    b0:  addi x12, x12, -1514
    b4:  srai x20, x28, 57
    b8:  rem x30, x28, x20
    bc:  addi x22, x22, -1
    c0:  jal x0, -20
    c4:  sltu x5, x29, x18
    c8:  rem x11, x12, x11
    cc:  mulh x28, x18, x19
    d0:  div x19, x19, x30
    d4:  slt x29, x20, x21
    d8:  sub x19, x9, x30
    dc:  xor x9, x12, x6
    e0:  or x30, x11, x29
    e4:  addi x22, x0, 4
    e8:  beq x22, x0, 24
    ec:  xor x21, x20, x7
    f0:  sh x11, 1506(x8)
    f4:  mul x13, x19, x21
    f8:  addi x22, x22, -1
    fc:  jal x0, -20
   100:  sb x18, 1372(x8)
   104:  lw x18, 708(x8)
   108:  fmv.x.d x12, f9
   10c:  add x6, x12, x21
   110:  srai x9, x21, 21
   114:  srai x28, x5, 48
   118:  addi x22, x0, 4
   11c:  beq x22, x0, 20
   120:  add x12, x9, x20
   124:  addw x19, x20, x7
   128:  addi x22, x22, -1
   12c:  jal x0, -16
   130:  ecall
