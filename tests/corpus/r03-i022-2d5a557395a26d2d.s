# safedm-fuzz repro  gen_seed=12929039355286655288 data_seed=16249863540161216655 ops=63 text_words=127
# regenerate/replay: bench_fuzz_campaign --replay=<dir with the matching .fuzz>
     0:  addi x8, x10, 0
     4:  lui x5, 0x10
     8:  addiw x5, x5, -503
     c:  lui x6, 0x1
    10:  addiw x6, x6, -184
    14:  lui x7, 0xf
    18:  addiw x7, x7, -597
    1c:  lui x9, 0xa
    20:  addiw x9, x9, 906
    24:  lui x18, 0x8
    28:  addiw x18, x18, 493
    2c:  lui x19, 0xe
    30:  addiw x19, x19, -916
    34:  lui x20, 0x1
    38:  addiw x20, x20, 1583
    3c:  lui x21, 0x7
    40:  addiw x21, x21, 174
    44:  lui x11, 0x1
    48:  addiw x11, x11, -1951
    4c:  lui x12, 0x6
    50:  addiw x12, x12, 736
    54:  lui x13, 0xa
    58:  addiw x13, x13, -861
    5c:  lui x28, 0xf
    60:  addiw x28, x28, 1826
    64:  lui x29, 0x3
    68:  addiw x29, x29, 229
    6c:  lui x30, 0x9
    70:  addiw x30, x30, -1180
    74:  fmv.x.d x12, f1
    78:  sw x9, 1992(x8)
    7c:  rem x29, x5, x21
    80:  addi x22, x0, 8
    84:  beq x22, x0, 32
    88:  subw x19, x28, x12
    8c:  div x5, x6, x6
    90:  andi x31, x6, 1
    94:  beq x31, x0, 8
    98:  mulw x28, x28, x28
    9c:  addi x22, x22, -1
    a0:  jal x0, -28
    a4:  add x7, x5, x9
    a8:  mul x21, x7, x30
    ac:  srl x29, x13, x7
    b0:  srl x29, x6, x20
    b4:  rem x30, x18, x9
    b8:  addi x22, x0, 3
    bc:  beq x22, x0, 36
    c0:  slt x18, x13, x7
    c4:  sw x12, 144(x8)
    c8:  srai x6, x6, 0
    cc:  andi x31, x5, 1
    d0:  beq x31, x0, 8
    d4:  fmul.d f8, f2, f0
    d8:  addi x22, x22, -1
    dc:  jal x0, -32
    e0:  rem x21, x21, x11
    e4:  sh x5, 1538(x8)
    e8:  mulh x7, x29, x21
    ec:  and x19, x5, x9
    f0:  fld f9, 1872(x8)
    f4:  addi x22, x0, 9
    f8:  beq x22, x0, 28
    fc:  fmul.d f0, f8, f5
   100:  andi x31, x13, 1
   104:  beq x31, x0, 8
   108:  add x13, x5, x28
   10c:  addi x22, x22, -1
   110:  jal x0, -24
   114:  addi x20, x12, -1648
   118:  mulh x21, x21, x18
   11c:  fadd.d f3, f5, f1
   120:  addi x12, x5, -404
   124:  fadd.d f1, f5, f8
   128:  addi x22, x0, 7
   12c:  beq x22, x0, 44
   130:  fmv.x.d x28, f2
   134:  lbu x12, 13(x8)
   138:  fdiv.d f3, f4, f4
   13c:  divu x29, x21, x19
   140:  sll x7, x9, x30
   144:  andi x31, x9, 1
   148:  beq x31, x0, 8
   14c:  sub x29, x28, x19
   150:  addi x22, x22, -1
   154:  jal x0, -40
   158:  fld f2, 32(x8)
   15c:  divu x19, x28, x29
   160:  sb x18, 1236(x8)
   164:  srai x28, x7, 9
   168:  lh x20, 596(x8)
   16c:  rem x9, x21, x30
   170:  mulh x21, x9, x12
   174:  divu x30, x19, x11
   178:  fsd f2, 400(x8)
   17c:  divu x21, x5, x12
   180:  sra x30, x29, x13
   184:  addw x7, x21, x18
   188:  addi x22, x0, 8
   18c:  beq x22, x0, 28
   190:  or x5, x7, x19
   194:  srai x9, x21, 15
   198:  addi x30, x5, -1630
   19c:  fmv.d.x f1, x28
   1a0:  addi x22, x22, -1
   1a4:  jal x0, -24
   1a8:  rem x18, x30, x13
   1ac:  sub x7, x28, x9
   1b0:  mulh x11, x29, x18
   1b4:  xor x7, x5, x6
   1b8:  addw x30, x9, x28
   1bc:  sltiu x29, x29, 313
   1c0:  or x28, x30, x19
   1c4:  slli x18, x19, 33
   1c8:  sub x9, x18, x5
   1cc:  addi x22, x0, 9
   1d0:  beq x22, x0, 40
   1d4:  and x30, x13, x6
   1d8:  add x20, x9, x30
   1dc:  slli x6, x29, 24
   1e0:  and x13, x20, x5
   1e4:  andi x31, x9, 1
   1e8:  beq x31, x0, 8
   1ec:  lw x5, 1244(x8)
   1f0:  addi x22, x22, -1
   1f4:  jal x0, -36
   1f8:  ecall
