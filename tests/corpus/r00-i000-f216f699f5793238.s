# safedm-fuzz repro  gen_seed=7791666200248012333 data_seed=8774867611407717446 ops=83 text_words=144
# regenerate/replay: bench_fuzz_campaign --replay=<dir with the matching .fuzz>
     0:  addi x8, x10, 0
     4:  lui x5, 0xf
     8:  addiw x5, x5, -712
     c:  lui x6, 0x9
    10:  addiw x6, x6, 697
    14:  lui x7, 0x8
    18:  addiw x7, x7, 378
    1c:  lui x9, 0xd
    20:  addiw x9, x9, -1125
    24:  lui x18, 0x7
    28:  addiw x18, x18, 284
    2c:  lui x19, 0x6
    30:  addiw x19, x19, -35
    34:  addi x20, x0, 1374
    38:  lui x21, 0xf
    3c:  addiw x21, x21, 1055
    40:  lui x11, 0xf
    44:  addiw x11, x11, 1936
    48:  lui x12, 0xe
    4c:  addiw x12, x12, 1617
    50:  lui x13, 0x9
    54:  addiw x13, x13, -1070
    58:  lui x28, 0x8
    5c:  addiw x28, x28, -1389
    60:  lui x29, 0x2
    64:  addiw x29, x29, 20
    68:  lui x30, 0x1
    6c:  addiw x30, x30, -299
    70:  srl x29, x28, x6
    74:  srl x20, x5, x30
    78:  lw x30, 996(x8)
    7c:  divu x5, x18, x12
    80:  mulw x6, x11, x30
    84:  add x18, x13, x18
    88:  lbu x19, 1640(x8)
    8c:  subw x18, x12, x21
    90:  subw x29, x13, x13
    94:  slli x21, x20, 19
    98:  sra x13, x11, x20
    9c:  addi x22, x0, 5
    a0:  beq x22, x0, 32
    a4:  sw x18, 1336(x8)
    a8:  fdiv.d f0, f5, f1
    ac:  sltu x7, x19, x19
    b0:  addi x29, x6, -268
    b4:  add x18, x11, x11
    b8:  addi x22, x22, -1
    bc:  jal x0, -28
    c0:  addw x5, x13, x5
    c4:  xor x19, x30, x6
    c8:  add x12, x12, x20
    cc:  sub x30, x5, x18
    d0:  fsd f5, 1376(x8)
    d4:  fld f3, 1264(x8)
    d8:  fmv.x.d x29, f4
    dc:  fadd.d f2, f1, f2
    e0:  fmv.x.d x12, f3
    e4:  mul x18, x7, x28
    e8:  ld x20, 1872(x8)
    ec:  addw x11, x30, x13
    f0:  addi x22, x0, 2
    f4:  beq x22, x0, 32
    f8:  mulw x6, x19, x9
    fc:  sra x9, x28, x29
   100:  sltiu x19, x5, 377
   104:  mul x11, x29, x21
   108:  divu x20, x6, x11
   10c:  addi x22, x22, -1
   110:  jal x0, -28
   114:  addi x13, x12, -1867
   118:  or x29, x6, x13
   11c:  srl x28, x29, x7
   120:  div x29, x7, x18
   124:  fmv.d.x f1, x30
   128:  srl x11, x11, x11
   12c:  fsd f5, 672(x8)
   130:  srai x19, x21, 31
   134:  fmul.d f4, f9, f2
   138:  addi x22, x0, 5
   13c:  beq x22, x0, 20
   140:  sw x20, 772(x8)
   144:  sll x20, x29, x11
   148:  addi x22, x22, -1
   14c:  jal x0, -16
   150:  subw x19, x28, x21
   154:  subw x21, x7, x30
   158:  addw x28, x9, x30
   15c:  and x6, x30, x13
   160:  fdiv.d f3, f9, f4
   164:  lh x7, 138(x8)
   168:  slli x11, x9, 30
   16c:  addi x22, x0, 2
   170:  beq x22, x0, 16
   174:  mulh x21, x28, x9
   178:  addi x22, x22, -1
   17c:  jal x0, -12
   180:  and x13, x6, x19
   184:  fmv.x.d x28, f8
   188:  addw x19, x29, x29
   18c:  and x29, x21, x9
   190:  and x6, x13, x5
   194:  addi x22, x0, 3
   198:  beq x22, x0, 48
   19c:  srai x9, x6, 17
   1a0:  srai x28, x12, 18
   1a4:  mulh x12, x6, x9
   1a8:  srai x20, x7, 20
   1ac:  subw x21, x11, x21
   1b0:  mulw x11, x7, x13
   1b4:  andi x31, x29, 1
   1b8:  beq x31, x0, 8
   1bc:  sh x13, 498(x8)
   1c0:  addi x22, x22, -1
   1c4:  jal x0, -44
   1c8:  divu x12, x12, x28
   1cc:  sll x9, x7, x7
   1d0:  mulw x30, x28, x5
   1d4:  sb x7, 490(x8)
   1d8:  fld f3, 216(x8)
   1dc:  addi x22, x0, 5
   1e0:  beq x22, x0, 28
   1e4:  and x6, x6, x20
   1e8:  andi x31, x5, 1
   1ec:  beq x31, x0, 8
   1f0:  mulh x9, x9, x21
   1f4:  addi x22, x22, -1
   1f8:  jal x0, -24
   1fc:  fld f0, 896(x8)
   200:  fmv.x.d x7, f5
   204:  fld f0, 1912(x8)
   208:  sra x11, x20, x13
   20c:  subw x19, x11, x28
   210:  div x28, x29, x18
   214:  slt x5, x11, x30
   218:  subw x29, x29, x30
   21c:  mulw x11, x5, x21
   220:  div x7, x18, x21
   224:  addi x22, x0, 8
   228:  beq x22, x0, 20
   22c:  fsd f0, 1192(x8)
   230:  lbu x20, 663(x8)
   234:  addi x22, x22, -1
   238:  jal x0, -16
   23c:  ecall
