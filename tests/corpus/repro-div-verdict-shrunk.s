# safedm-fuzz repro  gen_seed=3357 data_seed=55930 ops=1 text_words=7
# regenerate/replay: bench_fuzz_campaign --replay=<dir with the matching .fuzz>
     0:  addi x8, x10, 0
     4:  lui x7, 0x3
     8:  addiw x7, x7, 703
     c:  lui x9, 0x4
    10:  addiw x9, x9, 1022
    14:  div x6, x7, x9
    18:  ecall
