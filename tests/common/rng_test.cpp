#include "safedm/common/rng.hpp"

#include <gtest/gtest.h>

namespace safedm {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro, RangeInclusive) {
  Xoshiro256 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const u64 v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, ReseedRestartsSequence) {
  Xoshiro256 rng(5);
  const u64 first = rng.next();
  rng.next();
  rng.reseed(5);
  EXPECT_EQ(rng.next(), first);
}

}  // namespace
}  // namespace safedm
