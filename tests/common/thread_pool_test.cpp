#include "safedm/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace safedm {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SerialModeHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int calls = 0;
  pool.parallel_for(5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  for (unsigned threads : {1u, 3u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.parallel_for(16,
                                   [&](std::size_t i) {
                                     if (i == 7) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
  }
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, WaitIdleRethrowsSubmittedException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  // The error is consumed; the pool remains usable.
  std::atomic<int> ok{0};
  pool.submit([&] { ok.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ok.load(), 1);
}

TEST(ThreadPool, SerialSubmitRecordsErrorAndWaitIdleRethrows) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  pool.submit([] { throw std::logic_error("serial task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  // The error is consumed; the serial pool remains usable.
  int ok = 0;
  pool.submit([&] { ++ok; });
  pool.wait_idle();
  EXPECT_EQ(ok, 1);
}

TEST(ThreadPool, SerialSubmitFromConcurrentCallersKeepsFirstError) {
  // A serial pool can still be driven from several external threads;
  // submit must update first_error_ under the lock (regression: it used
  // to write it unlocked, racing with wait_idle).
  ThreadPool pool(1);
  std::vector<std::thread> callers;
  std::atomic<int> ran{0};
  for (int t = 0; t < 4; ++t)
    callers.emplace_back([&pool, &ran, t] {
      for (int i = 0; i < 50; ++i)
        pool.submit([&ran, t, i] {
          ran.fetch_add(1);
          if (i == 25) throw std::runtime_error("caller " + std::to_string(t));
        });
    });
  for (auto& c : callers) c.join();
  EXPECT_EQ(ran.load(), 200);
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // error consumed; second wait is clean
}

TEST(ThreadPool, BenchThreadCountHonorsEnvOverride) {
  ::setenv("SAFEDM_BENCH_THREADS", "3", 1);
  EXPECT_EQ(bench_thread_count(), 3u);
  ::setenv("SAFEDM_BENCH_THREADS", "1", 1);
  EXPECT_EQ(bench_thread_count(), 1u);
  ::unsetenv("SAFEDM_BENCH_THREADS");
  EXPECT_GE(bench_thread_count(), 1u);
}

TEST(ThreadPool, BenchThreadCountZeroAndGarbageMeanAuto) {
  ::unsetenv("SAFEDM_BENCH_THREADS");
  const unsigned auto_count = bench_thread_count();
  ::setenv("SAFEDM_BENCH_THREADS", "0", 1);  // explicit "auto"
  EXPECT_EQ(bench_thread_count(), auto_count);
  for (const char* garbage : {"", "abc", "4x", "-2", "1.5"}) {
    ::setenv("SAFEDM_BENCH_THREADS", garbage, 1);
    EXPECT_EQ(bench_thread_count(), auto_count) << "input \"" << garbage << '"';
  }
  ::unsetenv("SAFEDM_BENCH_THREADS");
}

}  // namespace
}  // namespace safedm
