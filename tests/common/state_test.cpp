// StateWriter/StateReader container tests: scalar round-trips, section
// nesting and skip-on-end semantics, and the rejection paths (bad magic,
// tag/version mismatch, truncation) that keep a corrupt snapshot from
// being silently restored. All failures must be StateError, never
// CheckError — faultsim treats CheckError as a simulated crash.
#include "safedm/common/state.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace safedm {
namespace {

TEST(State, ScalarsRoundTripThroughOneSection) {
  StateWriter w;
  w.begin_section("TEST", 1);
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEAD'BEEF);
  w.put_u64(0x0123'4567'89AB'CDEFull);
  w.put_i64(-42);
  w.put_bool(true);
  w.put_bool(false);
  w.put_string("hello");
  w.end_section();
  const std::vector<u8> bytes = w.take();

  StateReader r(bytes);
  r.begin_section("TEST", 1);
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEAD'BEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123'4567'89AB'CDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_string(), "hello");
  r.end_section();
  EXPECT_TRUE(r.at_end());
}

TEST(State, ScalarsAreLittleEndianOnTheWire) {
  StateWriter w;
  w.begin_section("WIRE", 1);
  w.put_u32(0x0403'0201);
  w.end_section();
  const std::vector<u8> bytes = w.take();
  // magic(8) + tag(4) + version(4) + length(8) = 24 bytes of header.
  ASSERT_GE(bytes.size(), 28u);
  EXPECT_EQ(bytes[24], 0x01);
  EXPECT_EQ(bytes[25], 0x02);
  EXPECT_EQ(bytes[26], 0x03);
  EXPECT_EQ(bytes[27], 0x04);
}

TEST(State, SectionsNestAndEndSectionSkipsUnreadPayload) {
  StateWriter w;
  w.begin_section("OUTR", 3);
  w.put_u64(7);
  w.begin_section("INNR", 1);
  w.put_u64(11);
  w.put_u64(13);  // the reader will never read this
  w.end_section();
  w.put_u64(17);
  w.end_section();
  const std::vector<u8> bytes = w.take();

  StateReader r(bytes);
  EXPECT_EQ(r.begin_section("OUTR"), 3u);  // version-returning overload
  EXPECT_EQ(r.get_u64(), 7u);
  r.begin_section("INNR", 1);
  EXPECT_EQ(r.get_u64(), 11u);
  r.end_section();  // skips the unread 13
  EXPECT_EQ(r.get_u64(), 17u);
  r.end_section();
  EXPECT_TRUE(r.at_end());
}

TEST(State, RejectsBadMagic) {
  std::vector<u8> junk{'N', 'O', 'T', 'A', 'S', 'N', 'A', 'P'};
  EXPECT_THROW(StateReader{junk}, StateError);
  EXPECT_THROW(StateReader{std::vector<u8>{}}, StateError);
}

TEST(State, RejectsSectionTagMismatch) {
  StateWriter w;
  w.begin_section("AAAA", 1);
  w.end_section();
  const std::vector<u8> bytes = w.take();
  StateReader r(bytes);
  EXPECT_THROW(r.begin_section("BBBB", 1), StateError);
}

TEST(State, RejectsSectionVersionMismatch) {
  StateWriter w;
  w.begin_section("VERS", 2);
  w.put_u64(1);
  w.end_section();
  const std::vector<u8> bytes = w.take();
  StateReader r(bytes);
  EXPECT_THROW(r.begin_section("VERS", 1), StateError);
}

TEST(State, RejectsTruncatedStream) {
  StateWriter w;
  w.begin_section("TRNC", 1);
  for (u64 i = 0; i < 32; ++i) w.put_u64(i);
  w.end_section();
  std::vector<u8> bytes = w.take();

  // Cut mid-payload: the section header's length now points past the end.
  std::vector<u8> cut(bytes.begin(), bytes.begin() + static_cast<long>(bytes.size() / 2));
  StateReader r(cut);
  EXPECT_THROW(r.begin_section("TRNC", 1), StateError);

  // Cut mid-header: not even the section header survives.
  std::vector<u8> stub(bytes.begin(), bytes.begin() + 10);
  StateReader r2(stub);
  EXPECT_THROW(r2.begin_section("TRNC", 1), StateError);
}

TEST(State, ReadPastSectionEndIsTruncationNotBleedThrough) {
  StateWriter w;
  w.begin_section("ONEE", 1);
  w.put_u64(1);
  w.end_section();
  w.begin_section("TWOO", 1);
  w.put_u64(2);
  w.end_section();
  const std::vector<u8> bytes = w.take();

  StateReader r(bytes);
  r.begin_section("ONEE", 1);
  EXPECT_EQ(r.get_u64(), 1u);
  // The next u64 belongs to section TWOO; the bound must stop us here.
  EXPECT_THROW(r.get_u64(), StateError);
}

TEST(State, RejectsBoolOutOfRange) {
  StateWriter w;
  w.begin_section("BOOL", 1);
  w.put_u8(2);  // not a canonical bool
  w.end_section();
  const std::vector<u8> bytes = w.take();
  StateReader r(bytes);
  r.begin_section("BOOL", 1);
  EXPECT_THROW(r.get_bool(), StateError);
}

TEST(State, WriterEnforcesBalancedSections) {
  StateWriter w;
  EXPECT_THROW(w.end_section(), StateError);
  w.begin_section("OPEN", 1);
  EXPECT_THROW(w.take(), StateError);
  EXPECT_THROW(w.begin_section("BAD", 1), StateError);  // 3-char tag
}

TEST(State, SnapshotFileRoundTrip) {
  StateWriter w;
  w.begin_section("FILE", 1);
  w.put_u64(0xC0FF'EE00'1234'5678ull);
  w.end_section();
  const Snapshot snap{w.take()};

  const std::string path = ::testing::TempDir() + "safedm_state_test.snap";
  snap.to_file(path);
  const Snapshot back = Snapshot::from_file(path);
  EXPECT_EQ(back.bytes, snap.bytes);
  std::remove(path.c_str());

  EXPECT_THROW(Snapshot::from_file(path + ".does-not-exist"), StateError);
}

}  // namespace
}  // namespace safedm
