#include "safedm/common/bits.hpp"

#include <gtest/gtest.h>

namespace safedm {
namespace {

TEST(Bits, ExtractField) {
  EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
  EXPECT_EQ(bits(0xDEADBEEF, 3, 0), 0xFu);
  EXPECT_EQ(bits(0xDEADBEEF, 15, 8), 0xBEu);
  EXPECT_EQ(bits(~u64{0}, 63, 0), ~u64{0});
}

TEST(Bits, SingleBit) {
  EXPECT_EQ(bit(0b1010, 1), 1u);
  EXPECT_EQ(bit(0b1010, 0), 0u);
  EXPECT_EQ(bit(u64{1} << 63, 63), 1u);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xFFF, 12), -1);
  EXPECT_EQ(sign_extend(0x001, 12), 1);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x7FF, 12), 2047);
  EXPECT_EQ(sign_extend(0x80000000u, 32), i64{-2147483648});
  EXPECT_EQ(sign_extend(0x12345678, 64), 0x12345678);
}

TEST(Bits, ZeroExtend) {
  EXPECT_EQ(zero_extend(0xFFFF, 8), 0xFFu);
  EXPECT_EQ(zero_extend(0x1234, 16), 0x1234u);
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(log2_exact(32), 5u);
  EXPECT_EQ(align_down(0x1234, 0x100), 0x1200u);
  EXPECT_EQ(align_up(0x1201, 0x100), 0x1300u);
  EXPECT_EQ(align_up(0x1200, 0x100), 0x1200u);
}

}  // namespace
}  // namespace safedm
