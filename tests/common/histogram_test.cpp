#include "safedm/common/histogram.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "safedm/common/check.hpp"

namespace safedm {
namespace {

TEST(Histogram, BinsSamplesByUpperBound) {
  Histogram h({10, 100, 1000});
  h.add(1);
  h.add(10);    // still first bin (inclusive upper bound)
  h.add(11);
  h.add(500);
  h.add(5000);  // overflow bin
  EXPECT_EQ(h.bin_value(0), 2u);
  EXPECT_EQ(h.bin_value(1), 1u);
  EXPECT_EQ(h.bin_value(2), 1u);
  EXPECT_EQ(h.bin_value(3), 1u);
  EXPECT_EQ(h.total_samples(), 5u);
  EXPECT_EQ(h.max_sample(), 5000u);
}

TEST(Histogram, WeightsAccumulateSeparately) {
  Histogram h({4});
  h.add(2, 7);
  EXPECT_EQ(h.total_samples(), 1u);
  EXPECT_EQ(h.total_weight(), 7u);
  EXPECT_EQ(h.bin_value(0), 7u);
}

TEST(Histogram, EqualWidthFactory) {
  Histogram h = Histogram::equal_width(100, 4);
  EXPECT_EQ(h.bin_count(), 5u);  // 4 + overflow
  EXPECT_EQ(h.bin_upper(0), 100u);
  EXPECT_EQ(h.bin_upper(3), 400u);
  h.add(400);
  EXPECT_EQ(h.bin_value(3), 1u);
}

TEST(Histogram, ExponentialFactory) {
  Histogram h = Histogram::exponential(5);
  EXPECT_EQ(h.bin_upper(0), 1u);
  EXPECT_EQ(h.bin_upper(4), 16u);
  h.add(3);
  EXPECT_EQ(h.bin_value(2), 1u);  // (2,4]
}

TEST(Histogram, ClearResets) {
  Histogram h({10});
  h.add(3);
  h.clear();
  EXPECT_EQ(h.total_samples(), 0u);
  EXPECT_EQ(h.bin_value(0), 0u);
  EXPECT_EQ(h.max_sample(), 0u);
}

TEST(Histogram, CountersSaturateInsteadOfWrapping) {
  constexpr u64 kMax = std::numeric_limits<u64>::max();
  Histogram h({4});
  // sample * weight overflows u64: sample_sum must stick at the ceiling,
  // not wrap to a small value.
  h.add(kMax, 3);
  EXPECT_EQ(h.sample_sum(), kMax);
  EXPECT_EQ(h.max_sample(), kMax);
  // Bin count and total weight saturate under repeated huge weights.
  h.add(2, kMax - 1);
  h.add(2, kMax - 1);
  EXPECT_EQ(h.bin_value(0), kMax);
  EXPECT_EQ(h.total_weight(), kMax);
  EXPECT_EQ(h.total_samples(), 3u);
  // Saturated state still clears.
  h.clear();
  EXPECT_EQ(h.sample_sum(), 0u);
  EXPECT_EQ(h.bin_value(0), 0u);
}

// The shard-log merge folds per-shard partial histograms in whatever
// order the logs arrive; with saturating counters that fold must land on
// the same bytes either way (saturating add of non-negative terms is
// min(true sum, max), which is order-independent). A plain wrapping add
// would break this the moment any partial had saturated.
TEST(Histogram, MergeOfSaturatedPartialsIsOrderIndependent) {
  constexpr u64 kMax = std::numeric_limits<u64>::max();
  Histogram big({4});
  big.add(2, kMax - 1);  // saturates total_weight on the next touch
  big.add(kMax, 2);      // saturated sample_sum, max_sample at ceiling
  Histogram small({4});
  small.add(3, 5);
  small.add(7, 1);

  Histogram ab = big;
  ab.merge(small);
  Histogram ba = small;
  ba.merge(big);
  for (std::size_t bin = 0; bin < ab.bin_count(); ++bin)
    EXPECT_EQ(ab.bin_value(bin), ba.bin_value(bin)) << "bin " << bin;
  EXPECT_EQ(ab.total_samples(), ba.total_samples());
  EXPECT_EQ(ab.total_weight(), ba.total_weight());
  EXPECT_EQ(ab.sample_sum(), ba.sample_sum());
  EXPECT_EQ(ab.max_sample(), ba.max_sample());
  // Saturation actually engaged (the test would be vacuous otherwise),
  // and the merge matches folding every sample into one histogram.
  EXPECT_EQ(ab.total_weight(), kMax);
  Histogram seq({4});
  seq.add(2, kMax - 1);
  seq.add(kMax, 2);
  seq.add(3, 5);
  seq.add(7, 1);
  EXPECT_EQ(ab.total_weight(), seq.total_weight());
  EXPECT_EQ(ab.sample_sum(), seq.sample_sum());
  EXPECT_EQ(ab.max_sample(), seq.max_sample());
  for (std::size_t bin = 0; bin < seq.bin_count(); ++bin)
    EXPECT_EQ(ab.bin_value(bin), seq.bin_value(bin)) << "bin " << bin;
}

TEST(Histogram, MergeRequiresIdenticalBounds) {
  Histogram a({4});
  Histogram b({4, 8});
  EXPECT_THROW(a.merge(b), CheckError);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), CheckError);
  EXPECT_THROW(Histogram({5, 5}), CheckError);
  EXPECT_THROW(Histogram({5, 3}), CheckError);
}

}  // namespace
}  // namespace safedm
