#include "safedm/common/hash.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace safedm {
namespace {

TEST(Fnv1a, KnownVector) {
  // FNV-1a 64-bit of "a" is 0xAF63DC4C8601EC8C.
  const u8 a = 'a';
  EXPECT_EQ(fnv1a({&a, 1}), 0xAF63DC4C8601EC8Cull);
}

TEST(Fnv1a, StreamingMatchesOrderSensitivity) {
  Fnv1a64 h1, h2;
  h1.add(1);
  h1.add(2);
  h2.add(2);
  h2.add(1);
  EXPECT_NE(h1.value(), h2.value());
}

TEST(Fnv1a, BitAndWordDiffer) {
  Fnv1a64 h1, h2;
  h1.add_bit(true);
  h2.add_bit(false);
  EXPECT_NE(h1.value(), h2.value());
}

TEST(Crc32, KnownVector) {
  // CRC-32 (IEEE) of "123456789" is 0xCBF43926.
  Crc32 crc;
  for (char c : {'1', '2', '3', '4', '5', '6', '7', '8', '9'})
    crc.add_byte(static_cast<u8>(c));
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32, SensitiveToSingleBit) {
  Crc32 a, b;
  a.add(0x123456789ABCDEF0ull);
  b.add(0x123456789ABCDEF1ull);
  EXPECT_NE(a.value(), b.value());
}

}  // namespace
}  // namespace safedm
