#include "safedm/safedm/signature.hpp"

#include "safedm/common/check.hpp"

namespace safedm::monitor {

SignatureGenerator::SignatureGenerator(const SafeDmConfig& config) : config_(config) {
  SAFEDM_CHECK_MSG(config.num_ports >= 1 && config.num_ports <= core::kMaxPorts,
                   "monitored port count out of range");
  SAFEDM_CHECK_MSG(config.data_fifo_depth >= 1, "data FIFO depth must be positive");
  fifos_.resize(config.num_ports);
  for (PortFifo& fifo : fifos_) fifo.entries.assign(config.data_fifo_depth, {});
}

void SignatureGenerator::reset() {
  for (PortFifo& fifo : fifos_) {
    fifo.entries.assign(config_.data_fifo_depth, {});
    fifo.head = 0;
  }
  stages_ = {};
}

void SignatureGenerator::capture(const core::CoreTapFrame& frame) {
  // Stage snapshot: pipeline contents are level signals; re-capturing a
  // held pipeline reproduces the same snapshot.
  stages_ = frame.stage;

  // Data FIFOs shift once per un-held clock (paper IV-B1: "the hold signal
  // is used to not overwrite any values in the FIFOs if the pipeline is
  // stalled").
  if (frame.hold) return;
  for (unsigned p = 0; p < config_.num_ports; ++p) {
    PortFifo& fifo = fifos_[p];
    fifo.entries[fifo.head] = frame.port[p];
    fifo.head = (fifo.head + 1) % config_.data_fifo_depth;
  }
}

bool SignatureGenerator::data_equal(const SignatureGenerator& a, const SignatureGenerator& b) {
  SAFEDM_CHECK_MSG(a.config_.num_ports == b.config_.num_ports &&
                       a.config_.data_fifo_depth == b.config_.data_fifo_depth,
                   "comparing signature generators of different geometry");
  // Ring phase is part of the hardware state; compare entries in FIFO
  // order (oldest to newest) so equal histories compare equal regardless
  // of internal head positions.
  const unsigned n = a.config_.data_fifo_depth;
  for (unsigned p = 0; p < a.config_.num_ports; ++p) {
    const PortFifo& fa = a.fifos_[p];
    const PortFifo& fb = b.fifos_[p];
    for (unsigned i = 0; i < n; ++i) {
      if (!(fa.entries[(fa.head + i) % n] == fb.entries[(fb.head + i) % n])) return false;
    }
  }
  return true;
}

bool SignatureGenerator::instruction_equal(const SignatureGenerator& a,
                                           const SignatureGenerator& b) {
  SAFEDM_CHECK(a.config_.is_mode == b.config_.is_mode);
  if (a.config_.is_mode == IsMode::kPerStage) {
    return a.stages_ == b.stages_;
  }
  // Flat mode: the ordered list of in-flight encodings, oldest (WB) first,
  // ignoring which stage holds them.
  const auto flatten = [](const SignatureGenerator& s) {
    std::vector<u32> list;
    for (int st = core::kPipelineStages - 1; st >= 0; --st)
      for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane)
        if (s.stages_[st][lane].valid) list.push_back(s.stages_[st][lane].encoding);
    return list;
  };
  return flatten(a) == flatten(b);
}

u64 SignatureGenerator::data_distance(const SignatureGenerator& a,
                                      const SignatureGenerator& b) {
  SAFEDM_CHECK(a.config_.num_ports == b.config_.num_ports &&
               a.config_.data_fifo_depth == b.config_.data_fifo_depth);
  const unsigned n = a.config_.data_fifo_depth;
  u64 distance = 0;
  for (unsigned p = 0; p < a.config_.num_ports; ++p) {
    const PortFifo& fa = a.fifos_[p];
    const PortFifo& fb = b.fifos_[p];
    for (unsigned i = 0; i < n; ++i) {
      const core::PortTap& ta = fa.entries[(fa.head + i) % n];
      const core::PortTap& tb = fb.entries[(fb.head + i) % n];
      distance += static_cast<u64>(__builtin_popcountll(ta.value ^ tb.value));
      distance += ta.enable != tb.enable ? 1 : 0;
    }
  }
  return distance;
}

u64 SignatureGenerator::instruction_distance(const SignatureGenerator& a,
                                             const SignatureGenerator& b) {
  u64 distance = 0;
  for (unsigned st = 0; st < core::kPipelineStages; ++st) {
    for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane) {
      const core::StageSlotTap& sa = a.stages_[st][lane];
      const core::StageSlotTap& sb = b.stages_[st][lane];
      distance += static_cast<u64>(__builtin_popcount(sa.encoding ^ sb.encoding));
      distance += sa.valid != sb.valid ? 1 : 0;
    }
  }
  return distance;
}

u32 SignatureGenerator::data_crc() const {
  Crc32 crc;
  const unsigned n = config_.data_fifo_depth;
  for (const PortFifo& fifo : fifos_) {
    for (unsigned i = 0; i < n; ++i) {
      const core::PortTap& tap = fifo.entries[(fifo.head + i) % n];
      crc.add_byte(tap.enable ? 1 : 0);
      crc.add(tap.value);
    }
  }
  return crc.value();
}

u32 SignatureGenerator::instruction_crc() const {
  Crc32 crc;
  if (config_.is_mode == IsMode::kPerStage) {
    for (const auto& stage : stages_) {
      for (const auto& slot : stage) {
        crc.add_byte(slot.valid ? 1 : 0);
        crc.add(slot.encoding);
      }
    }
  } else {
    for (int st = core::kPipelineStages - 1; st >= 0; --st)
      for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane)
        if (stages_[st][lane].valid) crc.add(stages_[st][lane].encoding);
  }
  return crc.value();
}

u64 SignatureGenerator::data_signature_bits() const {
  // Each FIFO entry stores a 64-bit value plus its enable bit.
  return static_cast<u64>(config_.num_ports) * config_.data_fifo_depth * 65;
}

u64 SignatureGenerator::instruction_signature_bits() const {
  // Each stage slot stores a 32-bit encoding plus its valid bit.
  return static_cast<u64>(core::kPipelineStages) * core::kMaxIssueWidth * 33;
}

core::PortTap SignatureGenerator::newest_sample(unsigned port) const {
  SAFEDM_CHECK(port < config_.num_ports);
  const PortFifo& fifo = fifos_[port];
  const unsigned newest = (fifo.head + config_.data_fifo_depth - 1) % config_.data_fifo_depth;
  return fifo.entries[newest];
}

}  // namespace safedm::monitor
