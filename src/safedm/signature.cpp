#include "safedm/safedm/signature.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <type_traits>

#include "safedm/common/bits.hpp"
#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::monitor {
namespace {

unsigned next_pow2(unsigned v) {
  unsigned p = 1;
  while (p < v) p <<= 1;
  return p;
}

// A packed stage word is the bit image of one StageSlotTap (8 bytes, no
// padding), so word equality is slot equality; decode via bit_cast.
static_assert(sizeof(core::StageSlotTap) == sizeof(u64));
static_assert(std::has_unique_object_representations_v<core::StageSlotTap>);

core::StageSlotTap unpack_slot(u64 word) {
  core::StageSlotTap slot;
  std::memcpy(static_cast<void*>(&slot), &word, sizeof(slot));
  return slot;
}

// Flat-mode IS: the ordered list of in-flight encodings, oldest (WB)
// first, ignoring which stage holds them. Fixed-capacity scratch — the
// pipeline can hold at most stages × issue-width instructions — so the
// per-cycle comparison never touches the heap.
struct FlatList {
  std::array<u32, SignatureGenerator::kStageSlots> encoding{};
  unsigned count = 0;
};

FlatList flatten(const SignatureGenerator& s) {
  FlatList list;
  const auto& packed = s.packed_stages();
  for (int st = core::kPipelineStages - 1; st >= 0; --st) {
    for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane) {
      const core::StageSlotTap slot =
          unpack_slot(packed[static_cast<unsigned>(st) * core::kMaxIssueWidth + lane]);
      if (slot.valid) list.encoding[list.count++] = slot.encoding;
    }
  }
  return list;
}

}  // namespace

SignatureGenerator::SignatureGenerator(const SafeDmConfig& config) : config_(config) {
  SAFEDM_CHECK_MSG(config.num_ports >= 1 && config.num_ports <= core::kMaxPorts,
                   "monitored port count out of range");
  SAFEDM_CHECK_MSG(config.data_fifo_depth >= 1, "data FIFO depth must be positive");
  padded_depth_ = next_pow2(config.data_fifo_depth);
  depth_mask_ = padded_depth_ - 1;
  crc_cached_ = config.compare == CompareMode::kCrc32;
  detect_stage_changes_ = crc_cached_ || config.is_mode == IsMode::kFlatList;
  values_.assign(static_cast<size_t>(config.num_ports) * padded_depth_, 0);
  enables_.assign(values_.size(), 0);
  entry_crc_.assign(values_.size(), 0);
  entry_dirty_.assign(values_.size(), 1);
}

void SignatureGenerator::reset() {
  std::fill(values_.begin(), values_.end(), u64{0});
  std::fill(enables_.begin(), enables_.end(), u8{0});
  std::fill(entry_dirty_.begin(), entry_dirty_.end(), u8{1});
  shifts_ = 0;
  data_crc_valid_ = false;
  inst_crc_valid_ = false;
  stage_packed_ = {};
  ++stage_version_;
}

bool SignatureGenerator::data_equal(const SignatureGenerator& a, const SignatureGenerator& b) {
  SAFEDM_CHECK_MSG(a.config_.num_ports == b.config_.num_ports &&
                       a.config_.data_fifo_depth == b.config_.data_fifo_depth,
                   "comparing signature generators of different geometry");
  // Ring phase is part of the hardware state; compare entries in FIFO
  // order (oldest to newest) so equal histories compare equal regardless
  // of internal write-cursor positions.
  const unsigned n = a.config_.data_fifo_depth;
  for (unsigned p = 0; p < a.config_.num_ports; ++p) {
    for (unsigned i = 0; i < n; ++i) {
      if (!(a.entry(p, i) == b.entry(p, i))) return false;
    }
  }
  return true;
}

bool SignatureGenerator::instruction_equal(const SignatureGenerator& a,
                                           const SignatureGenerator& b) {
  SAFEDM_CHECK(a.config_.is_mode == b.config_.is_mode);
  if (a.config_.is_mode == IsMode::kPerStage) {
    return a.stage_packed_ == b.stage_packed_;
  }
  const FlatList fa = flatten(a);
  const FlatList fb = flatten(b);
  return fa.count == fb.count &&
         std::equal(fa.encoding.begin(), fa.encoding.begin() + fa.count, fb.encoding.begin());
}

u64 SignatureGenerator::data_distance(const SignatureGenerator& a,
                                      const SignatureGenerator& b) {
  SAFEDM_CHECK(a.config_.num_ports == b.config_.num_ports &&
               a.config_.data_fifo_depth == b.config_.data_fifo_depth);
  const unsigned n = a.config_.data_fifo_depth;
  u64 distance = 0;
  for (unsigned p = 0; p < a.config_.num_ports; ++p) {
    for (unsigned i = 0; i < n; ++i) {
      const core::PortTap ta = a.entry(p, i);
      const core::PortTap tb = b.entry(p, i);
      distance += static_cast<u64>(__builtin_popcountll(ta.value ^ tb.value));
      distance += ta.enable != tb.enable ? 1 : 0;
    }
  }
  return distance;
}

u64 SignatureGenerator::instruction_distance(const SignatureGenerator& a,
                                             const SignatureGenerator& b) {
  // Packed words xor to exactly (encoding diff bits | valid diff bit), so
  // one popcount per slot covers both fields.
  u64 distance = 0;
  for (unsigned k = 0; k < kStageSlots; ++k) {
    distance += static_cast<u64>(__builtin_popcountll(a.stage_packed_[k] ^ b.stage_packed_[k]));
  }
  return distance;
}

u32 SignatureGenerator::entry_crc(unsigned index) const {
  if (entry_dirty_[index]) {
    Crc32 crc;
    crc.add_byte(enables_[index]);
    crc.add(values_[index]);
    entry_crc_[index] = crc.value();
    entry_dirty_[index] = 0;
  }
  return entry_crc_[index];
}

u32 SignatureGenerator::data_crc_combine(bool use_cache) const {
  // Combine per-entry CRCs in logical (oldest..newest) order. With the
  // cache, only entries written since their last hash are re-hashed.
  Crc32 crc;
  const unsigned n = config_.data_fifo_depth;
  for (unsigned p = 0; p < config_.num_ports; ++p) {
    const unsigned base = p * padded_depth_;
    for (unsigned i = 0; i < n; ++i) {
      const unsigned slot = static_cast<unsigned>(shifts_ - n + i) & depth_mask_;
      if (use_cache) {
        crc.add32(entry_crc(base + slot));
      } else {
        Crc32 e;
        e.add_byte(enables_[base + slot]);
        e.add(values_[base + slot]);
        crc.add32(e.value());
      }
    }
  }
  return crc.value();
}

u32 SignatureGenerator::data_crc() const {
  // Dirty-bit caching is only maintained in CRC compare mode; raw-mode
  // generators compute the (value-identical) combination fresh.
  if (!crc_cached_) return data_crc_combine(/*use_cache=*/false);
  if (data_crc_valid_) return data_crc_cache_;
  data_crc_cache_ = data_crc_combine(/*use_cache=*/true);
  data_crc_valid_ = true;
  return data_crc_cache_;
}

u32 SignatureGenerator::data_crc_exhaustive() const {
  Crc32 crc;
  const unsigned n = config_.data_fifo_depth;
  for (unsigned p = 0; p < config_.num_ports; ++p) {
    for (unsigned i = 0; i < n; ++i) {
      const core::PortTap tap = entry(p, i);
      crc.add_byte(tap.enable ? 1 : 0);
      crc.add(tap.value);
    }
  }
  return crc.value();
}

u32 SignatureGenerator::instruction_crc() const {
  if (!inst_crc_valid_) {
    inst_crc_cache_ = instruction_crc_exhaustive();
    inst_crc_valid_ = true;
  }
  return inst_crc_cache_;
}

u32 SignatureGenerator::instruction_crc_exhaustive() const {
  Crc32 crc;
  if (config_.is_mode == IsMode::kPerStage) {
    for (const u64 word : stage_packed_) {
      const core::StageSlotTap slot = unpack_slot(word);
      crc.add_byte(slot.valid ? 1 : 0);
      crc.add(slot.encoding);
    }
  } else {
    for (int st = core::kPipelineStages - 1; st >= 0; --st) {
      for (unsigned lane = 0; lane < core::kMaxIssueWidth; ++lane) {
        const core::StageSlotTap slot =
            unpack_slot(stage_packed_[static_cast<unsigned>(st) * core::kMaxIssueWidth + lane]);
        if (slot.valid) crc.add(slot.encoding);
      }
    }
  }
  return crc.value();
}

u64 SignatureGenerator::data_signature_bits() const {
  // Each FIFO entry stores a 64-bit value plus its enable bit.
  return static_cast<u64>(config_.num_ports) * config_.data_fifo_depth * 65;
}

u64 SignatureGenerator::instruction_signature_bits() const {
  // Each stage slot stores a 32-bit encoding plus its valid bit.
  return static_cast<u64>(core::kPipelineStages) * core::kMaxIssueWidth * 33;
}

core::PortTap SignatureGenerator::newest_sample(unsigned port) const {
  SAFEDM_CHECK(port < config_.num_ports);
  return entry(port, config_.data_fifo_depth - 1);
}

void SignatureGenerator::batch_commit(u64 shifts, const void* stage_src, u64 stage_bumps) {
  // Raw per-stage mode only: no CRC dirty bits or exact change detection
  // to maintain, so the chunk loop may write ring slots directly and sync
  // the cursor + level-signal pipeline snapshot here.
  SAFEDM_CHECK(!crc_cached_ && !detect_stage_changes_);
  shifts_ = shifts;
  std::memcpy(stage_packed_.data(), stage_src, sizeof(PackedStages));
  stage_version_ += stage_bumps;
}

void SignatureGenerator::save_state(StateWriter& w) const {
  w.begin_section("SIGG", 1);
  w.put_u32(config_.num_ports);
  w.put_u32(config_.data_fifo_depth);
  w.put_u8(static_cast<u8>(config_.is_mode));
  w.put_u8(static_cast<u8>(config_.compare));
  w.put_u64(shifts_);
  w.put_u64(stage_version_);
  // Same slot order and per-slot {enable, value} wire format as the
  // pre-SoA AoS ring: snapshots stay byte-compatible.
  for (size_t i = 0; i < values_.size(); ++i) {
    w.put_bool(enables_[i] != 0);
    w.put_u64(values_[i]);
  }
  for (u64 word : stage_packed_) w.put_u64(word);
  w.end_section();
}

void SignatureGenerator::restore_state(StateReader& r) {
  r.begin_section("SIGG", 1);
  if (r.get_u32() != config_.num_ports || r.get_u32() != config_.data_fifo_depth ||
      r.get_u8() != static_cast<u8>(config_.is_mode) ||
      r.get_u8() != static_cast<u8>(config_.compare))
    throw StateError("signature generator geometry mismatch");
  shifts_ = r.get_u64();
  stage_version_ = r.get_u64();
  // In place: values_data()/enables_data() stay stable for comparators.
  for (size_t i = 0; i < values_.size(); ++i) {
    enables_[i] = r.get_bool() ? u8{1} : u8{0};
    values_[i] = r.get_u64();
  }
  for (u64& word : stage_packed_) word = r.get_u64();
  // CRC memos are derived state: mark everything dirty so the next query
  // recomputes from the restored rings.
  if (crc_cached_) std::fill(entry_dirty_.begin(), entry_dirty_.end(), u8{1});
  data_crc_valid_ = false;
  inst_crc_valid_ = false;
  r.end_section();
}

}  // namespace safedm::monitor
