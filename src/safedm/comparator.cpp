#include "safedm/safedm/comparator.hpp"

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::monitor {

DiversityComparator::DiversityComparator(const SignatureGenerator& a,
                                         const SignatureGenerator& b)
    : a_(&a),
      b_(&b),
      a_samples_(a.samples_data()),
      b_samples_(b.samples_data()),
      stride_(a.padded_depth()),
      ring_mask_(a.padded_depth() - 1),
      depth_(a.config().data_fifo_depth),
      ports_(a.config().num_ports),
      crc_mode_(a.config().compare == CompareMode::kCrc32),
      raw_perstage_(a.config().compare != CompareMode::kCrc32 &&
                    a.config().is_mode == IsMode::kPerStage),
      incremental_ok_(a.config().data_fifo_depth <= 64) {
  SAFEDM_CHECK_MSG(a.config().num_ports == b.config().num_ports &&
                       a.config().data_fifo_depth == b.config().data_fifo_depth &&
                       a.config().is_mode == b.config().is_mode,
                   "comparator requires generators of identical geometry");
  resync();
}

void DiversityComparator::resync() {
  seen_shift_a_ = a_->shift_count();
  seen_shift_b_ = b_->shift_count();
  rescan_data();
  refresh_data_verdict();
  seen_stage_a_ = a_->stage_version();
  seen_stage_b_ = b_->stage_version();
  recompute_instruction_verdict();
}

void DiversityComparator::rescan_data() {
  mismatch_agg_ = 0;
  for (unsigned p = 0; p < ports_; ++p) {
    u64 mask = 0;
    if (incremental_ok_) {
      for (unsigned i = 0; i < depth_; ++i) {
        if (!(a_->entry(p, i) == b_->entry(p, i))) mask |= u64{1} << i;
      }
    }
    port_mismatch_[p] = mask;
    mismatch_agg_ |= mask;
  }
}

void DiversityComparator::refresh_data_verdict() {
  if (crc_mode_) {
    ds_match_ = a_->data_crc() == b_->data_crc();
  } else if (incremental_ok_) {
    ds_match_ = mismatch_agg_ == 0;
  } else {
    ds_match_ = SignatureGenerator::data_equal(*a_, *b_);
  }
}

void DiversityComparator::recompute_instruction_verdict() {
  is_match_ = crc_mode_ ? a_->instruction_crc() == b_->instruction_crc()
                        : SignatureGenerator::instruction_equal(*a_, *b_);
}

void DiversityComparator::save_state(StateWriter& w) const {
  w.begin_section("DCMP", 1);
  w.put_u64(stats_.fast_updates);
  w.put_u64(stats_.hold_reuses);
  w.put_u64(stats_.realign_scans);
  w.put_u64(stats_.is_recomputes);
  w.end_section();
}

void DiversityComparator::restore_state(StateReader& r) {
  r.begin_section("DCMP", 1);
  stats_.fast_updates = r.get_u64();
  stats_.hold_reuses = r.get_u64();
  stats_.realign_scans = r.get_u64();
  stats_.is_recomputes = r.get_u64();
  r.end_section();
  // Masks, seen shifts/versions, and both verdicts are derived from the
  // (already restored) generators.
  resync();
}

}  // namespace safedm::monitor
