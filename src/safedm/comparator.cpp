#include "safedm/safedm/comparator.hpp"

#include <algorithm>

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::monitor {

DiversityComparator::DiversityComparator(const SignatureGenerator& a,
                                         const SignatureGenerator& b)
    : a_(&a),
      b_(&b),
      a_values_(a.values_data()),
      b_values_(b.values_data()),
      a_enables_(a.enables_data()),
      b_enables_(b.enables_data()),
      stride_(a.padded_depth()),
      ring_mask_(a.padded_depth() - 1),
      depth_(a.config().data_fifo_depth),
      ports_(a.config().num_ports),
      crc_mode_(a.config().compare == CompareMode::kCrc32),
      raw_perstage_(a.config().compare != CompareMode::kCrc32 &&
                    a.config().is_mode == IsMode::kPerStage),
      mask_words_((a.config().data_fifo_depth + 63u) / 64u) {
  SAFEDM_CHECK_MSG(a.config().num_ports == b.config().num_ports &&
                       a.config().data_fifo_depth == b.config().data_fifo_depth &&
                       a.config().is_mode == b.config().is_mode,
                   "comparator requires generators of identical geometry");
  port_mismatch_.assign(static_cast<size_t>(ports_) * mask_words_, 0);
  resync();
}

void DiversityComparator::resync() {
  seen_shift_a_ = a_->shift_count();
  seen_shift_b_ = b_->shift_count();
  rescan_data();
  refresh_data_verdict();
  seen_stage_a_ = a_->stage_version();
  seen_stage_b_ = b_->stage_version();
  recompute_instruction_verdict();
}

void DiversityComparator::scan_port(unsigned p, u64 sa, u64 sb, u64* out) const {
  for (unsigned w = 0; w < mask_words_; ++w) out[w] = 0;
  const u64* av = a_values_ + static_cast<size_t>(p) * stride_;
  const u64* bv = b_values_ + static_cast<size_t>(p) * stride_;
  const u8* ae = a_enables_ + static_cast<size_t>(p) * stride_;
  const u8* be = b_enables_ + static_cast<size_t>(p) * stride_;
  const simd::MismatchBitsFn mismatch = simd::mismatch_bits_fn(simd::active_kernel());
  // Walk the logical window in runs that are contiguous in BOTH rings and
  // stay inside one mask word, bit-slicing each run with one kernel call.
  unsigned i = 0;
  while (i < depth_) {
    const unsigned oa = static_cast<unsigned>(sa - depth_ + i) & ring_mask_;
    const unsigned ob = static_cast<unsigned>(sb - depth_ + i) & ring_mask_;
    unsigned seg = depth_ - i;
    seg = std::min(seg, stride_ - oa);
    seg = std::min(seg, stride_ - ob);
    seg = std::min(seg, 64u - (i & 63u));
    out[i >> 6] |= mismatch(av + oa, bv + ob, ae + oa, be + ob, seg) << (i & 63u);
    i += seg;
  }
}

void DiversityComparator::rescan_at(u64 sa, u64 sb) {
  mismatch_agg_ = 0;
  for (unsigned p = 0; p < ports_; ++p) {
    u64* words = port_mismatch_.data() + static_cast<size_t>(p) * mask_words_;
    scan_port(p, sa, sb, words);
    for (unsigned w = 0; w < mask_words_; ++w) mismatch_agg_ |= words[w];
  }
}

void DiversityComparator::rescan_data() {
  rescan_at(a_->shift_count(), b_->shift_count());
}

bool DiversityComparator::step_realign(u64 sa, u64 sb) {
  rescan_at(sa, sb);
  ds_match_ = mismatch_agg_ == 0;
  ++stats_.realign_scans;
  return ds_match_;
}

void DiversityComparator::shift_insert_multiword(u64 sa, u64 sb) {
  const unsigned oa = (static_cast<unsigned>(sa) - 1) & ring_mask_;
  const unsigned ob = (static_cast<unsigned>(sb) - 1) & ring_mask_;
  const unsigned top_word = (depth_ - 1) >> 6;
  const unsigned top_bit = (depth_ - 1) & 63u;
  u64 agg = 0;
  for (unsigned p = 0; p < ports_; ++p) {
    u64* m = port_mismatch_.data() + static_cast<size_t>(p) * mask_words_;
    for (unsigned w = 0; w + 1 < mask_words_; ++w) {
      m[w] = (m[w] >> 1) | (m[w + 1] << 63);
    }
    m[mask_words_ - 1] >>= 1;
    const size_t ia = static_cast<size_t>(p) * stride_ + oa;
    const size_t ib = static_cast<size_t>(p) * stride_ + ob;
    m[top_word] |= static_cast<u64>((a_values_[ia] != b_values_[ib]) |
                                    (a_enables_[ia] != b_enables_[ib]))
                   << top_bit;
    for (unsigned w = 0; w < mask_words_; ++w) agg |= m[w];
  }
  mismatch_agg_ = agg;
}

void DiversityComparator::refresh_data_verdict() {
  // Raw mode: the mismatch masks are exact at every depth (multi-word
  // beyond 64), so the aggregate IS the verdict — no exhaustive fallback.
  ds_match_ = crc_mode_ ? a_->data_crc() == b_->data_crc() : mismatch_agg_ == 0;
}

void DiversityComparator::recompute_instruction_verdict() {
  is_match_ = crc_mode_ ? a_->instruction_crc() == b_->instruction_crc()
                        : SignatureGenerator::instruction_equal(*a_, *b_);
}

void DiversityComparator::save_state(StateWriter& w) const {
  w.begin_section("DCMP", 1);
  w.put_u64(stats_.fast_updates);
  w.put_u64(stats_.hold_reuses);
  w.put_u64(stats_.realign_scans);
  w.put_u64(stats_.is_recomputes);
  w.end_section();
}

void DiversityComparator::restore_state(StateReader& r) {
  r.begin_section("DCMP", 1);
  stats_.fast_updates = r.get_u64();
  stats_.hold_reuses = r.get_u64();
  stats_.realign_scans = r.get_u64();
  stats_.is_recomputes = r.get_u64();
  r.end_section();
  // Masks, seen shifts/versions, and both verdicts are derived from the
  // (already restored) generators.
  resync();
}

}  // namespace safedm::monitor
