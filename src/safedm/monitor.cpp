#include "safedm/safedm/monitor.hpp"

#include <algorithm>
#include <limits>

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::monitor {
namespace {

Histogram make_history(const SafeDmConfig& config) {
  if (!config.history_bins.empty()) return Histogram(config.history_bins);
  return Histogram::exponential(16);
}

}  // namespace

// ---- InstructionDiff -----------------------------------------------------------

void InstructionDiff::set_ignore(unsigned core_index, u64 count) {
  SAFEDM_CHECK(core_index < 2);
  ignore_[core_index] = count;
}

void InstructionDiff::on_commits_prelude(unsigned commits0, unsigned commits1) {
  u64 c0 = commits0, c1 = commits1;
  const u64 skip0 = std::min<u64>(ignore_[0], c0);
  const u64 skip1 = std::min<u64>(ignore_[1], c1);
  ignore_[0] -= skip0;
  c0 -= skip0;
  ignore_[1] -= skip1;
  c1 -= skip1;
  diff_ += static_cast<i64>(c0) - static_cast<i64>(c1);
}

void InstructionDiff::reset() {
  diff_ = 0;
  ignore_ = {0, 0};
}

// ---- SafeDm -----------------------------------------------------------------------

SafeDm::SafeDm(const SafeDmConfig& config)
    : config_(config),
      sig0_(config),
      sig1_(config),
      comparator_(sig0_, sig1_),
      enabled_(config.start_enabled),
      hist_nodiv_(make_history(config)),
      hist_ds_(make_history(config)),
      hist_is_(make_history(config)),
      hist_distance_(Histogram::exponential(20)) {}

void SafeDm::enable(bool on) { enabled_ = on; }

void SafeDm::set_prelude_ignore(unsigned core_index, u64 commits) {
  inst_diff_.set_ignore(core_index, commits);
}

void SafeDm::clear_interrupt() { irq_pending_ = false; }

void SafeDm::set_interrupt_handler(std::function<void(u64)> handler) {
  irq_handler_ = std::move(handler);
}

void SafeDm::reset() {
  sig0_.reset();
  sig1_.reset();
  comparator_.resync();
  inst_diff_.reset();
  counters_ = {};
  seen_commit_ = {false, false};
  lacking_now_ = false;
  irq_pending_ = false;
  nodiv_run_ = ds_run_ = is_run_ = 0;
  hist_nodiv_.clear();
  hist_ds_.clear();
  hist_is_.clear();
  hist_distance_.clear();
}

const SignatureGenerator& SafeDm::signatures(unsigned core_index) const {
  SAFEDM_CHECK(core_index < 2);
  return core_index == 0 ? sig0_ : sig1_;
}

u64 SafeDm::storage_bits() const {
  return 2 * (sig0_.data_signature_bits() + sig0_.instruction_signature_bits());
}

void SafeDm::on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                      const core::CoreTapFrame& frame1) {
  // The signature FIFOs clock continuously (hardware is never "off"); only
  // the counting/reporting logic is gated by the enable bit. The comparator
  // likewise tracks every cycle so its bookkeeping stays aligned with the
  // FIFOs across enable/arm transitions.
  sig0_.capture(frame0);
  sig1_.capture(frame1);
  if (config_.incremental_compare) comparator_.update();
  inst_diff_.on_commits(frame0.commits, frame1.commits);

  seen_commit_[0] = seen_commit_[0] || frame0.commits > 0;
  seen_commit_[1] = seen_commit_[1] || frame1.commits > 0;
  const bool armed = !config_.arm_on_first_commit || (seen_commit_[0] && seen_commit_[1]);

  const bool both_running = !frame0.halted && !frame1.halted;
  if (!enabled_ || !both_running || !armed) {
    lacking_now_ = false;
    ds_match_now_ = false;
    is_match_now_ = false;
    return;
  }

  ++counters_.monitored_cycles;

  bool ds_match = false;
  bool is_match = false;
  if (config_.incremental_compare) {
    ds_match = comparator_.ds_match();
    is_match = comparator_.is_match();
  } else if (config_.compare == CompareMode::kRaw) {
    ds_match = SignatureGenerator::data_equal(sig0_, sig1_);
    is_match = SignatureGenerator::instruction_equal(sig0_, sig1_);
  } else {
    ds_match = sig0_.data_crc_exhaustive() == sig1_.data_crc_exhaustive();
    is_match = sig0_.instruction_crc_exhaustive() == sig1_.instruction_crc_exhaustive();
  }

  const bool nodiv = ds_match && is_match;
  lacking_now_ = nodiv;
  ds_match_now_ = ds_match;
  is_match_now_ = is_match;

  const auto track = [](bool condition, u64& run, u64& counter, Histogram& hist) {
    if (condition) {
      ++counter;
      ++run;
    } else if (run > 0) {
      hist.add(run);
      run = 0;
    }
  };
  track(ds_match, ds_run_, counters_.ds_match_cycles, hist_ds_);
  track(is_match, is_run_, counters_.is_match_cycles, hist_is_);
  track(nodiv, nodiv_run_, counters_.nodiv_cycles, hist_nodiv_);

  if (inst_diff_.armed() && inst_diff_.diff() == 0) ++counters_.zero_stag_cycles;

  if (config_.track_distance) {
    const u64 distance = SignatureGenerator::data_distance(sig0_, sig1_) +
                         SignatureGenerator::instruction_distance(sig0_, sig1_);
    counters_.distance_sum += distance;
    counters_.distance_min = std::min(counters_.distance_min, distance);
    counters_.distance_max = std::max(counters_.distance_max, distance);
    hist_distance_.add(distance);
  }

  update_interrupt(cycle);
}

void SafeDm::finalize() {
  if (ds_run_ > 0) hist_ds_.add(ds_run_);
  if (is_run_ > 0) hist_is_.add(is_run_);
  if (nodiv_run_ > 0) hist_nodiv_.add(nodiv_run_);
  ds_run_ = is_run_ = nodiv_run_ = 0;
}

void SafeDm::update_interrupt(u64 cycle) {
  bool fire = false;
  switch (config_.report) {
    case ReportMode::kInterruptFirst:
      fire = counters_.nodiv_cycles >= 1;
      break;
    case ReportMode::kInterruptThreshold:
      fire = counters_.nodiv_cycles >= config_.interrupt_threshold;
      break;
    case ReportMode::kPollOnly:
      fire = false;
      break;
  }
  if (fire && !irq_pending_) {
    irq_pending_ = true;
    ++counters_.interrupts;
    if (irq_handler_) irq_handler_(cycle);
  }
}

// ---- APB register file ---------------------------------------------------------------

u32 SafeDm::apb_read(u32 offset) {
  switch (offset) {
    case reg::kCtrl:
      return (enabled_ ? 1u : 0u) | (static_cast<u32>(config_.report) << 1);
    case reg::kStatus:
      return (lacking_now_ ? 1u : 0u) | (irq_pending_ ? 2u : 0u);
    case reg::kNodivLo:
      return static_cast<u32>(counters_.nodiv_cycles);
    case reg::kNodivHi:
      return static_cast<u32>(counters_.nodiv_cycles >> 32);
    case reg::kThreshold:
      return config_.interrupt_threshold;
    case reg::kMonitoredLo:
      return static_cast<u32>(counters_.monitored_cycles);
    case reg::kMonitoredHi:
      return static_cast<u32>(counters_.monitored_cycles >> 32);
    case reg::kInstDiff:
      return static_cast<u32>(static_cast<i32>(
          std::clamp<i64>(inst_diff_.diff(), std::numeric_limits<i32>::min(),
                          std::numeric_limits<i32>::max())));
    case reg::kZeroStagLo:
      return static_cast<u32>(counters_.zero_stag_cycles);
    case reg::kZeroStagHi:
      return static_cast<u32>(counters_.zero_stag_cycles >> 32);
    case reg::kDsMatchLo:
      return static_cast<u32>(counters_.ds_match_cycles);
    case reg::kDsMatchHi:
      return static_cast<u32>(counters_.ds_match_cycles >> 32);
    case reg::kIsMatchLo:
      return static_cast<u32>(counters_.is_match_cycles);
    case reg::kIsMatchHi:
      return static_cast<u32>(counters_.is_match_cycles >> 32);
    case reg::kHistSelect:
      return hist_select_;
    case reg::kHistData: {
      const unsigned bin = hist_select_ & 0xFF;
      const unsigned which = (hist_select_ >> 8) & 0x3;
      const Histogram& hist = which == 0 ? hist_nodiv_ : which == 1 ? hist_ds_ : hist_is_;
      if (bin >= hist.bin_count()) return 0;
      const u64 value = hist.bin_value(bin);
      return value > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<u32>(value);
    }
    case reg::kGeometry:
      return (config_.data_fifo_depth & 0xFF) | ((config_.num_ports & 0xFF) << 8) |
             ((core::kPipelineStages & 0xFF) << 16) |
             ((core::kMaxIssueWidth & 0xFF) << 24);
    default:
      return 0;
  }
}

void SafeDm::apb_write(u32 offset, u32 value) {
  switch (offset) {
    case reg::kCtrl:
      enabled_ = value & 1u;
      config_.report = static_cast<ReportMode>((value >> 1) & 0x3u);
      if (value & (1u << 3)) reset();
      if (value & (1u << 4)) clear_interrupt();
      break;
    case reg::kThreshold:
      config_.interrupt_threshold = value;
      break;
    case reg::kIgnore0:
      inst_diff_.set_ignore(0, value);
      break;
    case reg::kIgnore1:
      inst_diff_.set_ignore(1, value);
      break;
    case reg::kHistSelect:
      hist_select_ = value;
      break;
    default:
      break;  // writes to read-only registers are ignored, like hardware
  }
}

// ---- snapshot/restore ----------------------------------------------------------

void InstructionDiff::save_state(StateWriter& w) const {
  w.begin_section("IDIF", 1);
  w.put_i64(diff_);
  w.put_u64(ignore_[0]);
  w.put_u64(ignore_[1]);
  w.end_section();
}

void InstructionDiff::restore_state(StateReader& r) {
  r.begin_section("IDIF", 1);
  diff_ = r.get_i64();
  ignore_[0] = r.get_u64();
  ignore_[1] = r.get_u64();
  r.end_section();
}

void SafeDm::save_state(StateWriter& w) const {
  w.begin_section("SFDM", 1);
  // Runtime-writable config bits (kCtrl report mode, kThreshold).
  w.put_u8(static_cast<u8>(config_.report));
  w.put_u32(config_.interrupt_threshold);
  w.put_bool(enabled_);
  w.put_bool(seen_commit_[0]);
  w.put_bool(seen_commit_[1]);
  w.put_bool(lacking_now_);
  w.put_bool(ds_match_now_);
  w.put_bool(is_match_now_);
  w.put_bool(irq_pending_);
  w.put_u64(counters_.monitored_cycles);
  w.put_u64(counters_.nodiv_cycles);
  w.put_u64(counters_.ds_match_cycles);
  w.put_u64(counters_.is_match_cycles);
  w.put_u64(counters_.zero_stag_cycles);
  w.put_u64(counters_.interrupts);
  w.put_u64(counters_.distance_sum);
  w.put_u64(counters_.distance_min);
  w.put_u64(counters_.distance_max);
  w.put_u64(nodiv_run_);
  w.put_u64(ds_run_);
  w.put_u64(is_run_);
  w.put_u32(hist_select_);
  inst_diff_.save_state(w);
  sig0_.save_state(w);
  sig1_.save_state(w);
  comparator_.save_state(w);
  hist_nodiv_.save_state(w);
  hist_ds_.save_state(w);
  hist_is_.save_state(w);
  hist_distance_.save_state(w);
  w.end_section();
}

void SafeDm::restore_state(StateReader& r) {
  r.begin_section("SFDM", 1);
  config_.report = static_cast<ReportMode>(r.get_u8());
  config_.interrupt_threshold = r.get_u32();
  enabled_ = r.get_bool();
  seen_commit_[0] = r.get_bool();
  seen_commit_[1] = r.get_bool();
  lacking_now_ = r.get_bool();
  ds_match_now_ = r.get_bool();
  is_match_now_ = r.get_bool();
  irq_pending_ = r.get_bool();
  counters_.monitored_cycles = r.get_u64();
  counters_.nodiv_cycles = r.get_u64();
  counters_.ds_match_cycles = r.get_u64();
  counters_.is_match_cycles = r.get_u64();
  counters_.zero_stag_cycles = r.get_u64();
  counters_.interrupts = r.get_u64();
  counters_.distance_sum = r.get_u64();
  counters_.distance_min = r.get_u64();
  counters_.distance_max = r.get_u64();
  nodiv_run_ = r.get_u64();
  ds_run_ = r.get_u64();
  is_run_ = r.get_u64();
  hist_select_ = r.get_u32();
  inst_diff_.restore_state(r);
  sig0_.restore_state(r);
  sig1_.restore_state(r);
  // The comparator resyncs against the freshly restored generators.
  comparator_.restore_state(r);
  hist_nodiv_.restore_state(r);
  hist_ds_.restore_state(r);
  hist_is_.restore_state(r);
  hist_distance_.restore_state(r);
  r.end_section();
}

}  // namespace safedm::monitor
