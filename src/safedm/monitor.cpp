#include "safedm/safedm/monitor.hpp"

#include <algorithm>
#include <limits>

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::monitor {
namespace {

Histogram make_history(const SafeDmConfig& config) {
  if (!config.history_bins.empty()) return Histogram(config.history_bins);
  return Histogram::exponential(16);
}

}  // namespace

// ---- InstructionDiff -----------------------------------------------------------

void InstructionDiff::configure(unsigned n_replicas) {
  SAFEDM_CHECK(n_replicas >= 2 && n_replicas <= kMaxReplicas);
  n_ = n_replicas;
  reset();
}

void InstructionDiff::set_ignore(unsigned replica, u64 count) {
  SAFEDM_CHECK(replica < n_);
  ignore_[replica] = count;
}

void InstructionDiff::on_commits_n(const unsigned* commits, unsigned n_replicas) {
  SAFEDM_CHECK(n_replicas == n_);
  for (unsigned r = 0; r < n_replicas; ++r) {
    u64 c = commits[r];
    if (ignore_[r] != 0) {
      const u64 skip = std::min(ignore_[r], c);
      ignore_[r] -= skip;
      c -= skip;
    }
    cum_[r] += c;
  }
}

void InstructionDiff::on_commits_prelude(unsigned commits0, unsigned commits1) {
  const unsigned commits[2] = {commits0, commits1};
  on_commits_n(commits, 2);
}

void InstructionDiff::batch_commit_n(const u64* adds, unsigned n_replicas) {
  SAFEDM_CHECK(n_replicas == n_);
  for (unsigned r = 0; r < n_replicas; ++r) cum_[r] += adds[r];
}

void InstructionDiff::reset() {
  cum_ = {};
  ignore_ = {};
}

// ---- SafeDm -----------------------------------------------------------------------

namespace {

unsigned pairs_for(unsigned n_replicas) { return n_replicas * (n_replicas - 1) / 2; }

/// Lower the verdict policy to a single matched-pair threshold.
unsigned lower_policy(const SafeDmConfig& config) {
  const unsigned n_pairs = pairs_for(config.num_replicas);
  switch (config.policy) {
    case VerdictPolicy::kAnyPair:
      return 1;
    case VerdictPolicy::kAllPairs:
      return n_pairs;
    case VerdictPolicy::kQuorum:
      SAFEDM_CHECK_MSG(config.quorum_k >= 1 && config.quorum_k <= n_pairs,
                       "quorum_k must be in 1..C(num_replicas,2)");
      return config.quorum_k;
  }
  SAFEDM_CHECK_MSG(false, "unknown verdict policy");
  return 1;
}

}  // namespace

SafeDm::SafeDm(const SafeDmConfig& config)
    : config_(config),
      enabled_(config.start_enabled),
      hist_nodiv_(make_history(config)),
      hist_ds_(make_history(config)),
      hist_is_(make_history(config)),
      hist_distance_(Histogram::exponential(20)) {
  const unsigned n = config.num_replicas;
  SAFEDM_CHECK_MSG(n >= 2 && n <= kMaxReplicas, "num_replicas must be in 2..8");
  needed_ = lower_policy(config);
  // Reserve exactly, then never resize: the comparators keep raw pointers
  // into the generators (whose rings themselves never reallocate).
  sigs_.reserve(n);
  for (unsigned r = 0; r < n; ++r) sigs_.emplace_back(config);
  const unsigned n_pairs = pairs_for(n);
  pairs_.reserve(n_pairs);
  pair_replicas_.reserve(n_pairs);
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 1; j < n; ++j) {
      pairs_.emplace_back(sigs_[i], sigs_[j]);
      pair_replicas_.emplace_back(static_cast<u8>(i), static_cast<u8>(j));
    }
  }
  if (n > 2) pair_counters_.resize(n_pairs);
  inst_diff_.configure(n);
}

void SafeDm::enable(bool on) { enabled_ = on; }

void SafeDm::set_prelude_ignore(unsigned replica, u64 commits) {
  inst_diff_.set_ignore(replica, commits);
}

void SafeDm::clear_interrupt() { irq_pending_ = false; }

void SafeDm::set_interrupt_handler(std::function<void(u64)> handler) {
  irq_handler_ = std::move(handler);
}

void SafeDm::reset() {
  for (auto& sig : sigs_) sig.reset();
  for (auto& pair : pairs_) pair.resync();
  inst_diff_.reset();
  counters_ = {};
  for (auto& pc : pair_counters_) pc = {};
  seen_commit_ = {};
  lacking_now_ = false;
  irq_pending_ = false;
  nodiv_run_ = ds_run_ = is_run_ = 0;
  hist_nodiv_.clear();
  hist_ds_.clear();
  hist_is_.clear();
  hist_distance_.clear();
}

const SignatureGenerator& SafeDm::signatures(unsigned replica) const {
  SAFEDM_CHECK(replica < sigs_.size());
  return sigs_[replica];
}

std::pair<unsigned, unsigned> SafeDm::pair_replicas(unsigned pair) const {
  SAFEDM_CHECK(pair < pair_replicas_.size());
  return {pair_replicas_[pair].first, pair_replicas_[pair].second};
}

PairCounters SafeDm::pair_counters(unsigned pair) const {
  SAFEDM_CHECK(pair < pairs_.size());
  if (config_.num_replicas == 2) {
    // The single pair is the group: synthesize the cell from the group
    // counters rather than paying a second set of hot-path increments.
    PairCounters pc;
    pc.nodiv_cycles = counters_.nodiv_cycles;
    pc.ds_match_cycles = counters_.ds_match_cycles;
    pc.is_match_cycles = counters_.is_match_cycles;
    pc.zero_stag_cycles = counters_.zero_stag_cycles;
    pc.distance_sum = counters_.distance_sum;
    pc.distance_min = counters_.distance_min;
    pc.distance_max = counters_.distance_max;
    return pc;
  }
  return pair_counters_[pair];
}

const DiversityComparator::Stats& SafeDm::pair_stats(unsigned pair) const {
  SAFEDM_CHECK(pair < pairs_.size());
  return pairs_[pair].stats();
}

u64 SafeDm::storage_bits() const {
  return config_.num_replicas *
         (sigs_[0].data_signature_bits() + sigs_[0].instruction_signature_bits());
}

void SafeDm::on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                      const core::CoreTapFrame& frame1) {
  SAFEDM_CHECK_MSG(config_.num_replicas == 2,
                   "pairwise delivery on an N-replica monitor; use on_group_cycle");
  // The signature FIFOs clock continuously (hardware is never "off"); only
  // the counting/reporting logic is gated by the enable bit. The comparator
  // likewise tracks every cycle so its bookkeeping stays aligned with the
  // FIFOs across enable/arm transitions.
  sigs_[0].capture(frame0);
  sigs_[1].capture(frame1);
  if (config_.incremental_compare) pairs_[0].update();
  inst_diff_.on_commits(frame0.commits, frame1.commits);

  seen_commit_[0] = seen_commit_[0] || frame0.commits > 0;
  seen_commit_[1] = seen_commit_[1] || frame1.commits > 0;
  const bool armed = !config_.arm_on_first_commit || (seen_commit_[0] && seen_commit_[1]);

  const bool both_running = !frame0.halted && !frame1.halted;
  if (!enabled_ || !both_running || !armed) {
    lacking_now_ = false;
    ds_match_now_ = false;
    is_match_now_ = false;
    if (trail_) trail_->push_back(false);
    return;
  }

  ++counters_.monitored_cycles;

  bool ds_match = false;
  bool is_match = false;
  if (config_.incremental_compare) {
    ds_match = pairs_[0].ds_match();
    is_match = pairs_[0].is_match();
  } else if (config_.compare == CompareMode::kRaw) {
    ds_match = SignatureGenerator::data_equal(sigs_[0], sigs_[1]);
    is_match = SignatureGenerator::instruction_equal(sigs_[0], sigs_[1]);
  } else {
    ds_match = sigs_[0].data_crc_exhaustive() == sigs_[1].data_crc_exhaustive();
    is_match = sigs_[0].instruction_crc_exhaustive() == sigs_[1].instruction_crc_exhaustive();
  }

  const bool nodiv = ds_match && is_match;
  lacking_now_ = nodiv;
  ds_match_now_ = ds_match;
  is_match_now_ = is_match;

  const auto track = [](bool condition, u64& run, u64& counter, Histogram& hist) {
    if (condition) {
      ++counter;
      ++run;
    } else if (run > 0) {
      hist.add(run);
      run = 0;
    }
  };
  track(ds_match, ds_run_, counters_.ds_match_cycles, hist_ds_);
  track(is_match, is_run_, counters_.is_match_cycles, hist_is_);
  track(nodiv, nodiv_run_, counters_.nodiv_cycles, hist_nodiv_);

  if (inst_diff_.armed() && inst_diff_.diff() == 0) ++counters_.zero_stag_cycles;

  if (config_.track_distance) {
    const u64 distance = SignatureGenerator::data_distance(sigs_[0], sigs_[1]) +
                         SignatureGenerator::instruction_distance(sigs_[0], sigs_[1]);
    counters_.distance_sum += distance;
    counters_.distance_min = std::min(counters_.distance_min, distance);
    counters_.distance_max = std::max(counters_.distance_max, distance);
    hist_distance_.add(distance);
  }

  update_interrupt(cycle);
  if (trail_) trail_->push_back(lacking_now_);
}

bool SafeDm::batch_fast_eligible() const {
  // The chunked loop only covers the default hot configuration; anything
  // else (CRC compare, flat-list IS, distance tracking, disabled or
  // not-yet-armed monitor, multi-word masks) falls back to per-cycle
  // on_cycle, which is always correct.
  bool all_seen = true;
  if (config_.arm_on_first_commit) {
    for (unsigned r = 0; r < config_.num_replicas; ++r) all_seen = all_seen && seen_commit_[r];
  }
  return enabled_ && config_.incremental_compare && config_.compare == CompareMode::kRaw &&
         config_.is_mode == IsMode::kPerStage && !config_.track_distance &&
         config_.data_fifo_depth <= 64 && all_seen && inst_diff_.armed();
}

void SafeDm::on_cycles(u64 first_cycle, const core::CoreTapFrame* frame0,
                       const core::CoreTapFrame* frame1, unsigned n) {
  unsigned i = 0;
  while (i < n) {
    // Eligibility can flip mid-batch (arming on first commit, prelude
    // consumption), so re-check per span; ineligible cycles go one at a
    // time through the exact per-cycle path.
    if (!batch_fast_eligible()) {
      on_cycle(first_cycle + i, frame0[i], frame1[i]);
      ++i;
      continue;
    }
    // Fast span: consecutive cycles with both cores running. Halted
    // frames take the per-cycle path (they gate counting but still clock
    // the signature FIFOs).
    unsigned j = i;
    while (j < n && !frame0[j].halted && !frame1[j].halted) ++j;
    if (j == i) {
      on_cycle(first_cycle + i, frame0[i], frame1[i]);
      ++i;
      continue;
    }
    while (i < j) {
      const unsigned m = std::min(j - i, 64u);
      process_chunk(first_cycle + i, frame0 + i, frame1 + i, m);
      i += m;
    }
  }
}

void SafeDm::process_chunk(u64 first_cycle, const core::CoreTapFrame* frame0,
                           const core::CoreTapFrame* frame1, unsigned m) {
  // Dispatch once per chunk on the port count so the per-cycle port loops
  // (ring-plane writes + mask shift/insert) run with a constant trip count
  // and fully unroll. P == 0 is the runtime-count fallback; num_ports is
  // validated at construction so the default arm is unreachable in
  // practice, but keeps larger geometries correct if the bound ever grows.
  switch (config_.num_ports) {
    case 1: process_chunk_ports<1>(first_cycle, frame0, frame1, m); break;
    case 2: process_chunk_ports<2>(first_cycle, frame0, frame1, m); break;
    case 3: process_chunk_ports<3>(first_cycle, frame0, frame1, m); break;
    case 4: process_chunk_ports<4>(first_cycle, frame0, frame1, m); break;
    case 5: process_chunk_ports<5>(first_cycle, frame0, frame1, m); break;
    case 6: process_chunk_ports<6>(first_cycle, frame0, frame1, m); break;
    default: process_chunk_ports<0>(first_cycle, frame0, frame1, m); break;
  }
}

template <unsigned P>
void SafeDm::process_chunk_ports(u64 first_cycle, const core::CoreTapFrame* frame0,
                                 const core::CoreTapFrame* frame1, unsigned m) {
  // Per-cycle-exact batched hot loop. All accounting below is keyed to
  // cycle events (never to chunk boundaries), so the committed state —
  // including snapshot bytes — is independent of how a cycle stream is
  // chunked. Kernel dispatch, ring-plane pointers, and counter traffic
  // are hoisted out of the loop; state is committed once at the end.
  // The stage compare resolves to a fixed-count kernel (kStageSlots baked
  // in: straight-line vector code, no loop or tail branches).
  const simd::WordsEqualFixedFn stage_equal =
      simd::words_equal_fixed_fn<SignatureGenerator::kStageSlots>(simd::active_kernel());
  const unsigned ports = P != 0 ? P : config_.num_ports;
  const unsigned stride = sigs_[0].padded_depth();
  const unsigned ring_mask = stride - 1;
  u64* v0 = sigs_[0].values_mut();
  u8* e0 = sigs_[0].enables_mut();
  u64* v1 = sigs_[1].values_mut();
  u8* e1 = sigs_[1].enables_mut();
  u64 sa = sigs_[0].shift_count();
  u64 sb = sigs_[1].shift_count();
  i64 diff = inst_diff_.diff();
  u64 add0 = 0, add1 = 0;  // per-replica commit sums for the cumulative counters
  std::vector<bool>* const trail = trail_;

  u64 monitored = 0, nodiv_c = 0, ds_c = 0, is_c = 0, zero_c = 0, holds = 0;
  u64 nodiv_run = nodiv_run_, ds_run = ds_run_, is_run = is_run_;
  bool seen0 = seen_commit_[0], seen1 = seen_commit_[1];
  bool ds_now = ds_match_now_, is_now = is_match_now_, lack_now = lacking_now_;

  // IRQ threshold, precomputed: fire on the exact cycle the nodiv count
  // reaches it (at most once — the pending latch holds until cleared, and
  // clearing is an APB/direct call that can't happen mid-chunk).
  u64 fire_at = ~u64{0};
  if (!irq_pending_) {
    if (config_.report == ReportMode::kInterruptFirst) fire_at = 1;
    else if (config_.report == ReportMode::kInterruptThreshold) fire_at = config_.interrupt_threshold;
  }
  // Keep the fire check register-resident: the base only changes inside the
  // fire branch, which also disarms fire_at, so a stale base is never read.
  const u64 nodiv_base = counters_.nodiv_cycles;

  const auto write_slot = [&](u64* values, u8* enables, u64 shifts,
                              const core::CoreTapFrame& f) {
    const unsigned slot = static_cast<unsigned>(shifts) & ring_mask;
    for (unsigned p = 0; p < ports; ++p) {
      const unsigned idx = p * stride + slot;
      values[idx] = f.port[p].value;
      enables[idx] = f.port[p].enable ? u8{1} : u8{0};
    }
  };

  for (unsigned c = 0; c < m; ++c) {
    const core::CoreTapFrame& a = frame0[c];
    const core::CoreTapFrame& b = frame1[c];

    // IS verdict straight off the frames: the packed generator snapshots
    // would be byte-identical, so skip the two 112-byte stage copies the
    // per-cycle path pays and compare once with the dispatched kernel.
    const bool is_match = stage_equal(&a.stage, &b.stage);

    bool ds_match;
    if (!a.hold && !b.hold) {
      write_slot(v0, e0, sa, a);
      write_slot(v1, e1, sb, b);
      ++sa;
      ++sb;
      if constexpr (P != 0) {
        ds_match = pairs_[0].step_shift_fixed<P>(a, b);
      } else {
        ds_match = pairs_[0].step_shift(a, b);
      }
    } else if (a.hold && b.hold) {
      ++holds;
      ds_match = pairs_[0].ds_match();
    } else {
      // Divergent holds: only the un-held core shifts, then realign.
      if (!a.hold) {
        write_slot(v0, e0, sa, a);
        ++sa;
      }
      if (!b.hold) {
        write_slot(v1, e1, sb, b);
        ++sb;
      }
      ds_match = pairs_[0].step_realign(sa, sb);
    }

    diff += static_cast<i64>(a.commits) - static_cast<i64>(b.commits);
    add0 += a.commits;
    add1 += b.commits;
    seen0 = seen0 || a.commits > 0;
    seen1 = seen1 || b.commits > 0;

    const bool nodiv = ds_match && is_match;
    ++monitored;
    if (ds_match) {
      ++ds_c;
      ++ds_run;
    } else if (ds_run > 0) {
      hist_ds_.add(ds_run);
      ds_run = 0;
    }
    if (is_match) {
      ++is_c;
      ++is_run;
    } else if (is_run > 0) {
      hist_is_.add(is_run);
      is_run = 0;
    }
    if (nodiv) {
      ++nodiv_c;
      ++nodiv_run;
    } else if (nodiv_run > 0) {
      hist_nodiv_.add(nodiv_run);
      nodiv_run = 0;
    }
    if (diff == 0) ++zero_c;
    ds_now = ds_match;
    is_now = is_match;
    lack_now = nodiv;
    if (trail) trail->push_back(nodiv);

    if (nodiv_base + nodiv_c >= fire_at) {
      // Commit the scalar state before the handler runs so an RTOS hook
      // observes counters/flags exactly as the per-cycle path would.
      // (Generator/comparator internals sync at chunk end; handlers are
      // not entitled to introspect signature internals mid-cycle.)
      counters_.monitored_cycles += monitored;
      counters_.nodiv_cycles += nodiv_c;
      counters_.ds_match_cycles += ds_c;
      counters_.is_match_cycles += is_c;
      counters_.zero_stag_cycles += zero_c;
      monitored = nodiv_c = ds_c = is_c = zero_c = 0;
      nodiv_run_ = nodiv_run;
      ds_run_ = ds_run;
      is_run_ = is_run;
      seen_commit_[0] = seen0;
      seen_commit_[1] = seen1;
      lacking_now_ = lack_now;
      ds_match_now_ = ds_now;
      is_match_now_ = is_now;
      inst_diff_.batch_commit(add0, add1);
      add0 = add1 = 0;
      irq_pending_ = true;
      ++counters_.interrupts;
      fire_at = ~u64{0};
      if (irq_handler_) irq_handler_(first_cycle + c);
    }
  }

  counters_.monitored_cycles += monitored;
  counters_.nodiv_cycles += nodiv_c;
  counters_.ds_match_cycles += ds_c;
  counters_.is_match_cycles += is_c;
  counters_.zero_stag_cycles += zero_c;
  nodiv_run_ = nodiv_run;
  ds_run_ = ds_run;
  is_run_ = is_run;
  seen_commit_[0] = seen0;
  seen_commit_[1] = seen1;
  lacking_now_ = lack_now;
  ds_match_now_ = ds_now;
  is_match_now_ = is_now;
  inst_diff_.batch_commit(add0, add1);
  sigs_[0].batch_commit(sa, &frame0[m - 1].stage, m);
  sigs_[1].batch_commit(sb, &frame1[m - 1].stage, m);
  pairs_[0].batch_commit(holds, m, is_now);
}

// ---- N-replica group paths -----------------------------------------------------

void SafeDm::on_group_cycle(u64 cycle, const core::CoreTapFrame* const* frames,
                            unsigned n_replicas) {
  SAFEDM_CHECK_MSG(n_replicas == config_.num_replicas,
                   "group delivery width != configured num_replicas");
  if (n_replicas == 2) {
    on_cycle(cycle, *frames[0], *frames[1]);
    return;
  }
  group_cycle(cycle, frames);
}

void SafeDm::on_group_cycles(u64 first_cycle, const core::CoreTapFrame* const* frames,
                             unsigned n_replicas, unsigned n_cycles) {
  SAFEDM_CHECK_MSG(n_replicas == config_.num_replicas,
                   "group delivery width != configured num_replicas");
  if (n_replicas == 2) {
    on_cycles(first_cycle, frames[0], frames[1], n_cycles);
    return;
  }
  const unsigned n = n_replicas;
  unsigned i = 0;
  const core::CoreTapFrame* cur[kMaxReplicas];
  while (i < n_cycles) {
    if (!batch_fast_eligible()) {
      for (unsigned r = 0; r < n; ++r) cur[r] = frames[r] + i;
      group_cycle(first_cycle + i, cur);
      ++i;
      continue;
    }
    // Fast span: consecutive cycles with every replica running.
    unsigned j = i;
    for (; j < n_cycles; ++j) {
      bool any_halted = false;
      for (unsigned r = 0; r < n; ++r) any_halted = any_halted || frames[r][j].halted;
      if (any_halted) break;
    }
    if (j == i) {
      for (unsigned r = 0; r < n; ++r) cur[r] = frames[r] + i;
      group_cycle(first_cycle + i, cur);
      ++i;
      continue;
    }
    while (i < j) {
      const unsigned m = std::min(j - i, 64u);
      process_group_chunk(first_cycle + i, frames, i, m);
      i += m;
    }
  }
}

void SafeDm::group_cycle(u64 cycle, const core::CoreTapFrame* const* frames) {
  const unsigned n = config_.num_replicas;
  for (unsigned r = 0; r < n; ++r) sigs_[r].capture(*frames[r]);
  if (config_.incremental_compare) {
    for (auto& pair : pairs_) pair.update();
  }

  unsigned commits[kMaxReplicas] = {};
  for (unsigned r = 0; r < n; ++r) commits[r] = frames[r]->commits;
  inst_diff_.on_commits_n(commits, n);

  bool all_seen = true;
  bool all_running = true;
  for (unsigned r = 0; r < n; ++r) {
    seen_commit_[r] = seen_commit_[r] || frames[r]->commits > 0;
    all_seen = all_seen && seen_commit_[r];
    all_running = all_running && !frames[r]->halted;
  }
  const bool armed = !config_.arm_on_first_commit || all_seen;
  if (!enabled_ || !all_running || !armed) {
    lacking_now_ = false;
    ds_match_now_ = false;
    is_match_now_ = false;
    if (trail_) trail_->push_back(false);
    return;
  }

  ++counters_.monitored_cycles;

  const bool stag_armed = inst_diff_.armed();
  const unsigned n_pairs = static_cast<unsigned>(pairs_.size());
  unsigned ds_n = 0, is_n = 0, nodiv_n = 0, zero_n = 0;
  u64 group_distance = ~u64{0};
  for (unsigned p = 0; p < n_pairs; ++p) {
    const unsigned pi = pair_replicas_[p].first;
    const unsigned pj = pair_replicas_[p].second;
    bool ds_match;
    bool is_match;
    if (config_.incremental_compare) {
      ds_match = pairs_[p].ds_match();
      is_match = pairs_[p].is_match();
    } else if (config_.compare == CompareMode::kRaw) {
      ds_match = SignatureGenerator::data_equal(sigs_[pi], sigs_[pj]);
      is_match = SignatureGenerator::instruction_equal(sigs_[pi], sigs_[pj]);
    } else {
      ds_match = sigs_[pi].data_crc_exhaustive() == sigs_[pj].data_crc_exhaustive();
      is_match =
          sigs_[pi].instruction_crc_exhaustive() == sigs_[pj].instruction_crc_exhaustive();
    }
    const bool nodiv = ds_match && is_match;
    PairCounters& pc = pair_counters_[p];
    if (ds_match) {
      ++pc.ds_match_cycles;
      ++ds_n;
    }
    if (is_match) {
      ++pc.is_match_cycles;
      ++is_n;
    }
    if (nodiv) {
      ++pc.nodiv_cycles;
      ++nodiv_n;
    }
    if (stag_armed && inst_diff_.pair_diff(pi, pj) == 0) {
      ++pc.zero_stag_cycles;
      ++zero_n;
    }
    if (config_.track_distance) {
      const u64 distance = SignatureGenerator::data_distance(sigs_[pi], sigs_[pj]) +
                           SignatureGenerator::instruction_distance(sigs_[pi], sigs_[pj]);
      pc.distance_sum += distance;
      pc.distance_min = std::min(pc.distance_min, distance);
      pc.distance_max = std::max(pc.distance_max, distance);
      group_distance = std::min(group_distance, distance);
    }
  }

  // Group verdicts: the lowered policy threshold over the per-pair verdicts.
  const bool ds_match = ds_n >= needed_;
  const bool is_match = is_n >= needed_;
  const bool nodiv = nodiv_n >= needed_;
  lacking_now_ = nodiv;
  ds_match_now_ = ds_match;
  is_match_now_ = is_match;

  const auto track = [](bool condition, u64& run, u64& counter, Histogram& hist) {
    if (condition) {
      ++counter;
      ++run;
    } else if (run > 0) {
      hist.add(run);
      run = 0;
    }
  };
  track(ds_match, ds_run_, counters_.ds_match_cycles, hist_ds_);
  track(is_match, is_run_, counters_.is_match_cycles, hist_is_);
  track(nodiv, nodiv_run_, counters_.nodiv_cycles, hist_nodiv_);

  if (zero_n >= needed_) ++counters_.zero_stag_cycles;

  if (config_.track_distance) {
    // The group's diversity magnitude is its weakest link: the minimum
    // pairwise distance this cycle.
    counters_.distance_sum += group_distance;
    counters_.distance_min = std::min(counters_.distance_min, group_distance);
    counters_.distance_max = std::max(counters_.distance_max, group_distance);
    hist_distance_.add(group_distance);
  }

  update_interrupt(cycle);
  if (trail_) trail_->push_back(lacking_now_);
}

void SafeDm::process_group_chunk(u64 first_cycle, const core::CoreTapFrame* const* frames,
                                 unsigned offset, unsigned m) {
  // The N-replica analogue of process_chunk_ports: per-cycle-exact, all
  // commits keyed to cycle events. Port/pair loops run with runtime trip
  // counts (the matrix dominates the cost; the per-port unrolling of the
  // pairwise path buys little here).
  const simd::WordsEqualFixedFn stage_equal =
      simd::words_equal_fixed_fn<SignatureGenerator::kStageSlots>(simd::active_kernel());
  const unsigned n = config_.num_replicas;
  const unsigned n_pairs = static_cast<unsigned>(pairs_.size());
  const unsigned ports = config_.num_ports;
  const unsigned stride = sigs_[0].padded_depth();
  const unsigned ring_mask = stride - 1;

  u64* values[kMaxReplicas];
  u8* enables[kMaxReplicas];
  u64 shifts[kMaxReplicas];
  u64 adds[kMaxReplicas] = {};
  bool seen[kMaxReplicas];
  for (unsigned r = 0; r < n; ++r) {
    values[r] = sigs_[r].values_mut();
    enables[r] = sigs_[r].enables_mut();
    shifts[r] = sigs_[r].shift_count();
    seen[r] = seen_commit_[r];
  }
  // Pair staggering diffs, rebased whenever the chunk commits mid-stream.
  i64 stag_base[kMaxReplicaPairs];
  u64 hold_reuses[kMaxReplicaPairs] = {};
  bool pair_is[kMaxReplicaPairs] = {};
  for (unsigned p = 0; p < n_pairs; ++p)
    stag_base[p] = inst_diff_.pair_diff(pair_replicas_[p].first, pair_replicas_[p].second);

  u64 monitored = 0, nodiv_c = 0, ds_c = 0, is_c = 0, zero_c = 0;
  u64 nodiv_run = nodiv_run_, ds_run = ds_run_, is_run = is_run_;
  bool ds_now = ds_match_now_, is_now = is_match_now_, lack_now = lacking_now_;
  std::vector<bool>* const trail = trail_;

  u64 fire_at = ~u64{0};
  if (!irq_pending_) {
    if (config_.report == ReportMode::kInterruptFirst) fire_at = 1;
    else if (config_.report == ReportMode::kInterruptThreshold) fire_at = config_.interrupt_threshold;
  }
  const u64 nodiv_base = counters_.nodiv_cycles;

  for (unsigned c = 0; c < m; ++c) {
    bool shifted[kMaxReplicas];
    for (unsigned r = 0; r < n; ++r) {
      const core::CoreTapFrame& f = frames[r][offset + c];
      shifted[r] = !f.hold;
      if (!f.hold) {
        const unsigned slot = static_cast<unsigned>(shifts[r]) & ring_mask;
        for (unsigned p = 0; p < ports; ++p) {
          const unsigned idx = p * stride + slot;
          values[r][idx] = f.port[p].value;
          enables[r][idx] = f.port[p].enable ? u8{1} : u8{0};
        }
        ++shifts[r];
      }
      adds[r] += f.commits;
      seen[r] = seen[r] || f.commits > 0;
    }

    unsigned ds_n = 0, is_n = 0, nodiv_n = 0, zero_n = 0;
    for (unsigned p = 0; p < n_pairs; ++p) {
      const unsigned pi = pair_replicas_[p].first;
      const unsigned pj = pair_replicas_[p].second;
      const core::CoreTapFrame& fi = frames[pi][offset + c];
      const core::CoreTapFrame& fj = frames[pj][offset + c];
      bool ds_match;
      if (shifted[pi] && shifted[pj]) {
        ds_match = pairs_[p].step_shift(fi, fj);
      } else if (!shifted[pi] && !shifted[pj]) {
        ++hold_reuses[p];
        ds_match = pairs_[p].ds_match();
      } else {
        ds_match = pairs_[p].step_realign(shifts[pi], shifts[pj]);
      }
      const bool is_match = stage_equal(&fi.stage, &fj.stage);
      pair_is[p] = is_match;
      const bool nodiv = ds_match && is_match;
      PairCounters& pc = pair_counters_[p];
      if (ds_match) {
        ++pc.ds_match_cycles;
        ++ds_n;
      }
      if (is_match) {
        ++pc.is_match_cycles;
        ++is_n;
      }
      if (nodiv) {
        ++pc.nodiv_cycles;
        ++nodiv_n;
      }
      // Batch eligibility guarantees the staggering counter is armed.
      if (stag_base[p] + static_cast<i64>(adds[pi] - adds[pj]) == 0) {
        ++pc.zero_stag_cycles;
        ++zero_n;
      }
    }

    ++monitored;
    const bool ds_match_g = ds_n >= needed_;
    const bool is_match_g = is_n >= needed_;
    const bool nodiv_g = nodiv_n >= needed_;
    if (ds_match_g) {
      ++ds_c;
      ++ds_run;
    } else if (ds_run > 0) {
      hist_ds_.add(ds_run);
      ds_run = 0;
    }
    if (is_match_g) {
      ++is_c;
      ++is_run;
    } else if (is_run > 0) {
      hist_is_.add(is_run);
      is_run = 0;
    }
    if (nodiv_g) {
      ++nodiv_c;
      ++nodiv_run;
    } else if (nodiv_run > 0) {
      hist_nodiv_.add(nodiv_run);
      nodiv_run = 0;
    }
    if (zero_n >= needed_) ++zero_c;
    ds_now = ds_match_g;
    is_now = is_match_g;
    lack_now = nodiv_g;
    if (trail) trail->push_back(nodiv_g);

    if (nodiv_base + nodiv_c >= fire_at) {
      counters_.monitored_cycles += monitored;
      counters_.nodiv_cycles += nodiv_c;
      counters_.ds_match_cycles += ds_c;
      counters_.is_match_cycles += is_c;
      counters_.zero_stag_cycles += zero_c;
      monitored = nodiv_c = ds_c = is_c = zero_c = 0;
      nodiv_run_ = nodiv_run;
      ds_run_ = ds_run;
      is_run_ = is_run;
      for (unsigned r = 0; r < n; ++r) seen_commit_[r] = seen[r];
      lacking_now_ = lack_now;
      ds_match_now_ = ds_now;
      is_match_now_ = is_now;
      inst_diff_.batch_commit_n(adds, n);
      for (unsigned r = 0; r < n; ++r) adds[r] = 0;
      for (unsigned p = 0; p < n_pairs; ++p)
        stag_base[p] =
            inst_diff_.pair_diff(pair_replicas_[p].first, pair_replicas_[p].second);
      irq_pending_ = true;
      ++counters_.interrupts;
      fire_at = ~u64{0};
      if (irq_handler_) irq_handler_(first_cycle + c);
    }
  }

  counters_.monitored_cycles += monitored;
  counters_.nodiv_cycles += nodiv_c;
  counters_.ds_match_cycles += ds_c;
  counters_.is_match_cycles += is_c;
  counters_.zero_stag_cycles += zero_c;
  nodiv_run_ = nodiv_run;
  ds_run_ = ds_run;
  is_run_ = is_run;
  for (unsigned r = 0; r < n; ++r) seen_commit_[r] = seen[r];
  lacking_now_ = lack_now;
  ds_match_now_ = ds_now;
  is_match_now_ = is_now;
  inst_diff_.batch_commit_n(adds, n);
  for (unsigned r = 0; r < n; ++r)
    sigs_[r].batch_commit(shifts[r], &frames[r][offset + m - 1].stage, m);
  for (unsigned p = 0; p < n_pairs; ++p)
    pairs_[p].batch_commit(hold_reuses[p], m, pair_is[p]);
}

void SafeDm::finalize() {
  if (ds_run_ > 0) hist_ds_.add(ds_run_);
  if (is_run_ > 0) hist_is_.add(is_run_);
  if (nodiv_run_ > 0) hist_nodiv_.add(nodiv_run_);
  ds_run_ = is_run_ = nodiv_run_ = 0;
}

void SafeDm::update_interrupt(u64 cycle) {
  bool fire = false;
  switch (config_.report) {
    case ReportMode::kInterruptFirst:
      fire = counters_.nodiv_cycles >= 1;
      break;
    case ReportMode::kInterruptThreshold:
      fire = counters_.nodiv_cycles >= config_.interrupt_threshold;
      break;
    case ReportMode::kPollOnly:
      fire = false;
      break;
  }
  if (fire && !irq_pending_) {
    irq_pending_ = true;
    ++counters_.interrupts;
    if (irq_handler_) irq_handler_(cycle);
  }
}

// ---- APB register file ---------------------------------------------------------------

u32 SafeDm::apb_read(u32 offset) {
  switch (offset) {
    case reg::kCtrl:
      return (enabled_ ? 1u : 0u) | (static_cast<u32>(config_.report) << 1);
    case reg::kStatus:
      return (lacking_now_ ? 1u : 0u) | (irq_pending_ ? 2u : 0u);
    case reg::kNodivLo:
      return static_cast<u32>(counters_.nodiv_cycles);
    case reg::kNodivHi:
      return static_cast<u32>(counters_.nodiv_cycles >> 32);
    case reg::kThreshold:
      return config_.interrupt_threshold;
    case reg::kMonitoredLo:
      return static_cast<u32>(counters_.monitored_cycles);
    case reg::kMonitoredHi:
      return static_cast<u32>(counters_.monitored_cycles >> 32);
    case reg::kInstDiff:
      return static_cast<u32>(static_cast<i32>(
          std::clamp<i64>(inst_diff_.diff(), std::numeric_limits<i32>::min(),
                          std::numeric_limits<i32>::max())));
    case reg::kZeroStagLo:
      return static_cast<u32>(counters_.zero_stag_cycles);
    case reg::kZeroStagHi:
      return static_cast<u32>(counters_.zero_stag_cycles >> 32);
    case reg::kDsMatchLo:
      return static_cast<u32>(counters_.ds_match_cycles);
    case reg::kDsMatchHi:
      return static_cast<u32>(counters_.ds_match_cycles >> 32);
    case reg::kIsMatchLo:
      return static_cast<u32>(counters_.is_match_cycles);
    case reg::kIsMatchHi:
      return static_cast<u32>(counters_.is_match_cycles >> 32);
    case reg::kHistSelect:
      return hist_select_;
    case reg::kHistData: {
      const unsigned bin = hist_select_ & 0xFF;
      const unsigned which = (hist_select_ >> 8) & 0x3;
      const Histogram& hist = which == 0 ? hist_nodiv_ : which == 1 ? hist_ds_ : hist_is_;
      if (bin >= hist.bin_count()) return 0;
      const u64 value = hist.bin_value(bin);
      return value > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<u32>(value);
    }
    case reg::kGeometry:
      return (config_.data_fifo_depth & 0xFF) | ((config_.num_ports & 0xFF) << 8) |
             ((core::kPipelineStages & 0xFF) << 16) |
             ((core::kMaxIssueWidth & 0xFF) << 24);
    case reg::kGroup:
      return (config_.num_replicas & 0xFF) | ((num_pairs() & 0xFF) << 8) |
             ((static_cast<u32>(config_.policy) & 0x3) << 16) | ((needed_ & 0x3FFF) << 18);
    case reg::kPairSelect:
      return pair_select_;
    case reg::kPairData: {
      const unsigned pair = pair_select_ & 0xFF;
      const unsigned which = (pair_select_ >> 8) & 0x3;
      if (pair >= num_pairs()) return 0;
      const PairCounters pc = pair_counters(pair);
      const u64 value = which == 0   ? pc.nodiv_cycles
                        : which == 1 ? pc.ds_match_cycles
                        : which == 2 ? pc.is_match_cycles
                                     : pc.zero_stag_cycles;
      return value > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<u32>(value);
    }
    default:
      return 0;
  }
}

void SafeDm::apb_write(u32 offset, u32 value) {
  switch (offset) {
    case reg::kCtrl:
      enabled_ = value & 1u;
      config_.report = static_cast<ReportMode>((value >> 1) & 0x3u);
      if (value & (1u << 3)) reset();
      if (value & (1u << 4)) clear_interrupt();
      break;
    case reg::kThreshold:
      config_.interrupt_threshold = value;
      break;
    case reg::kIgnore0:
      inst_diff_.set_ignore(0, value);
      break;
    case reg::kIgnore1:
      inst_diff_.set_ignore(1, value);
      break;
    case reg::kHistSelect:
      hist_select_ = value;
      break;
    case reg::kPairSelect:
      pair_select_ = value;
      break;
    default:
      break;  // writes to read-only registers are ignored, like hardware
  }
}

// ---- snapshot/restore ----------------------------------------------------------

void InstructionDiff::save_state(StateWriter& w) const {
  w.begin_section("IDIF", 2);
  w.put_u32(n_);
  for (unsigned r = 0; r < n_; ++r) {
    w.put_u64(cum_[r]);
    w.put_u64(ignore_[r]);
  }
  w.end_section();
}

void InstructionDiff::restore_state(StateReader& r) {
  r.begin_section("IDIF", 2);
  const u32 n = r.get_u32();
  if (n != n_) throw StateError("InstructionDiff replica count mismatch");
  for (unsigned i = 0; i < n_; ++i) {
    cum_[i] = r.get_u64();
    ignore_[i] = r.get_u64();
  }
  r.end_section();
}

void SafeDm::save_state(StateWriter& w) const {
  w.begin_section("SFDM", 2);
  // Group shape first: a snapshot only restores into a same-shape monitor.
  w.put_u32(config_.num_replicas);
  // Runtime-writable config bits (kCtrl report mode, kThreshold).
  w.put_u8(static_cast<u8>(config_.report));
  w.put_u32(config_.interrupt_threshold);
  w.put_bool(enabled_);
  for (unsigned r = 0; r < config_.num_replicas; ++r) w.put_bool(seen_commit_[r]);
  w.put_bool(lacking_now_);
  w.put_bool(ds_match_now_);
  w.put_bool(is_match_now_);
  w.put_bool(irq_pending_);
  w.put_u64(counters_.monitored_cycles);
  w.put_u64(counters_.nodiv_cycles);
  w.put_u64(counters_.ds_match_cycles);
  w.put_u64(counters_.is_match_cycles);
  w.put_u64(counters_.zero_stag_cycles);
  w.put_u64(counters_.interrupts);
  w.put_u64(counters_.distance_sum);
  w.put_u64(counters_.distance_min);
  w.put_u64(counters_.distance_max);
  w.put_u64(nodiv_run_);
  w.put_u64(ds_run_);
  w.put_u64(is_run_);
  w.put_u32(hist_select_);
  w.put_u32(pair_select_);
  // Matrix cells (N > 2 only; for pairs the group counters are the cell).
  for (const PairCounters& pc : pair_counters_) {
    w.put_u64(pc.nodiv_cycles);
    w.put_u64(pc.ds_match_cycles);
    w.put_u64(pc.is_match_cycles);
    w.put_u64(pc.zero_stag_cycles);
    w.put_u64(pc.distance_sum);
    w.put_u64(pc.distance_min);
    w.put_u64(pc.distance_max);
  }
  inst_diff_.save_state(w);
  for (const SignatureGenerator& sig : sigs_) sig.save_state(w);
  for (const DiversityComparator& pair : pairs_) pair.save_state(w);
  hist_nodiv_.save_state(w);
  hist_ds_.save_state(w);
  hist_is_.save_state(w);
  hist_distance_.save_state(w);
  w.end_section();
}

void SafeDm::restore_state(StateReader& r) {
  r.begin_section("SFDM", 2);
  if (r.get_u32() != config_.num_replicas)
    throw StateError("SafeDm group shape mismatch (num_replicas)");
  config_.report = static_cast<ReportMode>(r.get_u8());
  config_.interrupt_threshold = r.get_u32();
  enabled_ = r.get_bool();
  for (unsigned i = 0; i < config_.num_replicas; ++i) seen_commit_[i] = r.get_bool();
  lacking_now_ = r.get_bool();
  ds_match_now_ = r.get_bool();
  is_match_now_ = r.get_bool();
  irq_pending_ = r.get_bool();
  counters_.monitored_cycles = r.get_u64();
  counters_.nodiv_cycles = r.get_u64();
  counters_.ds_match_cycles = r.get_u64();
  counters_.is_match_cycles = r.get_u64();
  counters_.zero_stag_cycles = r.get_u64();
  counters_.interrupts = r.get_u64();
  counters_.distance_sum = r.get_u64();
  counters_.distance_min = r.get_u64();
  counters_.distance_max = r.get_u64();
  nodiv_run_ = r.get_u64();
  ds_run_ = r.get_u64();
  is_run_ = r.get_u64();
  hist_select_ = r.get_u32();
  pair_select_ = r.get_u32();
  for (PairCounters& pc : pair_counters_) {
    pc.nodiv_cycles = r.get_u64();
    pc.ds_match_cycles = r.get_u64();
    pc.is_match_cycles = r.get_u64();
    pc.zero_stag_cycles = r.get_u64();
    pc.distance_sum = r.get_u64();
    pc.distance_min = r.get_u64();
    pc.distance_max = r.get_u64();
  }
  inst_diff_.restore_state(r);
  for (SignatureGenerator& sig : sigs_) sig.restore_state(r);
  // The comparators resync against the freshly restored generators.
  for (DiversityComparator& pair : pairs_) pair.restore_state(r);
  hist_nodiv_.restore_state(r);
  hist_ds_.restore_state(r);
  hist_is_.restore_state(r);
  hist_distance_.restore_state(r);
  r.end_section();
}

}  // namespace safedm::monitor
