#include "safedm/safedm/monitor.hpp"

#include <algorithm>
#include <limits>

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::monitor {
namespace {

Histogram make_history(const SafeDmConfig& config) {
  if (!config.history_bins.empty()) return Histogram(config.history_bins);
  return Histogram::exponential(16);
}

}  // namespace

// ---- InstructionDiff -----------------------------------------------------------

void InstructionDiff::set_ignore(unsigned core_index, u64 count) {
  SAFEDM_CHECK(core_index < 2);
  ignore_[core_index] = count;
}

void InstructionDiff::on_commits_prelude(unsigned commits0, unsigned commits1) {
  u64 c0 = commits0, c1 = commits1;
  const u64 skip0 = std::min<u64>(ignore_[0], c0);
  const u64 skip1 = std::min<u64>(ignore_[1], c1);
  ignore_[0] -= skip0;
  c0 -= skip0;
  ignore_[1] -= skip1;
  c1 -= skip1;
  diff_ += static_cast<i64>(c0) - static_cast<i64>(c1);
}

void InstructionDiff::reset() {
  diff_ = 0;
  ignore_ = {0, 0};
}

// ---- SafeDm -----------------------------------------------------------------------

SafeDm::SafeDm(const SafeDmConfig& config)
    : config_(config),
      sig0_(config),
      sig1_(config),
      comparator_(sig0_, sig1_),
      enabled_(config.start_enabled),
      hist_nodiv_(make_history(config)),
      hist_ds_(make_history(config)),
      hist_is_(make_history(config)),
      hist_distance_(Histogram::exponential(20)) {}

void SafeDm::enable(bool on) { enabled_ = on; }

void SafeDm::set_prelude_ignore(unsigned core_index, u64 commits) {
  inst_diff_.set_ignore(core_index, commits);
}

void SafeDm::clear_interrupt() { irq_pending_ = false; }

void SafeDm::set_interrupt_handler(std::function<void(u64)> handler) {
  irq_handler_ = std::move(handler);
}

void SafeDm::reset() {
  sig0_.reset();
  sig1_.reset();
  comparator_.resync();
  inst_diff_.reset();
  counters_ = {};
  seen_commit_ = {false, false};
  lacking_now_ = false;
  irq_pending_ = false;
  nodiv_run_ = ds_run_ = is_run_ = 0;
  hist_nodiv_.clear();
  hist_ds_.clear();
  hist_is_.clear();
  hist_distance_.clear();
}

const SignatureGenerator& SafeDm::signatures(unsigned core_index) const {
  SAFEDM_CHECK(core_index < 2);
  return core_index == 0 ? sig0_ : sig1_;
}

u64 SafeDm::storage_bits() const {
  return 2 * (sig0_.data_signature_bits() + sig0_.instruction_signature_bits());
}

void SafeDm::on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                      const core::CoreTapFrame& frame1) {
  // The signature FIFOs clock continuously (hardware is never "off"); only
  // the counting/reporting logic is gated by the enable bit. The comparator
  // likewise tracks every cycle so its bookkeeping stays aligned with the
  // FIFOs across enable/arm transitions.
  sig0_.capture(frame0);
  sig1_.capture(frame1);
  if (config_.incremental_compare) comparator_.update();
  inst_diff_.on_commits(frame0.commits, frame1.commits);

  seen_commit_[0] = seen_commit_[0] || frame0.commits > 0;
  seen_commit_[1] = seen_commit_[1] || frame1.commits > 0;
  const bool armed = !config_.arm_on_first_commit || (seen_commit_[0] && seen_commit_[1]);

  const bool both_running = !frame0.halted && !frame1.halted;
  if (!enabled_ || !both_running || !armed) {
    lacking_now_ = false;
    ds_match_now_ = false;
    is_match_now_ = false;
    if (trail_) trail_->push_back(false);
    return;
  }

  ++counters_.monitored_cycles;

  bool ds_match = false;
  bool is_match = false;
  if (config_.incremental_compare) {
    ds_match = comparator_.ds_match();
    is_match = comparator_.is_match();
  } else if (config_.compare == CompareMode::kRaw) {
    ds_match = SignatureGenerator::data_equal(sig0_, sig1_);
    is_match = SignatureGenerator::instruction_equal(sig0_, sig1_);
  } else {
    ds_match = sig0_.data_crc_exhaustive() == sig1_.data_crc_exhaustive();
    is_match = sig0_.instruction_crc_exhaustive() == sig1_.instruction_crc_exhaustive();
  }

  const bool nodiv = ds_match && is_match;
  lacking_now_ = nodiv;
  ds_match_now_ = ds_match;
  is_match_now_ = is_match;

  const auto track = [](bool condition, u64& run, u64& counter, Histogram& hist) {
    if (condition) {
      ++counter;
      ++run;
    } else if (run > 0) {
      hist.add(run);
      run = 0;
    }
  };
  track(ds_match, ds_run_, counters_.ds_match_cycles, hist_ds_);
  track(is_match, is_run_, counters_.is_match_cycles, hist_is_);
  track(nodiv, nodiv_run_, counters_.nodiv_cycles, hist_nodiv_);

  if (inst_diff_.armed() && inst_diff_.diff() == 0) ++counters_.zero_stag_cycles;

  if (config_.track_distance) {
    const u64 distance = SignatureGenerator::data_distance(sig0_, sig1_) +
                         SignatureGenerator::instruction_distance(sig0_, sig1_);
    counters_.distance_sum += distance;
    counters_.distance_min = std::min(counters_.distance_min, distance);
    counters_.distance_max = std::max(counters_.distance_max, distance);
    hist_distance_.add(distance);
  }

  update_interrupt(cycle);
  if (trail_) trail_->push_back(lacking_now_);
}

bool SafeDm::batch_fast_eligible() const {
  // The chunked loop only covers the default hot configuration; anything
  // else (CRC compare, flat-list IS, distance tracking, disabled or
  // not-yet-armed monitor, multi-word masks) falls back to per-cycle
  // on_cycle, which is always correct.
  return enabled_ && config_.incremental_compare && config_.compare == CompareMode::kRaw &&
         config_.is_mode == IsMode::kPerStage && !config_.track_distance &&
         config_.data_fifo_depth <= 64 &&
         (!config_.arm_on_first_commit || (seen_commit_[0] && seen_commit_[1])) &&
         inst_diff_.armed();
}

void SafeDm::on_cycles(u64 first_cycle, const core::CoreTapFrame* frame0,
                       const core::CoreTapFrame* frame1, unsigned n) {
  unsigned i = 0;
  while (i < n) {
    // Eligibility can flip mid-batch (arming on first commit, prelude
    // consumption), so re-check per span; ineligible cycles go one at a
    // time through the exact per-cycle path.
    if (!batch_fast_eligible()) {
      on_cycle(first_cycle + i, frame0[i], frame1[i]);
      ++i;
      continue;
    }
    // Fast span: consecutive cycles with both cores running. Halted
    // frames take the per-cycle path (they gate counting but still clock
    // the signature FIFOs).
    unsigned j = i;
    while (j < n && !frame0[j].halted && !frame1[j].halted) ++j;
    if (j == i) {
      on_cycle(first_cycle + i, frame0[i], frame1[i]);
      ++i;
      continue;
    }
    while (i < j) {
      const unsigned m = std::min(j - i, 64u);
      process_chunk(first_cycle + i, frame0 + i, frame1 + i, m);
      i += m;
    }
  }
}

void SafeDm::process_chunk(u64 first_cycle, const core::CoreTapFrame* frame0,
                           const core::CoreTapFrame* frame1, unsigned m) {
  // Dispatch once per chunk on the port count so the per-cycle port loops
  // (ring-plane writes + mask shift/insert) run with a constant trip count
  // and fully unroll. P == 0 is the runtime-count fallback; num_ports is
  // validated at construction so the default arm is unreachable in
  // practice, but keeps larger geometries correct if the bound ever grows.
  switch (config_.num_ports) {
    case 1: process_chunk_ports<1>(first_cycle, frame0, frame1, m); break;
    case 2: process_chunk_ports<2>(first_cycle, frame0, frame1, m); break;
    case 3: process_chunk_ports<3>(first_cycle, frame0, frame1, m); break;
    case 4: process_chunk_ports<4>(first_cycle, frame0, frame1, m); break;
    case 5: process_chunk_ports<5>(first_cycle, frame0, frame1, m); break;
    case 6: process_chunk_ports<6>(first_cycle, frame0, frame1, m); break;
    default: process_chunk_ports<0>(first_cycle, frame0, frame1, m); break;
  }
}

template <unsigned P>
void SafeDm::process_chunk_ports(u64 first_cycle, const core::CoreTapFrame* frame0,
                                 const core::CoreTapFrame* frame1, unsigned m) {
  // Per-cycle-exact batched hot loop. All accounting below is keyed to
  // cycle events (never to chunk boundaries), so the committed state —
  // including snapshot bytes — is independent of how a cycle stream is
  // chunked. Kernel dispatch, ring-plane pointers, and counter traffic
  // are hoisted out of the loop; state is committed once at the end.
  // The stage compare resolves to a fixed-count kernel (kStageSlots baked
  // in: straight-line vector code, no loop or tail branches).
  const simd::WordsEqualFixedFn stage_equal =
      simd::words_equal_fixed_fn<SignatureGenerator::kStageSlots>(simd::active_kernel());
  const unsigned ports = P != 0 ? P : config_.num_ports;
  const unsigned stride = sig0_.padded_depth();
  const unsigned ring_mask = stride - 1;
  u64* v0 = sig0_.values_mut();
  u8* e0 = sig0_.enables_mut();
  u64* v1 = sig1_.values_mut();
  u8* e1 = sig1_.enables_mut();
  u64 sa = sig0_.shift_count();
  u64 sb = sig1_.shift_count();
  i64 diff = inst_diff_.diff();
  std::vector<bool>* const trail = trail_;

  u64 monitored = 0, nodiv_c = 0, ds_c = 0, is_c = 0, zero_c = 0, holds = 0;
  u64 nodiv_run = nodiv_run_, ds_run = ds_run_, is_run = is_run_;
  bool seen0 = seen_commit_[0], seen1 = seen_commit_[1];
  bool ds_now = ds_match_now_, is_now = is_match_now_, lack_now = lacking_now_;

  // IRQ threshold, precomputed: fire on the exact cycle the nodiv count
  // reaches it (at most once — the pending latch holds until cleared, and
  // clearing is an APB/direct call that can't happen mid-chunk).
  u64 fire_at = ~u64{0};
  if (!irq_pending_) {
    if (config_.report == ReportMode::kInterruptFirst) fire_at = 1;
    else if (config_.report == ReportMode::kInterruptThreshold) fire_at = config_.interrupt_threshold;
  }
  // Keep the fire check register-resident: the base only changes inside the
  // fire branch, which also disarms fire_at, so a stale base is never read.
  const u64 nodiv_base = counters_.nodiv_cycles;

  const auto write_slot = [&](u64* values, u8* enables, u64 shifts,
                              const core::CoreTapFrame& f) {
    const unsigned slot = static_cast<unsigned>(shifts) & ring_mask;
    for (unsigned p = 0; p < ports; ++p) {
      const unsigned idx = p * stride + slot;
      values[idx] = f.port[p].value;
      enables[idx] = f.port[p].enable ? u8{1} : u8{0};
    }
  };

  for (unsigned c = 0; c < m; ++c) {
    const core::CoreTapFrame& a = frame0[c];
    const core::CoreTapFrame& b = frame1[c];

    // IS verdict straight off the frames: the packed generator snapshots
    // would be byte-identical, so skip the two 112-byte stage copies the
    // per-cycle path pays and compare once with the dispatched kernel.
    const bool is_match = stage_equal(&a.stage, &b.stage);

    bool ds_match;
    if (!a.hold && !b.hold) {
      write_slot(v0, e0, sa, a);
      write_slot(v1, e1, sb, b);
      ++sa;
      ++sb;
      if constexpr (P != 0) {
        ds_match = comparator_.step_shift_fixed<P>(a, b);
      } else {
        ds_match = comparator_.step_shift(a, b);
      }
    } else if (a.hold && b.hold) {
      ++holds;
      ds_match = comparator_.ds_match();
    } else {
      // Divergent holds: only the un-held core shifts, then realign.
      if (!a.hold) {
        write_slot(v0, e0, sa, a);
        ++sa;
      }
      if (!b.hold) {
        write_slot(v1, e1, sb, b);
        ++sb;
      }
      ds_match = comparator_.step_realign(sa, sb);
    }

    diff += static_cast<i64>(a.commits) - static_cast<i64>(b.commits);
    seen0 = seen0 || a.commits > 0;
    seen1 = seen1 || b.commits > 0;

    const bool nodiv = ds_match && is_match;
    ++monitored;
    if (ds_match) {
      ++ds_c;
      ++ds_run;
    } else if (ds_run > 0) {
      hist_ds_.add(ds_run);
      ds_run = 0;
    }
    if (is_match) {
      ++is_c;
      ++is_run;
    } else if (is_run > 0) {
      hist_is_.add(is_run);
      is_run = 0;
    }
    if (nodiv) {
      ++nodiv_c;
      ++nodiv_run;
    } else if (nodiv_run > 0) {
      hist_nodiv_.add(nodiv_run);
      nodiv_run = 0;
    }
    if (diff == 0) ++zero_c;
    ds_now = ds_match;
    is_now = is_match;
    lack_now = nodiv;
    if (trail) trail->push_back(nodiv);

    if (nodiv_base + nodiv_c >= fire_at) {
      // Commit the scalar state before the handler runs so an RTOS hook
      // observes counters/flags exactly as the per-cycle path would.
      // (Generator/comparator internals sync at chunk end; handlers are
      // not entitled to introspect signature internals mid-cycle.)
      counters_.monitored_cycles += monitored;
      counters_.nodiv_cycles += nodiv_c;
      counters_.ds_match_cycles += ds_c;
      counters_.is_match_cycles += is_c;
      counters_.zero_stag_cycles += zero_c;
      monitored = nodiv_c = ds_c = is_c = zero_c = 0;
      nodiv_run_ = nodiv_run;
      ds_run_ = ds_run;
      is_run_ = is_run;
      seen_commit_ = {seen0, seen1};
      lacking_now_ = lack_now;
      ds_match_now_ = ds_now;
      is_match_now_ = is_now;
      inst_diff_.batch_commit(diff);
      irq_pending_ = true;
      ++counters_.interrupts;
      fire_at = ~u64{0};
      if (irq_handler_) irq_handler_(first_cycle + c);
    }
  }

  counters_.monitored_cycles += monitored;
  counters_.nodiv_cycles += nodiv_c;
  counters_.ds_match_cycles += ds_c;
  counters_.is_match_cycles += is_c;
  counters_.zero_stag_cycles += zero_c;
  nodiv_run_ = nodiv_run;
  ds_run_ = ds_run;
  is_run_ = is_run;
  seen_commit_ = {seen0, seen1};
  lacking_now_ = lack_now;
  ds_match_now_ = ds_now;
  is_match_now_ = is_now;
  inst_diff_.batch_commit(diff);
  sig0_.batch_commit(sa, &frame0[m - 1].stage, m);
  sig1_.batch_commit(sb, &frame1[m - 1].stage, m);
  comparator_.batch_commit(holds, m, is_now);
}

void SafeDm::finalize() {
  if (ds_run_ > 0) hist_ds_.add(ds_run_);
  if (is_run_ > 0) hist_is_.add(is_run_);
  if (nodiv_run_ > 0) hist_nodiv_.add(nodiv_run_);
  ds_run_ = is_run_ = nodiv_run_ = 0;
}

void SafeDm::update_interrupt(u64 cycle) {
  bool fire = false;
  switch (config_.report) {
    case ReportMode::kInterruptFirst:
      fire = counters_.nodiv_cycles >= 1;
      break;
    case ReportMode::kInterruptThreshold:
      fire = counters_.nodiv_cycles >= config_.interrupt_threshold;
      break;
    case ReportMode::kPollOnly:
      fire = false;
      break;
  }
  if (fire && !irq_pending_) {
    irq_pending_ = true;
    ++counters_.interrupts;
    if (irq_handler_) irq_handler_(cycle);
  }
}

// ---- APB register file ---------------------------------------------------------------

u32 SafeDm::apb_read(u32 offset) {
  switch (offset) {
    case reg::kCtrl:
      return (enabled_ ? 1u : 0u) | (static_cast<u32>(config_.report) << 1);
    case reg::kStatus:
      return (lacking_now_ ? 1u : 0u) | (irq_pending_ ? 2u : 0u);
    case reg::kNodivLo:
      return static_cast<u32>(counters_.nodiv_cycles);
    case reg::kNodivHi:
      return static_cast<u32>(counters_.nodiv_cycles >> 32);
    case reg::kThreshold:
      return config_.interrupt_threshold;
    case reg::kMonitoredLo:
      return static_cast<u32>(counters_.monitored_cycles);
    case reg::kMonitoredHi:
      return static_cast<u32>(counters_.monitored_cycles >> 32);
    case reg::kInstDiff:
      return static_cast<u32>(static_cast<i32>(
          std::clamp<i64>(inst_diff_.diff(), std::numeric_limits<i32>::min(),
                          std::numeric_limits<i32>::max())));
    case reg::kZeroStagLo:
      return static_cast<u32>(counters_.zero_stag_cycles);
    case reg::kZeroStagHi:
      return static_cast<u32>(counters_.zero_stag_cycles >> 32);
    case reg::kDsMatchLo:
      return static_cast<u32>(counters_.ds_match_cycles);
    case reg::kDsMatchHi:
      return static_cast<u32>(counters_.ds_match_cycles >> 32);
    case reg::kIsMatchLo:
      return static_cast<u32>(counters_.is_match_cycles);
    case reg::kIsMatchHi:
      return static_cast<u32>(counters_.is_match_cycles >> 32);
    case reg::kHistSelect:
      return hist_select_;
    case reg::kHistData: {
      const unsigned bin = hist_select_ & 0xFF;
      const unsigned which = (hist_select_ >> 8) & 0x3;
      const Histogram& hist = which == 0 ? hist_nodiv_ : which == 1 ? hist_ds_ : hist_is_;
      if (bin >= hist.bin_count()) return 0;
      const u64 value = hist.bin_value(bin);
      return value > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<u32>(value);
    }
    case reg::kGeometry:
      return (config_.data_fifo_depth & 0xFF) | ((config_.num_ports & 0xFF) << 8) |
             ((core::kPipelineStages & 0xFF) << 16) |
             ((core::kMaxIssueWidth & 0xFF) << 24);
    default:
      return 0;
  }
}

void SafeDm::apb_write(u32 offset, u32 value) {
  switch (offset) {
    case reg::kCtrl:
      enabled_ = value & 1u;
      config_.report = static_cast<ReportMode>((value >> 1) & 0x3u);
      if (value & (1u << 3)) reset();
      if (value & (1u << 4)) clear_interrupt();
      break;
    case reg::kThreshold:
      config_.interrupt_threshold = value;
      break;
    case reg::kIgnore0:
      inst_diff_.set_ignore(0, value);
      break;
    case reg::kIgnore1:
      inst_diff_.set_ignore(1, value);
      break;
    case reg::kHistSelect:
      hist_select_ = value;
      break;
    default:
      break;  // writes to read-only registers are ignored, like hardware
  }
}

// ---- snapshot/restore ----------------------------------------------------------

void InstructionDiff::save_state(StateWriter& w) const {
  w.begin_section("IDIF", 1);
  w.put_i64(diff_);
  w.put_u64(ignore_[0]);
  w.put_u64(ignore_[1]);
  w.end_section();
}

void InstructionDiff::restore_state(StateReader& r) {
  r.begin_section("IDIF", 1);
  diff_ = r.get_i64();
  ignore_[0] = r.get_u64();
  ignore_[1] = r.get_u64();
  r.end_section();
}

void SafeDm::save_state(StateWriter& w) const {
  w.begin_section("SFDM", 1);
  // Runtime-writable config bits (kCtrl report mode, kThreshold).
  w.put_u8(static_cast<u8>(config_.report));
  w.put_u32(config_.interrupt_threshold);
  w.put_bool(enabled_);
  w.put_bool(seen_commit_[0]);
  w.put_bool(seen_commit_[1]);
  w.put_bool(lacking_now_);
  w.put_bool(ds_match_now_);
  w.put_bool(is_match_now_);
  w.put_bool(irq_pending_);
  w.put_u64(counters_.monitored_cycles);
  w.put_u64(counters_.nodiv_cycles);
  w.put_u64(counters_.ds_match_cycles);
  w.put_u64(counters_.is_match_cycles);
  w.put_u64(counters_.zero_stag_cycles);
  w.put_u64(counters_.interrupts);
  w.put_u64(counters_.distance_sum);
  w.put_u64(counters_.distance_min);
  w.put_u64(counters_.distance_max);
  w.put_u64(nodiv_run_);
  w.put_u64(ds_run_);
  w.put_u64(is_run_);
  w.put_u32(hist_select_);
  inst_diff_.save_state(w);
  sig0_.save_state(w);
  sig1_.save_state(w);
  comparator_.save_state(w);
  hist_nodiv_.save_state(w);
  hist_ds_.save_state(w);
  hist_is_.save_state(w);
  hist_distance_.save_state(w);
  w.end_section();
}

void SafeDm::restore_state(StateReader& r) {
  r.begin_section("SFDM", 1);
  config_.report = static_cast<ReportMode>(r.get_u8());
  config_.interrupt_threshold = r.get_u32();
  enabled_ = r.get_bool();
  seen_commit_[0] = r.get_bool();
  seen_commit_[1] = r.get_bool();
  lacking_now_ = r.get_bool();
  ds_match_now_ = r.get_bool();
  is_match_now_ = r.get_bool();
  irq_pending_ = r.get_bool();
  counters_.monitored_cycles = r.get_u64();
  counters_.nodiv_cycles = r.get_u64();
  counters_.ds_match_cycles = r.get_u64();
  counters_.is_match_cycles = r.get_u64();
  counters_.zero_stag_cycles = r.get_u64();
  counters_.interrupts = r.get_u64();
  counters_.distance_sum = r.get_u64();
  counters_.distance_min = r.get_u64();
  counters_.distance_max = r.get_u64();
  nodiv_run_ = r.get_u64();
  ds_run_ = r.get_u64();
  is_run_ = r.get_u64();
  hist_select_ = r.get_u32();
  inst_diff_.restore_state(r);
  sig0_.restore_state(r);
  sig1_.restore_state(r);
  // The comparator resyncs against the freshly restored generators.
  comparator_.restore_state(r);
  hist_nodiv_.restore_state(r);
  hist_ds_.restore_state(r);
  hist_is_.restore_state(r);
  hist_distance_.restore_state(r);
  r.end_section();
}

}  // namespace safedm::monitor
