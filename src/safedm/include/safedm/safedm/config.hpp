// SafeDM configuration (paper Section III-B).
#pragma once

#include <vector>

#include "safedm/common/bits.hpp"
#include "safedm/core/tap.hpp"

namespace safedm::monitor {

/// How lack of diversity is reported (paper Section III-B3).
enum class ReportMode : u8 {
  kInterruptFirst = 0,      // (1) interrupt on the first occurrence
  kInterruptThreshold = 1,  // (2) interrupt after a programmed count
  kPollOnly = 2,            // (3) no interrupt; RTOS polls the counter
};

/// Instruction-signature construction (paper Section III-B2).
enum class IsMode : u8 {
  kPerStage = 0,  // per-pipeline-stage slots (NOEL-V group-advance cores)
  kFlatList = 1,  // fallback: list of fetched-but-not-retired instructions
};

/// Signature comparison (A2 ablation: raw concatenation vs compression).
enum class CompareMode : u8 {
  kRaw = 0,    // bit-exact comparison of the concatenated FIFOs (the paper)
  kCrc32 = 1,  // CRC-compressed signatures: cheaper, small collision risk
};

/// Replicas one monitor can watch (must agree with soc::kMaxGroupReplicas)
/// and the resulting pairwise-matrix size, C(8,2).
inline constexpr unsigned kMaxReplicas = 8;
inline constexpr unsigned kMaxReplicaPairs = kMaxReplicas * (kMaxReplicas - 1) / 2;

/// Group verdict policy (N-replica groups): when does the *group* lack
/// diversity in a cycle, as a threshold over the per-pair nodiv verdicts.
/// kQuorum with quorum_k = 1 is kAnyPair and with quorum_k = C(n,2) is
/// kAllPairs by construction (the policy lowers to one threshold).
enum class VerdictPolicy : u8 {
  kAnyPair = 0,   // >= 1 pair matched: the conservative default — any
                  // correlated sub-pair already threatens the group
  kAllPairs = 1,  // every pair matched: the whole group collapsed
  kQuorum = 2,    // >= quorum_k pairs matched
};

struct SafeDmConfig {
  /// Replicas monitored together (a redundancy group); the monitor keeps
  /// one signature generator per replica and one diversity comparator per
  /// unordered replica pair. 2 is the paper's pairwise monitor and keeps
  /// its exact legacy semantics and hot path.
  unsigned num_replicas = 2;
  VerdictPolicy policy = VerdictPolicy::kAnyPair;
  unsigned quorum_k = 1;  // for kQuorum: pairs that must match, 1..C(n,2)

  unsigned data_fifo_depth = 8;  // n: cycles of register-port history
  unsigned num_ports = 4;        // m: monitored register-file ports (<= 6)
  IsMode is_mode = IsMode::kPerStage;
  CompareMode compare = CompareMode::kRaw;
  ReportMode report = ReportMode::kPollOnly;
  u32 interrupt_threshold = 1;   // for kInterruptThreshold
  bool start_enabled = false;

  /// Only count once both cores have committed at least one instruction,
  /// mirroring the paper's methodology where the RTOS enables SafeDM after
  /// launching both redundant processes. Without this, the boot window —
  /// both pipelines empty while cold I-cache misses serialize on the bus —
  /// is counted as (vacuous) lack of diversity.
  bool arm_on_first_commit = true;

  /// History-module bin upper bounds (episode lengths in cycles). Empty
  /// selects the default power-of-two binning.
  std::vector<u64> history_bins{};

  /// Extension: also compute the Hamming *distance* between the cores'
  /// signatures each cycle (a diversity magnitude, not just a verdict).
  /// Costs extra simulation time; off by default.
  bool track_distance = false;

  /// Simulation-side comparison strategy: the incremental
  /// DiversityComparator updates cross-core mismatch bookkeeping in
  /// O(num_ports) per cycle (mirroring the hardware, which only sees one
  /// new sample per FIFO per clock). Disable to force the exhaustive
  /// whole-signature comparison every cycle — the reference oracle and
  /// perf baseline. Verdicts are identical either way.
  bool incremental_compare = true;
};

}  // namespace safedm::monitor
