// Signature generator (paper Fig. 4, "Signature generator" block): per-core
// capture of the Data Signature (DS) and Instruction Signature (IS).
//
// DS: one FIFO per monitored register-file port holding the last n cycles
// of {enable, value} samples; the DS is the concatenation of all FIFOs
// (paper III-B1). The hold signal freezes the FIFOs while the pipeline is
// stalled (paper IV-B1).
//
// IS: the {valid, encoding} contents of every pipeline-stage slot
// (per-stage mode, paper III-B2), or the flat in-flight instruction list
// for cores without group-advance pipelines.
#pragma once

#include <vector>

#include "safedm/common/hash.hpp"
#include "safedm/core/tap.hpp"
#include "safedm/safedm/config.hpp"

namespace safedm::monitor {

class SignatureGenerator {
 public:
  explicit SignatureGenerator(const SafeDmConfig& config);

  /// Capture one cycle of core observation.
  void capture(const core::CoreTapFrame& frame);

  /// Clear all captured state (FIFOs empty, pipeline snapshot invalid).
  void reset();

  /// DS0 == DS1 (bit-exact, including enables and sample order).
  static bool data_equal(const SignatureGenerator& a, const SignatureGenerator& b);

  /// IS0 == IS1 under the configured IS mode.
  static bool instruction_equal(const SignatureGenerator& a, const SignatureGenerator& b);

  /// Compressed signatures (CompareMode::kCrc32).
  u32 data_crc() const;
  u32 instruction_crc() const;

  /// Diversity *magnitude*: Hamming distance between the two cores'
  /// signatures in bits (0 = no diversity). The paper's comparator only
  /// answers equal/unequal; the distance quantifies how far apart the
  /// cores' states are — a richer metric the same hardware taps support.
  static u64 data_distance(const SignatureGenerator& a, const SignatureGenerator& b);
  static u64 instruction_distance(const SignatureGenerator& a, const SignatureGenerator& b);

  /// Total signature storage in bits (used by the hardware cost model and
  /// the APB SIZE register).
  u64 data_signature_bits() const;
  u64 instruction_signature_bits() const;

  const SafeDmConfig& config() const { return config_; }

  /// Test access: the sample most recently shifted into `port`'s FIFO.
  core::PortTap newest_sample(unsigned port) const;

 private:
  struct PortFifo {
    std::vector<core::PortTap> entries;  // ring buffer, size n
    unsigned head = 0;                   // next slot to overwrite
  };

  SafeDmConfig config_;
  std::vector<PortFifo> fifos_;  // one per monitored port
  // Latest pipeline snapshot (per-stage slots).
  std::array<std::array<core::StageSlotTap, core::kMaxIssueWidth>, core::kPipelineStages>
      stages_{};
};

}  // namespace safedm::monitor
