// Signature generator (paper Fig. 4, "Signature generator" block): per-core
// capture of the Data Signature (DS) and Instruction Signature (IS).
//
// DS: one FIFO per monitored register-file port holding the last n cycles
// of {enable, value} samples; the DS is the concatenation of all FIFOs
// (paper III-B1). The hold signal freezes the FIFOs while the pipeline is
// stalled (paper IV-B1).
//
// IS: the {valid, encoding} contents of every pipeline-stage slot
// (per-stage mode, paper III-B2), or the flat in-flight instruction list
// for cores without group-advance pipelines.
//
// Storage layout: SoA. The port FIFOs are stored as two contiguous
// planes — a u64 `value` plane and a u8 `enable` plane (strictly 0/1 per
// byte) — each port-major with a per-port span padded to a power of two,
// so ring indexing is a mask instead of a modulo and the comparator can
// bit-slice whole slot runs with one SIMD lane operation (simd.hpp). The
// write cursor counts total shifts; the logical window (oldest..newest)
// is the last `data_fifo_depth` writes. The padding slots beyond the
// logical depth are never read, and the logical signature geometry
// (data_signature_bits) is unchanged by the padding.
#pragma once

#include <cstring>
#include <vector>

#include "safedm/common/hash.hpp"
#include "safedm/core/tap.hpp"
#include "safedm/safedm/config.hpp"

namespace safedm {
class StateReader;
class StateWriter;
}  // namespace safedm

namespace safedm::monitor {

class SignatureGenerator {
 public:
  explicit SignatureGenerator(const SafeDmConfig& config);

  /// Capture one cycle of core observation. Returns true when the data
  /// FIFOs shifted (i.e. the frame was not held). Inline: runs twice per
  /// simulated cycle in the monitor hot path.
  bool capture(const core::CoreTapFrame& frame) {
    // Stage snapshot: pipeline contents are level signals; re-capturing a
    // held pipeline reproduces the same snapshot. The snapshot is packed
    // one slot per 64-bit word so the change check (and every downstream
    // IS comparison) is a flat word walk instead of a struct element walk.
    static_assert(sizeof(frame.stage) == sizeof(PackedStages));
    if (!detect_stage_changes_) {
      // Raw per-stage mode: the comparator's IS verdict is one flat word
      // compare, cheaper than exact change detection would be — just
      // refresh the snapshot.
      std::memcpy(stage_packed_.data(), &frame.stage, sizeof(PackedStages));
      ++stage_version_;
    } else {
      // Change detection gates real work here (CRC rehash / flat-list
      // rebuild), so pay for the exact compare. Only bump the version (and
      // invalidate the IS CRC) when the content actually changed.
      u64 delta = 0;
      for (unsigned k = 0; k < kStageSlots; ++k) {
        u64 word;  // per-word memcpy folds to a plain load
        std::memcpy(&word, reinterpret_cast<const char*>(&frame.stage) + k * sizeof(u64),
                    sizeof(word));
        delta |= word ^ stage_packed_[k];
      }
      if (delta != 0) {
        std::memcpy(stage_packed_.data(), &frame.stage, sizeof(PackedStages));
        ++stage_version_;
        inst_crc_valid_ = false;
      }
    }

    // Data FIFOs shift once per un-held clock (paper IV-B1: "the hold
    // signal is used to not overwrite any values in the FIFOs if the
    // pipeline is stalled").
    if (frame.hold) return false;
    const unsigned slot = static_cast<unsigned>(shifts_) & depth_mask_;
    for (unsigned p = 0; p < config_.num_ports; ++p) {
      const unsigned idx = p * padded_depth_ + slot;
      values_[idx] = frame.port[p].value;
      enables_[idx] = frame.port[p].enable ? u8{1} : u8{0};
    }
    if (crc_cached_) {
      for (unsigned p = 0; p < config_.num_ports; ++p) {
        entry_dirty_[p * padded_depth_ + slot] = 1;
      }
      data_crc_valid_ = false;
    }
    ++shifts_;
    return true;
  }

  /// Clear all captured state (FIFOs empty, pipeline snapshot invalid).
  void reset();

  /// DS0 == DS1 (bit-exact, including enables and sample order). This is
  /// the exhaustive reference comparison; the per-cycle hot path lives in
  /// DiversityComparator.
  static bool data_equal(const SignatureGenerator& a, const SignatureGenerator& b);

  /// IS0 == IS1 under the configured IS mode.
  static bool instruction_equal(const SignatureGenerator& a, const SignatureGenerator& b);

  /// Compressed signatures (CompareMode::kCrc32). Per-entry CRCs are
  /// cached with dirty bits, so in steady state only the newly shifted-in
  /// sample per port is rehashed; the combined value is cached until the
  /// underlying state changes.
  u32 data_crc() const;
  u32 instruction_crc() const;

  /// Uncached variants that rehash the raw signature bytes end to end;
  /// used by the exhaustive (pre-incremental) comparison path so perf
  /// baselines measure what the old code measured.
  u32 data_crc_exhaustive() const;
  u32 instruction_crc_exhaustive() const;

  /// Diversity *magnitude*: Hamming distance between the two cores'
  /// signatures in bits (0 = no diversity). The paper's comparator only
  /// answers equal/unequal; the distance quantifies how far apart the
  /// cores' states are — a richer metric the same hardware taps support.
  static u64 data_distance(const SignatureGenerator& a, const SignatureGenerator& b);
  static u64 instruction_distance(const SignatureGenerator& a, const SignatureGenerator& b);

  /// Total signature storage in bits (used by the hardware cost model and
  /// the APB SIZE register). Reflects the configured logical depth, not
  /// the padded physical storage.
  u64 data_signature_bits() const;
  u64 instruction_signature_bits() const;

  const SafeDmConfig& config() const { return config_; }

  // ---- incremental-comparator observation interface ----------------------

  /// Number of times the data FIFOs have shifted since reset. Two
  /// generators whose shift counts advance in lockstep stay window-aligned.
  u64 shift_count() const { return shifts_; }

  /// Bumped when the pipeline-stage snapshot may have changed (and on
  /// reset); lets observers reuse a cached IS verdict across held cycles.
  /// Exact (content-compared) in CRC and flat-list modes; in raw per-stage
  /// mode it bumps on every capture, since there the downstream verdict is
  /// cheaper than exact change detection.
  u64 stage_version() const { return stage_version_; }

  /// Logical-window access: entry(p, 0) is port p's oldest sample,
  /// entry(p, depth-1) the newest. No bounds checks — hot path.
  core::PortTap entry(unsigned port, unsigned i) const {
    const unsigned idx = port * padded_depth_ +
                         (static_cast<unsigned>(shifts_ - config_.data_fifo_depth + i) & depth_mask_);
    return core::PortTap{enables_[idx] != 0, values_[idx]};
  }

  /// Raw plane views for the comparator's bit-sliced fast path: port p's
  /// physical slot s lives at values_data()[p * padded_depth() + s] (and
  /// the matching enables_data() byte, strictly 0/1). The pointers are
  /// stable for the generator's lifetime.
  const u64* values_data() const { return values_.data(); }
  const u8* enables_data() const { return enables_.data(); }
  unsigned padded_depth() const { return padded_depth_; }

  // ---- batched-capture support (SafeDm::on_cycles fast path) --------------
  //
  // The batched monitor path writes ring slots directly through these
  // mutable plane pointers (same layout/contract as the *_data() views,
  // enable bytes strictly 0/1) and then calls batch_commit() once per
  // chunk to sync the shift cursor, the pipeline snapshot, and the stage
  // version. Only legal in raw per-stage mode, where no CRC dirty bits or
  // change detection need maintaining — batch_commit checks.
  u64* values_mut() { return values_.data(); }
  u8* enables_mut() { return enables_.data(); }
  void batch_commit(u64 shifts, const void* stage_src, u64 stage_bumps);

  /// One stage slot per word: the bit image of the (padding-free)
  /// StageSlotTap. The packed form makes the whole-pipeline IS comparison
  /// a flat word compare instead of a struct element walk.
  static constexpr unsigned kStageSlots = core::kPipelineStages * core::kMaxIssueWidth;
  using PackedStages = std::array<u64, kStageSlots>;
  const PackedStages& packed_stages() const { return stage_packed_; }

  /// Test access: the sample most recently shifted into `port`'s FIFO.
  core::PortTap newest_sample(unsigned port) const;

  /// FIFO contents + shift cursor + pipeline snapshot. The CRC memo
  /// caches are deliberately NOT serialized: restore marks every entry
  /// dirty, so the first post-restore query recomputes them from the
  /// restored samples — same values, no hidden state. Restore writes into
  /// the existing ring storage (samples_data() stays stable, so an
  /// attached DiversityComparator keeps valid pointers).
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  u32 entry_crc(unsigned index) const;
  u32 data_crc_combine(bool use_cache) const;

  SafeDmConfig config_;
  unsigned padded_depth_ = 1;  // lint: no-snapshot(power of two >= data_fifo_depth, from config)
  unsigned depth_mask_ = 0;    // lint: no-snapshot(padded_depth_ - 1, derived)
  bool crc_cached_ = false;    // lint: no-snapshot(dirty-bit tracking only pays off in CRC mode)
  // Exact stage-change detection pays for itself only when a change gates
  // expensive work (CRC rehash, flat-list rebuild); in raw per-stage mode
  // the snapshot is refreshed unconditionally and the version always bumps.
  // lint: no-snapshot(mode choice, fixed by config at construction)
  bool detect_stage_changes_ = true;
  u64 shifts_ = 0;             // total FIFO shifts; write slot = shifts_ & mask
  u64 stage_version_ = 0;
  // All ports' rings as SoA planes: values_[p * padded_depth_ + slot] and
  // the matching enables_ byte (0/1). Split so the comparator can lane-
  // compare value runs and XOR enable bytes directly.
  std::vector<u64> values_;
  std::vector<u8> enables_;

  // CRC caches (CompareMode::kCrc32): one CRC per physical slot plus a
  // dirty flag, and a cached combination over the logical window.
  // restore_state marks every slot dirty and drops both combined memos, so
  // the caches rebuild from the restored rings on the next query.
  mutable std::vector<u32> entry_crc_;   // lint: no-snapshot(memo, dirty-marked on restore)
  mutable std::vector<u8> entry_dirty_;  // lint: no-snapshot(all-dirty after restore)
  mutable u32 data_crc_cache_ = 0;       // lint: no-snapshot(memo, invalidated on restore)
  mutable bool data_crc_valid_ = false;  // lint: no-snapshot(cleared on restore)
  mutable u32 inst_crc_cache_ = 0;       // lint: no-snapshot(memo, invalidated on restore)
  mutable bool inst_crc_valid_ = false;  // lint: no-snapshot(cleared on restore)

  // Latest pipeline snapshot, packed (slot-major: stage * issue + lane).
  PackedStages stage_packed_{};
};

}  // namespace safedm::monitor
