// Runtime-dispatched compare kernels for the signature hot path.
//
// Two primitives cover every bulk comparison the monitor performs:
//
//   words_equal(a, b, n)          n 64-bit words bit-identical?
//                                 (packed pipeline-stage snapshots)
//   mismatch_bits(av,bv,ae,be,n)  per-slot mismatch bitmask over n
//                                 contiguous SoA ring slots (n <= 64):
//                                 bit i set when value i or enable i differ
//
// Three kernels implement them: a portable u64 fallback (the default on
// non-x86 and the correctness oracle everywhere), an SSE2 variant, and an
// AVX2 variant. Dispatch is resolved once per process from CPUID, can be
// narrowed with SAFEDM_SIMD=portable|sse2|avx2 (never widened past what
// the hardware supports), and pinned from tests via force_kernel() so the
// property suites can prove all kernels verdict-identical on any host.
//
// Contract: enable planes store strictly 0 or 1 per byte (the SoA
// generators guarantee this), so a byte XOR is already the per-slot
// enable-mismatch bit.
#pragma once

#include <cstdlib>
#include <cstring>

#include "safedm/common/bits.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SAFEDM_SIMD_X86 1
#include <immintrin.h>
#else
#define SAFEDM_SIMD_X86 0
#endif

namespace safedm::monitor::simd {

enum class Kernel : u8 { kPortable = 0, kSse2 = 1, kAvx2 = 2 };

inline const char* kernel_name(Kernel kernel) {
  switch (kernel) {
    case Kernel::kSse2:
      return "sse2";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kPortable:
      break;
  }
  return "portable";
}

/// Widest kernel this CPU can execute (ignores the env override).
inline Kernel hardware_kernel() {
#if SAFEDM_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Kernel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Kernel::kSse2;
#endif
  return Kernel::kPortable;
}

inline bool kernel_supported(Kernel kernel) {
  return static_cast<u8>(kernel) <= static_cast<u8>(hardware_kernel());
}

/// Hardware capability, optionally narrowed by SAFEDM_SIMD. An override
/// the CPU cannot execute is clamped down, never up.
inline Kernel detect_kernel() {
  Kernel best = hardware_kernel();
  if (const char* env = std::getenv("SAFEDM_SIMD")) {
    Kernel want = best;
    if (std::strcmp(env, "portable") == 0) want = Kernel::kPortable;
    else if (std::strcmp(env, "sse2") == 0) want = Kernel::kSse2;
    else if (std::strcmp(env, "avx2") == 0) want = Kernel::kAvx2;
    if (static_cast<u8>(want) < static_cast<u8>(best)) best = want;
  }
  return best;
}

inline Kernel& active_kernel_slot() {
  static Kernel kernel = detect_kernel();
  return kernel;
}

/// The kernel hot paths dispatch to (resolved once, then cached).
inline Kernel active_kernel() { return active_kernel_slot(); }

/// Test hook: pin dispatch to `kernel` (clamped to hardware support).
/// Returns the kernel actually installed.
inline Kernel force_kernel(Kernel kernel) {
  if (!kernel_supported(kernel)) kernel = hardware_kernel();
  active_kernel_slot() = kernel;
  return kernel;
}

// ---- portable u64 kernel (default + oracle) --------------------------------

inline bool words_equal_portable(const void* a, const void* b, unsigned n) {
  const unsigned char* pa = static_cast<const unsigned char*>(a);
  const unsigned char* pb = static_cast<const unsigned char*>(b);
  u64 diff = 0;
  for (unsigned k = 0; k < n; ++k) {
    u64 wa, wb;  // per-word memcpy folds to a plain load
    std::memcpy(&wa, pa + std::size_t{k} * sizeof(u64), sizeof(u64));
    std::memcpy(&wb, pb + std::size_t{k} * sizeof(u64), sizeof(u64));
    diff |= wa ^ wb;
  }
  return diff == 0;
}

inline u64 mismatch_bits_portable(const u64* av, const u64* bv, const u8* ae,
                                  const u8* be, unsigned n) {
  u64 bits = 0;
  for (unsigned i = 0; i < n; ++i) {
    bits |= static_cast<u64>((av[i] != bv[i]) | (ae[i] != be[i])) << i;
  }
  return bits;
}

#if SAFEDM_SIMD_X86

// ---- SSE2 ------------------------------------------------------------------

__attribute__((target("sse2"))) inline bool words_equal_sse2(const void* a, const void* b,
                                                             unsigned n) {
  const unsigned char* pa = static_cast<const unsigned char*>(a);
  const unsigned char* pb = static_cast<const unsigned char*>(b);
  __m128i acc = _mm_setzero_si128();
  unsigned k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + std::size_t{k} * sizeof(u64)));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + std::size_t{k} * sizeof(u64)));
    acc = _mm_or_si128(acc, _mm_xor_si128(va, vb));
  }
  const int all_zero =
      _mm_movemask_epi8(_mm_cmpeq_epi8(acc, _mm_setzero_si128()));
  bool equal = all_zero == 0xFFFF;
  for (; k < n; ++k) {
    u64 wa, wb;
    std::memcpy(&wa, pa + std::size_t{k} * sizeof(u64), sizeof(u64));
    std::memcpy(&wb, pb + std::size_t{k} * sizeof(u64), sizeof(u64));
    equal = equal && wa == wb;
  }
  return equal;
}

__attribute__((target("sse2"))) inline u64 mismatch_bits_sse2(const u64* av, const u64* bv,
                                                              const u8* ae, const u8* be,
                                                              unsigned n) {
  u64 bits = 0;
  unsigned i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(av + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bv + i));
    // cmpeq_epi32 + movemask_ps: value pair j equal iff both of its two
    // 32-bit lanes compared equal (mask bits 2j and 2j+1 set).
    const unsigned m =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb))));
    const unsigned vdiff =
        ((m & 3u) != 3u ? 1u : 0u) | (((m >> 2) & 3u) != 3u ? 2u : 0u);
    const unsigned ediff = static_cast<unsigned>(ae[i] ^ be[i]) |
                           (static_cast<unsigned>(ae[i + 1] ^ be[i + 1]) << 1);
    bits |= static_cast<u64>(vdiff | ediff) << i;
  }
  for (; i < n; ++i) {
    bits |= static_cast<u64>((av[i] != bv[i]) | (ae[i] != be[i])) << i;
  }
  return bits;
}

// ---- AVX2 ------------------------------------------------------------------

__attribute__((target("avx2"))) inline bool words_equal_avx2(const void* a, const void* b,
                                                             unsigned n) {
  const unsigned char* pa = static_cast<const unsigned char*>(a);
  const unsigned char* pb = static_cast<const unsigned char*>(b);
  __m256i acc = _mm256_setzero_si256();
  unsigned k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa + std::size_t{k} * sizeof(u64)));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + std::size_t{k} * sizeof(u64)));
    acc = _mm256_or_si256(acc, _mm256_xor_si256(va, vb));
  }
  bool equal = _mm256_testz_si256(acc, acc) != 0;
  for (; k < n; ++k) {
    u64 wa, wb;
    std::memcpy(&wa, pa + std::size_t{k} * sizeof(u64), sizeof(u64));
    std::memcpy(&wb, pb + std::size_t{k} * sizeof(u64), sizeof(u64));
    equal = equal && wa == wb;
  }
  return equal;
}

__attribute__((target("avx2"))) inline u64 mismatch_bits_avx2(const u64* av, const u64* bv,
                                                              const u8* ae, const u8* be,
                                                              unsigned n) {
  u64 bits = 0;
  unsigned i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(av + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bv + i));
    const unsigned veq = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb))));
    // Enable bytes are 0/1, so each XOR byte is already the mismatch bit;
    // fold byte j's bit 8j down to bit j.
    u32 ea, eb;
    std::memcpy(&ea, ae + i, sizeof(u32));
    std::memcpy(&eb, be + i, sizeof(u32));
    const u32 ex = ea ^ eb;
    const unsigned ediff = (ex & 1u) | ((ex >> 7) & 2u) | ((ex >> 14) & 4u) | ((ex >> 21) & 8u);
    bits |= static_cast<u64>((~veq & 0xFu) | ediff) << i;
  }
  for (; i < n; ++i) {
    bits |= static_cast<u64>((av[i] != bv[i]) | (ae[i] != be[i])) << i;
  }
  return bits;
}

#endif  // SAFEDM_SIMD_X86

// ---- fixed-size word compare (compile-time count) --------------------------
//
// The chunked monitor loop compares the same word count every cycle
// (kStageSlots packed pipeline words). Baking the count into the type
// lets each kernel emit a fully unrolled straight-line body — no loop
// control, no scalar tail branches — which matters at ~100M compares/sec.

template <unsigned N>
inline bool words_equal_fixed_portable(const void* a, const void* b) {
  const unsigned char* pa = static_cast<const unsigned char*>(a);
  const unsigned char* pb = static_cast<const unsigned char*>(b);
  u64 diff = 0;
  for (unsigned k = 0; k < N; ++k) {  // constexpr bound: fully unrolled
    u64 wa, wb;
    std::memcpy(&wa, pa + std::size_t{k} * sizeof(u64), sizeof(u64));
    std::memcpy(&wb, pb + std::size_t{k} * sizeof(u64), sizeof(u64));
    diff |= wa ^ wb;
  }
  return diff == 0;
}

#if SAFEDM_SIMD_X86

template <unsigned N>
__attribute__((target("sse2"))) inline bool words_equal_fixed_sse2(const void* a,
                                                                   const void* b) {
  const unsigned char* pa = static_cast<const unsigned char*>(a);
  const unsigned char* pb = static_cast<const unsigned char*>(b);
  __m128i acc = _mm_setzero_si128();
  for (unsigned k = 0; k + 2 <= N; k += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + std::size_t{k} * sizeof(u64)));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + std::size_t{k} * sizeof(u64)));
    acc = _mm_or_si128(acc, _mm_xor_si128(va, vb));
  }
  bool equal = _mm_movemask_epi8(_mm_cmpeq_epi8(acc, _mm_setzero_si128())) == 0xFFFF;
  if constexpr (N % 2 == 1) {
    u64 wa, wb;
    std::memcpy(&wa, pa + std::size_t{N - 1} * sizeof(u64), sizeof(u64));
    std::memcpy(&wb, pb + std::size_t{N - 1} * sizeof(u64), sizeof(u64));
    equal = equal && wa == wb;
  }
  return equal;
}

template <unsigned N>
__attribute__((target("avx2"))) inline bool words_equal_fixed_avx2(const void* a,
                                                                   const void* b) {
  const unsigned char* pa = static_cast<const unsigned char*>(a);
  const unsigned char* pb = static_cast<const unsigned char*>(b);
  __m256i acc = _mm256_setzero_si256();
  for (unsigned k = 0; k + 4 <= N; k += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa + std::size_t{k} * sizeof(u64)));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + std::size_t{k} * sizeof(u64)));
    acc = _mm256_or_si256(acc, _mm256_xor_si256(va, vb));
  }
  bool equal = _mm256_testz_si256(acc, acc) != 0;
  if constexpr (N % 4 >= 2) {
    constexpr std::size_t kAt = (N / 4) * 4;
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + kAt * sizeof(u64)));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + kAt * sizeof(u64)));
    const __m128i x = _mm_xor_si128(va, vb);
    equal = equal && _mm_movemask_epi8(_mm_cmpeq_epi8(x, _mm_setzero_si128())) == 0xFFFF;
  }
  if constexpr (N % 2 == 1) {
    u64 wa, wb;
    std::memcpy(&wa, pa + std::size_t{N - 1} * sizeof(u64), sizeof(u64));
    std::memcpy(&wb, pb + std::size_t{N - 1} * sizeof(u64), sizeof(u64));
    equal = equal && wa == wb;
  }
  return equal;
}

#endif  // SAFEDM_SIMD_X86

// ---- dispatch --------------------------------------------------------------

using WordsEqualFn = bool (*)(const void*, const void*, unsigned);
using MismatchBitsFn = u64 (*)(const u64*, const u64*, const u8*, const u8*, unsigned);

/// Resolve once per chunk/scan and call through the pointer: the hot loops
/// hoist the dispatch out of their per-cycle bodies.
inline WordsEqualFn words_equal_fn(Kernel kernel) {
#if SAFEDM_SIMD_X86
  if (kernel == Kernel::kAvx2) return &words_equal_avx2;
  if (kernel == Kernel::kSse2) return &words_equal_sse2;
#endif
  (void)kernel;
  return &words_equal_portable;
}

inline MismatchBitsFn mismatch_bits_fn(Kernel kernel) {
#if SAFEDM_SIMD_X86
  if (kernel == Kernel::kAvx2) return &mismatch_bits_avx2;
  if (kernel == Kernel::kSse2) return &mismatch_bits_sse2;
#endif
  (void)kernel;
  return &mismatch_bits_portable;
}

using WordsEqualFixedFn = bool (*)(const void*, const void*);

/// Fixed-count variant of words_equal_fn: the word count is baked into the
/// resolved pointer, so the callee is straight-line code with no loop.
template <unsigned N>
inline WordsEqualFixedFn words_equal_fixed_fn(Kernel kernel) {
#if SAFEDM_SIMD_X86
  if (kernel == Kernel::kAvx2) return &words_equal_fixed_avx2<N>;
  if (kernel == Kernel::kSse2) return &words_equal_fixed_sse2<N>;
#endif
  (void)kernel;
  return &words_equal_fixed_portable<N>;
}

/// Convenience single-call forms (dispatch per call; fine off the hot path).
inline bool words_equal(const void* a, const void* b, unsigned n) {
  return words_equal_fn(active_kernel())(a, b, n);
}

inline u64 mismatch_bits(const u64* av, const u64* bv, const u8* ae, const u8* be,
                         unsigned n) {
  return mismatch_bits_fn(active_kernel())(av, bv, ae, be, n);
}

}  // namespace safedm::monitor::simd
