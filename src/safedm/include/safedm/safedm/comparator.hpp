// Incremental diversity comparator (the per-cycle hot path of the
// monitor). Real SafeDM hardware compares the full signatures in one
// cycle because only one sample per port FIFO changes per clock; this
// software model exploits the same incrementality.
//
// DS bookkeeping: one mismatch bitmask per port (one 64-bit word per 64
// window positions — depths beyond 64 widen to multiple words instead of
// losing the fast path), bit i set when the two cores' logical FIFO
// position i (0 = oldest) holds differing samples. When both pipelines
// shift, each mask shifts down by one (the oldest pair ages out) and the
// newest pair's comparison enters at the top — O(ports) work per cycle.
// When the cores' hold signals diverge the windows de-align and the
// comparator falls back to one full realignment scan, bit-sliced over the
// generators' SoA value/enable planes via the runtime-dispatched
// simd::mismatch_bits kernel; the common both-shift / both-hold cases
// stay on the fast path. The masks index logical window positions (each
// generator tracks its own ring offset via its shift count), so alignment
// recovers automatically once both windows again hold identical
// histories.
//
// IS bookkeeping: the verdict is recomputed only when either core's
// pipeline-stage snapshot version changed; held pipelines reuse it.
//
// CompareMode::kCrc32 routes through the generators' dirty-bit-cached
// CRCs instead, preserving the compressed compare's collision semantics
// (the A2 ablation's false-negative risk).
#pragma once

#include <vector>

#include "safedm/safedm/signature.hpp"
#include "safedm/safedm/simd.hpp"

namespace safedm::monitor {

class DiversityComparator {
 public:
  DiversityComparator(const SignatureGenerator& a, const SignatureGenerator& b);

  /// Re-derive all bookkeeping from the generators' current state (after a
  /// generator reset, or to attach mid-stream).
  void resync();

  /// Advance one cycle; call after both generators captured their frames.
  /// Inline: this runs once per simulated cycle and the common both-shift /
  /// both-hold cases must stay a handful of instructions.
  void update() {
    const u64 sa = a_->shift_count();
    const u64 sb = b_->shift_count();
    const u64 da = sa - seen_shift_a_;
    const u64 db = sb - seen_shift_b_;
    seen_shift_a_ = sa;
    seen_shift_b_ = sb;

    if (da == 1 && db == 1) {
      if (mask_words_ == 1) {
        // Both shifted: every logical position ages down by one; the
        // evicted (oldest) pair falls off the bottom of each mask and the
        // newly inserted pair is compared at the top. O(ports) total, on
        // the SoA planes with the ring offset computed once.
        const unsigned top = depth_ - 1;
        const unsigned oa = (static_cast<unsigned>(sa) - 1) & ring_mask_;
        const unsigned ob = (static_cast<unsigned>(sb) - 1) & ring_mask_;
        u64* masks = port_mismatch_.data();
        u64 agg = 0;
        for (unsigned p = 0; p < ports_; ++p) {
          const unsigned ia = p * stride_ + oa;
          const unsigned ib = p * stride_ + ob;
          u64 mask = masks[p] >> 1;
          mask |= static_cast<u64>((a_values_[ia] != b_values_[ib]) |
                                   (a_enables_[ia] != b_enables_[ib]))
                  << top;
          masks[p] = mask;
          agg |= mask;
        }
        mismatch_agg_ = agg;
      } else {
        // depth > 64: same aging, across multiple mask words per port.
        shift_insert_multiword(sa, sb);
      }
      if (!crc_mode_) ds_match_ = mismatch_agg_ == 0;
      else refresh_data_verdict();
      ++stats_.fast_updates;
    } else if (da == 0 && db == 0) {
      // Both held: window contents unchanged, verdict carries over.
      ++stats_.hold_reuses;
    } else {
      // Hold signals diverged (or a multi-shift gap): the windows
      // de-aligned relative to each other, so realign with one full scan.
      rescan_data();
      refresh_data_verdict();
      ++stats_.realign_scans;
    }

    // IS verdict. Raw per-stage mode: one flat word compare of the packed
    // snapshots, every cycle — cheaper than tracking whether they changed.
    // Other modes gate the (CRC / flat-list) recompute on the generators'
    // stage versions so held pipelines reuse the verdict.
    if (raw_perstage_) {
      // Branchless xor-reduce beats a library memcmp at this size.
      const SignatureGenerator::PackedStages& pa = a_->packed_stages();
      const SignatureGenerator::PackedStages& pb = b_->packed_stages();
      u64 diff = 0;
      for (unsigned k = 0; k < SignatureGenerator::kStageSlots; ++k) diff |= pa[k] ^ pb[k];
      is_match_ = diff == 0;
      ++stats_.is_recomputes;
    } else {
      const u64 va = a_->stage_version();
      const u64 vb = b_->stage_version();
      if (va != seen_stage_a_ || vb != seen_stage_b_) {
        seen_stage_a_ = va;
        seen_stage_b_ = vb;
        ++stats_.is_recomputes;
        recompute_instruction_verdict();
      }
    }
  }

  bool ds_match() const { return ds_match_; }
  bool is_match() const { return is_match_; }

  // ---- batched fast-path hooks (SafeDm::on_cycles) ------------------------
  //
  // The chunk loop owns the shift cursors locally and calls exactly one of
  // step_shift / step_realign per shifted cycle (both-held cycles touch
  // nothing; their count is handed to batch_commit). Contract: raw compare
  // mode, single-word masks (depth <= 64); for step_realign the caller has
  // already written the cycle's samples into both generators' ring planes.
  // batch_commit runs once per chunk, after the generators' own
  // batch_commit, to sync cursors and fold in the amortized stats.

  /// Both cores shifted: age the masks and insert the newest pair straight
  /// from the tap frames (no ring read). Returns the DS verdict.
  bool step_shift(const core::CoreTapFrame& fa, const core::CoreTapFrame& fb) {
    const unsigned top = depth_ - 1;
    u64* masks = port_mismatch_.data();
    u64 agg = 0;
    for (unsigned p = 0; p < ports_; ++p) {
      u64 mask = masks[p] >> 1;
      mask |= static_cast<u64>((fa.port[p].value != fb.port[p].value) |
                               (fa.port[p].enable != fb.port[p].enable))
              << top;
      masks[p] = mask;
      agg |= mask;
    }
    mismatch_agg_ = agg;
    ds_match_ = agg == 0;
    ++stats_.fast_updates;
    return ds_match_;
  }

  /// step_shift with the port count baked in at compile time: the chunk
  /// loop dispatches once on config_.num_ports, and the constant trip
  /// count lets the compiler fully unroll the mask update alongside the
  /// caller's ring-plane writes (which read the same frame ports).
  template <unsigned P>
  bool step_shift_fixed(const core::CoreTapFrame& fa, const core::CoreTapFrame& fb) {
    const unsigned top = depth_ - 1;
    u64* masks = port_mismatch_.data();
    u64 agg = 0;
    for (unsigned p = 0; p < P; ++p) {  // constexpr bound: fully unrolled
      u64 mask = masks[p] >> 1;
      mask |= static_cast<u64>((fa.port[p].value != fb.port[p].value) |
                               (fa.port[p].enable != fb.port[p].enable))
              << top;
      masks[p] = mask;
      agg |= mask;
    }
    mismatch_agg_ = agg;
    ds_match_ = agg == 0;
    ++stats_.fast_updates;
    return ds_match_;
  }

  /// Hold signals diverged mid-batch: realign with a full bit-sliced scan
  /// at the caller's explicit shift cursors (the generators' own cursors
  /// lag until batch_commit). Returns the DS verdict.
  bool step_realign(u64 sa, u64 sb);

  /// End of chunk: sync cursors to the (already batch-committed)
  /// generators, fold in per-chunk stats, and install the final IS verdict.
  void batch_commit(u64 hold_reuses, u64 is_recomputes, bool is_match) {
    seen_shift_a_ = a_->shift_count();
    seen_shift_b_ = b_->shift_count();
    seen_stage_a_ = a_->stage_version();
    seen_stage_b_ = b_->stage_version();
    stats_.hold_reuses += hold_reuses;
    stats_.is_recomputes += is_recomputes;
    is_match_ = is_match;
  }

  /// Fast-path / fallback accounting (simulation observability only).
  struct Stats {
    u64 fast_updates = 0;    // O(ports) incremental steps
    u64 hold_reuses = 0;     // both held: verdict carried over unchanged
    u64 realign_scans = 0;   // divergent holds: full window rescan
    u64 is_recomputes = 0;   // stage snapshot changed on either core
  };
  const Stats& stats() const { return stats_; }

  /// Only the stats are stored: every mask/verdict/alignment field is a
  /// pure function of the two generators' state, so restore (called after
  /// the generators have been restored) is resync() + stats. This is the
  /// "make hidden state re-bindable" case: the raw sample pointers taken
  /// at construction stay valid because generator restore never
  /// reallocates its rings.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  void rescan_data();
  void rescan_at(u64 sa, u64 sb);
  void scan_port(unsigned p, u64 sa, u64 sb, u64* out) const;
  void shift_insert_multiword(u64 sa, u64 sb);
  void refresh_data_verdict();
  void recompute_instruction_verdict();

  // Everything except stats_ is derived from the attached generators and
  // their (separately snapshotted) rings; restore_state rebuilds it all via
  // resync(), so each field carries a no-snapshot annotation for safedm-lint.
  const SignatureGenerator* a_;  // lint: no-snapshot(wiring, set by attach())
  const SignatureGenerator* b_;  // lint: no-snapshot(wiring, set by attach())
  // Stable SoA fast-path views into the generators' ring planes.
  const u64* a_values_;   // lint: no-snapshot(stable raw fast-path view into a_)
  const u64* b_values_;   // lint: no-snapshot(stable raw fast-path view into b_)
  const u8* a_enables_;   // lint: no-snapshot(stable raw fast-path view into a_)
  const u8* b_enables_;   // lint: no-snapshot(stable raw fast-path view into b_)
  unsigned stride_;     // lint: no-snapshot(padded per-port ring span, from generator geometry)
  unsigned ring_mask_;  // lint: no-snapshot(stride_ - 1, derived)
  unsigned depth_;      // lint: no-snapshot(generator geometry, derived)
  unsigned ports_;      // lint: no-snapshot(generator geometry, derived)
  bool crc_mode_;       // lint: no-snapshot(generator config, derived)
  bool raw_perstage_;   // lint: no-snapshot(raw compare + per-stage IS verdict inlines, derived)
  unsigned mask_words_; // lint: no-snapshot(ceil(depth/64), derived)

  // bit i of word i/64: logical pos i differs; ports_ x mask_words_,
  // port-major.
  std::vector<u64> port_mismatch_;  // lint: no-snapshot(rebuilt by resync())
  u64 mismatch_agg_ = 0;  // lint: no-snapshot(OR of all port masks, rebuilt by resync())

  u64 seen_shift_a_ = 0;         // lint: no-snapshot(incremental cursor, rebuilt by resync())
  u64 seen_shift_b_ = 0;         // lint: no-snapshot(incremental cursor, rebuilt by resync())
  u64 seen_stage_a_ = ~u64{0};   // lint: no-snapshot(incremental cursor, rebuilt by resync())
  u64 seen_stage_b_ = ~u64{0};   // lint: no-snapshot(incremental cursor, rebuilt by resync())

  bool ds_match_ = true;  // lint: no-snapshot(verdict, recomputed by resync())
  bool is_match_ = true;  // lint: no-snapshot(verdict, recomputed by resync())
  Stats stats_{};
};

}  // namespace safedm::monitor
