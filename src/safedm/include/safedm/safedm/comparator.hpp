// Incremental diversity comparator (the per-cycle hot path of the
// monitor). Real SafeDM hardware compares the full signatures in one
// cycle because only one sample per port FIFO changes per clock; this
// software model exploits the same incrementality.
//
// DS bookkeeping: one mismatch bitmask per port, bit i set when the two
// cores' logical FIFO position i (0 = oldest) holds differing samples.
// When both pipelines shift, each mask shifts down by one (the oldest pair
// ages out) and the newest pair's comparison enters at the top — O(ports)
// work per cycle. When the cores' hold signals diverge the windows
// de-align and the comparator falls back to one full realignment scan;
// the common both-shift / both-hold cases stay on the fast path. The
// masks index logical window positions (each generator tracks its own
// ring offset via its shift count), so alignment recovers automatically
// once both windows again hold identical histories.
//
// IS bookkeeping: the verdict is recomputed only when either core's
// pipeline-stage snapshot version changed; held pipelines reuse it.
//
// CompareMode::kCrc32 routes through the generators' dirty-bit-cached
// CRCs instead, preserving the compressed compare's collision semantics
// (the A2 ablation's false-negative risk).
#pragma once

#include "safedm/safedm/signature.hpp"

namespace safedm::monitor {

class DiversityComparator {
 public:
  DiversityComparator(const SignatureGenerator& a, const SignatureGenerator& b);

  /// Re-derive all bookkeeping from the generators' current state (after a
  /// generator reset, or to attach mid-stream).
  void resync();

  /// Advance one cycle; call after both generators captured their frames.
  /// Inline: this runs once per simulated cycle and the common both-shift /
  /// both-hold cases must stay a handful of instructions.
  void update() {
    const u64 sa = a_->shift_count();
    const u64 sb = b_->shift_count();
    const u64 da = sa - seen_shift_a_;
    const u64 db = sb - seen_shift_b_;
    seen_shift_a_ = sa;
    seen_shift_b_ = sb;

    if (da == 1 && db == 1 && incremental_ok_) {
      // Both shifted: every logical position ages down by one; the evicted
      // (oldest) pair falls off the bottom of each mask and the newly
      // inserted pair is compared at the top. O(ports) total, on raw
      // storage pointers with the ring offset computed once.
      const unsigned top = depth_ - 1;
      const core::PortTap* ta = a_samples_ + ((static_cast<unsigned>(sa) - 1) & ring_mask_);
      const core::PortTap* tb = b_samples_ + ((static_cast<unsigned>(sb) - 1) & ring_mask_);
      u64 agg = 0;
      for (unsigned p = 0; p < ports_; ++p, ta += stride_, tb += stride_) {
        u64 mask = port_mismatch_[p] >> 1;
        mask |= static_cast<u64>((ta->value != tb->value) | (ta->enable != tb->enable))
                << top;
        port_mismatch_[p] = mask;
        agg |= mask;
      }
      mismatch_agg_ = agg;
      if (!crc_mode_) ds_match_ = agg == 0;
      else refresh_data_verdict();
      ++stats_.fast_updates;
    } else if (da == 0 && db == 0) {
      // Both held: window contents unchanged, verdict carries over.
      ++stats_.hold_reuses;
    } else {
      // Hold signals diverged (or a multi-shift gap): the windows
      // de-aligned relative to each other, so realign with one full scan.
      rescan_data();
      refresh_data_verdict();
      ++stats_.realign_scans;
    }

    // IS verdict. Raw per-stage mode: one flat word compare of the packed
    // snapshots, every cycle — cheaper than tracking whether they changed.
    // Other modes gate the (CRC / flat-list) recompute on the generators'
    // stage versions so held pipelines reuse the verdict.
    if (raw_perstage_) {
      // Branchless xor-reduce beats a library memcmp at this size.
      const SignatureGenerator::PackedStages& pa = a_->packed_stages();
      const SignatureGenerator::PackedStages& pb = b_->packed_stages();
      u64 diff = 0;
      for (unsigned k = 0; k < SignatureGenerator::kStageSlots; ++k) diff |= pa[k] ^ pb[k];
      is_match_ = diff == 0;
      ++stats_.is_recomputes;
    } else {
      const u64 va = a_->stage_version();
      const u64 vb = b_->stage_version();
      if (va != seen_stage_a_ || vb != seen_stage_b_) {
        seen_stage_a_ = va;
        seen_stage_b_ = vb;
        ++stats_.is_recomputes;
        recompute_instruction_verdict();
      }
    }
  }

  bool ds_match() const { return ds_match_; }
  bool is_match() const { return is_match_; }

  /// Fast-path / fallback accounting (simulation observability only).
  struct Stats {
    u64 fast_updates = 0;    // O(ports) incremental steps
    u64 hold_reuses = 0;     // both held: verdict carried over unchanged
    u64 realign_scans = 0;   // divergent holds: full window rescan
    u64 is_recomputes = 0;   // stage snapshot changed on either core
  };
  const Stats& stats() const { return stats_; }

  /// Only the stats are stored: every mask/verdict/alignment field is a
  /// pure function of the two generators' state, so restore (called after
  /// the generators have been restored) is resync() + stats. This is the
  /// "make hidden state re-bindable" case: the raw sample pointers taken
  /// at construction stay valid because generator restore never
  /// reallocates its rings.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  void rescan_data();
  void refresh_data_verdict();
  void recompute_instruction_verdict();

  // Everything except stats_ is derived from the attached generators and
  // their (separately snapshotted) rings; restore_state rebuilds it all via
  // resync(), so each field carries a no-snapshot annotation for safedm-lint.
  const SignatureGenerator* a_;     // lint: no-snapshot(wiring, set by attach())
  const SignatureGenerator* b_;     // lint: no-snapshot(wiring, set by attach())
  const core::PortTap* a_samples_;  // lint: no-snapshot(stable raw fast-path view into a_)
  const core::PortTap* b_samples_;  // lint: no-snapshot(stable raw fast-path view into b_)
  unsigned stride_;     // lint: no-snapshot(padded per-port ring span, from generator geometry)
  unsigned ring_mask_;  // lint: no-snapshot(stride_ - 1, derived)
  unsigned depth_;      // lint: no-snapshot(generator geometry, derived)
  unsigned ports_;      // lint: no-snapshot(generator geometry, derived)
  bool crc_mode_;       // lint: no-snapshot(generator config, derived)
  bool raw_perstage_;   // lint: no-snapshot(raw compare + per-stage IS verdict inlines, derived)
  bool incremental_ok_; // lint: no-snapshot(mismatch masks fit in 64 bits, derived)

  // bit i: logical pos i differs
  std::array<u64, core::kMaxPorts> port_mismatch_{};  // lint: no-snapshot(rebuilt by resync())
  u64 mismatch_agg_ = 0;  // lint: no-snapshot(OR of all port masks, rebuilt by resync())

  u64 seen_shift_a_ = 0;         // lint: no-snapshot(incremental cursor, rebuilt by resync())
  u64 seen_shift_b_ = 0;         // lint: no-snapshot(incremental cursor, rebuilt by resync())
  u64 seen_stage_a_ = ~u64{0};   // lint: no-snapshot(incremental cursor, rebuilt by resync())
  u64 seen_stage_b_ = ~u64{0};   // lint: no-snapshot(incremental cursor, rebuilt by resync())

  bool ds_match_ = true;  // lint: no-snapshot(verdict, recomputed by resync())
  bool is_match_ = true;  // lint: no-snapshot(verdict, recomputed by resync())
  Stats stats_{};
};

}  // namespace safedm::monitor
