// SafeDM: the hardware Diversity Monitor (paper Section III/IV).
//
// Consumes the replicas' per-cycle tap frames, maintains a
// SignatureGenerator per replica, and reports lack of diversity — a cycle
// in which *both* the Data Signatures and the Instruction Signatures of a
// replica pair match. SafeDM can only raise false positives (unmonitored
// diversity sources), never false negatives (paper III-A): if any monitored
// state differs, the cycle is diverse.
//
// Beyond the paper's two-core monitor, one SafeDm instance can watch an
// N-replica redundancy group (2..8): it then keeps a full pairwise
// diversity matrix — one DiversityComparator and one PairCounters cell per
// unordered replica pair — and lowers a group VerdictPolicy (any_pair /
// all_pairs / quorum k) to a threshold over the per-pair verdicts for the
// group-level counters, histograms, and interrupt. N == 2 is bit-exact
// with (and as fast as) the original pairwise monitor.
//
// The block also contains the two evaluation-support modules of the
// paper's integration (Fig. 4): the Instruction diff (staggering counter)
// and the History module (episode-length histograms), plus the APB slave
// register file through which an RTOS programs and polls the monitor.
#pragma once

#include <functional>
#include <utility>

#include "safedm/bus/apb.hpp"
#include "safedm/common/histogram.hpp"
#include "safedm/safedm/comparator.hpp"
#include "safedm/safedm/signature.hpp"
#include "safedm/soc/soc.hpp"

namespace safedm::monitor {

/// Staggering counter (paper IV-B3), generalized to N replicas: tracks one
/// cumulative post-prelude commit count per replica so any pair's signed
/// program-position distance is cum[i] - cum[j]. Optionally ignores each
/// replica's first `ignore` commits so a nop prelude does not distort the
/// distance. The classic two-core diff is pair (0, 1).
class InstructionDiff {
 public:
  /// Set the replica count (2..kMaxReplicas); resets all state.
  void configure(unsigned n_replicas);
  void set_ignore(unsigned replica, u64 count);
  void on_commits(unsigned commits0, unsigned commits1) {
    if ((ignore_[0] | ignore_[1]) == 0) {  // steady state: no prelude left
      cum_[0] += commits0;
      cum_[1] += commits1;
      return;
    }
    on_commits_prelude(commits0, commits1);
  }
  /// N-replica per-cycle path: one commit count per replica.
  void on_commits_n(const unsigned* commits, unsigned n_replicas);
  void reset();

  /// Batched path: fold a chunk's per-replica commit sums in. Only legal
  /// once armed (no prelude left), which the batch eligibility check
  /// guarantees.
  void batch_commit(u64 add0, u64 add1) {
    cum_[0] += add0;
    cum_[1] += add1;
  }
  void batch_commit_n(const u64* adds, unsigned n_replicas);

  i64 diff() const { return pair_diff(0, 1); }
  /// Signed committed-instruction distance between replicas i and j.
  i64 pair_diff(unsigned i, unsigned j) const {
    return static_cast<i64>(cum_[i] - cum_[j]);
  }
  /// Cumulative post-prelude commits of one replica (batched-path rebase).
  u64 cumulative(unsigned replica) const { return cum_[replica]; }
  /// True once every replica has consumed its ignored prelude commits.
  bool armed() const {
    u64 pending = 0;
    for (unsigned r = 0; r < n_; ++r) pending |= ignore_[r];
    return pending == 0;
  }

  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  void on_commits_prelude(unsigned commits0, unsigned commits1);

  unsigned n_ = 2;
  std::array<u64, kMaxReplicas> cum_{};
  std::array<u64, kMaxReplicas> ignore_{};
};

struct SafeDmCounters {
  u64 monitored_cycles = 0;   // cycles with both cores running, monitor enabled
  u64 nodiv_cycles = 0;       // DS and IS both matched
  u64 ds_match_cycles = 0;
  u64 is_match_cycles = 0;
  u64 zero_stag_cycles = 0;   // instruction diff == 0 (once armed)
  u64 interrupts = 0;         // rising edges of the interrupt line

  // Diversity-magnitude extension (config.track_distance):
  u64 distance_sum = 0;       // sum over cycles of DS+IS Hamming distance
  u64 distance_min = ~u64{0}; // smallest per-cycle distance observed
  u64 distance_max = 0;

  double mean_distance() const {
    return monitored_cycles
               ? static_cast<double>(distance_sum) / static_cast<double>(monitored_cycles)
               : 0.0;
  }
};

/// One cell of the pairwise diversity matrix: the per-pair slice of the
/// group counters. For a 2-replica monitor the single pair *is* the group,
/// so these equal the corresponding SafeDmCounters fields.
struct PairCounters {
  u64 nodiv_cycles = 0;
  u64 ds_match_cycles = 0;
  u64 is_match_cycles = 0;
  u64 zero_stag_cycles = 0;
  u64 distance_sum = 0;  // DS+IS Hamming distance (config.track_distance)
  u64 distance_min = ~u64{0};
  u64 distance_max = 0;
};

/// APB register map (byte offsets; all registers 32-bit).
namespace reg {
inline constexpr u32 kCtrl = 0x00;        // [0] enable, [2:1] report mode, [3] w1: reset, [4] w1: clear irq
inline constexpr u32 kStatus = 0x04;      // [0] lacking diversity now, [1] irq pending
inline constexpr u32 kNodivLo = 0x08;
inline constexpr u32 kNodivHi = 0x0C;
inline constexpr u32 kThreshold = 0x10;
inline constexpr u32 kMonitoredLo = 0x14;
inline constexpr u32 kMonitoredHi = 0x18;
inline constexpr u32 kInstDiff = 0x1C;    // signed
inline constexpr u32 kZeroStagLo = 0x20;
inline constexpr u32 kZeroStagHi = 0x24;
inline constexpr u32 kDsMatchLo = 0x28;
inline constexpr u32 kDsMatchHi = 0x2C;
inline constexpr u32 kIsMatchLo = 0x30;
inline constexpr u32 kIsMatchHi = 0x34;
inline constexpr u32 kIgnore0 = 0x38;     // prelude commits to ignore, core 0
inline constexpr u32 kIgnore1 = 0x3C;
inline constexpr u32 kHistSelect = 0x40;  // [7:0] bin, [9:8] histogram (0=nodiv,1=ds,2=is)
inline constexpr u32 kHistData = 0x44;    // selected bin count (saturating u32)
inline constexpr u32 kGeometry = 0x48;    // [7:0] n, [15:8] m, [23:16] o, [31:24] p
inline constexpr u32 kGroup = 0x4C;       // [7:0] replicas, [15:8] pairs, [17:16] policy, [31:18] quorum k
inline constexpr u32 kPairSelect = 0x50;  // [7:0] pair index, [9:8] counter (0=nodiv,1=ds,2=is,3=zerostag)
inline constexpr u32 kPairData = 0x54;    // selected pair counter (saturating u32)
inline constexpr u32 kSize = 0x80;        // register file span
}  // namespace reg

static_assert(kMaxReplicas == soc::kMaxGroupReplicas,
              "monitor and SoC must agree on the maximum group size");

class SafeDm final : public soc::CycleObserver, public bus::ApbDevice {
 public:
  explicit SafeDm(const SafeDmConfig& config);
  // The comparators alias the signature generators; copying would leave
  // them dangling.
  SafeDm(const SafeDm&) = delete;
  SafeDm& operator=(const SafeDm&) = delete;

  // ---- programming interface (RTOS-facing; also reachable via APB) -------
  void enable(bool on);
  bool enabled() const { return enabled_; }
  void set_report_mode(ReportMode mode) { config_.report = mode; }
  void set_interrupt_threshold(u32 threshold) { config_.interrupt_threshold = threshold; }
  /// Program the prelude lengths so staggering nops don't skew the diff.
  void set_prelude_ignore(unsigned replica, u64 commits);
  void clear_interrupt();
  void reset();

  /// Invoked on the rising edge of the interrupt line (the RTOS hook).
  void set_interrupt_handler(std::function<void(u64 cycle)> handler);

  // ---- observation ---------------------------------------------------------
  void on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                const core::CoreTapFrame& frame1) override;

  /// Batched delivery (MpSoc observer_batch > 1, or direct driving from
  /// benches): processes `n` consecutive cycles with per-cycle semantics —
  /// the verdict stream, counters, histograms, IRQ timing, and snapshot
  /// bytes are bit-identical to n on_cycle calls, independent of batch
  /// boundaries. Eligible spans (raw per-stage incremental mode, depth
  /// <= 64, enabled + armed, no halted frames) run a chunked fast loop
  /// that compares stage words via one SIMD op, updates the bit-sliced
  /// mismatch masks in place, and commits generator/comparator/counter
  /// state once per chunk; everything else falls back to on_cycle.
  void on_cycles(u64 first_cycle, const core::CoreTapFrame* frame0,
                 const core::CoreTapFrame* frame1, unsigned n) override;

  /// N-replica group delivery (config.num_replicas > 2; 2-replica groups
  /// forward to the pairwise hooks above, so the paper's monitor keeps its
  /// exact legacy hot path). Updates every cell of the pairwise diversity
  /// matrix, then lowers the configured VerdictPolicy to a threshold over
  /// the per-pair verdicts for the group counters/histograms/IRQ.
  void on_group_cycle(u64 cycle, const core::CoreTapFrame* const* frames,
                      unsigned n_replicas) override;
  /// Batched group delivery: per-cycle-exact, like on_cycles.
  void on_group_cycles(u64 first_cycle, const core::CoreTapFrame* const* frames,
                       unsigned n_replicas, unsigned n_cycles) override;

  /// Optional per-cycle verdict sink: when set, every processed cycle
  /// appends lacking_diversity_now() (false for unmonitored cycles) —
  /// the batched replacement for polling after each step.
  void set_verdict_trail(std::vector<bool>* trail) { trail_ = trail; }

  /// Flush any open no-diversity episode into the histograms (call when an
  /// experiment window ends).
  void finalize();

  // ---- results ---------------------------------------------------------------
  const SafeDmCounters& counters() const { return counters_; }
  bool lacking_diversity_now() const { return lacking_now_; }
  bool ds_matched_now() const { return ds_match_now_; }
  bool is_matched_now() const { return is_match_now_; }
  bool interrupt_pending() const { return irq_pending_; }
  i64 instruction_diff() const { return inst_diff_.diff(); }
  const Histogram& nodiv_history() const { return hist_nodiv_; }
  const Histogram& ds_history() const { return hist_ds_; }
  const Histogram& is_history() const { return hist_is_; }
  /// Per-cycle signature Hamming-distance distribution (track_distance).
  const Histogram& distance_history() const { return hist_distance_; }
  const SafeDmConfig& config() const { return config_; }
  const SignatureGenerator& signatures(unsigned replica) const;
  /// Incremental-comparator fast-path/fallback accounting (pair 0).
  const DiversityComparator::Stats& comparator_stats() const { return pairs_[0].stats(); }

  // ---- pairwise diversity matrix ----------------------------------------
  unsigned num_replicas() const { return config_.num_replicas; }
  unsigned num_pairs() const { return static_cast<unsigned>(pairs_.size()); }
  /// Replica indices (i, j), i < j, of matrix cell `pair`; cells are in
  /// lexicographic order: (0,1), (0,2), ..., (n-2,n-1).
  std::pair<unsigned, unsigned> pair_replicas(unsigned pair) const;
  /// Matrix cell counters. For 2-replica monitors the single pair is the
  /// group, so the cell is synthesized from the group counters.
  PairCounters pair_counters(unsigned pair) const;
  /// Per-pair fast-path/fallback accounting.
  const DiversityComparator::Stats& pair_stats(unsigned pair) const;
  /// The lowered verdict-policy threshold: matched pairs needed for a
  /// group-level match (any_pair -> 1, all_pairs -> C(n,2), quorum -> k).
  unsigned verdict_threshold() const { return needed_; }

  /// Total monitor storage bits (all replicas' signature FIFOs); feeds the
  /// hardware cost model.
  u64 storage_bits() const;

  // ---- APB slave ---------------------------------------------------------------
  u32 apb_read(u32 offset) override;
  void apb_write(u32 offset, u32 value) override;

  // ---- snapshot/restore --------------------------------------------------------
  /// Serializes everything on_cycle/apb_write can mutate — including the
  /// runtime-writable config bits (report mode, interrupt threshold) —
  /// plus both signature generators, the comparator, counters, episode
  /// runs, and histograms. The interrupt handler is a binding, not state:
  /// the owner re-attaches it after restore if needed.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  void update_interrupt(u64 cycle);
  bool batch_fast_eligible() const;
  void process_chunk(u64 first_cycle, const core::CoreTapFrame* frame0,
                     const core::CoreTapFrame* frame1, unsigned m);
  /// Chunk loop body with the port count baked in (P == 0: runtime count).
  /// process_chunk dispatches on config_.num_ports so the per-cycle port
  /// loops fully unroll; defined in monitor.cpp (only instantiated there).
  template <unsigned P>
  void process_chunk_ports(u64 first_cycle, const core::CoreTapFrame* frame0,
                           const core::CoreTapFrame* frame1, unsigned m);
  /// N > 2 per-cycle matrix update (the group analogue of on_cycle's body).
  void group_cycle(u64 cycle, const core::CoreTapFrame* const* frames);
  /// N > 2 batched chunk (the group analogue of process_chunk).
  void process_group_chunk(u64 first_cycle, const core::CoreTapFrame* const* frames,
                           unsigned offset, unsigned m);

  SafeDmConfig config_;
  /// One generator per replica, one comparator per unordered replica pair
  /// (lexicographic order). Both vectors are sized in the constructor and
  /// never resized: the comparators hold pointers into sigs_.
  std::vector<SignatureGenerator> sigs_;
  std::vector<DiversityComparator> pairs_;
  std::vector<std::pair<u8, u8>> pair_replicas_;  // lint: no-snapshot(derived from num_replicas)
  unsigned needed_ = 1;  // lint: no-snapshot(lowered verdict policy, derived from config)
  /// Matrix cell counters, N > 2 only (for pairs the group counters serve).
  std::vector<PairCounters> pair_counters_;
  InstructionDiff inst_diff_;
  bool enabled_ = false;
  std::array<bool, kMaxReplicas> seen_commit_{};
  bool lacking_now_ = false;
  bool ds_match_now_ = false;
  bool is_match_now_ = false;
  bool irq_pending_ = false;
  SafeDmCounters counters_;

  u64 nodiv_run_ = 0;
  u64 ds_run_ = 0;
  u64 is_run_ = 0;
  Histogram hist_nodiv_;
  Histogram hist_ds_;
  Histogram hist_is_;
  Histogram hist_distance_;

  u32 hist_select_ = 0;
  u32 pair_select_ = 0;
  std::function<void(u64)> irq_handler_;  // lint: no-snapshot(callback wiring, re-registered by owner)
  std::vector<bool>* trail_ = nullptr;    // lint: no-snapshot(observation sink wiring, re-attached by owner)
};

}  // namespace safedm::monitor
