// SafeDM: the hardware Diversity Monitor (paper Section III/IV).
//
// Consumes both cores' per-cycle tap frames, maintains a SignatureGenerator
// per core, and reports lack of diversity — a cycle in which *both* the
// Data Signatures and the Instruction Signatures of the two cores match.
// SafeDM can only raise false positives (unmonitored diversity sources),
// never false negatives (paper III-A): if any monitored state differs, the
// cycle is diverse.
//
// The block also contains the two evaluation-support modules of the
// paper's integration (Fig. 4): the Instruction diff (staggering counter)
// and the History module (episode-length histograms), plus the APB slave
// register file through which an RTOS programs and polls the monitor.
#pragma once

#include <functional>

#include "safedm/bus/apb.hpp"
#include "safedm/common/histogram.hpp"
#include "safedm/safedm/comparator.hpp"
#include "safedm/safedm/signature.hpp"
#include "safedm/soc/soc.hpp"

namespace safedm::monitor {

/// Staggering counter: +1 per core-0 commit, -1 per core-1 commit (paper
/// IV-B3). Optionally ignores each core's first `ignore` commits so that a
/// nop prelude does not distort the program-position distance.
class InstructionDiff {
 public:
  void set_ignore(unsigned core_index, u64 count);
  void on_commits(unsigned commits0, unsigned commits1) {
    if ((ignore_[0] | ignore_[1]) == 0) {  // steady state: no prelude left
      diff_ += static_cast<i64>(commits0) - static_cast<i64>(commits1);
      return;
    }
    on_commits_prelude(commits0, commits1);
  }
  void reset();

  /// Batched path: install the post-chunk diff. The chunk loop accumulates
  /// commit deltas locally; only legal once armed (no prelude left), which
  /// the batch eligibility check guarantees.
  void batch_commit(i64 diff) { diff_ = diff; }

  i64 diff() const { return diff_; }
  /// True once both cores have consumed their ignored prelude commits.
  bool armed() const { return ignore_[0] == 0 && ignore_[1] == 0; }

  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  void on_commits_prelude(unsigned commits0, unsigned commits1);

  i64 diff_ = 0;
  std::array<u64, 2> ignore_{0, 0};
};

struct SafeDmCounters {
  u64 monitored_cycles = 0;   // cycles with both cores running, monitor enabled
  u64 nodiv_cycles = 0;       // DS and IS both matched
  u64 ds_match_cycles = 0;
  u64 is_match_cycles = 0;
  u64 zero_stag_cycles = 0;   // instruction diff == 0 (once armed)
  u64 interrupts = 0;         // rising edges of the interrupt line

  // Diversity-magnitude extension (config.track_distance):
  u64 distance_sum = 0;       // sum over cycles of DS+IS Hamming distance
  u64 distance_min = ~u64{0}; // smallest per-cycle distance observed
  u64 distance_max = 0;

  double mean_distance() const {
    return monitored_cycles
               ? static_cast<double>(distance_sum) / static_cast<double>(monitored_cycles)
               : 0.0;
  }
};

/// APB register map (byte offsets; all registers 32-bit).
namespace reg {
inline constexpr u32 kCtrl = 0x00;        // [0] enable, [2:1] report mode, [3] w1: reset, [4] w1: clear irq
inline constexpr u32 kStatus = 0x04;      // [0] lacking diversity now, [1] irq pending
inline constexpr u32 kNodivLo = 0x08;
inline constexpr u32 kNodivHi = 0x0C;
inline constexpr u32 kThreshold = 0x10;
inline constexpr u32 kMonitoredLo = 0x14;
inline constexpr u32 kMonitoredHi = 0x18;
inline constexpr u32 kInstDiff = 0x1C;    // signed
inline constexpr u32 kZeroStagLo = 0x20;
inline constexpr u32 kZeroStagHi = 0x24;
inline constexpr u32 kDsMatchLo = 0x28;
inline constexpr u32 kDsMatchHi = 0x2C;
inline constexpr u32 kIsMatchLo = 0x30;
inline constexpr u32 kIsMatchHi = 0x34;
inline constexpr u32 kIgnore0 = 0x38;     // prelude commits to ignore, core 0
inline constexpr u32 kIgnore1 = 0x3C;
inline constexpr u32 kHistSelect = 0x40;  // [7:0] bin, [9:8] histogram (0=nodiv,1=ds,2=is)
inline constexpr u32 kHistData = 0x44;    // selected bin count (saturating u32)
inline constexpr u32 kGeometry = 0x48;    // [7:0] n, [15:8] m, [23:16] o, [31:24] p
inline constexpr u32 kSize = 0x80;        // register file span
}  // namespace reg

class SafeDm final : public soc::CycleObserver, public bus::ApbDevice {
 public:
  explicit SafeDm(const SafeDmConfig& config);
  // The comparator aliases sig0_/sig1_; copying would leave it dangling.
  SafeDm(const SafeDm&) = delete;
  SafeDm& operator=(const SafeDm&) = delete;

  // ---- programming interface (RTOS-facing; also reachable via APB) -------
  void enable(bool on);
  bool enabled() const { return enabled_; }
  void set_report_mode(ReportMode mode) { config_.report = mode; }
  void set_interrupt_threshold(u32 threshold) { config_.interrupt_threshold = threshold; }
  /// Program the prelude lengths so staggering nops don't skew the diff.
  void set_prelude_ignore(unsigned core_index, u64 commits);
  void clear_interrupt();
  void reset();

  /// Invoked on the rising edge of the interrupt line (the RTOS hook).
  void set_interrupt_handler(std::function<void(u64 cycle)> handler);

  // ---- observation ---------------------------------------------------------
  void on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                const core::CoreTapFrame& frame1) override;

  /// Batched delivery (MpSoc observer_batch > 1, or direct driving from
  /// benches): processes `n` consecutive cycles with per-cycle semantics —
  /// the verdict stream, counters, histograms, IRQ timing, and snapshot
  /// bytes are bit-identical to n on_cycle calls, independent of batch
  /// boundaries. Eligible spans (raw per-stage incremental mode, depth
  /// <= 64, enabled + armed, no halted frames) run a chunked fast loop
  /// that compares stage words via one SIMD op, updates the bit-sliced
  /// mismatch masks in place, and commits generator/comparator/counter
  /// state once per chunk; everything else falls back to on_cycle.
  void on_cycles(u64 first_cycle, const core::CoreTapFrame* frame0,
                 const core::CoreTapFrame* frame1, unsigned n) override;

  /// Optional per-cycle verdict sink: when set, every processed cycle
  /// appends lacking_diversity_now() (false for unmonitored cycles) —
  /// the batched replacement for polling after each step.
  void set_verdict_trail(std::vector<bool>* trail) { trail_ = trail; }

  /// Flush any open no-diversity episode into the histograms (call when an
  /// experiment window ends).
  void finalize();

  // ---- results ---------------------------------------------------------------
  const SafeDmCounters& counters() const { return counters_; }
  bool lacking_diversity_now() const { return lacking_now_; }
  bool ds_matched_now() const { return ds_match_now_; }
  bool is_matched_now() const { return is_match_now_; }
  bool interrupt_pending() const { return irq_pending_; }
  i64 instruction_diff() const { return inst_diff_.diff(); }
  const Histogram& nodiv_history() const { return hist_nodiv_; }
  const Histogram& ds_history() const { return hist_ds_; }
  const Histogram& is_history() const { return hist_is_; }
  /// Per-cycle signature Hamming-distance distribution (track_distance).
  const Histogram& distance_history() const { return hist_distance_; }
  const SafeDmConfig& config() const { return config_; }
  const SignatureGenerator& signatures(unsigned core_index) const;
  /// Incremental-comparator fast-path/fallback accounting.
  const DiversityComparator::Stats& comparator_stats() const { return comparator_.stats(); }

  /// Total monitor storage bits (both cores' signature FIFOs); feeds the
  /// hardware cost model.
  u64 storage_bits() const;

  // ---- APB slave ---------------------------------------------------------------
  u32 apb_read(u32 offset) override;
  void apb_write(u32 offset, u32 value) override;

  // ---- snapshot/restore --------------------------------------------------------
  /// Serializes everything on_cycle/apb_write can mutate — including the
  /// runtime-writable config bits (report mode, interrupt threshold) —
  /// plus both signature generators, the comparator, counters, episode
  /// runs, and histograms. The interrupt handler is a binding, not state:
  /// the owner re-attaches it after restore if needed.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  void update_interrupt(u64 cycle);
  bool batch_fast_eligible() const;
  void process_chunk(u64 first_cycle, const core::CoreTapFrame* frame0,
                     const core::CoreTapFrame* frame1, unsigned m);
  /// Chunk loop body with the port count baked in (P == 0: runtime count).
  /// process_chunk dispatches on config_.num_ports so the per-cycle port
  /// loops fully unroll; defined in monitor.cpp (only instantiated there).
  template <unsigned P>
  void process_chunk_ports(u64 first_cycle, const core::CoreTapFrame* frame0,
                           const core::CoreTapFrame* frame1, unsigned m);

  SafeDmConfig config_;
  SignatureGenerator sig0_;
  SignatureGenerator sig1_;
  DiversityComparator comparator_;  // observes sig0_/sig1_
  InstructionDiff inst_diff_;
  bool enabled_ = false;
  std::array<bool, 2> seen_commit_{false, false};
  bool lacking_now_ = false;
  bool ds_match_now_ = false;
  bool is_match_now_ = false;
  bool irq_pending_ = false;
  SafeDmCounters counters_;

  u64 nodiv_run_ = 0;
  u64 ds_run_ = 0;
  u64 is_run_ = 0;
  Histogram hist_nodiv_;
  Histogram hist_ds_;
  Histogram hist_is_;
  Histogram hist_distance_;

  u32 hist_select_ = 0;
  std::function<void(u64)> irq_handler_;  // lint: no-snapshot(callback wiring, re-registered by owner)
  std::vector<bool>* trail_ = nullptr;    // lint: no-snapshot(observation sink wiring, re-attached by owner)
};

}  // namespace safedm::monitor
