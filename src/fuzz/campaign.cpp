#include "safedm/fuzz/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "safedm/common/check.hpp"
#include "safedm/common/hash.hpp"
#include "safedm/common/thread_pool.hpp"

namespace safedm::fuzz {

namespace fs = std::filesystem;

void Corpus::add(std::string name, FuzzProgram program) {
  entries.push_back({std::move(name), std::move(program)});
}

void Corpus::load_dir(const std::string& dir) {
  SAFEDM_CHECK_MSG(fs::is_directory(dir), "fuzz corpus directory not found: " + dir);
  std::vector<fs::path> paths;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.is_regular_file() && e.path().extension() == ".fuzz") paths.push_back(e.path());
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) add(p.stem().string(), load_program(p.string()));
}

void Corpus::save_dir(const std::string& dir) const {
  fs::create_directories(dir);
  for (const CorpusEntry& e : entries) {
    save_program((fs::path(dir) / (e.name + ".fuzz")).string(), e.program);
    std::ofstream os(fs::path(dir) / (e.name + ".s"));
    SAFEDM_CHECK_MSG(static_cast<bool>(os), "cannot write repro .s under " + dir);
    os << to_assembly(e.program);
  }
}

u64 input_seed(u64 seed, unsigned round, unsigned index) {
  Fnv1a64 h;
  h.add(0x66757A7AULL);  // "fuzz"
  h.add(seed);
  h.add(round);
  h.add(index);
  return h.value();
}

namespace {

struct Job {
  FuzzProgram program;
  u64 seed = 0;
  u64 snapshot_cycle = 0;
};

/// All schedule decisions for one input, derived serially from its seed
/// against the round-start corpus (which the parallel phase never mutates).
Job build_job(const Corpus& corpus, const CampaignConfig& cfg, unsigned round, unsigned index) {
  Job job;
  job.seed = input_seed(cfg.seed, round, index);
  Xoshiro256 rng(job.seed);
  if (!corpus.entries.empty() && rng.chance(cfg.mutate_chance)) {
    job.program = corpus.entries[rng.below(corpus.entries.size())].program;
    const FuzzProgram& donor = corpus.entries[rng.below(corpus.entries.size())].program;
    mutate(job.program, &donor, rng, cfg.generator);
    job.program.gen_seed = job.seed;
  } else {
    job.program = ProgramFuzzer(job.seed, cfg.generator).next();
  }
  if (rng.chance(cfg.snapshot_chance)) job.snapshot_cycle = 64 + rng.below(1024);
  return job;
}

std::string entry_name(unsigned round, unsigned index, u64 seed) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "r%02u-i%03u-%016llx", round, index,
                static_cast<unsigned long long>(seed));
  return buf;
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

CampaignReport run_campaign(Corpus& corpus, const CampaignConfig& config) {
  CampaignReport report;
  report.seed = config.seed;
  report.rounds = config.rounds;
  report.inputs_per_round = config.inputs_per_round;
  report.initial_corpus = corpus.size();

  ThreadPool pool(config.threads);

  for (unsigned round = 0; round < config.rounds; ++round) {
    // Serial: fix every input's program and oracle knobs before fan-out.
    std::vector<Job> jobs;
    jobs.reserve(config.inputs_per_round);
    for (unsigned i = 0; i < config.inputs_per_round; ++i)
      jobs.push_back(build_job(corpus, config, round, i));

    // Parallel: independent oracle runs, one slot per input.
    std::vector<OracleResult> results(jobs.size());
    pool.parallel_for(jobs.size(), [&](std::size_t i) {
      OracleConfig oc = config.oracle;
      oc.snapshot_cycle = jobs[i].snapshot_cycle;
      results[i] = run_differential(jobs[i].program, oc);
    });

    // Serial, index order: merge coverage, grow corpus, record failures.
    RoundStats rs;
    rs.inputs = config.inputs_per_round;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const OracleResult& res = results[i];
      const std::size_t fresh = report.coverage.merge_count_new(res.coverage);
      rs.new_features += static_cast<unsigned>(fresh);
      if (fresh > 0) {
        corpus.add(entry_name(round, static_cast<unsigned>(i), jobs[i].seed), jobs[i].program);
        ++rs.kept;
      }
      if (res.ok()) continue;
      ++rs.failures;
      FailureRecord fr;
      fr.round = round;
      fr.index = static_cast<unsigned>(i);
      fr.seed = jobs[i].seed;
      fr.verdict = res.verdict;
      fr.detail = res.detail;
      fr.repro = jobs[i].program;
      fr.original_ops = jobs[i].program.op_count();
      fr.minimized_ops = fr.original_ops;
      if (config.shrink_failures) {
        ShrinkConfig sc;
        sc.oracle = config.oracle;
        // The snapshot layer only matters for snapshot failures; dropping
        // it elsewhere makes every shrink probe one run, not two.
        sc.oracle.snapshot_cycle =
            res.verdict == OracleVerdict::kSnapshotMismatch ? jobs[i].snapshot_cycle : 0;
        sc.max_oracle_runs = config.shrink_max_oracle_runs;
        const ShrinkResult sr = shrink(fr.repro, sc);
        if (sr.reproduced) {
          fr.repro = sr.program;
          fr.minimized_ops = sr.op_count;
          fr.shrink_oracle_runs = sr.oracle_runs;
          if (!sr.detail.empty()) fr.detail = sr.detail;
        }
      }
      report.failures.push_back(std::move(fr));
    }
    rs.corpus_size = corpus.size();
    rs.features_hit = report.coverage.features_hit();
    rs.total_hits = report.coverage.total_hits();
    report.round_stats.push_back(rs);
  }

  report.final_corpus = corpus.size();
  return report;
}

void write_report_json(const CampaignReport& report, std::ostream& os) {
  os << "{\n  \"schema\": \"safedm.bench.fuzz/v1\",\n";
  os << "  \"config\": {\"seed\": " << report.seed << ", \"rounds\": " << report.rounds
     << ", \"inputs_per_round\": " << report.inputs_per_round
     << ", \"initial_corpus\": " << report.initial_corpus << "},\n";
  os << "  \"rounds\": [\n";
  for (std::size_t r = 0; r < report.round_stats.size(); ++r) {
    const RoundStats& rs = report.round_stats[r];
    os << "    {\"round\": " << r << ", \"inputs\": " << rs.inputs << ", \"kept\": " << rs.kept
       << ", \"new_features\": " << rs.new_features << ", \"failures\": " << rs.failures
       << ", \"corpus_size\": " << rs.corpus_size << ", \"features_hit\": " << rs.features_hit
       << ", \"total_hits\": " << rs.total_hits << "}"
       << (r + 1 < report.round_stats.size() ? "," : "") << '\n';
  }
  os << "  ],\n";
  const CoverageMap::Breakdown b = report.coverage.hit_breakdown();
  os << "  \"coverage\": {\"features_hit\": " << report.coverage.features_hit()
     << ", \"total_hits\": " << report.coverage.total_hits() << ", \"opcodes\": " << b.opcodes
     << ", \"formats\": " << b.formats << ", \"events\": " << b.events
     << ", \"verdict_edges\": " << b.verdict_edges << "},\n";
  os << "  \"failures\": [";
  for (std::size_t f = 0; f < report.failures.size(); ++f) {
    const FailureRecord& fr = report.failures[f];
    os << (f ? "," : "") << "\n    {\"round\": " << fr.round << ", \"index\": " << fr.index
       << ", \"seed\": " << fr.seed << ", \"verdict\": \"" << verdict_name(fr.verdict)
       << "\",\n     \"original_ops\": " << fr.original_ops
       << ", \"minimized_ops\": " << fr.minimized_ops
       << ", \"shrink_oracle_runs\": " << fr.shrink_oracle_runs << ",\n     \"detail\": \"";
    json_escape(os, fr.detail);
    os << "\"}";
  }
  os << (report.failures.empty() ? "" : "\n  ") << "],\n";
  os << "  \"final_corpus\": " << report.final_corpus << "\n}\n";
}

std::string report_to_json(const CampaignReport& report) {
  std::ostringstream os;
  write_report_json(report, os);
  return os.str();
}

std::vector<ReplayOutcome> replay_corpus(const Corpus& corpus, const OracleConfig& config) {
  std::vector<ReplayOutcome> outcomes;
  outcomes.reserve(corpus.size());
  for (const CorpusEntry& e : corpus.entries) {
    const OracleResult res = run_differential(e.program, config);
    outcomes.push_back({e.name, res.verdict, res.detail});
  }
  return outcomes;
}

}  // namespace safedm::fuzz
