// Shared structured RV64IMD program generator for the differential fuzzer
// and the property suites (the single program-generation code path; the old
// per-test generators were folded into this one).
//
// Programs are held as a small IR — blocks of straight-line ops plus a
// bounded counted loop with an optional data-dependent (but convergent)
// skip — rather than raw instruction words, so mutation operators (block
// splice, immediate/register perturbation, insert/delete) and the shrinker
// always produce well-formed programs: every operand is sanitized when the
// IR is lowered to an assembler::Program (pool-wrapped registers, aligned
// in-segment memory offsets, 12-bit immediates, loop bounds 0..9).
//
// Conventions match the SoC loader and the historical property generator:
// S0 holds the data base (copied from a0), S6 is the loop counter, T6 the
// skip scratch; generated ops never touch them, so control flow cannot
// diverge between the ISS and the pipeline. The IR serializes to a
// line-oriented text format (the corpus/repro on-disk format).
#pragma once

#include <string>
#include <vector>

#include "safedm/assembler/assembler.hpp"
#include "safedm/common/rng.hpp"

namespace safedm::fuzz {

#define SAFEDM_FUZZ_OP_KINDS(X)                                                       \
  X(kAdd, "add") X(kSub, "sub") X(kXor, "xor") X(kOr, "or") X(kAnd, "and")            \
  X(kSll, "sll") X(kSrl, "srl") X(kSra, "sra") X(kSlt, "slt") X(kSltu, "sltu")        \
  X(kMul, "mul") X(kMulh, "mulh") X(kMulw, "mulw") X(kDiv, "div") X(kDivu, "divu")    \
  X(kRem, "rem") X(kAddw, "addw") X(kSubw, "subw") X(kAddi, "addi")                   \
  X(kSltiu, "sltiu") X(kSlli, "slli") X(kSrai, "srai") X(kLoad, "load")               \
  X(kStore, "store") X(kFld, "fld") X(kFsd, "fsd") X(kFadd, "fadd")                   \
  X(kFmul, "fmul") X(kFdiv, "fdiv") X(kFmvDX, "fmvdx") X(kFmvXD, "fmvxd")

enum class OpKind : u8 {
#define SAFEDM_FUZZ_ENUM(name, str) name,
  SAFEDM_FUZZ_OP_KINDS(SAFEDM_FUZZ_ENUM)
#undef SAFEDM_FUZZ_ENUM
};
inline constexpr std::size_t kOpKindCount = 31;
inline constexpr std::size_t kIntOpKindCount = 24;  // kAdd..kStore precede FP kinds

const char* op_kind_name(OpKind kind);
/// Inverse of op_kind_name; throws CheckError on an unknown name.
OpKind op_kind_from_name(const std::string& name);

/// Integer registers the generator may clobber (never x0/sp/a0/S0/S6/T6).
inline constexpr assembler::Reg kIntPool[] = {
    assembler::T0, assembler::T1, assembler::T2, assembler::S1, assembler::S2,
    assembler::S3, assembler::S4, assembler::S5, assembler::A1, assembler::A2,
    assembler::A3, assembler::T3, assembler::T4, assembler::T5};
inline constexpr unsigned kIntPoolSize = 14;

/// FP registers the generator may clobber.
inline constexpr assembler::Reg kFpPool[] = {assembler::FT0, assembler::FT1, assembler::FT2,
                                             assembler::FT3, assembler::FT4, assembler::FT5,
                                             assembler::FS0, assembler::FS1};
inline constexpr unsigned kFpPoolSize = 8;

/// One generated operation. Register fields are *pool indices* (wrapped
/// modulo the pool size at lowering time), `imm` is sanitized per kind, and
/// `aux` selects the load/store width (log2 bytes, wrapped to 0..3).
struct FuzzOp {
  OpKind kind = OpKind::kAdd;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i32 imm = 0;
  u8 aux = 0;

  bool operator==(const FuzzOp&) const = default;
};

/// A straight-line run of ops, then (when loop_iters > 0) a bounded counted
/// loop over `body` with an optional data-dependent skip around `skip`.
struct FuzzBlock {
  std::vector<FuzzOp> straight;
  u8 loop_iters = 0;  // 0 = no loop; wrapped to 0..9 at lowering time
  std::vector<FuzzOp> body;
  bool cond_skip = false;
  u8 skip_test = 0;  // int-pool index whose low bit gates the skip
  std::vector<FuzzOp> skip;

  bool operator==(const FuzzBlock&) const = default;
};

struct FuzzProgram {
  u64 gen_seed = 0;    // seed that produced (or identifies) this input
  u64 data_seed = 1;   // derives the data blob and the pool-register constants
  u32 data_words = 512;  // data blob size in u64 words (>= 256 for offsets)
  std::vector<FuzzBlock> blocks;

  std::size_t op_count() const;
  bool operator==(const FuzzProgram&) const = default;
};

struct GeneratorConfig {
  unsigned min_blocks = 3;
  unsigned max_blocks = 7;
  unsigned max_straight = 13;  // straight ops per block: 2..max
  unsigned max_loop_iters = 9;
  unsigned max_body = 6;
  double skip_chance = 0.5;
  bool fp_ops = true;          // include RV64D ops in the mix
  double fp_chance = 0.15;
};

/// Structural caps enforced by mutation (generation stays well below them).
inline constexpr unsigned kMaxBlocks = 12;
inline constexpr unsigned kMaxOpsPerList = 48;

/// A single random op drawn from the configured mix.
FuzzOp random_op(Xoshiro256& rng, const GeneratorConfig& config);

/// Lower the IR to a loadable program image. Deterministic: depends only on
/// the IR contents (including data_seed), never on generator state.
assembler::Program materialize(const FuzzProgram& program);

/// Seed-deterministic program generator: `ProgramFuzzer(seed).next()` is a
/// pure function of the seed and config.
class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(u64 seed, GeneratorConfig config = {})
      : rng_(seed), seed_(seed), config_(config) {}

  /// Generate the next random program IR.
  FuzzProgram next();

  /// Convenience: generate and lower in one step.
  assembler::Program generate() { return materialize(next()); }

  const GeneratorConfig& config() const { return config_; }

 private:
  Xoshiro256 rng_;
  u64 seed_;
  u64 drawn_ = 0;
  GeneratorConfig config_;
};

/// Mutation operators. All keep the IR within the structural caps and never
/// produce an ill-formed program (operands are sanitized at lowering).
enum class Mutation : u8 { kSplice, kPerturbImm, kPerturbReg, kInsert, kDelete };

/// Apply 1..3 random mutation operators to `program`. `donor` (may be null)
/// supplies blocks for the splice operator.
void mutate(FuzzProgram& program, const FuzzProgram* donor, Xoshiro256& rng,
            const GeneratorConfig& config);

/// Render the lowered program as annotated assembly (repro `.s` dumps).
std::string to_assembly(const FuzzProgram& program);

// ---- corpus/repro on-disk format -------------------------------------------

/// Line-oriented text serialization (header + one op per line).
std::string serialize(const FuzzProgram& program);
/// Inverse of serialize; throws CheckError on malformed input.
FuzzProgram deserialize(const std::string& text);

void save_program(const std::string& path, const FuzzProgram& program);
FuzzProgram load_program(const std::string& path);

// ---- instruction-word fuzzing (decoder robustness) --------------------------

/// Word-level fuzzer shared by the decoder/disassembler robustness tests:
/// uniform raw words plus "biased" words that satisfy a random table
/// entry's match/mask with random free bits (valid-by-construction inputs
/// that still exercise every immediate/operand extraction path).
class InstWordFuzzer {
 public:
  explicit InstWordFuzzer(u64 seed) : rng_(seed) {}

  /// Uniformly random 32-bit word.
  u32 raw_word() { return static_cast<u32>(rng_.next()); }

  /// A word matching a random instruction-table entry, free bits random.
  u32 biased_word();

 private:
  Xoshiro256 rng_;
};

}  // namespace safedm::fuzz
