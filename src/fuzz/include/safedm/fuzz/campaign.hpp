// Coverage-guided differential fuzzing campaign.
//
// Rounds of inputs (fresh generations or mutations of corpus seeds) are
// fanned across the ThreadPool with the determinism discipline of the
// fault-injection engine (DESIGN.md §7): every per-input decision —
// generate vs mutate, corpus picks, mutation draws, the snapshot cycle —
// is derived *serially* from input_seed(seed, round, index) before the
// parallel phase, results are merged back in index order, and the thread
// count is never part of the report. BENCH_fuzz.json is therefore
// byte-identical for any --threads.
//
// Corpus policy: an input is kept as a seed exactly when its run lights a
// coverage feature that the cumulative map had dark, so features_hit()
// after each round is monotonically non-decreasing (asserted by the fuzz
// smoke gate). Failing inputs are shrunk and recorded as repros.
#pragma once

#include <iosfwd>

#include "safedm/fuzz/coverage.hpp"
#include "safedm/fuzz/generator.hpp"
#include "safedm/fuzz/oracle.hpp"
#include "safedm/fuzz/shrink.hpp"

namespace safedm::fuzz {

struct CorpusEntry {
  std::string name;  // file stem: <name>.fuzz (+ <name>.s for repros)
  FuzzProgram program;
};

struct Corpus {
  std::vector<CorpusEntry> entries;

  std::size_t size() const { return entries.size(); }
  void add(std::string name, FuzzProgram program);
  /// Load every *.fuzz under `dir` in sorted filename order (so corpus
  /// iteration order — and with it campaign determinism — is stable).
  void load_dir(const std::string& dir);
  /// Write each entry as <dir>/<name>.fuzz plus a human-readable <name>.s.
  void save_dir(const std::string& dir) const;
};

struct CampaignConfig {
  u64 seed = 1;
  unsigned rounds = 4;
  unsigned inputs_per_round = 32;
  unsigned threads = 1;            // execution resource only; never in the report
  double mutate_chance = 0.5;      // mutate a corpus seed vs generate fresh
  double snapshot_chance = 0.25;   // inputs that get the snapshot oracle layer
  GeneratorConfig generator{};
  OracleConfig oracle{};           // per-input snapshot_cycle is overridden
  bool shrink_failures = true;
  unsigned shrink_max_oracle_runs = 600;
};

/// Seed for round `round`, input `index`: position-derived, never drawn
/// from a shared RNG, so schedules don't depend on worker interleaving.
u64 input_seed(u64 seed, unsigned round, unsigned index);

struct FailureRecord {
  unsigned round = 0;
  unsigned index = 0;
  u64 seed = 0;                    // input_seed that produced the program
  OracleVerdict verdict = OracleVerdict::kPass;
  std::string detail;
  FuzzProgram repro;               // minimized when shrinking is enabled
  std::size_t original_ops = 0;
  std::size_t minimized_ops = 0;
  unsigned shrink_oracle_runs = 0;
};

struct RoundStats {
  unsigned inputs = 0;
  unsigned kept = 0;               // inputs that entered the corpus
  unsigned new_features = 0;
  unsigned failures = 0;
  std::size_t corpus_size = 0;     // after the round
  std::size_t features_hit = 0;    // cumulative, after the round
  u64 total_hits = 0;              // cumulative, after the round
};

struct CampaignReport {
  u64 seed = 0;
  unsigned rounds = 0;
  unsigned inputs_per_round = 0;
  std::size_t initial_corpus = 0;
  std::vector<RoundStats> round_stats;
  CoverageMap coverage;            // cumulative over the whole campaign
  std::vector<FailureRecord> failures;
  std::size_t final_corpus = 0;
};

/// Run the campaign, growing `corpus` in place.
CampaignReport run_campaign(Corpus& corpus, const CampaignConfig& config);

/// BENCH_fuzz.json (schema safedm.bench.fuzz/v1). Deterministic: a pure
/// function of the report, which never records the thread count.
void write_report_json(const CampaignReport& report, std::ostream& os);
std::string report_to_json(const CampaignReport& report);

/// Re-run the oracle stack over every corpus entry (the CI corpus gate).
struct ReplayOutcome {
  std::string name;
  OracleVerdict verdict = OracleVerdict::kPass;
  std::string detail;
};
std::vector<ReplayOutcome> replay_corpus(const Corpus& corpus, const OracleConfig& config);

}  // namespace safedm::fuzz
