// Coverage map for the differential fuzzer.
//
// A fixed, enumerable feature space — decoded mnemonics, encoding formats,
// pipeline events, SafeDM verdict transitions — backed by a flat counter
// array so maps merge deterministically and "did this input light a counter
// that was dark" is a single pass. The campaign keeps an input as a corpus
// seed exactly when merge_count_new() reports a fresh feature, which makes
// the cumulative features_hit() trajectory monotonically non-decreasing by
// construction (asserted by the fuzz smoke gate).
#pragma once

#include <array>
#include <cstddef>

#include "safedm/isa/inst.hpp"

namespace safedm::fuzz {

/// Pipeline / monitor events observable from one differential run.
enum class Event : u8 {
  kMispredict,       // branch predictor flush
  kL1dMissStall,
  kL1iMissStall,
  kSbFullStall,
  kRawHazardStall,
  kExBusyStall,
  kSbCoalesce,       // store merged into an existing store-buffer entry
  kSbDrain,          // store-buffer entry drained to the bus
  kDualIssue,        // a group retired two instructions
  kStagger,          // instruction diff nonzero while monitored
  kNodiv,            // SafeDM flagged a no-diversity cycle
  kInterrupt,        // SafeDM interrupt line rose
  kSnapshotTaken,    // the snapshot/restore oracle layer engaged
  kIllegalHalt,      // run ended in HaltReason::kIllegalInst
};
inline constexpr std::size_t kEventCount = 14;
const char* event_name(Event e);

/// Flat counter map over the feature space. Counters saturate at u64 max.
class CoverageMap {
 public:
  static constexpr std::size_t kFormatCount = 11;        // Format::kR..kJ
  static constexpr std::size_t kVerdictStates = 4;       // (ds_match<<1)|is_match
  static constexpr std::size_t kVerdictEdgeCount = kVerdictStates * kVerdictStates;
  static constexpr std::size_t kFeatureCount =
      isa::kMnemonicCount + kFormatCount + kEventCount + kVerdictEdgeCount;

  void note_mnemonic(isa::Mnemonic m, u64 n = 1);
  void note_format(isa::Format f, u64 n = 1);
  void note_event(Event e, u64 n = 1);
  /// `from`/`to` are 2-bit verdict states: (ds_match << 1) | is_match.
  void note_verdict_edge(unsigned from, unsigned to, u64 n = 1);

  u64 count(std::size_t feature) const { return counts_[feature]; }
  const std::array<u64, kFeatureCount>& counters() const { return counts_; }

  /// Features with a nonzero counter.
  std::size_t features_hit() const;
  /// Sum of all counters (saturating).
  u64 total_hits() const;

  /// Accumulate `run` into this map; returns how many features were zero
  /// here and nonzero in `run` (the "new coverage" signal).
  std::size_t merge_count_new(const CoverageMap& run);

  struct Breakdown {
    std::size_t opcodes = 0;
    std::size_t formats = 0;
    std::size_t events = 0;
    std::size_t verdict_edges = 0;
  };
  Breakdown hit_breakdown() const;

  bool operator==(const CoverageMap&) const = default;

 private:
  void bump(std::size_t feature, u64 n);

  std::array<u64, kFeatureCount> counts_{};
};

}  // namespace safedm::fuzz
