// Differential oracle stack for one fuzz input (DESIGN.md §5b layers):
//
//   1. Architectural: the pipelined SoC run must end in the same halt
//      reason, retired-instruction count, register file and data segment
//      as the ISS golden model.
//   2. Verdict: the incremental DiversityComparator must agree with the
//      exhaustive whole-signature comparison on every monitored cycle
//      (both SafeDM instances observe the same pair).
//   3. Snapshot: a mid-run snapshot (SoC + both monitors), restored into a
//      fresh rig and run to completion, must be forward-bit-identical to
//      the uninterrupted run.
//
// Every run also fills a CoverageMap (decoded opcodes/formats from the ISS
// side, pipeline events from the core/store-buffer stats, verdict
// transitions from the monitor) — the campaign's corpus-keeping signal.
#pragma once

#include <functional>
#include <string>

#include "safedm/core/tap.hpp"
#include "safedm/fuzz/coverage.hpp"
#include "safedm/fuzz/generator.hpp"
#include "safedm/isa/iss.hpp"
#include "safedm/safedm/config.hpp"
#include "safedm/soc/soc.hpp"

namespace safedm::fuzz {

enum class OracleVerdict : u8 {
  kPass,
  kArchMismatch,      // pipeline disagrees with the ISS golden model
  kDataMismatch,      // final data segments differ
  kVerdictMismatch,   // incremental comparator disagrees with exhaustive
  kSnapshotMismatch,  // restored run diverged from the uninterrupted one
  kTimeout,           // an executor exhausted its budget without halting
};
const char* verdict_name(OracleVerdict v);

struct OracleConfig {
  soc::SocConfig soc{};
  monitor::SafeDmConfig dm{};    // start_enabled is forced on internally
  u64 max_cycles = 2'000'000;
  u64 max_instructions = 3'000'000;
  /// Cycle at which the snapshot/restore/re-execute layer engages
  /// (0 = layer off; no effect when the run halts earlier).
  u64 snapshot_cycle = 0;

  /// Test-only fault hook for exercising the shrinker and the red/green
  /// corpus gate: when it returns true for a cycle's tap frames, the
  /// incremental comparator's DS verdict is reported flipped, emulating a
  /// comparator implementation bug. Never set outside tests.
  std::function<bool(const core::CoreTapFrame&, const core::CoreTapFrame&)> verdict_bug;
};

struct OracleResult {
  OracleVerdict verdict = OracleVerdict::kPass;
  std::string detail;          // human-readable mismatch description
  CoverageMap coverage;
  u64 cycles = 0;              // SoC cycles of the main run
  u64 instret = 0;             // ISS retired instructions
  isa::ArchState iss_state;
  isa::ArchState pipe_state;   // core 0 of the redundant pair

  bool ok() const { return verdict == OracleVerdict::kPass; }
};

/// Run the full oracle stack on a lowered program image.
OracleResult run_differential(const assembler::Program& image, const OracleConfig& config = {});

/// Convenience: lower the IR and run it.
OracleResult run_differential(const FuzzProgram& program, const OracleConfig& config = {});

}  // namespace safedm::fuzz
