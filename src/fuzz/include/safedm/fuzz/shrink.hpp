// Automatic repro minimization: delta-debugging over the fuzz IR.
//
// Given a program whose oracle run fails, the shrinker repeatedly applies
// simplification passes — drop whole blocks (chunked, ddmin-style), zero
// loop iteration counts, drop conditional-skip arms, delete ops (chunked
// then singly), zero immediates — keeping a candidate only when the oracle
// still fails with the *same verdict category*. Because candidates are IR
// (operands sanitized at lowering), every attempt is a well-formed halting
// program; the result is the smallest program the pass pipeline reaches,
// typically a handful of instructions.
#pragma once

#include "safedm/fuzz/generator.hpp"
#include "safedm/fuzz/oracle.hpp"

namespace safedm::fuzz {

struct ShrinkConfig {
  OracleConfig oracle{};        // must include the failure's trigger (e.g. the bug hook)
  unsigned max_oracle_runs = 600;
};

struct ShrinkResult {
  FuzzProgram program;          // minimized (or the input, if nothing failed)
  OracleVerdict verdict = OracleVerdict::kPass;  // preserved failure category
  std::string detail;           // oracle detail of the minimized repro
  std::size_t op_count = 0;     // generated ops in the minimized program
  unsigned oracle_runs = 0;     // oracle invocations spent
  bool reproduced = false;      // false: the input passed, nothing to shrink
};

ShrinkResult shrink(const FuzzProgram& program, const ShrinkConfig& config);

}  // namespace safedm::fuzz
