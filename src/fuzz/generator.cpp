#include "safedm/fuzz/generator.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "safedm/common/check.hpp"
#include "safedm/common/hash.hpp"
#include "safedm/isa/disasm.hpp"
#include "safedm/isa/encode.hpp"
#include "safedm/isa/inst.hpp"

namespace safedm::fuzz {

using namespace assembler;
namespace e = isa::enc;

namespace {

constexpr const char* kOpNames[] = {
#define SAFEDM_FUZZ_NAME(name, str) str,
    SAFEDM_FUZZ_OP_KINDS(SAFEDM_FUZZ_NAME)
#undef SAFEDM_FUZZ_NAME
};
static_assert(sizeof(kOpNames) / sizeof(kOpNames[0]) == kOpKindCount);

u64 mix(u64 a, u64 b) {
  Fnv1a64 h;
  h.add(a);
  h.add(b);
  return h.value();
}

// ---- operand sanitizers (applied at lowering; mutation can set anything) ----

Reg ir(u8 v) { return kIntPool[v % kIntPoolSize]; }
Reg fr(u8 v) { return kFpPool[v % kFpPoolSize]; }

i64 imm12(i32 v) {
  return ((static_cast<i64>(v) % 4096) + 4096 + 2048) % 4096 - 2048;  // [-2048, 2047]
}

unsigned shamt(i32 v) { return static_cast<unsigned>(v) & 63; }

i64 mem_offset(i32 v, unsigned size) {
  return static_cast<i64>(align_down(static_cast<u32>(v) % 2040u, size));
}

unsigned mem_size(u8 aux) { return 1u << (aux % 4); }

void emit_op(Assembler& a, const FuzzOp& op) {
  const Reg rd = ir(op.rd), rs1 = ir(op.rs1), rs2 = ir(op.rs2);
  switch (op.kind) {
    case OpKind::kAdd: a(e::add(rd, rs1, rs2)); break;
    case OpKind::kSub: a(e::sub(rd, rs1, rs2)); break;
    case OpKind::kXor: a(e::xor_(rd, rs1, rs2)); break;
    case OpKind::kOr: a(e::or_(rd, rs1, rs2)); break;
    case OpKind::kAnd: a(e::and_(rd, rs1, rs2)); break;
    case OpKind::kSll: a(e::sll(rd, rs1, rs2)); break;
    case OpKind::kSrl: a(e::srl(rd, rs1, rs2)); break;
    case OpKind::kSra: a(e::sra(rd, rs1, rs2)); break;
    case OpKind::kSlt: a(e::slt(rd, rs1, rs2)); break;
    case OpKind::kSltu: a(e::sltu(rd, rs1, rs2)); break;
    case OpKind::kMul: a(e::mul(rd, rs1, rs2)); break;
    case OpKind::kMulh: a(e::mulh(rd, rs1, rs2)); break;
    case OpKind::kMulw: a(e::mulw(rd, rs1, rs2)); break;
    case OpKind::kDiv: a(e::div(rd, rs1, rs2)); break;
    case OpKind::kDivu: a(e::divu(rd, rs1, rs2)); break;
    case OpKind::kRem: a(e::rem(rd, rs1, rs2)); break;
    case OpKind::kAddw: a(e::addw(rd, rs1, rs2)); break;
    case OpKind::kSubw: a(e::subw(rd, rs1, rs2)); break;
    case OpKind::kAddi: a(e::addi(rd, rs1, imm12(op.imm))); break;
    case OpKind::kSltiu: a(e::sltiu(rd, rs1, static_cast<i64>(static_cast<u32>(op.imm) % 2048u))); break;
    case OpKind::kSlli: a(e::slli(rd, rs1, shamt(op.imm))); break;
    case OpKind::kSrai: a(e::srai(rd, rs1, shamt(op.imm))); break;
    case OpKind::kLoad: {
      const unsigned size = mem_size(op.aux);
      const i64 off = mem_offset(op.imm, size);
      switch (size) {
        case 1: a(e::lbu(rd, S0, off)); break;
        case 2: a(e::lh(rd, S0, off)); break;
        case 4: a(e::lw(rd, S0, off)); break;
        default: a(e::ld(rd, S0, off)); break;
      }
      break;
    }
    case OpKind::kStore: {
      const unsigned size = mem_size(op.aux);
      const i64 off = mem_offset(op.imm, size);
      switch (size) {
        case 1: a(e::sb(rs1, S0, off)); break;
        case 2: a(e::sh(rs1, S0, off)); break;
        case 4: a(e::sw(rs1, S0, off)); break;
        default: a(e::sd(rs1, S0, off)); break;
      }
      break;
    }
    case OpKind::kFld: a(e::fld(fr(op.rd), S0, mem_offset(op.imm, 8))); break;
    case OpKind::kFsd: a(e::fsd(fr(op.rs1), S0, mem_offset(op.imm, 8))); break;
    case OpKind::kFadd: a(e::fadd_d(fr(op.rd), fr(op.rs1), fr(op.rs2))); break;
    case OpKind::kFmul: a(e::fmul_d(fr(op.rd), fr(op.rs1), fr(op.rs2))); break;
    case OpKind::kFdiv: a(e::fdiv_d(fr(op.rd), fr(op.rs1), fr(op.rs2))); break;
    case OpKind::kFmvDX: a(e::fmv_d_x(fr(op.rd), ir(op.rs1))); break;
    case OpKind::kFmvXD: a(e::fmv_x_d(ir(op.rd), fr(op.rs1))); break;
  }
}

/// Mark the integer pool registers this op *reads* (write-only destinations
/// need no initialization: both executors reset registers to zero).
void mark_reads(const FuzzOp& op, bool (&used)[kIntPoolSize]) {
  const auto mark = [&](u8 v) { used[v % kIntPoolSize] = true; };
  switch (op.kind) {
    case OpKind::kAdd: case OpKind::kSub: case OpKind::kXor: case OpKind::kOr:
    case OpKind::kAnd: case OpKind::kSll: case OpKind::kSrl: case OpKind::kSra:
    case OpKind::kSlt: case OpKind::kSltu: case OpKind::kMul: case OpKind::kMulh:
    case OpKind::kMulw: case OpKind::kDiv: case OpKind::kDivu: case OpKind::kRem:
    case OpKind::kAddw: case OpKind::kSubw:
      mark(op.rs1);
      mark(op.rs2);
      break;
    case OpKind::kAddi: case OpKind::kSltiu: case OpKind::kSlli: case OpKind::kSrai:
      mark(op.rs1);
      break;
    case OpKind::kStore: case OpKind::kFmvDX:
      mark(op.rs1);
      break;
    case OpKind::kLoad: case OpKind::kFld: case OpKind::kFsd: case OpKind::kFadd:
    case OpKind::kFmul: case OpKind::kFdiv: case OpKind::kFmvXD:
      break;
  }
}

unsigned effective_iters(const FuzzBlock& b) { return b.loop_iters % 10; }
bool skip_emitted(const FuzzBlock& b) { return b.cond_skip && !b.skip.empty(); }

}  // namespace

const char* op_kind_name(OpKind kind) { return kOpNames[static_cast<unsigned>(kind)]; }

OpKind op_kind_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kOpKindCount; ++i)
    if (name == kOpNames[i]) return static_cast<OpKind>(i);
  SAFEDM_CHECK_MSG(false, "unknown fuzz op kind: " + name);
  return OpKind::kAdd;  // unreachable
}

std::size_t FuzzProgram::op_count() const {
  std::size_t n = 0;
  for (const FuzzBlock& b : blocks) {
    n += b.straight.size();
    if (effective_iters(b) > 0) {
      n += b.body.size();
      if (skip_emitted(b)) n += b.skip.size();
    }
  }
  return n;
}

FuzzOp random_op(Xoshiro256& rng, const GeneratorConfig& config) {
  FuzzOp op;
  op.rd = static_cast<u8>(rng.below(kIntPoolSize));
  op.rs1 = static_cast<u8>(rng.below(kIntPoolSize));
  op.rs2 = static_cast<u8>(rng.below(kIntPoolSize));
  op.imm = static_cast<i32>(rng.next());
  op.aux = static_cast<u8>(rng.below(4));
  if (config.fp_ops && rng.chance(config.fp_chance)) {
    static constexpr OpKind kFpKinds[] = {OpKind::kFld,  OpKind::kFsd,   OpKind::kFadd,
                                          OpKind::kFmul, OpKind::kFdiv,  OpKind::kFmvDX,
                                          OpKind::kFmvXD};
    op.kind = kFpKinds[rng.below(7)];
  } else {
    op.kind = static_cast<OpKind>(rng.below(kIntOpKindCount));
  }
  return op;
}

FuzzProgram ProgramFuzzer::next() {
  FuzzProgram p;
  p.gen_seed = seed_ ^ (0x9E3779B97F4A7C15ULL * ++drawn_);
  p.data_seed = rng_.next();
  const unsigned span = config_.max_blocks - std::min(config_.min_blocks, config_.max_blocks) + 1;
  const unsigned blocks = config_.min_blocks + static_cast<unsigned>(rng_.below(span));
  for (unsigned i = 0; i < blocks; ++i) {
    FuzzBlock b;
    const unsigned straight = 2 + static_cast<unsigned>(rng_.below(config_.max_straight - 1));
    for (unsigned j = 0; j < straight; ++j) b.straight.push_back(random_op(rng_, config_));
    b.loop_iters = static_cast<u8>(1 + rng_.below(config_.max_loop_iters));
    const unsigned body = 1 + static_cast<unsigned>(rng_.below(config_.max_body));
    for (unsigned j = 0; j < body; ++j) b.body.push_back(random_op(rng_, config_));
    if (rng_.chance(config_.skip_chance)) {
      b.cond_skip = true;
      b.skip_test = static_cast<u8>(rng_.below(kIntPoolSize));
      b.skip.push_back(random_op(rng_, config_));
    }
    p.blocks.push_back(std::move(b));
  }
  return p;
}

// ---- mutation ---------------------------------------------------------------

namespace {

std::vector<std::vector<FuzzOp>*> op_lists(FuzzProgram& p) {
  std::vector<std::vector<FuzzOp>*> lists;
  for (FuzzBlock& b : p.blocks) {
    lists.push_back(&b.straight);
    lists.push_back(&b.body);
    lists.push_back(&b.skip);
  }
  return lists;
}

FuzzOp* pick_op(FuzzProgram& p, Xoshiro256& rng) {
  std::vector<FuzzOp*> ops;
  for (std::vector<FuzzOp>* list : op_lists(p))
    for (FuzzOp& op : *list) ops.push_back(&op);
  if (ops.empty()) return nullptr;
  return ops[rng.below(ops.size())];
}

void mutate_splice(FuzzProgram& p, const FuzzProgram& donor, Xoshiro256& rng) {
  if (donor.blocks.empty()) return;
  const std::size_t start = rng.below(donor.blocks.size());
  const std::size_t len =
      std::min<std::size_t>(1 + rng.below(2), donor.blocks.size() - start);
  std::size_t pos = rng.below(p.blocks.size() + 1);
  if (p.blocks.size() + len > kMaxBlocks && !p.blocks.empty()) {
    // Replace instead of insert: erase exactly `len` blocks (or all of them
    // when fewer remain) so the cap can never be exceeded.
    const std::size_t erase = std::min(len, p.blocks.size());
    pos = rng.below(p.blocks.size() - erase + 1);
    p.blocks.erase(p.blocks.begin() + static_cast<long>(pos),
                   p.blocks.begin() + static_cast<long>(pos + erase));
  }
  p.blocks.insert(p.blocks.begin() + static_cast<long>(pos),
                  donor.blocks.begin() + static_cast<long>(start),
                  donor.blocks.begin() + static_cast<long>(start + len));
}

void mutate_insert(FuzzProgram& p, Xoshiro256& rng, const GeneratorConfig& config) {
  if (p.blocks.empty()) {
    p.blocks.emplace_back();
  }
  auto lists = op_lists(p);
  std::vector<std::vector<FuzzOp>*> open;
  for (auto* list : lists)
    if (list->size() < kMaxOpsPerList) open.push_back(list);
  if (open.empty()) return;
  std::vector<FuzzOp>* list = open[rng.below(open.size())];
  list->insert(list->begin() + static_cast<long>(rng.below(list->size() + 1)),
               random_op(rng, config));
}

void mutate_delete(FuzzProgram& p, Xoshiro256& rng) {
  auto lists = op_lists(p);
  std::vector<std::vector<FuzzOp>*> nonempty;
  std::size_t total = 0;
  for (auto* list : lists) {
    total += list->size();
    if (!list->empty()) nonempty.push_back(list);
  }
  if (total <= 1 || nonempty.empty()) return;  // keep at least one op alive
  std::vector<FuzzOp>* list = nonempty[rng.below(nonempty.size())];
  list->erase(list->begin() + static_cast<long>(rng.below(list->size())));
}

}  // namespace

void mutate(FuzzProgram& program, const FuzzProgram* donor, Xoshiro256& rng,
            const GeneratorConfig& config) {
  const unsigned rounds = 1 + static_cast<unsigned>(rng.below(3));
  for (unsigned i = 0; i < rounds; ++i) {
    Mutation m = static_cast<Mutation>(rng.below(5));
    if (m == Mutation::kSplice && (donor == nullptr || donor->blocks.empty()))
      m = Mutation::kInsert;
    switch (m) {
      case Mutation::kSplice:
        mutate_splice(program, *donor, rng);
        break;
      case Mutation::kPerturbImm:
        if (FuzzOp* op = pick_op(program, rng)) {
          if (rng.chance(0.5))
            op->imm = static_cast<i32>(rng.next());
          else
            op->imm += static_cast<i32>(rng.below(17)) - 8;
        }
        break;
      case Mutation::kPerturbReg:
        if (FuzzOp* op = pick_op(program, rng)) {
          switch (rng.below(4)) {
            case 0: op->rd = static_cast<u8>(rng.below(kIntPoolSize)); break;
            case 1: op->rs1 = static_cast<u8>(rng.below(kIntPoolSize)); break;
            case 2: op->rs2 = static_cast<u8>(rng.below(kIntPoolSize)); break;
            default: op->aux = static_cast<u8>(rng.below(4)); break;
          }
        }
        break;
      case Mutation::kInsert:
        mutate_insert(program, rng, config);
        break;
      case Mutation::kDelete:
        mutate_delete(program, rng);
        break;
    }
  }
}

// ---- lowering ---------------------------------------------------------------

assembler::Program materialize(const FuzzProgram& program) {
  Assembler a;
  DataBuilder d;

  const u32 words = std::clamp<u32>(program.data_words, 256, 4096);
  Xoshiro256 drng(program.data_seed);
  std::vector<u64> blob(words);
  for (auto& w : blob) w = drng.next();
  d.add_u64_array(blob);

  // Base pointer for memory ops; S0 is never clobbered by generated ops.
  a.mv(S0, A0);

  // Give every *read* pool register a defined, data_seed-derived value.
  bool used[kIntPoolSize] = {};
  for (const FuzzBlock& b : program.blocks) {
    for (const FuzzOp& op : b.straight) mark_reads(op, used);
    if (effective_iters(b) > 0) {
      for (const FuzzOp& op : b.body) mark_reads(op, used);
      if (skip_emitted(b)) {
        used[b.skip_test % kIntPoolSize] = true;
        for (const FuzzOp& op : b.skip) mark_reads(op, used);
      }
    }
  }
  for (unsigned i = 0; i < kIntPoolSize; ++i)
    if (used[i]) a.li(kIntPool[i], static_cast<i64>(mix(program.data_seed, 0x1000 + i) & 0xFFFF));

  for (const FuzzBlock& b : program.blocks) {
    for (const FuzzOp& op : b.straight) emit_op(a, op);
    const unsigned iters = effective_iters(b);
    if (iters == 0) continue;
    // Bounded loop on a dedicated counter (S6) generated ops never touch.
    a.li(S6, static_cast<i64>(iters));
    Label head = a.new_label(), exit = a.new_label();
    a.bind(head);
    a.beqz(S6, exit);
    for (const FuzzOp& op : b.body) emit_op(a, op);
    if (skip_emitted(b)) {
      Label skip = a.new_label();
      a(e::andi(T6, ir(b.skip_test), 1));
      a.beqz(T6, skip);
      for (const FuzzOp& op : b.skip) emit_op(a, op);
      a.bind(skip);
    }
    a(e::addi(S6, S6, -1));
    a.j(head);
    a.bind(exit);
  }
  a(e::ecall());
  return a.assemble("fuzz", std::move(d));
}

std::string to_assembly(const FuzzProgram& program) {
  const assembler::Program image = materialize(program);
  std::ostringstream os;
  os << "# safedm-fuzz repro  gen_seed=" << program.gen_seed
     << " data_seed=" << program.data_seed << " ops=" << program.op_count()
     << " text_words=" << image.text.size() << "\n";
  os << "# regenerate/replay: bench_fuzz_campaign --replay=<dir with the matching .fuzz>\n";
  for (std::size_t i = 0; i < image.text.size(); ++i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%6zx:  ", i * 4);
    os << buf << isa::disassemble(image.text[i]) << "\n";
  }
  return os.str();
}

// ---- serialization ----------------------------------------------------------

std::string serialize(const FuzzProgram& program) {
  std::ostringstream os;
  os << "safedm-fuzz/v1\n";
  os << "gen_seed " << program.gen_seed << "\n";
  os << "data_seed " << program.data_seed << "\n";
  os << "data_words " << program.data_words << "\n";
  const auto emit = [&os](char tag, const FuzzOp& op) {
    os << tag << ' ' << op_kind_name(op.kind) << ' ' << int(op.rd) << ' ' << int(op.rs1) << ' '
       << int(op.rs2) << ' ' << op.imm << ' ' << int(op.aux) << "\n";
  };
  for (const FuzzBlock& b : program.blocks) {
    os << "block " << int(b.loop_iters) << ' ' << int(b.cond_skip) << ' ' << int(b.skip_test)
       << "\n";
    for (const FuzzOp& op : b.straight) emit('s', op);
    for (const FuzzOp& op : b.body) emit('b', op);
    for (const FuzzOp& op : b.skip) emit('k', op);
  }
  return os.str();
}

FuzzProgram deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  SAFEDM_CHECK_MSG(std::getline(is, line) && line == "safedm-fuzz/v1",
                   "fuzz corpus: bad or missing header");
  FuzzProgram p;
  p.data_words = 512;
  bool in_block = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "gen_seed") {
      SAFEDM_CHECK_MSG(static_cast<bool>(ls >> p.gen_seed), "fuzz corpus: bad gen_seed");
    } else if (tag == "data_seed") {
      SAFEDM_CHECK_MSG(static_cast<bool>(ls >> p.data_seed), "fuzz corpus: bad data_seed");
    } else if (tag == "data_words") {
      SAFEDM_CHECK_MSG(static_cast<bool>(ls >> p.data_words), "fuzz corpus: bad data_words");
    } else if (tag == "block") {
      unsigned iters = 0, cond = 0, test = 0;
      SAFEDM_CHECK_MSG(static_cast<bool>(ls >> iters >> cond >> test),
                       "fuzz corpus: bad block line");
      FuzzBlock b;
      b.loop_iters = static_cast<u8>(iters);
      b.cond_skip = cond != 0;
      b.skip_test = static_cast<u8>(test);
      p.blocks.push_back(std::move(b));
      in_block = true;
    } else if (tag == "s" || tag == "b" || tag == "k") {
      SAFEDM_CHECK_MSG(in_block, "fuzz corpus: op line before first block");
      std::string kind;
      int rd = 0, rs1 = 0, rs2 = 0, aux = 0;
      i64 imm = 0;
      SAFEDM_CHECK_MSG(static_cast<bool>(ls >> kind >> rd >> rs1 >> rs2 >> imm >> aux),
                       "fuzz corpus: bad op line: " + line);
      FuzzOp op;
      op.kind = op_kind_from_name(kind);
      op.rd = static_cast<u8>(rd);
      op.rs1 = static_cast<u8>(rs1);
      op.rs2 = static_cast<u8>(rs2);
      op.imm = static_cast<i32>(imm);
      op.aux = static_cast<u8>(aux);
      FuzzBlock& b = p.blocks.back();
      (tag == "s" ? b.straight : tag == "b" ? b.body : b.skip).push_back(op);
    } else {
      SAFEDM_CHECK_MSG(false, "fuzz corpus: unknown line tag: " + tag);
    }
  }
  return p;
}

void save_program(const std::string& path, const FuzzProgram& program) {
  std::ofstream os(path);
  SAFEDM_CHECK_MSG(static_cast<bool>(os), "cannot open for writing: " + path);
  os << serialize(program);
  SAFEDM_CHECK_MSG(static_cast<bool>(os), "write failed: " + path);
}

FuzzProgram load_program(const std::string& path) {
  std::ifstream is(path);
  SAFEDM_CHECK_MSG(static_cast<bool>(is), "cannot open fuzz corpus file: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return deserialize(buf.str());
}

// ---- word-level fuzzing -----------------------------------------------------

u32 InstWordFuzzer::biased_word() {
  const auto table = isa::inst_table();
  const isa::InstInfo& ii = table[rng_.below(table.size())];
  return ii.match | (static_cast<u32>(rng_.next()) & ~ii.mask);
}

}  // namespace safedm::fuzz
