#include "safedm/fuzz/oracle.hpp"

#include <sstream>

#include "safedm/common/state.hpp"
#include "safedm/isa/decode.hpp"
#include "safedm/mem/phys_mem.hpp"
#include "safedm/safedm/monitor.hpp"

namespace safedm::fuzz {

namespace {

/// Mirror of the SoC loader's stack placement so ISS and pipeline see the
/// same initial sp (soc.cpp load_pair_images).
u64 stack_top_for(const assembler::Program& image, u64 data_base) {
  return align_down(data_base + align_up(image.data_segment_bytes(), 16) + image.stack_bytes, 16);
}

struct IssRun {
  isa::ArchState state;
  std::vector<u8> data;
  bool timed_out = false;
};

IssRun run_iss(const assembler::Program& image, const OracleConfig& cfg, CoverageMap& cov) {
  mem::PhysMem mem(cfg.soc.mem_base, cfg.soc.mem_size);
  for (std::size_t i = 0; i < image.text.size(); ++i)
    mem.store(cfg.soc.text_base + i * 4, image.text[i], 4);
  mem.write_block(cfg.soc.data_base0, image.data);

  isa::Iss iss(mem, cfg.soc.text_base);
  iss.state().set_x(assembler::A0, cfg.soc.data_base0);
  iss.state().set_x(assembler::SP, stack_top_for(image, cfg.soc.data_base0));

  while (!iss.state().halted() && iss.state().instret < cfg.max_instructions) {
    const auto raw = static_cast<u32>(mem.load(iss.state().pc, 4));
    const isa::DecodedInst di = isa::decode(raw);
    if (di.valid()) {
      cov.note_mnemonic(di.mnemonic);
      cov.note_format(di.info().format);
    }
    iss.step();
  }

  IssRun out;
  out.state = iss.state();
  out.timed_out = !iss.state().halted();
  out.data.resize(image.data_segment_bytes());
  mem.read_block(cfg.soc.data_base0, out.data);
  return out;
}

/// SoC + three SafeDM instances over pair 0, freshly constructed and
/// loaded. `inc` (incremental) and `exh` (exhaustive-compare) attach as
/// per-cycle observers; `bat` is an unattached twin of `inc` that the
/// oracle hand-feeds frame batches through on_cycles, cross-checking the
/// batched fast path against per-cycle delivery. Noncopyable members force
/// the heap-free aggregate to be constructed in place.
struct Rig {
  soc::MpSoc soc;
  monitor::SafeDm inc;
  monitor::SafeDm exh;
  monitor::SafeDm bat;

  Rig(const OracleConfig& cfg, const assembler::Program& image)
      : soc(cfg.soc), inc(inc_config(cfg)), exh(exh_config(cfg)), bat(inc_config(cfg)) {
    soc.add_observer(&inc);
    soc.add_observer(&exh);
    soc.load_redundant(image);
  }

  static monitor::SafeDmConfig inc_config(const OracleConfig& cfg) {
    monitor::SafeDmConfig c = cfg.dm;
    c.start_enabled = true;
    c.incremental_compare = true;
    return c;
  }
  static monitor::SafeDmConfig exh_config(const OracleConfig& cfg) {
    monitor::SafeDmConfig c = inc_config(cfg);
    c.incremental_compare = false;
    return c;
  }

  /// Everything the forward-equivalence check must cover, as one stream.
  /// Callers must flush any pending hand-fed batch into `bat` first, so
  /// the fingerprint is a pure function of the cycle count — batch
  /// boundaries must never leak into snapshot bytes.
  std::vector<u8> fingerprint() const {
    StateWriter w;
    soc.save_state(w);
    inc.save_state(w);
    exh.save_state(w);
    bat.save_state(w);
    return std::move(w).take();
  }
};

/// Hand-feeds a detached monitor the same frames the SoC just delivered to
/// its attached observers, in batches of `capacity` cycles. Deliberately
/// buffer-based rather than reusing MpSoc's observer_batch: the oracle
/// wants batch boundaries that are independent of (and relatively prime
/// to) anything periodic in the SoC, to prove on_cycles is bit-identical
/// to per-cycle delivery wherever the chunk edges fall.
class BatchFeeder {
 public:
  BatchFeeder(monitor::SafeDm& dm, unsigned capacity) : dm_(dm), capacity_(capacity) {}

  void push(u64 cycle, const core::CoreTapFrame& f0, const core::CoreTapFrame& f1) {
    if (f0_.empty()) first_cycle_ = cycle;
    f0_.push_back(f0);
    f1_.push_back(f1);
    if (f0_.size() == capacity_) flush();
  }

  void flush() {
    if (f0_.empty()) return;
    dm_.on_cycles(first_cycle_, f0_.data(), f1_.data(), static_cast<unsigned>(f0_.size()));
    f0_.clear();
    f1_.clear();
  }

 private:
  monitor::SafeDm& dm_;
  unsigned capacity_;
  u64 first_cycle_ = 0;
  std::vector<core::CoreTapFrame> f0_;
  std::vector<core::CoreTapFrame> f1_;
};

std::string describe_arch_mismatch(const isa::ArchState& iss, const isa::ArchState& pipe,
                                   u64 expected_commits, u64 pipe_commits) {
  std::ostringstream os;
  if (iss.halt != pipe.halt)
    os << "halt reason: iss=" << static_cast<int>(iss.halt)
       << " pipe=" << static_cast<int>(pipe.halt);
  else if (iss.instret != pipe.instret)
    os << "instret: iss=" << iss.instret << " pipe=" << pipe.instret;
  else if (expected_commits != pipe_commits)
    os << "commit count: expected=" << expected_commits << " pipe commits=" << pipe_commits;
  else {
    for (unsigned r = 0; r < 32; ++r) {
      if (iss.x[r] != pipe.x[r]) {
        os << "x" << r << ": iss=0x" << std::hex << iss.x[r] << " pipe=0x" << pipe.x[r];
        return os.str();
      }
    }
    for (unsigned r = 0; r < 32; ++r) {
      if (iss.f[r] != pipe.f[r]) {
        os << "f" << r << ": iss=0x" << std::hex << iss.f[r] << " pipe=0x" << pipe.f[r];
        return os.str();
      }
    }
    os << "pc: iss=0x" << std::hex << iss.pc << " pipe=0x" << pipe.pc;
  }
  return os.str();
}

}  // namespace

const char* verdict_name(OracleVerdict v) {
  switch (v) {
    case OracleVerdict::kPass: return "pass";
    case OracleVerdict::kArchMismatch: return "arch_mismatch";
    case OracleVerdict::kDataMismatch: return "data_mismatch";
    case OracleVerdict::kVerdictMismatch: return "verdict_mismatch";
    case OracleVerdict::kSnapshotMismatch: return "snapshot_mismatch";
    case OracleVerdict::kTimeout: return "timeout";
  }
  return "?";
}

OracleResult run_differential(const assembler::Program& image, const OracleConfig& cfg) {
  OracleResult res;

  // ---- layer 1 reference: the ISS golden model -----------------------------
  const IssRun iss = run_iss(image, cfg, res.coverage);
  res.iss_state = iss.state;
  res.instret = iss.state.instret;

  // ---- main SoC run with per-cycle verdict cross-check ---------------------
  Rig rig(cfg, image);
  std::vector<u8> snapshot_bytes;
  u64 snapshot_at = 0;
  unsigned verdict_state = 0;  // (ds_match << 1) | is_match, exhaustive view

  // Batched-delivery cross-check: `bat` consumes the same frame stream as
  // `inc` but in 17-cycle chunks; both record verdict trails that must be
  // bit-identical. 17 is odd and prime so chunk edges sweep every phase of
  // the workload's periodic behaviour over a long run.
  constexpr unsigned kBatchCycles = 17;
  std::vector<bool> percycle_trail;
  std::vector<bool> batched_trail;
  rig.inc.set_verdict_trail(&percycle_trail);
  rig.bat.set_verdict_trail(&batched_trail);
  BatchFeeder feeder(rig.bat, kBatchCycles);
  std::size_t trail_checked = 0;
  const auto check_trails = [&] {
    for (; trail_checked < batched_trail.size(); ++trail_checked) {
      if (batched_trail[trail_checked] == percycle_trail[trail_checked]) continue;
      if (res.verdict != OracleVerdict::kPass) continue;
      res.verdict = OracleVerdict::kVerdictMismatch;
      std::ostringstream os;
      os << "batched trail[" << trail_checked << "]=" << batched_trail[trail_checked]
         << " per-cycle=" << percycle_trail[trail_checked];
      res.detail = os.str();
    }
  };

  while (!rig.soc.all_halted() && rig.soc.cycle() < cfg.max_cycles) {
    rig.soc.step();
    feeder.push(rig.soc.cycle(), rig.soc.frame(0), rig.soc.frame(1));
    check_trails();

    bool inc_ds = rig.inc.ds_matched_now();
    const bool inc_is = rig.inc.is_matched_now();
    if (cfg.verdict_bug && cfg.verdict_bug(rig.soc.frame(0), rig.soc.frame(1))) inc_ds = !inc_ds;
    const bool inc_lack = inc_ds && inc_is;

    const bool exh_ds = rig.exh.ds_matched_now();
    const bool exh_is = rig.exh.is_matched_now();
    const bool exh_lack = rig.exh.lacking_diversity_now();
    if (res.verdict == OracleVerdict::kPass &&
        (inc_ds != exh_ds || inc_is != exh_is || inc_lack != exh_lack)) {
      res.verdict = OracleVerdict::kVerdictMismatch;
      std::ostringstream os;
      os << "cycle " << rig.soc.cycle() << ": incremental ds/is/lack=" << inc_ds << inc_is
         << inc_lack << " exhaustive=" << exh_ds << exh_is << exh_lack;
      res.detail = os.str();
      // keep running: coverage and final state are still wanted
    }

    const unsigned next_state = (static_cast<unsigned>(exh_ds) << 1) | exh_is;
    res.coverage.note_verdict_edge(verdict_state, next_state);
    verdict_state = next_state;

    if (cfg.snapshot_cycle != 0 && rig.soc.cycle() == cfg.snapshot_cycle) {
      feeder.flush();  // fingerprint must not depend on batch phase
      check_trails();
      snapshot_bytes = rig.fingerprint();
      snapshot_at = rig.soc.cycle();
      res.coverage.note_event(Event::kSnapshotTaken);
    }
  }
  feeder.flush();
  check_trails();
  rig.inc.set_verdict_trail(nullptr);
  rig.bat.set_verdict_trail(nullptr);
  // The trails only cover the verdict bit; demand the batched twin's entire
  // serialized state (counters, histograms, generators, comparator) landed
  // bit-identical to the per-cycle monitor's.
  if (res.verdict == OracleVerdict::kPass) {
    StateWriter wp;
    rig.inc.save_state(wp);
    StateWriter wb;
    rig.bat.save_state(wb);
    if (std::move(wp).take() != std::move(wb).take()) {
      res.verdict = OracleVerdict::kVerdictMismatch;
      res.detail = "batched monitor end state differs from per-cycle twin";
    }
  }
  res.cycles = rig.soc.cycle();
  res.pipe_state = rig.soc.core(0).arch();

  // ---- coverage events from the run's stats --------------------------------
  for (unsigned i = 0; i < 2; ++i) {
    const core::CoreStats& s = rig.soc.core(i).stats();
    res.coverage.note_event(Event::kMispredict, s.mispredicts);
    res.coverage.note_event(Event::kL1dMissStall, s.l1d_miss_stall_cycles);
    res.coverage.note_event(Event::kL1iMissStall, s.l1i_miss_stall_cycles);
    res.coverage.note_event(Event::kSbFullStall, s.sb_full_stall_cycles);
    res.coverage.note_event(Event::kRawHazardStall, s.raw_hazard_stall_cycles);
    res.coverage.note_event(Event::kExBusyStall, s.ex_busy_stall_cycles);
    res.coverage.note_event(Event::kDualIssue, s.dual_issue_commits);
    const mem::StoreBufferStats& sb = rig.soc.core(i).sb_stats();
    res.coverage.note_event(Event::kSbCoalesce, sb.coalesced);
    res.coverage.note_event(Event::kSbDrain, sb.drained);
  }
  const monitor::SafeDmCounters& mc = rig.exh.counters();
  res.coverage.note_event(Event::kNodiv, mc.nodiv_cycles);
  res.coverage.note_event(Event::kInterrupt, mc.interrupts);
  res.coverage.note_event(Event::kStagger, mc.monitored_cycles - mc.zero_stag_cycles);
  if (res.pipe_state.halt == isa::HaltReason::kIllegalInst)
    res.coverage.note_event(Event::kIllegalHalt);

  if (res.verdict != OracleVerdict::kPass) return res;

  // ---- layer 1: architectural equivalence ----------------------------------
  if (iss.timed_out || !rig.soc.all_halted()) {
    res.verdict = OracleVerdict::kTimeout;
    std::ostringstream os;
    os << "iss halted=" << !iss.timed_out << " (instret " << iss.state.instret << "), soc halted="
       << rig.soc.all_halted() << " (cycle " << rig.soc.cycle() << ")";
    res.detail = os.str();
    return res;
  }
  // The pipeline counts the faulting word at WB (it must reach writeback to
  // raise the halt), while the ISS only counts architecturally retired
  // instructions — so an illegal-instruction halt carries one extra commit.
  const u64 commits = rig.soc.core(0).stats().committed;
  const u64 expected_commits =
      iss.state.instret + (iss.state.halt == isa::HaltReason::kIllegalInst ? 1 : 0);
  if (iss.state.halt != res.pipe_state.halt || iss.state.instret != res.pipe_state.instret ||
      expected_commits != commits || iss.state.x != res.pipe_state.x ||
      iss.state.f != res.pipe_state.f) {
    res.verdict = OracleVerdict::kArchMismatch;
    res.detail = describe_arch_mismatch(iss.state, res.pipe_state, expected_commits, commits);
    return res;
  }

  std::vector<u8> pipe_data(image.data_segment_bytes());
  rig.soc.memory().read_block(rig.soc.data_base(0), pipe_data);
  if (pipe_data != iss.data) {
    res.verdict = OracleVerdict::kDataMismatch;
    for (std::size_t i = 0; i < pipe_data.size(); ++i) {
      if (pipe_data[i] != iss.data[i]) {
        std::ostringstream os;
        os << "data[+0x" << std::hex << i << "]: iss=0x" << int(iss.data[i]) << " pipe=0x"
           << int(pipe_data[i]);
        res.detail = os.str();
        break;
      }
    }
    return res;
  }

  // ---- layer 3: snapshot/restore/re-execute equivalence --------------------
  if (!snapshot_bytes.empty()) {
    const std::vector<u8> final_fp = rig.fingerprint();

    Rig replay(cfg, image);
    {
      StateReader r(snapshot_bytes);
      replay.soc.restore_state(r);
      replay.inc.restore_state(r);
      replay.exh.restore_state(r);
      replay.bat.restore_state(r);
    }
    // Feed the replayed batched twin with a different (coprime) chunk size:
    // fingerprint equality then also proves batch-boundary independence.
    BatchFeeder replay_feeder(replay.bat, 23);
    while (!replay.soc.all_halted() && replay.soc.cycle() < cfg.max_cycles) {
      replay.soc.step();
      replay_feeder.push(replay.soc.cycle(), replay.soc.frame(0), replay.soc.frame(1));
    }
    replay_feeder.flush();

    if (replay.soc.cycle() != res.cycles || replay.fingerprint() != final_fp) {
      res.verdict = OracleVerdict::kSnapshotMismatch;
      std::ostringstream os;
      os << "restored-at-cycle-" << snapshot_at << " run ended at cycle " << replay.soc.cycle()
         << " vs " << res.cycles << (replay.soc.cycle() == res.cycles ? " (state differs)" : "");
      res.detail = os.str();
      return res;
    }
  }

  return res;
}

OracleResult run_differential(const FuzzProgram& program, const OracleConfig& cfg) {
  return run_differential(materialize(program), cfg);
}

}  // namespace safedm::fuzz
