#include "safedm/fuzz/shrink.hpp"

#include <algorithm>

namespace safedm::fuzz {

namespace {

class Shrinker {
 public:
  Shrinker(const FuzzProgram& program, const ShrinkConfig& config)
      : current_(program), config_(config) {}

  ShrinkResult run() {
    ShrinkResult out;
    const OracleResult first = oracle(current_);
    out.oracle_runs = runs_;
    if (first.ok()) {
      out.program = current_;
      out.op_count = current_.op_count();
      return out;
    }
    target_ = first.verdict;
    out.reproduced = true;

    bool changed = true;
    while (changed && runs_ < config_.max_oracle_runs) {
      changed = false;
      changed |= drop_blocks();
      changed |= simplify_loops();
      changed |= drop_skips();
      changed |= drop_ops();
      changed |= zero_imms();
    }

    const OracleResult last = oracle(current_);
    out.program = current_;
    out.verdict = target_;
    out.detail = last.verdict == target_ ? last.detail : first.detail;
    out.op_count = current_.op_count();
    out.oracle_runs = runs_;
    return out;
  }

 private:
  OracleResult oracle(const FuzzProgram& p) {
    ++runs_;
    return run_differential(p, config_.oracle);
  }

  bool budget_left() const { return runs_ < config_.max_oracle_runs; }

  /// Adopt `candidate` iff the failure category still reproduces.
  bool try_adopt(const FuzzProgram& candidate) {
    if (!budget_left()) return false;
    if (oracle(candidate).verdict != target_) return false;
    current_ = candidate;
    return true;
  }

  /// ddmin-style chunked removal of whole blocks.
  bool drop_blocks() {
    bool any = false;
    for (std::size_t chunk = std::max<std::size_t>(current_.blocks.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
      for (std::size_t pos = 0; pos + 1 <= current_.blocks.size() && budget_left();) {
        if (current_.blocks.size() <= 1) return any;  // keep one block alive
        FuzzProgram cand = current_;
        const std::size_t n = std::min(chunk, cand.blocks.size() - pos);
        cand.blocks.erase(cand.blocks.begin() + static_cast<long>(pos),
                          cand.blocks.begin() + static_cast<long>(pos + n));
        if (!cand.blocks.empty() && try_adopt(cand))
          any = true;  // same pos now names the next chunk
        else
          pos += chunk;
      }
      if (chunk == 1) break;
    }
    return any;
  }

  bool simplify_loops() {
    bool any = false;
    for (std::size_t b = 0; b < current_.blocks.size() && budget_left(); ++b) {
      if (current_.blocks[b].loop_iters % 10 == 0) continue;
      for (u8 iters : {u8{0}, u8{1}}) {
        if (current_.blocks[b].loop_iters % 10 == iters) break;
        FuzzProgram cand = current_;
        cand.blocks[b].loop_iters = iters;
        if (try_adopt(cand)) {
          any = true;
          break;
        }
      }
    }
    return any;
  }

  bool drop_skips() {
    bool any = false;
    for (std::size_t b = 0; b < current_.blocks.size() && budget_left(); ++b) {
      if (!current_.blocks[b].cond_skip && current_.blocks[b].skip.empty()) continue;
      FuzzProgram cand = current_;
      cand.blocks[b].cond_skip = false;
      cand.blocks[b].skip.clear();
      if (try_adopt(cand)) any = true;
    }
    return any;
  }

  bool drop_ops() {
    bool any = false;
    // Lists addressed as (block, which): 0 = straight, 1 = body, 2 = skip.
    for (std::size_t b = 0; b < current_.blocks.size(); ++b) {
      for (int which = 0; which < 3; ++which) {
        for (std::size_t chunk = std::max<std::size_t>(list(current_, b, which).size() / 2, 1);
             chunk >= 1; chunk /= 2) {
          for (std::size_t pos = 0; pos < list(current_, b, which).size() && budget_left();) {
            FuzzProgram cand = current_;
            auto& ops = list(cand, b, which);
            const std::size_t n = std::min(chunk, ops.size() - pos);
            ops.erase(ops.begin() + static_cast<long>(pos),
                      ops.begin() + static_cast<long>(pos + n));
            if (try_adopt(cand))
              any = true;
            else
              pos += chunk;
          }
          if (chunk == 1) break;
        }
      }
    }
    return any;
  }

  bool zero_imms() {
    bool any = false;
    for (std::size_t b = 0; b < current_.blocks.size(); ++b) {
      for (int which = 0; which < 3; ++which) {
        auto& ops = list(current_, b, which);
        for (std::size_t i = 0; i < ops.size() && budget_left(); ++i) {
          if (ops[i].imm == 0) continue;
          FuzzProgram cand = current_;
          list(cand, b, which)[i].imm = 0;
          if (try_adopt(cand)) any = true;
        }
      }
    }
    return any;
  }

  static std::vector<FuzzOp>& list(FuzzProgram& p, std::size_t block, int which) {
    FuzzBlock& b = p.blocks[block];
    return which == 0 ? b.straight : which == 1 ? b.body : b.skip;
  }
  static const std::vector<FuzzOp>& list(const FuzzProgram& p, std::size_t block, int which) {
    const FuzzBlock& b = p.blocks[block];
    return which == 0 ? b.straight : which == 1 ? b.body : b.skip;
  }

  FuzzProgram current_;
  ShrinkConfig config_;
  OracleVerdict target_ = OracleVerdict::kPass;
  unsigned runs_ = 0;
};

}  // namespace

ShrinkResult shrink(const FuzzProgram& program, const ShrinkConfig& config) {
  return Shrinker(program, config).run();
}

}  // namespace safedm::fuzz
