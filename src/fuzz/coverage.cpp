#include "safedm/fuzz/coverage.hpp"

namespace safedm::fuzz {

const char* event_name(Event e) {
  switch (e) {
    case Event::kMispredict: return "mispredict";
    case Event::kL1dMissStall: return "l1d_miss_stall";
    case Event::kL1iMissStall: return "l1i_miss_stall";
    case Event::kSbFullStall: return "sb_full_stall";
    case Event::kRawHazardStall: return "raw_hazard_stall";
    case Event::kExBusyStall: return "ex_busy_stall";
    case Event::kSbCoalesce: return "sb_coalesce";
    case Event::kSbDrain: return "sb_drain";
    case Event::kDualIssue: return "dual_issue";
    case Event::kStagger: return "stagger";
    case Event::kNodiv: return "nodiv";
    case Event::kInterrupt: return "interrupt";
    case Event::kSnapshotTaken: return "snapshot_taken";
    case Event::kIllegalHalt: return "illegal_halt";
  }
  return "?";
}

void CoverageMap::bump(std::size_t feature, u64 n) {
  u64& c = counts_[feature];
  c = (c + n < c) ? ~u64{0} : c + n;  // saturate
}

void CoverageMap::note_mnemonic(isa::Mnemonic m, u64 n) {
  if (m == isa::Mnemonic::kInvalid) return;
  bump(static_cast<std::size_t>(m), n);
}

void CoverageMap::note_format(isa::Format f, u64 n) {
  bump(isa::kMnemonicCount + static_cast<std::size_t>(f), n);
}

void CoverageMap::note_event(Event e, u64 n) {
  if (n == 0) return;
  bump(isa::kMnemonicCount + kFormatCount + static_cast<std::size_t>(e), n);
}

void CoverageMap::note_verdict_edge(unsigned from, unsigned to, u64 n) {
  bump(isa::kMnemonicCount + kFormatCount + kEventCount +
           (from % kVerdictStates) * kVerdictStates + (to % kVerdictStates),
       n);
}

std::size_t CoverageMap::features_hit() const {
  std::size_t hit = 0;
  for (u64 c : counts_) hit += c != 0;
  return hit;
}

u64 CoverageMap::total_hits() const {
  u64 total = 0;
  for (u64 c : counts_) total = (total + c < total) ? ~u64{0} : total + c;
  return total;
}

std::size_t CoverageMap::merge_count_new(const CoverageMap& run) {
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    if (run.counts_[i] == 0) continue;
    if (counts_[i] == 0) ++fresh;
    bump(i, run.counts_[i]);
  }
  return fresh;
}

CoverageMap::Breakdown CoverageMap::hit_breakdown() const {
  Breakdown b;
  std::size_t i = 0;
  for (; i < isa::kMnemonicCount; ++i) b.opcodes += counts_[i] != 0;
  for (; i < isa::kMnemonicCount + kFormatCount; ++i) b.formats += counts_[i] != 0;
  for (; i < isa::kMnemonicCount + kFormatCount + kEventCount; ++i) b.events += counts_[i] != 0;
  for (; i < kFeatureCount; ++i) b.verdict_edges += counts_[i] != 0;
  return b;
}

}  // namespace safedm::fuzz
