// Dual-Core LockStep (DCLS) comparator baseline (paper Fig. 1, Section II).
//
// Classic lockstep ties two identical cores together, replicates inputs,
// and compares outputs with some cycles of staggering: any divergence is
// an error. We model the comparator at the architectural commit stream —
// each retired instruction's {encoding, destination value} from the head
// core is queued and checked against the shadow core's stream — which
// makes the checker robust to micro-timing skew while still catching any
// architectural divergence immediately.
//
// The point of carrying this baseline: DCLS detects *differing* errors
// only. When a common-cause fault corrupts both cores identically (which
// requires their state to be identical — exactly what SafeDM's
// no-diversity verdict flags), both commit streams stay equal and the
// comparator is blind. The DCLS bench demonstrates that escape.
//
// Modelling note: real DCLS replicates inputs and never lets the shadow
// core drive the bus. We approximate input replication with a shared data
// segment, which is exact for tasks that do not mutate their input
// (read-only data + result stores); input-mutating tasks would race on
// the live shared array, an artifact of the approximation, not of DCLS.
#pragma once

#include <deque>

#include "safedm/common/bits.hpp"
#include "safedm/soc/soc.hpp"

namespace safedm::dcls {

struct DclsConfig {
  unsigned head_core = 0;     // the user-visible core; the other is the shadow
  std::size_t max_queue = 4096;  // skew bound before declaring desync
};

struct DclsStats {
  u64 compared_commits = 0;
  u64 mismatches = 0;         // architectural divergence events
  u64 max_skew = 0;           // deepest queue occupancy seen (commits)
  bool desynchronized = false;  // skew bound exceeded
};

class DclsChecker final : public soc::CycleObserver {
 public:
  explicit DclsChecker(const DclsConfig& config) : config_(config) {}

  void on_cycle(u64 cycle, const core::CoreTapFrame& frame0,
                const core::CoreTapFrame& frame1) override;

  bool error_detected() const { return stats_.mismatches > 0 || stats_.desynchronized; }
  const DclsStats& stats() const { return stats_; }
  const DclsConfig& config() const { return config_; }

  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  struct CommitRecord {
    u32 encoding = 0;
    bool rd_written = false;
    u64 rd_value = 0;

    bool operator==(const CommitRecord&) const = default;
  };

  void collect(unsigned which, const core::CoreTapFrame& frame,
               std::deque<CommitRecord>& out);

  DclsConfig config_;  // lint: no-snapshot(structural configuration; restore validates against it)
  // The retiring instructions' encodings are visible in the WB stage the
  // cycle *before* their commit is reported; keep the previous snapshot.
  std::array<std::array<core::StageSlotTap, core::kMaxIssueWidth>, 2> prev_wb_{};
  std::deque<CommitRecord> head_queue_;
  std::deque<CommitRecord> shadow_queue_;
  DclsStats stats_;
};

}  // namespace safedm::dcls
