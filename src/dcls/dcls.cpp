#include "safedm/dcls/dcls.hpp"

#include <algorithm>

namespace safedm::dcls {

void DclsChecker::collect(unsigned which, const core::CoreTapFrame& frame,
                          std::deque<CommitRecord>& out) {
  // `frame.commits` retirements correspond to the slots that sat in WB in
  // the previous cycle's snapshot; their result values ride on this
  // cycle's write ports.
  unsigned lane_commits = 0;
  for (unsigned lane = 0; lane < core::kMaxIssueWidth && lane_commits < frame.commits;
       ++lane) {
    const core::StageSlotTap& slot = prev_wb_[which][lane];
    if (!slot.valid) continue;
    ++lane_commits;
    CommitRecord record;
    record.encoding = slot.encoding;
    const core::PortTap& wr =
        frame.port[static_cast<unsigned>(lane == 0 ? core::Port::kLane0Wr
                                                   : core::Port::kLane1Wr)];
    record.rd_written = wr.enable;
    record.rd_value = wr.enable ? wr.value : 0;
    out.push_back(record);
  }
  prev_wb_[which] = frame.stage[static_cast<unsigned>(core::Stage::kWB)];
}

void DclsChecker::on_cycle(u64, const core::CoreTapFrame& frame0,
                           const core::CoreTapFrame& frame1) {
  const auto& head_frame = config_.head_core == 0 ? frame0 : frame1;
  const auto& shadow_frame = config_.head_core == 0 ? frame1 : frame0;
  collect(0, head_frame, head_queue_);
  collect(1, shadow_frame, shadow_queue_);

  while (!head_queue_.empty() && !shadow_queue_.empty()) {
    const CommitRecord head = head_queue_.front();
    const CommitRecord shadow = shadow_queue_.front();
    head_queue_.pop_front();
    shadow_queue_.pop_front();
    ++stats_.compared_commits;
    if (!(head == shadow)) ++stats_.mismatches;
  }
  stats_.max_skew =
      std::max<u64>(stats_.max_skew, std::max(head_queue_.size(), shadow_queue_.size()));
  if (head_queue_.size() > config_.max_queue || shadow_queue_.size() > config_.max_queue)
    stats_.desynchronized = true;
}

}  // namespace safedm::dcls
