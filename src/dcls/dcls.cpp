#include "safedm/dcls/dcls.hpp"

#include <algorithm>

#include "safedm/common/state.hpp"

namespace safedm::dcls {

void DclsChecker::collect(unsigned which, const core::CoreTapFrame& frame,
                          std::deque<CommitRecord>& out) {
  // `frame.commits` retirements correspond to the slots that sat in WB in
  // the previous cycle's snapshot; their result values ride on this
  // cycle's write ports.
  unsigned lane_commits = 0;
  for (unsigned lane = 0; lane < core::kMaxIssueWidth && lane_commits < frame.commits;
       ++lane) {
    const core::StageSlotTap& slot = prev_wb_[which][lane];
    if (!slot.valid) continue;
    ++lane_commits;
    CommitRecord record;
    record.encoding = slot.encoding;
    const core::PortTap& wr =
        frame.port[static_cast<unsigned>(lane == 0 ? core::Port::kLane0Wr
                                                   : core::Port::kLane1Wr)];
    record.rd_written = wr.enable;
    record.rd_value = wr.enable ? wr.value : 0;
    out.push_back(record);
  }
  prev_wb_[which] = frame.stage[static_cast<unsigned>(core::Stage::kWB)];
}

void DclsChecker::on_cycle(u64, const core::CoreTapFrame& frame0,
                           const core::CoreTapFrame& frame1) {
  const auto& head_frame = config_.head_core == 0 ? frame0 : frame1;
  const auto& shadow_frame = config_.head_core == 0 ? frame1 : frame0;
  collect(0, head_frame, head_queue_);
  collect(1, shadow_frame, shadow_queue_);

  while (!head_queue_.empty() && !shadow_queue_.empty()) {
    const CommitRecord head = head_queue_.front();
    const CommitRecord shadow = shadow_queue_.front();
    head_queue_.pop_front();
    shadow_queue_.pop_front();
    ++stats_.compared_commits;
    if (!(head == shadow)) ++stats_.mismatches;
  }
  stats_.max_skew =
      std::max<u64>(stats_.max_skew, std::max(head_queue_.size(), shadow_queue_.size()));
  if (head_queue_.size() > config_.max_queue || shadow_queue_.size() > config_.max_queue)
    stats_.desynchronized = true;
}

void DclsChecker::save_state(StateWriter& w) const {
  w.begin_section("DCLS", 1);
  for (const auto& lane : prev_wb_)
    for (const core::StageSlotTap& slot : lane) {
      w.put_u32(slot.valid);
      w.put_u32(slot.encoding);
    }
  for (const std::deque<CommitRecord>* queue : {&head_queue_, &shadow_queue_}) {
    w.put_u64(queue->size());
    for (const CommitRecord& rec : *queue) {
      w.put_u32(rec.encoding);
      w.put_bool(rec.rd_written);
      w.put_u64(rec.rd_value);
    }
  }
  w.put_u64(stats_.compared_commits);
  w.put_u64(stats_.mismatches);
  w.put_u64(stats_.max_skew);
  w.put_bool(stats_.desynchronized);
  w.end_section();
}

void DclsChecker::restore_state(StateReader& r) {
  r.begin_section("DCLS", 1);
  for (auto& lane : prev_wb_)
    for (core::StageSlotTap& slot : lane) {
      slot.valid = r.get_u32();
      slot.encoding = r.get_u32();
    }
  for (std::deque<CommitRecord>* queue : {&head_queue_, &shadow_queue_}) {
    queue->clear();
    const u64 n = r.get_u64();
    if (n > config_.max_queue + core::kMaxIssueWidth)
      throw StateError("DCLS queue overflow in snapshot");
    for (u64 i = 0; i < n; ++i) {
      CommitRecord rec;
      rec.encoding = r.get_u32();
      rec.rd_written = r.get_bool();
      rec.rd_value = r.get_u64();
      queue->push_back(rec);
    }
  }
  stats_.compared_commits = r.get_u64();
  stats_.mismatches = r.get_u64();
  stats_.max_skew = r.get_u64();
  stats_.desynchronized = r.get_bool();
  r.end_section();
}

}  // namespace safedm::dcls
