#include "safedm/core/branch_predictor.hpp"

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::core {

BranchPredictor::BranchPredictor(const BranchPredictorConfig& config) : config_(config) {
  SAFEDM_CHECK(is_pow2(config.bht_entries) && is_pow2(config.btb_entries));
  reset();
}

void BranchPredictor::reset() {
  bht_.assign(config_.bht_entries, 1);  // weakly not-taken
  btb_.assign(config_.btb_entries, {});
}

BranchPredictor::Prediction BranchPredictor::predict_branch(u64 pc) {
  ++stats_.lookups;
  if (!config_.enabled) return {};
  Prediction p;
  p.taken = bht_[bht_index(pc)] >= 2;
  if (p.taken) {
    ++stats_.predicted_taken;
    const BtbEntry& e = btb_[btb_index(pc)];
    if (e.valid && e.tag == pc) {
      p.target = e.target;
      p.has_target = true;
    } else {
      // Direction says taken but no target known: fall through (the core
      // treats a direction-only prediction as not-taken).
      p.taken = false;
    }
  }
  return p;
}

BranchPredictor::Prediction BranchPredictor::predict_indirect(u64 pc) {
  ++stats_.lookups;
  if (!config_.enabled) return {};
  const BtbEntry& e = btb_[btb_index(pc)];
  Prediction p;
  if (e.valid && e.tag == pc) {
    p.taken = true;
    p.target = e.target;
    p.has_target = true;
  }
  return p;
}

void BranchPredictor::train(u64 pc, bool taken, u64 target) {
  if (!config_.enabled) return;
  ++stats_.trains;
  u8& counter = bht_[bht_index(pc)];
  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  if (taken) {
    BtbEntry& e = btb_[btb_index(pc)];
    e.valid = true;
    e.tag = pc;
    e.target = target;
  }
}

void BranchPredictor::save_state(StateWriter& w) const {
  w.begin_section("BPRD", 1);
  w.put_u32(config_.bht_entries);
  w.put_u32(config_.btb_entries);
  w.put_bytes(bht_.data(), bht_.size());
  for (const BtbEntry& e : btb_) {
    w.put_bool(e.valid);
    w.put_u64(e.tag);
    w.put_u64(e.target);
  }
  w.put_u64(stats_.lookups);
  w.put_u64(stats_.predicted_taken);
  w.put_u64(stats_.trains);
  w.put_u64(stats_.mispredicts);
  w.end_section();
}

void BranchPredictor::restore_state(StateReader& r) {
  r.begin_section("BPRD", 1);
  if (r.get_u32() != config_.bht_entries || r.get_u32() != config_.btb_entries)
    throw StateError("branch predictor geometry mismatch");
  r.get_bytes(bht_.data(), bht_.size());
  for (BtbEntry& e : btb_) {
    e.valid = r.get_bool();
    e.tag = r.get_u64();
    e.target = r.get_u64();
  }
  stats_.lookups = r.get_u64();
  stats_.predicted_taken = r.get_u64();
  stats_.trains = r.get_u64();
  stats_.mispredicts = r.get_u64();
  r.end_section();
}

}  // namespace safedm::core
