// SafeDM observation interface ("taps") exported by the core model.
//
// This is the hardware boundary from the paper's Fig. 4: the Signature
// generator consumes, per cycle and per core, (a) the instruction encoding
// + valid bit of every pipeline-stage slot, (b) the value + enable of each
// monitored register-file port, and (c) the hold signal that freezes the
// FIFOs while the pipeline is stalled. SafeDM is built only against this
// interface, which keeps it portable across core models.
#pragma once

#include <array>

#include "safedm/common/bits.hpp"

namespace safedm::core {

inline constexpr unsigned kPipelineStages = 7;  // F1 F2 D RA EX ME WB
inline constexpr unsigned kMaxIssueWidth = 2;   // dual issue
inline constexpr unsigned kMaxPorts = 6;        // monitored register ports

/// Names of the 7 NOEL-V-style stages, index-aligned with tap frames.
enum class Stage : u8 { kF1 = 0, kF2, kD, kRA, kEX, kME, kWB };
const char* stage_name(Stage stage);

/// Monitored register-file ports. The paper's integration uses 4 FIFOs
/// (Section IV-B1); the "paper" preset taps ports 0..3, the "full" preset
/// taps all 6.
enum class Port : u8 {
  kLane0Rs1 = 0,
  kLane0Rs2 = 1,
  kLane0Wr = 2,
  kLane1Wr = 3,
  kLane1Rs1 = 4,
  kLane1Rs2 = 5,
};

struct StageSlotTap {
  // `valid` is a full word (producers write 0 or 1) so the slot has no
  // padding bytes: one slot == one 64-bit wire word, which lets the
  // signature generator snapshot and compare whole pipelines as flat
  // 64-bit loads instead of per-field walks.
  u32 valid = 0;
  u32 encoding = 0;

  bool operator==(const StageSlotTap&) const = default;
};

struct PortTap {
  bool enable = false;
  u64 value = 0;

  bool operator==(const PortTap&) const = default;
};

/// Everything SafeDM can see of one core in one cycle.
struct CoreTapFrame {
  std::array<std::array<StageSlotTap, kMaxIssueWidth>, kPipelineStages> stage{};
  std::array<PortTap, kMaxPorts> port{};
  bool hold = false;      // no pipeline movement this cycle: FIFOs freeze
  unsigned commits = 0;   // instructions retired this cycle (Instruction diff)
  bool halted = false;

  bool operator==(const CoreTapFrame&) const = default;

  StageSlotTap& slot(Stage s, unsigned lane) {
    return stage[static_cast<unsigned>(s)][lane];
  }
  const StageSlotTap& slot(Stage s, unsigned lane) const {
    return stage[static_cast<unsigned>(s)][lane];
  }
  PortTap& at(Port p) { return port[static_cast<unsigned>(p)]; }
  const PortTap& at(Port p) const { return port[static_cast<unsigned>(p)]; }
};

}  // namespace safedm::core
