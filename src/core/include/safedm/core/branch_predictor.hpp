// Bimodal branch predictor with a direct-mapped BTB, after NOEL-V's
// BHT/BTB front end. Predictor initial state is part of the natural
// diversity story (paper Section V-C mentions branch predictor state), so
// it is explicit, resettable and inspectable.
#pragma once

#include <vector>

#include "safedm/common/bits.hpp"

namespace safedm {
class StateReader;
class StateWriter;
}  // namespace safedm

namespace safedm::core {

struct BranchPredictorConfig {
  unsigned bht_entries = 64;  // 2-bit bimodal counters
  unsigned btb_entries = 16;  // direct-mapped, tagged
  bool enabled = true;        // disabled: always predict fall-through
};

struct BranchPredictorStats {
  u64 lookups = 0;
  u64 predicted_taken = 0;
  u64 trains = 0;
  u64 mispredicts = 0;  // incremented by the core on resolution
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& config);

  struct Prediction {
    bool taken = false;
    u64 target = 0;
    bool has_target = false;  // BTB hit (target trustworthy)
  };

  /// Direction + target prediction for a conditional branch at `pc`.
  Prediction predict_branch(u64 pc);

  /// Target prediction for an indirect jump (jalr) at `pc`.
  Prediction predict_indirect(u64 pc);

  /// Train after resolution in EX.
  void train(u64 pc, bool taken, u64 target);

  void note_mispredict() { ++stats_.mispredicts; }
  const BranchPredictorStats& stats() const { return stats_; }
  void reset();

  /// BHT counters + BTB entries + stats (reset() leaves stats alone, so
  /// they are serialized explicitly here).
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  struct BtbEntry {
    bool valid = false;
    u64 tag = 0;
    u64 target = 0;
  };

  unsigned bht_index(u64 pc) const {
    return static_cast<unsigned>((pc >> 2) & (config_.bht_entries - 1));
  }
  unsigned btb_index(u64 pc) const {
    return static_cast<unsigned>((pc >> 2) & (config_.btb_entries - 1));
  }

  BranchPredictorConfig config_;
  std::vector<u8> bht_;       // 2-bit saturating counters, init weakly not-taken
  std::vector<BtbEntry> btb_;
  BranchPredictorStats stats_;
};

}  // namespace safedm::core
