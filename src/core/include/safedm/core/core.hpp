// Cycle-stepped model of a NOEL-V-style RV64 core:
// dual-issue, in-order, 7-stage pipeline (F1 F2 D RA EX ME WB), private
// write-through/write-no-allocate L1 D-cache, L1 I-cache, coalescing store
// buffer, bimodal BHT + BTB, AHB master port towards the shared L2.
//
// Functional semantics come from the same Iss::execute the golden ISS
// uses (executed once per instruction when its group enters EX), so the
// pipeline cannot diverge architecturally from the reference model; the
// pipeline machinery only decides *when* things happen. Every cycle the
// core publishes a CoreTapFrame for SafeDM.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "safedm/bus/ahb.hpp"
#include "safedm/core/branch_predictor.hpp"
#include "safedm/core/tap.hpp"
#include "safedm/isa/iss.hpp"
#include "safedm/mem/cache.hpp"
#include "safedm/mem/store_buffer.hpp"

namespace safedm::core {

struct CoreConfig {
  mem::CacheConfig l1i{.size_bytes = 16 * 1024, .ways = 4, .line_bytes = 32};
  mem::CacheConfig l1d{.size_bytes = 16 * 1024, .ways = 4, .line_bytes = 32};
  mem::StoreBufferConfig store_buffer{.entries = 8, .line_bytes = 32, .coalesce = true};
  BranchPredictorConfig predictor{};

  /// Uncached MMIO window (APB peripherals): accesses bypass the caches
  /// and the store buffer and pay a fixed bus latency.
  u64 mmio_base = 0x8000'0000;
  u64 mmio_size = 0x0010'0000;
  unsigned mmio_latency = 8;

  // EX occupancy in cycles per execution class.
  unsigned mul_latency = 3;
  unsigned div_latency = 35;
  unsigned fp_add_latency = 4;
  unsigned fp_mul_latency = 4;
  unsigned fp_fma_latency = 5;
  unsigned fp_div_latency = 25;
};

struct CoreStats {
  u64 cycles = 0;
  u64 committed = 0;
  u64 committed_groups = 0;
  u64 dual_issue_commits = 0;  // groups that retired 2 instructions
  u64 mispredicts = 0;
  u64 l1d_miss_stall_cycles = 0;
  u64 l1i_miss_stall_cycles = 0;
  u64 sb_full_stall_cycles = 0;
  u64 raw_hazard_stall_cycles = 0;
  u64 ex_busy_stall_cycles = 0;
  u64 external_stall_cycles = 0;
};

class Core final : public bus::AhbCompletion {
 public:
  /// `mem` provides functional data (fetch + load/store); `bus` carries the
  /// timing transactions towards the shared L2.
  Core(const CoreConfig& config, MemoryPort& mem, bus::AhbBus& bus, std::string name);

  /// Reset architectural and microarchitectural state; execution begins at
  /// `boot_pc` with a0 = `data_base` and sp = `stack_top` (the loader's ABI
  /// convention — each redundant process gets its own data segment).
  void reset(u64 boot_pc, u64 data_base, u64 stack_top);

  /// Advance one clock cycle; fills `frame` with this cycle's tap data.
  void step(CoreTapFrame& frame);

  bool halted() const { return pipeline_halted_; }
  isa::HaltReason halt_reason() const { return arch_.halt; }

  /// SafeDE-style enforcement hook: while true, the core is frozen
  /// (clock-gated); cycles still elapse.
  void set_external_stall(bool stalled) { external_stall_ = stalled; }
  bool external_stall() const { return external_stall_; }

  /// Fault-injection hook: flip one bit of an architectural integer
  /// register (models a transient fault in the register file). x0 is
  /// hardwired and immune.
  void flip_architectural_bit(u8 reg, unsigned bit);

  const isa::ArchState& arch() const { return arch_; }
  const CoreStats& stats() const { return stats_; }
  const mem::CacheStats& l1i_stats() const { return l1i_.stats(); }
  const mem::CacheStats& l1d_stats() const { return l1d_.stats(); }
  const mem::StoreBufferStats& sb_stats() const { return sb_.stats(); }
  const BranchPredictor& predictor() const { return predictor_; }
  const std::string& name() const { return name_; }
  u64 cycle() const { return cycle_; }

  // AhbCompletion
  void bus_complete(const bus::BusTxn& txn) override;

  /// Full core state: architectural registers, L1/SB/predictor, pipeline
  /// latches, ME/fetch FSMs, scoreboard ready cycles, stats. Decoded
  /// instructions are re-derived from the raw encodings on restore.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  struct Slot {
    bool valid = false;
    u64 pc = 0;
    u32 raw = 0;
    isa::DecodedInst inst;
    u64 predicted_next = 0;  // pc the fetch stream assumed follows this slot
    // Captured at execute time (EX entry) for register-port taps:
    u64 rs1_value = 0, rs2_value = 0;
    bool rs1_read = false, rs2_read = false;
    u64 rd_value = 0;
    bool rd_written = false;
    u64 mem_addr = 0;  // effective address for loads/stores
  };

  struct Group {
    std::array<Slot, kMaxIssueWidth> slot{};
    bool any() const { return slot[0].valid || slot[1].valid; }
    void clear() { slot = {}; }
  };

  enum class MemState : u8 {
    kIdle,          // nothing outstanding in ME
    kNeedRefill,    // load miss waiting to win the master port
    kRefillWait,    // refill transaction in flight
    kStorePending,  // store waiting for a store-buffer slot
    kFenceDrain,    // fence waiting for the store buffer to empty
    kMmioWait,      // uncached peripheral access in flight
    kDone,          // ME work finished, group may move to WB
  };

  // Per-cycle phases.
  void retire(CoreTapFrame& frame);
  bool step_me();                    // returns true when ME group may leave
  void enter_me(Group& group);
  void enter_ex(Group& group, CoreTapFrame& frame);
  bool ra_ready(const Group& group) const;
  void fetch();
  void service_bus_requests();
  void flush_frontend(u64 redirect_pc);
  void snapshot_stages(CoreTapFrame& frame) const;

  unsigned ex_latency(const Group& group) const;
  u64& reg_ready(bool fp, u8 reg) { return fp ? f_ready_[reg] : x_ready_[reg]; }
  u64 reg_ready(bool fp, u8 reg) const { return fp ? f_ready_[reg] : x_ready_[reg]; }

  bool try_pair(const isa::DecodedInst& first, const isa::DecodedInst& second) const;

  CoreConfig config_;  // lint: no-snapshot(structural configuration; geometry lives in sub-block fingerprints)
  MemoryPort& mem_;
  bus::AhbBus& bus_;
  int bus_id_ = -1;    // lint: no-snapshot(bus attach slot, fixed at construction)
  std::string name_;   // lint: no-snapshot(structural identity, fixed at construction)

  isa::ArchState arch_;
  mem::CacheTags l1i_;
  mem::CacheTags l1d_;
  mem::StoreBuffer sb_;
  BranchPredictor predictor_;

  std::array<Group, kPipelineStages> stage_{};
  u64 fetch_pc_ = 0;
  bool fetch_enabled_ = false;

  std::array<u64, 32> x_ready_{};
  std::array<u64, 32> f_ready_{};

  u64 cycle_ = 0;
  u64 ex_ready_cycle_ = 0;  // cycle at which the EX group may leave

  MemState me_state_ = MemState::kIdle;
  u64 me_refill_line_ = 0;
  u64 me_store_addr_ = 0;
  u64 me_mmio_done_cycle_ = 0;
  u8 me_load_rd_ = 0;
  bool me_load_fp_ = false;
  bool redirect_bubble_ = false;  // one dead fetch cycle after a flush

  bool icache_wait_ = false;       // refill in flight for the fetch line
  bool icache_need_refill_ = false;
  u64 icache_refill_line_ = 0;

  bool sb_drain_in_flight_ = false;

  bool pipeline_halted_ = false;
  bool halt_seen_ = false;  // halting instruction executed; stop fetching
  bool external_stall_ = false;
  bool moved_this_cycle_ = false;

  CoreStats stats_;
};

}  // namespace safedm::core
