#include "safedm/core/core.hpp"

#include <algorithm>

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"
#include "safedm/isa/decode.hpp"

namespace safedm::core {
namespace {

constexpr unsigned kF1 = 0, kF2 = 1, kD = 2, kRA = 3, kEX = 4, kME = 5, kWB = 6;

// Bus transaction tags for this core's master port.
constexpr u32 kTagIFetch = 1;
constexpr u32 kTagDRefill = 2;
constexpr u32 kTagSbDrain = 3;

bool is_mem(const isa::InstInfo& ii) { return ii.is_load() || ii.is_store(); }

bool is_long_latency(const isa::InstInfo& ii) {
  switch (ii.exec_class) {
    case isa::ExecClass::kMul:
    case isa::ExecClass::kDiv:
    case isa::ExecClass::kFpAdd:
    case isa::ExecClass::kFpMul:
    case isa::ExecClass::kFpDiv:
    case isa::ExecClass::kFpFma:
      return true;
    default:
      return false;
  }
}

bool is_halting(const isa::InstInfo& ii) {
  return ii.exec_class == isa::ExecClass::kEcall || ii.exec_class == isa::ExecClass::kEbreak;
}

}  // namespace

const char* stage_name(Stage stage) {
  static constexpr const char* kNames[] = {"F1", "F2", "D", "RA", "EX", "ME", "WB"};
  return kNames[static_cast<unsigned>(stage)];
}

Core::Core(const CoreConfig& config, MemoryPort& mem, bus::AhbBus& bus, std::string name)
    : config_(config),
      mem_(mem),
      bus_(bus),
      name_(std::move(name)),
      l1i_(config.l1i, name_ + ".l1i"),
      l1d_(config.l1d, name_ + ".l1d"),
      sb_(config.store_buffer),
      predictor_(config.predictor) {
  bus_id_ = bus_.attach(this, name_);
}

void Core::reset(u64 boot_pc, u64 data_base, u64 stack_top) {
  SAFEDM_CHECK_MSG(boot_pc % 4 == 0, "boot pc must be word aligned");
  arch_ = isa::ArchState{};
  arch_.pc = boot_pc;
  arch_.set_x(10, data_base);  // a0
  arch_.set_x(2, stack_top);   // sp
  for (auto& g : stage_) g.clear();
  fetch_pc_ = boot_pc;
  fetch_enabled_ = true;
  x_ready_.fill(0);
  f_ready_.fill(0);
  cycle_ = 0;
  ex_ready_cycle_ = 0;
  me_state_ = MemState::kIdle;
  icache_wait_ = false;
  icache_need_refill_ = false;
  sb_drain_in_flight_ = false;
  pipeline_halted_ = false;
  halt_seen_ = false;
  external_stall_ = false;
  l1i_.invalidate_all();
  l1d_.invalidate_all();
  predictor_.reset();
  stats_ = {};
}

unsigned Core::ex_latency(const Group& group) const {
  unsigned latency = 1;
  for (const Slot& slot : group.slot) {
    if (!slot.valid) continue;
    unsigned l = 1;
    switch (slot.inst.info().exec_class) {
      case isa::ExecClass::kMul:
        l = config_.mul_latency;
        break;
      case isa::ExecClass::kDiv:
        l = config_.div_latency;
        break;
      case isa::ExecClass::kFpAdd:
        l = config_.fp_add_latency;
        break;
      case isa::ExecClass::kFpMul:
        l = config_.fp_mul_latency;
        break;
      case isa::ExecClass::kFpFma:
        l = config_.fp_fma_latency;
        break;
      case isa::ExecClass::kFpDiv:
        l = config_.fp_div_latency;
        break;
      default:
        break;
    }
    latency = std::max(latency, l);
  }
  return latency;
}

bool Core::try_pair(const isa::DecodedInst& first, const isa::DecodedInst& second) const {
  if (!first.valid() || !second.valid()) return false;
  const isa::InstInfo& a = first.info();
  const isa::InstInfo& b = second.info();
  if (a.changes_control_flow() || is_halting(a)) return false;
  if (is_halting(b)) return false;
  if (is_mem(a) && is_mem(b)) return false;
  if (is_long_latency(a) && is_long_latency(b)) return false;

  // RAW within the pair: the second may not consume the first's result.
  if (a.writes_rd() && (a.rd_fp() || first.rd != 0)) {
    const auto depends = [&](bool reads, u8 reg, bool fp) {
      return reads && fp == a.rd_fp() && reg == first.rd;
    };
    if (depends(b.reads_rs1(), second.rs1, b.rs1_fp())) return false;
    if (depends(b.reads_rs2(), second.rs2, b.rs2_fp())) return false;
    if (depends(b.reads_rs3(), second.rs3, b.rs3_fp())) return false;
    // WAW on the same destination.
    if (b.writes_rd() && b.rd_fp() == a.rd_fp() && second.rd == first.rd) return false;
  }
  return true;
}

void Core::flush_frontend(u64 redirect_pc) {
  for (unsigned s = kF1; s <= kRA; ++s) stage_[s].clear();
  fetch_pc_ = redirect_pc;
  icache_need_refill_ = false;  // cancel a not-yet-issued refill request
  redirect_bubble_ = true;
}

void Core::retire(CoreTapFrame& frame) {
  Group& wb = stage_[kWB];
  if (!wb.any()) return;
  unsigned commits = 0;
  for (unsigned lane = 0; lane < kMaxIssueWidth; ++lane) {
    Slot& slot = wb.slot[lane];
    if (!slot.valid) continue;
    ++commits;
    // Write-port taps.
    PortTap& wr = frame.at(lane == 0 ? Port::kLane0Wr : Port::kLane1Wr);
    wr.enable = slot.rd_written;
    wr.value = slot.rd_written ? slot.rd_value : 0;
    if (is_halting(slot.inst.info()) || !slot.inst.valid()) pipeline_halted_ = true;
  }
  frame.commits = commits;
  stats_.committed += commits;
  ++stats_.committed_groups;
  if (commits == 2) ++stats_.dual_issue_commits;
  wb.clear();
  moved_this_cycle_ = true;
}

void Core::enter_ex(Group& group, CoreTapFrame& frame) {
  ex_ready_cycle_ = cycle_ + ex_latency(group);
  for (unsigned lane = 0; lane < kMaxIssueWidth; ++lane) {
    Slot& slot = group.slot[lane];
    if (!slot.valid) continue;
    const isa::InstInfo& ii = slot.inst.info();

    // Capture operand values for the register read-port taps (post-bypass
    // architectural values, which is what the RA stage consumes).
    slot.rs1_read = ii.reads_rs1();
    slot.rs2_read = ii.reads_rs2();
    slot.rs1_value = ii.rs1_fp() ? arch_.f[slot.inst.rs1] : arch_.xr(slot.inst.rs1);
    slot.rs2_value = ii.rs2_fp() ? arch_.f[slot.inst.rs2] : arch_.xr(slot.inst.rs2);
    const Port rs1_port = lane == 0 ? Port::kLane0Rs1 : Port::kLane1Rs1;
    const Port rs2_port = lane == 0 ? Port::kLane0Rs2 : Port::kLane1Rs2;
    frame.at(rs1_port) = PortTap{slot.rs1_read, slot.rs1_read ? slot.rs1_value : 0};
    frame.at(rs2_port) = PortTap{slot.rs2_read, slot.rs2_read ? slot.rs2_value : 0};

    if (ii.is_load() || ii.is_store())
      slot.mem_addr = arch_.xr(slot.inst.rs1) + static_cast<u64>(slot.inst.imm);

    // Functional execution (shared with the golden ISS).
    arch_.pc = slot.pc;
    isa::Iss::execute(slot.inst, arch_, mem_);
    const u64 actual_next = arch_.pc;

    // Result capture for the write-port tap at WB.
    slot.rd_written = ii.writes_rd() && (ii.rd_fp() || slot.inst.rd != 0);
    slot.rd_value =
        slot.rd_written ? (ii.rd_fp() ? arch_.f[slot.inst.rd] : arch_.xr(slot.inst.rd)) : 0;

    // Scoreboard: when may a dependent instruction enter EX?
    if (slot.rd_written) {
      const u64 ready = ii.is_load() ? cycle_ + 2 : cycle_ + ex_latency(group);
      reg_ready(ii.rd_fp(), slot.inst.rd) = std::max(reg_ready(ii.rd_fp(), slot.inst.rd), ready);
    }

    // Halting instruction (ecall/ebreak/illegal): squash younger, stop fetch.
    if (arch_.halted()) {
      halt_seen_ = true;
      fetch_enabled_ = false;
      if (lane == 0) group.slot[1].valid = false;
      flush_frontend(slot.pc);  // nothing younger may execute
      redirect_bubble_ = false; // no refetch will happen anyway
      break;
    }

    // Branch predictor training.
    if (ii.is_branch()) {
      predictor_.train(slot.pc, actual_next != slot.pc + 4, actual_next);
    } else if (ii.exec_class == isa::ExecClass::kJalr) {
      predictor_.train(slot.pc, true, actual_next);
    }

    // Misprediction: the fetch stream after this slot was wrong.
    if (actual_next != slot.predicted_next) {
      ++stats_.mispredicts;
      predictor_.note_mispredict();
      if (lane == 0) group.slot[1].valid = false;
      flush_frontend(actual_next);
      break;
    }
  }
}

void Core::enter_me(Group& group) {
  me_state_ = MemState::kDone;
  for (const Slot& slot : group.slot) {
    if (!slot.valid) continue;
    const isa::InstInfo& ii = slot.inst.info();
    const bool is_mmio = (ii.is_load() || ii.is_store()) &&
                         slot.mem_addr >= config_.mmio_base &&
                         slot.mem_addr < config_.mmio_base + config_.mmio_size;
    if (is_mmio) {
      // Uncached peripheral access: no cache lookup, no store buffer; the
      // functional access already happened at EX through the SoC's routing
      // memory port. Pay a fixed bus latency here.
      me_state_ = MemState::kMmioWait;
      me_mmio_done_cycle_ = cycle_ + config_.mmio_latency;
      if (ii.is_load()) reg_ready(ii.rd_fp(), slot.inst.rd) = me_mmio_done_cycle_ + 1;
    } else if (ii.is_load()) {
      if (l1d_.access(slot.mem_addr)) {
        me_state_ = MemState::kDone;
      } else {
        me_state_ = MemState::kNeedRefill;
        me_refill_line_ = l1d_.line_addr(slot.mem_addr);
        me_load_rd_ = slot.inst.rd;
        me_load_fp_ = ii.rd_fp();
        // The optimistic load-use latency no longer holds; block consumers
        // until the refill returns.
        reg_ready(me_load_fp_, me_load_rd_) = ~u64{0};
      }
    } else if (ii.is_store()) {
      (void)l1d_.access(slot.mem_addr);  // write-through: update LRU / count
      if (sb_.push(slot.mem_addr)) {
        me_state_ = MemState::kDone;
      } else {
        me_state_ = MemState::kStorePending;
        me_store_addr_ = slot.mem_addr;
      }
    } else if (ii.exec_class == isa::ExecClass::kFence) {
      me_state_ = sb_.empty() ? MemState::kDone : MemState::kFenceDrain;
    }
  }
}

bool Core::step_me() {
  if (!stage_[kME].any()) return false;
  switch (me_state_) {
    case MemState::kIdle:
    case MemState::kDone:
      return true;
    case MemState::kNeedRefill:
    case MemState::kRefillWait:
      ++stats_.l1d_miss_stall_cycles;
      return false;
    case MemState::kStorePending:
      if (sb_.push(me_store_addr_)) {
        me_state_ = MemState::kDone;
        return true;
      }
      ++stats_.sb_full_stall_cycles;
      return false;
    case MemState::kFenceDrain:
      if (sb_.empty()) {
        me_state_ = MemState::kDone;
        return true;
      }
      return false;
    case MemState::kMmioWait:
      if (cycle_ >= me_mmio_done_cycle_) {
        me_state_ = MemState::kDone;
        return true;
      }
      ++stats_.l1d_miss_stall_cycles;
      return false;
  }
  return false;
}

void Core::fetch() {
  if (!fetch_enabled_ || halt_seen_) return;
  if (redirect_bubble_) {
    redirect_bubble_ = false;
    return;
  }
  if (icache_wait_ || icache_need_refill_) {
    ++stats_.l1i_miss_stall_cycles;
    return;
  }
  if (!l1i_.access(fetch_pc_)) {
    icache_need_refill_ = true;
    icache_refill_line_ = l1i_.line_addr(fetch_pc_);
    ++stats_.l1i_miss_stall_cycles;
    return;
  }

  Group group;
  Slot& s0 = group.slot[0];
  s0.valid = true;
  s0.pc = fetch_pc_;
  s0.raw = static_cast<u32>(mem_.load(fetch_pc_, 4));
  s0.inst = isa::decode(s0.raw);

  bool dual = false;
  if (fetch_pc_ % 8 == 0) {
    const u32 raw1 = static_cast<u32>(mem_.load(fetch_pc_ + 4, 4));
    const isa::DecodedInst inst1 = isa::decode(raw1);
    if (try_pair(s0.inst, inst1)) {
      Slot& s1 = group.slot[1];
      s1.valid = true;
      s1.pc = fetch_pc_ + 4;
      s1.raw = raw1;
      s1.inst = inst1;
      dual = true;
    }
  }

  // Predict the continuation after the last slot of the group.
  const auto predict_slot = [&](const Slot& slot) -> std::optional<u64> {
    if (!slot.inst.valid()) return std::nullopt;
    const isa::InstInfo& ii = slot.inst.info();
    if (ii.exec_class == isa::ExecClass::kJal)
      return slot.pc + static_cast<u64>(slot.inst.imm);
    if (ii.is_branch()) {
      const auto p = predictor_.predict_branch(slot.pc);
      if (p.taken && p.has_target) return p.target;
      return std::nullopt;
    }
    if (ii.exec_class == isa::ExecClass::kJalr) {
      const auto p = predictor_.predict_indirect(slot.pc);
      if (p.taken && p.has_target) return p.target;
      return std::nullopt;
    }
    return std::nullopt;
  };

  if (dual) {
    // Pairing rules guarantee slot 0 is not control flow.
    Slot& s1 = group.slot[1];
    s0.predicted_next = s1.pc;
    const auto target = predict_slot(s1);
    s1.predicted_next = target.value_or(s1.pc + 4);
    fetch_pc_ = s1.predicted_next;
  } else {
    const auto target = predict_slot(s0);
    s0.predicted_next = target.value_or(s0.pc + 4);
    fetch_pc_ = s0.predicted_next;
  }

  stage_[kF1] = group;
  moved_this_cycle_ = true;
}

void Core::service_bus_requests() {
  if (bus_.has_pending(bus_id_)) return;

  // Data-side refill has priority, except when the missing line is still
  // sitting in the store buffer: drain it first (memory ordering).
  if (me_state_ == MemState::kNeedRefill && !sb_.holds_line(me_refill_line_)) {
    bus_.request(bus_id_, bus::BusTxn{bus::BusTxn::Kind::kReadLine, me_refill_line_, kTagDRefill});
    me_state_ = MemState::kRefillWait;
    return;
  }
  if (icache_need_refill_) {
    bus_.request(bus_id_, bus::BusTxn{bus::BusTxn::Kind::kReadLine, icache_refill_line_, kTagIFetch});
    icache_need_refill_ = false;
    icache_wait_ = true;
    return;
  }
  if (!sb_.empty() && !sb_drain_in_flight_) {
    bus_.request(bus_id_, bus::BusTxn{bus::BusTxn::Kind::kWriteLine, sb_.head_line(), kTagSbDrain});
    sb_drain_in_flight_ = true;
    return;
  }
}

void Core::bus_complete(const bus::BusTxn& txn) {
  switch (txn.tag) {
    case kTagIFetch:
      if (!l1i_.present(txn.addr)) l1i_.fill(txn.addr);
      icache_wait_ = false;
      break;
    case kTagDRefill:
      SAFEDM_CHECK(me_state_ == MemState::kRefillWait);
      if (!l1d_.present(txn.addr)) l1d_.fill(txn.addr);
      me_state_ = MemState::kDone;
      reg_ready(me_load_fp_, me_load_rd_) = cycle_ + 1;
      break;
    case kTagSbDrain:
      sb_.pop_head();
      sb_drain_in_flight_ = false;
      break;
    default:
      SAFEDM_CHECK_MSG(false, "unknown bus tag " << txn.tag);
  }
}

bool Core::ra_ready(const Group& group) const {
  for (const Slot& slot : group.slot) {
    if (!slot.valid) continue;
    const isa::InstInfo& ii = slot.inst.info();
    if (ii.reads_rs1() && reg_ready(ii.rs1_fp(), slot.inst.rs1) > cycle_) return false;
    if (ii.reads_rs2() && reg_ready(ii.rs2_fp(), slot.inst.rs2) > cycle_) return false;
    if (ii.reads_rs3() && reg_ready(ii.rs3_fp(), slot.inst.rs3) > cycle_) return false;
  }
  return true;
}

void Core::step(CoreTapFrame& frame) {
  frame = CoreTapFrame{};
  ++cycle_;
  ++stats_.cycles;
  moved_this_cycle_ = false;

  if (pipeline_halted_) {
    frame.halted = true;
    frame.hold = true;
    snapshot_stages(frame);
    return;
  }
  if (external_stall_) {
    ++stats_.external_stall_cycles;
    frame.hold = true;
    snapshot_stages(frame);
    return;
  }

  // 1. Retire from WB.
  retire(frame);

  // 2. ME -> WB.
  if (stage_[kME].any() && step_me() && !stage_[kWB].any()) {
    stage_[kWB] = stage_[kME];
    stage_[kME].clear();
    me_state_ = MemState::kIdle;
    moved_this_cycle_ = true;
  }

  // 3. EX -> ME.
  if (stage_[kEX].any()) {
    if (cycle_ < ex_ready_cycle_) {
      ++stats_.ex_busy_stall_cycles;
    } else if (!stage_[kME].any()) {
      stage_[kME] = stage_[kEX];
      stage_[kEX].clear();
      enter_me(stage_[kME]);
      moved_this_cycle_ = true;
    }
  }

  // 4. RA -> EX (functional execution happens here).
  if (stage_[kRA].any() && !stage_[kEX].any()) {
    if (ra_ready(stage_[kRA])) {
      stage_[kEX] = stage_[kRA];
      stage_[kRA].clear();
      enter_ex(stage_[kEX], frame);
      moved_this_cycle_ = true;
    } else {
      ++stats_.raw_hazard_stall_cycles;
    }
  }

  // 5. D -> RA, F2 -> D, F1 -> F2.
  for (unsigned s = kRA; s > kF1; --s) {
    if (!stage_[s].any() && stage_[s - 1].any()) {
      stage_[s] = stage_[s - 1];
      stage_[s - 1].clear();
      moved_this_cycle_ = true;
    }
  }

  // 6. Fetch a new group into F1.
  if (!stage_[kF1].any()) fetch();

  // 7. Post bus requests for whatever is outstanding.
  service_bus_requests();

  // 8. Publish this cycle's observation frame.
  snapshot_stages(frame);
  frame.hold = !moved_this_cycle_;
  frame.halted = pipeline_halted_;
}

void Core::flip_architectural_bit(u8 reg, unsigned bit) {
  SAFEDM_CHECK(reg < 32 && bit < 64);
  if (reg == 0) return;
  arch_.x[reg] ^= u64{1} << bit;
}

void Core::snapshot_stages(CoreTapFrame& frame) const {
  for (unsigned s = 0; s < kPipelineStages; ++s) {
    for (unsigned lane = 0; lane < kMaxIssueWidth; ++lane) {
      const Slot& slot = stage_[s].slot[lane];
      frame.stage[s][lane] = StageSlotTap{slot.valid, slot.valid ? slot.raw : 0};
    }
  }
}

void Core::save_state(StateWriter& w) const {
  w.begin_section("CORE", 1);
  // Architectural state.
  w.put_u64(arch_.pc);
  for (u64 x : arch_.x) w.put_u64(x);
  for (u64 f : arch_.f) w.put_u64(f);
  w.put_u64(arch_.instret);
  w.put_u8(static_cast<u8>(arch_.halt));
  // Microarchitectural sub-blocks.
  l1i_.save_state(w);
  l1d_.save_state(w);
  sb_.save_state(w);
  predictor_.save_state(w);
  // Pipeline latches. Decoded form is derived; only the raw encoding and
  // the execute-time captures are stored.
  for (const Group& group : stage_) {
    for (const Slot& s : group.slot) {
      w.put_bool(s.valid);
      if (!s.valid) continue;
      w.put_u64(s.pc);
      w.put_u32(s.raw);
      w.put_u64(s.predicted_next);
      w.put_u64(s.rs1_value);
      w.put_u64(s.rs2_value);
      w.put_bool(s.rs1_read);
      w.put_bool(s.rs2_read);
      w.put_u64(s.rd_value);
      w.put_bool(s.rd_written);
      w.put_u64(s.mem_addr);
    }
  }
  w.put_u64(fetch_pc_);
  w.put_bool(fetch_enabled_);
  for (u64 c : x_ready_) w.put_u64(c);
  for (u64 c : f_ready_) w.put_u64(c);
  w.put_u64(cycle_);
  w.put_u64(ex_ready_cycle_);
  w.put_u8(static_cast<u8>(me_state_));
  w.put_u64(me_refill_line_);
  w.put_u64(me_store_addr_);
  w.put_u64(me_mmio_done_cycle_);
  w.put_u8(me_load_rd_);
  w.put_bool(me_load_fp_);
  w.put_bool(redirect_bubble_);
  w.put_bool(icache_wait_);
  w.put_bool(icache_need_refill_);
  w.put_u64(icache_refill_line_);
  w.put_bool(sb_drain_in_flight_);
  w.put_bool(pipeline_halted_);
  w.put_bool(halt_seen_);
  w.put_bool(external_stall_);
  w.put_bool(moved_this_cycle_);
  w.put_u64(stats_.cycles);
  w.put_u64(stats_.committed);
  w.put_u64(stats_.committed_groups);
  w.put_u64(stats_.dual_issue_commits);
  w.put_u64(stats_.mispredicts);
  w.put_u64(stats_.l1d_miss_stall_cycles);
  w.put_u64(stats_.l1i_miss_stall_cycles);
  w.put_u64(stats_.sb_full_stall_cycles);
  w.put_u64(stats_.raw_hazard_stall_cycles);
  w.put_u64(stats_.ex_busy_stall_cycles);
  w.put_u64(stats_.external_stall_cycles);
  w.end_section();
}

void Core::restore_state(StateReader& r) {
  r.begin_section("CORE", 1);
  arch_.pc = r.get_u64();
  for (u64& x : arch_.x) x = r.get_u64();
  for (u64& f : arch_.f) f = r.get_u64();
  arch_.instret = r.get_u64();
  arch_.halt = static_cast<isa::HaltReason>(r.get_u8());
  l1i_.restore_state(r);
  l1d_.restore_state(r);
  sb_.restore_state(r);
  predictor_.restore_state(r);
  for (Group& group : stage_) {
    for (Slot& s : group.slot) {
      s = Slot{};
      s.valid = r.get_bool();
      if (!s.valid) continue;
      s.pc = r.get_u64();
      s.raw = r.get_u32();
      s.inst = isa::decode(s.raw);
      s.predicted_next = r.get_u64();
      s.rs1_value = r.get_u64();
      s.rs2_value = r.get_u64();
      s.rs1_read = r.get_bool();
      s.rs2_read = r.get_bool();
      s.rd_value = r.get_u64();
      s.rd_written = r.get_bool();
      s.mem_addr = r.get_u64();
    }
  }
  fetch_pc_ = r.get_u64();
  fetch_enabled_ = r.get_bool();
  for (u64& c : x_ready_) c = r.get_u64();
  for (u64& c : f_ready_) c = r.get_u64();
  cycle_ = r.get_u64();
  ex_ready_cycle_ = r.get_u64();
  me_state_ = static_cast<MemState>(r.get_u8());
  me_refill_line_ = r.get_u64();
  me_store_addr_ = r.get_u64();
  me_mmio_done_cycle_ = r.get_u64();
  me_load_rd_ = r.get_u8();
  me_load_fp_ = r.get_bool();
  redirect_bubble_ = r.get_bool();
  icache_wait_ = r.get_bool();
  icache_need_refill_ = r.get_bool();
  icache_refill_line_ = r.get_u64();
  sb_drain_in_flight_ = r.get_bool();
  pipeline_halted_ = r.get_bool();
  halt_seen_ = r.get_bool();
  external_stall_ = r.get_bool();
  moved_this_cycle_ = r.get_bool();
  stats_.cycles = r.get_u64();
  stats_.committed = r.get_u64();
  stats_.committed_groups = r.get_u64();
  stats_.dual_issue_commits = r.get_u64();
  stats_.mispredicts = r.get_u64();
  stats_.l1d_miss_stall_cycles = r.get_u64();
  stats_.l1i_miss_stall_cycles = r.get_u64();
  stats_.sb_full_stall_cycles = r.get_u64();
  stats_.raw_hazard_stall_cycles = r.get_u64();
  stats_.ex_busy_stall_cycles = r.get_u64();
  stats_.external_stall_cycles = r.get_u64();
  r.end_section();
}

}  // namespace safedm::core
