// Analytic hardware-cost model of SafeDM (reproduces paper Section V-D).
//
// The paper reports, for the deployment configuration on a Kintex
// UltraScale KCU105 (without the evaluation-only History module):
//   - ~4,000 LUTs, a 3.4% overhead over the baseline dual-core MPSoC,
//   - < 1% extra power: 0.019 W on top of ~2 W.
// We cannot synthesize VHDL here, so this model counts the storage and
// comparator structure implied by the signature geometry and maps it to
// LUT/FF/power figures with constants calibrated to the paper's design
// point (m=4 ports, 64-bit data, n=8, o=7 stages, p=2 lanes, 32-bit
// encodings). The *shape* of the model (linear in signature bits) is what
// the overhead ablations exercise.
#pragma once

#include "safedm/safedm/config.hpp"

namespace safedm::hwcost {

struct CostEstimate {
  // Structure.
  u64 ds_bits = 0;        // data-signature storage, both cores
  u64 is_bits = 0;        // instruction-signature storage, both cores
  u64 storage_bits = 0;   // total signature storage
  u64 compare_bits = 0;   // comparator input width (one core's signatures)
  // FPGA resources.
  u64 flip_flops = 0;
  u64 luts_storage = 0;
  u64 luts_compare = 0;
  u64 luts_control = 0;   // APB logic, counters, interrupt logic
  u64 luts_total = 0;
  double area_fraction = 0.0;  // of the baseline dual-core MPSoC
  // Power.
  double power_watts = 0.0;
  double power_fraction = 0.0;  // of the baseline MPSoC power
};

/// Calibration constants (documented in DESIGN.md / EXPERIMENTS.md).
struct Calibration {
  double luts_per_storage_bit = 0.5;   // FF + shift/mux fabric per FIFO bit
  double luts_per_compare_bit = 1.0 / 3.0;  // XOR + reduction tree
  double luts_crc_per_bit = 0.10;      // serial CRC compactor fabric
  u64 control_luts = 550;              // APB slave, counters, IRQ logic
  u64 control_ffs = 200;
  u64 baseline_mpsoc_luts = 117'600;   // => 4,000 LUTs ~= 3.4%
  double baseline_power_watts = 2.0;
  double watts_per_storage_bit = 3.2e-6;
  double data_width_bits = 64;         // register-port width
  double encoding_width_bits = 32;     // instruction-encoding width
};

/// Cost of a SafeDM instance monitoring a dual-core pair.
CostEstimate estimate(const monitor::SafeDmConfig& config, const Calibration& cal = {});

}  // namespace safedm::hwcost
