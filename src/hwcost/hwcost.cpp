#include "safedm/hwcost/hwcost.hpp"

#include <cmath>

#include "safedm/core/tap.hpp"

namespace safedm::hwcost {

CostEstimate estimate(const monitor::SafeDmConfig& config, const Calibration& cal) {
  CostEstimate est;

  const u64 entry_bits = static_cast<u64>(cal.data_width_bits) + 1;  // value + enable
  const u64 slot_bits = static_cast<u64>(cal.encoding_width_bits) + 1;  // encoding + valid

  est.ds_bits = 2ull * config.num_ports * config.data_fifo_depth * entry_bits;
  est.is_bits = 2ull * core::kPipelineStages * core::kMaxIssueWidth * slot_bits;
  est.storage_bits = est.ds_bits + est.is_bits;

  // The comparator sees one core's worth of signature bits against the
  // other's; with CRC compression only the compacted words are compared,
  // but the compactor fabric itself costs LUTs.
  const u64 per_core_bits = est.storage_bits / 2;
  double luts_compare = 0.0;
  if (config.compare == monitor::CompareMode::kRaw) {
    est.compare_bits = per_core_bits;
    luts_compare = static_cast<double>(per_core_bits) * cal.luts_per_compare_bit;
  } else {
    est.compare_bits = 64;  // two 32-bit CRCs
    luts_compare = 64 * cal.luts_per_compare_bit +
                   static_cast<double>(per_core_bits) * cal.luts_crc_per_bit;
  }

  est.flip_flops = est.storage_bits + cal.control_ffs;
  est.luts_storage =
      static_cast<u64>(std::llround(static_cast<double>(est.storage_bits) *
                                    cal.luts_per_storage_bit));
  est.luts_compare = static_cast<u64>(std::llround(luts_compare));
  est.luts_control = cal.control_luts;
  est.luts_total = est.luts_storage + est.luts_compare + est.luts_control;
  est.area_fraction =
      static_cast<double>(est.luts_total) / static_cast<double>(cal.baseline_mpsoc_luts);

  est.power_watts = static_cast<double>(est.storage_bits) * cal.watts_per_storage_bit +
                    0.002;  // static + control
  est.power_fraction = est.power_watts / cal.baseline_power_watts;
  return est;
}

}  // namespace safedm::hwcost
