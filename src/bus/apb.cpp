#include "safedm/bus/apb.hpp"

#include "safedm/common/check.hpp"

namespace safedm::bus {

void ApbBus::map(u64 base, u64 size, ApbDevice* device, std::string name) {
  SAFEDM_CHECK(device != nullptr && size > 0);
  SAFEDM_CHECK_MSG(base % 4 == 0 && size % 4 == 0, "APB mapping must be word aligned");
  for (const Mapping& m : mappings_) {
    const bool overlaps = base < m.base + m.size && m.base < base + size;
    SAFEDM_CHECK_MSG(!overlaps, "APB mapping '" << name << "' overlaps '" << m.name << "'");
  }
  mappings_.push_back(Mapping{base, size, device, std::move(name)});
}

const ApbBus::Mapping& ApbBus::find(u64 addr) const {
  for (const Mapping& m : mappings_)
    if (addr >= m.base && addr < m.base + m.size) return m;
  SAFEDM_CHECK_MSG(false, "APB access to unmapped address 0x" << std::hex << addr);
  __builtin_unreachable();
}

bool ApbBus::decodes(u64 addr) const {
  for (const Mapping& m : mappings_)
    if (addr >= m.base && addr < m.base + m.size) return true;
  return false;
}

u32 ApbBus::read(u64 addr) {
  SAFEDM_CHECK_MSG(addr % 4 == 0, "unaligned APB read");
  const Mapping& m = find(addr);
  return m.device->apb_read(static_cast<u32>(addr - m.base));
}

void ApbBus::write(u64 addr, u32 value) {
  SAFEDM_CHECK_MSG(addr % 4 == 0, "unaligned APB write");
  const Mapping& m = find(addr);
  m.device->apb_write(static_cast<u32>(addr - m.base), value);
}

}  // namespace safedm::bus
