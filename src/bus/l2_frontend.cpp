#include "safedm/bus/l2_frontend.hpp"

namespace safedm::bus {

unsigned L2Frontend::serve(const BusTxn& txn) {
  const bool hit = tags_.access(txn.addr);
  unsigned latency = hit ? timing_.hit_cycles : timing_.miss_cycles;
  if (!hit) {
    const bool write_allocate = txn.kind == BusTxn::Kind::kWriteLine;
    const auto fill = tags_.fill(txn.addr, /*dirty=*/write_allocate);
    if (fill.evicted && fill.victim_dirty) latency += timing_.writeback_cycles;
  } else if (txn.kind == BusTxn::Kind::kWriteLine) {
    tags_.mark_dirty(txn.addr);
  }
  return latency;
}

}  // namespace safedm::bus
