#include "safedm/bus/ahb.hpp"

#include "safedm/common/check.hpp"
#include "safedm/common/state.hpp"

namespace safedm::bus {

namespace {

void save_txn(StateWriter& w, const BusTxn& txn) {
  w.put_u8(static_cast<u8>(txn.kind));
  w.put_u64(txn.addr);
  w.put_u32(txn.tag);
}

BusTxn restore_txn(StateReader& r) {
  BusTxn txn;
  txn.kind = static_cast<BusTxn::Kind>(r.get_u8());
  txn.addr = r.get_u64();
  txn.tag = r.get_u32();
  return txn;
}

}  // namespace

AhbBus::AhbBus(AhbSlave& slave, unsigned first_grant_bias)
    : slave_(slave), rr_next_(first_grant_bias) {}

int AhbBus::attach(AhbCompletion* master, std::string name) {
  SAFEDM_CHECK_MSG(!started_, "masters must attach before the bus starts stepping");
  SAFEDM_CHECK(master != nullptr);
  masters_.push_back(master);
  names_.push_back(std::move(name));
  pending_.push_back({});
  stats_.wait_cycles.push_back(0);
  stats_.master_grants.push_back(0);
  return static_cast<int>(masters_.size()) - 1;
}

void AhbBus::request(int master, const BusTxn& txn) {
  SAFEDM_CHECK(master >= 0 && static_cast<std::size_t>(master) < masters_.size());
  SAFEDM_CHECK_MSG(!pending_[master].valid,
                   "master " << names_[master] << " already has a pending transaction");
  pending_[master].valid = true;
  pending_[master].txn = txn;
}

bool AhbBus::has_pending(int master) const {
  SAFEDM_CHECK(master >= 0 && static_cast<std::size_t>(master) < masters_.size());
  return pending_[master].valid ||
         (busy_cycles_left_ > 0 && active_master_ == master);
}

void AhbBus::try_grant() {
  if (masters_.empty()) return;
  const unsigned n = static_cast<unsigned>(masters_.size());
  for (unsigned i = 0; i < n; ++i) {
    const unsigned candidate = (rr_next_ + i) % n;
    if (!pending_[candidate].valid) continue;
    active_master_ = static_cast<int>(candidate);
    active_txn_ = pending_[candidate].txn;
    pending_[candidate].valid = false;
    rr_next_ = (candidate + 1) % n;
    busy_cycles_left_ = slave_.serve(active_txn_);
    SAFEDM_CHECK_MSG(busy_cycles_left_ > 0, "slave returned zero-cycle transaction");
    ++stats_.grants;
    ++stats_.master_grants[candidate];
    return;
  }
}

void AhbBus::step() {
  started_ = true;
  // Account waiting requesters (they lose this cycle to arbitration).
  for (std::size_t m = 0; m < pending_.size(); ++m)
    if (pending_[m].valid) ++stats_.wait_cycles[m];

  if (busy_cycles_left_ > 0) {
    ++stats_.busy_cycles;
    if (--busy_cycles_left_ == 0) {
      const int master = active_master_;
      active_master_ = -1;
      masters_[master]->bus_complete(active_txn_);
      // The bus re-arbitrates on the next cycle (one dead cycle between
      // transactions, like AHB address-phase handover).
    }
    return;
  }

  ++stats_.idle_cycles;
  try_grant();
}

void AhbBus::save_state(StateWriter& w) const {
  w.begin_section("AHBB", 1);
  w.put_u32(static_cast<u32>(masters_.size()));
  for (const Pending& p : pending_) {
    w.put_bool(p.valid);
    save_txn(w, p.txn);
  }
  w.put_u32(rr_next_);
  w.put_u32(busy_cycles_left_);
  w.put_i64(active_master_);
  save_txn(w, active_txn_);
  w.put_bool(started_);
  w.put_u64(stats_.grants);
  w.put_u64(stats_.busy_cycles);
  w.put_u64(stats_.idle_cycles);
  for (u64 c : stats_.wait_cycles) w.put_u64(c);
  for (u64 g : stats_.master_grants) w.put_u64(g);
  w.end_section();
}

void AhbBus::restore_state(StateReader& r) {
  r.begin_section("AHBB", 1);
  if (r.get_u32() != masters_.size())
    throw StateError("AHB master count mismatch (re-attach the same masters before restore)");
  for (Pending& p : pending_) {
    p.valid = r.get_bool();
    p.txn = restore_txn(r);
  }
  rr_next_ = r.get_u32();
  busy_cycles_left_ = r.get_u32();
  active_master_ = static_cast<int>(r.get_i64());
  active_txn_ = restore_txn(r);
  started_ = r.get_bool();
  stats_.grants = r.get_u64();
  stats_.busy_cycles = r.get_u64();
  stats_.idle_cycles = r.get_u64();
  for (u64& c : stats_.wait_cycles) c = r.get_u64();
  for (u64& g : stats_.master_grants) g = r.get_u64();
  r.end_section();
}

}  // namespace safedm::bus
