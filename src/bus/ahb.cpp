#include "safedm/bus/ahb.hpp"

#include "safedm/common/check.hpp"

namespace safedm::bus {

AhbBus::AhbBus(AhbSlave& slave, unsigned first_grant_bias)
    : slave_(slave), rr_next_(first_grant_bias) {}

int AhbBus::attach(AhbCompletion* master, std::string name) {
  SAFEDM_CHECK_MSG(!started_, "masters must attach before the bus starts stepping");
  SAFEDM_CHECK(master != nullptr);
  masters_.push_back(master);
  names_.push_back(std::move(name));
  pending_.push_back({});
  stats_.wait_cycles.push_back(0);
  stats_.master_grants.push_back(0);
  return static_cast<int>(masters_.size()) - 1;
}

void AhbBus::request(int master, const BusTxn& txn) {
  SAFEDM_CHECK(master >= 0 && static_cast<std::size_t>(master) < masters_.size());
  SAFEDM_CHECK_MSG(!pending_[master].valid,
                   "master " << names_[master] << " already has a pending transaction");
  pending_[master].valid = true;
  pending_[master].txn = txn;
}

bool AhbBus::has_pending(int master) const {
  SAFEDM_CHECK(master >= 0 && static_cast<std::size_t>(master) < masters_.size());
  return pending_[master].valid ||
         (busy_cycles_left_ > 0 && active_master_ == master);
}

void AhbBus::try_grant() {
  if (masters_.empty()) return;
  const unsigned n = static_cast<unsigned>(masters_.size());
  for (unsigned i = 0; i < n; ++i) {
    const unsigned candidate = (rr_next_ + i) % n;
    if (!pending_[candidate].valid) continue;
    active_master_ = static_cast<int>(candidate);
    active_txn_ = pending_[candidate].txn;
    pending_[candidate].valid = false;
    rr_next_ = (candidate + 1) % n;
    busy_cycles_left_ = slave_.serve(active_txn_);
    SAFEDM_CHECK_MSG(busy_cycles_left_ > 0, "slave returned zero-cycle transaction");
    ++stats_.grants;
    ++stats_.master_grants[candidate];
    return;
  }
}

void AhbBus::step() {
  started_ = true;
  // Account waiting requesters (they lose this cycle to arbitration).
  for (std::size_t m = 0; m < pending_.size(); ++m)
    if (pending_[m].valid) ++stats_.wait_cycles[m];

  if (busy_cycles_left_ > 0) {
    ++stats_.busy_cycles;
    if (--busy_cycles_left_ == 0) {
      const int master = active_master_;
      active_master_ = -1;
      masters_[master]->bus_complete(active_txn_);
      // The bus re-arbitrates on the next cycle (one dead cycle between
      // transactions, like AHB address-phase handover).
    }
    return;
  }

  ++stats_.idle_cycles;
  try_grant();
}

}  // namespace safedm::bus
