// AHB-style shared system bus with single-outstanding-transaction
// arbitration.
//
// This is the serialization point the paper's Section V-C analysis hinges
// on: when both cores miss their L1s in the same cycle, one master is
// granted first and the other waits, which is what breaks zero staggering
// between redundant cores "naturally".
#pragma once

#include <string>
#include <vector>

#include "safedm/common/bits.hpp"

namespace safedm {
class StateReader;
class StateWriter;
}  // namespace safedm

namespace safedm::bus {

struct BusTxn {
  enum class Kind : u8 {
    kReadLine,   // cache-line refill (L1 I/D miss)
    kWriteLine,  // store-buffer drain (write-through traffic)
  };
  Kind kind = Kind::kReadLine;
  u64 addr = 0;
  u32 tag = 0;  // opaque, returned to the master on completion
};

/// Completion callback implemented by masters.
class AhbCompletion {
 public:
  virtual ~AhbCompletion() = default;
  virtual void bus_complete(const BusTxn& txn) = 0;
};

/// The slave side: computes how many cycles a transaction occupies the bus.
class AhbSlave {
 public:
  virtual ~AhbSlave() = default;
  virtual unsigned serve(const BusTxn& txn) = 0;
};

struct AhbStats {
  u64 grants = 0;
  u64 busy_cycles = 0;
  u64 idle_cycles = 0;
  std::vector<u64> wait_cycles;  // per master: cycles spent waiting for grant
  std::vector<u64> master_grants;
};

class AhbBus {
 public:
  /// `first_grant_bias` rotates the initial round-robin pointer; used to
  /// model run-to-run variation of the platform's initial arbiter state.
  AhbBus(AhbSlave& slave, unsigned first_grant_bias = 0);

  /// Register a master; returns its id. All masters must attach before the
  /// first step().
  int attach(AhbCompletion* master, std::string name = {});

  /// Post a transaction for `master`. One pending request per master.
  void request(int master, const BusTxn& txn);
  bool has_pending(int master) const;

  /// True while a granted transaction is in flight.
  bool busy() const { return busy_cycles_left_ > 0; }

  /// Advance one cycle: progress the in-flight transaction and, when the
  /// bus is free, grant the next requester round-robin.
  void step();

  const AhbStats& stats() const { return stats_; }

  /// Arbiter + in-flight transaction + per-master pending requests.
  /// Master bindings are NOT serialized: the owner must re-attach the
  /// same masters in the same order before restoring (the MpSoc
  /// constructor does this by construction).
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  struct Pending {
    bool valid = false;
    BusTxn txn;
  };

  void try_grant();

  AhbSlave& slave_;
  std::vector<AhbCompletion*> masters_;
  std::vector<std::string> names_;  // lint: no-snapshot(structural wiring, fixed at attach())
  std::vector<Pending> pending_;
  unsigned rr_next_ = 0;  // round-robin pointer
  unsigned busy_cycles_left_ = 0;
  int active_master_ = -1;
  BusTxn active_txn_;
  AhbStats stats_;
  bool started_ = false;
};

}  // namespace safedm::bus
