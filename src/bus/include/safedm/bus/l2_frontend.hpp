// Shared L2 cache front-end: the AHB slave that turns bus transactions into
// latencies, modelling a write-back, write-allocate L2 in front of the
// memory controller (paper Fig. 3).
#pragma once

#include "safedm/bus/ahb.hpp"
#include "safedm/mem/cache.hpp"

namespace safedm::bus {

struct L2Timing {
  unsigned hit_cycles = 8;        // line served from L2
  unsigned miss_cycles = 30;      // L2 miss serviced by the memory controller
  unsigned writeback_cycles = 6;  // extra bus occupancy for a dirty eviction
};

class L2Frontend final : public AhbSlave {
 public:
  L2Frontend(const mem::CacheConfig& config, const L2Timing& timing)
      : tags_(config, "L2"), timing_(timing) {}

  unsigned serve(const BusTxn& txn) override;

  const mem::CacheStats& stats() const { return tags_.stats(); }
  mem::CacheTags& tags() { return tags_; }
  const L2Timing& timing() const { return timing_; }

  // Timing is configuration; tags/LRU/stats are the only state. A granted
  // transaction's remaining latency lives in the AhbBus, not here.
  void save_state(StateWriter& w) const { tags_.save_state(w); }
  void restore_state(StateReader& r) { tags_.restore_state(r); }

 private:
  mem::CacheTags tags_;
  L2Timing timing_;  // lint: no-snapshot(timing is configuration, fixed at construction)
};

}  // namespace safedm::bus
