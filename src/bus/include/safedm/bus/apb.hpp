// APB peripheral bus: word-granular register access to slaves.
//
// SafeDM hangs off this bus exactly as in the paper's integration (Fig. 3):
// the monitor is an APB slave, so swapping the bus logic ports it to
// another SoC. The RTOS/host side reads and programs the monitor through
// ApbBus::read/write.
#pragma once

#include <string>
#include <vector>

#include "safedm/common/bits.hpp"

namespace safedm::bus {

/// Register-mapped peripheral. Offsets are byte offsets, word aligned.
class ApbDevice {
 public:
  virtual ~ApbDevice() = default;
  virtual u32 apb_read(u32 offset) = 0;
  virtual void apb_write(u32 offset, u32 value) = 0;
};

class ApbBus {
 public:
  /// Map `device` at [base, base + size). Ranges must not overlap.
  void map(u64 base, u64 size, ApbDevice* device, std::string name = {});

  u32 read(u64 addr);
  void write(u64 addr, u32 value);

  /// True if some device is mapped at `addr`.
  bool decodes(u64 addr) const;

 private:
  struct Mapping {
    u64 base = 0;
    u64 size = 0;
    ApbDevice* device = nullptr;
    std::string name;
  };

  const Mapping& find(u64 addr) const;

  std::vector<Mapping> mappings_;
};

}  // namespace safedm::bus
