#include "safedm/faultsim/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "campaign_internal.hpp"
#include "safedm/common/check.hpp"
#include "safedm/common/hash.hpp"
#include "safedm/common/log.hpp"
#include "safedm/common/rng.hpp"
#include "safedm/common/state.hpp"
#include "safedm/common/thread_pool.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::faultsim {
namespace {

/// Sample `count` distinct cycles from `pool` (the whole pool if smaller),
/// via a partial Fisher-Yates shuffle — O(count) swaps, deterministic in
/// the RNG regardless of caller.
std::vector<u64> sample_cycles(std::vector<u64> pool, unsigned count, Xoshiro256& rng) {
  if (pool.size() <= count) return pool;
  for (unsigned i = 0; i < count; ++i) {
    const u64 j = i + rng.below(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

void append_class_json(std::ostream& os, const ClassAggregate& agg, const char* indent) {
  static const char* kNames[] = {"masked", "detected", "ccf", "crashed", "hung"};
  os << "{\n" << indent << "  \"counts\": {";
  for (int i = 0; i < 5; ++i)
    os << (i ? ", " : "") << '"' << kNames[i] << "\": " << agg.counts[i];
  os << "},\n";
  char buf[128];
  const Interval ci = agg.ccf_interval();
  std::snprintf(buf, sizeof buf, "\"ccf_rate\": %.6f, \"ccf_ci95\": [%.6f, %.6f],",
                agg.ccf_rate(), ci.lo, ci.hi);
  os << indent << "  \"total\": " << agg.total() << ", " << buf << '\n';
  os << indent << "  \"latency\": {\"samples\": " << agg.latency.total_samples()
     << ", \"max\": " << agg.latency.max_sample() << ", \"sum\": " << agg.latency.sample_sum()
     << ", \"bins\": [";
  bool first = true;
  for (std::size_t b = 0; b < agg.latency.bin_count(); ++b) {
    if (agg.latency.bin_value(b) == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << '[' << agg.latency.bin_upper(b) << ", " << agg.latency.bin_value(b) << ']';
  }
  os << "]}\n" << indent << '}';
}

}  // namespace

namespace detail {

WorkloadPlan finish_plan(assembler::Program program, ReferenceTrace trace,
                         const std::string& name, const EngineConfig& config) {
  WorkloadPlan plan;
  plan.program = std::move(program);
  plan.trace = std::move(trace);
  plan.budget = plan.trace.cycles * 4 + 100'000;

  // Candidate injection cycles per verdict class. Skip the first ~100
  // cycles (startup) so the flipped registers are live.
  std::vector<u64> pools[2];
  for (u64 c = 100; c < plan.trace.nodiv.size(); ++c)
    pools[plan.trace.nodiv[c] ? 1 : 0].push_back(c + 1);
  plan.pool_size[0] = pools[0].size();
  plan.pool_size[1] = pools[1].size();

  // The sampling RNG depends only on (seed, workload): plans are identical
  // whether workloads are prepared serially or concurrently — and whether
  // the trace was simulated locally or loaded from the shared warmup cache.
  Fnv1a64 h;
  h.add(config.seed);
  for (char ch : name) h.add(static_cast<u8>(ch));
  Xoshiro256 rng(h.value());
  for (int cls = 0; cls < 2; ++cls)
    plan.cycles[cls] = sample_cycles(std::move(pools[cls]), config.samples_per_class, rng);
  return plan;
}

WorkloadPlan build_plan(const std::string& name, const EngineConfig& config) {
  assembler::Program program = workloads::build(name, config.scale);
  ReferenceTrace trace;
  if (config.engine == InjectionEngine::kCheckpoint) {
    CheckpointPolicy policy;
    policy.interval = config.checkpoint_interval;
    trace = record_reference(program, config.dm, policy);
  } else {
    trace = record_reference(program, config.dm);
  }
  return finish_plan(std::move(program), std::move(trace), name, config);
}

std::vector<Site> enumerate_sites(const EngineConfig& config,
                                  const std::vector<WorkloadPlan>& plans) {
  std::vector<Site> sites;
  for (unsigned w = 0; w < plans.size(); ++w) {
    for (int cls = 0; cls < 2; ++cls) {
      for (u64 cycle : plans[w].cycles[cls]) {
        for (u8 reg : config.registers) {
          for (unsigned bit : config.bits) {
            sites.push_back({w, Injection{cycle, reg, bit}, cls == 1, false, 0});
            if (config.single_fault) {
              const u64 s = injection_seed(config.seed, config.workloads[w], cycle, reg, bit,
                                           /*single_fault=*/true);
              sites.push_back({w, Injection{cycle, reg, bit}, cls == 1, true,
                               static_cast<unsigned>(s & 1)});
            }
          }
        }
      }
    }
  }
  return sites;
}

u64 site_hash(const EngineConfig& config, const Site& site) {
  return injection_seed(config.seed, config.workloads[site.workload], site.injection.cycle,
                        site.injection.reg, site.injection.bit, site.single);
}

bool site_on_shard(const EngineConfig& config, const Site& site) {
  if (config.shard.count <= 1) return true;
  return site_hash(config, site) % config.shard.count == config.shard.index;
}

InjectionResult run_site(const Site& site, const WorkloadPlan& plan,
                         const EngineConfig& config) {
  const ReferenceTrace* fork =
      config.engine == InjectionEngine::kCheckpoint ? &plan.trace : nullptr;
  return site.single
             ? inject_single_fault_timed(plan.program, site.injection, site.target_core,
                                         plan.trace.golden_checksum, plan.budget, fork)
             : inject_identical_fault_timed(plan.program, site.injection,
                                            plan.trace.golden_checksum, plan.budget, fork);
}

}  // namespace detail

Interval wilson_interval(u64 successes, u64 trials, double z) {
  if (trials == 0) return {};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

u64 ClassAggregate::total() const {
  u64 sum = 0;
  for (u64 c : counts) sum += c;
  return sum;
}

double ClassAggregate::ccf_rate() const {
  const u64 n = total();
  return n == 0 ? 0.0 : static_cast<double>(count(Outcome::kCcf)) / static_cast<double>(n);
}

void ClassAggregate::add(const InjectionResult& result) {
  ++counts[static_cast<int>(result.outcome)];
  const bool detectable = result.outcome == Outcome::kDetected ||
                          result.outcome == Outcome::kCrashed ||
                          result.outcome == Outcome::kHung;
  if (detectable) latency.add(result.detection_latency);
}

void ClassAggregate::merge(const ClassAggregate& other) {
  for (int i = 0; i < 5; ++i) counts[i] += other.counts[i];
  latency.merge(other.latency);
}

void ClassAggregate::save_state(StateWriter& w) const {
  w.begin_section("CAGG", 1);
  for (u64 c : counts) w.put_u64(c);
  latency.save_state(w);
  w.end_section();
}

void ClassAggregate::restore_state(StateReader& r) {
  r.begin_section("CAGG", 1);
  for (u64& c : counts) c = r.get_u64();
  latency.restore_state(r);
  r.end_section();
}

u64 injection_seed(u64 seed, std::string_view workload, u64 cycle, u8 reg, unsigned bit,
                   bool single_fault) {
  Fnv1a64 h;
  h.add(seed);
  for (char ch : workload) h.add(static_cast<u8>(ch));
  h.add(cycle);
  h.add(reg);
  h.add(bit);
  h.add_bit(single_fault);
  return h.value();
}

EngineReport run_engine(const EngineConfig& raw_config) {
  EngineReport report;
  report.config = raw_config;
  EngineConfig& config = report.config;
  sanitize_targets(config.registers, config.bits);
  SAFEDM_CHECK_MSG(!config.workloads.empty(), "campaign needs at least one workload");
  SAFEDM_CHECK_MSG(!config.registers.empty(), "campaign needs at least one valid register");
  SAFEDM_CHECK_MSG(!config.bits.empty(), "campaign needs at least one valid bit");
  SAFEDM_CHECK_MSG(config.shard.count >= 1 && config.shard.index < config.shard.count,
                   "shard index " << config.shard.index << " out of range for "
                                  << config.shard.count << " shards");

  ThreadPool pool(config.threads);
  SAFEDM_INFO("faultsim: campaign over " << config.workloads.size() << " workloads, seed "
                                         << config.seed << ", " << pool.size() << " threads");

  // Stage 1: reference runs + per-class cycle sampling, one plan per
  // workload. Plans are seed-derived, so the concurrent fan-out cannot
  // perturb them.
  std::vector<detail::WorkloadPlan> plans(config.workloads.size());
  pool.parallel_for(plans.size(), [&](std::size_t i) {
    plans[i] = detail::build_plan(config.workloads[i], config);
  });

  // Stage 2: enumerate the full injection space into a flat site list,
  // then keep this shard's slice (everything, for the default 1-shard
  // campaign). The filter preserves the canonical site order, so the
  // aggregation below folds in the same order a shard log does.
  std::vector<detail::Site> all_sites = detail::enumerate_sites(config, plans);
  std::vector<detail::Site> sites;
  sites.reserve(all_sites.size());
  for (const detail::Site& site : all_sites)
    if (detail::site_on_shard(config, site)) sites.push_back(site);

  // Stage 3: run every site; results land at their site index, so the
  // aggregation below is independent of completion order.
  std::vector<InjectionResult> results(sites.size());
  pool.parallel_for(sites.size(), [&](std::size_t i) {
    results[i] = detail::run_site(sites[i], plans[sites[i].workload], config);
  });

  // Stage 4: serial aggregation in site order.
  report.workloads.resize(plans.size());
  for (unsigned w = 0; w < plans.size(); ++w) {
    WorkloadReport& wr = report.workloads[w];
    wr.name = config.workloads[w];
    wr.reference_cycles = plans[w].trace.cycles;
    wr.diverse_pool = plans[w].pool_size[0];
    wr.nodiv_pool = plans[w].pool_size[1];
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    WorkloadReport& wr = report.workloads[sites[i].workload];
    if (sites[i].single)
      wr.single.add(results[i]);
    else
      wr.identical[sites[i].nodiv_class ? 1 : 0].add(results[i]);
    ++wr.injections;
    ++report.injections;
  }
  for (const WorkloadReport& wr : report.workloads) {
    SAFEDM_INFO("faultsim: " << wr.name << ": " << wr.injections << " injections, CCF rate "
                             << wr.identical[1].ccf_rate() << " @no-div vs "
                             << wr.identical[0].ccf_rate() << " @diverse (pools "
                             << wr.nodiv_pool << "/" << wr.diverse_pool << ")");
  }
  return report;
}

void write_report_json(const EngineReport& report, std::ostream& os) {
  const EngineConfig& config = report.config;
  os << "{\n  \"schema\": \"safedm.bench.faultsim/v1\",\n";
  os << "  \"config\": {\"seed\": " << config.seed << ", \"scale\": " << config.scale
     << ", \"samples_per_class\": " << config.samples_per_class << ",\n";
  os << "             \"registers\": [";
  for (std::size_t i = 0; i < config.registers.size(); ++i)
    os << (i ? ", " : "") << int(config.registers[i]);
  os << "], \"bits\": [";
  for (std::size_t i = 0; i < config.bits.size(); ++i) os << (i ? ", " : "") << config.bits[i];
  os << "], \"single_fault\": " << (config.single_fault ? "true" : "false") << "},\n";
  os << "  \"injections\": " << report.injections << ",\n";
  os << "  \"workloads\": [\n";
  for (std::size_t w = 0; w < report.workloads.size(); ++w) {
    const WorkloadReport& wr = report.workloads[w];
    os << "    {\"name\": \"" << wr.name << "\", \"reference_cycles\": " << wr.reference_cycles
       << ", \"injections\": " << wr.injections << ",\n";
    os << "     \"pool\": {\"diverse\": " << wr.diverse_pool << ", \"nodiv\": " << wr.nodiv_pool
       << "},\n";
    os << "     \"identical\": {\n      \"diverse\": ";
    append_class_json(os, wr.identical[0], "      ");
    os << ",\n      \"nodiv\": ";
    append_class_json(os, wr.identical[1], "      ");
    os << "\n     }";
    if (config.single_fault) {
      os << ",\n     \"single_fault\": ";
      append_class_json(os, wr.single, "     ");
    }
    os << "\n    }" << (w + 1 < report.workloads.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

std::string report_to_json(const EngineReport& report) {
  std::ostringstream os;
  write_report_json(report, os);
  return os.str();
}

}  // namespace safedm::faultsim
