// Campaign internals shared between the single-process engine
// (campaign.cpp) and the sharded fleet layer (shard.cpp): per-workload
// plan construction, the deterministic site-space enumeration, and the
// per-site injection run. Not installed — the public surface is
// campaign.hpp / shard.hpp.
#pragma once

#include <string>
#include <vector>

#include "safedm/faultsim/campaign.hpp"

namespace safedm::faultsim::detail {

/// Per-workload plan: the reference trace plus the sampled injection
/// cycles for each verdict class. Built deterministically (seeded only by
/// the campaign seed and the workload name) before any injection runs.
struct WorkloadPlan {
  assembler::Program program{};
  ReferenceTrace trace;
  u64 budget = 0;
  std::vector<u64> cycles[2];  // [0] diverse-class, [1] nodiv-class samples
  u64 pool_size[2] = {0, 0};
};

/// One point of the enumerated injection space.
struct Site {
  unsigned workload = 0;
  Injection injection{};
  bool nodiv_class = false;
  bool single = false;        // single-fault control model
  unsigned target_core = 0;   // only for single == true
};

/// Derive the sampled cycles and pools from an already-recorded reference
/// trace (the path a shard takes when the trace came out of the shared
/// warmup cache instead of a fresh simulation).
WorkloadPlan finish_plan(assembler::Program program, ReferenceTrace trace,
                         const std::string& name, const EngineConfig& config);

/// Full plan construction: build the workload, record the reference run
/// (with checkpoints for the checkpoint engine), sample cycles.
WorkloadPlan build_plan(const std::string& name, const EngineConfig& config);

/// Enumerate the full injection space into a flat site list, in the
/// canonical campaign order (workload-major, then class, cycle, register,
/// bit, with the single-fault twin right after its identical-fault site).
std::vector<Site> enumerate_sites(const EngineConfig& config,
                                  const std::vector<WorkloadPlan>& plans);

/// The per-site hash every deterministic decision derives from; shard
/// assignment is `site_hash % shard_count`.
u64 site_hash(const EngineConfig& config, const Site& site);

/// True when `site` belongs to the shard named by `config.shard`.
bool site_on_shard(const EngineConfig& config, const Site& site);

/// Run one injection site against its workload plan.
InjectionResult run_site(const Site& site, const WorkloadPlan& plan,
                         const EngineConfig& config);

}  // namespace safedm::faultsim::detail
