// Sharded campaign fleet: run one deterministic slice of a campaign per
// process, stream durable partial aggregates to an append-only shard log,
// and fold any complete set of shard logs back into the canonical report.
//
// Determinism contract (extends campaign.hpp): the merged report is
// byte-identical to the single-process `run_engine` JSON for ANY shard
// count, ANY per-shard thread count, and ANY merge order — because
//   1. shard assignment is `site_hash % count`, a pure function of the
//      campaign seed and the site coordinates;
//   2. each shard folds its slice in canonical site order, so a shard
//      partial equals the contiguous-run aggregate over that slice; and
//   3. the merge folds partials in shard-index order with operations
//      (integer adds, saturating histogram adds, max) that are
//      associative and commutative, so regrouping by shard cannot change
//      a single byte.
//
// Crash tolerance: the shard log is a sequence of length-prefixed records,
// each flushed as a unit. A SIGKILL mid-write leaves at most one torn
// record at the tail; `read_shard_log` drops it and `run_shard --resume`
// truncates it and continues from the last durable partial (re-running at
// most `flush_interval` sites, whose re-aggregation is idempotent because
// the partial carries the full fold so far, not a delta).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "safedm/faultsim/campaign.hpp"

namespace safedm::faultsim {

/// Shard-log record format version (the section version of every record).
inline constexpr u32 kShardLogVersion = 1;

/// Upper bound on the fleet size; keeps `--shard i/N` typos from
/// enumerating an absurd partition.
inline constexpr u32 kMaxShards = 4096;

/// A merge/shard-log problem the caller can print and exit on. The
/// message is pre-formatted as `path:record: detail` (record numbers are
/// 1-based; 0 means the file as a whole), mirroring the scenario DSL's
/// one-line `file:line:` diagnostics.
class MergeError : public std::runtime_error {
 public:
  explicit MergeError(const std::string& what) : std::runtime_error(what) {}
  MergeError(const std::string& path, u64 record, const std::string& detail);
};

/// Per-workload reference metadata, captured once in the shard-log header
/// so the merge can rebuild the `WorkloadReport` skeleton without
/// re-running any reference simulation.
struct WorkloadMeta {
  std::string name;
  u64 reference_cycles = 0;
  u64 diverse_pool = 0;
  u64 nodiv_pool = 0;

  void save_state(StateWriter& w) const;  // "WMET"
  void restore_state(StateReader& r);
};

/// Record 1 of every shard log ("SHHD"): the campaign identity this log
/// belongs to. `fingerprint` covers everything that shapes the injection
/// space and its outcomes (workloads, seed, scale, samples, targets,
/// single-fault flag, monitor config) and deliberately excludes pure
/// performance knobs (threads, engine, checkpoint interval, shard spec) —
/// logs produced under different perf settings merge freely.
struct ShardHeader {
  u64 fingerprint = 0;
  u32 shard_index = 0;
  u32 shard_count = 1;
  u64 shard_sites = 0;  // sites this shard owns
  u64 total_sites = 0;  // full campaign site-space size
  u64 seed = 0;
  u32 scale = 1;
  u32 samples_per_class = 0;
  bool single_fault = true;
  std::vector<u8> registers;
  std::vector<u32> bits;
  std::vector<WorkloadMeta> workloads;

  void save_state(StateWriter& w) const;  // "SHHD"
  void restore_state(StateReader& r);
};

/// Per-workload running aggregate inside a streamed partial.
struct WorkloadPartial {
  u64 injections = 0;
  ClassAggregate identical[2];
  ClassAggregate single;

  void merge(const WorkloadPartial& other);
  void save_state(StateWriter& w) const;  // "WPRT"
  void restore_state(StateReader& r);
};

/// Records 2..n of a shard log ("SHPT"): the complete fold of the first
/// `next_site` sites of the shard's slice (a cumulative snapshot, not a
/// delta — so resume needs only the LAST durable partial, and a re-run
/// of sites already covered by it cannot double-count).
struct ShardPartial {
  u64 next_site = 0;     // sites folded so far, in canonical slice order
  bool complete = false; // next_site == shard_sites: the shard is done
  std::vector<WorkloadPartial> workloads;

  void save_state(StateWriter& w) const;  // "SHPT"
  void restore_state(StateReader& r);
};

/// Everything durable in one shard log.
struct ShardLogContents {
  ShardHeader header;
  std::optional<ShardPartial> last;  // last durable partial, if any
  u64 records = 0;                   // durable records, header included
  u64 durable_bytes = 0;             // log size excluding any torn tail
  bool torn_tail = false;            // trailing partially-written record
};

/// Identity hash of the campaign a config describes (see ShardHeader).
/// Call with the config already passed through `sanitize_targets`.
u64 campaign_fingerprint(const EngineConfig& config);

/// Parse a shard log, tolerating a torn tail record. Throws MergeError on
/// anything else (bad magic, unsupported record version, corruption that
/// cannot be explained by a mid-write kill).
ShardLogContents read_shard_log(const std::string& path);

struct ShardRunConfig {
  EngineConfig engine;        // with engine.shard naming this shard
  std::string log_path;       // append-only shard log
  bool resume = false;        // continue from the log's last durable partial
  u64 flush_interval = 16;    // sites folded per durable partial record
  std::string ref_cache_dir;  // shared reference-trace cache; "" = off
  u64 max_sites = 0;          // stop after this many sites (0 = run to
                              // completion); a test hook for mid-campaign
                              // interruption without process games
};

struct ShardRunResult {
  u64 shard_sites = 0;  // sites this shard owns
  u64 resumed_at = 0;   // slice cursor restored from the log (0 if fresh)
  u64 executed = 0;     // sites actually run by this invocation
  bool complete = true; // the log now ends in a complete partial
};

/// Run (or resume) one shard, streaming partials to `log_path`. Usage
/// errors — bad shard spec, resume against a log from a different
/// campaign — throw CheckError; a malformed log throws MergeError.
ShardRunResult run_shard(const ShardRunConfig& config);

/// Fold a complete set of shard logs into the canonical report;
/// `write_report_json` on the result is byte-identical to the
/// single-process campaign. Throws MergeError when the set is not a
/// complete, consistent fleet (missing/duplicate/unfinished shard,
/// fingerprint mismatch, or — when `manifest_path` is given — any
/// disagreement with the manifest).
EngineReport merge_shard_logs(const std::vector<std::string>& log_paths,
                              const std::string& manifest_path = "");

/// Fleet manifest ("SHMF"): the expected shape of a complete fleet, so an
/// operator can validate a pile of logs without knowing the campaign
/// config that produced them.
struct ShardManifest {
  u64 fingerprint = 0;
  u32 shard_count = 1;
  u64 total_sites = 0;
  std::vector<u64> shard_sites;  // per shard index

  void save_state(StateWriter& w) const;  // "SHMF"
  void restore_state(StateReader& r);
};

/// Enumerate the site space for `config` (running or cache-loading the
/// reference traces) and count each shard's slice under `shard_count`.
ShardManifest build_manifest(const EngineConfig& config, u32 shard_count,
                             const std::string& ref_cache_dir = "");

void write_manifest_file(const std::string& path, const ShardManifest& manifest);
ShardManifest read_manifest_file(const std::string& path);

}  // namespace safedm::faultsim
