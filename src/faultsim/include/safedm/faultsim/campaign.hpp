// Parallel, deterministic fault-injection campaign engine.
//
// Scales the serial `run_campaign` proof-of-concept into a statistically
// meaningful experiment: the full injection space (workload × injection
// cycle × register × bit, for both the identical-CCF and the single-fault
// model) is enumerated up front into a flat site list, fanned out over a
// ThreadPool, and aggregated *by site index* afterwards — so the report is
// bit-identical regardless of thread count or completion order. Every
// random decision (cycle sampling, single-fault target core) derives from
// `hash(seed, workload, site)`, never from shared-RNG draw order.
//
// Per injection the engine records the 5-way `Outcome` plus the detection
// latency (cycles from injection to the first result divergence, trap, or
// watchdog expiry), aggregated into `safedm::Histogram`s per verdict
// class. Per-workload CCF rates carry Wilson 95% confidence intervals so
// the "no-diversity cycles are where redundancy stops protecting" claim
// (paper Section III-B) is tested with error bars, not bare counts.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "safedm/common/histogram.hpp"
#include "safedm/faultsim/faultsim.hpp"

namespace safedm {
class StateReader;
class StateWriter;
class ThreadPool;
}  // namespace safedm

namespace safedm::faultsim {

/// How an injection run reaches its injection cycle.
enum class InjectionEngine : u8 {
  kReplay,      // simulate from cycle zero every time (historical engine)
  kCheckpoint,  // fork from the nearest reference-run checkpoint
};

/// Deterministic campaign partition (the fleet layer, ROADMAP item 3).
/// Shard `index` of `count` owns exactly the sites whose per-site seed
/// hash is ≡ index (mod count). The assignment depends only on the
/// campaign seed and the site coordinates — never on thread count,
/// engine, or enumeration batching — so the same site lands on the same
/// shard on every machine, and the union over shards is the full space.
struct ShardSpec {
  u32 index = 0;  // 0-based
  u32 count = 1;  // 1 = the whole campaign (no sharding)
};

struct EngineConfig {
  std::vector<std::string> workloads{"bitcount", "cubic", "md5", "quicksort"};
  unsigned scale = 1;               // workload input scale (see workloads.hpp)
  unsigned samples_per_class = 12;  // injection cycles sampled per verdict class
  std::vector<u8> registers{6, 9, 18};    // t1, s1, s2: live in most workloads
  std::vector<unsigned> bits{2, 17, 40};  // low / mid / high bit of the register
  u64 seed = 1;
  unsigned threads = 0;             // worker count; 0 = hardware concurrency
  bool single_fault = true;         // also run the single-fault control model
  monitor::SafeDmConfig dm{};
  // Like `threads`, the engine choice is a pure performance knob: reports
  // are bit-identical across engines and intervals, and neither is echoed
  // into the JSON.
  InjectionEngine engine = InjectionEngine::kCheckpoint;
  u64 checkpoint_interval = 0;      // cycles between checkpoints; 0 = auto
  // With count > 1, run_engine aggregates only this shard's slice of the
  // site space (reference runs and pools stay campaign-global). The JSON
  // then covers the slice; the canonical full report comes from merging
  // all shard logs (see shard.hpp / tools/merge).
  ShardSpec shard{};
};

/// Wilson score interval for a binomial proportion (default z: 95%).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval wilson_interval(u64 successes, u64 trials, double z = 1.959964);

/// Outcome counts + detection-latency histogram for one injection class.
struct ClassAggregate {
  u64 counts[5] = {};  // indexed by Outcome
  Histogram latency = Histogram::exponential(24);  // detectable outcomes only

  u64 total() const;
  u64 count(Outcome outcome) const { return counts[static_cast<int>(outcome)]; }
  double ccf_rate() const;
  Interval ccf_interval() const { return wilson_interval(count(Outcome::kCcf), total()); }
  void add(const InjectionResult& result);

  /// Fold another aggregate (a shard partial) into this one. Outcome
  /// counts add; the latency histogram folds with the saturating
  /// `Histogram::merge`, so folding partials in any order or grouping
  /// matches adding every injection to one aggregate byte-for-byte.
  void merge(const ClassAggregate& other);

  /// Shard-log serialization ("CAGG" section): outcome counts + latency
  /// histogram, the per-class payload of a streamed partial record.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);
};

struct WorkloadReport {
  std::string name;
  u64 reference_cycles = 0;
  u64 diverse_pool = 0;  // candidate injection cycles SafeDM called diverse
  u64 nodiv_pool = 0;    // ... and lacking diversity
  // Identical-double-fault model, split by SafeDM's verdict at the
  // injection cycle: [0] = diverse, [1] = no-diversity.
  ClassAggregate identical[2];
  // Single-fault control model (all sites, verdict-independent).
  ClassAggregate single;
  u64 injections = 0;
};

struct EngineReport {
  EngineConfig config;
  std::vector<WorkloadReport> workloads;
  u64 injections = 0;
};

/// Deterministic per-site seed: identical for a given (campaign seed,
/// workload name, site coordinates) no matter which thread runs the site.
u64 injection_seed(u64 seed, std::string_view workload, u64 cycle, u8 reg, unsigned bit,
                   bool single_fault);

/// Run the full campaign. Invalid registers/bits are dropped (with a
/// warning) before enumeration; unknown workload names throw CheckError.
EngineReport run_engine(const EngineConfig& config);

/// JSON report (`schema: safedm.bench.faultsim/v1`). The thread count is
/// deliberately NOT echoed so reports from different `--threads` values
/// are byte-comparable.
void write_report_json(const EngineReport& report, std::ostream& os);
std::string report_to_json(const EngineReport& report);

}  // namespace safedm::faultsim
