// Common-cause-failure (CCF) fault-injection campaign.
//
// Validates the premise of the paper (Section III-B): when two redundant
// cores hold *identical* state, a single physical fault affecting both
// identically (e.g. a voltage droop flipping the same register bit in
// both) produces identical errors, which output comparison cannot detect —
// a CCF. When the cores are diverse, the same double fault lands on
// different state and the errors differ, so comparison catches them.
//
// The campaign:
//   1. a reference run records SafeDM's per-cycle verdict and the golden
//      result checksum;
//   2. injection runs flip the same register bit in both cores at a chosen
//      cycle and classify the outcome;
//   3. outcomes are aggregated by the SafeDM verdict at the injection
//      cycle, yielding the empirical CCF rate per verdict class.
#pragma once

#include <optional>
#include <vector>

#include "safedm/assembler/assembler.hpp"
#include "safedm/common/bits.hpp"
#include "safedm/safedm/config.hpp"

namespace safedm::faultsim {

/// Watchdog budget for the reference run; injection runs derive their own
/// budget from the measured reference length, and the injector entry
/// points default to this when no budget is given.
inline constexpr u64 kReferenceBudget = 30'000'000;

enum class Outcome : u8 {
  kMasked,    // both results equal the golden value: fault had no effect
  kDetected,  // the two cores' results differ: comparison catches the error
  kCcf,       // results agree with each other but are wrong: undetectable
  kCrashed,   // a core trapped / accessed unmapped memory: detectable
  kHung,      // a core failed to finish within the cycle budget: watchdog
};

const char* outcome_name(Outcome outcome);

/// One serialized SoC+monitor rig state, taken after cycle `cycle`'s
/// observers ran. Forking from it reproduces the replay-from-zero run
/// bit-exactly from that cycle on (the restored-forward equivalence
/// invariant, DESIGN.md §5b).
struct Checkpoint {
  u64 cycle = 0;
  std::vector<u8> state;
};

/// How the reference run drops checkpoints.
struct CheckpointPolicy {
  /// Cycles between checkpoints; 0 = auto. Auto starts at a small
  /// interval and doubles it (thinning the recorded train) whenever the
  /// count would exceed `max_checkpoints`, bounding memory at roughly
  /// max_checkpoints snapshots regardless of workload length.
  u64 interval = 0;
  unsigned max_checkpoints = 64;
};

struct ReferenceTrace {
  std::vector<bool> nodiv;     // SafeDM verdict per cycle (index 0 = cycle 1)
  u64 golden_checksum = 0;
  u64 cycles = 0;

  /// Monitor config the trace (and its checkpoints) were recorded with; a
  /// forked injection run must rebuild the identical rig to restore into.
  monitor::SafeDmConfig dm_config{};
  std::vector<Checkpoint> checkpoints;  // ascending by cycle; may be empty
  u64 checkpoint_interval = 0;          // final effective drop interval
};

/// Reference run: record per-cycle verdicts and the golden result.
ReferenceTrace record_reference(const assembler::Program& program,
                                const monitor::SafeDmConfig& dm_config = {});

/// Same, additionally dropping restorable checkpoints per `policy` for
/// checkpoint-forked injection runs.
ReferenceTrace record_reference(const assembler::Program& program,
                                const monitor::SafeDmConfig& dm_config,
                                const CheckpointPolicy& policy);

struct Injection {
  u64 cycle = 0;   // inject right after this SoC cycle completes
  u8 reg = 5;      // architectural integer register (1..31; x0 is rejected —
                   // flipping the hardwired zero is a no-op that would be
                   // miscounted as a masked fault)
  unsigned bit = 0;
};

/// Outcome plus detection latency: cycles from the injection to the event
/// that makes the fault observable — the end-of-run output comparison for
/// `kDetected`, the trap for `kCrashed`, the watchdog budget expiring for
/// `kHung`. Zero for `kMasked` and `kCcf` (nothing ever detects those).
struct InjectionResult {
  Outcome outcome = Outcome::kMasked;
  u64 detection_latency = 0;
};

/// Run with the identical fault injected into BOTH cores (the CCF model).
///
/// When `fork_from` is non-null and carries checkpoints, the run restores
/// the nearest checkpoint at or before the injection cycle and simulates
/// only the tail — O(tail) instead of O(prefix + tail) — with outcomes
/// bit-identical to the replay-from-zero engine.
InjectionResult inject_identical_fault_timed(const assembler::Program& program,
                                             const Injection& injection, u64 golden_checksum,
                                             u64 max_cycles = kReferenceBudget,
                                             const ReferenceTrace* fork_from = nullptr);

/// Run with the fault injected into ONE core (the single-fault model the
/// redundancy is designed for; must always be masked or detected).
InjectionResult inject_single_fault_timed(const assembler::Program& program,
                                          const Injection& injection, unsigned target_core,
                                          u64 golden_checksum,
                                          u64 max_cycles = kReferenceBudget,
                                          const ReferenceTrace* fork_from = nullptr);

/// Outcome-only conveniences (historical API).
Outcome inject_identical_fault(const assembler::Program& program, const Injection& injection,
                               u64 golden_checksum, u64 max_cycles);
Outcome inject_single_fault(const assembler::Program& program, const Injection& injection,
                            unsigned target_core, u64 golden_checksum, u64 max_cycles);

struct CampaignConfig {
  unsigned samples_per_class = 12;  // injection cycles sampled per verdict class
  std::vector<u8> registers{6, 9, 18};  // t1, s1, s2: live in most workloads
  std::vector<unsigned> bits{2, 17, 40};
  u64 seed = 1;
};

/// Drop injection targets the fault model cannot express: register x0 (the
/// hardwired zero — a flip there is a no-op that would be miscounted as
/// masked), registers >= 32, and bits >= 64. Logs a warning per dropped
/// entry. Used by `run_campaign` and the campaign engine.
void sanitize_targets(std::vector<u8>& registers, std::vector<unsigned>& bits);

struct CampaignResult {
  // [verdict: 0 = diverse cycle, 1 = no-diversity cycle][outcome]
  u64 counts[2][5] = {};
  u64 injections = 0;

  u64 total(bool nodiv_class) const;
  double ccf_rate(bool nodiv_class) const;
};

/// Full campaign over one workload.
CampaignResult run_campaign(const assembler::Program& program, const CampaignConfig& config,
                            const monitor::SafeDmConfig& dm_config = {});

}  // namespace safedm::faultsim
