#include "safedm/faultsim/faultsim.hpp"

#include <algorithm>
#include <utility>

#include "safedm/common/check.hpp"
#include "safedm/common/log.hpp"
#include "safedm/common/rng.hpp"
#include "safedm/common/state.hpp"
#include "safedm/safedm/monitor.hpp"
#include "safedm/soc/soc.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::faultsim {
namespace {

// The monitor is the only observer and a pure sink, so campaign rigs run
// with batched observer delivery: SafeDM's chunked on_cycles path does the
// heavy lifting, and snapshots/verdicts stay bit-identical to per-cycle
// delivery (flushed automatically at checkpoints and APB accesses).
constexpr unsigned kRigObserverBatch = 32;

soc::SocConfig rig_soc_config() {
  soc::SocConfig config;
  config.observer_batch = kRigObserverBatch;
  return config;
}

struct Rig {
  explicit Rig(monitor::SafeDmConfig dm_config) : soc(rig_soc_config()), dm([&] {
    dm_config.start_enabled = true;
    return dm_config;
  }()) {
    soc.add_observer(&dm);
  }

  void load(const assembler::Program& program) {
    soc.load_redundant(program);
    dm.set_prelude_ignore(0, 0);
    dm.set_prelude_ignore(1, 0);
  }

  u64 result(unsigned core_index) {
    const u64 base = core_index == 0 ? soc.config().data_base0 : soc.config().data_base1;
    return soc.memory().load(base + workloads::kResultOffset, 8);
  }

  // The rig's state is the SoC plus the monitor observing it; the monitor
  // stays attached across restore (observer binding is not state).
  void save_state(StateWriter& w) const {
    w.begin_section("FRIG", 1);
    soc.save_state(w);
    dm.save_state(w);
    w.end_section();
  }

  void restore_state(StateReader& r) {
    r.begin_section("FRIG", 1);
    soc.restore_state(r);
    dm.restore_state(r);
    r.end_section();
  }

  soc::MpSoc soc;
  monitor::SafeDm dm;
};

/// The one stepping loop both the reference run and every injection run
/// share: step until all cores halt or the budget expires, invoking
/// `per_cycle` after each completed cycle (post-observers).
template <typename PerCycle>
void run_to_halt(Rig& rig, u64 budget, PerCycle&& per_cycle) {
  while (!rig.soc.all_halted() && rig.soc.cycle() < budget) {
    rig.soc.step();
    per_cycle();
  }
}

Outcome classify(Rig& rig, u64 golden, bool finished, bool crashed) {
  if (crashed) return Outcome::kCrashed;
  if (!finished) return Outcome::kHung;
  // A core that halted for any reason other than a clean ecall is a
  // detectable failure as well.
  if (rig.soc.core(0).halt_reason() != isa::HaltReason::kEcall ||
      rig.soc.core(1).halt_reason() != isa::HaltReason::kEcall)
    return Outcome::kCrashed;
  const u64 r0 = rig.result(0);
  const u64 r1 = rig.result(1);
  if (r0 != r1) return Outcome::kDetected;
  if (r0 == golden) return Outcome::kMasked;
  return Outcome::kCcf;
}

void validate_injection(const Injection& injection) {
  SAFEDM_CHECK_MSG(injection.reg >= 1 && injection.reg <= 31,
                   "injection register must be x1..x31 (x0 is hardwired zero), got x"
                       << int(injection.reg));
  SAFEDM_CHECK_MSG(injection.bit < 64, "injection bit must be 0..63, got " << injection.bit);
}

/// Nearest checkpoint at or before the injection cycle, or null when none
/// qualifies (then the run replays from cycle zero).
const Checkpoint* find_fork_point(const ReferenceTrace& trace, u64 injection_cycle) {
  const Checkpoint* best = nullptr;
  for (const Checkpoint& cp : trace.checkpoints) {
    if (cp.cycle > injection_cycle) break;  // ascending by cycle
    best = &cp;
  }
  return best;
}

InjectionResult run_with_fault(const assembler::Program& program, const Injection& injection,
                               bool both_cores, unsigned target_core, u64 golden,
                               u64 max_cycles, const ReferenceTrace* fork) {
  validate_injection(injection);
  Rig rig{fork ? fork->dm_config : monitor::SafeDmConfig{}};
  rig.load(program);
  bool crashed = false;
  bool injected = false;
  u64 event_cycle = 0;  // cycle at which the failure became observable

  const auto inject = [&] {
    injected = true;
    if (both_cores) {
      rig.soc.core(0).flip_architectural_bit(injection.reg, injection.bit);
      rig.soc.core(1).flip_architectural_bit(injection.reg, injection.bit);
    } else {
      rig.soc.core(target_core).flip_architectural_bit(injection.reg, injection.bit);
    }
  };

  try {
    if (fork != nullptr) {
      if (const Checkpoint* cp = find_fork_point(*fork, injection.cycle)) {
        StateReader r(cp->state);
        rig.restore_state(r);
        // The replay engine flips right after the step that reaches the
        // injection cycle. A checkpoint taken at exactly that cycle captures
        // the pre-flip state, so the flip is due now; otherwise the loop
        // below reaches it the same way replay does.
        if (rig.soc.cycle() >= injection.cycle) inject();
      }
    }
    run_to_halt(rig, max_cycles, [&] {
      if (!injected && rig.soc.cycle() >= injection.cycle) inject();
    });
    // Clean finish: results are compared when both cores halted. A hang is
    // caught by the watchdog at budget expiry.
    event_cycle = rig.soc.all_halted() ? rig.soc.cycle() : max_cycles;
  } catch (const CheckError&) {
    // Wild pointer / unmapped access after the flip: a loud, detectable
    // failure (the platform would raise a bus error right here).
    crashed = true;
    event_cycle = rig.soc.cycle();
  }
  InjectionResult result;
  result.outcome = classify(rig, golden, rig.soc.all_halted(), crashed);
  const bool detectable = result.outcome == Outcome::kDetected ||
                          result.outcome == Outcome::kCrashed ||
                          result.outcome == Outcome::kHung;
  if (detectable && injected && event_cycle > injection.cycle)
    result.detection_latency = event_cycle - injection.cycle;
  return result;
}

ReferenceTrace record_reference_impl(const assembler::Program& program,
                                     const monitor::SafeDmConfig& dm_config,
                                     const CheckpointPolicy* policy) {
  Rig rig{dm_config};
  rig.load(program);
  ReferenceTrace trace;
  trace.dm_config = dm_config;

  u64 interval = 0;
  bool adaptive = false;
  if (policy != nullptr) {
    adaptive = policy->interval == 0;
    interval = adaptive ? 1024 : policy->interval;
  }

  // The per-cycle verdict stream arrives through the monitor's trail sink
  // (appended during batched deliveries) instead of polling after every
  // step; checkpoint saves flush pending cycles first, so each checkpoint
  // still captures the exact per-cycle state.
  rig.dm.set_verdict_trail(&trace.nodiv);

  run_to_halt(rig, kReferenceBudget, [&] {
    if (interval == 0 || rig.soc.all_halted()) return;
    if (rig.soc.cycle() % interval != 0) return;
    StateWriter w;
    rig.save_state(w);
    trace.checkpoints.push_back(Checkpoint{rig.soc.cycle(), w.take()});
    if (adaptive && trace.checkpoints.size() > policy->max_checkpoints) {
      // Thin the train (keep every other checkpoint) and double the
      // interval, bounding memory on long workloads.
      std::vector<Checkpoint> kept;
      for (std::size_t i = 0; i < trace.checkpoints.size(); i += 2)
        kept.push_back(std::move(trace.checkpoints[i]));
      trace.checkpoints = std::move(kept);
      interval *= 2;
    }
  });
  rig.soc.flush_observers();  // drain the tail of the trail
  rig.dm.set_verdict_trail(nullptr);
  SAFEDM_CHECK_MSG(rig.soc.all_halted(), "reference run did not finish");
  trace.golden_checksum = rig.result(0);
  SAFEDM_CHECK_MSG(trace.golden_checksum == rig.result(1),
                   "reference run: redundant results disagree");
  trace.cycles = rig.soc.cycle();
  trace.checkpoint_interval = interval;
  return trace;
}

}  // namespace

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked:
      return "masked";
    case Outcome::kDetected:
      return "detected";
    case Outcome::kCcf:
      return "CCF";
    case Outcome::kCrashed:
      return "crashed";
    case Outcome::kHung:
      return "hung";
  }
  return "?";
}

ReferenceTrace record_reference(const assembler::Program& program,
                                const monitor::SafeDmConfig& dm_config) {
  return record_reference_impl(program, dm_config, nullptr);
}

ReferenceTrace record_reference(const assembler::Program& program,
                                const monitor::SafeDmConfig& dm_config,
                                const CheckpointPolicy& policy) {
  return record_reference_impl(program, dm_config, &policy);
}

InjectionResult inject_identical_fault_timed(const assembler::Program& program,
                                             const Injection& injection, u64 golden_checksum,
                                             u64 max_cycles, const ReferenceTrace* fork_from) {
  return run_with_fault(program, injection, /*both_cores=*/true, 0, golden_checksum,
                        max_cycles, fork_from);
}

InjectionResult inject_single_fault_timed(const assembler::Program& program,
                                          const Injection& injection, unsigned target_core,
                                          u64 golden_checksum, u64 max_cycles,
                                          const ReferenceTrace* fork_from) {
  SAFEDM_CHECK(target_core < soc::kNumCores);
  return run_with_fault(program, injection, /*both_cores=*/false, target_core,
                        golden_checksum, max_cycles, fork_from);
}

Outcome inject_identical_fault(const assembler::Program& program, const Injection& injection,
                               u64 golden_checksum, u64 max_cycles) {
  return inject_identical_fault_timed(program, injection, golden_checksum, max_cycles).outcome;
}

Outcome inject_single_fault(const assembler::Program& program, const Injection& injection,
                            unsigned target_core, u64 golden_checksum, u64 max_cycles) {
  return inject_single_fault_timed(program, injection, target_core, golden_checksum, max_cycles)
      .outcome;
}

void sanitize_targets(std::vector<u8>& registers, std::vector<unsigned>& bits) {
  std::erase_if(registers, [](u8 reg) {
    const bool bad = reg < 1 || reg > 31;
    if (bad) SAFEDM_WARN("faultsim: dropping injection register x" << int(reg)
                                                                   << " (valid: x1..x31)");
    return bad;
  });
  std::erase_if(bits, [](unsigned bit) {
    const bool bad = bit >= 64;
    if (bad) SAFEDM_WARN("faultsim: dropping injection bit " << bit << " (valid: 0..63)");
    return bad;
  });
}

u64 CampaignResult::total(bool nodiv_class) const {
  u64 sum = 0;
  for (u64 c : counts[nodiv_class ? 1 : 0]) sum += c;
  return sum;
}

double CampaignResult::ccf_rate(bool nodiv_class) const {
  const u64 n = total(nodiv_class);
  if (n == 0) return 0.0;
  return static_cast<double>(counts[nodiv_class ? 1 : 0][static_cast<int>(Outcome::kCcf)]) / n;
}

CampaignResult run_campaign(const assembler::Program& program, const CampaignConfig& raw_config,
                            const monitor::SafeDmConfig& dm_config) {
  CampaignConfig config = raw_config;
  sanitize_targets(config.registers, config.bits);
  const ReferenceTrace trace = record_reference(program, dm_config);

  // Collect candidate injection cycles for each verdict class. Skip the
  // first ~100 cycles (startup) so the flipped registers are live.
  std::vector<u64> diverse_cycles, nodiv_cycles;
  for (u64 c = 100; c < trace.nodiv.size(); ++c)
    (trace.nodiv[c] ? nodiv_cycles : diverse_cycles).push_back(c + 1);

  Xoshiro256 rng(config.seed);
  const auto sample = [&](std::vector<u64>& pool, unsigned count) {
    std::vector<u64> picked;
    for (unsigned i = 0; i < count && !pool.empty(); ++i)
      picked.push_back(pool[rng.below(pool.size())]);
    return picked;
  };

  CampaignResult result;
  const u64 budget = trace.cycles * 4 + 100'000;
  for (int cls = 0; cls < 2; ++cls) {
    auto& pool = cls == 1 ? nodiv_cycles : diverse_cycles;
    for (u64 cycle : sample(pool, config.samples_per_class)) {
      for (u8 reg : config.registers) {
        for (unsigned bit : config.bits) {
          const Outcome outcome =
              inject_identical_fault(program, Injection{cycle, reg, bit},
                                     trace.golden_checksum, budget);
          ++result.counts[cls][static_cast<int>(outcome)];
          ++result.injections;
        }
      }
    }
  }
  return result;
}

}  // namespace safedm::faultsim
