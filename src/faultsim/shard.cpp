#include "safedm/faultsim/shard.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <utility>

#include "campaign_internal.hpp"
#include "safedm/common/check.hpp"
#include "safedm/common/hash.hpp"
#include "safedm/common/log.hpp"
#include "safedm/common/mmap_file.hpp"
#include "safedm/common/state.hpp"
#include "safedm/common/thread_pool.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::faultsim {
namespace {

constexpr u8 kStreamMagic[8] = {'S', 'A', 'F', 'E', 'D', 'M', 'S', 1};

u32 read_le32(const u8* p) {
  return static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 | static_cast<u32>(p[2]) << 16 |
         static_cast<u32>(p[3]) << 24;
}

std::string shard_name(u32 index, u32 count) {
  return std::to_string(index) + "/" + std::to_string(count);
}

// ---------------------------------------------------------------------------
// Shard-log record framing: u32 LE payload length + one complete
// StateWriter stream. Each record is appended with one buffered write and
// an fflush, so a SIGKILL leaves at most a *prefix* of the final record on
// disk — a fully framed record is always intact, and any parse failure
// inside one is real corruption, never a torn write.
// ---------------------------------------------------------------------------

// Every append to one shard log funnels through this writer. The stream
// handle is guarded so frame+payload+flush stays one atomic unit even if a
// future change moves flushing off the wave loop's calling thread.
class ShardLogWriter {
 public:
  ShardLogWriter(std::string path, bool fresh) : path_(std::move(path)) {
    std::lock_guard<std::mutex> lock(mutex_);
    file_ = std::fopen(path_.c_str(), fresh ? "wb" : "ab");
    SAFEDM_CHECK_MSG(file_ != nullptr, "cannot open shard log " << path_);
  }
  ~ShardLogWriter() { close(); }
  ShardLogWriter(const ShardLogWriter&) = delete;
  ShardLogWriter& operator=(const ShardLogWriter&) = delete;

  void append(const std::vector<u8>& payload) {
    SAFEDM_CHECK_MSG(payload.size() <= 0xffff'ffffull, "shard log record too large");
    const u32 len = static_cast<u32>(payload.size());
    const u8 frame[4] = {static_cast<u8>(len), static_cast<u8>(len >> 8),
                         static_cast<u8>(len >> 16), static_cast<u8>(len >> 24)};
    std::lock_guard<std::mutex> lock(mutex_);
    const bool ok = std::fwrite(frame, 1, sizeof frame, file_) == sizeof frame &&
                    std::fwrite(payload.data(), 1, payload.size(), file_) == payload.size() &&
                    std::fflush(file_) == 0;
    SAFEDM_CHECK_MSG(ok, "shard log write failed: " << path_);
  }

  void append_partial(const ShardPartial& partial) {
    StateWriter w;
    partial.save_state(w);
    append(w.take());
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

 private:
  std::string path_;
  std::mutex mutex_;
  std::FILE* file_ = nullptr;  // lint: guarded-by(mutex_)
};

// ---------------------------------------------------------------------------
// Reference-trace warmup cache: one file per (workload, scale, monitor,
// engine) holding the recorded reference run — verdict bitmap, golden
// checksum, and the checkpoint train. Shards map it read-only and
// deserialize out of the page cache instead of re-simulating; the writer
// publishes atomically via rename so concurrent shards either see a whole
// snapshot or none.
// ---------------------------------------------------------------------------

u64 reference_cache_key(const std::string& workload, const EngineConfig& config) {
  Fnv1a64 h;
  h.add(workload.size());
  for (char ch : workload) h.add(static_cast<u8>(ch));
  h.add(config.scale);
  const monitor::SafeDmConfig& dm = config.dm;
  h.add(dm.num_replicas);
  h.add(static_cast<u64>(dm.policy));
  h.add(dm.quorum_k);
  h.add(dm.data_fifo_depth);
  h.add(dm.num_ports);
  h.add(static_cast<u64>(dm.is_mode));
  h.add(static_cast<u64>(dm.compare));
  h.add(static_cast<u64>(dm.report));
  h.add(dm.interrupt_threshold);
  h.add_bit(dm.start_enabled);
  h.add_bit(dm.arm_on_first_commit);
  h.add(dm.history_bins.size());
  for (u64 b : dm.history_bins) h.add(b);
  h.add_bit(dm.track_distance);
  h.add_bit(dm.incremental_compare);
  // The engine and its interval shape the cached checkpoint train (the
  // replay engine records none), so they are part of the cache identity
  // even though reports are byte-identical across them.
  h.add(static_cast<u64>(config.engine));
  h.add(config.checkpoint_interval);
  return h.value();
}

std::string reference_cache_path(const std::string& dir, const std::string& workload,
                                 const EngineConfig& config) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(reference_cache_key(workload, config)));
  return dir + "/ref-" + hex + ".state";
}

void save_trace(StateWriter& w, const ReferenceTrace& trace) {
  w.begin_section("FREF", 1);
  w.put_u64(trace.golden_checksum);
  w.put_u64(trace.cycles);
  w.put_u64(trace.checkpoint_interval);
  w.put_u64(trace.nodiv.size());
  u64 word = 0;
  unsigned filled = 0;
  for (bool b : trace.nodiv) {
    if (b) word |= u64{1} << filled;
    if (++filled == 64) {
      w.put_u64(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled != 0) w.put_u64(word);
  w.put_u64(trace.checkpoints.size());
  for (const Checkpoint& c : trace.checkpoints) {
    w.put_u64(c.cycle);
    w.put_u64(c.state.size());
    w.put_bytes(c.state.data(), c.state.size());
  }
  w.end_section();
}

ReferenceTrace load_trace(StateReader& r) {
  ReferenceTrace trace;
  r.begin_section("FREF", 1);
  trace.golden_checksum = r.get_u64();
  trace.cycles = r.get_u64();
  trace.checkpoint_interval = r.get_u64();
  const u64 nodiv_size = r.get_u64();
  trace.nodiv.reserve(nodiv_size);
  u64 word = 0;
  for (u64 i = 0; i < nodiv_size; ++i) {
    if (i % 64 == 0) word = r.get_u64();
    trace.nodiv.push_back((word >> (i % 64)) & 1);
  }
  const u64 n_checkpoints = r.get_u64();
  for (u64 i = 0; i < n_checkpoints; ++i) {
    Checkpoint c;
    c.cycle = r.get_u64();
    c.state.resize(r.get_u64());
    r.get_bytes(c.state.data(), c.state.size());
    trace.checkpoints.push_back(std::move(c));
  }
  r.end_section();
  return trace;
}

void publish_trace(const std::string& path, const ReferenceTrace& trace) {
  StateWriter w;
  save_trace(w, trace);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  try {
    write_state_file(tmp, w.bytes());
  } catch (const StateError& e) {
    SAFEDM_WARN("faultsim: reference cache write failed: " << e.what());
    return;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SAFEDM_WARN("faultsim: reference cache publish failed for " << path);
    std::remove(tmp.c_str());
  }
}

detail::WorkloadPlan build_plan_cached(const std::string& name, const EngineConfig& config,
                                       const std::string& cache_dir) {
  if (cache_dir.empty()) return detail::build_plan(name, config);
  const std::string path = reference_cache_path(cache_dir, name, config);
  assembler::Program program = workloads::build(name, config.scale);
  try {
    const MappedFile file = MappedFile::open(path);
    StateReader r(file.bytes());
    ReferenceTrace trace = load_trace(r);
    // The cache key covers every monitor field, so the recorded trace was
    // taken under exactly this config; only the in-memory back-pointer
    // needs re-establishing.
    trace.dm_config = config.dm;
    return detail::finish_plan(std::move(program), std::move(trace), name, config);
  } catch (const StateError&) {
    // Miss (or a corrupt/obsolete entry): simulate and publish.
  }
  detail::WorkloadPlan plan = detail::build_plan(name, config);
  publish_trace(path, plan.trace);
  return plan;
}

std::vector<detail::WorkloadPlan> prepare_plans(const EngineConfig& config, ThreadPool& pool,
                                                const std::string& cache_dir) {
  std::vector<detail::WorkloadPlan> plans(config.workloads.size());
  pool.parallel_for(plans.size(), [&](std::size_t i) {
    plans[i] = build_plan_cached(config.workloads[i], config, cache_dir);
  });
  return plans;
}

void sanitize_and_check(EngineConfig& config) {
  sanitize_targets(config.registers, config.bits);
  SAFEDM_CHECK_MSG(!config.workloads.empty(), "campaign needs at least one workload");
  SAFEDM_CHECK_MSG(!config.registers.empty(), "campaign needs at least one valid register");
  SAFEDM_CHECK_MSG(!config.bits.empty(), "campaign needs at least one valid bit");
  SAFEDM_CHECK_MSG(config.shard.count >= 1 && config.shard.count <= kMaxShards &&
                       config.shard.index < config.shard.count,
                   "invalid shard spec " << config.shard.index << "/" << config.shard.count);
}

ShardHeader make_header(const EngineConfig& config, u64 fingerprint,
                        const std::vector<detail::WorkloadPlan>& plans, u64 shard_sites,
                        u64 total_sites) {
  ShardHeader h;
  h.fingerprint = fingerprint;
  h.shard_index = config.shard.index;
  h.shard_count = config.shard.count;
  h.shard_sites = shard_sites;
  h.total_sites = total_sites;
  h.seed = config.seed;
  h.scale = config.scale;
  h.samples_per_class = config.samples_per_class;
  h.single_fault = config.single_fault;
  h.registers = config.registers;
  h.bits.assign(config.bits.begin(), config.bits.end());
  for (std::size_t w = 0; w < plans.size(); ++w) {
    WorkloadMeta meta;
    meta.name = config.workloads[w];
    meta.reference_cycles = plans[w].trace.cycles;
    meta.diverse_pool = plans[w].pool_size[0];
    meta.nodiv_pool = plans[w].pool_size[1];
    h.workloads.push_back(std::move(meta));
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

MergeError::MergeError(const std::string& path, u64 record, const std::string& detail)
    : std::runtime_error(record != 0 ? path + ":" + std::to_string(record) + ": " + detail
                                     : path + ": " + detail) {}

void WorkloadMeta::save_state(StateWriter& w) const {
  w.begin_section("WMET", 1);
  w.put_string(name);
  w.put_u64(reference_cycles);
  w.put_u64(diverse_pool);
  w.put_u64(nodiv_pool);
  w.end_section();
}

void WorkloadMeta::restore_state(StateReader& r) {
  r.begin_section("WMET", 1);
  name = r.get_string();
  reference_cycles = r.get_u64();
  diverse_pool = r.get_u64();
  nodiv_pool = r.get_u64();
  r.end_section();
}

void ShardHeader::save_state(StateWriter& w) const {
  w.begin_section("SHHD", kShardLogVersion);
  w.put_u64(fingerprint);
  w.put_u32(shard_index);
  w.put_u32(shard_count);
  w.put_u64(shard_sites);
  w.put_u64(total_sites);
  w.put_u64(seed);
  w.put_u32(scale);
  w.put_u32(samples_per_class);
  w.put_bool(single_fault);
  w.put_u64(registers.size());
  for (u8 reg : registers) w.put_u8(reg);
  w.put_u64(bits.size());
  for (u32 bit : bits) w.put_u32(bit);
  w.put_u64(workloads.size());
  for (const WorkloadMeta& m : workloads) m.save_state(w);
  w.end_section();
}

void ShardHeader::restore_state(StateReader& r) {
  r.begin_section("SHHD", kShardLogVersion);
  fingerprint = r.get_u64();
  shard_index = r.get_u32();
  shard_count = r.get_u32();
  shard_sites = r.get_u64();
  total_sites = r.get_u64();
  seed = r.get_u64();
  scale = r.get_u32();
  samples_per_class = r.get_u32();
  single_fault = r.get_bool();
  registers.clear();
  const u64 n_regs = r.get_u64();
  for (u64 i = 0; i < n_regs; ++i) registers.push_back(r.get_u8());
  bits.clear();
  const u64 n_bits = r.get_u64();
  for (u64 i = 0; i < n_bits; ++i) bits.push_back(r.get_u32());
  workloads.clear();
  const u64 n_workloads = r.get_u64();
  for (u64 i = 0; i < n_workloads; ++i) {
    WorkloadMeta m;
    m.restore_state(r);
    workloads.push_back(std::move(m));
  }
  r.end_section();
}

void WorkloadPartial::merge(const WorkloadPartial& other) {
  injections += other.injections;
  identical[0].merge(other.identical[0]);
  identical[1].merge(other.identical[1]);
  single.merge(other.single);
}

void WorkloadPartial::save_state(StateWriter& w) const {
  w.begin_section("WPRT", 1);
  w.put_u64(injections);
  identical[0].save_state(w);
  identical[1].save_state(w);
  single.save_state(w);
  w.end_section();
}

void WorkloadPartial::restore_state(StateReader& r) {
  r.begin_section("WPRT", 1);
  injections = r.get_u64();
  identical[0].restore_state(r);
  identical[1].restore_state(r);
  single.restore_state(r);
  r.end_section();
}

void ShardPartial::save_state(StateWriter& w) const {
  w.begin_section("SHPT", kShardLogVersion);
  w.put_u64(next_site);
  w.put_bool(complete);
  w.put_u64(workloads.size());
  for (const WorkloadPartial& p : workloads) p.save_state(w);
  w.end_section();
}

void ShardPartial::restore_state(StateReader& r) {
  r.begin_section("SHPT", kShardLogVersion);
  next_site = r.get_u64();
  complete = r.get_bool();
  workloads.clear();
  const u64 n = r.get_u64();
  for (u64 i = 0; i < n; ++i) {
    WorkloadPartial p;
    p.restore_state(r);
    workloads.push_back(std::move(p));
  }
  r.end_section();
}

void ShardManifest::save_state(StateWriter& w) const {
  w.begin_section("SHMF", 1);
  w.put_u64(fingerprint);
  w.put_u32(shard_count);
  w.put_u64(total_sites);
  w.put_u64(shard_sites.size());
  for (u64 s : shard_sites) w.put_u64(s);
  w.end_section();
}

void ShardManifest::restore_state(StateReader& r) {
  r.begin_section("SHMF", 1);
  fingerprint = r.get_u64();
  shard_count = r.get_u32();
  total_sites = r.get_u64();
  shard_sites.clear();
  const u64 n = r.get_u64();
  for (u64 i = 0; i < n; ++i) shard_sites.push_back(r.get_u64());
  r.end_section();
}

// ---------------------------------------------------------------------------
// Fingerprint + log reading
// ---------------------------------------------------------------------------

u64 campaign_fingerprint(const EngineConfig& config) {
  Fnv1a64 h;
  h.add(config.workloads.size());
  for (const std::string& name : config.workloads) {
    h.add(name.size());
    for (char ch : name) h.add(static_cast<u8>(ch));
  }
  h.add(config.seed);
  h.add(config.scale);
  h.add(config.samples_per_class);
  h.add(config.registers.size());
  for (u8 reg : config.registers) h.add(reg);
  h.add(config.bits.size());
  for (unsigned bit : config.bits) h.add(bit);
  h.add_bit(config.single_fault);
  const monitor::SafeDmConfig& dm = config.dm;
  h.add(dm.num_replicas);
  h.add(static_cast<u64>(dm.policy));
  h.add(dm.quorum_k);
  h.add(dm.data_fifo_depth);
  h.add(dm.num_ports);
  h.add(static_cast<u64>(dm.is_mode));
  h.add(static_cast<u64>(dm.compare));
  h.add(static_cast<u64>(dm.report));
  h.add(dm.interrupt_threshold);
  h.add_bit(dm.start_enabled);
  h.add_bit(dm.arm_on_first_commit);
  h.add(dm.history_bins.size());
  for (u64 b : dm.history_bins) h.add(b);
  h.add_bit(dm.track_distance);
  // threads / engine / checkpoint_interval / shard / incremental_compare
  // are pure performance knobs (reports are byte-identical across them),
  // so they stay out of the campaign identity.
  return h.value();
}

ShardLogContents read_shard_log(const std::string& path) {
  MappedFile file;
  try {
    file = MappedFile::open(path);
  } catch (const StateError& e) {
    throw MergeError(path, 0, e.what());
  }
  const std::span<const u8> bytes = file.bytes();
  ShardLogContents out;
  std::size_t off = 0;
  while (off < bytes.size()) {
    if (bytes.size() - off < 4) {
      out.torn_tail = true;
      break;
    }
    const u32 len = read_le32(bytes.data() + off);
    if (bytes.size() - off - 4 < len) {
      out.torn_tail = true;
      break;
    }
    const std::span<const u8> payload = bytes.subspan(off + 4, len);
    const u64 record = out.records + 1;
    if (len < 24) throw MergeError(path, record, "record too short for a state stream");
    if (std::memcmp(payload.data(), kStreamMagic, sizeof kStreamMagic) != 0)
      throw MergeError(path, record, "bad record magic (not a shard log?)");
    const char tag[5] = {static_cast<char>(payload[8]), static_cast<char>(payload[9]),
                         static_cast<char>(payload[10]), static_cast<char>(payload[11]), 0};
    const u32 version = read_le32(payload.data() + 12);
    const char* want = record == 1 ? "SHHD" : "SHPT";
    if (std::strcmp(tag, want) != 0)
      throw MergeError(path, record,
                       std::string("unexpected record tag `") + tag + "` (want " + want + ")");
    if (version != kShardLogVersion)
      throw MergeError(path, record,
                       "unsupported shard log version " + std::to_string(version) +
                           " (this tool reads version " + std::to_string(kShardLogVersion) + ")");
    try {
      StateReader r(payload);
      if (record == 1) {
        out.header.restore_state(r);
      } else {
        ShardPartial partial;
        partial.restore_state(r);
        out.last = std::move(partial);
      }
    } catch (const StateError& e) {
      // A fully framed record was flushed as a unit, so this cannot be a
      // torn write — report it as corruption.
      throw MergeError(path, record, e.what());
    }
    off += 4 + len;
    out.records = record;
    out.durable_bytes = off;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shard execution
// ---------------------------------------------------------------------------

ShardRunResult run_shard(const ShardRunConfig& rc) {
  EngineConfig config = rc.engine;
  sanitize_and_check(config);
  SAFEDM_CHECK_MSG(!rc.log_path.empty(), "shard run needs a log path");
  const u64 fingerprint = campaign_fingerprint(config);
  ThreadPool pool(config.threads);
  SAFEDM_INFO("faultsim: shard " << shard_name(config.shard.index, config.shard.count)
                                 << " of campaign " << std::hex << fingerprint << std::dec
                                 << ", log " << rc.log_path);

  const std::vector<detail::WorkloadPlan> plans = prepare_plans(config, pool, rc.ref_cache_dir);
  const std::vector<detail::Site> all_sites = detail::enumerate_sites(config, plans);
  std::vector<detail::Site> slice;
  for (const detail::Site& site : all_sites)
    if (detail::site_on_shard(config, site)) slice.push_back(site);

  ShardRunResult result;
  result.shard_sites = slice.size();

  u64 cursor = 0;
  std::vector<WorkloadPartial> agg(config.workloads.size());
  bool fresh = true;
  // --resume doubles as "start if nothing is there yet", so a first launch
  // and a relaunch can share one command line; only an *existing* log is
  // parsed (and real corruption in it propagates as MergeError rather
  // than silently restarting the shard from zero).
  if (rc.resume && ::access(rc.log_path.c_str(), F_OK) == 0) {
    const ShardLogContents log = read_shard_log(rc.log_path);
    if (log.records > 0) {
      fresh = false;
      SAFEDM_CHECK_MSG(log.header.fingerprint == fingerprint,
                       "resume: " << rc.log_path << " is from a different campaign "
                                  << "(fingerprint mismatch)");
      SAFEDM_CHECK_MSG(log.header.shard_index == config.shard.index &&
                           log.header.shard_count == config.shard.count,
                       "resume: " << rc.log_path << " belongs to shard "
                                  << shard_name(log.header.shard_index, log.header.shard_count)
                                  << ", not "
                                  << shard_name(config.shard.index, config.shard.count));
      SAFEDM_CHECK_MSG(log.header.shard_sites == result.shard_sites &&
                           log.header.total_sites == all_sites.size(),
                       "resume: " << rc.log_path << " disagrees on the site space");
      if (log.last) {
        SAFEDM_CHECK_MSG(log.last->workloads.size() == agg.size(),
                         "resume: " << rc.log_path << " has a mismatched workload count");
        cursor = log.last->next_site;
        agg = log.last->workloads;
        if (log.last->complete) {
          result.resumed_at = cursor;
          SAFEDM_INFO("faultsim: shard already complete, nothing to do");
          return result;
        }
      }
      result.resumed_at = cursor;
      if (log.torn_tail) {
        SAFEDM_CHECK_MSG(
            ::truncate(rc.log_path.c_str(), static_cast<off_t>(log.durable_bytes)) == 0,
            "cannot truncate torn tail of " << rc.log_path);
        SAFEDM_INFO("faultsim: dropped torn tail record (log truncated to "
                    << log.durable_bytes << " bytes)");
      }
    }
  }

  ShardLogWriter log_writer(rc.log_path, fresh);
  if (fresh) {
    StateWriter w;
    make_header(config, fingerprint, plans, result.shard_sites, all_sites.size()).save_state(w);
    log_writer.append(w.take());
  }

  const u64 flush_interval = std::max<u64>(1, rc.flush_interval);
  u64 limit = slice.size();
  if (rc.max_sites != 0 && cursor + rc.max_sites < limit) limit = cursor + rc.max_sites;

  while (cursor < limit) {
    const u64 wave = std::min(flush_interval, limit - cursor);
    std::vector<InjectionResult> results(wave);
    pool.parallel_for(wave, [&](std::size_t i) {
      const detail::Site& site = slice[cursor + i];
      results[i] = detail::run_site(site, plans[site.workload], config);
    });
    // Fold in slice order: the cumulative aggregate after site k is the
    // same whether the run was interrupted at any earlier flush or not.
    for (u64 i = 0; i < wave; ++i) {
      const detail::Site& site = slice[cursor + i];
      WorkloadPartial& wp = agg[site.workload];
      if (site.single)
        wp.single.add(results[i]);
      else
        wp.identical[site.nodiv_class ? 1 : 0].add(results[i]);
      ++wp.injections;
    }
    cursor += wave;
    result.executed += wave;
    log_writer.append_partial({cursor, cursor == slice.size(), agg});
  }
  if (cursor == slice.size() && result.executed == 0) {
    // Nothing ran (an empty slice, or a resume that landed exactly on the
    // end without a durable completion mark): still seal the log.
    log_writer.append_partial({cursor, true, agg});
  }
  log_writer.close();

  result.complete = cursor == slice.size();
  SAFEDM_INFO("faultsim: shard " << shard_name(config.shard.index, config.shard.count) << ": "
                                 << cursor << "/" << slice.size() << " sites durable ("
                                 << result.executed << " run now)"
                                 << (result.complete ? ", complete" : ""));
  return result;
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

EngineReport merge_shard_logs(const std::vector<std::string>& log_paths,
                              const std::string& manifest_path) {
  if (log_paths.empty()) throw MergeError("no shard logs to merge");
  std::vector<ShardLogContents> logs;
  for (const std::string& path : log_paths) {
    ShardLogContents log = read_shard_log(path);
    if (log.records == 0)
      throw MergeError(path, 0, "no durable records (empty or fully torn log)");
    const ShardHeader& h = log.header;
    if (!log.last || !log.last->complete || log.last->next_site != h.shard_sites) {
      const u64 done = log.last ? log.last->next_site : 0;
      throw MergeError(path, 0,
                       "shard " + shard_name(h.shard_index, h.shard_count) + " incomplete (" +
                           std::to_string(done) + "/" + std::to_string(h.shard_sites) +
                           " sites durable); resume it before merging");
    }
    if (log.last->workloads.size() != h.workloads.size())
      throw MergeError(path, log.records, "partial/header workload count mismatch");
    logs.push_back(std::move(log));
  }

  const ShardHeader& first = logs.front().header;
  const u32 shard_count = first.shard_count;
  std::vector<std::size_t> owner(shard_count, logs.size());  // shard index -> log position
  for (std::size_t i = 0; i < logs.size(); ++i) {
    const ShardHeader& h = logs[i].header;
    if (h.fingerprint != first.fingerprint)
      throw MergeError(log_paths[i], 0,
                       "campaign fingerprint mismatch vs " + log_paths.front());
    if (h.shard_count != shard_count)
      throw MergeError(log_paths[i], 0,
                       "fleet size mismatch: " + std::to_string(h.shard_count) + " shards vs " +
                           std::to_string(shard_count) + " in " + log_paths.front());
    if (h.total_sites != first.total_sites)
      throw MergeError(log_paths[i], 0, "total site count mismatch vs " + log_paths.front());
    if (h.shard_index >= shard_count)
      throw MergeError(log_paths[i], 0,
                       "shard index " + std::to_string(h.shard_index) + " out of range for " +
                           std::to_string(shard_count) + " shards");
    if (owner[h.shard_index] != logs.size())
      throw MergeError(log_paths[i], 0,
                       "duplicate shard " + shard_name(h.shard_index, shard_count) +
                           " (also in " + log_paths[owner[h.shard_index]] + ")");
    owner[h.shard_index] = i;
  }
  for (u32 s = 0; s < shard_count; ++s) {
    if (owner[s] == logs.size())
      throw MergeError("missing shard " + shard_name(s, shard_count) + ": got " +
                       std::to_string(logs.size()) + " of " + std::to_string(shard_count) +
                       " logs");
  }
  u64 site_sum = 0;
  for (const ShardLogContents& log : logs) site_sum += log.header.shard_sites;
  if (site_sum != first.total_sites)
    throw MergeError("fleet covers " + std::to_string(site_sum) + " sites, campaign has " +
                     std::to_string(first.total_sites));
  for (std::size_t i = 1; i < logs.size(); ++i) {
    const std::vector<WorkloadMeta>& a = first.workloads;
    const std::vector<WorkloadMeta>& b = logs[i].header.workloads;
    bool equal = a.size() == b.size();
    for (std::size_t w = 0; equal && w < a.size(); ++w) {
      equal = a[w].name == b[w].name && a[w].reference_cycles == b[w].reference_cycles &&
              a[w].diverse_pool == b[w].diverse_pool && a[w].nodiv_pool == b[w].nodiv_pool;
    }
    if (!equal)
      throw MergeError(log_paths[i], 0, "workload metadata mismatch vs " + log_paths.front());
  }

  if (!manifest_path.empty()) {
    ShardManifest manifest;
    try {
      const MappedFile file = MappedFile::open(manifest_path);
      StateReader r(file.bytes());
      manifest.restore_state(r);
    } catch (const StateError& e) {
      throw MergeError(manifest_path, 0, e.what());
    }
    if (manifest.fingerprint != first.fingerprint)
      throw MergeError(manifest_path, 0, "manifest is for a different campaign");
    if (manifest.shard_count != shard_count || manifest.shard_sites.size() != shard_count)
      throw MergeError(manifest_path, 0,
                       "manifest expects " + std::to_string(manifest.shard_count) +
                           " shards, logs form " + std::to_string(shard_count));
    if (manifest.total_sites != first.total_sites)
      throw MergeError(manifest_path, 0, "manifest total site count mismatch");
    for (const ShardLogContents& log : logs) {
      const ShardHeader& h = log.header;
      if (manifest.shard_sites[h.shard_index] != h.shard_sites)
        throw MergeError(manifest_path, 0,
                         "manifest expects " +
                             std::to_string(manifest.shard_sites[h.shard_index]) +
                             " sites on shard " + shard_name(h.shard_index, shard_count) +
                             ", log has " + std::to_string(h.shard_sites));
    }
  }

  EngineReport report;
  report.config.workloads.clear();
  for (const WorkloadMeta& m : first.workloads) report.config.workloads.push_back(m.name);
  report.config.scale = first.scale;
  report.config.samples_per_class = first.samples_per_class;
  report.config.registers = first.registers;
  report.config.bits.assign(first.bits.begin(), first.bits.end());
  report.config.seed = first.seed;
  report.config.single_fault = first.single_fault;

  report.workloads.resize(first.workloads.size());
  for (std::size_t w = 0; w < first.workloads.size(); ++w) {
    WorkloadReport& wr = report.workloads[w];
    wr.name = first.workloads[w].name;
    wr.reference_cycles = first.workloads[w].reference_cycles;
    wr.diverse_pool = first.workloads[w].diverse_pool;
    wr.nodiv_pool = first.workloads[w].nodiv_pool;
  }
  // Fold in shard-index order. The per-class operations are associative
  // and commutative, so this matches the single-process site-order fold
  // byte-for-byte no matter how sites interleaved across shards — and the
  // caller may pass the logs in any order.
  for (u32 s = 0; s < shard_count; ++s) {
    const ShardPartial& partial = *logs[owner[s]].last;
    for (std::size_t w = 0; w < report.workloads.size(); ++w) {
      WorkloadReport& wr = report.workloads[w];
      const WorkloadPartial& wp = partial.workloads[w];
      wr.identical[0].merge(wp.identical[0]);
      wr.identical[1].merge(wp.identical[1]);
      wr.single.merge(wp.single);
      wr.injections += wp.injections;
      report.injections += wp.injections;
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

ShardManifest build_manifest(const EngineConfig& raw_config, u32 shard_count,
                             const std::string& ref_cache_dir) {
  EngineConfig config = raw_config;
  config.shard = ShardSpec{0, shard_count};
  sanitize_and_check(config);
  ThreadPool pool(config.threads);
  const std::vector<detail::WorkloadPlan> plans = prepare_plans(config, pool, ref_cache_dir);
  const std::vector<detail::Site> all_sites = detail::enumerate_sites(config, plans);
  ShardManifest manifest;
  manifest.fingerprint = campaign_fingerprint(config);
  manifest.shard_count = shard_count;
  manifest.total_sites = all_sites.size();
  manifest.shard_sites.assign(shard_count, 0);
  for (const detail::Site& site : all_sites)
    ++manifest.shard_sites[detail::site_hash(config, site) % shard_count];
  return manifest;
}

void write_manifest_file(const std::string& path, const ShardManifest& manifest) {
  StateWriter w;
  manifest.save_state(w);
  write_state_file(path, w.bytes());
}

ShardManifest read_manifest_file(const std::string& path) {
  const MappedFile file = MappedFile::open(path);
  StateReader r(file.bytes());
  ShardManifest manifest;
  manifest.restore_state(r);
  return manifest;
}

}  // namespace safedm::faultsim
