// Extended workload set: additional TACLeBench-family kernels beyond the
// 29 the paper's Table I evaluates (TACLeBench ships more programs; these
// widen the diversity-behaviour coverage: codecs, graph search, state
// machines, image kernels).
#include <algorithm>
#include <array>

#include "internal.hpp"

namespace safedm::workloads {

using namespace internal;

// ---- adpcm --------------------------------------------------------------------------
// IMA-style ADPCM encoder: per-sample table-driven quantization with a
// loop-carried predictor state and step-size adaptation.
assembler::Program build_adpcm(unsigned scale) {
  const unsigned n = 192 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  Xoshiro256 rng = input_rng("adpcm");
  std::vector<i32> pcm(n);
  i32 wave = 0;
  for (auto& s : pcm) {
    wave += static_cast<i32>(rng.below(2049)) - 1024;
    wave = std::clamp(wave, -32768, 32767);
    s = wave;
  }
  const u64 samples = d.add_i32_array(pcm);
  static constexpr std::array<u32, 16> kSteps = {7,    16,   34,  73,   157,  337,
                                                 724,  1552, 3327, 7132, 15289, 32767,
                                                 32767, 32767, 32767, 32767};
  const u64 steps = d.add_u32_array({kSteps.data(), kSteps.size()});

  a.lea_data(S0, samples);
  a.lea_data(S1, steps);
  a.li(S3, static_cast<i64>(n));
  a.li(S5, 0);  // predictor
  a.li(S6, 0);  // step index (0..15)
  a.li(S4, 0);  // checksum of emitted codes
  Label loop = a.new_label(), done = a.new_label();
  a.bind(loop);
  a.beqz(S3, done);
  a(e::lw(T0, S0, 0));    // sample
  a(e::sub(T1, T0, S5));  // diff
  a.li(T2, 0);            // code
  Label nonneg = a.new_label();
  a.bge(T1, ZERO, nonneg);
  a.li(T2, 4);
  a.neg(T1, T1);
  a.bind(nonneg);
  // step = steps[index]
  a(e::slli(T3, S6, 2));
  a(e::add(T3, T3, S1));
  a(e::lwu(T3, T3, 0));
  Label no2 = a.new_label(), no1 = a.new_label();
  a.blt(T1, T3, no2);
  a(e::ori(T2, T2, 2));
  a(e::sub(T1, T1, T3));
  a.bind(no2);
  a(e::srli(T4, T3, 1));
  a.blt(T1, T4, no1);
  a(e::ori(T2, T2, 1));
  a.bind(no1);
  // Reconstruct: delta = (mag * step) / 2 + step / 4; apply sign.
  a(e::andi(T5, T2, 3));
  a(e::mul(T5, T5, T3));
  a(e::srli(T5, T5, 1));
  a(e::srli(T4, T3, 2));
  a(e::add(T5, T5, T4));
  a(e::andi(T4, T2, 4));
  Label add_delta = a.new_label(), pred_done = a.new_label();
  a.beqz(T4, add_delta);
  a(e::sub(S5, S5, T5));
  a.j(pred_done);
  a.bind(add_delta);
  a(e::add(S5, S5, T5));
  a.bind(pred_done);
  // Clamp predictor to [-32768, 32767].
  a.li(T4, 32767);
  Label clamp_lo = a.new_label(), clamp_done = a.new_label();
  a.ble(S5, T4, clamp_lo);
  a.mv(S5, T4);
  a.bind(clamp_lo);
  a.li(T4, -32768);
  a.bge(S5, T4, clamp_done);
  a.mv(S5, T4);
  a.bind(clamp_done);
  // Step-index adaptation: up on large codes, down on small.
  a(e::andi(T4, T2, 3));
  a.li(T5, 2);
  Label idx_down = a.new_label(), idx_done = a.new_label();
  a.blt(T4, T5, idx_down);
  a(e::addi(S6, S6, 1));
  a.j(idx_done);
  a.bind(idx_down);
  a(e::addi(S6, S6, -1));
  a.bind(idx_done);
  a.li(T5, 15);
  Label idx_lo = a.new_label(), idx_ok = a.new_label();
  a.ble(S6, T5, idx_lo);
  a.mv(S6, T5);
  a.bind(idx_lo);
  a.bge(S6, ZERO, idx_ok);
  a.li(S6, 0);
  a.bind(idx_ok);
  // Fold code into the checksum.
  a(e::slli(T4, S4, 3));
  a(e::add(S4, S4, T4));
  a(e::add(S4, S4, T2));
  a(e::addi(S0, S0, 4));
  a(e::addi(S3, S3, -1));
  a.j(loop);
  a.bind(done);
  emit_result_and_halt(a, S4);
  return a.assemble("adpcm", std::move(d));
}

// ---- crc -----------------------------------------------------------------------------
// Bitwise CRC-32 over a byte buffer (the TACLe crc kernel's structure).
assembler::Program build_crc(unsigned scale) {
  const unsigned n = 256 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  Xoshiro256 rng = input_rng("crc");
  std::vector<u8> buffer(n);
  for (auto& b : buffer) b = static_cast<u8>(rng.next());
  const u64 buf = d.add_bytes(buffer);

  a.lea_data(S0, buf);
  a.li(S1, static_cast<i64>(n));
  a.li(S2, -1);
  a(e::slli(S2, S2, 32));
  a(e::srli(S2, S2, 32));  // crc = 0xFFFFFFFF
  a.li(S3, 0xEDB88320ll);  // reflected polynomial
  Label byte_loop = a.new_label(), done = a.new_label();
  a.bind(byte_loop);
  a.beqz(S1, done);
  a(e::lbu(T0, S0, 0));
  a(e::xor_(S2, S2, T0));
  a.li(T1, 8);
  Label bit_loop = a.new_label(), bit_done = a.new_label(), no_xor = a.new_label();
  a.bind(bit_loop);
  a.beqz(T1, bit_done);
  a(e::andi(T2, S2, 1));
  a(e::srli(S2, S2, 1));
  a.beqz(T2, no_xor);
  a(e::xor_(S2, S2, S3));
  a.bind(no_xor);
  a(e::addi(T1, T1, -1));
  a.j(bit_loop);
  a.bind(bit_done);
  a(e::addi(S0, S0, 1));
  a(e::addi(S1, S1, -1));
  a.j(byte_loop);
  a.bind(done);
  a.not_(S4, S2);
  a(e::slli(S4, S4, 32));
  a(e::srli(S4, S4, 32));
  emit_result_and_halt(a, S4);
  return a.assemble("crc", std::move(d));
}

// ---- dijkstra -------------------------------------------------------------------------
// Single-source shortest paths on a dense adjacency matrix, O(n^2) scans.
assembler::Program build_dijkstra(unsigned scale) {
  const unsigned n = 20 + 4 * scale;
  constexpr u32 kInf = 0x3FFFFFFF;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  Xoshiro256 rng = input_rng("dijkstra");
  std::vector<u32> adj(n * n);
  for (unsigned i = 0; i < n; ++i)
    for (unsigned j = 0; j < n; ++j)
      adj[i * n + j] = i == j ? 0 : (rng.below(4) == 0 ? 1 + static_cast<u32>(rng.below(100))
                                                       : kInf);
  const u64 graph = d.add_u32_array(adj);
  const u64 dist = d.reserve(n * 4);
  const u64 visited = d.reserve(n * 4);

  a.lea_data(S0, graph);
  a.lea_data(S1, dist);
  a.lea_data(S2, visited);
  a.li(S3, static_cast<i64>(n));
  // init: dist[i] = adj[0][i], visited = {0}, visited[0] = 1.
  a.li(T0, 0);
  Label init = a.new_label(), init_done = a.new_label();
  a.bind(init);
  a.bge(T0, S3, init_done);
  a(e::slli(T1, T0, 2));
  a(e::add(T2, T1, S0));
  a(e::lwu(T3, T2, 0));
  a(e::add(T2, T1, S1));
  a(e::sw(T3, T2, 0));
  a(e::add(T2, T1, S2));
  a(e::sw(ZERO, T2, 0));
  a(e::addi(T0, T0, 1));
  a.j(init);
  a.bind(init_done);
  a.li(T0, 1);
  a(e::sw(T0, S2, 0));

  // n-1 rounds: pick unvisited min, relax its edges.
  a.li(S5, 1);  // round counter
  Label round = a.new_label(), rounds_done = a.new_label();
  a.bind(round);
  a.bge(S5, S3, rounds_done);
  // find min unvisited
  a.li(S6, -1);          // best index
  a.li(S7, kInf + 1);    // best dist
  a.li(T0, 0);
  Label scan = a.new_label(), scan_done = a.new_label(), skip = a.new_label();
  a.bind(scan);
  a.bge(T0, S3, scan_done);
  a(e::slli(T1, T0, 2));
  a(e::add(T2, T1, S2));
  a(e::lwu(T3, T2, 0));
  a.bnez(T3, skip);
  a(e::add(T2, T1, S1));
  a(e::lwu(T3, T2, 0));
  a.bgeu(T3, S7, skip);
  a.mv(S7, T3);
  a.mv(S6, T0);
  a.bind(skip);
  a(e::addi(T0, T0, 1));
  a.j(scan);
  a.bind(scan_done);
  Label relax_done = a.new_label();
  a.blt(S6, ZERO, relax_done);  // disconnected remainder
  // visited[best] = 1
  a(e::slli(T1, S6, 2));
  a(e::add(T2, T1, S2));
  a.li(T0, 1);
  a(e::sw(T0, T2, 0));
  // relax: dist[j] = min(dist[j], best_dist + adj[best][j])
  a.li(T0, 0);
  Label relax = a.new_label(), no_update = a.new_label();
  a.bind(relax);
  a.bge(T0, S3, relax_done);
  a(e::mul(T1, S6, S3));
  a(e::add(T1, T1, T0));
  a(e::slli(T1, T1, 2));
  a(e::add(T1, T1, S0));
  a(e::lwu(T2, T1, 0));     // adj[best][j]
  a(e::add(T2, T2, S7));    // candidate
  a(e::slli(T3, T0, 2));
  a(e::add(T3, T3, S1));
  a(e::lwu(T4, T3, 0));     // dist[j]
  a.bgeu(T2, T4, no_update);
  a(e::sw(T2, T3, 0));
  a.bind(no_update);
  a(e::addi(T0, T0, 1));
  a.j(relax);
  a.bind(relax_done);
  a(e::addi(S5, S5, 1));
  a.j(round);
  a.bind(rounds_done);
  a.lea_data(S1, dist);
  a.li(S4, 0);
  emit_checksum_u32(a, S1, n, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("dijkstra", std::move(d));
}

// ---- huffman --------------------------------------------------------------------------
// Frequency histogram + greedy two-smallest merging (array-based) to
// compute the total encoded bit length.
assembler::Program build_huffman(unsigned scale) {
  const unsigned n = 512 * scale;
  const unsigned symbols = 32;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  Xoshiro256 rng = input_rng("huffman");
  std::vector<u8> text(n);
  for (auto& c : text) c = static_cast<u8>(rng.below(rng.below(2) ? symbols : symbols / 4));
  const u64 buf = d.add_bytes(text);
  const u64 freq = d.reserve(symbols * 8);

  // Histogram.
  a.lea_data(S0, buf);
  a.lea_data(S1, freq);
  a.li(S3, static_cast<i64>(n));
  Label hist = a.new_label(), hist_done = a.new_label();
  a.bind(hist);
  a.beqz(S3, hist_done);
  a(e::lbu(T0, S0, 0));
  a(e::slli(T0, T0, 3));
  a(e::add(T0, T0, S1));
  a(e::ld(T1, T0, 0));
  a(e::addi(T1, T1, 1));
  a(e::sd(T1, T0, 0));
  a(e::addi(S0, S0, 1));
  a(e::addi(S3, S3, -1));
  a.j(hist);
  a.bind(hist_done);

  // Greedy merge: repeatedly find two smallest nonzero weights, replace
  // one with the sum, zero the other; accumulate the sum (total bits).
  a.li(S4, 0);  // total encoded length
  Label merge_round = a.new_label(), merge_done = a.new_label();
  a.bind(merge_round);
  // find smallest (S5 idx/S6 val) and second smallest (S7 idx/A1 val)
  a.li(S5, -1);
  a.li(S6, -1);  // max u64 sentinel via unsigned compare
  a.li(S7, -1);
  a.li(A1, -1);
  a.li(T0, 0);
  Label find = a.new_label(), find_done = a.new_label(), next_sym = a.new_label(),
        second = a.new_label();
  a.bind(find);
  a.li(T1, symbols);
  a.bge(T0, T1, find_done);
  a(e::slli(T1, T0, 3));
  a(e::add(T1, T1, S1));
  a(e::ld(T2, T1, 0));
  a.beqz(T2, next_sym);
  a.bgeu(T2, S6, second);
  // new smallest; old smallest becomes second.
  a.mv(S7, S5);
  a.mv(A1, S6);
  a.mv(S5, T0);
  a.mv(S6, T2);
  a.j(next_sym);
  a.bind(second);
  a.bgeu(T2, A1, next_sym);
  a.mv(S7, T0);
  a.mv(A1, T2);
  a.bind(next_sym);
  a(e::addi(T0, T0, 1));
  a.j(find);
  a.bind(find_done);
  a.blt(S7, ZERO, merge_done);  // fewer than two nodes left
  // merge: freq[S5] += freq[S7]; freq[S7] = 0; total += sum.
  a(e::add(T3, S6, A1));
  a(e::add(S4, S4, T3));
  a(e::slli(T1, S5, 3));
  a(e::add(T1, T1, S1));
  a(e::sd(T3, T1, 0));
  a(e::slli(T1, S7, 3));
  a(e::add(T1, T1, S1));
  a(e::sd(ZERO, T1, 0));
  a.j(merge_round);
  a.bind(merge_done);
  emit_result_and_halt(a, S4);
  return a.assemble("huffman", std::move(d));
}

// ---- ndes -----------------------------------------------------------------------------
// DES-shaped Feistel network: 16 rounds of S-box lookups + bit mixing over
// a block stream.
assembler::Program build_ndes(unsigned scale) {
  const unsigned blocks = 24 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  Xoshiro256 rng = input_rng("ndes");
  std::vector<u64> data(blocks);
  for (auto& b : data) b = rng.next();
  const u64 blocks_off = d.add_u64_array(data);
  std::vector<u32> sbox(256);
  for (auto& s : sbox) s = static_cast<u32>(rng.next());
  const u64 sbox_off = d.add_u32_array(sbox);
  std::vector<u32> keys(16);
  for (auto& k : keys) k = static_cast<u32>(rng.next());
  const u64 keys_off = d.add_u32_array(keys);

  a.lea_data(S0, blocks_off);
  a.lea_data(S1, sbox_off);
  a.lea_data(S2, keys_off);
  a.li(S3, static_cast<i64>(blocks));
  a.li(S4, 0);
  Label blk = a.new_label(), blk_done = a.new_label();
  a.bind(blk);
  a.beqz(S3, blk_done);
  a(e::ld(T0, S0, 0));
  a(e::srli(S5, T0, 32));      // L
  a(e::slli(S6, T0, 32));
  a(e::srli(S6, S6, 32));      // R
  a.li(S7, 0);                 // round
  Label round = a.new_label(), rounds_done = a.new_label();
  a.bind(round);
  a.li(T1, 16);
  a.bge(S7, T1, rounds_done);
  // f(R, K) = sbox[(R ^ K) & 0xFF] ^ rotl(R, 5)
  a(e::slli(T1, S7, 2));
  a(e::add(T1, T1, S2));
  a(e::lwu(T2, T1, 0));        // K
  a(e::xor_(T3, S6, T2));
  a(e::andi(T3, T3, 0xFF));
  a(e::slli(T3, T3, 2));
  a(e::add(T3, T3, S1));
  a(e::lwu(T4, T3, 0));        // sbox value
  emit_rotl32(a, T5, S6, 5, A1);
  a(e::xor_(T4, T4, T5));
  // L, R = R, L ^ f
  a(e::xor_(T4, T4, S5));
  a.mv(S5, S6);
  a(e::slli(T4, T4, 32));
  a(e::srli(S6, T4, 32));
  a(e::addi(S7, S7, 1));
  a.j(round);
  a.bind(rounds_done);
  a(e::slli(T0, S5, 32));
  a(e::or_(T0, T0, S6));
  a(e::xor_(S4, S4, T0));
  a(e::slli(T1, S4, 7));
  a(e::add(S4, S4, T1));
  a(e::addi(S0, S0, 8));
  a(e::addi(S3, S3, -1));
  a.j(blk);
  a.bind(blk_done);
  emit_result_and_halt(a, S4);
  return a.assemble("ndes", std::move(d));
}

// ---- epic -----------------------------------------------------------------------------
// Integer Haar wavelet transform (rows then columns, 2 levels) — the
// image-compression front end EPIC builds on.
assembler::Program build_epic(unsigned scale) {
  const unsigned dim = 16 * (1u << std::min(scale - 1, 2u));
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 img = d.add_i32_array(random_i32("epic", dim * dim));
  const u64 tmp = d.reserve(dim * 4);

  a.lea_data(S0, img);
  a.lea_data(S1, tmp);
  a.li(S2, static_cast<i64>(dim));
  for (int level = 0; level < 2; ++level) {
    const unsigned extent = dim >> level;
    for (int pass = 0; pass < 2; ++pass) {  // 0 = rows, 1 = columns
      const i64 elem_step = pass == 0 ? 4 : static_cast<i64>(dim) * 4;
      const i64 line_step = pass == 0 ? static_cast<i64>(dim) * 4 : 4;
      a.li(S5, static_cast<i64>(extent));  // lines
      a.mv(S6, S0);                        // line base
      Label line = a.new_label(), line_done = a.new_label();
      a.bind(line);
      a.beqz(S5, line_done);
      // Haar pairs: tmp[k] = (a+b)/2 (low half), tmp[k+half] = a-b (high).
      a.li(T0, 0);  // pair index k
      Label pair = a.new_label(), pair_done = a.new_label();
      a.bind(pair);
      a.li(T1, static_cast<i64>(extent / 2));
      a.bge(T0, T1, pair_done);
      a.li(T2, elem_step * 2);
      a(e::mul(T2, T2, T0));
      a(e::add(T2, T2, S6));
      a(e::lw(T3, T2, 0));
      a.li(T4, elem_step);
      a(e::add(T4, T4, T2));
      a(e::lw(T5, T4, 0));
      a(e::addw(A1, T3, T5));
      a(e::sraiw(A1, A1, 1));  // low
      a(e::subw(A2, T3, T5));  // high
      a(e::slli(A3, T0, 2));
      a(e::add(A3, A3, S1));
      a(e::sw(A1, A3, 0));                                  // tmp[k]
      a(e::sw(A2, A3, static_cast<i64>(extent / 2) * 4));   // tmp[k+half]
      a(e::addi(T0, T0, 1));
      a.j(pair);
      a.bind(pair_done);
      // Copy tmp back into the line.
      a.li(T0, 0);
      Label copy = a.new_label(), copy_done = a.new_label();
      a.bind(copy);
      a.li(T1, static_cast<i64>(extent));
      a.bge(T0, T1, copy_done);
      a(e::slli(T2, T0, 2));
      a(e::add(T2, T2, S1));
      a(e::lw(T3, T2, 0));
      a.li(T4, elem_step);
      a(e::mul(T4, T4, T0));
      a(e::add(T4, T4, S6));
      a(e::sw(T3, T4, 0));
      a(e::addi(T0, T0, 1));
      a.j(copy);
      a.bind(copy_done);
      a.add_imm(S6, S6, line_step, T6);
      a(e::addi(S5, S5, -1));
      a.j(line);
      a.bind(line_done);
    }
  }
  a.lea_data(S1, img);
  a.li(S4, 0);
  emit_checksum_u32(a, S1, dim * dim, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("epic", std::move(d));
}

// ---- susan ----------------------------------------------------------------------------
// SUSAN-style corner response: per pixel, count 3x3 neighbours within a
// brightness threshold of the centre (data-dependent branches on image
// content).
assembler::Program build_susan(unsigned scale) {
  const unsigned dim = 20 + 4 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  Xoshiro256 rng = input_rng("susan");
  std::vector<i32> img(dim * dim);
  for (auto& p : img) p = static_cast<i32>(rng.below(256));
  const u64 image = d.add_i32_array(img);

  a.lea_data(S0, image);
  a.li(S2, static_cast<i64>(dim));
  a.li(S4, 0);  // response accumulator
  a.li(S5, 1);  // row
  Label row = a.new_label(), row_done = a.new_label();
  a.bind(row);
  a(e::addi(T0, S2, -1));
  a.bge(S5, T0, row_done);
  a.li(S6, 1);  // col
  Label col = a.new_label(), col_done = a.new_label();
  a.bind(col);
  a(e::addi(T0, S2, -1));
  a.bge(S6, T0, col_done);
  // centre brightness
  a(e::mul(T1, S5, S2));
  a(e::add(T1, T1, S6));
  a(e::slli(T1, T1, 2));
  a(e::add(T1, T1, S0));
  a(e::lw(T2, T1, 0));
  a.li(S7, 0);  // USAN count
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      const i64 off = (static_cast<i64>(dr) * dim + dc) * 4;
      a(e::lw(T3, T1, off));
      a(e::sub(T4, T3, T2));
      Label pos = a.new_label(), skip = a.new_label();
      a.bge(T4, ZERO, pos);
      a.neg(T4, T4);
      a.bind(pos);
      a.li(T5, 27);  // brightness threshold
      a.bgt(T4, T5, skip);
      a(e::addi(S7, S7, 1));
      a.bind(skip);
    }
  }
  // Corner-ish response: g - USAN when below geometric threshold g = 6.
  a.li(T3, 6);
  Label no_corner = a.new_label();
  a.bge(S7, T3, no_corner);
  a(e::sub(T4, T3, S7));
  a(e::add(S4, S4, T4));
  a.bind(no_corner);
  a(e::addi(S6, S6, 1));
  a.j(col);
  a.bind(col_done);
  a(e::addi(S5, S5, 1));
  a.j(row);
  a.bind(row_done);
  emit_result_and_halt(a, S4);
  return a.assemble("susan", std::move(d));
}

// ---- statemate ------------------------------------------------------------------------
// Statechart-style controller: a state machine driven by an event tape,
// dense data-dependent branching with almost no arithmetic.
assembler::Program build_statemate(unsigned scale) {
  const unsigned events = 512 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  Xoshiro256 rng = input_rng("statemate");
  std::vector<u8> tape(events);
  for (auto& ev : tape) ev = static_cast<u8>(rng.below(4));
  const u64 tape_off = d.add_bytes(tape);
  const u64 visits = d.reserve(5 * 8);  // per-state visit counters

  a.lea_data(S0, tape_off);
  a.lea_data(S1, visits);
  a.li(S2, static_cast<i64>(events));
  a.li(S3, 0);  // state in {0..4}
  Label loop = a.new_label(), done = a.new_label();
  Label dispatch_done = a.new_label();
  a.bind(loop);
  a.beqz(S2, done);
  a(e::lbu(T0, S0, 0));  // event in {0..3}
  // Transition table as a branch ladder: state' = f(state, event).
  std::array<std::array<int, 4>, 5> table = {{{1, 0, 2, 0},
                                              {2, 1, 3, 0},
                                              {3, 1, 4, 2},
                                              {4, 2, 0, 1},
                                              {0, 3, 1, 4}}};
  std::vector<Label> state_labels;
  for (int s = 0; s < 5; ++s) state_labels.push_back(a.new_label());
  for (int s = 0; s < 5; ++s) {
    a.li(T1, s);
    a.beq(S3, T1, state_labels[static_cast<std::size_t>(s)]);
  }
  a.j(dispatch_done);  // unreachable guard
  for (int s = 0; s < 5; ++s) {
    a.bind(state_labels[static_cast<std::size_t>(s)]);
    std::vector<Label> event_labels;
    for (int ev = 0; ev < 4; ++ev) event_labels.push_back(a.new_label());
    for (int ev = 0; ev < 3; ++ev) {
      a.li(T1, ev);
      a.beq(T0, T1, event_labels[static_cast<std::size_t>(ev)]);
    }
    a.j(event_labels[3]);
    for (int ev = 0; ev < 4; ++ev) {
      a.bind(event_labels[static_cast<std::size_t>(ev)]);
      a.li(S3, table[static_cast<std::size_t>(s)][static_cast<std::size_t>(ev)]);
      a.j(dispatch_done);
    }
  }
  a.bind(dispatch_done);
  // visits[state]++
  a(e::slli(T1, S3, 3));
  a(e::add(T1, T1, S1));
  a(e::ld(T2, T1, 0));
  a(e::addi(T2, T2, 1));
  a(e::sd(T2, T1, 0));
  a(e::addi(S0, S0, 1));
  a(e::addi(S2, S2, -1));
  a.j(loop);
  a.bind(done);
  a.lea_data(S1, visits);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, 5, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("statemate", std::move(d));
}

const std::vector<WorkloadInfo>& registry_extended() {
  static const std::vector<WorkloadInfo> kExtended = {
      {"adpcm", false, build_adpcm},     {"crc", false, build_crc},
      {"dijkstra", false, build_dijkstra}, {"epic", false, build_epic},
      {"huffman", false, build_huffman}, {"ndes", false, build_ndes},
      {"statemate", false, build_statemate}, {"susan", false, build_susan},
  };
  return kExtended;
}

}  // namespace safedm::workloads
