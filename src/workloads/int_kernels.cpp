// Integer compute kernels: bitcount, isqrt, prime, fac, recursion, matrix1,
// jfdctint, pm.
#include <algorithm>

#include "internal.hpp"

namespace safedm::workloads {

using namespace internal;

// ---- bitcount -------------------------------------------------------------------
// Pure register compute: population count of a value stream using two
// methods (Kernighan loop + shift-and-mask loop). Long stretches with no
// memory traffic — the benchmark with the longest zero-staggering window
// in the paper's Table I.
assembler::Program build_bitcount(unsigned scale) {
  const unsigned n = 128 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 vals = d.add_u64_array([&] {
    Xoshiro256 rng = input_rng("bitcount");
    std::vector<u64> v(n);
    for (auto& x : v) x = rng.next();
    return v;
  }());

  a.lea_data(S0, vals);
  a.li(S1, static_cast<i64>(n));
  a.li(S4, 0);
  Label outer = a.new_label(), done = a.new_label();
  a.bind(outer);
  a.beqz(S1, done);
  a(e::ld(T0, S0, 0));
  // Method 1: Kernighan — clear lowest set bit until zero.
  a.mv(T1, T0);
  a.li(T2, 0);
  Label kern = a.new_label(), kern_done = a.new_label();
  a.bind(kern);
  a.beqz(T1, kern_done);
  a(e::addi(T3, T1, -1));
  a(e::and_(T1, T1, T3));
  a(e::addi(T2, T2, 1));
  a.j(kern);
  a.bind(kern_done);
  // Method 2: shift-and-mask over all 64 bits.
  a.mv(T1, T0);
  a.li(T3, 0);
  a.li(T4, 64);
  Label shloop = a.new_label(), shdone = a.new_label();
  a.bind(shloop);
  a.beqz(T4, shdone);
  a(e::andi(T5, T1, 1));
  a(e::add(T3, T3, T5));
  a(e::srli(T1, T1, 1));
  a(e::addi(T4, T4, -1));
  a.j(shloop);
  a.bind(shdone);
  // Both methods must agree; fold both into the checksum.
  a(e::slli(T2, T2, 8));
  a(e::add(T2, T2, T3));
  a(e::add(S4, S4, T2));
  a(e::addi(S0, S0, 8));
  a(e::addi(S1, S1, -1));
  a.j(outer);
  a.bind(done);
  emit_result_and_halt(a, S4);
  return a.assemble("bitcount", std::move(d));
}

// ---- isqrt ----------------------------------------------------------------------
// Integer square root by the bit-by-bit (digit-recurrence) method.
assembler::Program build_isqrt(unsigned scale) {
  const unsigned n = 192 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 vals = d.add_u32_array(random_u32("isqrt", n));

  a.lea_data(S0, vals);
  a.li(S1, static_cast<i64>(n));
  a.li(S4, 0);
  Label outer = a.new_label(), done = a.new_label();
  a.bind(outer);
  a.beqz(S1, done);
  a(e::lwu(T0, S0, 0));  // x
  a.li(T1, 0);           // root
  a.li(T2, 1);
  a(e::slli(T2, T2, 30));  // bit = 1 << 30
  Label bitloop = a.new_label(), bitdone = a.new_label(), no_sub = a.new_label();
  a.bind(bitloop);
  a.beqz(T2, bitdone);
  a(e::add(T3, T1, T2));  // root + bit
  a(e::srli(T1, T1, 1));  // root >>= 1
  a.bltu(T0, T3, no_sub);
  a(e::sub(T0, T0, T3));
  a(e::add(T1, T1, T2));  // root += bit
  a.bind(no_sub);
  a(e::srli(T2, T2, 2));
  a.j(bitloop);
  a.bind(bitdone);
  a(e::slli(T4, S4, 3));
  a(e::add(S4, S4, T4));
  a(e::add(S4, S4, T1));
  a(e::addi(S0, S0, 4));
  a(e::addi(S1, S1, -1));
  a.j(outer);
  a.bind(done);
  emit_result_and_halt(a, S4);
  return a.assemble("isqrt", std::move(d));
}

// ---- prime ------------------------------------------------------------------------
// Trial-division prime counting: heavy use of the iterative divider.
assembler::Program build_prime(unsigned scale) {
  const unsigned limit = 1000 + 500 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  // As in the TACLe original, the kernel works against memory: trial
  // divisors come from a table in the data segment and found primes are
  // logged back to it. This ties the inner loop to the core's address
  // space — without it both redundant copies would execute in perfect
  // register-level lockstep with identical values, and every cycle would
  // (correctly, but uninterestingly) lack diversity.
  std::vector<u32> divisors;
  for (u32 v = 2; v * v <= limit + 500; ++v) divisors.push_back(v);
  const u64 dtab = d.add_u32_array(divisors);
  const u64 log = d.reserve(512 * 4);

  a.lea_data(S6, log);
  a.lea_data(S8, dtab);
  a.li(S7, 0);  // primes logged
  a.li(S0, 2);  // candidate
  a.li(S1, static_cast<i64>(limit));
  a.li(S4, 0);  // prime count
  a.li(S5, 0);  // sum of primes
  Label outer = a.new_label(), done = a.new_label(), not_prime = a.new_label(),
        is_prime = a.new_label(), next = a.new_label();
  a.bind(outer);
  a.bge(S0, S1, done);
  a.mv(T4, S8);  // divisor cursor
  Label trial = a.new_label();
  a.bind(trial);
  a(e::lwu(T0, T4, 0));     // divisor from the table
  a(e::mul(T1, T0, T0));
  a.bgt(T1, S0, is_prime);  // divisor^2 > candidate: prime
  a(e::rem(T2, S0, T0));
  a.beqz(T2, not_prime);
  a(e::addi(T4, T4, 4));
  a.j(trial);
  a.bind(is_prime);
  a(e::addi(S4, S4, 1));
  a(e::add(S5, S5, S0));   // sum of primes, folded below
  a(e::andi(T3, S7, 511)); // bounded log of found primes
  a(e::slli(T3, T3, 2));
  a(e::add(T3, T3, S6));
  a(e::sw(S0, T3, 0));
  a(e::addi(S7, S7, 1));
  a.bind(not_prime);
  a.bind(next);
  a(e::addi(S0, S0, 1));
  a.j(outer);
  a.bind(done);
  a(e::slli(T0, S4, 32));
  a(e::add(S4, T0, S5));
  emit_result_and_halt(a, S4);
  return a.assemble("prime", std::move(d));
}

// ---- fac -------------------------------------------------------------------------
// Sum of factorials, computed with a recursive factorial function.
assembler::Program build_fac(unsigned scale) {
  const unsigned reps = 8 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);

  Label fac = a.new_label(), main = a.new_label();
  a.j(main);
  // fac(a1) -> a2 = a1!, recursive.
  a.bind(fac);
  Label base = a.new_label();
  a.li(T0, 2);
  a.blt(A1, T0, base);
  a(e::addi(SP, SP, -16));
  a(e::sd(RA, SP, 0));
  a(e::sd(A1, SP, 8));
  a(e::addi(A1, A1, -1));
  a.call(fac);
  a(e::ld(A1, SP, 8));
  a(e::ld(RA, SP, 0));
  a(e::addi(SP, SP, 16));
  a(e::mul(A2, A2, A1));
  a.ret();
  a.bind(base);
  a.li(A2, 1);
  a.ret();

  a.bind(main);
  a.li(S1, static_cast<i64>(reps));
  a.li(S4, 0);
  Label rep = a.new_label(), done = a.new_label();
  a.bind(rep);
  a.beqz(S1, done);
  a.li(S2, 1);  // k
  Label sum = a.new_label(), sum_done = a.new_label();
  a.bind(sum);
  a.li(T0, 15);
  a.bgt(S2, T0, sum_done);
  a.mv(A1, S2);
  a.call(fac);
  a(e::add(S4, S4, A2));
  a(e::addi(S2, S2, 1));
  a.j(sum);
  a.bind(sum_done);
  a(e::addi(S1, S1, -1));
  a.j(rep);
  a.bind(done);
  emit_result_and_halt(a, S4);
  return a.assemble("fac", std::move(d));
}

// ---- recursion --------------------------------------------------------------------
// Naive doubly-recursive fibonacci: deep, unbalanced call tree.
assembler::Program build_recursion(unsigned scale) {
  const unsigned arg = 13 + std::min(scale - 1, 6u);
  Assembler a;
  DataBuilder d;
  reserve_result(d);

  Label fib = a.new_label(), main = a.new_label();
  a.j(main);
  // fib(a1) -> a2
  a.bind(fib);
  Label base = a.new_label();
  a.li(T0, 2);
  a.blt(A1, T0, base);
  a(e::addi(SP, SP, -24));
  a(e::sd(RA, SP, 0));
  a(e::sd(A1, SP, 8));
  a(e::addi(A1, A1, -1));
  a.call(fib);
  a(e::sd(A2, SP, 16));
  a(e::ld(A1, SP, 8));
  a(e::addi(A1, A1, -2));
  a.call(fib);
  a(e::ld(T0, SP, 16));
  a(e::add(A2, A2, T0));
  a(e::ld(RA, SP, 0));
  a(e::addi(SP, SP, 24));
  a.ret();
  a.bind(base);
  a.mv(A2, A1);
  a.ret();

  a.bind(main);
  a.li(A1, static_cast<i64>(arg));
  a.call(fib);
  emit_result_and_halt(a, A2);
  return a.assemble("recursion", std::move(d));
}

// ---- matrix1 ----------------------------------------------------------------------
// Dense integer matrix multiply C = A * B.
assembler::Program build_matrix1(unsigned scale) {
  const unsigned dim = 16 + 4 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 ma = d.add_i32_array(random_i32("matrix1.a", dim * dim));
  const u64 mb = d.add_i32_array(random_i32("matrix1.b", dim * dim));
  const u64 mc = d.reserve(dim * dim * 4);

  a.lea_data(S0, ma);
  a.lea_data(S1, mb);
  a.lea_data(S2, mc);
  a.li(S3, static_cast<i64>(dim));
  a.li(S5, 0);  // i
  Label i_loop = a.new_label(), i_done = a.new_label();
  a.bind(i_loop);
  a.bge(S5, S3, i_done);
  a.li(S6, 0);  // j
  Label j_loop = a.new_label(), j_done = a.new_label();
  a.bind(j_loop);
  a.bge(S6, S3, j_done);
  a.li(T0, 0);  // k
  a.li(T1, 0);  // acc
  Label k_loop = a.new_label(), k_done = a.new_label();
  a.bind(k_loop);
  a.bge(T0, S3, k_done);
  // A[i][k]
  a(e::mul(T2, S5, S3));
  a(e::add(T2, T2, T0));
  a(e::slli(T2, T2, 2));
  a(e::add(T2, T2, S0));
  a(e::lw(T3, T2, 0));
  // B[k][j]
  a(e::mul(T4, T0, S3));
  a(e::add(T4, T4, S6));
  a(e::slli(T4, T4, 2));
  a(e::add(T4, T4, S1));
  a(e::lw(T5, T4, 0));
  a(e::mulw(T3, T3, T5));
  a(e::addw(T1, T1, T3));
  a(e::addi(T0, T0, 1));
  a.j(k_loop);
  a.bind(k_done);
  // C[i][j] = acc
  a(e::mul(T2, S5, S3));
  a(e::add(T2, T2, S6));
  a(e::slli(T2, T2, 2));
  a(e::add(T2, T2, S2));
  a(e::sw(T1, T2, 0));
  a(e::addi(S6, S6, 1));
  a.j(j_loop);
  a.bind(j_done);
  a(e::addi(S5, S5, 1));
  a.j(i_loop);
  a.bind(i_done);
  a.lea_data(S1, mc);
  a.li(S4, 0);
  emit_checksum_u32(a, S1, dim * dim, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("matrix1", std::move(d));
}

// ---- jfdctint ---------------------------------------------------------------------
// JPEG-style integer forward DCT over 8x8 blocks (shift/add butterflies; a
// simplified LLM structure that keeps the row/column two-pass shape).
assembler::Program build_jfdctint(unsigned scale) {
  const unsigned blocks = 8 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 data = d.add_i32_array(random_i32("jfdctint", blocks * 64));

  // Two passes (rows then columns) of a 4-point butterfly approximation
  // applied over each 8x8 block.
  a.lea_data(S0, data);
  a.li(S1, static_cast<i64>(blocks));
  Label blk = a.new_label(), blk_done = a.new_label();
  a.bind(blk);
  a.beqz(S1, blk_done);
  for (int pass = 0; pass < 2; ++pass) {
    const int stride = pass == 0 ? 4 : 32;          // element step in bytes
    const int line_step = pass == 0 ? 32 : 4;       // line step in bytes
    a.mv(S2, S0);
    a.li(S3, 8);  // lines
    Label line = a.new_label(), line_done = a.new_label();
    a.bind(line);
    a.beqz(S3, line_done);
    // Butterfly pairs (k, 7-k) for k = 0..3.
    for (int k = 0; k < 4; ++k) {
      const i64 off_lo = k * stride;
      const i64 off_hi = (7 - k) * stride;
      a(e::lw(T0, S2, off_lo));
      a(e::lw(T1, S2, off_hi));
      a(e::addw(T2, T0, T1));   // sum
      a(e::subw(T3, T0, T1));   // diff
      a(e::sraiw(T2, T2, 1));
      a(e::sraiw(T3, T3, 1));
      a(e::sw(T2, S2, off_lo));
      a(e::sw(T3, S2, off_hi));
    }
    a(e::addi(S2, S2, line_step));
    a(e::addi(S3, S3, -1));
    a.j(line);
    a.bind(line_done);
  }
  a(e::addi(S0, S0, 256));
  a(e::addi(S1, S1, -1));
  a.j(blk);
  a.bind(blk_done);
  a.lea_data(S1, data);
  a.li(S4, 0);
  emit_checksum_u32(a, S1, blocks * 64, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("jfdctint", std::move(d));
}

// ---- pm --------------------------------------------------------------------------------
// Pattern matching: naive string search recording matches with stores.
// Store-heavy bookkeeping to the same lines makes this the benchmark that
// exposes the store-buffer coalescing timing anomaly (paper Section V-C).
assembler::Program build_pm(unsigned scale) {
  const unsigned text_len = 1024 * scale;
  const unsigned pat_len = 4;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  // Text over a tiny alphabet so matches are frequent.
  Xoshiro256 rng = input_rng("pm");
  std::vector<u8> text(text_len);
  for (auto& c : text) c = static_cast<u8>('a' + rng.below(3));
  std::vector<u8> pattern(pat_len);
  for (auto& c : pattern) c = static_cast<u8>('a' + rng.below(3));
  const u64 txt = d.add_bytes(text);
  const u64 pat = d.add_bytes(pattern);
  const u64 hits = d.reserve(1024);  // per-position bookkeeping table (wraps at 512 entries)

  a.lea_data(S0, txt);
  a.lea_data(S1, pat);
  a.lea_data(S2, hits);
  a.li(S3, static_cast<i64>(text_len - pat_len));
  a.li(S5, 0);   // position i
  a.li(S6, 0);   // match count
  Label outer = a.new_label(), outer_done = a.new_label();
  a.bind(outer);
  a.bgt(S5, S3, outer_done);
  a.li(T0, 0);   // k
  Label cmp = a.new_label(), mismatch = a.new_label(), match = a.new_label(),
        next = a.new_label();
  a.bind(cmp);
  a.li(T1, pat_len);
  a.bge(T0, T1, match);
  a(e::add(T2, S0, S5));
  a(e::add(T2, T2, T0));
  a(e::lbu(T3, T2, 0));
  a(e::add(T4, S1, T0));
  a(e::lbu(T5, T4, 0));
  a.bne(T3, T5, mismatch);
  a(e::addi(T0, T0, 1));
  a.j(cmp);
  a.bind(match);
  a(e::addi(S6, S6, 1));
  a.bind(mismatch);
  a.bind(next);
  // Per-position bookkeeping store (the TACLe pm continuously writes its
  // match table): sequential 16-bit stores — 16 to a line — that the store
  // buffer coalesces while the bus is busy. This write stream is what
  // produces the paper's pm timing anomaly under staggered starts.
  a(e::andi(T1, S5, 0x1FF));
  a(e::slli(T1, T1, 1));
  a(e::add(T1, T1, S2));
  a(e::sh(T0, T1, 0));  // prefix length reached at this position
  a(e::addi(S5, S5, 1));
  a.j(outer);
  a.bind(outer_done);
  // Checksum: match count and a digest of the logged positions.
  a.lea_data(S1, hits);
  a.li(S4, 0);
  emit_checksum_u32(a, S1, static_cast<unsigned>(text_len / 8), S4, T1, T2, T0);
  a(e::slli(T0, S6, 48));
  a(e::add(S4, S4, T0));
  emit_result_and_halt(a, S4);
  return a.assemble("pm", std::move(d));
}

}  // namespace safedm::workloads
