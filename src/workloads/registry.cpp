#include "safedm/workloads/workloads.hpp"

#include "safedm/common/check.hpp"

namespace safedm::workloads {

const std::vector<WorkloadInfo>& registry() {
  static const std::vector<WorkloadInfo> kRegistry = {
      {"binarysearch", false, build_binarysearch},
      {"bitcount", false, build_bitcount},
      {"bitonic", false, build_bitonic},
      {"bsort", false, build_bsort},
      {"complex_updates", true, build_complex_updates},
      {"cosf", true, build_cosf},
      {"countnegative", false, build_countnegative},
      {"cubic", true, build_cubic},
      {"deg2rad", true, build_deg2rad},
      {"fac", false, build_fac},
      {"fft", true, build_fft},
      {"filterbank", true, build_filterbank},
      {"fir2dim", true, build_fir2dim},
      {"iir", true, build_iir},
      {"insertsort", false, build_insertsort},
      {"isqrt", false, build_isqrt},
      {"jfdctint", false, build_jfdctint},
      {"lms", true, build_lms},
      {"ludcmp", true, build_ludcmp},
      {"matrix1", false, build_matrix1},
      {"md5", false, build_md5},
      {"minver", true, build_minver},
      {"pm", false, build_pm},
      {"prime", false, build_prime},
      {"quicksort", false, build_quicksort},
      {"rad2deg", true, build_rad2deg},
      {"recursion", false, build_recursion},
      {"sha", false, build_sha},
      {"st", true, build_st},
  };
  return kRegistry;
}

assembler::Program build(std::string_view name, unsigned scale) {
  SAFEDM_CHECK_MSG(scale >= 1, "workload scale must be >= 1");
  for (const WorkloadInfo& info : registry())
    if (info.name == name) return info.build(scale);
  for (const WorkloadInfo& info : registry_extended())
    if (info.name == name) return info.build(scale);
  SAFEDM_CHECK_MSG(false, "unknown workload '" << name << "'");
  __builtin_unreachable();
}

}  // namespace safedm::workloads
