// Integer search & sort benchmarks: binarysearch, bsort, insertsort,
// quicksort, bitonic, countnegative.
#include <algorithm>

#include "internal.hpp"

namespace safedm::workloads {

using namespace internal;

// ---- binarysearch --------------------------------------------------------------
// Repeated binary searches over a sorted table; data-dependent branch
// pattern, read-only memory traffic.
assembler::Program build_binarysearch(unsigned scale) {
  const unsigned n = 256 * scale;
  const unsigned keys = 128;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  std::vector<u32> table = random_u32("binarysearch", n, 0x00FFFFFF);
  std::sort(table.begin(), table.end());
  std::vector<u32> probes = random_u32("binarysearch.keys", keys, 0x00FFFFFF);
  // Make half the probes guaranteed hits.
  for (unsigned i = 0; i < keys; i += 2) probes[i] = table[(i * 37) % n];
  const u64 tbl = d.add_u32_array(table);
  const u64 prb = d.add_u32_array(probes);

  a.lea_data(S0, tbl);
  a.lea_data(S1, prb);
  a.li(S2, keys);
  a.li(S3, static_cast<i64>(n));
  a.li(S4, 0);  // checksum
  Label outer = a.new_label(), done = a.new_label();
  a.bind(outer);
  a.beqz(S2, done);
  a(e::lwu(T4, S1, 0));
  a(e::addi(S1, S1, 4));
  a.li(T0, 0);        // lo
  a.mv(T1, S3);       // hi
  Label loop = a.new_label(), found = a.new_label(), go_right = a.new_label(),
        next = a.new_label();
  a.bind(loop);
  a.bgeu(T0, T1, next);                  // lo >= hi: not found
  a(e::add(T2, T0, T1));
  a(e::srli(T2, T2, 1));                 // mid
  a(e::slli(T5, T2, 2));
  a(e::add(T5, T5, S0));
  a(e::lwu(T3, T5, 0));
  a.beq(T3, T4, found);
  a.bltu(T3, T4, go_right);
  a.mv(T1, T2);                          // hi = mid
  a.j(loop);
  a.bind(go_right);
  a(e::addi(T0, T2, 1));                 // lo = mid + 1
  a.j(loop);
  a.bind(found);
  a(e::add(S4, S4, T2));
  a.bind(next);
  a(e::xori(S4, S4, 0x55));
  a(e::addi(S2, S2, -1));
  a.j(outer);
  a.bind(done);
  emit_result_and_halt(a, S4);
  return a.assemble("binarysearch", std::move(d));
}

// ---- bsort ------------------------------------------------------------------------
// Bubble sort: quadratic compare/swap, very regular strided loads/stores.
assembler::Program build_bsort(unsigned scale) {
  const unsigned n = 64 + 32 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 arr = d.add_u32_array(random_u32("bsort", n));

  a.li(S2, static_cast<i64>(n - 1));  // passes remaining
  Label pass = a.new_label(), done = a.new_label();
  a.bind(pass);
  a.beqz(S2, done);
  a.lea_data(S0, arr);
  a.mv(T0, S2);  // comparisons this pass
  Label inner = a.new_label(), no_swap = a.new_label(), inner_done = a.new_label();
  a.bind(inner);
  a.beqz(T0, inner_done);
  a(e::lwu(T1, S0, 0));
  a(e::lwu(T2, S0, 4));
  a.bgeu(T2, T1, no_swap);
  a(e::sw(T2, S0, 0));
  a(e::sw(T1, S0, 4));
  a.bind(no_swap);
  a(e::addi(S0, S0, 4));
  a(e::addi(T0, T0, -1));
  a.j(inner);
  a.bind(inner_done);
  a(e::addi(S2, S2, -1));
  a.j(pass);
  a.bind(done);
  a.lea_data(S0, arr);
  a.li(S4, 0);
  emit_checksum_u32(a, S0, n, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("bsort", std::move(d));
}

// ---- insertsort ----------------------------------------------------------------------
assembler::Program build_insertsort(unsigned scale) {
  const unsigned n = 96 + 32 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 arr = d.add_u32_array(random_u32("insertsort", n));

  a.lea_data(S0, arr);
  a.li(S1, 1);  // i
  a.li(S3, static_cast<i64>(n));
  Label outer = a.new_label(), done = a.new_label();
  a.bind(outer);
  a.bge(S1, S3, done);
  // key = a[i]
  a(e::slli(T0, S1, 2));
  a(e::add(T0, T0, S0));
  a(e::lwu(T1, T0, 0));   // key
  a.mv(T2, S1);            // j = i
  Label shift = a.new_label(), place = a.new_label();
  a.bind(shift);
  a.beqz(T2, place);
  a(e::slli(T3, T2, 2));
  a(e::add(T3, T3, S0));
  a(e::lwu(T4, T3, -4));  // a[j-1]
  a.bgeu(T1, T4, place);
  a(e::sw(T4, T3, 0));    // a[j] = a[j-1]
  a(e::addi(T2, T2, -1));
  a.j(shift);
  a.bind(place);
  a(e::slli(T3, T2, 2));
  a(e::add(T3, T3, S0));
  a(e::sw(T1, T3, 0));
  a(e::addi(S1, S1, 1));
  a.j(outer);
  a.bind(done);
  a.lea_data(S0, arr);
  a.li(S4, 0);
  emit_checksum_u32(a, S0, n, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("insertsort", std::move(d));
}

// ---- quicksort -----------------------------------------------------------------------
// Recursive quicksort (Lomuto partition): deep call stack, data-dependent
// control flow — the paper's hardest naturally-diverse case.
assembler::Program build_quicksort(unsigned scale) {
  const unsigned n = 192 + 64 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 arr = d.add_u32_array(random_u32("quicksort", n));

  Label qs = a.new_label(), main = a.new_label();
  a.j(main);

  // qs(a1 = lo index, a2 = hi index), array base in s0.
  a.bind(qs);
  Label ret_now = a.new_label(), part_loop = a.new_label(), part_done = a.new_label(),
        no_swap = a.new_label();
  a.bge(A1, A2, ret_now);
  a(e::addi(SP, SP, -32));
  a(e::sd(RA, SP, 0));
  a(e::sd(A1, SP, 8));
  a(e::sd(A2, SP, 16));
  // pivot = a[hi]
  a(e::slli(T0, A2, 2));
  a(e::add(T0, T0, S0));
  a(e::lwu(T1, T0, 0));    // pivot
  a(e::addi(T2, A1, -1));  // i = lo - 1
  a.mv(T3, A1);            // j = lo
  a.bind(part_loop);
  a.bge(T3, A2, part_done);
  a(e::slli(T4, T3, 2));
  a(e::add(T4, T4, S0));
  a(e::lwu(T5, T4, 0));    // a[j]
  a.bgeu(T5, T1, no_swap);
  a(e::addi(T2, T2, 1));   // ++i
  a(e::slli(A3, T2, 2));
  a(e::add(A3, A3, S0));
  a(e::lwu(A4, A3, 0));
  a(e::sw(T5, A3, 0));     // swap a[i], a[j]
  a(e::sw(A4, T4, 0));
  a.bind(no_swap);
  a(e::addi(T3, T3, 1));
  a.j(part_loop);
  a.bind(part_done);
  a(e::addi(T2, T2, 1));   // pivot position = i + 1
  // swap a[pivot_pos], a[hi]
  a(e::slli(A3, T2, 2));
  a(e::add(A3, A3, S0));
  a(e::lwu(A4, A3, 0));
  a(e::sw(T1, A3, 0));
  a(e::sw(A4, T0, 0));
  a(e::sd(T2, SP, 24));    // save pivot position
  // qs(lo, p-1)
  a(e::addi(A2, T2, -1));
  a.call(qs);
  // qs(p+1, hi)
  a(e::ld(T2, SP, 24));
  a(e::ld(A2, SP, 16));
  a(e::addi(A1, T2, 1));
  a.call(qs);
  a(e::ld(RA, SP, 0));
  a(e::addi(SP, SP, 32));
  a.bind(ret_now);
  a.ret();

  a.bind(main);
  a.lea_data(S0, arr);
  a.li(A1, 0);
  a.li(A2, static_cast<i64>(n - 1));
  a.call(qs);
  a.lea_data(S1, arr);
  a.li(S4, 0);
  emit_checksum_u32(a, S1, n, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("quicksort", std::move(d));
}

// ---- bitonic ---------------------------------------------------------------------------
// Bitonic sorting network: oblivious (data-independent) control flow, XOR
// index arithmetic — contrast to quicksort.
assembler::Program build_bitonic(unsigned scale) {
  unsigned n = 128;
  while (scale > 1) {
    n *= 2;
    --scale;
  }
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 arr = d.add_u32_array(random_u32("bitonic", n));

  a.lea_data(S0, arr);
  a.li(S1, 2);  // k
  a.li(S5, static_cast<i64>(n));
  Label k_loop = a.new_label(), k_done = a.new_label();
  a.bind(k_loop);
  a.bgt(S1, S5, k_done);
  a(e::srli(S2, S1, 1));  // j = k / 2
  Label j_loop = a.new_label(), j_done = a.new_label();
  a.bind(j_loop);
  a.beqz(S2, j_done);
  a.li(S3, 0);  // i
  Label i_loop = a.new_label(), i_done = a.new_label(), skip = a.new_label(),
        descending = a.new_label(), maybe_swap_asc = a.new_label(), do_swap = a.new_label();
  a.bind(i_loop);
  a.bge(S3, S5, i_done);
  a(e::xor_(T0, S3, S2));  // l = i ^ j
  a.ble(T0, S3, skip);     // only l > i
  // load a[i], a[l]
  a(e::slli(T1, S3, 2));
  a(e::add(T1, T1, S0));
  a(e::lwu(T2, T1, 0));    // a[i]
  a(e::slli(T3, T0, 2));
  a(e::add(T3, T3, S0));
  a(e::lwu(T4, T3, 0));    // a[l]
  a(e::and_(T5, S3, S1));  // i & k
  a.bnez(T5, descending);
  a.bind(maybe_swap_asc);
  a.bgeu(T4, T2, skip);    // ascending: swap if a[i] > a[l]
  a.j(do_swap);
  a.bind(descending);
  a.bgeu(T2, T4, skip);    // descending: swap if a[i] < a[l]
  a.bind(do_swap);
  a(e::sw(T4, T1, 0));
  a(e::sw(T2, T3, 0));
  a.bind(skip);
  a(e::addi(S3, S3, 1));
  a.j(i_loop);
  a.bind(i_done);
  a(e::srli(S2, S2, 1));
  a.j(j_loop);
  a.bind(j_done);
  a(e::slli(S1, S1, 1));
  a.j(k_loop);
  a.bind(k_done);
  a.lea_data(S1, arr);
  a.li(S4, 0);
  emit_checksum_u32(a, S1, n, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("bitonic", std::move(d));
}

// ---- countnegative ------------------------------------------------------------------------
// Matrix scan counting negatives and summing positives per quadrant.
assembler::Program build_countnegative(unsigned scale) {
  const unsigned dim = 24 + 8 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 mat = d.add_i32_array(random_i32("countnegative", dim * dim));

  a.lea_data(S0, mat);
  a.li(T0, static_cast<i64>(dim * dim));
  a.li(S2, 0);  // negatives
  a.li(S3, 0);  // sum of positives
  Label loop = a.new_label(), done = a.new_label(), nonneg = a.new_label(),
        next = a.new_label();
  a.bind(loop);
  a.beqz(T0, done);
  a(e::lw(T1, S0, 0));
  a.bge(T1, ZERO, nonneg);
  a(e::addi(S2, S2, 1));
  a.j(next);
  a.bind(nonneg);
  a(e::add(S3, S3, T1));
  a.bind(next);
  a(e::addi(S0, S0, 4));
  a(e::addi(T0, T0, -1));
  a.j(loop);
  a.bind(done);
  a.li(T2, 2654435761);
  a(e::mul(S4, S2, T2));
  a(e::add(S4, S4, S3));
  emit_result_and_halt(a, S4);
  return a.assemble("countnegative", std::move(d));
}

}  // namespace safedm::workloads
