// TACLeBench-style workload suite (paper Section V-A).
//
// The paper evaluates SafeDM with the TACLe benchmarks compiled for the
// NOEL-V; with no cross-compiler available offline, each benchmark is
// re-authored here against the embedded assembler, preserving the original
// algorithm's control-flow and memory-access character (the properties
// diversity monitoring is sensitive to). Inputs are scaled down so a run
// is ~10^5 cycles instead of the paper's >56M instructions; the `scale`
// parameter grows them back when longer runs are wanted.
//
// Conventions (shared with the SoC loader):
//   - a0 = data-segment base; the first u64 of the segment receives a
//     result checksum before the final `ecall`, so tests can compare the
//     pipelined cores and the golden ISS bit-for-bit.
//   - sp = per-core stack top (recursive benchmarks use it).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "safedm/assembler/assembler.hpp"

namespace safedm::workloads {

/// Byte offset of the result checksum within the data segment.
inline constexpr u64 kResultOffset = 0;

struct WorkloadInfo {
  std::string name;
  bool uses_fp = false;
  std::function<assembler::Program(unsigned scale)> build;
};

/// All 29 benchmarks of the paper's Table I, in its row order.
const std::vector<WorkloadInfo>& registry();

/// Additional TACLeBench-family kernels beyond the paper's Table I set
/// (codecs, graph search, state machines, image kernels).
const std::vector<WorkloadInfo>& registry_extended();

/// Build one benchmark by name from either registry (throws CheckError
/// for unknown names).
assembler::Program build(std::string_view name, unsigned scale = 1);

// Individual builders (scale >= 1).
assembler::Program build_binarysearch(unsigned scale);
assembler::Program build_bitcount(unsigned scale);
assembler::Program build_bitonic(unsigned scale);
assembler::Program build_bsort(unsigned scale);
assembler::Program build_complex_updates(unsigned scale);
assembler::Program build_cosf(unsigned scale);
assembler::Program build_countnegative(unsigned scale);
assembler::Program build_cubic(unsigned scale);
assembler::Program build_deg2rad(unsigned scale);
assembler::Program build_fac(unsigned scale);
assembler::Program build_fft(unsigned scale);
assembler::Program build_filterbank(unsigned scale);
assembler::Program build_fir2dim(unsigned scale);
assembler::Program build_iir(unsigned scale);
assembler::Program build_insertsort(unsigned scale);
assembler::Program build_isqrt(unsigned scale);
assembler::Program build_jfdctint(unsigned scale);
assembler::Program build_lms(unsigned scale);
assembler::Program build_ludcmp(unsigned scale);
assembler::Program build_matrix1(unsigned scale);
assembler::Program build_md5(unsigned scale);
assembler::Program build_minver(unsigned scale);
assembler::Program build_pm(unsigned scale);
assembler::Program build_prime(unsigned scale);
assembler::Program build_quicksort(unsigned scale);
assembler::Program build_rad2deg(unsigned scale);
assembler::Program build_recursion(unsigned scale);
assembler::Program build_sha(unsigned scale);
assembler::Program build_st(unsigned scale);

// Extended set (registry_extended()).
assembler::Program build_adpcm(unsigned scale);
assembler::Program build_crc(unsigned scale);
assembler::Program build_dijkstra(unsigned scale);
assembler::Program build_epic(unsigned scale);
assembler::Program build_huffman(unsigned scale);
assembler::Program build_ndes(unsigned scale);
assembler::Program build_statemate(unsigned scale);
assembler::Program build_susan(unsigned scale);

}  // namespace safedm::workloads
