// Floating-point DSP / linear-algebra benchmarks: fft, filterbank, fir2dim,
// lms, ludcmp, minver, st.
#include <cmath>

#include "internal.hpp"

namespace safedm::workloads {

using namespace internal;

// ---- fft --------------------------------------------------------------------------
// Iterative radix-2 Cooley-Tukey with an explicit bit-reversal pass and
// precomputed twiddle tables.
assembler::Program build_fft(unsigned scale) {
  unsigned n = 64;
  unsigned log2n = 6;
  while (scale > 1) {
    n *= 2;
    ++log2n;
    --scale;
  }
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 re = d.add_f64_array(random_f64("fft.re", n));
  const u64 im = d.add_f64_array(random_f64("fft.im", n));
  std::vector<double> wre(n / 2), wim(n / 2);
  for (unsigned j = 0; j < n / 2; ++j) {
    wre[j] = std::cos(-2.0 * 3.14159265358979323846 * j / n);
    wim[j] = std::sin(-2.0 * 3.14159265358979323846 * j / n);
  }
  const u64 twr = d.add_f64_array(wre);
  const u64 twi = d.add_f64_array(wim);

  a.lea_data(S0, re);
  a.lea_data(S1, im);
  a.lea_data(S2, twr);
  a.lea_data(S3, twi);
  a.li(S5, static_cast<i64>(n));

  // ---- bit-reversal permutation.
  a.li(S6, 0);  // i
  Label rev_loop = a.new_label(), rev_done = a.new_label(), no_swap = a.new_label();
  a.bind(rev_loop);
  a.bge(S6, S5, rev_done);
  a.li(T0, 0);                     // r
  a.mv(T1, S6);                    // v
  a.li(T2, static_cast<i64>(log2n));
  Label bits = a.new_label(), bits_done = a.new_label();
  a.bind(bits);
  a.beqz(T2, bits_done);
  a(e::slli(T0, T0, 1));
  a(e::andi(T3, T1, 1));
  a(e::or_(T0, T0, T3));
  a(e::srli(T1, T1, 1));
  a(e::addi(T2, T2, -1));
  a.j(bits);
  a.bind(bits_done);
  a.ble(T0, S6, no_swap);          // only swap when r > i
  a(e::slli(T1, S6, 3));
  a(e::slli(T2, T0, 3));
  a(e::add(T3, S0, T1));
  a(e::add(T4, S0, T2));
  a(e::fld(1, T3, 0));
  a(e::fld(2, T4, 0));
  a(e::fsd(2, T3, 0));
  a(e::fsd(1, T4, 0));
  a(e::add(T3, S1, T1));
  a(e::add(T4, S1, T2));
  a(e::fld(1, T3, 0));
  a(e::fld(2, T4, 0));
  a(e::fsd(2, T3, 0));
  a(e::fsd(1, T4, 0));
  a.bind(no_swap);
  a(e::addi(S6, S6, 1));
  a.j(rev_loop);
  a.bind(rev_done);

  // ---- butterfly stages.
  a.li(S6, 2);  // len
  Label len_loop = a.new_label(), len_done = a.new_label();
  a.bind(len_loop);
  a.bgt(S6, S5, len_done);
  a(e::srli(S7, S6, 1));   // half
  a(e::divu(S8, S5, S6));  // step = n / len
  a.li(S9, 0);             // i
  Label i_loop = a.new_label(), i_done = a.new_label();
  a.bind(i_loop);
  a.bge(S9, S5, i_done);
  a.li(S10, 0);            // j
  Label j_loop = a.new_label(), j_done = a.new_label();
  a.bind(j_loop);
  a.bge(S10, S7, j_done);
  // twiddle = w[j * step]
  a(e::mul(T0, S10, S8));
  a(e::slli(T0, T0, 3));
  a(e::add(T1, S2, T0));
  a(e::fld(5, T1, 0));     // wr
  a(e::add(T1, S3, T0));
  a(e::fld(6, T1, 0));     // wi
  // p = i + j, q = p + half
  a(e::add(T2, S9, S10));
  a(e::slli(T3, T2, 3));
  a(e::add(T4, T2, S7));
  a(e::slli(T5, T4, 3));
  a(e::add(A2, S0, T3));   // &re[p]
  a(e::add(A3, S1, T3));   // &im[p]
  a(e::add(A4, S0, T5));   // &re[q]
  a(e::add(A5, S1, T5));   // &im[q]
  a(e::fld(1, A2, 0));     // ur
  a(e::fld(2, A3, 0));     // ui
  a(e::fld(3, A4, 0));     // xr
  a(e::fld(4, A5, 0));     // xi
  // v = x * w (complex)
  a(e::fmul_d(7, 3, 5));
  a(e::fnmsub_d(7, 4, 6, 7));  // vr = xr*wr - xi*wi
  a(e::fmul_d(8, 3, 6));
  a(e::fmadd_d(8, 4, 5, 8));   // vi = xr*wi + xi*wr
  a(e::fadd_d(9, 1, 7));
  a(e::fsd(9, A2, 0));
  a(e::fadd_d(9, 2, 8));
  a(e::fsd(9, A3, 0));
  a(e::fsub_d(9, 1, 7));
  a(e::fsd(9, A4, 0));
  a(e::fsub_d(9, 2, 8));
  a(e::fsd(9, A5, 0));
  a(e::addi(S10, S10, 1));
  a.j(j_loop);
  a.bind(j_done);
  a(e::add(S9, S9, S6));
  a.j(i_loop);
  a.bind(i_done);
  a(e::slli(S6, S6, 1));
  a.j(len_loop);
  a.bind(len_done);

  a.lea_data(S1, re);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, n, S4, T1, T2, T0);
  a.lea_data(S1, im);
  emit_checksum_u64(a, S1, n, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("fft", std::move(d));
}

// ---- filterbank ----------------------------------------------------------------------
// Bank of FIR filters with decimation: nested filter/sample/tap loops.
assembler::Program build_filterbank(unsigned scale) {
  const unsigned filters = 4;
  const unsigned taps = 16;
  const unsigned n = 128 * scale;
  const unsigned decim = 8;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 input = d.add_f64_array(random_f64("filterbank.x", n));
  const u64 coeff = d.add_f64_array(random_f64("filterbank.h", filters * taps, -0.5, 0.5));
  const unsigned outputs_per_filter = (n - taps) / decim;
  const u64 out = d.reserve(filters * outputs_per_filter * 8);

  a.lea_data(S0, input);
  a.lea_data(S1, coeff);
  a.lea_data(S2, out);
  a.li(S5, filters);  // filter countdown
  Label f_loop = a.new_label(), f_done = a.new_label();
  a.bind(f_loop);
  a.beqz(S5, f_done);
  a.li(S6, taps);  // first sample index n0 = taps
  Label s_loop = a.new_label(), s_done = a.new_label();
  a.bind(s_loop);
  a.li(T0, static_cast<i64>(n));
  a.bge(S6, T0, s_done);
  a(e::fmv_d_x(1, ZERO));  // acc = 0
  a.li(T1, taps);          // tap countdown
  a.mv(T2, S1);            // coeff cursor (current filter)
  a(e::slli(T3, S6, 3));
  a(e::add(T3, T3, S0));   // &x[n0]
  Label t_loop = a.new_label(), t_done = a.new_label();
  a.bind(t_loop);
  a.beqz(T1, t_done);
  a(e::fld(2, T2, 0));
  a(e::fld(3, T3, 0));
  a(e::fmadd_d(1, 2, 3, 1));
  a(e::addi(T2, T2, 8));
  a(e::addi(T3, T3, -8));  // x[n0 - t]
  a(e::addi(T1, T1, -1));
  a.j(t_loop);
  a.bind(t_done);
  a(e::fsd(1, S2, 0));
  a(e::addi(S2, S2, 8));
  a(e::addi(S6, S6, decim));
  a.j(s_loop);
  a.bind(s_done);
  a(e::addi(S1, S1, taps * 8));  // next filter's coefficients
  a(e::addi(S5, S5, -1));
  a.j(f_loop);
  a.bind(f_done);
  a.lea_data(S1, out);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, filters * outputs_per_filter, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("filterbank", std::move(d));
}

// ---- fir2dim --------------------------------------------------------------------------
// 3x3 convolution over a 2D image.
assembler::Program build_fir2dim(unsigned scale) {
  const unsigned dim = 12 + 4 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 img = d.add_f64_array(random_f64("fir2dim.img", dim * dim));
  const u64 ker = d.add_f64_array(random_f64("fir2dim.ker", 9, -0.3, 0.3));
  const unsigned odim = dim - 2;
  const u64 out = d.reserve(odim * odim * 8);

  a.lea_data(S0, img);
  a.lea_data(S1, ker);
  a.lea_data(S2, out);
  a.li(S5, 0);  // row
  Label r_loop = a.new_label(), r_done = a.new_label();
  a.bind(r_loop);
  a.li(T0, static_cast<i64>(odim));
  a.bge(S5, T0, r_done);
  a.li(S6, 0);  // col
  Label c_loop = a.new_label(), c_done = a.new_label();
  a.bind(c_loop);
  a.li(T0, static_cast<i64>(odim));
  a.bge(S6, T0, c_done);
  a(e::fmv_d_x(1, ZERO));
  // &img[row][col]
  a.li(T1, static_cast<i64>(dim));
  a(e::mul(T2, S5, T1));
  a(e::add(T2, T2, S6));
  a(e::slli(T2, T2, 3));
  a(e::add(T2, T2, S0));
  for (unsigned kr = 0; kr < 3; ++kr) {
    for (unsigned kc = 0; kc < 3; ++kc) {
      a(e::fld(2, S1, static_cast<i64>((kr * 3 + kc) * 8)));
      a(e::fld(3, T2, static_cast<i64>((kr * dim + kc) * 8)));
      a(e::fmadd_d(1, 2, 3, 1));
    }
  }
  a(e::fsd(1, S2, 0));
  a(e::addi(S2, S2, 8));
  a(e::addi(S6, S6, 1));
  a.j(c_loop);
  a.bind(c_done);
  a(e::addi(S5, S5, 1));
  a.j(r_loop);
  a.bind(r_done);
  a.lea_data(S1, out);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, odim * odim, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("fir2dim", std::move(d));
}

// ---- lms -------------------------------------------------------------------------------
// LMS adaptive filter: per-sample FIR plus coefficient update.
assembler::Program build_lms(unsigned scale) {
  const unsigned taps = 16;
  const unsigned n = 128 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 x = d.add_f64_array(random_f64("lms.x", n));
  const u64 desired = d.add_f64_array(random_f64("lms.d", n));
  const u64 weights = d.reserve(taps * 8);
  const u64 mu = d.add_f64(0.01);

  a.lea_data(S0, x);
  a.lea_data(S1, desired);
  a.lea_data(S2, weights);
  a.lea_data(T0, mu);
  a(e::fld(10, T0, 0));  // mu
  a.li(S5, taps);        // sample index starts at taps
  Label s_loop = a.new_label(), s_done = a.new_label();
  a.bind(s_loop);
  a.li(T0, static_cast<i64>(n));
  a.bge(S5, T0, s_done);
  // y = w . x[window]; window is x[s-taps+1 .. s]
  a(e::fmv_d_x(1, ZERO));
  a.li(T1, taps);
  a.mv(T2, S2);
  a(e::slli(T3, S5, 3));
  a(e::add(T3, T3, S0));
  Label dot = a.new_label(), dot_done = a.new_label();
  a.bind(dot);
  a.beqz(T1, dot_done);
  a(e::fld(2, T2, 0));
  a(e::fld(3, T3, 0));
  a(e::fmadd_d(1, 2, 3, 1));
  a(e::addi(T2, T2, 8));
  a(e::addi(T3, T3, -8));
  a(e::addi(T1, T1, -1));
  a.j(dot);
  a.bind(dot_done);
  // e = d[s] - y;  w[t] += mu * e * x[s - t]
  a(e::slli(T4, S5, 3));
  a(e::add(T4, T4, S1));
  a(e::fld(4, T4, 0));
  a(e::fsub_d(4, 4, 1));   // e
  a(e::fmul_d(4, 4, 10));  // mu * e
  a.li(T1, taps);
  a.mv(T2, S2);
  a(e::slli(T3, S5, 3));
  a(e::add(T3, T3, S0));
  Label upd = a.new_label(), upd_done = a.new_label();
  a.bind(upd);
  a.beqz(T1, upd_done);
  a(e::fld(2, T2, 0));
  a(e::fld(3, T3, 0));
  a(e::fmadd_d(2, 3, 4, 2));
  a(e::fsd(2, T2, 0));
  a(e::addi(T2, T2, 8));
  a(e::addi(T3, T3, -8));
  a(e::addi(T1, T1, -1));
  a.j(upd);
  a.bind(upd_done);
  a(e::addi(S5, S5, 1));
  a.j(s_loop);
  a.bind(s_done);
  a.lea_data(S1, weights);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, taps, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("lms", std::move(d));
}

namespace {

/// Diagonally dominant random matrix (safe for pivot-free elimination).
std::vector<double> dominant_matrix(std::string_view name, unsigned n) {
  std::vector<double> m = random_f64(name, n * n, -1.0, 1.0);
  for (unsigned i = 0; i < n; ++i) m[i * n + i] = 8.0 + m[i * n + i];
  return m;
}

}  // namespace

// ---- ludcmp -------------------------------------------------------------------------
// Doolittle LU decomposition in place plus forward/back substitution.
assembler::Program build_ludcmp(unsigned scale) {
  const unsigned n = 8 + 2 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 mat = d.add_f64_array(dominant_matrix("ludcmp", n));
  const u64 rhs = d.add_f64_array(random_f64("ludcmp.b", n));
  const u64 sol = d.reserve(n * 8);

  const auto elem = [&](Reg out, Reg row, Reg col, Reg tmp) {
    // out = &mat[row][col]
    a.li(tmp, static_cast<i64>(n));
    a(e::mul(out, row, tmp));
    a(e::add(out, out, col));
    a(e::slli(out, out, 3));
    a(e::add(out, out, S0));
  };

  a.lea_data(S0, mat);
  a.lea_data(S1, rhs);
  a.lea_data(S2, sol);
  a.li(S3, static_cast<i64>(n));

  // Elimination: for k, for i>k: m = a[i][k]/a[k][k]; row_i -= m*row_k.
  a.li(S5, 0);  // k
  Label k_loop = a.new_label(), k_done = a.new_label();
  a.bind(k_loop);
  a(e::addi(T0, S3, -1));
  a.bge(S5, T0, k_done);
  a(e::addi(S6, S5, 1));  // i
  Label i_loop = a.new_label(), i_done = a.new_label();
  a.bind(i_loop);
  a.bge(S6, S3, i_done);
  elem(T1, S6, S5, T5);   // &a[i][k]
  elem(T2, S5, S5, T5);   // &a[k][k]
  a(e::fld(1, T1, 0));
  a(e::fld(2, T2, 0));
  a(e::fdiv_d(3, 1, 2));  // m
  a(e::fsd(3, T1, 0));    // store multiplier (the L part)
  a(e::addi(S7, S5, 1));  // j
  Label j_loop = a.new_label(), j_done = a.new_label();
  a.bind(j_loop);
  a.bge(S7, S3, j_done);
  elem(T1, S6, S7, T5);
  elem(T2, S5, S7, T5);
  a(e::fld(1, T1, 0));
  a(e::fld(2, T2, 0));
  a(e::fnmsub_d(1, 3, 2, 1));  // a[i][j] -= m * a[k][j]
  a(e::fsd(1, T1, 0));
  a(e::addi(S7, S7, 1));
  a.j(j_loop);
  a.bind(j_done);
  a(e::addi(S6, S6, 1));
  a.j(i_loop);
  a.bind(i_done);
  a(e::addi(S5, S5, 1));
  a.j(k_loop);
  a.bind(k_done);

  // Forward substitution: y[i] = b[i] - sum_{j<i} L[i][j] y[j]  (y -> sol).
  a.li(S5, 0);  // i
  Label fwd = a.new_label(), fwd_done = a.new_label();
  a.bind(fwd);
  a.bge(S5, S3, fwd_done);
  a(e::slli(T0, S5, 3));
  a(e::add(T0, T0, S1));
  a(e::fld(1, T0, 0));  // b[i]
  a.li(S6, 0);          // j
  Label facc = a.new_label(), facc_done = a.new_label();
  a.bind(facc);
  a.bge(S6, S5, facc_done);
  elem(T1, S5, S6, T5);
  a(e::fld(2, T1, 0));
  a(e::slli(T2, S6, 3));
  a(e::add(T2, T2, S2));
  a(e::fld(3, T2, 0));
  a(e::fnmsub_d(1, 2, 3, 1));
  a(e::addi(S6, S6, 1));
  a.j(facc);
  a.bind(facc_done);
  a(e::slli(T0, S5, 3));
  a(e::add(T0, T0, S2));
  a(e::fsd(1, T0, 0));
  a(e::addi(S5, S5, 1));
  a.j(fwd);
  a.bind(fwd_done);

  // Back substitution: x[i] = (y[i] - sum_{j>i} U[i][j] x[j]) / U[i][i].
  a(e::addi(S5, S3, -1));
  Label bwd = a.new_label(), bwd_done = a.new_label();
  a.bind(bwd);
  a.blt(S5, ZERO, bwd_done);
  a(e::slli(T0, S5, 3));
  a(e::add(T0, T0, S2));
  a(e::fld(1, T0, 0));    // y[i]
  a(e::addi(S6, S5, 1));  // j
  Label bacc = a.new_label(), bacc_done = a.new_label();
  a.bind(bacc);
  a.bge(S6, S3, bacc_done);
  elem(T1, S5, S6, T5);
  a(e::fld(2, T1, 0));
  a(e::slli(T2, S6, 3));
  a(e::add(T2, T2, S2));
  a(e::fld(3, T2, 0));
  a(e::fnmsub_d(1, 2, 3, 1));
  a(e::addi(S6, S6, 1));
  a.j(bacc);
  a.bind(bacc_done);
  elem(T1, S5, S5, T5);
  a(e::fld(2, T1, 0));
  a(e::fdiv_d(1, 1, 2));
  a(e::fsd(1, T0, 0));
  a(e::addi(S5, S5, -1));
  a.j(bwd);
  a.bind(bwd_done);

  a.lea_data(S1, sol);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, n, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("ludcmp", std::move(d));
}

// ---- minver --------------------------------------------------------------------------
// Gauss-Jordan matrix inversion with an identity-augmented working copy.
assembler::Program build_minver(unsigned scale) {
  const unsigned n = 6 + (scale - 1) * 2;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 mat = d.add_f64_array(dominant_matrix("minver", n));
  const u64 inv = d.reserve(n * n * 8);

  a.lea_data(S0, mat);
  a.lea_data(S1, inv);
  a.li(S3, static_cast<i64>(n));
  // inv = I.
  a.li(S5, 0);
  Label init = a.new_label(), init_done = a.new_label();
  a.bind(init);
  a(e::mul(T0, S3, S3));
  a.bge(S5, T0, init_done);
  a(e::slli(T1, S5, 3));
  a(e::add(T1, T1, S1));
  a(e::sd(ZERO, T1, 0));
  a(e::addi(S5, S5, 1));
  a.j(init);
  a.bind(init_done);
  a.li(T2, 1);
  a(e::fcvt_d_l(1, T2));
  a.li(S5, 0);
  Label diag = a.new_label(), diag_done = a.new_label();
  a.bind(diag);
  a.bge(S5, S3, diag_done);
  a(e::mul(T0, S5, S3));
  a(e::add(T0, T0, S5));
  a(e::slli(T0, T0, 3));
  a(e::add(T0, T0, S1));
  a(e::fsd(1, T0, 0));
  a(e::addi(S5, S5, 1));
  a.j(diag);
  a.bind(diag_done);

  const auto elem = [&](Reg out, Reg base, Reg row, Reg col, Reg tmp) {
    a.li(tmp, static_cast<i64>(n));
    a(e::mul(out, row, tmp));
    a(e::add(out, out, col));
    a(e::slli(out, out, 3));
    a(e::add(out, out, base));
  };

  // For each pivot column: normalize the pivot row, eliminate others.
  a.li(S5, 0);  // col
  Label col_loop = a.new_label(), col_done = a.new_label();
  a.bind(col_loop);
  a.bge(S5, S3, col_done);
  elem(T0, S0, S5, S5, T5);
  a(e::fld(1, T0, 0));   // pivot
  // Normalize row S5 in both matrices: row /= pivot.
  a.li(S6, 0);
  Label norm = a.new_label(), norm_done = a.new_label();
  a.bind(norm);
  a.bge(S6, S3, norm_done);
  elem(T1, S0, S5, S6, T5);
  a(e::fld(2, T1, 0));
  a(e::fdiv_d(2, 2, 1));
  a(e::fsd(2, T1, 0));
  elem(T1, S1, S5, S6, T5);
  a(e::fld(2, T1, 0));
  a(e::fdiv_d(2, 2, 1));
  a(e::fsd(2, T1, 0));
  a(e::addi(S6, S6, 1));
  a.j(norm);
  a.bind(norm_done);
  // Eliminate column S5 from all other rows.
  a.li(S7, 0);  // row
  Label row_loop = a.new_label(), row_done = a.new_label(), skip_row = a.new_label();
  a.bind(row_loop);
  a.bge(S7, S3, row_done);
  a.beq(S7, S5, skip_row);
  elem(T0, S0, S7, S5, T5);
  a(e::fld(3, T0, 0));  // factor
  a.li(S6, 0);
  Label elim = a.new_label(), elim_done = a.new_label();
  a.bind(elim);
  a.bge(S6, S3, elim_done);
  elem(T1, S0, S5, S6, T5);
  a(e::fld(1, T1, 0));
  elem(T2, S0, S7, S6, T5);
  a(e::fld(2, T2, 0));
  a(e::fnmsub_d(2, 3, 1, 2));
  a(e::fsd(2, T2, 0));
  elem(T1, S1, S5, S6, T5);
  a(e::fld(1, T1, 0));
  elem(T2, S1, S7, S6, T5);
  a(e::fld(2, T2, 0));
  a(e::fnmsub_d(2, 3, 1, 2));
  a(e::fsd(2, T2, 0));
  a(e::addi(S6, S6, 1));
  a.j(elim);
  a.bind(elim_done);
  a.bind(skip_row);
  a(e::addi(S7, S7, 1));
  a.j(row_loop);
  a.bind(row_done);
  a(e::addi(S5, S5, 1));
  a.j(col_loop);
  a.bind(col_done);

  a.lea_data(S1, inv);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, n * n, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("minver", std::move(d));
}

// ---- st --------------------------------------------------------------------------------
// Statistics: mean, variance, covariance and correlation of two series
// (sum passes, then a divide/sqrt epilogue).
assembler::Program build_st(unsigned scale) {
  const unsigned n = 256 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 xs = d.add_f64_array(random_f64("st.x", n, -10.0, 10.0));
  const u64 ys = d.add_f64_array(random_f64("st.y", n, -5.0, 15.0));
  const u64 out = d.reserve(6 * 8);

  // Pass 1: sums -> means.
  a.lea_data(S0, xs);
  a.lea_data(S1, ys);
  a(e::fmv_d_x(1, ZERO));  // sum x
  a(e::fmv_d_x(2, ZERO));  // sum y
  a.li(T0, static_cast<i64>(n));
  Label p1 = a.new_label(), p1_done = a.new_label();
  a.bind(p1);
  a.beqz(T0, p1_done);
  a(e::fld(3, S0, 0));
  a(e::fadd_d(1, 1, 3));
  a(e::fld(3, S1, 0));
  a(e::fadd_d(2, 2, 3));
  a(e::addi(S0, S0, 8));
  a(e::addi(S1, S1, 8));
  a(e::addi(T0, T0, -1));
  a.j(p1);
  a.bind(p1_done);
  a.li(T0, static_cast<i64>(n));
  a(e::fcvt_d_l(4, T0));   // n as double
  a(e::fdiv_d(5, 1, 4));   // mean x
  a(e::fdiv_d(6, 2, 4));   // mean y
  // Pass 2: variance and covariance sums.
  a.lea_data(S0, xs);
  a.lea_data(S1, ys);
  a(e::fmv_d_x(7, ZERO));  // var x acc
  a(e::fmv_d_x(8, ZERO));  // var y acc
  a(e::fmv_d_x(9, ZERO));  // cov acc
  a.li(T0, static_cast<i64>(n));
  Label p2 = a.new_label(), p2_done = a.new_label();
  a.bind(p2);
  a.beqz(T0, p2_done);
  a(e::fld(1, S0, 0));
  a(e::fsub_d(1, 1, 5));   // dx
  a(e::fld(2, S1, 0));
  a(e::fsub_d(2, 2, 6));   // dy
  a(e::fmadd_d(7, 1, 1, 7));
  a(e::fmadd_d(8, 2, 2, 8));
  a(e::fmadd_d(9, 1, 2, 9));
  a(e::addi(S0, S0, 8));
  a(e::addi(S1, S1, 8));
  a(e::addi(T0, T0, -1));
  a.j(p2);
  a.bind(p2_done);
  a(e::fdiv_d(7, 7, 4));   // var x
  a(e::fdiv_d(8, 8, 4));   // var y
  a(e::fdiv_d(9, 9, 4));   // cov
  a(e::fmul_d(10, 7, 8));
  a(e::fsqrt_d(10, 10));
  a(e::fdiv_d(10, 9, 10)); // correlation
  a.lea_data(S2, out);
  a(e::fsd(5, S2, 0));
  a(e::fsd(6, S2, 8));
  a(e::fsd(7, S2, 16));
  a(e::fsd(8, S2, 24));
  a(e::fsd(9, S2, 32));
  a(e::fsd(10, S2, 40));
  a.lea_data(S1, out);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, 6, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("st", std::move(d));
}

}  // namespace safedm::workloads
