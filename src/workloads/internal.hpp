// Shared helpers for workload authoring (internal to the workloads lib).
#pragma once

#include <vector>

#include "safedm/assembler/assembler.hpp"
#include "safedm/common/rng.hpp"
#include "safedm/isa/encode.hpp"
#include "safedm/workloads/workloads.hpp"

namespace safedm::workloads::internal {

// lint: allow-using-namespace(internal-only header: every workload TU wants the register aliases + Assembler/DataBuilder; never installed or included outside src/workloads)
using namespace safedm::assembler;
namespace e = safedm::isa::enc;

/// Deterministic input data, seeded per benchmark name so inputs are stable
/// across runs and identical for both redundant cores.
inline Xoshiro256 input_rng(std::string_view name) {
  u64 seed = 0x5AFED0DEull;
  for (char c : name) seed = seed * 131 + static_cast<u8>(c);
  return Xoshiro256(seed);
}

inline std::vector<u32> random_u32(std::string_view name, std::size_t count, u32 mask = ~0u) {
  Xoshiro256 rng = input_rng(name);
  std::vector<u32> values(count);
  for (auto& v : values) v = static_cast<u32>(rng.next()) & mask;
  return values;
}

inline std::vector<i32> random_i32(std::string_view name, std::size_t count) {
  Xoshiro256 rng = input_rng(name);
  std::vector<i32> values(count);
  for (auto& v : values) v = static_cast<i32>(rng.next());
  return values;
}

inline std::vector<double> random_f64(std::string_view name, std::size_t count, double lo = -1.0,
                                      double hi = 1.0) {
  Xoshiro256 rng = input_rng(name);
  std::vector<double> values(count);
  for (auto& v : values)
    v = lo + (hi - lo) * (static_cast<double>(rng.next() >> 11) * 0x1.0p-53);
  return values;
}

/// Emit: rd = rs rotated right by `amount` (32-bit semantics), using tmp.
/// RV64I has no rotate; crypto-style benchmarks build it from shifts.
inline void emit_rotr32(Assembler& a, Reg rd, Reg rs, unsigned amount, Reg tmp) {
  a(e::srliw(tmp, rs, amount));
  a(e::slliw(rd, rs, 32 - amount));
  a(e::or_(rd, rd, tmp));
  a(e::addiw(rd, rd, 0));  // keep the value canonically sign-extended
}

/// Emit: rd = rs rotated left by `amount` (32-bit semantics), using tmp.
inline void emit_rotl32(Assembler& a, Reg rd, Reg rs, unsigned amount, Reg tmp) {
  emit_rotr32(a, rd, rs, (32 - amount) % 32, tmp);
}

/// Standard epilogue: store the checksum register to [a0 + kResultOffset]
/// and halt.
inline void emit_result_and_halt(Assembler& a, Reg checksum) {
  a(e::sd(checksum, A0, static_cast<i64>(kResultOffset)));
  a(e::ecall());
}

/// Standard prologue for the data segment: slot 0 reserved for the result.
inline u64 reserve_result(DataBuilder& d) { return d.add_u64(0); }

/// Emit a checksum loop over `count` 32-bit words at [base]:
/// acc = acc*33 + word, advancing base. Clobbers base, t1, t2, counter.
inline void emit_checksum_u32(Assembler& a, Reg base, unsigned count, Reg acc, Reg t1, Reg t2,
                              Reg counter) {
  a.li(counter, static_cast<i64>(count));
  Label loop = a.new_label(), done = a.new_label();
  a.bind(loop);
  a.beqz(counter, done);
  a(e::lwu(t1, base, 0));
  a(e::slli(t2, acc, 5));
  a(e::add(acc, acc, t2));
  a(e::add(acc, acc, t1));
  a(e::addi(base, base, 4));
  a(e::addi(counter, counter, -1));
  a.j(loop);
  a.bind(done);
}

/// Same over 64-bit words (used for FP outputs: checksum the raw bits).
inline void emit_checksum_u64(Assembler& a, Reg base, unsigned count, Reg acc, Reg t1, Reg t2,
                              Reg counter) {
  a.li(counter, static_cast<i64>(count));
  Label loop = a.new_label(), done = a.new_label();
  a.bind(loop);
  a.beqz(counter, done);
  a(e::ld(t1, base, 0));
  a(e::slli(t2, acc, 5));
  a(e::add(acc, acc, t2));
  a(e::xor_(acc, acc, t1));
  a(e::addi(base, base, 8));
  a(e::addi(counter, counter, -1));
  a.j(loop);
  a.bind(done);
}

}  // namespace safedm::workloads::internal
