// Hash-style integer benchmarks: md5, sha. Table-driven mixing rounds with
// software rotates (RV64I has no rotate instruction), long dependency
// chains and word-granular loads.
#include <array>

#include "internal.hpp"

namespace safedm::workloads {

using namespace internal;

namespace {

// MD5 per-round shift amounts and the additive constant table.
constexpr std::array<u32, 64> kMd5Shifts = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

std::array<u32, 64> md5_constants() {
  // K[i] = floor(2^32 * |sin(i+1)|) — generated deterministically without
  // libm by the standard published table.
  return {0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
          0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
          0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
          0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
          0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
          0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
          0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
          0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
          0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
          0xeb86d391};
}

// SHA-256 round constants.
std::array<u32, 64> sha_constants() {
  return {0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
          0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
          0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
          0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
          0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
          0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
          0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
          0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
          0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
          0xc67178f2};
}

/// Emit rd = rs rotated left by the amount in `amt` (register, 32-bit).
void emit_rotl32_reg(Assembler& a, Reg rd, Reg rs, Reg amt, Reg t1, Reg t2) {
  a(e::sllw(t1, rs, amt));
  a.li(t2, 32);
  a(e::subw(t2, t2, amt));
  a(e::srlw(t2, rs, t2));
  a(e::or_(rd, t1, t2));
  a(e::addiw(rd, rd, 0));
}

}  // namespace

// ---- md5 ---------------------------------------------------------------------------
assembler::Program build_md5(unsigned scale) {
  const unsigned blocks = 4 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 msg = d.add_u32_array(random_u32("md5", blocks * 16));
  const u64 ktab = d.add_u32_array(md5_constants());
  const u64 stab = d.add_u32_array({kMd5Shifts.data(), kMd5Shifts.size()});

  // State in s2..s5 (a,b,c,d); block pointer s0; tables s1, s6.
  a.lea_data(S0, msg);
  a.lea_data(S1, ktab);
  a.lea_data(S6, stab);
  a.li(S7, static_cast<i64>(blocks));
  a.li(S2, 0x67452301);
  a.li(S3, static_cast<i64>(0xefcdab89u));
  a.li(S4, static_cast<i64>(0x98badcfeu));
  a.li(S5, 0x10325476);

  Label blk = a.new_label(), blk_done = a.new_label();
  a.bind(blk);
  a.beqz(S7, blk_done);
  // Per-block working copy in s8..s11.
  a.mv(S8, S2);
  a.mv(S9, S3);
  a.mv(S10, S4);
  a.mv(S11, S5);
  a.li(A1, 0);  // round r
  Label round = a.new_label(), rounds_done = a.new_label();
  Label f1 = a.new_label(), f2 = a.new_label(), f3 = a.new_label(), f4 = a.new_label(),
        have_f = a.new_label();
  a.bind(round);
  a.li(T0, 64);
  a.bge(A1, T0, rounds_done);
  // Select F and message index g by round quarter.
  a(e::srli(T0, A1, 4));
  a.li(T1, 1);
  a.bltu(T0, T1, f1);
  a.li(T1, 2);
  a.bltu(T0, T1, f2);
  a.li(T1, 3);
  a.bltu(T0, T1, f3);
  a.j(f4);
  a.bind(f1);  // F = (b & c) | (~b & d); g = r
  a(e::and_(T2, S9, S10));
  a.not_(T3, S9);
  a(e::and_(T3, T3, S11));
  a(e::or_(T2, T2, T3));
  a.mv(T4, A1);
  a.j(have_f);
  a.bind(f2);  // F = (d & b) | (~d & c); g = (5r + 1) mod 16
  a(e::and_(T2, S11, S9));
  a.not_(T3, S11);
  a(e::and_(T3, T3, S10));
  a(e::or_(T2, T2, T3));
  a(e::slli(T4, A1, 2));
  a(e::add(T4, T4, A1));
  a(e::addi(T4, T4, 1));
  a(e::andi(T4, T4, 15));
  a.j(have_f);
  a.bind(f3);  // F = b ^ c ^ d; g = (3r + 5) mod 16
  a(e::xor_(T2, S9, S10));
  a(e::xor_(T2, T2, S11));
  a(e::slli(T4, A1, 1));
  a(e::add(T4, T4, A1));
  a(e::addi(T4, T4, 5));
  a(e::andi(T4, T4, 15));
  a.j(have_f);
  a.bind(f4);  // F = c ^ (b | ~d); g = 7r mod 16
  a.not_(T3, S11);
  a(e::or_(T3, S9, T3));
  a(e::xor_(T2, S10, T3));
  a(e::slli(T4, A1, 3));
  a(e::sub(T4, T4, A1));
  a(e::andi(T4, T4, 15));
  a.bind(have_f);
  // tmp = a + F + K[r] + M[g]
  a(e::addw(T2, T2, S8));
  a(e::slli(T3, A1, 2));
  a(e::add(T3, T3, S1));
  a(e::lwu(T3, T3, 0));
  a(e::addw(T2, T2, T3));
  a(e::slli(T4, T4, 2));
  a(e::add(T4, T4, S0));
  a(e::lwu(T4, T4, 0));
  a(e::addw(T2, T2, T4));
  // rotate by S[r] and add b; shuffle state.
  a(e::slli(T3, A1, 2));
  a(e::add(T3, T3, S6));
  a(e::lwu(T3, T3, 0));
  emit_rotl32_reg(a, T2, T2, T3, T5, A2);
  a(e::addw(T2, T2, S9));
  a.mv(S8, S11);   // a' = d
  a.mv(S11, S10);  // d' = c
  a.mv(S10, S9);   // c' = b
  a.mv(S9, T2);    // b' = rotated
  a(e::addi(A1, A1, 1));
  a.j(round);
  a.bind(rounds_done);
  a(e::addw(S2, S2, S8));
  a(e::addw(S3, S3, S9));
  a(e::addw(S4, S4, S10));
  a(e::addw(S5, S5, S11));
  a(e::addi(S0, S0, 64));
  a(e::addi(S7, S7, -1));
  a.j(blk);
  a.bind(blk_done);
  // Digest checksum.
  a(e::slli(T0, S2, 32));
  a(e::xor_(T0, T0, S3));
  a(e::slli(T1, S4, 32));
  a(e::xor_(T1, T1, S5));
  a(e::add(S4, T0, T1));
  emit_result_and_halt(a, S4);
  return a.assemble("md5", std::move(d));
}

// ---- sha ----------------------------------------------------------------------------
// SHA-256-shaped: full message schedule plus a compression loop with the
// Σ/σ rotate-xor functions (constant rotate amounts, emitted inline).
assembler::Program build_sha(unsigned scale) {
  const unsigned blocks = 2 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 msg = d.add_u32_array(random_u32("sha", blocks * 16));
  const u64 ktab = d.add_u32_array(sha_constants());
  const u64 wbuf = d.reserve(64 * 4);

  a.lea_data(S0, msg);
  a.lea_data(S1, ktab);
  a.lea_data(S6, wbuf);
  a.li(S7, static_cast<i64>(blocks));
  // State h0..h7 kept in memory next to W to spare registers; working vars
  // a..h live in s2..s5, s8..s11.
  const u64 state = d.reserve(8 * 4);
  a.lea_data(A3, state);
  {
    const std::array<u32, 8> init = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                     0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
    for (unsigned i = 0; i < 8; ++i) {
      a.li(T0, static_cast<i64>(init[i]));
      a(e::sw(T0, A3, static_cast<i64>(i * 4)));
    }
  }

  Label blk = a.new_label(), blk_done = a.new_label();
  a.bind(blk);
  a.beqz(S7, blk_done);

  // ---- message schedule: W[0..15] = M, W[16..63] expanded.
  for (int t = 0; t < 16; ++t) {
    a(e::lwu(T0, S0, t * 4));
    a(e::sw(T0, S6, t * 4));
  }
  a.li(A1, 16);
  Label sched = a.new_label(), sched_done = a.new_label();
  a.bind(sched);
  a.li(T0, 64);
  a.bge(A1, T0, sched_done);
  a(e::slli(T0, A1, 2));
  a(e::add(T0, T0, S6));   // &W[t]
  a(e::lwu(T1, T0, -2 * 4));   // W[t-2]
  // s1 = rotr(x,17) ^ rotr(x,19) ^ (x >> 10)
  emit_rotr32(a, T2, T1, 17, T5);
  emit_rotr32(a, T3, T1, 19, T5);
  a(e::xor_(T2, T2, T3));
  a(e::srliw(T3, T1, 10));
  a(e::xor_(T2, T2, T3));
  a(e::lwu(T1, T0, -7 * 4));   // W[t-7]
  a(e::addw(T2, T2, T1));
  a(e::lwu(T1, T0, -15 * 4));  // W[t-15]
  // s0 = rotr(x,7) ^ rotr(x,18) ^ (x >> 3)
  emit_rotr32(a, T3, T1, 7, T5);
  emit_rotr32(a, T4, T1, 18, T5);
  a(e::xor_(T3, T3, T4));
  a(e::srliw(T4, T1, 3));
  a(e::xor_(T3, T3, T4));
  a(e::addw(T2, T2, T3));
  a(e::lwu(T1, T0, -16 * 4));  // W[t-16]
  a(e::addw(T2, T2, T1));
  a(e::sw(T2, T0, 0));
  a(e::addi(A1, A1, 1));
  a.j(sched);
  a.bind(sched_done);

  // ---- compression. Load state a..h.
  for (unsigned i = 0; i < 8; ++i) {
    const Reg regs[8] = {S2, S3, S4, S5, S8, S9, S10, S11};
    a(e::lwu(regs[i], A3, static_cast<i64>(i * 4)));
  }
  a.li(A1, 0);
  Label comp = a.new_label(), comp_done = a.new_label();
  a.bind(comp);
  a.li(T0, 64);
  a.bge(A1, T0, comp_done);
  // T1' = h + Sigma1(e) + Ch(e,f,g) + K[t] + W[t]
  emit_rotr32(a, T1, S8, 6, T5);
  emit_rotr32(a, T2, S8, 11, T5);
  a(e::xor_(T1, T1, T2));
  emit_rotr32(a, T2, S8, 25, T5);
  a(e::xor_(T1, T1, T2));          // Sigma1(e)
  a(e::and_(T2, S8, S9));
  a.not_(T3, S8);
  a(e::and_(T3, T3, S10));
  a(e::xor_(T2, T2, T3));          // Ch
  a(e::addw(T1, T1, T2));
  a(e::addw(T1, T1, S11));         // + h
  a(e::slli(T2, A1, 2));
  a(e::add(T2, T2, S1));
  a(e::lwu(T3, T2, 0));            // K[t]
  a(e::addw(T1, T1, T3));
  a(e::slli(T2, A1, 2));
  a(e::add(T2, T2, S6));
  a(e::lwu(T3, T2, 0));            // W[t]
  a(e::addw(T1, T1, T3));          // temp1
  // T2' = Sigma0(a) + Maj(a,b,c)
  emit_rotr32(a, T2, S2, 2, T5);
  emit_rotr32(a, T3, S2, 13, T5);
  a(e::xor_(T2, T2, T3));
  emit_rotr32(a, T3, S2, 22, T5);
  a(e::xor_(T2, T2, T3));          // Sigma0(a)
  a(e::and_(T3, S2, S3));
  a(e::and_(T4, S2, S4));
  a(e::xor_(T3, T3, T4));
  a(e::and_(T4, S3, S4));
  a(e::xor_(T3, T3, T4));          // Maj
  a(e::addw(T2, T2, T3));          // temp2
  // Rotate the eight working variables.
  a.mv(S11, S10);                  // h = g
  a.mv(S10, S9);                   // g = f
  a.mv(S9, S8);                    // f = e
  a(e::addw(S8, S5, T1));          // e = d + temp1
  a.mv(S5, S4);                    // d = c
  a.mv(S4, S3);                    // c = b
  a.mv(S3, S2);                    // b = a
  a(e::addw(S2, T1, T2));          // a = temp1 + temp2
  a(e::addi(A1, A1, 1));
  a.j(comp);
  a.bind(comp_done);
  // Fold into the state.
  {
    const Reg regs[8] = {S2, S3, S4, S5, S8, S9, S10, S11};
    for (unsigned i = 0; i < 8; ++i) {
      a(e::lwu(T0, A3, static_cast<i64>(i * 4)));
      a(e::addw(T0, T0, regs[i]));
      a(e::sw(T0, A3, static_cast<i64>(i * 4)));
    }
  }
  a(e::addi(S0, S0, 64));
  a(e::addi(S7, S7, -1));
  a.j(blk);
  a.bind(blk_done);
  // Checksum the 8-word digest.
  a.mv(S1, A3);
  a.li(S4, 0);
  emit_checksum_u32(a, S1, 8, S4, T1, T2, T0);
  emit_result_and_halt(a, S4);
  return a.assemble("sha", std::move(d));
}

}  // namespace safedm::workloads
