// Floating-point streaming kernels: complex_updates, cosf, cubic, deg2rad,
// rad2deg, iir.
#include <cmath>

#include "internal.hpp"

namespace safedm::workloads {

using namespace internal;

// ---- deg2rad / rad2deg ------------------------------------------------------------
// Array scaling by a constant: one load, one multiply, one store per
// element — the simplest FP pipeline pattern.
namespace {

assembler::Program build_angle_convert(const char* name, double factor, unsigned scale) {
  const unsigned n = 192 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 arr = d.add_f64_array(random_f64(name, n, -360.0, 360.0));
  const u64 fac = d.add_f64(factor);

  a.lea_data(S0, arr);
  a.lea_data(T0, fac);
  a(e::fld(1, T0, 0));  // f1 = conversion factor
  a.li(S1, static_cast<i64>(n));
  Label loop = a.new_label(), done = a.new_label();
  a.bind(loop);
  a.beqz(S1, done);
  a(e::fld(2, S0, 0));
  a(e::fmul_d(2, 2, 1));
  a(e::fsd(2, S0, 0));
  a(e::addi(S0, S0, 8));
  a(e::addi(S1, S1, -1));
  a.j(loop);
  a.bind(done);
  a.lea_data(S1, arr);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, n, S4, T1, T2, T3);
  emit_result_and_halt(a, S4);
  return a.assemble(name, std::move(d));
}

}  // namespace

assembler::Program build_deg2rad(unsigned scale) {
  return build_angle_convert("deg2rad", 3.14159265358979323846 / 180.0, scale);
}

assembler::Program build_rad2deg(unsigned scale) {
  return build_angle_convert("rad2deg", 180.0 / 3.14159265358979323846, scale);
}

// ---- cosf -----------------------------------------------------------------------------
// Taylor-series cosine with a precomputed reciprocal-factorial table: a
// short dependent FP chain per term, data-independent trip counts.
assembler::Program build_cosf(unsigned scale) {
  const unsigned n = 96 * scale;
  const unsigned terms = 8;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 angles = d.add_f64_array(random_f64("cosf", n, -3.1, 3.1));
  // recip[k] = -1 / ((2k-1) * 2k): the term update factor.
  std::vector<double> recip(terms);
  for (unsigned k = 1; k <= terms; ++k)
    recip[k - 1] = -1.0 / static_cast<double>((2 * k - 1) * (2 * k));
  const u64 rtab = d.add_f64_array(recip);
  const u64 results = d.reserve(n * 8);

  a.lea_data(S0, angles);
  a.lea_data(S1, rtab);
  a.lea_data(S2, results);
  a.li(S3, static_cast<i64>(n));
  Label outer = a.new_label(), done = a.new_label();
  a.bind(outer);
  a.beqz(S3, done);
  a(e::fld(1, S0, 0));       // x
  a(e::fmul_d(2, 1, 1));     // x^2
  a.li(T0, 1);
  a(e::fcvt_d_l(3, T0));     // sum = 1.0
  a.fmv_d(4, 3);             // term = 1.0
  a.mv(T1, S1);              // recip cursor
  a.li(T2, terms);
  Label term_loop = a.new_label(), term_done = a.new_label();
  a.bind(term_loop);
  a.beqz(T2, term_done);
  a(e::fld(5, T1, 0));
  a(e::fmul_d(4, 4, 2));     // term *= x^2
  a(e::fmul_d(4, 4, 5));     // term *= -1/((2k-1)2k)
  a(e::fadd_d(3, 3, 4));     // sum += term
  a(e::addi(T1, T1, 8));
  a(e::addi(T2, T2, -1));
  a.j(term_loop);
  a.bind(term_done);
  a(e::fsd(3, S2, 0));
  a(e::addi(S0, S0, 8));
  a(e::addi(S2, S2, 8));
  a(e::addi(S3, S3, -1));
  a.j(outer);
  a.bind(done);
  a.lea_data(S1, results);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, n, S4, T1, T2, T3);
  emit_result_and_halt(a, S4);
  return a.assemble("cosf", std::move(d));
}

// ---- complex_updates ---------------------------------------------------------------
// Complex multiply-accumulate: c[i] += a[i] * b[i] over interleaved
// re/im arrays (the classic DSPstone kernel TACLe inherits).
assembler::Program build_complex_updates(unsigned scale) {
  const unsigned n = 64 * scale;
  const unsigned passes = 4;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 va = d.add_f64_array(random_f64("complex.a", 2 * n));
  const u64 vb = d.add_f64_array(random_f64("complex.b", 2 * n));
  const u64 vc = d.add_f64_array(random_f64("complex.c", 2 * n));

  a.li(S5, passes);
  Label pass = a.new_label(), pass_done = a.new_label();
  a.bind(pass);
  a.beqz(S5, pass_done);
  a.lea_data(S0, va);
  a.lea_data(S1, vb);
  a.lea_data(S2, vc);
  a.li(S3, static_cast<i64>(n));
  Label loop = a.new_label(), loop_done = a.new_label();
  a.bind(loop);
  a.beqz(S3, loop_done);
  a(e::fld(1, S0, 0));        // ar
  a(e::fld(2, S0, 8));        // ai
  a(e::fld(3, S1, 0));        // br
  a(e::fld(4, S1, 8));        // bi
  a(e::fld(5, S2, 0));        // cr
  a(e::fld(6, S2, 8));        // ci
  a(e::fmadd_d(5, 1, 3, 5));  // cr += ar*br
  a(e::fnmsub_d(5, 2, 4, 5)); // cr -= ai*bi
  a(e::fmadd_d(6, 1, 4, 6));  // ci += ar*bi
  a(e::fmadd_d(6, 2, 3, 6));  // ci += ai*br
  a(e::fsd(5, S2, 0));
  a(e::fsd(6, S2, 8));
  a(e::addi(S0, S0, 16));
  a(e::addi(S1, S1, 16));
  a(e::addi(S2, S2, 16));
  a(e::addi(S3, S3, -1));
  a.j(loop);
  a.bind(loop_done);
  a(e::addi(S5, S5, -1));
  a.j(pass);
  a.bind(pass_done);
  a.lea_data(S1, vc);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, 2 * n, S4, T1, T2, T3);
  emit_result_and_halt(a, S4);
  return a.assemble("complex_updates", std::move(d));
}

// ---- cubic -----------------------------------------------------------------------------
// Newton iteration on cubic polynomials: FP divide in the loop-carried
// dependency — the longest-latency benchmark in Table I's "0 nops" column.
assembler::Program build_cubic(unsigned scale) {
  const unsigned n = 24 * scale;
  const unsigned iters = 16;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  // Coefficients x^3 + b x^2 + c x + k with roots pulled toward [-2, 2].
  const u64 cb = d.add_f64_array(random_f64("cubic.b", n, -2.0, 2.0));
  const u64 cc = d.add_f64_array(random_f64("cubic.c", n, -2.0, 2.0));
  const u64 ck = d.add_f64_array(random_f64("cubic.k", n, -1.0, 1.0));
  const u64 roots = d.reserve(n * 8);
  const u64 consts = d.add_f64_array(std::vector<double>{3.0, 2.0, 1.5});

  a.lea_data(T0, consts);
  a(e::fld(10, T0, 0));   // 3.0
  a(e::fld(11, T0, 8));   // 2.0
  a(e::fld(12, T0, 16));  // initial guess 1.5
  a.lea_data(S0, cb);
  a.lea_data(S1, cc);
  a.lea_data(S2, ck);
  a.lea_data(S3, roots);
  a.li(S5, static_cast<i64>(n));
  Label outer = a.new_label(), done = a.new_label();
  a.bind(outer);
  a.beqz(S5, done);
  a(e::fld(1, S0, 0));  // b
  a(e::fld(2, S1, 0));  // c
  a(e::fld(3, S2, 0));  // k
  a.fmv_d(4, 12);       // x = 1.5
  a.li(T1, iters);
  Label newton = a.new_label(), newton_done = a.new_label();
  a.bind(newton);
  a.beqz(T1, newton_done);
  // f = ((x + b) * x + c) * x + k
  a(e::fadd_d(5, 4, 1));
  a(e::fmul_d(5, 5, 4));
  a(e::fadd_d(5, 5, 2));
  a(e::fmul_d(5, 5, 4));
  a(e::fadd_d(5, 5, 3));
  // f' = (3x + 2b) * x + c
  a(e::fmul_d(6, 4, 10));
  a(e::fmadd_d(6, 1, 11, 6));
  a(e::fmul_d(6, 6, 4));
  a(e::fadd_d(6, 6, 2));
  // x -= f / f'
  a(e::fdiv_d(7, 5, 6));
  a(e::fsub_d(4, 4, 7));
  a(e::addi(T1, T1, -1));
  a.j(newton);
  a.bind(newton_done);
  a(e::fsd(4, S3, 0));
  a(e::addi(S0, S0, 8));
  a(e::addi(S1, S1, 8));
  a(e::addi(S2, S2, 8));
  a(e::addi(S3, S3, 8));
  a(e::addi(S5, S5, -1));
  a.j(outer);
  a.bind(done);
  a.lea_data(S1, roots);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, n, S4, T1, T2, T3);
  emit_result_and_halt(a, S4);
  return a.assemble("cubic", std::move(d));
}

// ---- iir -------------------------------------------------------------------------------
// Two cascaded biquad sections over a sample stream: loop-carried FP state,
// stores of every output sample.
assembler::Program build_iir(unsigned scale) {
  const unsigned n = 256 * scale;
  Assembler a;
  DataBuilder d;
  reserve_result(d);
  const u64 in = d.add_f64_array(random_f64("iir", n));
  const u64 out = d.reserve(n * 8);
  // Stable biquad coefficients (b0 b1 b2 a1 a2) x 2 sections.
  const u64 coef = d.add_f64_array(std::vector<double>{
      0.2929, 0.5858, 0.2929, -0.0000, 0.1716,   // low-pass section
      0.25, 0.5, 0.25, -0.1, 0.05});             // smoothing section

  a.lea_data(S0, in);
  a.lea_data(S1, out);
  a.lea_data(T0, coef);
  for (unsigned i = 0; i < 10; ++i) a(e::fld(static_cast<u8>(10 + i), T0, i * 8));
  // State: f1,f2 = x1,x2 (sec 1); f3,f4 = y1,y2 (sec 1); f5,f6 = y1,y2 (sec 2).
  for (u8 f = 1; f <= 6; ++f) a(e::fmv_d_x(f, ZERO));
  a.li(S3, static_cast<i64>(n));
  Label loop = a.new_label(), done = a.new_label();
  a.bind(loop);
  a.beqz(S3, done);
  a(e::fld(7, S0, 0));          // x
  // Section 1: y = b0 x + b1 x1 + b2 x2 - a1 y1 - a2 y2
  a(e::fmul_d(8, 7, 10));
  a(e::fmadd_d(8, 1, 11, 8));
  a(e::fmadd_d(8, 2, 12, 8));
  a(e::fnmsub_d(8, 3, 13, 8));
  a(e::fnmsub_d(8, 4, 14, 8));
  a.fmv_d(2, 1);                // x2 = x1
  a.fmv_d(1, 7);                // x1 = x
  a.fmv_d(4, 3);                // y2 = y1
  a.fmv_d(3, 8);                // y1 = y
  // Section 2 on y (uses its own y-state; feed-forward from section 1).
  a(e::fmul_d(9, 8, 15));
  a(e::fmadd_d(9, 3, 16, 9));
  a(e::fmadd_d(9, 4, 17, 9));
  a(e::fnmsub_d(9, 5, 18, 9));
  a(e::fnmsub_d(9, 6, 19, 9));
  a.fmv_d(6, 5);
  a.fmv_d(5, 9);
  a(e::fsd(9, S1, 0));
  a(e::addi(S0, S0, 8));
  a(e::addi(S1, S1, 8));
  a(e::addi(S3, S3, -1));
  a.j(loop);
  a.bind(done);
  a.lea_data(S1, out);
  a.li(S4, 0);
  emit_checksum_u64(a, S1, n, S4, T1, T2, T3);
  emit_result_and_halt(a, S4);
  return a.assemble("iir", std::move(d));
}

}  // namespace safedm::workloads
