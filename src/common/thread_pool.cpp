#include "safedm/common/thread_pool.hpp"

#include <cstdlib>

#include "safedm/common/log.hpp"

namespace safedm {
namespace {

thread_local bool t_in_worker = false;

}  // namespace

bool ThreadPool::in_worker() { return t_in_worker; }

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads == 1) return;  // serial mode: no workers, submit runs inline
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {  // serial mode
    try {
      task();
    } catch (...) {
      // first_error_ is shared with wait_idle() and other submit() callers
      // (a serial pool may still be driven from several external threads).
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

unsigned bench_thread_count() {
  if (const char* env = std::getenv("SAFEDM_BENCH_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    const bool numeric = end != env && *end == '\0';
    if (numeric && parsed >= 1) return static_cast<unsigned>(parsed);
    if (!numeric || parsed < 0) {
      static std::once_flag warned;
      std::call_once(warned, [env] {
        SAFEDM_WARN("SAFEDM_BENCH_THREADS=\"" << env
                                              << "\" is not a non-negative integer; "
                                                 "falling back to auto (hardware concurrency)");
      });
    }
    // parsed == 0 explicitly selects auto.
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace safedm
