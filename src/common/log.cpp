#include "safedm/common/log.hpp"

namespace safedm {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::clog << '[' << kNames[static_cast<int>(level)] << "] " << msg << '\n';
}

}  // namespace safedm
