#include "safedm/common/log.hpp"

namespace safedm {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink ? sink : &std::clog;
}

void Logger::write(LogLevel level, const std::string& msg) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::lock_guard<std::mutex> lock(mutex_);
  *sink_ << '[' << kNames[static_cast<int>(level)] << "] " << msg << '\n';
}

}  // namespace safedm
